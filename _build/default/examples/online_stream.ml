(* Online scheduling: a stream of transactions on a 6x6 many-core grid.

   The paper schedules one offline batch (Section 9 lists the online
   setting as future work).  Here transactions arrive continuously and a
   contention-management policy decides where each released object goes.
   The preemptive timestamp policy is the classic Greedy contention
   manager: the oldest transaction may steal objects from younger ones,
   which provably avoids deadlock.

   Run with: dune exec examples/online_stream.exe *)

module Table = Dtm_util.Table
open Dtm_online

let () =
  let rows = 6 and cols = 6 in
  let n = rows * cols in
  let metric = Dtm_topology.Grid.metric ~rows ~cols in
  let rng = Dtm_util.Prng.create ~seed:9 in
  let stream =
    Stream.uniform ~rng ~n ~num_objects:12 ~k:2 ~txns_per_node:5 ~mean_gap:4
  in
  let homes = Stream.initial_homes ~rng stream in
  Printf.printf "Grid %dx%d, %d transactions streaming in (5 per core)\n\n" rows
    cols (Stream.total stream);
  let t =
    Table.create
      ~columns:
        [
          ("policy", Table.Left);
          ("makespan", Table.Right);
          ("mean response", Table.Right);
          ("p95", Table.Right);
          ("travel", Table.Right);
          ("recoveries", Table.Right);
          ("steals", Table.Right);
        ]
  in
  List.iter
    (fun policy ->
      let r = Runner.run ~policy metric stream ~homes in
      assert (r.Runner.completed = Stream.total stream);
      Table.add_row t
        [
          Policy.to_string policy;
          Table.cell_int r.Runner.makespan;
          Table.cell_float r.Runner.mean_response;
          Table.cell_float r.Runner.p95_response;
          Table.cell_int r.Runner.total_travel;
          Table.cell_int r.Runner.forced_grants;
          Table.cell_int r.Runner.preemptions;
        ])
    [
      Policy.Timestamp { preemption = false };
      Policy.Timestamp { preemption = true };
      Policy.Nearest;
      Policy.Random_grant 1;
    ];
  Table.print t
