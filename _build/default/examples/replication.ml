(* Read replication: a shared configuration store on a 7x7 grid.

   One hot "routing table" object is written by a single controller and
   read by every worker, plus per-worker scratch objects.  In the base
   data-flow model the hot object must physically visit every reader; with
   read replication (paper Section 1.2's remark) copies fan out instead
   and the makespan collapses to roughly the network diameter -- at the
   price of extra copy traffic, the bandwidth side of the trade-off.

   Run with: dune exec examples/replication.exe *)

module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule

let () =
  let rows = 7 and cols = 7 in
  let n = rows * cols in
  let metric = Dtm_topology.Grid.metric ~rows ~cols in
  (* Object 0: the routing table, at node 0.  Objects 1..: scratch data,
     one per pair of workers. *)
  let num_objects = 1 + ((n + 1) / 2) in
  let txns =
    List.init n (fun v -> (v, [ 0; 1 + (v / 2) ]))
  in
  let home = Array.init num_objects (fun o -> if o = 0 then 0 else min (n - 1) (2 * (o - 1))) in
  let inst = Instance.create ~n ~num_objects ~txns ~home in

  (* Base model: everyone writes everything. *)
  let base = Dtm_core.Greedy.schedule metric inst in
  Printf.printf "base data-flow model: makespan %d (the routing table visits all %d nodes)\n"
    (Schedule.makespan base) n;

  (* Replicated model: only node 0 writes the routing table; scratch
     objects stay read/write. *)
  let writes =
    (0, [ 0; 1 ]) :: List.init (n - 1) (fun i -> (i + 1, [ 1 + ((i + 1) / 2) ]))
  in
  let rw = Dtm_core.Rw_instance.create inst ~writes in
  let repl = Dtm_core.Rw_greedy.schedule metric rw in
  assert (Dtm_core.Rw_validator.is_feasible metric rw repl);
  Printf.printf "with read replication:  makespan %d (copies fan out from node 0)\n"
    (Schedule.makespan repl);
  Printf.printf "write load: %d -> %d; conflict pairs: %d -> %d\n"
    (Instance.load inst)
    (Dtm_core.Rw_instance.write_load rw)
    (let dep = Dtm_core.Dependency.build metric inst in
     Dtm_core.Dependency.num_conflicts dep)
    (List.length (Dtm_core.Rw_greedy.conflict_pairs rw));
  (* The flip side: replication ships a copy per reader, so it spends
     more bandwidth than carrying the single master around. *)
  Printf.printf "communication: %d (base) -> %d (replicated copies)\n"
    (Dtm_core.Cost.communication metric inst base)
    (Dtm_core.Rw_cost.communication metric rw repl)
