examples/quickstart.ml: Dtm_core Dtm_sched Dtm_sim Dtm_topology Dtm_util Dtm_workload Printf
