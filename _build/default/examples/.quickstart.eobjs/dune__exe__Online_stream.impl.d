examples/online_stream.ml: Dtm_online Dtm_topology Dtm_util List Policy Printf Runner Stream
