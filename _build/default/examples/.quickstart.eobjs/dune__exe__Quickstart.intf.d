examples/quickstart.mli:
