examples/congestion.mli:
