examples/star_hub.mli:
