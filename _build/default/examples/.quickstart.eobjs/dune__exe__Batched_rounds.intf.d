examples/batched_rounds.mli:
