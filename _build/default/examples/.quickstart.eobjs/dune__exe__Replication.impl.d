examples/replication.ml: Array Dtm_core Dtm_topology List Printf
