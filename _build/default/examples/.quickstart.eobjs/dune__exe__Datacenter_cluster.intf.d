examples/datacenter_cluster.mli:
