examples/congestion.ml: Dtm_core Dtm_sim Dtm_topology Dtm_util Dtm_workload List Printf
