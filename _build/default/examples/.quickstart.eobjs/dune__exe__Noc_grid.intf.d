examples/noc_grid.mli:
