examples/online_stream.mli:
