examples/replication.mli:
