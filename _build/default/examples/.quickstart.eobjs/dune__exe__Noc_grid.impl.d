examples/noc_grid.ml: Dtm_core Dtm_sched Dtm_sim Dtm_topology Dtm_util Dtm_workload List Printf
