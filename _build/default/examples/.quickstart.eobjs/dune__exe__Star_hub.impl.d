examples/star_hub.ml: Dtm_core Dtm_sched Dtm_topology Dtm_util Dtm_workload List Printf
