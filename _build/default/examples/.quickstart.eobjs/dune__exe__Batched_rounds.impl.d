examples/batched_rounds.ml: Array Dtm_core Dtm_graph Dtm_sched Dtm_topology Dtm_util Dtm_workload List Printf
