(* Quickstart: build a topology, generate a workload, schedule it with the
   paper's algorithm, prove the schedule feasible, and replay it on the
   network.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A 64-node complete graph (Section 3's setting). *)
  let topo = Dtm_topology.Topology.Clique 64 in
  let metric = Dtm_topology.Topology.metric topo in

  (* 2. Every node runs one transaction over a random 3-subset of 16
        shared objects; objects start at a node that requests them. *)
  let rng = Dtm_util.Prng.create ~seed:42 in
  let inst =
    Dtm_workload.Uniform.instance ~rng ~n:64 ~num_objects:16 ~k:3 ()
  in

  (* 3. Schedule with the algorithm the paper proves for this topology
        (Theorem 1: an O(k) approximation on cliques). *)
  let sched = Dtm_sched.Auto.schedule topo inst in

  (* 4. The validator certifies feasibility; the lower bound certifies
        quality. *)
  (match Dtm_core.Validator.check metric inst sched with
  | Ok () -> print_endline "schedule: feasible"
  | Error v -> failwith (Dtm_core.Validator.explain v));
  let lb = Dtm_core.Lower_bound.certified metric inst in
  let mk = Dtm_core.Schedule.makespan sched in
  Printf.printf "algorithm:   %s\n" (Dtm_sched.Auto.name topo);
  Printf.printf "makespan:    %d steps\n" mk;
  Printf.printf "lower bound: %d steps\n" lb;
  Printf.printf "ratio:       %.2f (Theorem 1 guarantees O(k) = O(3))\n"
    (Dtm_core.Lower_bound.ratio ~makespan:mk ~lower:lb);

  (* 5. Replay the schedule hop-by-hop on the explicit network. *)
  let r = Dtm_sim.Replay.run (Dtm_topology.Topology.graph topo) inst sched in
  Printf.printf "replay:      ok=%b, %d messages, %d hops, %d idle steps\n"
    r.Dtm_sim.Replay.ok r.Dtm_sim.Replay.messages r.Dtm_sim.Replay.hops
    r.Dtm_sim.Replay.total_wait
