(* Congestion: what bounded link capacity does to a hub.

   The paper's model lets unboundedly many objects cross an edge per step;
   Section 9 asks about bounded capacities.  This example runs the same
   star-topology workload under shrinking per-edge admission bounds and
   shows the queueing delay concentrating at the hub.

   Run with: dune exec examples/congestion.exe *)

module Table = Dtm_util.Table

let () =
  let p = { Dtm_topology.Star.rays = 8; ray_len = 4 } in
  let n = 1 + (p.Dtm_topology.Star.rays * p.Dtm_topology.Star.ray_len) in
  let g = Dtm_topology.Star.graph p in
  let metric = Dtm_topology.Star.metric p in
  let rng = Dtm_util.Prng.create ~seed:5 in
  let inst = Dtm_workload.Uniform.instance ~rng ~n ~num_objects:10 ~k:2 () in
  let priority = Dtm_sim.Engine.run metric inst in
  Printf.printf
    "Star %d rays x %d nodes; %d transactions; visit orders fixed by list scheduling\n\n"
    p.Dtm_topology.Star.rays p.Dtm_topology.Star.ray_len
    (Dtm_core.Instance.num_txns inst);
  let t =
    Table.create
      ~columns:
        [
          ("capacity / edge / step", Table.Left);
          ("makespan", Table.Right);
          ("delayed hops", Table.Right);
          ("max queue", Table.Right);
        ]
  in
  List.iter
    (fun (label, cap) ->
      let r =
        match cap with
        | None -> Dtm_sim.Congestion.run g inst ~priority
        | Some c -> Dtm_sim.Congestion.run ~capacity:c g inst ~priority
      in
      Table.add_row t
        [
          label;
          Table.cell_int r.Dtm_sim.Congestion.makespan;
          Table.cell_int r.Dtm_sim.Congestion.delayed_hops;
          Table.cell_int r.Dtm_sim.Congestion.max_queue;
        ])
    [ ("unbounded (paper model)", None); ("4", Some 4); ("2", Some 2); ("1", Some 1) ];
  Table.print t;
  print_newline ();
  print_endline
    "With unbounded capacity this reproduces the paper's semantics exactly\n\
     (property-tested against the list-scheduling engine)."
