(* Network-on-chip scenario: a 16x16 grid of cores (XMOS / Xeon-Phi style,
   paper Section 1), each running one transaction over shared objects.
   Compares the Theorem 3 subgrid schedule against naive serial execution
   and online list scheduling, and prints the Figure 2 boustrophedon
   subgrid order.

   Run with: dune exec examples/noc_grid.exe *)

module Table = Dtm_util.Table

let () =
  let rows = 16 and cols = 16 in
  let n = rows * cols in
  let w = 48 and k = 2 in
  let rng = Dtm_util.Prng.create ~seed:7 in
  let inst = Dtm_workload.Uniform.instance ~rng ~n ~num_objects:w ~k () in
  let metric = Dtm_topology.Grid.metric ~rows ~cols in
  let lb = Dtm_core.Lower_bound.certified metric inst in

  Printf.printf "NoC grid %dx%d, %d objects, k = %d, certified lower bound = %d\n\n"
    rows cols w k lb;

  let entries =
    [
      ( "subgrid schedule (Thm 3)",
        Dtm_sched.Grid_sched.schedule ~rows ~cols inst );
      ( "plain greedy (Sec 2.3)",
        Dtm_core.Greedy.schedule metric inst );
      ("online list scheduling", Dtm_sim.Engine.run metric inst);
      ("serial baseline", Dtm_sched.Baseline.sequential metric inst);
    ]
  in
  let t =
    Table.create
      ~columns:
        [
          ("scheduler", Table.Left);
          ("makespan", Table.Right);
          ("ratio", Table.Right);
          ("messages", Table.Right);
          ("feasible", Table.Right);
        ]
  in
  let graph = Dtm_topology.Grid.graph ~rows ~cols in
  List.iter
    (fun (name, sched) ->
      let r = Dtm_sim.Replay.run graph inst sched in
      let mk = Dtm_core.Schedule.makespan sched in
      Table.add_row t
        [
          name;
          Table.cell_int mk;
          Table.cell_float (Dtm_core.Lower_bound.ratio ~makespan:mk ~lower:lb);
          Table.cell_int r.Dtm_sim.Replay.messages;
          string_of_bool r.Dtm_sim.Replay.ok;
        ])
    entries;
  Table.print t;

  (* Figure 2: the subgrid visit order for side-4 subgrids. *)
  let side = 4 in
  Printf.printf "\nFigure 2 subgrid order (side %d): " side;
  Dtm_sched.Grid_sched.subgrid_order ~rows ~cols ~side
  |> List.iteri (fun idx (i, j) ->
         if idx > 0 then print_string " -> ";
         Printf.printf "(%d,%d)" i j);
  print_newline ();
  Printf.printf "paper default side for this instance: %d\n"
    (Dtm_sched.Grid_sched.default_subgrid_side ~rows ~cols inst)
