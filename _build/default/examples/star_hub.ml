(* Hub-and-spoke scenario: a switch (hub) with 8 cables of 7 devices each
   (a star graph, paper Section 7), under a Zipf-skewed workload — a few
   hot configuration objects plus a long tail.

   Run with: dune exec examples/star_hub.exe *)

module Table = Dtm_util.Table
module Star = Dtm_topology.Star
module Star_sched = Dtm_sched.Star_sched

let () =
  let p = { Star.rays = 8; ray_len = 7 } in
  let n = 1 + (p.Star.rays * p.Star.ray_len) in
  Printf.printf "Star graph: %d rays x %d nodes + hub = %d nodes, %d segment rings\n\n"
    p.Star.rays p.Star.ray_len n (Star.num_segments p);

  (* Figure 4's rings: depth ranges of the segments. *)
  for i = 1 to Star.num_segments p do
    let lo, hi = Star.segment_depths p i in
    Printf.printf "  V%d: depths %d..%d, sigma_%d varies per workload\n" i lo hi i
  done;
  print_newline ();

  let rng = Dtm_util.Prng.create ~seed:21 in
  let inst = Dtm_workload.Zipf.instance ~rng ~n ~num_objects:12 ~k:2 ~exponent:1.0 in
  let metric = Star.metric p in
  let lb = Dtm_core.Lower_bound.certified metric inst in
  Printf.printf "Zipf(1.0) workload, 12 objects, k = 2, lower bound = %d\n" lb;
  for i = 1 to Star.num_segments p do
    Printf.printf "  sigma_%d = %d\n" i (Star_sched.sigma_of_period p inst i)
  done;
  print_newline ();

  let t =
    Table.create
      ~columns:
        [
          ("variant", Table.Left);
          ("makespan", Table.Right);
          ("ratio", Table.Right);
          ("feasible", Table.Right);
        ]
  in
  List.iter
    (fun (name, variant) ->
      let sched = Star_sched.schedule ~variant p inst in
      let mk = Dtm_core.Schedule.makespan sched in
      Table.add_row t
        [
          name;
          Table.cell_int mk;
          Table.cell_float (Dtm_core.Lower_bound.ratio ~makespan:mk ~lower:lb);
          string_of_bool (Dtm_core.Validator.is_feasible metric inst sched);
        ])
    [
      ("greedy periods", Star_sched.Greedy_periods);
      ("randomized periods", Star_sched.Randomized_periods { seed = 3 });
      ("best of both", Star_sched.Best_periods { seed = 3 });
      (* For contrast: ignore the star structure entirely. *)
    ];
  let seq = Dtm_sched.Baseline.sequential metric inst in
  Table.add_row t
    [
      "serial baseline";
      Table.cell_int (Dtm_core.Schedule.makespan seq);
      Table.cell_float
        (Dtm_core.Lower_bound.ratio
           ~makespan:(Dtm_core.Schedule.makespan seq)
           ~lower:lb);
      string_of_bool (Dtm_core.Validator.is_feasible metric inst seq);
    ];
  Table.print t
