(* The Section 8 lower-bound construction, made concrete.

   Builds the s-block grid instance (Figure 5) in which every object's TSP
   tour is short (O(s^2)) yet every schedule is provably slow: the per-block
   objects a_i serialize each block while the random b objects prevent the
   blocks from pipelining.  Prints the objects' walk bounds next to the
   best makespan our schedulers achieve, exhibiting the widening gap that
   Theorem 6 proves must exist.

   Run with: dune exec examples/lower_bound_demo.exe *)

module Table = Dtm_util.Table
module Blocks = Dtm_topology.Blocks

let () =
  let t =
    Table.create
      ~columns:
        [
          ("s", Table.Right);
          ("nodes", Table.Right);
          ("max TSP walk", Table.Right);
          ("serial floor s*s", Table.Right);
          ("achieved makespan", Table.Right);
          ("makespan / walk", Table.Right);
        ]
  in
  List.iter
    (fun s ->
      let p = Blocks.make ~s in
      let rng = Dtm_util.Prng.create ~seed:(100 + s) in
      let inst = Dtm_workload.Lb_instance.instance ~rng p in
      let metric = Dtm_topology.Block_grid.metric p in
      let lb = Dtm_core.Lower_bound.compute metric inst in
      let max_walk = lb.Dtm_core.Lower_bound.max_walk in
      let sched = Dtm_core.Greedy.schedule metric inst in
      assert (Dtm_core.Validator.is_feasible metric inst sched);
      let compacted = Dtm_sim.Engine.compact metric inst sched in
      let mk =
        min
          (Dtm_core.Schedule.makespan sched)
          (Dtm_core.Schedule.makespan compacted)
      in
      (* Each block's s*sqrt(s) transactions share a_i, so they run one
         at a time: no schedule beats s * block_size / parallelism... the
         simple serial floor per block is block_size = s*sqrt(s), and
         blocks can pipeline at best partially. *)
      Table.add_row t
        [
          Table.cell_int s;
          Table.cell_int (Blocks.n p);
          Table.cell_int max_walk;
          Table.cell_int (Blocks.block_size p);
          Table.cell_int mk;
          Table.cell_float (float_of_int mk /. float_of_int (max 1 max_walk));
        ])
    [ 4; 9; 16 ];
  print_endline
    "Section 8 construction (block grid): makespan must outgrow every\n\
     object's TSP tour (Theorem 6: no schedule gets within O(1) of the\n\
     TSP length on general grids, even with k = 2).\n";
  Table.print t
