(* Repeated batches: locality settles in.

   The same 64-core line runs five consecutive batch rounds of windowed
   transactions (each core repeatedly works on nearby objects).  Batch 1
   starts from scattered object homes; afterwards each object rests where
   its last user left it, so later rounds start better placed and finish
   sooner.

   Run with: dune exec examples/batched_rounds.exe *)

module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule

let () =
  let n = 64 in
  let metric = Dtm_topology.Line.metric n in
  let rng = Dtm_util.Prng.create ~seed:3 in
  (* Five rounds of the same windowed access pattern (fresh draws). *)
  let batches =
    List.init 5 (fun _ ->
        Dtm_workload.Arbitrary.windowed ~rng ~n ~num_objects:n ~k:2 ~span:12)
  in
  (* Scatter the homes adversarially: all objects start at node 0. *)
  let homes = Array.make n 0 in
  let steps = Dtm_sched.Batched.schedule metric ~homes batches in
  Printf.printf "line of %d cores, 5 batch rounds, all objects initially at node 0\n\n" n;
  List.iteri
    (fun i step ->
      let mk = Schedule.makespan step.Dtm_sched.Batched.schedule in
      let spread =
        (* How far the entry placement is from ideal: mean distance from
           each object's entry position to its first requester. *)
        let batch = List.nth batches i in
        let total = ref 0 and cnt = ref 0 in
        Array.iteri
          (fun o pos ->
            let reqs = Instance.requesters batch o in
            if Array.length reqs > 0 then begin
              total := !total + Dtm_graph.Metric.dist metric pos reqs.(0);
              incr cnt
            end)
          step.Dtm_sched.Batched.entry_positions;
        float_of_int !total /. float_of_int (max 1 !cnt)
      in
      Printf.printf "round %d: makespan %3d   mean entry displacement %.1f\n" (i + 1)
        mk spread)
    steps;
  Printf.printf "\ntotal wall clock (barrier-synchronized): %d steps\n"
    (Dtm_sched.Batched.total_makespan steps)
