(* Data-center scenario: 8 racks of 12 machines each (a cluster graph,
   paper Section 6), with expensive cross-rack links.  Shows the sigma = 1
   regime where racks proceed in parallel, and the contended regime where
   Algorithm 1's randomized phases compete with plain greedy.

   Run with: dune exec examples/datacenter_cluster.exe *)

module Table = Dtm_util.Table
module Cluster = Dtm_topology.Cluster
module Cluster_sched = Dtm_sched.Cluster_sched

let report p inst label =
  let metric = Cluster.metric p in
  let lb = Dtm_core.Lower_bound.certified metric inst in
  Printf.printf "%s: sigma = %d, lower bound = %d\n" label
    (Cluster_sched.sigma p inst) lb;
  let t =
    Table.create
      ~columns:
        [
          ("approach", Table.Left);
          ("makespan", Table.Right);
          ("ratio", Table.Right);
          ("feasible", Table.Right);
        ]
  in
  List.iter
    (fun (name, approach) ->
      let sched = Cluster_sched.schedule ~approach p inst in
      let mk = Dtm_core.Schedule.makespan sched in
      Table.add_row t
        [
          name;
          Table.cell_int mk;
          Table.cell_float (Dtm_core.Lower_bound.ratio ~makespan:mk ~lower:lb);
          string_of_bool (Dtm_core.Validator.is_feasible metric inst sched);
        ])
    [
      ("approach 1 (greedy)", Cluster_sched.Approach1);
      ("approach 2 (Algorithm 1)", Cluster_sched.Approach2 { seed = 1 });
      ("best of both", Cluster_sched.Best { seed = 1 });
    ];
  Table.print t;
  print_newline ()

let () =
  let p = { Cluster.clusters = 8; size = 12; bridge_weight = 24 } in
  Printf.printf
    "Cluster graph: %d racks x %d machines, cross-rack latency gamma = %d\n\n"
    p.Cluster.clusters p.Cluster.size p.Cluster.bridge_weight;

  (* Regime 1: every rack works on its own objects (sigma = 1).  Theorem 4
     says racks execute in parallel with an O(k) factor. *)
  let rng = Dtm_util.Prng.create ~seed:11 in
  let local =
    Dtm_workload.Arbitrary.cluster_local ~rng p ~num_objects_per_cluster:6 ~k:2
  in
  report p local "rack-local workload";

  (* Regime 2: objects shared across ~4 racks each. *)
  let spread =
    Dtm_workload.Arbitrary.cluster_spread ~rng p ~num_objects:24 ~k:2 ~sigma:4
  in
  report p spread "cross-rack workload";

  Printf.printf "Algorithm 1 parameters for the cross-rack workload: psi = %d phases, round cap = %d\n"
    (Cluster_sched.phase_count p spread)
    (Cluster_sched.round_cap p spread)
