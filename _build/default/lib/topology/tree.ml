type params = { branching : int; depth : int }

let check p =
  if p.branching < 1 || p.depth < 0 then invalid_arg "Tree: bad parameters"

let n_of p =
  check p;
  if p.branching = 1 then p.depth + 1
  else begin
    let rec pow acc i = if i = 0 then acc else pow (acc * p.branching) (i - 1) in
    (pow 1 (p.depth + 1) - 1) / (p.branching - 1)
  end

let parent i p =
  check p;
  if i = 0 then None else Some ((i - 1) / p.branching)

let node_depth i p =
  let rec go i acc =
    match parent i p with None -> acc | Some j -> go j (acc + 1)
  in
  go i 0

let graph p =
  check p;
  let n = n_of p in
  let edges = ref [] in
  for i = 1 to n - 1 do
    match parent i p with
    | Some j -> edges := (j, i, 1) :: !edges
    | None -> assert false
  done;
  Dtm_graph.Graph.of_edges ~n !edges

let metric p =
  check p;
  let n = n_of p in
  Dtm_graph.Metric.make ~size:n (fun u v ->
      (* Walk the deeper node up until the ancestors meet. *)
      let rec lift x dx y dy acc =
        if x = y then acc
        else if dx > dy then lift ((x - 1) / p.branching) (dx - 1) y dy (acc + 1)
        else if dy > dx then lift x dx ((y - 1) / p.branching) (dy - 1) (acc + 1)
        else
          lift ((x - 1) / p.branching) (dx - 1) ((y - 1) / p.branching) (dy - 1)
            (acc + 2)
      in
      lift u (node_depth u p) v (node_depth v p) 0)
