let graph (p : Blocks.params) =
  let rt = p.Blocks.root and s = p.Blocks.s in
  let edges = ref [] in
  for b = 0 to s - 1 do
    (* Vertical spine along column 0. *)
    for y = 0 to s - 2 do
      edges := (Blocks.node p ~block:b ~x:0 ~y, Blocks.node p ~block:b ~x:0 ~y:(y + 1), 1) :: !edges
    done;
    (* Horizontal teeth along every row. *)
    for y = 0 to s - 1 do
      for x = 0 to rt - 2 do
        edges := (Blocks.node p ~block:b ~x ~y, Blocks.node p ~block:b ~x:(x + 1) ~y, 1) :: !edges
      done
    done;
    if b + 1 < s then begin
      let right = Blocks.node p ~block:b ~x:(rt - 1) ~y:0 in
      let next_left = Blocks.node p ~block:(b + 1) ~x:0 ~y:0 in
      edges := (right, next_left, s) :: !edges
    end
  done;
  Dtm_graph.Graph.of_edges ~n:(Blocks.n p) !edges

(* Distance within one comb block. *)
let in_block x1 y1 x2 y2 =
  if y1 = y2 then abs (x1 - x2) else x1 + x2 + abs (y1 - y2)

let metric (p : Blocks.params) =
  let rt = p.Blocks.root and s = p.Blocks.s in
  (* Cost from (x, y) to the block's right exit (rt-1, 0). *)
  let exit_right x y = in_block x y (rt - 1) 0 in
  (* Cost from the block's left entry (0, 0) to (x, y). *)
  let enter_left x y = in_block 0 0 x y in
  Dtm_graph.Metric.make ~size:(Blocks.n p) (fun u v ->
      let b1, x1, y1 = Blocks.coords p u and b2, x2, y2 = Blocks.coords p v in
      let (b1, x1, y1), (b2, x2, y2) =
        if b1 <= b2 then ((b1, x1, y1), (b2, x2, y2)) else ((b2, x2, y2), (b1, x1, y1))
      in
      if b1 = b2 then in_block x1 y1 x2 y2
      else begin
        let hops = b2 - b1 in
        exit_right x1 y1 + (hops * s)
        + ((hops - 1) * (rt - 1))
        + enter_left x2 y2
      end)
