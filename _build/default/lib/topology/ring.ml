let graph n =
  if n < 1 then invalid_arg "Ring.graph: n < 1";
  if n = 1 then Dtm_graph.Graph.of_edges ~n []
  else if n = 2 then Dtm_graph.Graph.of_edges ~n [ (0, 1, 1) ]
  else begin
    let edges = List.init n (fun i -> (i, (i + 1) mod n, 1)) in
    Dtm_graph.Graph.of_edges ~n edges
  end

let metric n =
  if n < 1 then invalid_arg "Ring.metric: n < 1";
  Dtm_graph.Metric.make ~size:n (fun u v ->
      let d = abs (u - v) in
      min d (n - d))

(* Shortest covering arc = n minus the largest circular gap between
   consecutive points. *)
let arc_span ~n points =
  let pts = List.sort_uniq compare points in
  match pts with
  | [] | [ _ ] -> 0
  | first :: _ ->
    List.iter
      (fun p -> if p < 0 || p >= n then invalid_arg "Ring.arc_span: out of range")
      pts;
    let rec max_gap prev best = function
      | [] -> max best (first + n - prev)
      | p :: rest -> max_gap p (max best (p - prev)) rest
    in
    let gap = max_gap first 0 (List.tl pts) in
    n - gap
