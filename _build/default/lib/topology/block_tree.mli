(** Section 8 lower-bound carrier, tree variant (paper Fig. 6).

    Same block layout as {!Block_grid}, but each block is a "comb" tree:
    the leftmost column is a vertical path and every row is a horizontal
    path hanging off it.  Adjacent blocks are joined through the topmost
    row by a single weight-[s] edge, so the whole graph is a tree. *)

val graph : Blocks.params -> Dtm_graph.Graph.t

val metric : Blocks.params -> Dtm_graph.Metric.t
(** Closed form tree distances (validated against APSP in tests). *)
