type params = { dims : int list }

let check p =
  if p.dims = [] || List.exists (fun d -> d < 1) p.dims then
    invalid_arg "Hypergrid: bad dimensions"

let n_of p =
  check p;
  List.fold_left ( * ) 1 p.dims

let coords p id =
  check p;
  let rec go id = function
    | [] -> []
    | d :: rest -> (id mod d) :: go (id / d) rest
  in
  go id p.dims

let node p cs =
  check p;
  if List.length cs <> List.length p.dims then
    invalid_arg "Hypergrid.node: arity mismatch";
  List.fold_right2
    (fun c d acc ->
      if c < 0 || c >= d then invalid_arg "Hypergrid.node: out of range";
      (acc * d) + c)
    cs p.dims 0

let diameter p =
  check p;
  List.fold_left (fun acc d -> acc + d - 1) 0 p.dims

let graph p =
  check p;
  let n = n_of p in
  let edges = ref [] in
  (* Stride of each dimension in the mixed-radix id. *)
  let strides =
    let rec go acc = function
      | [] -> []
      | d :: rest -> acc :: go (acc * d) rest
    in
    go 1 p.dims
  in
  for id = 0 to n - 1 do
    List.iter2
      (fun d stride ->
        let coord = id / stride mod d in
        if coord + 1 < d then edges := (id, id + stride, 1) :: !edges)
      p.dims strides
  done;
  Dtm_graph.Graph.of_edges ~n !edges

let metric p =
  check p;
  Dtm_graph.Metric.make ~size:(n_of p) (fun u v ->
      List.fold_left2
        (fun acc a b -> acc + abs (a - b))
        0 (coords p u) (coords p v))
