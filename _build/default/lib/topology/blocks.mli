(** Shared coordinates for the Section 8 lower-bound constructions.

    Both the grid and tree variants consist of [s] blocks H_1..H_s laid out
    left to right, each holding [s] rows × [sqrt s] columns of nodes, with
    weight-[s] inter-block edges.  [s] must be a perfect square so that
    [sqrt s] is an integer (the paper assumes this for simplicity). *)

type params = { s : int; root : int }
(** [root] = integer sqrt of [s]; build with {!make}. *)

val make : s:int -> params
(** Raises [Invalid_argument] unless [s >= 1] is a perfect square. *)

val n : params -> int
(** Total nodes: [s * s * root] (s blocks of s rows × root cols). *)

val block_size : params -> int
(** Nodes per block: [s * root]. *)

val node : params -> block:int -> x:int -> y:int -> int
(** Id of the node in [block] at column [x] (0..root-1), row [y]
    (0..s-1). *)

val coords : params -> int -> int * int * int
(** [(block, x, y)] of a node id. *)

val block_of : params -> int -> int

val block_nodes : params -> int -> int list
(** All node ids of a block. *)
