(** Section 8 lower-bound carrier, grid variant (paper Fig. 5).

    An s × s·sqrt(s) grid split into [s] blocks of [s] rows × [sqrt s]
    columns.  Edges inside a block have weight 1; each row of adjacent
    blocks is joined by a horizontal edge of weight [s], so any two nodes
    in different blocks are at distance >= [s] — the separation the
    lower-bound proof relies on. *)

val graph : Blocks.params -> Dtm_graph.Graph.t

val metric : Blocks.params -> Dtm_graph.Metric.t
(** Closed form (validated against APSP in the test suite). *)
