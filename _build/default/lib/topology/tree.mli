(** Complete b-ary tree with unit edge weights.

    Trees carry the Section 8 lower bound (via {!Block_tree}) and are a
    natural hierarchical-interconnect model (fat-tree data centers reduce
    to trees at this abstraction).  The Section 3.1 bounded-diameter
    greedy applies with diameter 2·depth.

    Node ids are level-order: the root is 0 and the children of [i] are
    [b*i + 1 .. b*i + b]. *)

type params = { branching : int; depth : int }
(** [depth] 0 is a single root; [branching] >= 1. *)

val n_of : params -> int
(** (b^(d+1) - 1)/(b - 1), or d+1 when b = 1. *)

val graph : params -> Dtm_graph.Graph.t

val metric : params -> Dtm_graph.Metric.t
(** Closed form via lowest common ancestor:
    depth(u) + depth(v) - 2 depth(lca). *)

val parent : int -> params -> int option
(** [None] for the root. *)

val node_depth : int -> params -> int
