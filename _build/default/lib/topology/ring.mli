(** Ring (cycle) graph with unit edge weights.

    Not treated explicitly in the paper; included because the Theorem 2
    line technique extends to cycles (see {!Dtm_sched.Ring_sched}), and
    rings model token-ring style bus interconnects. *)

val graph : int -> Dtm_graph.Graph.t
(** [graph n]; requires [n >= 1]. *)

val metric : int -> Dtm_graph.Metric.t
(** Closed form: [min (|u-v|) (n - |u-v|)]. *)

val arc_span : n:int -> int list -> int
(** [arc_span ~n points] is the number of edges of the shortest arc of
    the [n]-ring containing all [points]: the ring analogue of an
    object's line span.  0 for fewer than 2 distinct points. *)
