lib/topology/line.ml: Dtm_graph List
