lib/topology/block_tree.mli: Blocks Dtm_graph
