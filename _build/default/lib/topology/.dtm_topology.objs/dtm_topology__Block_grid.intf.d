lib/topology/block_grid.mli: Blocks Dtm_graph
