lib/topology/grid.mli: Dtm_graph
