lib/topology/clique.ml: Dtm_graph
