lib/topology/topology.ml: Block_grid Block_tree Blocks Butterfly Clique Cluster Dtm_graph Grid Hypercube Hypergrid Line List Printf Ring Star String Torus Tree
