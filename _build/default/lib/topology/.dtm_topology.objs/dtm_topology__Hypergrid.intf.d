lib/topology/hypergrid.mli: Dtm_graph
