lib/topology/butterfly.ml: Dtm_graph
