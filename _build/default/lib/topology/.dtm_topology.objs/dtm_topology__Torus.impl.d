lib/topology/torus.ml: Dtm_graph Hashtbl
