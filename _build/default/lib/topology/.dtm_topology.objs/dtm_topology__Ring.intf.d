lib/topology/ring.mli: Dtm_graph
