lib/topology/cluster.ml: Dtm_graph List
