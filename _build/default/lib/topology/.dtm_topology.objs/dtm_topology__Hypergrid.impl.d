lib/topology/hypergrid.ml: Dtm_graph List
