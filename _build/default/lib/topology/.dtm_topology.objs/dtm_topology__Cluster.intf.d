lib/topology/cluster.mli: Dtm_graph
