lib/topology/ring.ml: Dtm_graph List
