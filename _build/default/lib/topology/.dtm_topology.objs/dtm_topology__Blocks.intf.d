lib/topology/blocks.mli:
