lib/topology/clique.mli: Dtm_graph
