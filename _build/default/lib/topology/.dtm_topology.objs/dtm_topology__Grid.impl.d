lib/topology/grid.ml: Dtm_graph
