lib/topology/blocks.ml: List
