lib/topology/star.ml: Dtm_graph
