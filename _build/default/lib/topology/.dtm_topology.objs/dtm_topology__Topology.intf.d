lib/topology/topology.mli: Cluster Dtm_graph Hypergrid Star Tree
