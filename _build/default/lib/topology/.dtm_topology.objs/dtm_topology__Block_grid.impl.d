lib/topology/block_grid.ml: Blocks Dtm_graph
