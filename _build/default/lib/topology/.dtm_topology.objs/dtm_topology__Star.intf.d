lib/topology/star.mli: Dtm_graph
