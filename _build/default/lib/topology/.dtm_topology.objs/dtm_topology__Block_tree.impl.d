lib/topology/block_tree.ml: Blocks Dtm_graph
