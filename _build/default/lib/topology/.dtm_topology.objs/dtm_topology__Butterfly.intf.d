lib/topology/butterfly.mli: Dtm_graph
