lib/topology/hypercube.ml: Dtm_graph
