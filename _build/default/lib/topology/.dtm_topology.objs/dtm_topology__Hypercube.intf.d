lib/topology/hypercube.mli: Dtm_graph
