lib/topology/line.mli: Dtm_graph
