lib/topology/torus.mli: Dtm_graph
