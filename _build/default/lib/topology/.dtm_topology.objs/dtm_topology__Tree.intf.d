lib/topology/tree.mli: Dtm_graph
