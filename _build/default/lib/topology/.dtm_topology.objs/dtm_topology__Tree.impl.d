lib/topology/tree.ml: Dtm_graph
