let graph (p : Blocks.params) =
  let rt = p.Blocks.root and s = p.Blocks.s in
  let edges = ref [] in
  for b = 0 to s - 1 do
    for y = 0 to s - 1 do
      for x = 0 to rt - 1 do
        let u = Blocks.node p ~block:b ~x ~y in
        if x + 1 < rt then edges := (u, Blocks.node p ~block:b ~x:(x + 1) ~y, 1) :: !edges;
        if y + 1 < s then edges := (u, Blocks.node p ~block:b ~x ~y:(y + 1), 1) :: !edges
      done;
      if b + 1 < s then begin
        let right = Blocks.node p ~block:b ~x:(rt - 1) ~y in
        let next_left = Blocks.node p ~block:(b + 1) ~x:0 ~y in
        edges := (right, next_left, s) :: !edges
      end
    done
  done;
  Dtm_graph.Graph.of_edges ~n:(Blocks.n p) !edges

let metric (p : Blocks.params) =
  let rt = p.Blocks.root and s = p.Blocks.s in
  Dtm_graph.Metric.make ~size:(Blocks.n p) (fun u v ->
      let b1, x1, y1 = Blocks.coords p u and b2, x2, y2 = Blocks.coords p v in
      let (b1, x1, y1), (b2, x2, y2) =
        if b1 <= b2 then ((b1, x1, y1), (b2, x2, y2)) else ((b2, x2, y2), (b1, x1, y1))
      in
      if b1 = b2 then abs (x1 - x2) + abs (y1 - y2)
      else begin
        (* Exit right of the first block, cross (b2-b1) weight-s bridges,
           traverse intermediate blocks horizontally, enter the last block
           from the left; vertical displacement is payable anywhere since
           bridges exist at every row. *)
        let hops = b2 - b1 in
        (rt - 1 - x1) + x2 + (hops * s) + ((hops - 1) * (rt - 1)) + abs (y1 - y2)
      end)
