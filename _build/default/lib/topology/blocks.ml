type params = { s : int; root : int }

let make ~s =
  if s < 1 then invalid_arg "Blocks.make: s < 1";
  let root = int_of_float (sqrt (float_of_int s) +. 0.5) in
  if root * root <> s then invalid_arg "Blocks.make: s must be a perfect square";
  { s; root }

let block_size p = p.s * p.root
let n p = p.s * block_size p

let node p ~block ~x ~y =
  if block < 0 || block >= p.s || x < 0 || x >= p.root || y < 0 || y >= p.s then
    invalid_arg "Blocks.node: out of range";
  (block * block_size p) + (y * p.root) + x

let coords p id =
  let bs = block_size p in
  let block = id / bs in
  let r = id mod bs in
  (block, r mod p.root, r / p.root)

let block_of p id = id / block_size p

let block_nodes p b = List.init (block_size p) (fun i -> (b * block_size p) + i)
