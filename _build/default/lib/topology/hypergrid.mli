(** d-dimensional grid (hypergrid) with unit edge weights.

    Generalizes {!Line} (one dimension) and {!Grid} (two); Section 3.1
    invokes log n-dimensional grids as another diameter-O(log n) family
    for the O(k log n) bound.  Node ids are mixed-radix over the
    dimension sizes, least-significant dimension first. *)

type params = { dims : int list }
(** Each entry >= 1; at least one dimension. *)

val n_of : params -> int

val graph : params -> Dtm_graph.Graph.t

val metric : params -> Dtm_graph.Metric.t
(** Closed form: sum of per-dimension coordinate gaps. *)

val coords : params -> int -> int list
val node : params -> int list -> int

val diameter : params -> int
(** Sum of (size - 1) over dimensions. *)
