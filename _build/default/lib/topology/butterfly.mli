(** Butterfly network of dimension [dim] (paper, Section 3.1).

    Nodes are pairs [(level, row)] with [level] in [0, dim] and [row] in
    [0, 2^dim), for [(dim + 1) * 2^dim] nodes total.  Level [l] connects to
    level [l+1] with a "straight" edge (same row) and a "cross" edge (row
    with bit [l] flipped).  All edges have weight 1; the diameter is
    [2 * dim] = O(log n), which is what Section 3.1's O(k log n) bound
    uses. *)

val graph : dim:int -> Dtm_graph.Graph.t
(** Requires [1 <= dim <= 12]. *)

val metric : dim:int -> Dtm_graph.Metric.t
(** APSP-backed (no simple closed form is used). *)

val node : dim:int -> level:int -> row:int -> int
val level : dim:int -> int -> int
val row : dim:int -> int -> int
