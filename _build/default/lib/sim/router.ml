type source = { dist : int array; parent : int array }

type t = { graph : Dtm_graph.Graph.t; cache : (int, source) Hashtbl.t }

let create graph = { graph; cache = Hashtbl.create 64 }

let source t src =
  match Hashtbl.find_opt t.cache src with
  | Some s -> s
  | None ->
    let dist, parent = Dtm_graph.Dijkstra.distances_and_parents t.graph ~src in
    let s = { dist; parent } in
    Hashtbl.replace t.cache src s;
    s

let route t ~src ~dst =
  let s = source t src in
  if s.dist.(dst) = max_int then invalid_arg "Router.route: unreachable";
  let rec build v acc = if v = src then src :: acc else build s.parent.(v) (v :: acc) in
  build dst []

let distance t ~src ~dst =
  let s = source t src in
  if s.dist.(dst) = max_int then invalid_arg "Router.distance: unreachable";
  s.dist.(dst)

let hops t ~src ~dst = List.length (route t ~src ~dst) - 1
