type t =
  | Depart of { obj : int; node : int; dest : int; time : int }
  | Arrive of { obj : int; node : int; time : int }
  | Execute of { node : int; time : int }

let time = function
  | Depart { time; _ } | Arrive { time; _ } | Execute { time; _ } -> time

let phase = function Arrive _ -> 0 | Execute _ -> 1 | Depart _ -> 2

let compare_chronological a b =
  match compare (time a) (time b) with
  | 0 -> (
    match compare (phase a) (phase b) with 0 -> compare a b | c -> c)
  | c -> c

let pp fmt = function
  | Depart { obj; node; dest; time } ->
    Format.fprintf fmt "t=%d depart o%d %d->%d" time obj node dest
  | Arrive { obj; node; time } ->
    Format.fprintf fmt "t=%d arrive o%d @%d" time obj node
  | Execute { node; time } -> Format.fprintf fmt "t=%d execute @%d" time node

let to_string e = Format.asprintf "%a" pp e
