(** Plain-text schedule visualisation.

    Three views of a schedule, for debugging and for the CLI's
    [--chart] flag:

    - {!chart}: one row per transaction, execution step marked on a
      scaled time axis;
    - {!parallelism_profile}: how many transactions commit at each step —
      the shape that distinguishes the paper's parallel schedules from
      serial baselines at a glance;
    - {!object_journeys}: each object's itinerary
      [home -> v1\@t1 -> v2\@t2 -> ...] with per-leg distances. *)

val chart : ?width:int -> Dtm_core.Instance.t -> Dtm_core.Schedule.t -> string
(** Rows sorted by execution step; [width] (default 64) is the number of
    axis columns the makespan is scaled onto. *)

val parallelism_profile : ?width:int -> Dtm_core.Schedule.t -> string
(** A one-line density strip plus peak/mean statistics. *)

val object_journeys :
  Dtm_graph.Metric.t ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t ->
  string
(** Requires all requesters scheduled. *)
