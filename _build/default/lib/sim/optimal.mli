(** Exact optimal schedules for small instances, by exhaustive search.

    Any feasible schedule is dominated by the list schedule of one of its
    linear time extensions: replaying a schedule's own time order through
    {!Engine} never lengthens it, and the engine's output visits each
    object's requesters in the same order.  Hence the optimum makespan
    equals the minimum of {!Engine.run} over all priority permutations of
    the transactions — computable exactly for up to ~8 transactions.

    Used by the tests and the lower-bound-tightness experiment to measure
    {e true} approximation ratios, not just ratios against the certified
    lower bound. *)

val max_transactions : int
(** Permutation cap (8: 8! = 40320 engine runs). *)

val exhaustive :
  Dtm_graph.Metric.t -> Dtm_core.Instance.t -> Dtm_core.Schedule.t
(** [exhaustive m inst] is a makespan-optimal feasible schedule.  Raises
    [Invalid_argument] beyond {!max_transactions} transactions. *)

val makespan : Dtm_graph.Metric.t -> Dtm_core.Instance.t -> int
(** Just the optimal makespan. *)
