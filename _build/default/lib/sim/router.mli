(** Shortest-path routing over the explicit communication graph.

    The paper's model sends objects along shortest paths (Section 2.1);
    the simulator uses this module to expand metric-level moves into the
    hop-by-hop node sequences the network would really carry.  Routes are
    computed with Dijkstra and cached per source. *)

type t

val create : Dtm_graph.Graph.t -> t

val route : t -> src:int -> dst:int -> int list
(** Node sequence from [src] to [dst], both inclusive ([src] alone when
    equal).  Raises [Invalid_argument] when unreachable. *)

val distance : t -> src:int -> dst:int -> int
(** Weighted length of {!route}. *)

val hops : t -> src:int -> dst:int -> int
(** Number of edges of {!route}. *)
