(** Chronological execution traces with invariant checking.

    The replay and online engines emit traces; tests assert the
    single-copy and exactly-once invariants on them. *)

type t

val of_events : Event.t list -> t
(** Sorts the events chronologically. *)

val events : t -> Event.t list

val length : t -> int

val executions : t -> (int * int) list
(** [(node, time)] of every [Execute] event, chronological. *)

val object_history : t -> int -> Event.t list
(** All events touching a given object. *)

val check_single_copy : t -> initial_pos:int array -> (unit, string) result
(** Every object departs only from the node where it currently is, and
    arrives where it was headed: the single-copy invariant of the
    data-flow model. *)

val check_executes_once : t -> (unit, string) result
(** No node commits twice. *)

val pp : Format.formatter -> t -> unit
