module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule

let chart ?(width = 64) inst sched =
  let buf = Buffer.create 1024 in
  let mk = max 1 (Schedule.makespan sched) in
  let scale t = min (width - 1) ((t - 1) * width / mk) in
  let nodes =
    Array.to_list (Instance.txn_nodes inst)
    |> List.filter (fun v -> Schedule.time sched v <> None)
    |> List.sort (fun a b ->
           compare (Schedule.time_exn sched a) (Schedule.time_exn sched b))
  in
  Buffer.add_string buf
    (Printf.sprintf "schedule chart: %d transactions, makespan %d\n"
       (List.length nodes) (Schedule.makespan sched));
  Buffer.add_string buf
    (Printf.sprintf "%10s 1%s%d\n" "" (String.make (max 0 (width - 2)) ' ') mk);
  List.iter
    (fun v ->
      let t = Schedule.time_exn sched v in
      let col = scale t in
      Buffer.add_string buf
        (Printf.sprintf "node %5d|%s#%s| t=%d\n" v (String.make col '.')
           (String.make (width - 1 - col) '.')
           t))
    nodes;
  Buffer.contents buf

let parallelism_profile ?(width = 64) sched =
  let mk = Schedule.makespan sched in
  if mk = 0 then "empty schedule\n"
  else begin
    let counts = Array.make mk 0 in
    List.iter
      (fun v ->
        let t = Schedule.time_exn sched v in
        counts.(t - 1) <- counts.(t - 1) + 1)
      (Schedule.scheduled_nodes sched);
    (* Bucket steps onto the strip and draw density. *)
    let buckets = Array.make (min width mk) 0 in
    Array.iteri
      (fun i c ->
        let b = i * Array.length buckets / mk in
        buckets.(b) <- buckets.(b) + c)
      counts;
    let peak = Array.fold_left max 1 buckets in
    let glyphs = " .:-=+*#%@" in
    let strip =
      String.init (Array.length buckets) (fun b ->
          let level = buckets.(b) * (String.length glyphs - 1) / peak in
          glyphs.[level])
    in
    let total = Array.fold_left ( + ) 0 counts in
    let busy = Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 counts in
    Printf.sprintf
      "parallelism |%s| peak %d/step, %d commits over %d steps (%d busy)\n"
      strip
      (Array.fold_left max 0 counts)
      total mk busy
  end

let object_journeys metric inst sched =
  let buf = Buffer.create 1024 in
  for o = 0 to Instance.num_objects inst - 1 do
    let reqs = Instance.requesters inst o in
    if Array.length reqs > 0 then begin
      let order = Schedule.object_order sched ~requesters:reqs in
      let home = Instance.home inst o in
      Buffer.add_string buf (Printf.sprintf "object %3d: %d" o home);
      let travelled = ref 0 in
      let prev = ref home in
      List.iter
        (fun v ->
          let d = Dtm_graph.Metric.dist metric !prev v in
          travelled := !travelled + d;
          Buffer.add_string buf
            (Printf.sprintf " -(%d)-> %d@%d" d v (Schedule.time_exn sched v));
          prev := v)
        order;
      Buffer.add_string buf (Printf.sprintf "  [travel %d]\n" !travelled)
    end
  done;
  Buffer.contents buf
