module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule

type result = {
  ok : bool;
  errors : string list;
  makespan : int;
  messages : int;
  hops : int;
  total_wait : int;
  trace : Trace.t;
}

let run graph inst sched =
  let router = Router.create graph in
  let errors = ref [] in
  let error fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let events = ref [] in
  let emit e = events := e :: !events in
  let messages = ref 0 and hops = ref 0 and total_wait = ref 0 in
  (* Transactions must all be scheduled. *)
  Array.iter
    (fun v ->
      match Schedule.time sched v with
      | Some t -> emit (Event.Execute { node = v; time = t })
      | None -> error "transaction at node %d is unscheduled" v)
    (Instance.txn_nodes inst);
  (* Per-object replay along its visit order. *)
  for o = 0 to Instance.num_objects inst - 1 do
    let reqs = Instance.requesters inst o in
    let all_scheduled = Array.for_all (fun v -> Schedule.time sched v <> None) reqs in
    if Array.length reqs > 0 && all_scheduled then begin
      let order = Schedule.object_order sched ~requesters:reqs in
      let move src dst release =
        (* Hop-by-hop along a shortest path, leaving at the end of step
           [release]. *)
        let path = Router.route router ~src ~dst in
        let rec go t = function
          | a :: (b :: _ as rest) ->
            let w =
              match Dtm_graph.Graph.edge_weight graph a b with
              | Some w -> w
              | None -> assert false
            in
            emit (Event.Depart { obj = o; node = a; dest = b; time = t });
            emit (Event.Arrive { obj = o; node = b; time = t + w });
            messages := !messages + w;
            incr hops;
            go (t + w) rest
          | _ -> t
        in
        go release path
      in
      let visit (pos, release) v =
        let t = Schedule.time_exn sched v in
        let arrival = if v = pos then release else move pos v release in
        if arrival > t then
          error "object %d reaches node %d at step %d but it executes at %d" o v
            arrival t
        else if t < 1 then error "object %d used at invalid step %d" o t
        else total_wait := !total_wait + (t - max arrival 0);
        (v, t)
      in
      ignore (List.fold_left visit (Instance.home inst o, 0) order)
    end
  done;
  let trace = Trace.of_events !events in
  {
    ok = !errors = [];
    errors = List.rev !errors;
    makespan = Schedule.makespan sched;
    messages = !messages;
    hops = !hops;
    total_wait = !total_wait;
    trace;
  }
