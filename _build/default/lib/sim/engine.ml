module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule

type priority =
  | Node_order
  | By_schedule of Schedule.t
  | Custom of (int -> int)

let run ?(priority = Node_order) metric inst =
  let rank =
    match priority with
    | Node_order -> fun v -> v
    | By_schedule s -> fun v -> Schedule.time_exn s v
    | Custom f -> f
  in
  let order =
    Array.to_list (Instance.txn_nodes inst)
    |> List.stable_sort (fun a b ->
           match compare (rank a) (rank b) with 0 -> compare a b | c -> c)
  in
  let w = Instance.num_objects inst in
  let release = Array.make w 0 in
  let pos = Array.init w (Instance.home inst) in
  let sched = Schedule.create ~n:(Instance.n inst) in
  List.iter
    (fun v ->
      match Instance.txn_at inst v with
      | None -> ()
      | Some objs ->
        let ready =
          Array.fold_left
            (fun acc o ->
              max acc (release.(o) + Dtm_graph.Metric.dist metric pos.(o) v))
            1 objs
        in
        Schedule.set sched ~node:v ~time:ready;
        Array.iter
          (fun o ->
            release.(o) <- ready;
            pos.(o) <- v)
          objs)
    order;
  sched

let compact metric inst sched = run ~priority:(By_schedule sched) metric inst
