(** Events of a synchronous execution (paper, Section 2.1: at each step a
    node receives objects, executes a ready transaction, and forwards
    objects). *)

type t =
  | Depart of { obj : int; node : int; dest : int; time : int }
      (** the object leaves [node] for [dest] at the end of step [time] *)
  | Arrive of { obj : int; node : int; time : int }
      (** the object is received at [node] at the start of step [time] *)
  | Execute of { node : int; time : int }
      (** the transaction at [node] commits during step [time] *)

val time : t -> int

val compare_chronological : t -> t -> int
(** Orders by time, with arrivals before executions before departures
    within one step — the paper's receive/execute/forward sub-step
    order. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
