lib/sim/engine.mli: Dtm_core Dtm_graph
