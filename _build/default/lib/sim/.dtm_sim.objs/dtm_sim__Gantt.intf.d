lib/sim/gantt.mli: Dtm_core Dtm_graph
