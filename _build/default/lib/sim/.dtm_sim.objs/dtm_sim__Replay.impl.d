lib/sim/replay.ml: Array Dtm_core Dtm_graph Event List Printf Router Trace
