lib/sim/replay.mli: Dtm_core Dtm_graph Trace
