lib/sim/trace.ml: Array Event Format Hashtbl List Printf
