lib/sim/congestion.ml: Array Dtm_core Dtm_graph Hashtbl List Queue Router
