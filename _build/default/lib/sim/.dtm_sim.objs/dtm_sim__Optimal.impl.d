lib/sim/optimal.ml: Array Dtm_core Engine List
