lib/sim/gantt.ml: Array Buffer Dtm_core Dtm_graph List Printf String
