lib/sim/router.ml: Array Dtm_graph Hashtbl List
