lib/sim/optimal.mli: Dtm_core Dtm_graph
