lib/sim/router.mli: Dtm_graph
