lib/sim/congestion.mli: Dtm_core Dtm_graph
