lib/sim/engine.ml: Array Dtm_core Dtm_graph List
