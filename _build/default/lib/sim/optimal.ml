module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule

let max_transactions = 8

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let exhaustive metric inst =
  let nodes = Array.to_list (Instance.txn_nodes inst) in
  if List.length nodes > max_transactions then
    invalid_arg "Optimal.exhaustive: too many transactions";
  let best = ref None in
  List.iter
    (fun perm ->
      let rank = List.mapi (fun i v -> (v, i)) perm in
      let priority v = List.assoc v rank in
      let sched = Engine.run ~priority:(Engine.Custom priority) metric inst in
      match !best with
      | Some b when Schedule.makespan b <= Schedule.makespan sched -> ()
      | _ -> best := Some sched)
    (permutations nodes);
  match !best with
  | Some s -> s
  | None -> Schedule.create ~n:(Instance.n inst)

let makespan metric inst = Schedule.makespan (exhaustive metric inst)
