type t = Event.t list (* chronological *)

let of_events events = List.sort Event.compare_chronological events

let events t = t
let length = List.length

let executions t =
  List.filter_map
    (function Event.Execute { node; time } -> Some (node, time) | _ -> None)
    t

let object_history t o =
  List.filter
    (function
      | Event.Depart { obj; _ } | Event.Arrive { obj; _ } -> obj = o
      | Event.Execute _ -> false)
    t

let check_single_copy t ~initial_pos =
  let pos = Array.copy initial_pos in
  (* None in [in_flight] means at [pos]; Some dest means travelling. *)
  let in_flight = Array.make (Array.length initial_pos) None in
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  List.iter
    (fun e ->
      match e with
      | Event.Depart { obj; node; dest; _ } ->
        if in_flight.(obj) <> None then fail "object %d departed while in flight" obj
        else if pos.(obj) <> node then
          fail "object %d departed from %d but is at %d" obj node pos.(obj)
        else in_flight.(obj) <- Some dest
      | Event.Arrive { obj; node; _ } -> (
        match in_flight.(obj) with
        | Some dest when dest = node ->
          in_flight.(obj) <- None;
          pos.(obj) <- node
        | Some dest -> fail "object %d arrived at %d but headed to %d" obj node dest
        | None -> fail "object %d arrived without departing" obj)
      | Event.Execute _ -> ())
    t;
  match !err with None -> Ok () | Some e -> Error e

let check_executes_once t =
  let seen = Hashtbl.create 64 in
  let err = ref None in
  List.iter
    (function
      | Event.Execute { node; _ } ->
        if Hashtbl.mem seen node && !err = None then
          err := Some (Printf.sprintf "node %d executed twice" node)
        else Hashtbl.replace seen node ()
      | Event.Depart _ | Event.Arrive _ -> ())
    t;
  match !err with None -> Ok () | Some e -> Error e

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "%a@." Event.pp e) t
