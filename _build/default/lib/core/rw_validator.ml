let violation what obj node = { Validator.what; obj; node }

let check metric rw sched =
  let inst = Rw_instance.base rw in
  let err = ref None in
  let fail what ?obj ?node () =
    if !err = None then err := Some (violation what obj node)
  in
  (* Completeness, as in the base validator. *)
  for v = 0 to Instance.n inst - 1 do
    match (Instance.txn_at inst v, Schedule.time sched v) with
    | Some _, None -> fail "transaction not scheduled" ~node:v ()
    | None, Some _ -> fail "schedule entry for node without transaction" ~node:v ()
    | _ -> ()
  done;
  if !err = None then
    for o = 0 to Instance.num_objects inst - 1 do
      if !err = None then begin
        let home = Instance.home inst o in
        let writers = Rw_instance.writers rw o in
        let readers = Rw_instance.readers rw o in
        let all_scheduled =
          Array.for_all (fun v -> Schedule.time sched v <> None) writers
          && Array.for_all (fun v -> Schedule.time sched v <> None) readers
        in
        if all_scheduled then begin
          let worder = Schedule.object_order sched ~requesters:writers in
          (* Master-copy chain over the writers. *)
          (match worder with
          | [] -> ()
          | w1 :: _ ->
            let t1 = Schedule.time_exn sched w1 in
            if t1 < max 1 (Dtm_graph.Metric.dist metric home w1) then
              fail "first writer runs before the master copy can arrive" ~obj:o
                ~node:w1 ());
          let rec chain = function
            | a :: (b :: _ as rest) ->
              let ta = Schedule.time_exn sched a and tb = Schedule.time_exn sched b in
              if tb - ta < Dtm_graph.Metric.dist metric a b then
                fail "consecutive writers violate master travel time" ~obj:o
                  ~node:b ();
              if ta = tb then
                fail "two writers of one object share a step" ~obj:o ~node:b ();
              chain rest
            | _ -> ()
          in
          chain worder;
          (* Readers: copy from the latest strictly-earlier writer. *)
          Array.iter
            (fun r ->
              let tr = Schedule.time_exn sched r in
              let source = ref (home, 0) in
              List.iter
                (fun wv ->
                  let tw = Schedule.time_exn sched wv in
                  if tw = tr then
                    fail "reader shares a step with a writer" ~obj:o ~node:r ();
                  if tw < tr && tw >= snd !source then source := (wv, tw))
                worder;
              let src, release = !source in
              if tr < max 1 (release + Dtm_graph.Metric.dist metric src r) then
                fail "reader runs before its copy can arrive" ~obj:o ~node:r ())
            readers
        end
      end
    done;
  match !err with None -> Ok () | Some v -> Error v

let is_feasible metric rw sched = check metric rw sched = Ok ()
