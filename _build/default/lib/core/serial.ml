let lines_of s =
  String.split_on_char '\n' s
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')

let tokens l = String.split_on_char ' ' l |> List.filter (fun t -> t <> "")

let instance_to_string inst =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "dtm-instance v1\n";
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Instance.n inst));
  Buffer.add_string buf (Printf.sprintf "objects %d\n" (Instance.num_objects inst));
  for o = 0 to Instance.num_objects inst - 1 do
    Buffer.add_string buf (Printf.sprintf "home %d %d\n" o (Instance.home inst o))
  done;
  Array.iter
    (fun v ->
      match Instance.txn_at inst v with
      | None -> ()
      | Some objs ->
        Buffer.add_string buf (Printf.sprintf "txn %d" v);
        Array.iter (fun o -> Buffer.add_string buf (Printf.sprintf " %d" o)) objs;
        Buffer.add_char buf '\n')
    (Instance.txn_nodes inst);
  Buffer.contents buf

let parse_int_exn what s =
  match int_of_string_opt s with
  | Some x -> x
  | None -> failwith (Printf.sprintf "bad integer %S in %s" s what)

let instance_of_string s =
  try
    match lines_of s with
    | [] -> Error "empty input"
    | header :: rest ->
      if header <> "dtm-instance v1" then failwith "missing dtm-instance v1 header";
      let n = ref (-1) and w = ref (-1) in
      let homes = Hashtbl.create 16 in
      let txns = ref [] in
      List.iter
        (fun line ->
          match tokens line with
          | [ "n"; x ] -> n := parse_int_exn "n" x
          | [ "objects"; x ] -> w := parse_int_exn "objects" x
          | [ "home"; o; v ] ->
            Hashtbl.replace homes (parse_int_exn "home" o) (parse_int_exn "home" v)
          | "txn" :: v :: objs when objs <> [] ->
            txns :=
              (parse_int_exn "txn" v, List.map (parse_int_exn "txn") objs) :: !txns
          | _ -> failwith (Printf.sprintf "unrecognized line %S" line))
        rest;
      if !n < 0 then failwith "missing n";
      if !w < 0 then failwith "missing objects";
      let home =
        Array.init !w (fun o ->
            match Hashtbl.find_opt homes o with
            | Some v -> v
            | None -> failwith (Printf.sprintf "missing home for object %d" o))
      in
      Ok (Instance.create ~n:!n ~num_objects:!w ~txns:(List.rev !txns) ~home)
  with
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg

let schedule_to_string sched =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "dtm-schedule v1\n";
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Schedule.capacity sched));
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "at %d %d\n" v (Schedule.time_exn sched v)))
    (Schedule.scheduled_nodes sched);
  Buffer.contents buf

let schedule_of_string s =
  try
    match lines_of s with
    | [] -> Error "empty input"
    | header :: rest ->
      if header <> "dtm-schedule v1" then failwith "missing dtm-schedule v1 header";
      let n = ref (-1) in
      let ats = ref [] in
      List.iter
        (fun line ->
          match tokens line with
          | [ "n"; x ] -> n := parse_int_exn "n" x
          | [ "at"; v; t ] ->
            ats := (parse_int_exn "at" v, parse_int_exn "at" t) :: !ats
          | _ -> failwith (Printf.sprintf "unrecognized line %S" line))
        rest;
      if !n < 0 then failwith "missing n";
      Ok (Schedule.of_times (List.rev !ats) ~n:!n)
  with
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg
