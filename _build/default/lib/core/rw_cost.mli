(** Communication cost under read replication.

    Replication trades execution time for bandwidth: the master copy
    still walks its writer chain, but every reader additionally receives
    its own copy shipped from the latest preceding writer (or the home).
    This module totals that traffic, so experiments can show the
    time/messages trade-off of the replicated model next to
    {!Cost.communication} for the base model. *)

val per_object_traffic :
  Dtm_graph.Metric.t -> Rw_instance.t -> Schedule.t -> int array
(** Per object: master-chain distance plus one copy distance per
    reader.  Requires a fully scheduled instance. *)

val communication : Dtm_graph.Metric.t -> Rw_instance.t -> Schedule.t -> int
(** Sum of {!per_object_traffic}. *)
