let schedule_with_stats ?strategy ?order metric inst =
  let dep = Dependency.build metric inst in
  let coloring = Coloring.greedy ?strategy ?order dep inst in
  let colors = coloring.Coloring.colors in
  (* Smallest global shift making every object reachable by its first
     user: color + shift >= max 1 (dist home first). *)
  let shift = ref 0 in
  for o = 0 to Instance.num_objects inst - 1 do
    let reqs = Instance.requesters inst o in
    if Array.length reqs > 0 then begin
      let first =
        Array.fold_left
          (fun best v ->
            match best with
            | None -> Some v
            | Some b -> if colors.(v) < colors.(b) then Some v else best)
          None reqs
      in
      match first with
      | None -> ()
      | Some v ->
        let need = max 1 (Dtm_graph.Metric.dist metric (Instance.home inst o) v) in
        if need - colors.(v) > !shift then shift := need - colors.(v)
    end
  done;
  let sched = Schedule.create ~n:(Instance.n inst) in
  Array.iter
    (fun v -> Schedule.set sched ~node:v ~time:(colors.(v) + !shift))
    (Instance.txn_nodes inst);
  (sched, coloring, dep)

let schedule ?strategy ?order metric inst =
  let sched, _, _ = schedule_with_stats ?strategy ?order metric inst in
  sched
