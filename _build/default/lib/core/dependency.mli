(** The weighted transaction dependency (conflict) graph H of Section 2.3.

    Nodes are transactions (identified by their network node); an edge
    joins two transactions that share at least one object, weighted by the
    distance between their nodes in the communication graph. *)

type t

val build : Dtm_graph.Metric.t -> Instance.t -> t

val conflicts : t -> int -> (int * int) array
(** [conflicts t v] is the array of [(neighbor, weight)] conflicts of the
    transaction at node [v] (empty if none or no transaction).  Do not
    mutate. *)

val hmax : t -> int
(** Largest edge weight in H (1-distance lower bound on any schedule with
    a conflict); 0 when H has no edges. *)

val max_degree : t -> int
(** ∆: largest number of neighbors of any transaction. *)

val weighted_degree : t -> int
(** Γ = hmax · ∆ (the paper's bound on the colors the greedy scheme
    needs, plus one). *)

val num_conflicts : t -> int
(** Number of edges of H. *)
