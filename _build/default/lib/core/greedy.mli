(** The basic greedy schedule of Section 2.3.

    Builds the dependency graph, colors it greedily, and converts colors
    to time steps.  The paper assumes objects are already positioned at
    their first transaction; to produce schedules that are feasible from
    the objects' real homes, colors are shifted by the smallest offset
    that gives every object time to reach its first user.

    On a clique this is the Theorem 1 O(k)-approximation; on any
    diameter-d graph it is the Section 3.1 O(k·l·d) schedule. *)

val schedule :
  ?strategy:Coloring.strategy ->
  ?order:Coloring.order ->
  Dtm_graph.Metric.t ->
  Instance.t ->
  Schedule.t

val schedule_with_stats :
  ?strategy:Coloring.strategy ->
  ?order:Coloring.order ->
  Dtm_graph.Metric.t ->
  Instance.t ->
  Schedule.t * Coloring.t * Dependency.t
(** Also exposes the coloring and dependency graph (for the ablation
    benches and tests). *)
