(** A batch scheduling problem instance (paper, Section 2.1).

    [n] network nodes hold at most one transaction each; there are [w]
    shared objects, each with a single mobile copy starting at its home
    node.  A transaction is identified by the node it runs at and carries
    the set of objects it needs.

    Time convention used across the library: time steps are the positive
    integers.  A transaction scheduled at step [t] has all its objects at
    its node at step [t]; the object's home releases it at (virtual) step
    0, and moving across distance [d] takes [d] steps.  So the first user
    of an object at distance [d] from its home can run no earlier than
    step [max 1 d]. *)

type t

val create :
  n:int -> num_objects:int -> txns:(int * int list) list -> home:int array -> t
(** [create ~n ~num_objects ~txns ~home] builds an instance.
    [txns] maps nodes to requested object lists (duplicates within a list
    are merged); [home.(o)] is object [o]'s initial node.  Raises
    [Invalid_argument] on out-of-range nodes/objects, two transactions on
    one node, an empty object list, or a mis-sized [home]. *)

val n : t -> int
val num_objects : t -> int

val txn_at : t -> int -> int array option
(** Objects requested by the transaction at a node, sorted; [None] when
    the node has no transaction.  Do not mutate the result. *)

val txn_nodes : t -> int array
(** Nodes that hold a transaction, ascending.  Do not mutate. *)

val num_txns : t -> int

val requesters : t -> int -> int array
(** Nodes whose transaction requests object [o], ascending.  Do not
    mutate. *)

val home : t -> int -> int

val k_max : t -> int
(** Largest per-transaction object count (the paper's k). *)

val load : t -> int
(** ℓ = max over objects of the number of requesting transactions. *)

val uses : t -> node:int -> obj:int -> bool

val shared_objects : t -> node1:int -> node2:int -> int list
(** Objects requested by both transactions (empty if either node has no
    transaction). *)

val homes_at_requesters : t -> bool
(** True when every object with at least one requester starts at one of
    its requesters — the paper's usual initial placement. *)
