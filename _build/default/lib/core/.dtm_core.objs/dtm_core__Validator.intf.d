lib/core/validator.mli: Dtm_graph Instance Schedule
