lib/core/validator.ml: Array Dtm_graph Instance List Printf Schedule
