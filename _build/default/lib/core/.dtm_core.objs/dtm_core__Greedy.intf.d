lib/core/greedy.mli: Coloring Dependency Dtm_graph Instance Schedule
