lib/core/dependency.mli: Dtm_graph Instance
