lib/core/rw_greedy.ml: Array Coloring Dtm_graph Dtm_util Hashtbl Instance List Rw_instance Schedule
