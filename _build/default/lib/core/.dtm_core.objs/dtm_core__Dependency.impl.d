lib/core/dependency.ml: Array Dtm_graph Hashtbl Instance
