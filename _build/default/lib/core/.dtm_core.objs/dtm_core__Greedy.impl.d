lib/core/greedy.ml: Array Coloring Dependency Dtm_graph Instance Schedule
