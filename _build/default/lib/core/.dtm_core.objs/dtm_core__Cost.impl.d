lib/core/cost.ml: Array Dtm_graph Instance Lower_bound Printf Schedule
