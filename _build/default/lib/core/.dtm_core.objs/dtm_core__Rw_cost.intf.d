lib/core/rw_cost.mli: Dtm_graph Rw_instance Schedule
