lib/core/rw_instance.mli: Instance
