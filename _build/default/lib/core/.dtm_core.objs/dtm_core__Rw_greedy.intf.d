lib/core/rw_greedy.mli: Coloring Dtm_graph Rw_instance Schedule
