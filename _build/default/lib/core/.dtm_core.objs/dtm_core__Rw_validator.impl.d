lib/core/rw_validator.ml: Array Dtm_graph Instance List Rw_instance Schedule Validator
