lib/core/serial.mli: Instance Schedule
