lib/core/rw_validator.mli: Dtm_graph Rw_instance Schedule Validator
