lib/core/lower_bound.mli: Dtm_graph Instance
