lib/core/coloring.mli: Dependency Instance
