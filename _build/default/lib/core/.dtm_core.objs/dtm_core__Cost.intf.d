lib/core/cost.mli: Dtm_graph Instance Schedule
