lib/core/rw_lower_bound.mli: Dtm_graph Rw_instance
