lib/core/serial.ml: Array Buffer Hashtbl Instance List Printf Schedule String
