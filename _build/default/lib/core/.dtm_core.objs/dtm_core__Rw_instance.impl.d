lib/core/rw_instance.ml: Array Instance List
