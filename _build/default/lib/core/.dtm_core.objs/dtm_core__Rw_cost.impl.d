lib/core/rw_cost.ml: Array Dtm_graph Instance List Rw_instance Schedule
