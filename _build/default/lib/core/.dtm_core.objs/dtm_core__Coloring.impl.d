lib/core/coloring.ml: Array Dependency Dtm_util Instance List
