lib/core/schedule.ml: Array Format Fun List
