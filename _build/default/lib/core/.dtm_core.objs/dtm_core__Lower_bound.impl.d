lib/core/lower_bound.ml: Array Dtm_graph Instance
