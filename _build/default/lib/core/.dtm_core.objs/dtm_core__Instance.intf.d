lib/core/instance.mli:
