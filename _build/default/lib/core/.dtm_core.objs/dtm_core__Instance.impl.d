lib/core/instance.ml: Array Fun List
