lib/core/rw_lower_bound.ml: Array Dtm_graph Instance Rw_instance
