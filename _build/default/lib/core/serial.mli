(** Plain-text serialization of instances and schedules.

    A small line-oriented format so experiment inputs and outputs can be
    saved, diffed, and replayed across runs (the CLI's [--save-instance] /
    [--load-instance] flags).  Format, one record per line, [#] comments
    and blank lines ignored:

    {v
    dtm-instance v1
    n <nodes>
    objects <w>
    home <o> <node>          (one line per object)
    txn <node> <o1> <o2> ... (one line per transaction)
    v}

    and for schedules:

    {v
    dtm-schedule v1
    n <nodes>
    at <node> <time>
    v} *)

val instance_to_string : Instance.t -> string

val instance_of_string : string -> (Instance.t, string) result

val schedule_to_string : Schedule.t -> string

val schedule_of_string : string -> (Schedule.t, string) result
