type strategy = Slotted | Compact

type order = Natural | Desc_degree | Random_order of int

type t = { colors : int array; num_colors : int }

let order_nodes order dep inst =
  let nodes = Array.copy (Instance.txn_nodes inst) in
  (match order with
  | Natural -> ()
  | Desc_degree ->
    let deg v = Array.length (Dependency.conflicts dep v) in
    (* Stable sort keeps ascending node id within equal degrees. *)
    let lst = Array.to_list nodes in
    let sorted =
      List.stable_sort (fun a b -> compare (deg b) (deg a)) lst
    in
    List.iteri (fun i v -> nodes.(i) <- v) sorted
  | Random_order seed ->
    let rng = Dtm_util.Prng.create ~seed in
    Dtm_util.Prng.shuffle rng nodes);
  nodes

(* Smallest c >= 1 with |c - cv| >= w for every colored conflict (cv, w):
   collect the forbidden open intervals and scan. *)
let smallest_compact constraints =
  let forbidden =
    List.filter_map
      (fun (cv, w) ->
        let lo = max 1 (cv - w + 1) and hi = cv + w - 1 in
        if lo <= hi then Some (lo, hi) else None)
      constraints
  in
  let sorted = List.sort compare forbidden in
  let rec scan c = function
    | [] -> c
    | (lo, hi) :: rest ->
      if c < lo then c else scan (max c (hi + 1)) rest
  in
  scan 1 sorted

let smallest_slotted hmax constraints =
  let step = max 1 hmax in
  let ok c = List.for_all (fun (cv, w) -> abs (c - cv) >= w) constraints in
  let rec go j =
    let c = (j * step) + 1 in
    if ok c then c else go (j + 1)
  in
  go 0

let greedy ?(strategy = Compact) ?(order = Natural) dep inst =
  let n = Instance.n inst in
  let colors = Array.make n 0 in
  let nodes = order_nodes order dep inst in
  let hmax = Dependency.hmax dep in
  Array.iter
    (fun v ->
      let constraints =
        Array.to_list (Dependency.conflicts dep v)
        |> List.filter_map (fun (u, w) ->
               if colors.(u) <> 0 then Some (colors.(u), w) else None)
      in
      let c =
        match strategy with
        | Compact -> smallest_compact constraints
        | Slotted -> smallest_slotted hmax constraints
      in
      colors.(v) <- c)
    nodes;
  { colors; num_colors = Array.fold_left max 0 colors }

let is_valid dep inst colors =
  let n = Instance.n inst in
  if Array.length colors <> n then false
  else begin
    let ok = ref true in
    for v = 0 to n - 1 do
      (match Instance.txn_at inst v with
      | None -> if colors.(v) <> 0 then ok := false
      | Some _ -> if colors.(v) < 1 then ok := false);
      Array.iter
        (fun (u, w) ->
          if colors.(v) >= 1 && colors.(u) >= 1 && abs (colors.(v) - colors.(u)) < w
          then ok := false)
        (Dependency.conflicts dep v)
    done;
    !ok
  end
