(* A lightweight variant of Dependency/Greedy with write-aware edges. *)

let conflict_pairs rw =
  let inst = Rw_instance.base rw in
  let seen = Hashtbl.create 256 in
  let out = ref [] in
  for o = 0 to Instance.num_objects inst - 1 do
    let writers = Rw_instance.writers rw o in
    let readers = Rw_instance.readers rw o in
    let add u v =
      let u, v = if u < v then (u, v) else (v, u) in
      if u <> v && not (Hashtbl.mem seen (u, v)) then begin
        Hashtbl.replace seen (u, v) ();
        out := (u, v) :: !out
      end
    in
    Array.iteri
      (fun i u ->
        for j = i + 1 to Array.length writers - 1 do
          add u writers.(j)
        done;
        Array.iter (fun r -> add u r) readers)
      writers
  done;
  List.rev !out

let schedule ?strategy ?order metric rw =
  let inst = Rw_instance.base rw in
  let n = Instance.n inst in
  (* Adjacency with distances, from the write-aware pairs. *)
  let adj = Array.make n [] in
  let hmax = ref 0 in
  List.iter
    (fun (u, v) ->
      let d = Dtm_graph.Metric.dist metric u v in
      adj.(u) <- (v, d) :: adj.(u);
      adj.(v) <- (u, d) :: adj.(v);
      if d > !hmax then hmax := d)
    (conflict_pairs rw);
  let nodes = Instance.txn_nodes inst in
  let order_nodes =
    match order with
    | None | Some Coloring.Natural -> Array.copy nodes
    | Some Coloring.Desc_degree ->
      let arr = Array.copy nodes in
      let lst = Array.to_list arr in
      let sorted =
        List.stable_sort
          (fun a b -> compare (List.length adj.(b)) (List.length adj.(a)))
          lst
      in
      Array.of_list sorted
    | Some (Coloring.Random_order seed) ->
      let rng = Dtm_util.Prng.create ~seed in
      Dtm_util.Prng.shuffled_copy rng nodes
  in
  let colors = Array.make n 0 in
  let slotted = strategy = Some Coloring.Slotted in
  Array.iter
    (fun v ->
      let constraints =
        List.filter_map
          (fun (u, w) -> if colors.(u) <> 0 then Some (colors.(u), w) else None)
          adj.(v)
      in
      let ok c = List.for_all (fun (cv, w) -> abs (c - cv) >= w) constraints in
      let c =
        if slotted then begin
          let step = max 1 !hmax in
          let rec go j = if ok ((j * step) + 1) then (j * step) + 1 else go (j + 1) in
          go 0
        end
        else begin
          let rec go c = if ok c then c else go (c + 1) in
          go 1
        end
      in
      colors.(v) <- c)
    order_nodes;
  (* Shift so home-sourced copies arrive in time: first writers, and
     readers that precede every writer of their object. *)
  let shift = ref 0 in
  let bump node o =
    let need =
      max 1 (Dtm_graph.Metric.dist metric (Instance.home inst o) node)
      - colors.(node)
    in
    if need > !shift then shift := need
  in
  for o = 0 to Instance.num_objects inst - 1 do
    let writers = Rw_instance.writers rw o in
    let first_writer_color =
      Array.fold_left (fun acc wv -> min acc colors.(wv)) max_int writers
    in
    Array.iter
      (fun wv -> if colors.(wv) = first_writer_color then bump wv o)
      writers;
    Array.iter
      (fun r -> if colors.(r) < first_writer_color then bump r o)
      (Rw_instance.readers rw o)
  done;
  let sched = Schedule.create ~n in
  Array.iter
    (fun v -> Schedule.set sched ~node:v ~time:(colors.(v) + !shift))
    nodes;
  sched
