(** Cost measures of a schedule (paper, Definition 1 and Section 1.2).

    Execution time is the makespan; communication cost is the total
    distance travelled by all objects, which Busch et al. (PODC 2015)
    showed cannot be minimized simultaneously with execution time. *)

val makespan : Schedule.t -> int

val communication : Dtm_graph.Metric.t -> Instance.t -> Schedule.t -> int
(** Sum over objects of (home -> first user) plus consecutive user-to-user
    distances in schedule order.  Requires a fully scheduled instance. *)

val per_object_travel : Dtm_graph.Metric.t -> Instance.t -> Schedule.t -> int array
(** The same, per object. *)

val summary :
  Dtm_graph.Metric.t -> Instance.t -> Schedule.t -> string
(** One-line "makespan=.. comm=.. lb=.. ratio=.." report. *)
