type t = { write_load : int; writer_walk : int; reach : int; certified : int }

let compute metric rw =
  let inst = Rw_instance.base rw in
  let write_load = Rw_instance.write_load rw in
  let writer_walk = ref 0 and reach = ref 0 in
  for o = 0 to Instance.num_objects inst - 1 do
    let home = Instance.home inst o in
    let writers = Array.to_list (Rw_instance.writers rw o) in
    if writers <> [] then begin
      let b = Dtm_graph.Walk.bounds metric ~home writers in
      let w = Dtm_graph.Walk.best_lower b in
      if w > !writer_walk then writer_walk := w
    end;
    Array.iter
      (fun u ->
        let d = Dtm_graph.Metric.dist metric home u in
        if d > !reach then reach := d)
      (Instance.requesters inst o)
  done;
  let base = if Instance.num_txns inst > 0 then 1 else 0 in
  {
    write_load;
    writer_walk = !writer_walk;
    reach = !reach;
    certified = max base (max write_load (max !writer_walk !reach));
  }

let certified metric rw = (compute metric rw).certified
