(** An execution schedule: the time step at which each transaction
    executes and commits (paper, Definition 1).

    Steps are positive integers; the makespan is the largest assigned
    step.  Feasibility against an instance and a metric is checked by
    {!Validator}. *)

type t

val create : n:int -> t
(** All nodes unscheduled. *)

val capacity : t -> int
(** The [n] the schedule was created with. *)

val of_times : (int * int) list -> n:int -> t
(** [of_times assoc ~n] from [(node, time)] pairs.  Raises
    [Invalid_argument] on duplicates, times < 1, or nodes out of range. *)

val set : t -> node:int -> time:int -> unit
(** Assign (or reassign) the execution step of the transaction at
    [node].  [time >= 1]. *)

val time : t -> int -> int option
(** Scheduled step of the transaction at a node. *)

val time_exn : t -> int -> int

val makespan : t -> int
(** 0 when nothing is scheduled. *)

val scheduled_nodes : t -> int list
(** Ascending. *)

val object_order : t -> requesters:int array -> int list
(** Requesting nodes sorted by scheduled time (unscheduled requesters are
    an error) — the order in which the object visits them.  Ties broken
    by node id; the validator rejects ties separately. *)

val shift : t -> int -> unit
(** [shift t d] adds [d] to every assigned time (d may be negative as
    long as times stay >= 1). *)

val copy : t -> t

val pp : Format.formatter -> t -> unit
