(** Read/write access modes — the replication extension.

    Section 1.2 notes the data-flow results "also apply to restricted
    versions of other models where objects may be replicated or
    versioned".  This module refines an {!Instance} with per-transaction
    write sets: the single master copy of an object still migrates
    between its {e writers}, while {e readers} receive read-only copies
    shipped from the most recent writer before them (multiversion
    semantics: writers never wait for readers, and concurrent readers do
    not conflict with each other).

    When every access is a write this degenerates to the base model —
    {!Rw_validator} and {!Rw_greedy} then agree exactly with
    {!Validator} and {!Greedy} (tested). *)

type t

val create : Instance.t -> writes:(int * int list) list -> t
(** [create inst ~writes] marks, per node, which of its requested objects
    it writes; objects not listed are read.  Nodes absent from [writes]
    read everything.  Raises [Invalid_argument] if a listed node has no
    transaction, an object is not in the node's request set, or a node
    appears twice. *)

val all_write : Instance.t -> t
(** Every access writes: the base model. *)

val base : t -> Instance.t

val is_write : t -> node:int -> obj:int -> bool

val writers : t -> int -> int array
(** Nodes writing object [o], ascending.  Do not mutate. *)

val readers : t -> int -> int array
(** Requesters of [o] that only read it, ascending.  Do not mutate. *)

val write_load : t -> int
(** Max number of writers of any object: the replicated analogue of the
    paper's l, and a lower bound on the makespan. *)
