type t = {
  conflicts : (int * int) array array; (* per node: (neighbor, weight) *)
  hmax : int;
  max_degree : int;
  num_conflicts : int;
}

let build metric inst =
  let n = Instance.n inst in
  let pair_seen = Hashtbl.create 256 in
  let adj = Array.make n [] in
  let hmax = ref 0 and num = ref 0 in
  for o = 0 to Instance.num_objects inst - 1 do
    let reqs = Instance.requesters inst o in
    let len = Array.length reqs in
    for i = 0 to len - 1 do
      for j = i + 1 to len - 1 do
        let u = reqs.(i) and v = reqs.(j) in
        if not (Hashtbl.mem pair_seen (u, v)) then begin
          Hashtbl.replace pair_seen (u, v) ();
          let w = Dtm_graph.Metric.dist metric u v in
          adj.(u) <- (v, w) :: adj.(u);
          adj.(v) <- (u, w) :: adj.(v);
          if w > !hmax then hmax := w;
          incr num
        end
      done
    done
  done;
  let conflicts = Array.map Array.of_list adj in
  let max_degree =
    Array.fold_left (fun acc a -> max acc (Array.length a)) 0 conflicts
  in
  { conflicts; hmax = !hmax; max_degree; num_conflicts = !num }

let conflicts t v =
  if v < 0 || v >= Array.length t.conflicts then
    invalid_arg "Dependency.conflicts: node out of range";
  t.conflicts.(v)

let hmax t = t.hmax
let max_degree t = t.max_degree
let weighted_degree t = t.hmax * t.max_degree
let num_conflicts t = t.num_conflicts
