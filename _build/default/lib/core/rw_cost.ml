let per_object_traffic metric rw sched =
  let inst = Rw_instance.base rw in
  Array.init (Instance.num_objects inst) (fun o ->
      let home = Instance.home inst o in
      let writers = Rw_instance.writers rw o in
      let worder =
        if Array.length writers = 0 then []
        else Schedule.object_order sched ~requesters:writers
      in
      (* Master chain. *)
      let rec chain prev acc = function
        | [] -> acc
        | v :: rest -> chain v (acc + Dtm_graph.Metric.dist metric prev v) rest
      in
      let master = chain home 0 worder in
      (* One copy per reader, from the latest preceding writer (by time),
         or the home when none precedes. *)
      let copies =
        Array.fold_left
          (fun acc r ->
            let tr = Schedule.time_exn sched r in
            let source =
              List.fold_left
                (fun best wv ->
                  let tw = Schedule.time_exn sched wv in
                  match best with
                  | Some (_, bt) when tw <= bt -> best
                  | _ -> if tw < tr then Some (wv, tw) else best)
                None worder
            in
            let src = match source with Some (wv, _) -> wv | None -> home in
            acc + Dtm_graph.Metric.dist metric src r)
          0
          (Rw_instance.readers rw o)
      in
      master + copies)

let communication metric rw sched =
  Array.fold_left ( + ) 0 (per_object_traffic metric rw sched)
