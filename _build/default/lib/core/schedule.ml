type t = { times : int array (* 0 = unscheduled, else the step >= 1 *) }

let create ~n =
  if n < 0 then invalid_arg "Schedule.create: n < 0";
  { times = Array.make n 0 }

let capacity t = Array.length t.times

let set t ~node ~time =
  if node < 0 || node >= Array.length t.times then
    invalid_arg "Schedule.set: node out of range";
  if time < 1 then invalid_arg "Schedule.set: time < 1";
  t.times.(node) <- time

let of_times assoc ~n =
  let t = create ~n in
  List.iter
    (fun (node, time) ->
      if node >= 0 && node < n && t.times.(node) <> 0 then
        invalid_arg "Schedule.of_times: duplicate node";
      set t ~node ~time)
    assoc;
  t

let time t node =
  if node < 0 || node >= Array.length t.times then
    invalid_arg "Schedule.time: node out of range";
  if t.times.(node) = 0 then None else Some t.times.(node)

let time_exn t node =
  match time t node with
  | Some x -> x
  | None -> invalid_arg "Schedule.time_exn: unscheduled node"

let makespan t = Array.fold_left max 0 t.times

let scheduled_nodes t =
  List.filter (fun v -> t.times.(v) <> 0) (List.init (Array.length t.times) Fun.id)

let object_order t ~requesters =
  let reqs = Array.to_list requesters in
  List.iter
    (fun v ->
      if time t v = None then
        invalid_arg "Schedule.object_order: unscheduled requester")
    reqs;
  List.sort
    (fun a b ->
      match compare t.times.(a) t.times.(b) with 0 -> compare a b | c -> c)
    reqs

let shift t d =
  Array.iteri
    (fun i x ->
      if x <> 0 then begin
        if x + d < 1 then invalid_arg "Schedule.shift: time would drop below 1";
        t.times.(i) <- x + d
      end)
    t.times

let copy t = { times = Array.copy t.times }

let pp fmt t =
  Format.fprintf fmt "schedule(makespan=%d)" (makespan t);
  let nodes = scheduled_nodes t in
  if List.length nodes <= 32 then
    List.iter (fun v -> Format.fprintf fmt "@ %d@%d" v t.times.(v)) nodes
