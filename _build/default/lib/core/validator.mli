(** Feasibility checking for schedules (paper, Section 2.1).

    A schedule is feasible when every transaction is scheduled, and each
    object — released by its home at virtual step 0 and travelling along
    shortest paths — can reach each of its requesters in turn by that
    requester's execution step:

    - the first requester [v1] runs at step [t1 >= max 1 (dist home v1)];
    - consecutive requesters satisfy [t_{j+1} - t_j >= dist v_j v_{j+1}]
      (in particular no two users of one object share a step). *)

type violation = {
  what : string;  (** human-readable description *)
  obj : int option;  (** offending object, when object-related *)
  node : int option;  (** offending node *)
}

val check : Dtm_graph.Metric.t -> Instance.t -> Schedule.t -> (unit, violation) result

val check_all :
  Dtm_graph.Metric.t -> Instance.t -> Schedule.t -> violation list
(** All violations rather than the first. *)

val is_feasible : Dtm_graph.Metric.t -> Instance.t -> Schedule.t -> bool

val explain : violation -> string
