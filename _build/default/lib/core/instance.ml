type t = {
  n : int;
  num_objects : int;
  txns : int array option array; (* per node: sorted requested objects *)
  txn_nodes : int array;
  requesters : int array array; (* per object: sorted requesting nodes *)
  home : int array;
}

let create ~n ~num_objects ~txns ~home =
  if n < 0 then invalid_arg "Instance.create: n < 0";
  if num_objects < 0 then invalid_arg "Instance.create: num_objects < 0";
  if Array.length home <> num_objects then
    invalid_arg "Instance.create: home size mismatch";
  Array.iter
    (fun h -> if h < 0 || h >= n then invalid_arg "Instance.create: home out of range")
    home;
  let per_node = Array.make n None in
  List.iter
    (fun (node, objs) ->
      if node < 0 || node >= n then invalid_arg "Instance.create: node out of range";
      if per_node.(node) <> None then
        invalid_arg "Instance.create: two transactions on one node";
      let objs = List.sort_uniq compare objs in
      if objs = [] then invalid_arg "Instance.create: empty object list";
      List.iter
        (fun o ->
          if o < 0 || o >= num_objects then
            invalid_arg "Instance.create: object out of range")
        objs;
      per_node.(node) <- Some (Array.of_list objs))
    txns;
  let txn_nodes =
    Array.of_list
      (List.filter (fun v -> per_node.(v) <> None) (List.init n Fun.id))
  in
  let req_lists = Array.make num_objects [] in
  (* Iterate nodes descending so the accumulated lists come out ascending. *)
  for i = Array.length txn_nodes - 1 downto 0 do
    let v = txn_nodes.(i) in
    match per_node.(v) with
    | None -> ()
    | Some objs -> Array.iter (fun o -> req_lists.(o) <- v :: req_lists.(o)) objs
  done;
  {
    n;
    num_objects;
    txns = per_node;
    txn_nodes;
    requesters = Array.map Array.of_list req_lists;
    home;
  }

let n t = t.n
let num_objects t = t.num_objects
let txn_at t v = t.txns.(v)
let txn_nodes t = t.txn_nodes
let num_txns t = Array.length t.txn_nodes

let requesters t o =
  if o < 0 || o >= t.num_objects then invalid_arg "Instance.requesters: bad object";
  t.requesters.(o)

let home t o =
  if o < 0 || o >= t.num_objects then invalid_arg "Instance.home: bad object";
  t.home.(o)

let k_max t =
  Array.fold_left
    (fun acc objs -> match objs with None -> acc | Some a -> max acc (Array.length a))
    0 t.txns

let load t =
  Array.fold_left (fun acc r -> max acc (Array.length r)) 0 t.requesters

let uses t ~node ~obj =
  match t.txns.(node) with
  | None -> false
  | Some objs -> Array.exists (fun o -> o = obj) objs

let shared_objects t ~node1 ~node2 =
  match (t.txns.(node1), t.txns.(node2)) with
  | Some a, Some b ->
    (* Both arrays are sorted: merge-intersect. *)
    let res = ref [] and i = ref 0 and j = ref 0 in
    while !i < Array.length a && !j < Array.length b do
      let x = a.(!i) and y = b.(!j) in
      if x = y then begin
        res := x :: !res;
        incr i;
        incr j
      end
      else if x < y then incr i
      else incr j
    done;
    List.rev !res
  | _ -> []

let homes_at_requesters t =
  let ok = ref true in
  Array.iteri
    (fun o reqs ->
      if Array.length reqs > 0 && not (Array.exists (fun v -> v = t.home.(o)) reqs)
      then ok := false)
    t.requesters;
  !ok
