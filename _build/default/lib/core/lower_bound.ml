type per_object = { obj : int; requesters : int; walk : Dtm_graph.Walk.bounds }

type t = {
  load : int;
  max_walk : int;
  certified : int;
  per_object : per_object array;
}

let compute metric inst =
  let w = Instance.num_objects inst in
  let per_object =
    Array.init w (fun o ->
        let reqs = Instance.requesters inst o in
        let walk =
          Dtm_graph.Walk.bounds metric ~home:(Instance.home inst o)
            (Array.to_list reqs)
        in
        { obj = o; requesters = Array.length reqs; walk })
  in
  let load = Instance.load inst in
  let max_walk =
    Array.fold_left
      (fun acc p ->
        if p.requesters = 0 then acc
        else max acc (Dtm_graph.Walk.best_lower p.walk))
      0 per_object
  in
  let base = if Instance.num_txns inst > 0 then 1 else 0 in
  { load; max_walk; certified = max base (max load max_walk); per_object }

let certified metric inst = (compute metric inst).certified

let ratio ~makespan ~lower = float_of_int makespan /. float_of_int (max 1 lower)
