type t = {
  base : Instance.t;
  write : bool array array; (* per node: mask aligned with its object array *)
  writers : int array array; (* per object *)
  readers : int array array; (* per object *)
}

let build base write =
  let w = Instance.num_objects base in
  let writers = Array.make w [] and readers = Array.make w [] in
  let nodes = Instance.txn_nodes base in
  for i = Array.length nodes - 1 downto 0 do
    let v = nodes.(i) in
    match Instance.txn_at base v with
    | None -> ()
    | Some objs ->
      Array.iteri
        (fun j o ->
          if write.(v).(j) then writers.(o) <- v :: writers.(o)
          else readers.(o) <- v :: readers.(o))
        objs
  done;
  {
    base;
    write;
    writers = Array.map Array.of_list writers;
    readers = Array.map Array.of_list readers;
  }

let create base ~writes =
  let n = Instance.n base in
  let write =
    Array.init n (fun v ->
        match Instance.txn_at base v with
        | None -> [||]
        | Some objs -> Array.make (Array.length objs) false)
  in
  let seen = Array.make n false in
  List.iter
    (fun (v, objs) ->
      if v < 0 || v >= n then invalid_arg "Rw_instance.create: node out of range";
      if seen.(v) then invalid_arg "Rw_instance.create: node listed twice";
      seen.(v) <- true;
      match Instance.txn_at base v with
      | None -> invalid_arg "Rw_instance.create: node has no transaction"
      | Some requested ->
        List.iter
          (fun o ->
            let found = ref false in
            Array.iteri
              (fun j r ->
                if r = o then begin
                  write.(v).(j) <- true;
                  found := true
                end)
              requested;
            if not !found then
              invalid_arg "Rw_instance.create: written object not requested")
          objs)
    writes;
  build base write

let all_write base =
  let n = Instance.n base in
  let write =
    Array.init n (fun v ->
        match Instance.txn_at base v with
        | None -> [||]
        | Some objs -> Array.make (Array.length objs) true)
  in
  build base write

let base t = t.base

let is_write t ~node ~obj =
  match Instance.txn_at t.base node with
  | None -> false
  | Some objs ->
    let res = ref false in
    Array.iteri (fun j o -> if o = obj && t.write.(node).(j) then res := true) objs;
    !res

let writers t o =
  if o < 0 || o >= Instance.num_objects t.base then
    invalid_arg "Rw_instance.writers: bad object";
  t.writers.(o)

let readers t o =
  if o < 0 || o >= Instance.num_objects t.base then
    invalid_arg "Rw_instance.readers: bad object";
  t.readers.(o)

let write_load t =
  Array.fold_left (fun acc ws -> max acc (Array.length ws)) 0 t.writers
