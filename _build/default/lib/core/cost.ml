let makespan = Schedule.makespan

let per_object_travel metric inst sched =
  Array.init (Instance.num_objects inst) (fun o ->
      let reqs = Instance.requesters inst o in
      if Array.length reqs = 0 then 0
      else begin
        let order = Schedule.object_order sched ~requesters:reqs in
        let rec go prev acc = function
          | [] -> acc
          | v :: rest -> go v (acc + Dtm_graph.Metric.dist metric prev v) rest
        in
        go (Instance.home inst o) 0 order
      end)

let communication metric inst sched =
  Array.fold_left ( + ) 0 (per_object_travel metric inst sched)

let summary metric inst sched =
  let lb = Lower_bound.certified metric inst in
  let mk = makespan sched in
  Printf.sprintf "makespan=%d comm=%d lower_bound=%d ratio=%.2f" mk
    (communication metric inst sched)
    lb
    (Lower_bound.ratio ~makespan:mk ~lower:lb)
