(** The basic greedy schedule under read replication.

    Identical to {!Greedy}, except that the dependency graph only has an
    edge when at least one of the two transactions {e writes} a shared
    object: read-read pairs do not conflict, so read-mostly workloads
    color with far fewer colors.  The W-R / R-W edges guarantee each
    reader sits at distance-respecting offset from every writer, which is
    exactly what {!Rw_validator}'s copy-shipping rule needs; a final
    shift gives home-sourced copies (first writers, and readers with no
    earlier writer) time to arrive. *)

val schedule :
  ?strategy:Coloring.strategy ->
  ?order:Coloring.order ->
  Dtm_graph.Metric.t ->
  Rw_instance.t ->
  Schedule.t

val conflict_pairs : Rw_instance.t -> (int * int) list
(** The conflicting transaction pairs (u < v), for tests and reporting. *)
