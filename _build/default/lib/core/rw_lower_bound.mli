(** Certified lower bounds under read replication.

    Three provable components:
    - [write_load]: an object's writers execute at distinct steps;
    - [writer_walk]: the master copy must walk from its home through all
      writers, so the walk lower bound over the {e writer} set applies;
    - [reach]: any user (reader or writer) of object [o] at step [t]
      needs a version that originated at the home at step 0, and every
      forwarding path obeys the triangle inequality, so
      [t >= max 1 (dist (home o) u)]. *)

type t = {
  write_load : int;
  writer_walk : int;
  reach : int;
  certified : int;  (** max of the above (and 1 if any transaction) *)
}

val compute : Dtm_graph.Metric.t -> Rw_instance.t -> t

val certified : Dtm_graph.Metric.t -> Rw_instance.t -> int
