(** Feasibility under read replication (multiversion semantics).

    Per object:
    - writers execute at distinct steps, and the master copy's chain
      [home -> w1 -> w2 -> ...] respects travel times exactly as in the
      base model;
    - each reader [r] at step [t_r] needs a copy shipped from the latest
      writer committed strictly before [t_r] (from the object's home when
      there is none): [t_r >= t_source + dist(source, r)];
    - a reader may not share a step with any writer of the same object
      (the version it would read is ambiguous), but readers never block
      writers or each other. *)

val check :
  Dtm_graph.Metric.t -> Rw_instance.t -> Schedule.t -> (unit, Validator.violation) result

val is_feasible : Dtm_graph.Metric.t -> Rw_instance.t -> Schedule.t -> bool
