(** Greedy distance-respecting coloring of the dependency graph
    (paper, Section 2.3).

    A valid coloring assigns each transaction a positive integer so that
    two conflicting transactions receive colors differing by at least the
    weight of their conflict edge.  Colors are the time steps of the basic
    greedy schedule.

    Two assignment strategies are provided:
    - [Slotted] is the paper's scheme: colors of the form
      [j * hmax + 1], guaranteed to use at most [Γ + 1 = hmax·∆ + 1]
      colors;
    - [Compact] picks the smallest feasible color outright; it never uses
      more colors than [Slotted] and is the library default. *)

type strategy = Slotted | Compact

type order =
  | Natural  (** ascending node id *)
  | Desc_degree  (** most-conflicted transactions first *)
  | Random_order of int  (** shuffled with the given seed *)

type t = { colors : int array; num_colors : int }
(** [colors.(v)] is 0 when node [v] has no transaction, else >= 1;
    [num_colors] is the largest color used. *)

val greedy : ?strategy:strategy -> ?order:order -> Dependency.t -> Instance.t -> t

val is_valid : Dependency.t -> Instance.t -> int array -> bool
(** Checks the distance-coloring condition for every conflict edge and
    that exactly the transaction nodes are colored. *)
