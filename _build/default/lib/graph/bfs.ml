let search g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    Graph.iter_neighbors g u (fun v _ ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v q
        end)
  done;
  (dist, parent)

let distances g ~src = fst (search g ~src)
let parents g ~src = snd (search g ~src)

let path g ~src ~dst =
  let dist, parent = search g ~src in
  if dist.(dst) = max_int then None
  else begin
    let rec build v acc = if v = src then src :: acc else build parent.(v) (v :: acc) in
    Some (build dst [])
  end
