let unit_weights g = List.for_all (fun e -> e.Graph.w = 1) (Graph.edges g)

let distances g =
  let n = Graph.n g in
  let single = if unit_weights g then Bfs.distances else Dijkstra.distances in
  Array.init n (fun src -> single g ~src)

let to_metric g = Metric.of_matrix (distances g)
