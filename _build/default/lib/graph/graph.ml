type edge = { u : int; v : int; w : int }

type t = { n : int; adj : (int * int) array array; edge_list : edge list }

let of_edges ~n triples =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let seen = Hashtbl.create (2 * List.length triples) in
  let canon =
    List.map
      (fun (u, v, w) ->
        if u < 0 || u >= n || v < 0 || v >= n then
          invalid_arg "Graph.of_edges: node out of range";
        if u = v then invalid_arg "Graph.of_edges: self-loop";
        if w <= 0 then invalid_arg "Graph.of_edges: non-positive weight";
        let u, v = if u < v then (u, v) else (v, u) in
        if Hashtbl.mem seen (u, v) then
          invalid_arg "Graph.of_edges: duplicate edge";
        Hashtbl.replace seen (u, v) ();
        { u; v; w })
      triples
  in
  let edge_list = List.sort compare canon in
  let deg = Array.make n 0 in
  List.iter
    (fun { u; v; _ } ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edge_list;
  let adj = Array.init n (fun i -> Array.make deg.(i) (0, 0)) in
  let fill = Array.make n 0 in
  List.iter
    (fun { u; v; w } ->
      adj.(u).(fill.(u)) <- (v, w);
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- (u, w);
      fill.(v) <- fill.(v) + 1)
    edge_list;
  { n; adj; edge_list }

let n g = g.n
let num_edges g = List.length g.edge_list
let edges g = g.edge_list
let degree g u = Array.length g.adj.(u)
let neighbors g u = g.adj.(u)

let iter_neighbors g u f = Array.iter (fun (v, w) -> f v w) g.adj.(u)

let edge_weight g u v =
  let found = ref None in
  Array.iter (fun (x, w) -> if x = v then found := Some w) g.adj.(u);
  !found

let mem_edge g u v = edge_weight g u v <> None

let max_weight g = List.fold_left (fun acc e -> max acc e.w) 0 g.edge_list

let max_degree g =
  let best = ref 0 in
  for u = 0 to g.n - 1 do
    best := max !best (Array.length g.adj.(u))
  done;
  !best

let total_weight g = List.fold_left (fun acc e -> acc + e.w) 0 g.edge_list

let is_connected g =
  if g.n <= 1 then true
  else begin
    let seen = Array.make g.n false in
    let stack = ref [ 0 ] in
    seen.(0) <- true;
    let count = ref 1 in
    let rec go () =
      match !stack with
      | [] -> ()
      | u :: rest ->
        stack := rest;
        iter_neighbors g u (fun v _ ->
            if not seen.(v) then begin
              seen.(v) <- true;
              incr count;
              stack := v :: !stack
            end);
        go ()
    in
    go ();
    !count = g.n
  end

let pp fmt g =
  Format.fprintf fmt "graph(n=%d, m=%d)" g.n (num_edges g);
  if num_edges g <= 32 then
    List.iter
      (fun { u; v; w } -> Format.fprintf fmt "@ (%d-%d:%d)" u v w)
      g.edge_list
