type bounds = { lower : int; upper : int; exact : int option }

let bounds m ?home requesters =
  let terms = List.sort_uniq compare requesters in
  match terms with
  | [] -> { lower = 0; upper = 0; exact = Some 0 }
  | _ ->
    let lower = Tsp.lower_bound m ?start:home terms in
    let upper = Tsp.upper_bound m ?start:home terms in
    let exact =
      if List.length terms <= Tsp.max_exact_terminals then
        Some (Tsp.exact_path_length m ?start:home terms)
      else None
    in
    let lower = match exact with Some e -> max lower e | None -> lower in
    let upper = match exact with Some e -> min upper e | None -> upper in
    { lower; upper; exact }

let best_lower b = match b.exact with Some e -> e | None -> b.lower
let best_upper b = match b.exact with Some e -> e | None -> b.upper
