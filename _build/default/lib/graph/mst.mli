(** Minimum spanning trees (Kruskal).

    Besides spanning trees of explicit graphs, this module computes MSTs of
    the {e metric closure} over a terminal set — the quantity the TSP
    bounds in {!Tsp} and {!Walk} are built from. *)

val kruskal : Graph.t -> Graph.edge list * int
(** [kruskal g] is a minimum spanning forest (edge list) and its total
    weight. *)

val metric_mst : Metric.t -> int list -> (int * int) list * int
(** [metric_mst m terminals] is an MST of the complete graph over
    [terminals] with weights [Metric.dist m].  Returns tree edges as node
    pairs and the total weight.  Duplicate terminals are merged. *)
