lib/graph/walk.mli: Metric
