lib/graph/metric.ml: Array List Printf
