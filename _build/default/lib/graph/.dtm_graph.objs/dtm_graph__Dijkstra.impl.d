lib/graph/dijkstra.ml: Array Dtm_util Graph
