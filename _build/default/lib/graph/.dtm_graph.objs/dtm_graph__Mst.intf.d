lib/graph/mst.mli: Graph Metric
