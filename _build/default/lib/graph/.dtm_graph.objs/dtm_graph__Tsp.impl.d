lib/graph/tsp.ml: Array Hashtbl List Metric Mst
