lib/graph/apsp.mli: Graph Metric
