lib/graph/walk.ml: List Tsp
