lib/graph/metric.mli:
