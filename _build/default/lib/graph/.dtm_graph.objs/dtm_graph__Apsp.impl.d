lib/graph/apsp.ml: Array Bfs Dijkstra Graph List Metric
