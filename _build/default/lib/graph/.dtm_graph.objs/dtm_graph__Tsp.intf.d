lib/graph/tsp.mli: Metric
