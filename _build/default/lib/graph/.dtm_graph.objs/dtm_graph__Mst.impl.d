lib/graph/mst.ml: Array Dtm_util Graph List Metric
