(** Single-source shortest paths on weighted graphs. *)

val distances : Graph.t -> src:int -> int array
(** [distances g ~src] has [d.(v)] = weighted distance from [src], or
    [max_int] when unreachable. *)

val distances_and_parents : Graph.t -> src:int -> int array * int array
(** Also returns a shortest-path-tree parent array ([-1] for [src] and
    unreachable nodes). *)

val path : Graph.t -> src:int -> dst:int -> int list option
(** Node sequence of a weighted shortest path, endpoints inclusive. *)
