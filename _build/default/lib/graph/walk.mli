(** Shortest-walk bounds for a mobile object.

    An object starting at its home node must visit every node whose
    transaction requests it.  The length of the shortest such walk is the
    paper's per-object lower bound on execution time (Section 8), and its
    TSP-path equivalent is what the upper-bound theorems are measured
    against.  This module packages certified lower/upper bounds, with the
    exact value when the requester set is small enough for Held-Karp. *)

type bounds = {
  lower : int;  (** certified lower bound on the shortest walk *)
  upper : int;  (** length of an explicit feasible walk *)
  exact : int option;  (** exact optimum when computed *)
}

val bounds : Metric.t -> ?home:int -> int list -> bounds
(** [bounds m ?home requesters]: walk bounds through [requesters],
    starting at [home] when given.  Invariant: [lower <= upper], and when
    [exact = Some e], [lower <= e <= upper]. *)

val best_lower : bounds -> int
(** [exact] when available, else [lower]. *)

val best_upper : bounds -> int
(** [exact] when available, else [upper]. *)
