(** Distance oracles.

    Schedulers only need pairwise distances, and for the structured
    topologies of the paper these have closed forms (Manhattan distance on
    the grid, Hamming distance on the hypercube, ...).  A [Metric.t]
    abstracts over closed-form oracles and APSP-backed matrices so that a
    scheduler can run on either without caring which. *)

type t

val make : size:int -> (int -> int -> int) -> t
(** [make ~size dist] wraps a distance function over [0, size).  The
    function must be symmetric, zero on the diagonal, and satisfy the
    triangle inequality; {!check} can verify this on small instances. *)

val of_matrix : int array array -> t
(** Wraps a precomputed distance matrix (not copied). *)

val size : t -> int

val dist : t -> int -> int -> int
(** [dist m u v]; raises [Invalid_argument] if a node is out of range. *)

val diameter : t -> int
(** Maximum finite pairwise distance (O(size^2) calls). *)

val max_dist_among : t -> int list -> int
(** Largest pairwise distance within the given node list; 0 for lists of
    length < 2. *)

val validate : t -> (unit, string) result
(** Exhaustively checks symmetry, identity, and triangle inequality.
    O(size^3); intended for tests. *)
