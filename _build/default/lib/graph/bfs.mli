(** Breadth-first shortest paths for unit-weight graphs.

    Distances here count edges; only correct when every edge weight is 1
    (checked by {!Apsp}, which picks BFS or Dijkstra accordingly). *)

val distances : Graph.t -> src:int -> int array
(** [distances g ~src] has entry [d.(v)] = hop count from [src] to [v], or
    [max_int] when unreachable. *)

val parents : Graph.t -> src:int -> int array
(** Parent of each node in a BFS tree rooted at [src]; [-1] for [src] and
    for unreachable nodes. *)

val path : Graph.t -> src:int -> dst:int -> int list option
(** Node sequence from [src] to [dst] inclusive along a shortest (fewest
    hops) path, or [None] if unreachable. *)
