(** Travelling-salesman {e path} bounds over a metric.

    The paper's optimal-time surrogate is the shortest walk an object must
    make through the nodes that request it (Sections 1.1 and 8).  Under a
    shortest-path metric, the shortest such walk equals the shortest
    Hamiltonian path on the terminal set in the metric closure.  This
    module provides an exact solver for small terminal sets (Held-Karp) and
    certified lower/upper bounds for larger ones. *)

val max_exact_terminals : int
(** Largest terminal count accepted by {!exact_path_length} (15: the DP is
    O(2^t t^2)). *)

val exact_path_length : Metric.t -> ?start:int -> int list -> int
(** [exact_path_length m ?start terminals] is the length of a shortest
    path visiting every terminal once, optionally beginning at [start]
    (which need not be a terminal).  Duplicates are merged.  Returns 0 for
    an empty or singleton set (with no [start]).  Raises
    [Invalid_argument] beyond {!max_exact_terminals} terminals. *)

val nearest_neighbor : Metric.t -> start:int -> int list -> int list * int
(** Greedy visiting order from [start] (not included in the returned
    order unless it is a terminal) and its length.  An upper bound. *)

val mst_preorder : Metric.t -> ?start:int -> int list -> int list * int
(** Visiting order obtained by a preorder traversal of the metric MST —
    the classic 2-approximation — and its length. *)

val lower_bound : Metric.t -> ?start:int -> int list -> int
(** Certified lower bound on the shortest path through the terminals
    ([start] included as a mandatory first node when given): the metric
    MST weight, which every Hamiltonian path dominates. *)

val upper_bound : Metric.t -> ?start:int -> int list -> int
(** Best of {!nearest_neighbor} and {!mst_preorder}. *)
