type t = { size : int; dist : int -> int -> int }

let make ~size dist =
  if size < 0 then invalid_arg "Metric.make: negative size";
  { size; dist }

let of_matrix m =
  let size = Array.length m in
  Array.iter
    (fun row ->
      if Array.length row <> size then invalid_arg "Metric.of_matrix: ragged")
    m;
  { size; dist = (fun u v -> m.(u).(v)) }

let size t = t.size

let dist t u v =
  if u < 0 || u >= t.size || v < 0 || v >= t.size then
    invalid_arg "Metric.dist: node out of range";
  t.dist u v

let diameter t =
  let best = ref 0 in
  for u = 0 to t.size - 1 do
    for v = u + 1 to t.size - 1 do
      let d = t.dist u v in
      if d < max_int then best := max !best d
    done
  done;
  !best

let max_dist_among t nodes =
  let best = ref 0 in
  let rec outer = function
    | [] -> ()
    | u :: rest ->
      List.iter (fun v -> best := max !best (dist t u v)) rest;
      outer rest
  in
  outer nodes;
  !best

let validate t =
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  for u = 0 to t.size - 1 do
    if t.dist u u <> 0 then fail "dist(%d,%d) <> 0" u u;
    for v = 0 to t.size - 1 do
      if t.dist u v <> t.dist v u then fail "asymmetric at (%d,%d)" u v;
      if u <> v && t.dist u v <= 0 then fail "non-positive dist(%d,%d)" u v
    done
  done;
  for u = 0 to t.size - 1 do
    for v = 0 to t.size - 1 do
      for w = 0 to t.size - 1 do
        let duv = t.dist u v and duw = t.dist u w and dwv = t.dist w v in
        if duw < max_int && dwv < max_int && duv > duw + dwv then
          fail "triangle violated: d(%d,%d) > d(%d,%d)+d(%d,%d)" u v u w w v
      done
    done
  done;
  match !err with None -> Ok () | Some e -> Error e
