let distances_and_parents g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let pq = Dtm_util.Pqueue.create () in
  dist.(src) <- 0;
  Dtm_util.Pqueue.push pq ~prio:0 src;
  let rec loop () =
    match Dtm_util.Pqueue.pop pq with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        Graph.iter_neighbors g u (fun v w ->
            let nd = d + w in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              parent.(v) <- u;
              Dtm_util.Pqueue.push pq ~prio:nd v
            end)
      end;
      loop ()
  in
  loop ();
  (dist, parent)

let distances g ~src = fst (distances_and_parents g ~src)

let path g ~src ~dst =
  let dist, parent = distances_and_parents g ~src in
  if dist.(dst) = max_int then None
  else begin
    let rec build v acc = if v = src then src :: acc else build parent.(v) (v :: acc) in
    Some (build dst [])
  end
