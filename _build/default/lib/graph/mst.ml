let kruskal g =
  let edges =
    List.sort (fun a b -> compare a.Graph.w b.Graph.w) (Graph.edges g)
  in
  let uf = Dtm_util.Union_find.create (Graph.n g) in
  let tree = ref [] and total = ref 0 in
  List.iter
    (fun e ->
      if Dtm_util.Union_find.union uf e.Graph.u e.Graph.v then begin
        tree := e :: !tree;
        total := !total + e.Graph.w
      end)
    edges;
  (List.rev !tree, !total)

let metric_mst m terminals =
  let terms = List.sort_uniq compare terminals in
  let arr = Array.of_list terms in
  let t = Array.length arr in
  if t <= 1 then ([], 0)
  else begin
    (* Prim's algorithm over the metric closure: O(t^2) distance calls. *)
    let in_tree = Array.make t false in
    let best = Array.make t max_int in
    let best_from = Array.make t (-1) in
    in_tree.(0) <- true;
    for j = 1 to t - 1 do
      best.(j) <- Metric.dist m arr.(0) arr.(j);
      best_from.(j) <- 0
    done;
    let tree = ref [] and total = ref 0 in
    for _ = 1 to t - 1 do
      let pick = ref (-1) in
      for j = 0 to t - 1 do
        if (not in_tree.(j)) && (!pick = -1 || best.(j) < best.(!pick)) then
          pick := j
      done;
      let j = !pick in
      in_tree.(j) <- true;
      tree := (arr.(best_from.(j)), arr.(j)) :: !tree;
      total := !total + best.(j);
      for x = 0 to t - 1 do
        if not in_tree.(x) then begin
          let d = Metric.dist m arr.(j) arr.(x) in
          if d < best.(x) then begin
            best.(x) <- d;
            best_from.(x) <- j
          end
        end
      done
    done;
    (List.rev !tree, !total)
  end
