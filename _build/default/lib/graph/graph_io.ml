let to_string g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "dtm-graph v1\n";
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Graph.n g));
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "edge %d %d %d\n" e.Graph.u e.Graph.v e.Graph.w))
    (Graph.edges g);
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  try
    match lines with
    | [] -> Error "empty input"
    | header :: rest ->
      if header <> "dtm-graph v1" then failwith "missing dtm-graph v1 header";
      let n = ref (-1) in
      let edges = ref [] in
      let int what x =
        match int_of_string_opt x with
        | Some v -> v
        | None -> failwith (Printf.sprintf "bad integer %S in %s" x what)
      in
      List.iter
        (fun line ->
          match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
          | [ "n"; x ] -> n := int "n" x
          | [ "edge"; u; v; w ] ->
            edges := (int "edge" u, int "edge" v, int "edge" w) :: !edges
          | _ -> failwith (Printf.sprintf "unrecognized line %S" line))
        rest;
      if !n < 0 then failwith "missing n";
      Ok (Graph.of_edges ~n:!n (List.rev !edges))
  with
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg
