(** All-pairs shortest paths.

    Runs BFS from every source when all weights are 1, Dijkstra otherwise.
    The resulting matrix backs a {!Metric.t} for schedulers that run on
    arbitrary graphs. *)

val distances : Graph.t -> int array array
(** [distances g] is the full matrix; [max_int] marks unreachable pairs. *)

val to_metric : Graph.t -> Metric.t
(** APSP-backed metric for [g]. *)

val unit_weights : Graph.t -> bool
(** True when every edge has weight 1. *)
