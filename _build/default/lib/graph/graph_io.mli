(** Plain-text graph format, for running the schedulers on arbitrary
    user-supplied networks (the general case of Section 3.1's O(k·l·d)
    bound).  One record per line, [#] comments and blank lines ignored:

    {v
    dtm-graph v1
    n <nodes>
    edge <u> <v> <weight>
    v} *)

val to_string : Graph.t -> string

val of_string : string -> (Graph.t, string) result
(** Rejects malformed headers/records and everything {!Graph.of_edges}
    rejects (self-loops, duplicates, bad weights, out-of-range nodes). *)
