(** Small descriptive-statistics helpers for the experiment harness. *)

val mean : float array -> float
(** Arithmetic mean; raises [Invalid_argument] on an empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for arrays of length
    <= 1. *)

val min_max : float array -> float * float

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0, 100], by linear interpolation on the
    sorted data. *)

val median : float array -> float

val geometric_mean : float array -> float
(** Requires strictly positive entries. *)

val linear_regression : (float * float) array -> float * float
(** [linear_regression pts] returns [(slope, intercept)] of the
    least-squares line through [pts].  Requires >= 2 points with distinct
    abscissae. *)

val log2_slope : (float * float) array -> float
(** Slope of [log2 y] against [log2 x]: the empirical growth exponent.
    Requires positive coordinates. *)

val histogram : float array -> bins:int -> (float * int) array
(** [histogram xs ~bins] buckets [xs] into [bins] equal-width bins over
    [min, max]; returns (bin lower edge, count). *)
