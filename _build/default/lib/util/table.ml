type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ~columns =
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Separator -> ()
      | Cells cells ->
        List.iteri
          (fun i c -> widths.(i) <- max widths.(i) (String.length c))
          cells)
    rows;
  let buf = Buffer.create 256 in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth t.aligns i) widths.(i) c))
      cells;
    Buffer.add_char buf '\n'
  in
  let rule () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  rule ();
  List.iter
    (function Separator -> rule () | Cells cells -> emit_cells cells)
    rows;
  Buffer.contents buf

let print t = print_string (render t)

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  let emit cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  List.iter
    (function Separator -> () | Cells cells -> emit cells)
    (List.rev t.rows);
  Buffer.contents buf

let cell_int = string_of_int

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
