(** Seeded pseudo-random number generator.

    A thin wrapper around [Random.State] that adds the operations the
    schedulers and workload generators need: splitting (so that independent
    subsystems draw from independent streams), subset sampling, and
    shuffling.  All randomness in the library flows through this module so
    that every experiment is reproducible from a single integer seed. *)

type t

val create : seed:int -> t
(** [create ~seed] makes a generator deterministically from [seed]. *)

val split : t -> t
(** [split t] returns a fresh generator whose future draws are independent
    of [t]'s.  Advances [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy replays [t]'s stream. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be > 0. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] draws uniformly from the inclusive range
    [lo, hi].  Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** [choose t a] picks a uniform element of [a].  [a] must be non-empty. *)

val choose_list : t -> 'a list -> 'a
(** [choose_list t l] picks a uniform element of [l].  [l] must be
    non-empty. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place uniformly (Fisher-Yates). *)

val shuffled_copy : t -> 'a array -> 'a array

val sample_subset : t -> k:int -> n:int -> int array
(** [sample_subset t ~k ~n] draws a uniform [k]-subset of [0, n), returned
    sorted increasing.  Requires [0 <= k <= n]. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform permutation of [0, n). *)
