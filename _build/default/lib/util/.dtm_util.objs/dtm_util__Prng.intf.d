lib/util/prng.mli:
