lib/util/pqueue.mli:
