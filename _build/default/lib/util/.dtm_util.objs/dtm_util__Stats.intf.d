lib/util/stats.mli:
