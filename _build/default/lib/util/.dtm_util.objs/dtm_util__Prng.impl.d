lib/util/prng.ml: Array Hashtbl List Random
