lib/util/bitset.mli:
