lib/util/table.mli:
