(** Aligned plain-text tables for the experiment harness.

    Renders the rows that EXPERIMENTS.md records, in a stable format that
    diffs cleanly between runs. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** [create ~columns] starts a table with the given header cells. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row.  The number of cells must equal the
    number of columns. *)

val add_separator : t -> unit
(** Inserts a horizontal rule between data rows. *)

val render : t -> string
(** Renders the table with a header rule, columns padded to the widest
    cell. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val to_csv : t -> string
(** Comma-separated rendering (header + data rows; separators dropped).
    Cells containing commas or quotes are quoted per RFC 4180. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
