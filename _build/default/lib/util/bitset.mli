(** Fixed-capacity mutable bitsets over [0, n).

    Used for object-set membership tests on the hot paths of the validator
    and the Held-Karp TSP dynamic program. *)

type t

val create : int -> t
(** [create n] is the empty set with capacity [n] (members in [0, n)). *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val cardinal : t -> int

val is_empty : t -> bool

val clear : t -> unit

val copy : t -> t

val iter : (int -> unit) -> t -> unit
(** [iter f t] applies [f] to each member in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n members] builds a capacity-[n] set. *)

val union_into : t -> t -> unit
(** [union_into dst src] adds every member of [src] to [dst].  The two sets
    must have equal capacity. *)

val inter_cardinal : t -> t -> int
(** Number of common members; capacities must match. *)

val equal : t -> t -> bool
