type 'a entry = { prio : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length q = q.size
let is_empty q = q.size = 0

let grow q x =
  let cap = Array.length q.data in
  if q.size = cap then begin
    let ncap = max 8 (2 * cap) in
    let nd = Array.make ncap x in
    Array.blit q.data 0 nd 0 q.size;
    q.data <- nd
  end

let swap q i j =
  let tmp = q.data.(i) in
  q.data.(i) <- q.data.(j);
  q.data.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.data.(i).prio < q.data.(parent).prio then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && q.data.(l).prio < q.data.(!smallest).prio then smallest := l;
  if r < q.size && q.data.(r).prio < q.data.(!smallest).prio then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q ~prio value =
  let e = { prio; value } in
  grow q e;
  q.data.(q.size) <- e;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek q = if q.size = 0 then None else Some (q.data.(0).prio, q.data.(0).value)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      sift_down q 0
    end;
    Some (top.prio, top.value)
  end

let pop_exn q =
  match pop q with
  | Some x -> x
  | None -> invalid_arg "Pqueue.pop_exn: empty queue"

let clear q =
  q.data <- [||];
  q.size <- 0
