let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n <= 1 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.0

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.geometric_mean: empty";
  let acc =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive entry";
        acc +. log x)
      0.0 xs
  in
  exp (acc /. float_of_int n)

let linear_regression pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Stats.linear_regression: need >= 2 points";
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    pts;
  let fn = float_of_int n in
  let denom = (fn *. !sxx) -. (!sx *. !sx) in
  if abs_float denom < 1e-12 then
    invalid_arg "Stats.linear_regression: degenerate abscissae";
  let slope = ((fn *. !sxy) -. (!sx *. !sy)) /. denom in
  let intercept = (!sy -. (slope *. !sx)) /. fn in
  (slope, intercept)

let log2_slope pts =
  let log2 x = log x /. log 2.0 in
  let lpts =
    Array.map
      (fun (x, y) ->
        if x <= 0.0 || y <= 0.0 then invalid_arg "Stats.log2_slope: non-positive";
        (log2 x, log2 y))
      pts
  in
  fst (linear_regression lpts)

let histogram xs ~bins =
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  let lo, hi = min_max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b >= bins then bins - 1 else b in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts
