type t = { words : int array; n : int }

let bits_per_word = Sys.int_size

let create n =
  assert (n >= 0);
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word + 1) 0; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let copy t = { words = Array.copy t.words; n = t.n }

let iter f t =
  for i = 0 to t.n - 1 do
    if t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0 then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n members =
  let t = create n in
  List.iter (add t) members;
  t

let same_capacity a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let union_into dst src =
  same_capacity dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let inter_cardinal a b =
  same_capacity a b;
  let acc = ref 0 in
  Array.iteri (fun i w -> acc := !acc + popcount (w land b.words.(i))) a.words;
  !acc

let equal a b = a.n = b.n && a.words = b.words
