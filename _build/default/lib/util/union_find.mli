(** Disjoint-set forest with union by rank and path compression.

    Used by Kruskal's MST and by connectivity checks in the topology
    generators. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0, n). *)

val find : t -> int -> int
(** [find t x] is the canonical representative of [x]'s set. *)

val union : t -> int -> int -> bool
(** [union t x y] merges the sets of [x] and [y]; returns [true] iff they
    were previously distinct. *)

val same : t -> int -> int -> bool

val count : t -> int
(** [count t] is the current number of disjoint sets. *)
