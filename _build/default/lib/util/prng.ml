type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x6d2b79f5; seed lxor 0x9e3779b9 |]

let split t =
  let a = Random.State.bits t and b = Random.State.bits t in
  Random.State.make [| a; b; Random.State.bits t |]

let copy = Random.State.copy

let int t bound =
  assert (bound > 0);
  Random.State.int t bound

let int_in_range t ~lo ~hi =
  assert (lo <= hi);
  lo + Random.State.int t (hi - lo + 1)

let float t bound = Random.State.float t bound
let bool t = Random.State.bool t

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Prng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffled_copy t a =
  let b = Array.copy a in
  shuffle t b;
  b

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

(* Floyd's algorithm: uniform k-subset in O(k) expected draws. *)
let sample_subset t ~k ~n =
  assert (0 <= k && k <= n);
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem chosen r then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen r ()
  done;
  let out = Array.make k 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun x () ->
      out.(!i) <- x;
      incr i)
    chosen;
  Array.sort compare out;
  out
