(** Mutable binary min-heap priority queue with integer priorities.

    Used by Dijkstra and by the simulator's event loop.  Ties are broken
    arbitrarily.  Not thread-safe. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> prio:int -> 'a -> unit
(** [push q ~prio x] inserts [x] with priority [prio]. *)

val pop : 'a t -> (int * 'a) option
(** [pop q] removes and returns a minimum-priority element, or [None] if
    the queue is empty. *)

val pop_exn : 'a t -> int * 'a
(** As {!pop} but raises [Invalid_argument] when empty. *)

val peek : 'a t -> (int * 'a) option
(** [peek q] returns a minimum-priority element without removing it. *)

val clear : 'a t -> unit
