module Instance = Dtm_core.Instance
module Cluster = Dtm_topology.Cluster
module Prng = Dtm_util.Prng

let build ~rng ~n ~num_objects txns =
  let home = Uniform.homes_of_txns ~rng ~n ~num_objects txns in
  Instance.create ~n ~num_objects ~txns ~home

let hot_object ~rng ~n ~num_objects ~k =
  if k < 1 || k > num_objects then invalid_arg "Arbitrary.hot_object: bad k";
  let txns =
    List.init n (fun v ->
        let others =
          Array.to_list (Prng.sample_subset rng ~k:(k - 1) ~n:(num_objects - 1))
          |> List.map (fun o -> o + 1)
        in
        (v, 0 :: others))
  in
  build ~rng ~n ~num_objects txns

let windowed ~rng ~n ~num_objects ~k ~span =
  if k < 1 || k > num_objects then invalid_arg "Arbitrary.windowed: bad k";
  if span < 1 then invalid_arg "Arbitrary.windowed: span < 1";
  let txns =
    List.init n (fun v ->
        let center = v * num_objects / n in
        let lo = max 0 (center - (span / 2)) in
        let hi = min (num_objects - 1) (lo + span - 1) in
        let width = hi - lo + 1 in
        let kk = min k width in
        let objs =
          Array.to_list (Prng.sample_subset rng ~k:kk ~n:width)
          |> List.map (fun o -> o + lo)
        in
        (v, objs))
  in
  build ~rng ~n ~num_objects txns

let partitioned ~rng ~n ~num_objects ~k ~parts =
  if parts < 1 || parts > n || parts > num_objects then
    invalid_arg "Arbitrary.partitioned: bad parts";
  if k < 1 then invalid_arg "Arbitrary.partitioned: bad k";
  let txns =
    List.init n (fun v ->
        let part = v * parts / n in
        let olo = part * num_objects / parts in
        let ohi = ((part + 1) * num_objects / parts) - 1 in
        let width = ohi - olo + 1 in
        let kk = min k width in
        let objs =
          Array.to_list (Prng.sample_subset rng ~k:kk ~n:width)
          |> List.map (fun o -> o + olo)
        in
        (v, objs))
  in
  build ~rng ~n ~num_objects txns

let cluster_local ~rng p ~num_objects_per_cluster ~k =
  if k < 1 || k > num_objects_per_cluster then
    invalid_arg "Arbitrary.cluster_local: bad k";
  let n = p.Cluster.clusters * p.Cluster.size in
  let num_objects = p.Cluster.clusters * num_objects_per_cluster in
  let txns =
    List.init n (fun v ->
        let c = Cluster.cluster_of p v in
        let olo = c * num_objects_per_cluster in
        let objs =
          Array.to_list (Prng.sample_subset rng ~k ~n:num_objects_per_cluster)
          |> List.map (fun o -> o + olo)
        in
        (v, objs))
  in
  build ~rng ~n ~num_objects txns

let cluster_spread ~rng p ~num_objects ~k ~sigma =
  if k < 1 || k > num_objects then invalid_arg "Arbitrary.cluster_spread: bad k";
  let sigma = max 1 (min sigma p.Cluster.clusters) in
  let n = p.Cluster.clusters * p.Cluster.size in
  (* Spread each object over [sigma] clusters, then have each node draw
     from the objects available to its cluster, topping up at random when
     too few are available (sigma is a target, not an exact invariant; the
     experiments measure the realized sigma). *)
  let available = Array.make p.Cluster.clusters [] in
  for o = num_objects - 1 downto 0 do
    let homes = Prng.sample_subset rng ~k:sigma ~n:p.Cluster.clusters in
    Array.iter (fun c -> available.(c) <- o :: available.(c)) homes
  done;
  let avail_arr = Array.map Array.of_list available in
  let txns =
    List.init n (fun v ->
        let c = Cluster.cluster_of p v in
        let pool = avail_arr.(c) in
        let from_pool = min k (Array.length pool) in
        let chosen =
          Array.to_list (Prng.sample_subset rng ~k:from_pool ~n:(Array.length pool))
          |> List.map (fun i -> pool.(i))
        in
        let rec top_up acc missing =
          if missing = 0 then acc
          else begin
            let o = Prng.int rng num_objects in
            if List.mem o acc then top_up acc missing
            else top_up (o :: acc) (missing - 1)
          end
        in
        (v, top_up chosen (k - from_pool)))
  in
  build ~rng ~n ~num_objects txns
