(** Random workloads: every node holds a transaction over a uniform
    k-subset of the objects — the input model of Theorem 3 (Grid) and
    the random inputs used throughout the experiments.

    Homes follow the paper's convention: each object starts at a
    uniformly chosen requester (or a uniform node if nothing requests
    it). *)

val instance :
  rng:Dtm_util.Prng.t ->
  n:int ->
  num_objects:int ->
  k:int ->
  ?density:float ->
  unit ->
  Dtm_core.Instance.t
(** [instance ~rng ~n ~num_objects ~k ()] gives every node a transaction
    requesting a fresh uniform [k]-subset.  [density] (default 1.0) is
    the probability that a node holds a transaction at all; at least one
    node always does.  Requires [1 <= k <= num_objects]. *)

val homes_at_random_requester :
  rng:Dtm_util.Prng.t -> n:int -> Dtm_core.Instance.t -> int array
(** Recompute the home array for an existing transaction layout (used by
    the other generators). *)

val homes_of_txns :
  rng:Dtm_util.Prng.t ->
  n:int ->
  num_objects:int ->
  (int * int list) list ->
  int array
(** Home array for a raw transaction list: each object at a uniform
    requester, unrequested objects at a uniform node. *)
