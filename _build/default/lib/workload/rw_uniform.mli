(** Read/write workloads for the replication extension: a uniform
    instance where each access is a write with probability
    [write_fraction]. *)

val instance :
  rng:Dtm_util.Prng.t ->
  n:int ->
  num_objects:int ->
  k:int ->
  write_fraction:float ->
  Dtm_core.Rw_instance.t
(** Each of a transaction's [k] accesses independently writes with
    probability [write_fraction] (a transaction may end up fully
    read-only).  [write_fraction] must be in [0, 1]; 1.0 reproduces the
    base model exactly. *)
