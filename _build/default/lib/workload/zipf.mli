(** Zipf-skewed object popularity (extension workload).

    Real TM traces concentrate accesses on a few hot objects; a Zipf
    exponent of ~1 is the usual model.  Not analysed in the paper, but a
    natural stress input for the schedulers: it interpolates between
    {!Uniform} (exponent 0) and {!Arbitrary.hot_object} (large
    exponent). *)

val instance :
  rng:Dtm_util.Prng.t ->
  n:int ->
  num_objects:int ->
  k:int ->
  exponent:float ->
  Dtm_core.Instance.t
(** Every node requests [k] distinct objects drawn from a Zipf
    distribution with the given exponent over object ids (id 0 hottest).
    Requires [1 <= k <= num_objects] and [exponent >= 0]. *)
