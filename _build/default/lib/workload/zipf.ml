module Prng = Dtm_util.Prng

let instance ~rng ~n ~num_objects ~k ~exponent =
  if k < 1 || k > num_objects then invalid_arg "Zipf.instance: bad k";
  if exponent < 0.0 then invalid_arg "Zipf.instance: negative exponent";
  (* Cumulative weights for inverse-transform sampling. *)
  let cum = Array.make num_objects 0.0 in
  let total = ref 0.0 in
  for o = 0 to num_objects - 1 do
    total := !total +. (1.0 /. (float_of_int (o + 1) ** exponent));
    cum.(o) <- !total
  done;
  let draw () =
    let x = Prng.float rng !total in
    (* First index with cum >= x. *)
    let lo = ref 0 and hi = ref (num_objects - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cum.(mid) >= x then hi := mid else lo := mid + 1
    done;
    !lo
  in
  let draw_k () =
    let seen = Hashtbl.create (2 * k) in
    let rec go acc need =
      if need = 0 then acc
      else begin
        let o = draw () in
        if Hashtbl.mem seen o then go acc need
        else begin
          Hashtbl.replace seen o ();
          go (o :: acc) (need - 1)
        end
      end
    in
    go [] k
  in
  let txns = List.init n (fun v -> (v, draw_k ())) in
  let home = Uniform.homes_of_txns ~rng ~n ~num_objects txns in
  Dtm_core.Instance.create ~n ~num_objects ~txns ~home
