module Blocks = Dtm_topology.Blocks
module Prng = Dtm_util.Prng

let a_object i = i
let b_object (p : Blocks.params) j = p.Blocks.s + j
let is_b_object (p : Blocks.params) o = o >= p.Blocks.s

let instance ~rng (p : Blocks.params) =
  let s = p.Blocks.s in
  let n = Blocks.n p in
  let num_objects = 2 * s in
  let b_pick = Array.init n (fun _ -> Prng.int rng s) in
  let txns =
    List.init n (fun v ->
        let block, _, _ = Blocks.coords p v in
        (v, [ a_object block; b_object p b_pick.(v) ]))
  in
  let top_left_h1 = Blocks.node p ~block:0 ~x:0 ~y:0 in
  let home = Array.make num_objects top_left_h1 in
  (* Each b_j starts at a node of H_1 that uses it, when one exists. *)
  let h1_users = Array.make s [] in
  List.iter
    (fun v ->
      if Blocks.block_of p v = 0 then h1_users.(b_pick.(v)) <- v :: h1_users.(b_pick.(v)))
    (List.init (Blocks.block_size p) Fun.id);
  for j = 0 to s - 1 do
    match h1_users.(j) with
    | [] -> ()
    | users -> home.(b_object p j) <- Prng.choose_list rng users
  done;
  Dtm_core.Instance.create ~n ~num_objects ~txns ~home
