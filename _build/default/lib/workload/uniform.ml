module Instance = Dtm_core.Instance

let homes_of_txns ~rng ~n ~num_objects txns =
  (* Place each object at a uniform requester; fall back to a uniform
     node for unrequested objects. *)
  let reqs = Array.make num_objects [] in
  List.iter
    (fun (v, objs) -> List.iter (fun o -> reqs.(o) <- v :: reqs.(o)) objs)
    txns;
  Array.map
    (fun l ->
      match l with
      | [] -> Dtm_util.Prng.int rng n
      | _ -> Dtm_util.Prng.choose_list rng l)
    reqs

let instance ~rng ~n ~num_objects ~k ?(density = 1.0) () =
  if k < 1 || k > num_objects then invalid_arg "Uniform.instance: bad k";
  if n < 1 then invalid_arg "Uniform.instance: n < 1";
  let txns = ref [] in
  for v = n - 1 downto 0 do
    if density >= 1.0 || Dtm_util.Prng.float rng 1.0 < density then begin
      let objs =
        Array.to_list (Dtm_util.Prng.sample_subset rng ~k ~n:num_objects)
      in
      txns := (v, objs) :: !txns
    end
  done;
  if !txns = [] then begin
    let objs = Array.to_list (Dtm_util.Prng.sample_subset rng ~k ~n:num_objects) in
    txns := [ (Dtm_util.Prng.int rng n, objs) ]
  end;
  let home = homes_of_txns ~rng ~n ~num_objects !txns in
  Instance.create ~n ~num_objects ~txns:!txns ~home

let homes_at_random_requester ~rng ~n inst =
  let txns =
    Array.to_list (Instance.txn_nodes inst)
    |> List.map (fun v ->
           match Instance.txn_at inst v with
           | Some objs -> (v, Array.to_list objs)
           | None -> assert false)
  in
  homes_of_txns ~rng ~n ~num_objects:(Instance.num_objects inst) txns
