(** Adversarial ("arbitrary input") workload families.

    The Clique, Line, Cluster, and Star theorems hold for every input, so
    the experiments exercise them on structured worst-case-ish families
    as well as uniform ones. *)

val hot_object :
  rng:Dtm_util.Prng.t -> n:int -> num_objects:int -> k:int -> Dtm_core.Instance.t
(** Every transaction requests object 0 plus [k-1] random others: load
    l = n, maximal contention (requires num_objects >= k >= 1). *)

val windowed :
  rng:Dtm_util.Prng.t ->
  n:int ->
  num_objects:int ->
  k:int ->
  span:int ->
  Dtm_core.Instance.t
(** Node [v] requests objects from a window of [span] object ids centred
    on [v]'s position, giving bounded object spans — the natural input
    family for the Line algorithm. *)

val partitioned :
  rng:Dtm_util.Prng.t ->
  n:int ->
  num_objects:int ->
  k:int ->
  parts:int ->
  Dtm_core.Instance.t
(** Nodes and objects are cut into [parts] aligned groups; transactions
    request only objects of their own group (zero cross-group traffic,
    e.g. one object community per cluster). *)

val cluster_local :
  rng:Dtm_util.Prng.t ->
  Dtm_topology.Cluster.params ->
  num_objects_per_cluster:int ->
  k:int ->
  Dtm_core.Instance.t
(** Each cluster has a private object pool: the σ = 1 case of Theorem 4
    where Approach 1 runs clusters in parallel. *)

val cluster_spread :
  rng:Dtm_util.Prng.t ->
  Dtm_topology.Cluster.params ->
  num_objects:int ->
  k:int ->
  sigma:int ->
  Dtm_core.Instance.t
(** Each object is requested from [sigma] distinct clusters (clamped to
    the cluster count): the contended case driving Approach 2. *)
