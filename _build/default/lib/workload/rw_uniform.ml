module Instance = Dtm_core.Instance

let instance ~rng ~n ~num_objects ~k ~write_fraction =
  if write_fraction < 0.0 || write_fraction > 1.0 then
    invalid_arg "Rw_uniform.instance: write_fraction out of range";
  let base = Uniform.instance ~rng ~n ~num_objects ~k () in
  let writes =
    Array.to_list (Instance.txn_nodes base)
    |> List.filter_map (fun v ->
           match Instance.txn_at base v with
           | None -> None
           | Some objs ->
             let written =
               Array.to_list objs
               |> List.filter (fun _ ->
                      Dtm_util.Prng.float rng 1.0 < write_fraction)
             in
             if written = [] then None else Some (v, written))
  in
  Dtm_core.Rw_instance.create base ~writes
