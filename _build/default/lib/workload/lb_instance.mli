(** The Section 8 lower-bound problem instances.

    On the block carriers ({!Dtm_topology.Block_grid} /
    {!Dtm_topology.Block_tree}) with [s] blocks:

    - objects A = a_1..a_s: a_i is requested by {e every} transaction of
      block H_i (serializing each block), and all a_i start at the
      top-left node of H_1;
    - objects B = b_1..b_s: every node also requests one uniformly random
      b object; each b starts at a node of H_1 that uses it (or the
      top-left node of H_1 if none does).

    Every transaction therefore has k = 2.  The same node layout backs
    both carriers, so one instance serves the grid and tree variants —
    only the metric differs. *)

val instance : rng:Dtm_util.Prng.t -> Dtm_topology.Blocks.params -> Dtm_core.Instance.t

val a_object : int -> int
(** Object id of a_i for block [i] (0-based): simply [i]. *)

val b_object : Dtm_topology.Blocks.params -> int -> int
(** Object id of b_j, [j] 0-based: [s + j]. *)

val is_b_object : Dtm_topology.Blocks.params -> int -> bool
