lib/workload/rw_uniform.mli: Dtm_core Dtm_util
