lib/workload/rw_uniform.ml: Array Dtm_core Dtm_util List Uniform
