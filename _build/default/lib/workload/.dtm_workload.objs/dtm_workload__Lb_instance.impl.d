lib/workload/lb_instance.ml: Array Dtm_core Dtm_topology Dtm_util Fun List
