lib/workload/zipf.mli: Dtm_core Dtm_util
