lib/workload/uniform.mli: Dtm_core Dtm_util
