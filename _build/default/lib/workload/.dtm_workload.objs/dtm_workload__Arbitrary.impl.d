lib/workload/arbitrary.ml: Array Dtm_core Dtm_topology Dtm_util List Uniform
