lib/workload/lb_instance.mli: Dtm_core Dtm_topology Dtm_util
