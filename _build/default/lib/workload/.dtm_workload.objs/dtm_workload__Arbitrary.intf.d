lib/workload/arbitrary.mli: Dtm_core Dtm_topology Dtm_util
