lib/workload/zipf.ml: Array Dtm_core Dtm_util Hashtbl List Uniform
