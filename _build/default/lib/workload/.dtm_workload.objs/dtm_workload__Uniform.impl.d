lib/workload/uniform.ml: Array Dtm_core Dtm_util List
