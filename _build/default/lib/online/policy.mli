(** Object-granting policies for the online executor — the contention
    managers of the TM literature the paper builds on (Section 1.2 cites
    the greedy manager of Guerraoui-Herlihy-Pochon and the experimental
    managers of Scherer-Scott).

    When an object is released (or revoked), the policy picks which
    waiting transaction receives it next. *)

type t =
  | Timestamp of { preemption : bool }
      (** oldest waiting transaction first (ties by node id).  With
          [preemption], an older waiter steals an object that sits,
          undelivered-to-commit, at a younger transaction — the classic
          Greedy contention manager, which needs no deadlock recovery. *)
  | Nearest
      (** the waiter closest to the object's current position (ties by
          age) — locality-seeking, but deadlock-prone without recovery. *)
  | Random_grant of int  (** uniformly random waiter, seeded. *)

val to_string : t -> string
