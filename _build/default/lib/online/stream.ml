type txn = { node : int; objects : int list; arrival : int }

type t = { n : int; num_objects : int; queues : txn list array }

let create ~n ~num_objects txns =
  if n < 1 then invalid_arg "Stream.create: n < 1";
  if num_objects < 1 then invalid_arg "Stream.create: num_objects < 1";
  let queues = Array.make n [] in
  List.iter
    (fun t ->
      if t.node < 0 || t.node >= n then invalid_arg "Stream.create: node out of range";
      if t.arrival < 1 then invalid_arg "Stream.create: arrival < 1";
      if t.objects = [] then invalid_arg "Stream.create: empty object list";
      List.iter
        (fun o ->
          if o < 0 || o >= num_objects then
            invalid_arg "Stream.create: object out of range")
        t.objects;
      queues.(t.node) <- t :: queues.(t.node))
    txns;
  Array.iteri
    (fun v q ->
      let q = List.rev q in
      let rec check_sorted = function
        | a :: (b :: _ as rest) ->
          if b.arrival < a.arrival then
            invalid_arg "Stream.create: arrivals not sorted per node";
          check_sorted rest
        | _ -> ()
      in
      check_sorted q;
      queues.(v) <- q)
    queues;
  { n; num_objects; queues }

let n t = t.n
let num_objects t = t.num_objects
let queue_at t v = t.queues.(v)

let txns t =
  Array.to_list t.queues |> List.concat
  |> List.sort (fun a b ->
         match compare a.arrival b.arrival with
         | 0 -> compare a.node b.node
         | c -> c)

let total t = Array.fold_left (fun acc q -> acc + List.length q) 0 t.queues

let uniform ~rng ~n ~num_objects ~k ~txns_per_node ~mean_gap =
  if k < 1 || k > num_objects then invalid_arg "Stream.uniform: bad k";
  if txns_per_node < 0 then invalid_arg "Stream.uniform: negative txns_per_node";
  if mean_gap < 1 then invalid_arg "Stream.uniform: mean_gap < 1";
  let all = ref [] in
  for node = 0 to n - 1 do
    let time = ref 0 in
    for _ = 1 to txns_per_node do
      time := !time + 1 + Dtm_util.Prng.int rng (2 * mean_gap);
      let objects =
        Array.to_list (Dtm_util.Prng.sample_subset rng ~k ~n:num_objects)
      in
      all := { node; objects; arrival = !time } :: !all
    done
  done;
  create ~n ~num_objects (List.rev !all)

let initial_homes ~rng t =
  let users = Array.make t.num_objects [] in
  Array.iter
    (List.iter (fun txn ->
         List.iter (fun o -> users.(o) <- txn.node :: users.(o)) txn.objects))
    t.queues;
  Array.map
    (fun l ->
      match l with
      | [] -> Dtm_util.Prng.int rng t.n
      | _ -> Dtm_util.Prng.choose_list rng l)
    users
