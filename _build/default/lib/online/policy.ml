type t =
  | Timestamp of { preemption : bool }
  | Nearest
  | Random_grant of int

let to_string = function
  | Timestamp { preemption = true } -> "timestamp+preemption (Greedy CM)"
  | Timestamp { preemption = false } -> "timestamp"
  | Nearest -> "nearest"
  | Random_grant _ -> "random"
