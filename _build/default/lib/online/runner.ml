type stats = {
  makespan : int;
  completed : int;
  mean_response : float;
  p95_response : float;
  total_travel : int;
  forced_grants : int;
  preemptions : int;
}

type txn = {
  id : int;
  node : int;
  objects : int array;
  arrival : int;
  mutable ready : int; (* step it was issued; -1 before *)
  mutable done_ : bool;
  mutable commit : int;
}

type obj = {
  mutable pos : int;
  mutable granted : int option; (* txn id *)
  mutable dest : int;
  mutable transit_until : int; (* 0 = not in transit *)
}

let run ?(policy = Policy.Timestamp { preemption = false }) ?(patience = 50)
    metric stream ~homes =
  if Array.length homes <> Stream.num_objects stream then
    invalid_arg "Runner.run: homes size mismatch";
  if patience < 1 then invalid_arg "Runner.run: patience < 1";
  let rng =
    match policy with
    | Policy.Random_grant seed -> Dtm_util.Prng.create ~seed
    | Policy.Timestamp _ | Policy.Nearest -> Dtm_util.Prng.create ~seed:0
  in
  (* Flatten per-node queues, keeping issue order. *)
  let txns = ref [] in
  let next_id = ref 0 in
  let queues =
    Array.init (Stream.n stream) (fun v ->
        Stream.queue_at stream v
        |> List.map (fun t ->
               let r =
                 {
                   id = !next_id;
                   node = v;
                   objects = Array.of_list t.Stream.objects;
                   arrival = t.Stream.arrival;
                   ready = -1;
                   done_ = false;
                   commit = 0;
                 }
               in
               incr next_id;
               txns := r :: !txns;
               r)
        |> Array.of_list)
  in
  let txns = Array.of_list (List.rev !txns) in
  let cursor = Array.make (Stream.n stream) 0 in
  let objs =
    Array.map
      (fun h -> { pos = h; granted = None; dest = h; transit_until = 0 })
      homes
  in
  let total = Stream.total stream in
  let completed = ref 0 in
  let travel = ref 0 and forced = ref 0 and preempted = ref 0 in
  let makespan = ref 0 in
  let responses = ref [] in
  let older a b =
    match compare txns.(a).arrival txns.(b).arrival with
    | 0 -> compare a b
    | c -> c
  in
  let waiting t = t.ready >= 0 && not t.done_ in
  (* Waiting transactions that request object [o] but do not hold it. *)
  let waiters o oid =
    Array.to_list txns
    |> List.filter (fun t ->
           waiting t
           && Array.exists (fun x -> x = oid) t.objects
           && o.granted <> Some t.id)
    |> List.map (fun t -> t.id)
  in
  let send o oid ~to_ now =
    let d = Dtm_graph.Metric.dist metric o.pos txns.(to_).node in
    o.granted <- Some to_;
    o.dest <- txns.(to_).node;
    o.transit_until <- now + max 1 d;
    travel := !travel + d;
    ignore oid
  in
  let choose o oid candidates =
    match candidates with
    | [] -> None
    | _ ->
      let best =
        match policy with
        | Policy.Timestamp _ ->
          List.fold_left
            (fun acc c ->
              match acc with
              | None -> Some c
              | Some b -> if older c b < 0 then Some c else acc)
            None candidates
        | Policy.Nearest ->
          let dist c = Dtm_graph.Metric.dist metric o.pos txns.(c).node in
          List.fold_left
            (fun acc c ->
              match acc with
              | None -> Some c
              | Some b ->
                if
                  dist c < dist b
                  || (dist c = dist b && older c b < 0)
                then Some c
                else acc)
            None candidates
        | Policy.Random_grant _ ->
          Some (Dtm_util.Prng.choose_list rng candidates)
      in
      ignore oid;
      best
  in
  let t = ref 0 in
  let last_progress = ref 0 in
  let step_cap = 1_000_000 in
  while !completed < total do
    incr t;
    if !t > step_cap then failwith "Runner.run: step cap exceeded";
    let now = !t in
    (* 1. Issue. *)
    Array.iteri
      (fun v q ->
        if cursor.(v) < Array.length q then begin
          let txn = q.(cursor.(v)) in
          let prev_done =
            cursor.(v) = 0
            ||
            let prev = q.(cursor.(v) - 1) in
            prev.done_ && prev.commit < now
          in
          if txn.ready < 0 && now >= txn.arrival && prev_done then begin
            txn.ready <- now;
            last_progress := now
          end
        end)
      queues;
    (* 2. Deliver. *)
    Array.iter
      (fun o ->
        if o.transit_until <> 0 && o.transit_until <= now then begin
          o.pos <- o.dest;
          o.transit_until <- 0;
          last_progress := now
        end)
      objs;
    (* 3. Execute. *)
    Array.iter
      (fun txn ->
        if waiting txn then begin
          let ready_to_commit =
            Array.for_all
              (fun oid ->
                let o = objs.(oid) in
                o.granted = Some txn.id && o.transit_until = 0 && o.pos = txn.node)
              txn.objects
          in
          if ready_to_commit then begin
            txn.done_ <- true;
            txn.commit <- now;
            if now > !makespan then makespan := now;
            responses := float_of_int (now - txn.ready + 1) :: !responses;
            incr completed;
            cursor.(txn.node) <- cursor.(txn.node) + 1;
            Array.iter (fun oid -> objs.(oid).granted <- None) txn.objects;
            last_progress := now
          end
        end)
      txns;
    (* 4. Grant free objects; preempt if the policy allows. *)
    Array.iteri
      (fun oid o ->
        if o.transit_until = 0 then begin
          match o.granted with
          | None -> (
            match choose o oid (waiters o oid) with
            | Some c -> send o oid ~to_:c now
            | None -> ())
          | Some holder -> (
            match policy with
            | Policy.Timestamp { preemption = true } when not txns.(holder).done_
              -> (
              let ws = List.filter (fun c -> older c holder < 0) (waiters o oid) in
              match choose o oid ws with
              | Some c ->
                incr preempted;
                send o oid ~to_:c now
              | None -> ())
            | _ -> ())
        end)
      objs;
    (* 5. Watchdog: break waits-for cycles by force-granting the oldest
       waiting transaction's objects. *)
    if now - !last_progress > patience && !completed < total then begin
      let oldest =
        Array.fold_left
          (fun acc txn ->
            if waiting txn then
              match acc with
              | None -> Some txn.id
              | Some b -> if older txn.id b < 0 then Some txn.id else acc
            else acc)
          None txns
      in
      match oldest with
      | None ->
        (* No waiting transaction: arrivals are just sparse; wait on. *)
        last_progress := now
      | Some star ->
        Array.iter
          (fun oid ->
            let o = objs.(oid) in
            if o.granted <> Some star && o.transit_until = 0 then begin
              incr forced;
              send o oid ~to_:star now
            end)
          txns.(star).objects;
        last_progress := now
    end
  done;
  let resp = Array.of_list !responses in
  {
    makespan = !makespan;
    completed = !completed;
    mean_response = Dtm_util.Stats.mean resp;
    p95_response = Dtm_util.Stats.percentile resp 95.0;
    total_travel = !travel;
    forced_grants = !forced;
    preemptions = !preempted;
  }
