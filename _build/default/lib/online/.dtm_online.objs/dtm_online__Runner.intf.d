lib/online/runner.mli: Dtm_graph Policy Stream
