lib/online/policy.ml:
