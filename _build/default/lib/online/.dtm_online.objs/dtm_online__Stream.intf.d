lib/online/stream.mli: Dtm_util
