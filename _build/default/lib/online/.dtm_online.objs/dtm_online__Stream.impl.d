lib/online/stream.ml: Array Dtm_util List
