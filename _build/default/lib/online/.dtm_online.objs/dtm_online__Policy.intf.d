lib/online/policy.mli:
