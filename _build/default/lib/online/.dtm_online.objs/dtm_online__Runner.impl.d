lib/online/runner.ml: Array Dtm_graph Dtm_util List Policy Stream
