(** The Grid schedule of Section 5 (Theorem 3).

    The grid is decomposed into subgrids of side sqrt(ξ) with
    ξ = 27·w·ln m / k (m = max of the grid side and w).  Subgrids
    execute one at a time in boustrophedon column-major order — down the
    first column of subgrids, up the second, and so on — with transition
    periods in between for the objects to move to the next subgrid that
    needs them.  Inside a subgrid the basic greedy schedule runs.  For
    transactions holding random k-subsets of the objects this is an
    O(k log m) approximation with high probability.

    [subgrid_side] overrides the paper's sqrt(ξ) (used by the ablation
    bench); when it is at least the whole grid, the algorithm degenerates
    to one greedy run over the full grid, which is how the ξ > n²/9 case
    of Theorem 3 is handled. *)

val schedule :
  ?subgrid_side:int ->
  rows:int ->
  cols:int ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t

val default_subgrid_side : rows:int -> cols:int -> Dtm_core.Instance.t -> int
(** ceil(sqrt(27 · w · ln m / k)), at least 1. *)

val subgrid_order : rows:int -> cols:int -> side:int -> (int * int) list
(** The boustrophedon column-major visit order as (subgrid-row,
    subgrid-column) indices — exposed for the Figure 2 reproduction. *)
