(** Baseline schedulers the paper's algorithms are compared against.

    [sequential] executes the transactions one at a time in node order,
    waiting for each transaction's objects to travel from wherever the
    previous transactions left them — the natural "global lock"
    strategy of the naive distributed TMs discussed in Section 1.2.
    [random_order] is the same with a shuffled order. *)

val sequential : Dtm_graph.Metric.t -> Dtm_core.Instance.t -> Dtm_core.Schedule.t

val random_order :
  seed:int -> Dtm_graph.Metric.t -> Dtm_core.Instance.t -> Dtm_core.Schedule.t

val nearest_first : Dtm_graph.Metric.t -> Dtm_core.Instance.t -> Dtm_core.Schedule.t
(** Serial execution in a nearest-neighbour tour over the transaction
    nodes: a communication-minimizing heuristic.  Together with the
    others it exhibits the execution-time / communication-cost tension of
    Busch et al. (PODC 2015) discussed in Section 1.2. *)
