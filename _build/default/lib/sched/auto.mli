(** Dispatch: pick the paper's algorithm for a topology.

    - Clique: Theorem 1 greedy;
    - Line: Theorem 2 two-phase sweeps;
    - Ring: the Theorem 2 technique extended to cycles;
    - Grid: Theorem 3 subgrid decomposition;
    - Cluster: Theorem 4 (best of Approaches 1 and 2);
    - Star: Theorem 5 period schedule;
    - Hypercube / Butterfly / Torus / the Section 8 carriers:
      the Section 3.1 bounded-diameter greedy. *)

val schedule :
  ?seed:int -> Dtm_topology.Topology.t -> Dtm_core.Instance.t -> Dtm_core.Schedule.t
(** [seed] feeds the randomized cluster/star variants (default 0). *)

val name : Dtm_topology.Topology.t -> string
(** Which algorithm [schedule] will use, for reports. *)
