let schedule metric inst = Dtm_core.Greedy.schedule metric inst

let approximation_bound metric inst =
  (Dtm_core.Instance.k_max inst * Dtm_core.Instance.load inst
   * Dtm_graph.Metric.diameter metric)
  + 1
