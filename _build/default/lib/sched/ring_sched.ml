module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule
module Ring = Dtm_topology.Ring

let span ~n inst =
  let best = ref 1 in
  for o = 0 to Instance.num_objects inst - 1 do
    let reqs = Instance.requesters inst o in
    if Array.length reqs > 0 then begin
      let pts = Instance.home inst o :: Array.to_list reqs in
      let s = Ring.arc_span ~n pts in
      if s > !best then best := s
    end
  done;
  !best

let schedule ~n inst =
  if Instance.n inst <> n then invalid_arg "Ring_sched.schedule: size mismatch";
  let l = span ~n inst in
  let sched = Schedule.create ~n in
  let q = n / l in
  if q <= 1 then
    (* Degenerate cut: one clockwise sweep.  Consecutive sweep times
       differ by the index gap, which dominates the ring distance, and
       the base n dominates any initial travel. *)
    Array.iter
      (fun v -> Schedule.set sched ~node:v ~time:(n + v))
      (Instance.txn_nodes inst)
  else begin
    (* Arc j covers [j*l, (j+1)*l), except the last which runs to n. *)
    let arc_of v = min (v / l) (q - 1) in
    let arc_start j = j * l in
    let max_arc_len = n - ((q - 1) * l) in
    let base_of_phase p = l + ((p - 1) * (max_arc_len + l)) in
    let phase_of j = if q mod 2 = 1 && j = q - 1 then 3 else if j mod 2 = 0 then 1 else 2 in
    Array.iter
      (fun v ->
        let j = arc_of v in
        let time = base_of_phase (phase_of j) + (v - arc_start j) in
        Schedule.set sched ~node:v ~time)
      (Instance.txn_nodes inst)
  end;
  sched
