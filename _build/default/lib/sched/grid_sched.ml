module Instance = Dtm_core.Instance

let default_subgrid_side ~rows ~cols inst =
  let w = Instance.num_objects inst in
  let k = max 1 (Instance.k_max inst) in
  let m = float_of_int (max (max rows cols) (max 2 w)) in
  let xi = 27.0 *. float_of_int (max 1 w) *. log m /. float_of_int k in
  max 1 (int_of_float (ceil (sqrt xi)))

let subgrid_order ~rows ~cols ~side =
  let ic = (rows + side - 1) / side and jc = (cols + side - 1) / side in
  let out = ref [] in
  for j = 0 to jc - 1 do
    if j mod 2 = 0 then
      for i = 0 to ic - 1 do
        out := (i, j) :: !out
      done
    else
      for i = ic - 1 downto 0 do
        out := (i, j) :: !out
      done
  done;
  List.rev !out

let subgrid_nodes ~rows ~cols ~side (i, j) =
  let y0 = i * side and x0 = j * side in
  let y1 = min rows (y0 + side) and x1 = min cols (x0 + side) in
  let out = ref [] in
  for y = y0 to y1 - 1 do
    for x = x0 to x1 - 1 do
      out := Dtm_topology.Grid.node ~cols ~x ~y :: !out
    done
  done;
  List.rev !out

let schedule ?subgrid_side ~rows ~cols inst =
  if Instance.n inst <> rows * cols then
    invalid_arg "Grid_sched.schedule: size mismatch";
  let side =
    match subgrid_side with
    | Some s when s >= 1 -> s
    | Some _ -> invalid_arg "Grid_sched.schedule: subgrid_side < 1"
    | None -> default_subgrid_side ~rows ~cols inst
  in
  let metric = Dtm_topology.Grid.metric ~rows ~cols in
  let composer = Composer.create metric inst in
  if side >= rows && side >= cols then
    (* Single subgrid: the whole grid is one greedy group (Theorem 3's
       large-ξ case). *)
    Composer.run_greedy_group composer
      (Array.to_list (Instance.txn_nodes inst))
  else
    List.iter
      (fun ij ->
        Composer.run_greedy_group composer (subgrid_nodes ~rows ~cols ~side ij))
      (subgrid_order ~rows ~cols ~side);
  Composer.schedule composer
