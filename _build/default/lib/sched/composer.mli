(** Incremental schedule composition.

    The paper's Grid, Cluster, and Star algorithms all share one shape:
    partition the transactions into groups (subgrids, phase/round
    activations, ray segments), schedule each group internally with the
    basic greedy schedule or a sequential chain, and insert transition
    periods for objects to travel between groups.

    A composer tracks, for every object, where it currently sits and when
    it was last released, and appends group schedules one after another,
    computing the smallest transition gap that keeps the overall schedule
    feasible.  Every schedule it emits passes {!Dtm_core.Validator} by
    construction. *)

type t

val create : Dtm_graph.Metric.t -> Dtm_core.Instance.t -> t

val cursor : t -> int
(** Last time step used so far (0 initially). *)

val is_scheduled : t -> int -> bool

val unscheduled : t -> int list
(** Transaction nodes not yet scheduled, ascending. *)

val run_greedy_group :
  ?strategy:Dtm_core.Coloring.strategy ->
  ?order:Dtm_core.Coloring.order ->
  t ->
  int list ->
  unit
(** [run_greedy_group t nodes] schedules the not-yet-scheduled
    transactions among [nodes] as the next group, using the Section 2.3
    greedy coloring of their mutual conflicts, shifted past the current
    cursor by the minimal transition gap that lets every needed object
    arrive from wherever it currently is. *)

val run_parallel_chains : t -> int list list -> unit
(** [run_parallel_chains t chains] schedules several node chains
    concurrently as the next group: within a chain, transactions run in
    the given order, spaced by the distances between consecutive chain
    nodes (the Line algorithm's left-to-right sweeps).  Raises
    [Invalid_argument] if an object is requested from two different
    chains — callers must partition objects between chains, which is
    exactly what the paper's phase constructions guarantee. *)

val schedule : t -> Dtm_core.Schedule.t
(** The schedule built so far (copy; safe to keep using the composer). *)
