(** Repeated batches — the multi-shot setting behind the one-shot model.

    The paper schedules a single batch (Section 2: one transaction per
    node), noting that multiprocessor work studies repeated/window-based
    executions (Section 1.2 cites window-based greedy scheduling).  This
    module chains batches: each batch is scheduled by {!Dtm_core.Greedy}
    against the object positions the previous batch left behind, with
    batches barrier-synchronized (batch i+1's clock restarts at step 1
    with the objects at rest).

    The per-batch schedules are therefore exactly validatable: batch i is
    feasible for the instance whose homes are the carried positions —
    which is what the tests assert. *)

type step = {
  schedule : Dtm_core.Schedule.t;  (** batch-local times *)
  entry_positions : int array;  (** object positions when the batch began *)
  exit_positions : int array;  (** positions after the batch *)
}

val schedule :
  Dtm_graph.Metric.t -> homes:int array -> Dtm_core.Instance.t list -> step list
(** [schedule m ~homes batches] requires every batch to share node and
    object counts, and [homes] to size-match; batch 1 starts from
    [homes].  Raises [Invalid_argument] on mismatches. *)

val total_makespan : step list -> int
(** Sum of the batch makespans (the barrier-synchronized wall clock). *)
