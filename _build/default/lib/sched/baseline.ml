module Instance = Dtm_core.Instance

let in_order order metric inst =
  let composer = Composer.create metric inst in
  Array.iter (fun v -> Composer.run_greedy_group composer [ v ]) order;
  Composer.schedule composer

let sequential metric inst = in_order (Instance.txn_nodes inst) metric inst

let random_order ~seed metric inst =
  let rng = Dtm_util.Prng.create ~seed in
  let order = Dtm_util.Prng.shuffled_copy rng (Instance.txn_nodes inst) in
  in_order order metric inst

let nearest_first metric inst =
  let nodes = Instance.txn_nodes inst in
  let m = Array.length nodes in
  if m = 0 then in_order [||] metric inst
  else begin
    let visited = Array.make m false in
    let order = Array.make m nodes.(0) in
    visited.(0) <- true;
    for i = 1 to m - 1 do
      let cur = order.(i - 1) in
      let pick = ref (-1) and best = ref max_int in
      for j = 0 to m - 1 do
        if not visited.(j) then begin
          let d = Dtm_graph.Metric.dist metric cur nodes.(j) in
          if d < !best then begin
            best := d;
            pick := j
          end
        end
      done;
      visited.(!pick) <- true;
      order.(i) <- nodes.(!pick)
    done;
    in_order order metric inst
  end
