module Instance = Dtm_core.Instance

let pending_eligible inst composer ~group_of ~eligible ~active =
  Array.to_list (Instance.txn_nodes inst)
  |> List.filter (fun v ->
         (not (Composer.is_scheduled composer v))
         && eligible v
         && List.mem (group_of v) active)

(* One round.  [force] optionally names a transaction whose objects are
   activated at its own group regardless of the random draws. *)
let round ~rng inst composer ~group_of ~eligible ~active ~force =
  let candidates = pending_eligible inst composer ~group_of ~eligible ~active in
  let activation = Array.make (Instance.num_objects inst) None in
  for o = 0 to Instance.num_objects inst - 1 do
    let wanting =
      List.filter (fun v -> Instance.uses inst ~node:v ~obj:o) candidates
      |> List.map group_of
      |> List.sort_uniq compare
    in
    if wanting <> [] then
      activation.(o) <- Some (Dtm_util.Prng.choose_list rng wanting)
  done;
  (match force with
  | None -> ()
  | Some v -> (
    match Instance.txn_at inst v with
    | None -> ()
    | Some objs ->
      Array.iter (fun o -> activation.(o) <- Some (group_of v)) objs));
  let enabled =
    List.filter
      (fun v ->
        match Instance.txn_at inst v with
        | None -> false
        | Some objs ->
          Array.for_all (fun o -> activation.(o) = Some (group_of v)) objs)
      candidates
  in
  if enabled <> [] then Composer.run_greedy_group composer enabled

let run_phase ~rng inst composer ~group_of ~eligible ~active ~cap =
  let rounds = ref 0 in
  while
    !rounds < cap
    && pending_eligible inst composer ~group_of ~eligible ~active <> []
  do
    round ~rng inst composer ~group_of ~eligible ~active ~force:None;
    incr rounds
  done;
  !rounds

let cleanup ~rng inst composer ~group_of ~eligible ~active =
  let rounds = ref 0 in
  let rec go () =
    match pending_eligible inst composer ~group_of ~eligible ~active with
    | [] -> ()
    | v :: _ ->
      round ~rng inst composer ~group_of ~eligible ~active ~force:(Some v);
      incr rounds;
      go ()
  in
  go ();
  !rounds
