module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule
module Star = Dtm_topology.Star

type variant =
  | Greedy_periods
  | Randomized_periods of { seed : int }
  | Best_periods of { seed : int }

let in_period p i v =
  match Star.ray_of p v with
  | None -> false
  | Some _ ->
    let lo, hi = Star.segment_depths p i in
    let d = Star.depth_of p v in
    d >= lo && d <= hi

let period_nodes p inst i =
  Array.to_list (Instance.txn_nodes inst) |> List.filter (in_period p i)

let segment_chain p inst i ray =
  let lo, hi = Star.segment_depths p i in
  let rec go d acc =
    if d > hi then List.rev acc
    else begin
      let v = Star.node p ~ray ~depth:d in
      let acc = if Instance.txn_at inst v <> None then v :: acc else acc in
      go (d + 1) acc
    end
  in
  go lo []

let sigma_of_period p inst i =
  let best = ref 0 in
  for o = 0 to Instance.num_objects inst - 1 do
    let segments =
      Array.to_list (Instance.requesters inst o)
      |> List.filter (in_period p i)
      |> List.filter_map (Star.ray_of p)
      |> List.sort_uniq compare
    in
    let c = List.length segments in
    if c > !best then best := c
  done;
  !best

let run ~variant p inst =
  let metric = Star.metric p in
  let composer = Composer.create metric inst in
  let rng =
    match variant with
    | Greedy_periods -> Dtm_util.Prng.create ~seed:0
    | Randomized_periods { seed } -> Dtm_util.Prng.create ~seed
    | Best_periods _ -> assert false
  in
  (* The center's transaction goes first. *)
  Composer.run_greedy_group composer [ Star.center ];
  for i = 1 to Star.num_segments p do
    let nodes = period_nodes p inst i in
    if nodes <> [] then begin
      if sigma_of_period p inst i <= 1 then begin
        (* Independent segments: parallel inner-to-outer chains. *)
        let chains =
          List.init p.Star.rays (fun ray -> segment_chain p inst i ray)
          |> List.filter (fun c -> c <> [])
        in
        Composer.run_parallel_chains composer chains
      end
      else begin
        match variant with
        | Greedy_periods -> Composer.run_greedy_group composer nodes
        | Randomized_periods _ ->
          let group_of v =
            match Star.ray_of p v with Some r -> r | None -> -1
          in
          let eligible = in_period p i in
          let active = List.init p.Star.rays Fun.id in
          (* Same practical round cap as the cluster scheduler. *)
          let cap = 5_000 in
          ignore
            (Rounds.run_phase ~rng inst composer ~group_of ~eligible ~active ~cap);
          ignore (Rounds.cleanup ~rng inst composer ~group_of ~eligible ~active)
        | Best_periods _ -> assert false
      end
    end
  done;
  Composer.schedule composer

let schedule ?(variant = Best_periods { seed = 0 }) p inst =
  if Instance.n inst <> 1 + (p.Star.rays * p.Star.ray_len) then
    invalid_arg "Star_sched.schedule: size mismatch";
  match variant with
  | Greedy_periods | Randomized_periods _ -> run ~variant p inst
  | Best_periods { seed } ->
    let a = run ~variant:Greedy_periods p inst in
    let b = run ~variant:(Randomized_periods { seed }) p inst in
    if Schedule.makespan a <= Schedule.makespan b then a else b
