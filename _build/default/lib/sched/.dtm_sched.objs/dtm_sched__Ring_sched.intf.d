lib/sched/ring_sched.mli: Dtm_core
