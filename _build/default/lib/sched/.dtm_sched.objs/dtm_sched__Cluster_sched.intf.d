lib/sched/cluster_sched.mli: Dtm_core Dtm_topology
