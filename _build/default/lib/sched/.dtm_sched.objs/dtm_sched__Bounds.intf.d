lib/sched/bounds.mli: Dtm_core Dtm_graph Dtm_topology
