lib/sched/diameter_sched.ml: Dtm_core Dtm_graph
