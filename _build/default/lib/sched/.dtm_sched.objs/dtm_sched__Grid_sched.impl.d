lib/sched/grid_sched.ml: Array Composer Dtm_core Dtm_topology List
