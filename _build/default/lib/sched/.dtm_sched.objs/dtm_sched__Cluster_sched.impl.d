lib/sched/cluster_sched.ml: Array Composer Dtm_core Dtm_topology Dtm_util Float Fun List Rounds
