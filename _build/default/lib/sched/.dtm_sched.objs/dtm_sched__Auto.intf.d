lib/sched/auto.mli: Dtm_core Dtm_topology
