lib/sched/bounds.ml: Array Cluster_sched Dtm_core Dtm_graph Dtm_topology Grid_sched Hashtbl Line_sched List Option Ring_sched
