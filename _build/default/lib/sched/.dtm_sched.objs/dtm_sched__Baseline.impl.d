lib/sched/baseline.ml: Array Composer Dtm_core Dtm_graph Dtm_util
