lib/sched/auto.ml: Clique_sched Cluster_sched Diameter_sched Dtm_topology Grid_sched Line_sched Ring_sched Star_sched
