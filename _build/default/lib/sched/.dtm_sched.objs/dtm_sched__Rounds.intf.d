lib/sched/rounds.mli: Composer Dtm_core Dtm_util
