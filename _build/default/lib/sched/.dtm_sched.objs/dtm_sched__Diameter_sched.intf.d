lib/sched/diameter_sched.mli: Dtm_core Dtm_graph
