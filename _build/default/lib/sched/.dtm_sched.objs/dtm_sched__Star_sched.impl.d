lib/sched/star_sched.ml: Array Composer Dtm_core Dtm_topology Dtm_util Fun List Rounds
