lib/sched/grid_sched.mli: Dtm_core
