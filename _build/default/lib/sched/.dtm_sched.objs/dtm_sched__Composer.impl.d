lib/sched/composer.ml: Array Dtm_core Dtm_graph Hashtbl List
