lib/sched/baseline.mli: Dtm_core Dtm_graph
