lib/sched/ring_sched.ml: Array Dtm_core Dtm_topology
