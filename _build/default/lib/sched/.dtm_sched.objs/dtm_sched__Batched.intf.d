lib/sched/batched.mli: Dtm_core Dtm_graph
