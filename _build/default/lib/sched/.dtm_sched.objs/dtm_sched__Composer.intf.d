lib/sched/composer.mli: Dtm_core Dtm_graph
