lib/sched/rounds.ml: Array Composer Dtm_core Dtm_util List
