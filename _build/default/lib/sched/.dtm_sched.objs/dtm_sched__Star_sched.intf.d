lib/sched/star_sched.mli: Dtm_core Dtm_topology
