lib/sched/clique_sched.ml: Dtm_core Dtm_topology
