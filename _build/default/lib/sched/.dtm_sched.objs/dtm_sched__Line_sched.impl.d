lib/sched/line_sched.ml: Array Dtm_core
