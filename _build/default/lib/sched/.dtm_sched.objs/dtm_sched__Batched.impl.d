lib/sched/batched.ml: Array Dtm_core List
