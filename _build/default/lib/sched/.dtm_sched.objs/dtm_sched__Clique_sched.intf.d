lib/sched/clique_sched.mli: Dtm_core
