lib/sched/line_sched.mli: Dtm_core
