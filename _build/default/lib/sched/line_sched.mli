(** The Line-graph schedule of Section 4 (Theorem 2).

    Let l be the longest span of any object: the number of edges between
    the leftmost and rightmost nodes it must touch (requesters and home).
    The line is cut into consecutive subgraphs of l nodes; even-indexed
    subgraphs execute in phase 1 and odd-indexed in phase 2, each phase
    being a positioning period of l-1 steps followed by a left-to-right
    execution sweep of l steps.  Because no object spans more than two
    adjacent subgraphs, subgraphs of one phase never contend, and the
    total time is at most 4l - 2: a constant-factor (asymptotically
    optimal) schedule. *)

val schedule : n:int -> Dtm_core.Instance.t -> Dtm_core.Schedule.t
(** [schedule ~n inst] for an instance living on [Line n].  Raises
    [Invalid_argument] when the instance has a different node count. *)

val span : Dtm_core.Instance.t -> int
(** The l used by the algorithm: the largest object span (>= 1). *)
