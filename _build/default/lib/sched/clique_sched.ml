let schedule ~n inst =
  if Dtm_core.Instance.n inst <> n then
    invalid_arg "Clique_sched.schedule: size mismatch";
  Dtm_core.Greedy.schedule (Dtm_topology.Clique.metric n) inst

let approximation_bound inst =
  (Dtm_core.Instance.k_max inst * Dtm_core.Instance.load inst) + 1
