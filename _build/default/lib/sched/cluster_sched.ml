module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule
module Cluster = Dtm_topology.Cluster

type approach = Approach1 | Approach2 of { seed : int } | Best of { seed : int }

let clusters_of_object p inst o =
  Array.to_list (Instance.requesters inst o)
  |> List.map (Cluster.cluster_of p)
  |> List.sort_uniq compare

let sigma p inst =
  let best = ref 0 in
  for o = 0 to Instance.num_objects inst - 1 do
    let c = List.length (clusters_of_object p inst o) in
    if c > !best then best := c
  done;
  !best

let log_m inst =
  let m = max (Instance.n inst) (Instance.num_objects inst) in
  log (float_of_int (max 2 m))

let phase_count p inst =
  let s = float_of_int (sigma p inst) in
  max 1 (int_of_float (ceil (s /. (24.0 *. log_m inst))))

let round_cap p inst =
  let k = float_of_int (max 1 (Instance.k_max inst)) in
  let lm = log_m inst in
  let zeta = 2.0 *. (40.0 ** k) *. ceil (lm ** (k +. 1.0)) in
  (* The theoretical count explodes for k >= 2; phases exit early when
     their transactions are done, so a practical ceiling suffices. *)
  let ceiling = 5_000.0 in
  ignore p;
  int_of_float (Float.min zeta ceiling) |> max 1

let approach1 p inst = Dtm_core.Greedy.schedule (Cluster.metric p) inst

let approach2 ~seed p inst =
  let rng = Dtm_util.Prng.create ~seed in
  let composer = Composer.create (Cluster.metric p) inst in
  let psi = phase_count p inst in
  let cap = round_cap p inst in
  let group_of = Cluster.cluster_of p in
  let eligible _ = true in
  (* Algorithm 1 lines 3-6: assign each cluster to a uniform phase. *)
  let phase_of = Array.init p.Cluster.clusters (fun _ -> Dtm_util.Prng.int rng psi) in
  for x = 0 to psi - 1 do
    let active =
      List.filter (fun c -> phase_of.(c) = x) (List.init p.Cluster.clusters Fun.id)
    in
    if active <> [] then
      ignore (Rounds.run_phase ~rng inst composer ~group_of ~eligible ~active ~cap)
  done;
  (* Stragglers that beat the whp guarantee finish in deterministic
     cleanup rounds. *)
  let all = List.init p.Cluster.clusters Fun.id in
  ignore (Rounds.cleanup ~rng inst composer ~group_of ~eligible ~active:all);
  Composer.schedule composer

let schedule ?(approach = Best { seed = 0 }) p inst =
  if Instance.n inst <> p.Cluster.clusters * p.Cluster.size then
    invalid_arg "Cluster_sched.schedule: size mismatch";
  match approach with
  | Approach1 -> approach1 p inst
  | Approach2 { seed } -> approach2 ~seed p inst
  | Best { seed } ->
    let a = approach1 p inst and b = approach2 ~seed p inst in
    if Schedule.makespan a <= Schedule.makespan b then a else b
