(** The complete-graph schedule of Section 3 (Theorem 1).

    On a clique every pairwise distance is 1, so the dependency graph has
    h_max = 1 and weighted degree at most k·l; the basic greedy schedule
    colors it with at most k·l + 1 colors while l is a lower bound —
    an O(k) approximation. *)

val schedule : n:int -> Dtm_core.Instance.t -> Dtm_core.Schedule.t
(** [schedule ~n inst] for an instance on [Clique n]. *)

val approximation_bound : Dtm_core.Instance.t -> int
(** The proven makespan bound k·l + 1 for this instance. *)
