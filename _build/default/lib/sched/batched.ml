module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule

type step = {
  schedule : Schedule.t;
  entry_positions : int array;
  exit_positions : int array;
}

let rehome inst positions =
  Instance.create ~n:(Instance.n inst)
    ~num_objects:(Instance.num_objects inst)
    ~txns:
      (Array.to_list (Instance.txn_nodes inst)
      |> List.map (fun v ->
             match Instance.txn_at inst v with
             | Some objs -> (v, Array.to_list objs)
             | None -> assert false))
    ~home:positions

let schedule metric ~homes batches =
  (match batches with
  | [] -> ()
  | first :: rest ->
    if Array.length homes <> Instance.num_objects first then
      invalid_arg "Batched.schedule: homes size mismatch";
    List.iter
      (fun b ->
        if
          Instance.n b <> Instance.n first
          || Instance.num_objects b <> Instance.num_objects first
        then invalid_arg "Batched.schedule: batch shape mismatch")
      rest);
  let positions = ref (Array.copy homes) in
  List.map
    (fun batch ->
      let entry_positions = Array.copy !positions in
      let inst = rehome batch entry_positions in
      let sched = Dtm_core.Greedy.schedule metric inst in
      (* Objects end wherever their last scheduled user sits. *)
      let exit_positions = Array.copy entry_positions in
      for o = 0 to Instance.num_objects inst - 1 do
        let reqs = Instance.requesters inst o in
        if Array.length reqs > 0 then begin
          match List.rev (Schedule.object_order sched ~requesters:reqs) with
          | last :: _ -> exit_positions.(o) <- last
          | [] -> ()
        end
      done;
      positions := exit_positions;
      { schedule = sched; entry_positions; exit_positions })
    batches

let total_makespan steps =
  List.fold_left (fun acc s -> acc + Schedule.makespan s.schedule) 0 steps
