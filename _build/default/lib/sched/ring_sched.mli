(** Ring (cycle) schedule — an extension of the Theorem 2 line technique
    to cycles (the paper's Section 9 asks for extensions to further
    graphs).

    Let l be the largest {e arc span} of any object: the length of the
    shortest arc containing its home and all requesters.  The ring is cut
    into q = floor(n/l) consecutive arcs — the first q-1 of length l, the
    last absorbing the remainder (so every arc has length in [l, 2l)).
    Since an arc of length <= l cannot properly contain one of the cut
    arcs, each object touches at most two {e cyclically adjacent} arcs.
    Even-indexed arcs sweep clockwise in phase 1, odd-indexed arcs in
    phase 2, and — when q is odd, so the last even arc would wrap around
    next to arc 0 — the last arc runs alone in phase 3.  Phase starts are
    spaced by (max arc length) + l, which exceeds any object's travel
    between phases.  Total time < 9l: a constant-factor approximation,
    mirroring the line result.

    When n < 2l the cut degenerates (q <= 1) and a single clockwise sweep
    over the whole ring is used instead, finishing within 2n <= 4l. *)

val schedule : n:int -> Dtm_core.Instance.t -> Dtm_core.Schedule.t
(** [schedule ~n inst] for an instance on [Ring n]. *)

val span : n:int -> Dtm_core.Instance.t -> int
(** The l used by the algorithm: the largest object arc span, at least
    1. *)
