(** The bounded-diameter generalization of Section 3.1.

    On any graph of diameter d the dependency graph has h_max <= d, so
    the greedy schedule needs at most k·l·d + 1 steps, an O(k·d)
    approximation (O(k log n) on hypercubes, butterflies, and log-n
    dimensional grids).  This is simply the basic greedy schedule run
    with the topology's metric; it also serves arbitrary graphs via an
    APSP metric. *)

val schedule : Dtm_graph.Metric.t -> Dtm_core.Instance.t -> Dtm_core.Schedule.t

val approximation_bound : Dtm_graph.Metric.t -> Dtm_core.Instance.t -> int
(** k·l·d + 1 with d the metric diameter (O(size^2) to compute). *)
