(** The randomized phase/round engine behind Algorithm 1 (Section 6),
    generalized over the grouping so Section 7 can reuse it with ray
    segments in place of clusters.

    In each round, every object still wanted by an eligible pending
    transaction activates in a uniformly random active group that wants
    it; transactions whose objects all activated in their own group
    become enabled and execute as one greedy composer group. *)

val run_phase :
  rng:Dtm_util.Prng.t ->
  Dtm_core.Instance.t ->
  Composer.t ->
  group_of:(int -> int) ->
  eligible:(int -> bool) ->
  active:int list ->
  cap:int ->
  int
(** Runs rounds until every eligible pending transaction whose group is
    in [active] has been scheduled, or [cap] rounds have passed.  Returns
    the number of rounds used.  [group_of] maps a transaction node to its
    group id; [eligible] restricts which transactions participate at all
    (e.g. the current star period). *)

val cleanup :
  rng:Dtm_util.Prng.t ->
  Dtm_core.Instance.t ->
  Composer.t ->
  group_of:(int -> int) ->
  eligible:(int -> bool) ->
  active:int list ->
  int
(** Deterministic-progress rounds: each round force-activates the objects
    of one pending transaction at its own group, so at least one
    transaction executes per round.  Runs until no eligible pending
    transaction remains; returns the number of rounds. *)
