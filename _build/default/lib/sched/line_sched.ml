module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule

let span inst =
  let best = ref 1 in
  for o = 0 to Instance.num_objects inst - 1 do
    let reqs = Instance.requesters inst o in
    if Array.length reqs > 0 then begin
      let lo = ref (Instance.home inst o) and hi = ref (Instance.home inst o) in
      Array.iter
        (fun v ->
          if v < !lo then lo := v;
          if v > !hi then hi := v)
        reqs;
      if !hi - !lo > !best then best := !hi - !lo
    end
  done;
  !best

let schedule ~n inst =
  if Instance.n inst <> n then invalid_arg "Line_sched.schedule: size mismatch";
  let l = span inst in
  let sched = Schedule.create ~n in
  Array.iter
    (fun v ->
      let subgraph = v / l in
      let offset = v mod l in
      (* Phase 1 (even subgraphs): positioning takes l-1 steps, then the
         sweep runs during steps [l, 2l-1].  Phase 2 (odd subgraphs):
         sweep during [3l, 4l-1]. *)
      let time = if subgraph mod 2 = 0 then l + offset else (3 * l) + offset in
      Schedule.set sched ~node:v ~time)
    (Instance.txn_nodes inst);
  sched
