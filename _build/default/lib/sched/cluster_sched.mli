(** The Cluster-graph schedules of Section 6 (Theorem 4, Algorithm 1).

    Approach 1 runs the basic greedy schedule over the whole graph: when
    every object stays inside one cluster the clusters proceed in
    parallel (an O(k) approximation); in general it is an O(k·β)
    approximation.

    Approach 2 is the paper's Algorithm 1: clusters are assigned to
    ψ = ceil(σ / 24 ln m) random phases; each phase runs rounds in which
    every still-needed object activates in a uniformly random phase
    cluster that wants it, transactions whose objects all activated in
    their own cluster become enabled, and enabled transactions execute by
    the greedy schedule.  Whp every transaction runs in its cluster's
    phase, giving an O(40^k ln^k m) approximation — better than
    Approach 1 when β is large.

    Deviations from the listing, for a terminating executable artifact
    (documented in DESIGN.md): a phase ends early once all transactions
    of its clusters have executed (the theoretical round count
    ζ = 2·40^k·ln^(k+1) m is astronomically conservative), and any
    stragglers that beat the high-probability bound are finished in
    deterministic cleanup rounds that force-activate one pending
    transaction's objects per round. *)

type approach =
  | Approach1  (** plain greedy (deterministic) *)
  | Approach2 of { seed : int }  (** Algorithm 1 with this random seed *)
  | Best of { seed : int }  (** run both, keep the shorter schedule *)

val schedule :
  ?approach:approach ->
  Dtm_topology.Cluster.params ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t
(** Default approach: [Best { seed = 0 }]. *)

val sigma : Dtm_topology.Cluster.params -> Dtm_core.Instance.t -> int
(** σ: the largest number of distinct clusters that request one object. *)

val phase_count : Dtm_topology.Cluster.params -> Dtm_core.Instance.t -> int
(** ψ = max 1 (ceil(σ / (24 ln m))) — Algorithm 1 line 2. *)

val round_cap : Dtm_topology.Cluster.params -> Dtm_core.Instance.t -> int
(** The theoretical ζ = 2·40^k·ceil(ln^(k+1) m), clamped to a practical
    ceiling (phases exit early anyway). *)
