(** The Star-graph schedule of Section 7 (Theorem 5).

    The center's transaction executes first.  Each ray is divided into
    η = ceil(log2 β) segments of exponentially growing length; period [i]
    executes all transactions in segment ring V_i.  Within a period the
    segments play the role of Section 6's clusters (communicating through
    the center, bridge length 2^i):

    - if no object is requested by two different segments of the ring
      (σ_i = 1), the segments execute in parallel, each as a sequential
      inner-to-outer chain along its line — O(2^i) time;
    - otherwise either the greedy schedule runs over the whole ring
      (Approach 1 analog, factor O(k·2^i)) or Algorithm 1's randomized
      phases run with segments as groups (Approach 2 analog, factor
      O(c^k ln^k m) whp). *)

type variant =
  | Greedy_periods  (** Approach-1 analog in every contended period *)
  | Randomized_periods of { seed : int }  (** Approach-2 analog *)
  | Best_periods of { seed : int }  (** run both, keep the shorter *)

val schedule :
  ?variant:variant ->
  Dtm_topology.Star.params ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t
(** Default variant: [Best_periods { seed = 0 }]. *)

val sigma_of_period :
  Dtm_topology.Star.params -> Dtm_core.Instance.t -> int -> int
(** σ_i: the largest number of distinct ray segments of period [i]
    (1-based) requesting one object. *)
