lib/expt/runner.ml: Array Dtm_core Dtm_util List Printf
