lib/expt/figures.mli:
