lib/expt/figures.ml: Buffer Dtm_graph Dtm_sched Dtm_topology Hashtbl List Printf String
