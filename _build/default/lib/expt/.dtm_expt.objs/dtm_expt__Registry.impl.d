lib/expt/registry.ml: Dtm_util Experiments Figures List Printf String
