lib/expt/registry.mli:
