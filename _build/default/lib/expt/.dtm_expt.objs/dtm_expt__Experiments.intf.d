lib/expt/experiments.mli: Dtm_util
