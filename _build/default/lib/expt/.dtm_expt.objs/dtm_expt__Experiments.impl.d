lib/expt/experiments.ml: Array Dtm_core Dtm_graph Dtm_online Dtm_sched Dtm_sim Dtm_topology Dtm_util Dtm_workload List Printf Runner Sys
