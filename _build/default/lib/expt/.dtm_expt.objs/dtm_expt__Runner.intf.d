lib/expt/runner.mli: Dtm_core Dtm_graph Dtm_util
