type measurement = {
  makespan : int;
  lower : int;
  ratio : float;
  feasible : bool;
}

let measure metric inst sched =
  let makespan = Dtm_core.Schedule.makespan sched in
  let lower = Dtm_core.Lower_bound.certified metric inst in
  {
    makespan;
    lower;
    ratio = Dtm_core.Lower_bound.ratio ~makespan ~lower;
    feasible = Dtm_core.Validator.is_feasible metric inst sched;
  }

let mean_ratio ~seeds ~gen ~metric ~sched =
  let ratios, ok =
    List.fold_left
      (fun (acc, ok) seed ->
        let rng = Dtm_util.Prng.create ~seed in
        let inst = gen rng in
        let m = measure metric inst (sched inst) in
        (m.ratio :: acc, ok && m.feasible))
      ([], true) seeds
  in
  let arr = Array.of_list ratios in
  let _, worst = Dtm_util.Stats.min_max arr in
  (Dtm_util.Stats.mean arr, worst, ok)

let fmt_ratio r = Printf.sprintf "%.2f" r
