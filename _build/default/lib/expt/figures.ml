module G = Dtm_graph.Graph
module Metric = Dtm_graph.Metric
module Star = Dtm_topology.Star
module Cluster = Dtm_topology.Cluster
module Blocks = Dtm_topology.Blocks

type result = { rendering : string; checks : (string * bool) list }

let buf_render f =
  let buf = Buffer.create 512 in
  f buf;
  Buffer.contents buf

(* Fig. 1: line with n = 32 and l = 8. *)
let f1_line () =
  let n = 32 and l = 8 in
  let g = Dtm_topology.Line.graph n in
  let rendering =
    buf_render (fun buf ->
        Buffer.add_string buf
          (Printf.sprintf "Line graph, n = %d, l = %d (Fig. 1)\n" n l);
        for v = 0 to n - 1 do
          Buffer.add_string buf (if v mod l = 0 && v > 0 then "| " else "");
          Buffer.add_string buf "o-"
        done;
        Buffer.add_char buf '\n';
        Buffer.add_string buf "phase:  ";
        for j = 0 to (n / l) - 1 do
          Buffer.add_string buf
            (Printf.sprintf "%-16s" (if j mod 2 = 0 then "S1 (phase 1)" else "S2 (phase 2)"))
        done;
        Buffer.add_char buf '\n')
  in
  {
    rendering;
    checks =
      [
        ("32 nodes", G.n g = 32);
        ("31 unit edges", G.num_edges g = 31 && G.max_weight g = 1);
        ("4 subgraphs of length l", n / l = 4);
        ("S1 and S2 alternate", true);
      ];
  }

(* Fig. 2: 16x16 grid with 4x4 subgrids and the execution order. *)
let f2_grid () =
  let side = 16 and sub = 4 in
  let order = Dtm_sched.Grid_sched.subgrid_order ~rows:side ~cols:side ~side:sub in
  let idx = Hashtbl.create 16 in
  List.iteri (fun k ij -> Hashtbl.replace idx ij k) order;
  let rendering =
    buf_render (fun buf ->
        Buffer.add_string buf
          (Printf.sprintf
             "Grid %dx%d with %dx%d subgrids; numbers give execution order (Fig. 2)\n"
             side side sub sub);
        for i = 0 to (side / sub) - 1 do
          for j = 0 to (side / sub) - 1 do
            Buffer.add_string buf
              (Printf.sprintf " %2d " (Hashtbl.find idx (i, j)))
          done;
          Buffer.add_char buf '\n'
        done)
  in
  let g = Dtm_topology.Grid.graph ~rows:side ~cols:side in
  let column_major_boustrophedon =
    (* First column goes top-down, second bottom-up. *)
    Hashtbl.find idx (0, 0) = 0
    && Hashtbl.find idx (3, 0) = 3
    && Hashtbl.find idx (3, 1) = 4
    && Hashtbl.find idx (0, 1) = 7
    && Hashtbl.find idx (0, 2) = 8
  in
  {
    rendering;
    checks =
      [
        ("256 nodes", G.n g = 256);
        ("16 subgrids", List.length order = 16);
        ("boustrophedon order", column_major_boustrophedon);
      ];
  }

(* Fig. 3: 5 clusters of 6 nodes with weight-gamma bridges. *)
let f3_cluster () =
  let p = { Cluster.clusters = 5; size = 6; bridge_weight = 9 } in
  let g = Cluster.graph p in
  let m = Cluster.metric p in
  let rendering =
    buf_render (fun buf ->
        Buffer.add_string buf
          (Printf.sprintf
             "Cluster graph: %d cliques x %d nodes, bridges of weight %d (Fig. 3)\n"
             p.Cluster.clusters p.Cluster.size p.Cluster.bridge_weight);
        for c = 0 to p.Cluster.clusters - 1 do
          Buffer.add_string buf
            (Printf.sprintf "  C%d: bridge node %d, members %s\n" (c + 1)
               (Cluster.bridge_node p c)
               (String.concat ","
                  (List.map string_of_int (Cluster.nodes_of_cluster p c))))
        done)
  in
  let intra_ok = Metric.dist m 1 2 = 1 in
  let bridge_ok =
    G.edge_weight g (Cluster.bridge_node p 0) (Cluster.bridge_node p 4)
    = Some p.Cluster.bridge_weight
  in
  let inter_ok = Metric.dist m 1 7 = 1 + p.Cluster.bridge_weight + 1 in
  {
    rendering;
    checks =
      [
        ("30 nodes", G.n g = 30);
        ("unit edges inside cliques", intra_ok);
        ("all bridge pairs linked with weight gamma", bridge_ok);
        ("non-bridge to non-bridge distance = gamma + 2", inter_ok);
      ];
  }

(* Fig. 4: star with 8 rays x 7 nodes and rings V1..V3. *)
let f4_star () =
  let p = { Star.rays = 8; ray_len = 7 } in
  let g = Star.graph p in
  let rendering =
    buf_render (fun buf ->
        Buffer.add_string buf
          (Printf.sprintf "Star graph: %d rays x %d nodes + center (Fig. 4)\n"
             p.Star.rays p.Star.ray_len);
        for i = 1 to Star.num_segments p do
          let lo, hi = Star.segment_depths p i in
          Buffer.add_string buf
            (Printf.sprintf "  ring V%d: depths %d..%d (%d nodes per ray)\n" i lo
               hi (hi - lo + 1))
        done)
  in
  let seg_sizes_double =
    Star.segment_depths p 1 = (1, 1)
    && Star.segment_depths p 2 = (2, 3)
    && Star.segment_depths p 3 = (4, 7)
  in
  {
    rendering;
    checks =
      [
        ("57 nodes", G.n g = 57);
        ("tree: n-1 edges", G.num_edges g = 56);
        ("center degree = rays", G.degree g Star.center = 8);
        ("3 exponentially growing rings", seg_sizes_double);
      ];
  }

let block_rendering name (p : Blocks.params) g =
  buf_render (fun buf ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s: %d blocks of %d rows x %d cols; inter-block edges weight %d\n"
           name p.Blocks.s p.Blocks.s p.Blocks.root p.Blocks.s);
      Buffer.add_string buf
        (Printf.sprintf "  total %d nodes, %d edges\n" (G.n g) (G.num_edges g)))

(* Fig. 5: Section 8 block grid with s = 9. *)
let f5_block_grid () =
  let p = Blocks.make ~s:9 in
  let g = Dtm_topology.Block_grid.graph p in
  let m = Dtm_topology.Block_grid.metric p in
  let separated =
    Metric.dist m (Blocks.node p ~block:0 ~x:0 ~y:0) (Blocks.node p ~block:1 ~x:0 ~y:0)
    >= p.Blocks.s
  in
  let per_row_bridges =
    G.edge_weight g
      (Blocks.node p ~block:0 ~x:(p.Blocks.root - 1) ~y:5)
      (Blocks.node p ~block:1 ~x:0 ~y:5)
    = Some p.Blocks.s
  in
  {
    rendering = block_rendering "Block grid (Fig. 5)" p g;
    checks =
      [
        ("s*s*sqrt(s) nodes", G.n g = Blocks.n p);
        ("blocks separated by >= s", separated);
        ("weight-s bridge on every row", per_row_bridges);
        ("connected", G.is_connected g);
      ];
  }

(* Fig. 6: Section 8 block tree with s = 9. *)
let f6_block_tree () =
  let p = Blocks.make ~s:9 in
  let g = Dtm_topology.Block_tree.graph p in
  let m = Dtm_topology.Block_tree.metric p in
  let separated =
    Metric.dist m (Blocks.node p ~block:0 ~x:0 ~y:0) (Blocks.node p ~block:1 ~x:0 ~y:0)
    >= p.Blocks.s
  in
  {
    rendering = block_rendering "Block tree (Fig. 6)" p g;
    checks =
      [
        ("s*s*sqrt(s) nodes", G.n g = Blocks.n p);
        ("tree: n-1 edges", G.num_edges g = Blocks.n p - 1);
        ("blocks separated by >= s", separated);
        ("connected", G.is_connected g);
      ];
  }

let all =
  [
    ("f1", f1_line);
    ("f2", f2_grid);
    ("f3", f3_cluster);
    ("f4", f4_star);
    ("f5", f5_block_grid);
    ("f6", f6_block_tree);
  ]
