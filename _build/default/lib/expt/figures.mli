(** Reproductions of the paper's six structural figures as ASCII
    renderings plus machine-checked structural assertions. *)

type result = { rendering : string; checks : (string * bool) list }

val f1_line : unit -> result
(** Fig. 1: a 32-node line with l = 8, showing the S1/S2 subgraph
    decomposition the Theorem 2 schedule uses. *)

val f2_grid : unit -> result
(** Fig. 2: a 16x16 grid cut into 4x4 subgrids with the boustrophedon
    execution order. *)

val f3_cluster : unit -> result
(** Fig. 3: 5 clusters of 6 nodes, unit intra-cluster edges, weight-gamma
    bridges. *)

val f4_star : unit -> result
(** Fig. 4: a star with 8 rays of 7 nodes and its segment rings V1..V3. *)

val f5_block_grid : unit -> result
(** Fig. 5: the Section 8 grid of s blocks with weight-s links. *)

val f6_block_tree : unit -> result
(** Fig. 6: the Section 8 comb-tree variant. *)

val all : (string * (unit -> result)) list
(** [(id, figure)] pairs, f1..f6. *)
