(** Shared measurement helpers for the experiment suite. *)

type measurement = {
  makespan : int;
  lower : int;
  ratio : float;
  feasible : bool;
}

val measure :
  Dtm_graph.Metric.t ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t ->
  measurement
(** Makespan, certified lower bound, their ratio, and a validator
    verdict. *)

val mean_ratio :
  seeds:int list ->
  gen:(Dtm_util.Prng.t -> Dtm_core.Instance.t) ->
  metric:Dtm_graph.Metric.t ->
  sched:(Dtm_core.Instance.t -> Dtm_core.Schedule.t) ->
  float * float * bool
(** [(mean, max, all_feasible)] of the ratio over one instance per
    seed. *)

val fmt_ratio : float -> string
