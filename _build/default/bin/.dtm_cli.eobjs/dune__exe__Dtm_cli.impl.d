bin/dtm_cli.ml: Arg Array Cmd Cmdliner Dtm_core Dtm_graph Dtm_online Dtm_sched Dtm_sim Dtm_topology Dtm_util Dtm_workload Filename Format List Printf Result String Sys Term
