bin/dtm_cli.mli:
