(* Experiment driver: regenerates every table and figure of the
   reproduction (see DESIGN.md's experiment index and EXPERIMENTS.md for
   the recorded outputs).

   Usage:
     dune exec bin/experiments.exe               # run everything
     dune exec bin/experiments.exe -- e3 f2      # run selected entries
     dune exec bin/experiments.exe -- --csv e4   # CSV for one table
     dune exec bin/experiments.exe -- --list     # list entries *)

let list_entries () =
  print_endline "available entries:";
  List.iter
    (fun e ->
      Printf.printf "  %-4s %s\n" e.Dtm_expt.Registry.id e.Dtm_expt.Registry.title)
    Dtm_expt.Registry.all

let run_entry e = print_string (Dtm_expt.Registry.run_to_string e)

let run_csv id =
  match Dtm_expt.Registry.find (String.lowercase_ascii id) with
  | Some { Dtm_expt.Registry.csv = Some f; _ } ->
    print_string (f ~seeds:Dtm_expt.Registry.default_seeds)
  | Some _ ->
    Printf.eprintf "entry %S has no tabular output\n" id;
    exit 1
  | None ->
    Printf.eprintf "unknown entry %S (try --list)\n" id;
    exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--list" ] -> list_entries ()
  | "--csv" :: ids when ids <> [] -> List.iter run_csv ids
  | [] -> List.iter run_entry Dtm_expt.Registry.all
  | ids ->
    List.iter
      (fun id ->
        match Dtm_expt.Registry.find (String.lowercase_ascii id) with
        | Some e -> run_entry e
        | None ->
          Printf.eprintf "unknown entry %S (try --list)\n" id;
          exit 1)
      ids
