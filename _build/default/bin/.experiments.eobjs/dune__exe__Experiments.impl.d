bin/experiments.ml: Array Dtm_expt List Printf String Sys
