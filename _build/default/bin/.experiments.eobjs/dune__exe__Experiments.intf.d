bin/experiments.mli:
