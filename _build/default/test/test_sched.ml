(* Tests for the per-topology schedulers of Sections 3-7: every schedule
   must pass the validator on its topology's metric, and the makespans
   must respect the theorems' structural bounds. *)

open Dtm_sched
module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule
module Validator = Dtm_core.Validator
module Lower_bound = Dtm_core.Lower_bound
module Topology = Dtm_topology.Topology
module Cluster = Dtm_topology.Cluster
module Star = Dtm_topology.Star
module Prng = Dtm_util.Prng

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let check_feasible name metric inst sched =
  match Validator.check metric inst sched with
  | Ok () -> ()
  | Error v -> Alcotest.failf "%s: infeasible: %s" name (Validator.explain v)

let uniform rng ~n ~w ~k = Dtm_workload.Uniform.instance ~rng ~n ~num_objects:w ~k ()

(* ------------------------------------------------------------------ *)
(* Composer                                                           *)
(* ------------------------------------------------------------------ *)

let line9 = Dtm_topology.Line.metric 9

let composer_inst =
  Instance.create ~n:9 ~num_objects:3
    ~txns:[ (0, [ 0 ]); (3, [ 0; 1 ]); (6, [ 1; 2 ]); (8, [ 2 ]) ]
    ~home:[| 0; 3; 8 |]

let test_composer_single_group () =
  let c = Composer.create line9 composer_inst in
  Composer.run_greedy_group c [ 0; 3; 6; 8 ];
  Alcotest.(check (list int)) "all scheduled" [] (Composer.unscheduled c);
  check_feasible "composer single group" line9 composer_inst (Composer.schedule c)

let test_composer_sequential_groups () =
  let c = Composer.create line9 composer_inst in
  List.iter (fun v -> Composer.run_greedy_group c [ v ]) [ 8; 6; 3; 0 ];
  check_feasible "composer sequential" line9 composer_inst (Composer.schedule c);
  Alcotest.(check bool) "cursor advanced" true (Composer.cursor c >= 4)

let test_composer_skips_scheduled () =
  let c = Composer.create line9 composer_inst in
  Composer.run_greedy_group c [ 0 ];
  let t0 = Schedule.time (Composer.schedule c) 0 in
  Composer.run_greedy_group c [ 0; 3 ];
  Alcotest.(check bool) "time unchanged" true (Schedule.time (Composer.schedule c) 0 = t0)

let test_composer_chains () =
  (* Two chains with disjoint objects: {0,3} use objects 0/1, {6,8} use 2. *)
  let inst =
    Instance.create ~n:9 ~num_objects:3
      ~txns:[ (0, [ 0 ]); (3, [ 0 ]); (6, [ 2 ]); (8, [ 2 ]) ]
      ~home:[| 0; 3; 8 |]
  in
  let c = Composer.create line9 inst in
  Composer.run_parallel_chains c [ [ 0; 3 ]; [ 8; 6 ] ];
  Alcotest.(check (list int)) "all done" [] (Composer.unscheduled c);
  check_feasible "composer chains" line9 inst (Composer.schedule c);
  (* Chains are concurrent: makespan is bounded by one chain's span. *)
  Alcotest.(check bool) "parallel" true (Schedule.makespan (Composer.schedule c) <= 4)

let test_composer_chains_reject_duplicate () =
  let inst =
    Instance.create ~n:9 ~num_objects:1 ~txns:[ (0, [ 0 ]); (3, [ 0 ]) ]
      ~home:[| 0 |]
  in
  let c = Composer.create line9 inst in
  Alcotest.check_raises "duplicate node"
    (Invalid_argument "Composer.run_parallel_chains: duplicate node")
    (fun () -> Composer.run_parallel_chains c [ [ 0; 3; 0 ] ])

let test_composer_chains_reject_shared () =
  let c = Composer.create line9 composer_inst in
  Alcotest.check_raises "shared object"
    (Invalid_argument "Composer.run_parallel_chains: object shared across chains")
    (fun () -> Composer.run_parallel_chains c [ [ 0 ]; [ 3 ] ])

let test_composer_gap_accounts_travel () =
  (* Object 2 homes at node 8; schedule its only user (node 6) first:
     time must be >= dist(8,6) = 2. *)
  let c = Composer.create line9 composer_inst in
  Composer.run_greedy_group c [ 6 ];
  let t = Schedule.time_exn (Composer.schedule c) 6 in
  Alcotest.(check bool) "travel respected" true (t >= 3)
(* node 6 needs object 1 from node 3 (dist 3) and object 2 from 8 (dist 2). *)

(* ------------------------------------------------------------------ *)
(* Clique (Theorem 1)                                                 *)
(* ------------------------------------------------------------------ *)

let test_clique_feasible_and_bounded () =
  let rng = Prng.create ~seed:1 in
  List.iter
    (fun (n, w, k) ->
      let inst = uniform rng ~n ~w ~k in
      let sched = Clique_sched.schedule ~n inst in
      check_feasible "clique" (Dtm_topology.Clique.metric n) inst sched;
      (* Theorem 1: greedy needs at most k*l + 1 colors; homes at
         requesters add at most 1 step of positioning slack. *)
      Alcotest.(check bool) "within k*l+1 bound" true
        (Schedule.makespan sched <= Clique_sched.approximation_bound inst + 1))
    [ (8, 4, 1); (16, 8, 2); (32, 8, 3); (64, 16, 4) ]

let test_clique_hot_object () =
  let rng = Prng.create ~seed:2 in
  let n = 24 in
  let inst = Dtm_workload.Arbitrary.hot_object ~rng ~n ~num_objects:8 ~k:2 in
  let sched = Clique_sched.schedule ~n inst in
  check_feasible "clique hot" (Dtm_topology.Clique.metric n) inst sched;
  (* All n transactions share object 0, so the makespan is at least n. *)
  Alcotest.(check bool) "serialized on hot object" true (Schedule.makespan sched >= n)

let prop_clique_random =
  qtest "clique schedules random workloads feasibly"
    QCheck.(pair (int_range 2 40) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Prng.create ~seed in
      let w = 1 + Prng.int rng 16 in
      let k = 1 + Prng.int rng (min 5 w) in
      let inst = uniform rng ~n ~w ~k in
      let sched = Clique_sched.schedule ~n inst in
      Validator.is_feasible (Dtm_topology.Clique.metric n) inst sched)

(* ------------------------------------------------------------------ *)
(* Diameter (Section 3.1): hypercube, butterfly, torus                *)
(* ------------------------------------------------------------------ *)

let test_diameter_topologies () =
  let rng = Prng.create ~seed:3 in
  List.iter
    (fun topo ->
      let n = Topology.n topo in
      let metric = Topology.metric topo in
      let inst = uniform rng ~n ~w:(max 2 (n / 3)) ~k:2 in
      let sched = Diameter_sched.schedule metric inst in
      check_feasible (Topology.to_string topo) metric inst sched;
      Alcotest.(check bool) "within kl d bound" true
        (Schedule.makespan sched
        <= Diameter_sched.approximation_bound metric inst
           + Dtm_graph.Metric.diameter metric))
    [
      Topology.Hypercube { dim = 4 };
      Topology.Butterfly { dim = 3 };
      Topology.Torus { rows = 5; cols = 5 };
    ]

(* ------------------------------------------------------------------ *)
(* Line (Theorem 2)                                                   *)
(* ------------------------------------------------------------------ *)

let test_line_feasible () =
  let rng = Prng.create ~seed:4 in
  List.iter
    (fun (n, w, k) ->
      let inst = uniform rng ~n ~w ~k in
      let sched = Line_sched.schedule ~n inst in
      check_feasible "line uniform" (Dtm_topology.Line.metric n) inst sched)
    [ (8, 4, 2); (32, 8, 2); (64, 16, 3); (128, 32, 4) ]

let test_line_makespan_bound () =
  let rng = Prng.create ~seed:5 in
  for _ = 1 to 20 do
    let n = 16 + Prng.int rng 100 in
    let w = 4 + Prng.int rng 20 in
    let inst = uniform rng ~n ~w ~k:(1 + Prng.int rng 3) in
    let sched = Line_sched.schedule ~n inst in
    let l = Line_sched.span inst in
    (* Theorem 2: total duration at most 4l (our step-1 convention). *)
    Alcotest.(check bool) "<= 4l" true (Schedule.makespan sched <= 4 * l)
  done

let test_line_windowed_constant_ratio () =
  (* Windowed workloads have bounded span, so the ratio to the certified
     lower bound stays constant as n grows. *)
  let rng = Prng.create ~seed:6 in
  let ratios =
    List.map
      (fun n ->
        let inst =
          Dtm_workload.Arbitrary.windowed ~rng ~n ~num_objects:n ~k:2 ~span:8
        in
        let metric = Dtm_topology.Line.metric n in
        let sched = Line_sched.schedule ~n inst in
        check_feasible "line windowed" metric inst sched;
        Lower_bound.ratio
          ~makespan:(Schedule.makespan sched)
          ~lower:(Lower_bound.certified metric inst))
      [ 64; 128; 256; 512 ]
  in
  List.iter
    (fun r -> Alcotest.(check bool) "bounded ratio" true (r <= 16.0))
    ratios

let prop_line_random =
  qtest "line schedules random workloads feasibly"
    QCheck.(pair (int_range 2 120) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Prng.create ~seed in
      let w = 1 + Prng.int rng (max 1 (n / 2)) in
      let k = 1 + Prng.int rng (min 4 w) in
      let inst = uniform rng ~n ~w ~k in
      let sched = Line_sched.schedule ~n inst in
      Validator.is_feasible (Dtm_topology.Line.metric n) inst sched)

let test_line_span () =
  let inst =
    Instance.create ~n:10 ~num_objects:2
      ~txns:[ (1, [ 0 ]); (7, [ 0 ]); (4, [ 1 ]) ]
      ~home:[| 1; 4 |]
  in
  Alcotest.(check int) "span" 6 (Line_sched.span inst)

(* ------------------------------------------------------------------ *)
(* Ring (Theorem 2 extension)                                         *)
(* ------------------------------------------------------------------ *)

let test_ring_feasible () =
  let rng = Prng.create ~seed:40 in
  List.iter
    (fun (n, w, k) ->
      let inst = uniform rng ~n ~w ~k in
      let sched = Ring_sched.schedule ~n inst in
      check_feasible "ring uniform" (Dtm_topology.Ring.metric n) inst sched)
    [ (4, 2, 1); (16, 6, 2); (64, 16, 3); (128, 32, 2) ]

let test_ring_wraparound_objects () =
  (* An object whose requesters straddle the 0 cut. *)
  let n = 24 in
  let inst =
    Instance.create ~n ~num_objects:2
      ~txns:[ (22, [ 0 ]); (1, [ 0 ]); (10, [ 1 ]); (12, [ 1 ]) ]
      ~home:[| 22; 10 |]
  in
  let sched = Ring_sched.schedule ~n inst in
  check_feasible "ring wrap" (Dtm_topology.Ring.metric n) inst sched;
  Alcotest.(check int) "wrap span counted" 3
    (Dtm_sched.Ring_sched.span ~n inst)

let test_ring_makespan_bound () =
  let rng = Prng.create ~seed:41 in
  for _ = 1 to 25 do
    let n = 12 + Prng.int rng 150 in
    let w = 4 + Prng.int rng 16 in
    let inst = uniform rng ~n ~w ~k:(1 + Prng.int rng 3) in
    let sched = Ring_sched.schedule ~n inst in
    let l = Ring_sched.span ~n inst in
    (* The construction guarantees < 9l when the cut applies and <= 2n
       (<= 4l) in the degenerate single-sweep case. *)
    let bound = if n / l <= 1 then 2 * n else 9 * l in
    Alcotest.(check bool) "O(l) bound" true (Schedule.makespan sched <= bound)
  done

let prop_ring_random =
  qtest "ring schedules random workloads feasibly"
    QCheck.(pair (int_range 2 100) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Prng.create ~seed in
      let w = 1 + Prng.int rng (max 1 (n / 2)) in
      let k = 1 + Prng.int rng (min 4 w) in
      let inst = uniform rng ~n ~w ~k in
      Validator.is_feasible (Dtm_topology.Ring.metric n) inst
        (Ring_sched.schedule ~n inst))

(* ------------------------------------------------------------------ *)
(* Grid (Theorem 3)                                                   *)
(* ------------------------------------------------------------------ *)

let test_grid_feasible () =
  let rng = Prng.create ~seed:7 in
  List.iter
    (fun (rows, cols, w, k) ->
      let inst = uniform rng ~n:(rows * cols) ~w ~k in
      let sched = Grid_sched.schedule ~rows ~cols inst in
      check_feasible "grid" (Dtm_topology.Grid.metric ~rows ~cols) inst sched)
    [ (4, 4, 8, 2); (8, 8, 16, 2); (10, 10, 30, 3); (6, 9, 12, 2) ]

let test_grid_subgrid_order () =
  (* 16x16 grid with side-4 subgrids: Figure 2's boustrophedon order. *)
  let order = Grid_sched.subgrid_order ~rows:16 ~cols:16 ~side:4 in
  Alcotest.(check int) "16 subgrids" 16 (List.length order);
  Alcotest.(check (list (pair int int))) "first column top-down then up"
    [ (0, 0); (1, 0); (2, 0); (3, 0); (3, 1); (2, 1); (1, 1); (0, 1) ]
    (List.filteri (fun i _ -> i < 8) order)

let test_grid_subgrid_override () =
  let rng = Prng.create ~seed:8 in
  let rows = 8 and cols = 8 in
  let inst = uniform rng ~n:(rows * cols) ~w:16 ~k:2 in
  let metric = Dtm_topology.Grid.metric ~rows ~cols in
  List.iter
    (fun side ->
      let sched = Grid_sched.schedule ~subgrid_side:side ~rows ~cols inst in
      check_feasible (Printf.sprintf "grid side=%d" side) metric inst sched)
    [ 1; 2; 3; 4; 8; 100 ]

let prop_grid_random =
  qtest ~count:40 "grid schedules random workloads feasibly"
    QCheck.(pair (pair (int_range 2 9) (int_range 2 9)) (int_range 0 10_000))
    (fun ((rows, cols), seed) ->
      let rng = Prng.create ~seed in
      let w = 1 + Prng.int rng 20 in
      let k = 1 + Prng.int rng (min 4 w) in
      let inst = uniform rng ~n:(rows * cols) ~w ~k in
      let sched = Grid_sched.schedule ~rows ~cols inst in
      Validator.is_feasible (Dtm_topology.Grid.metric ~rows ~cols) inst sched)

let test_grid_default_side_formula () =
  let rng = Prng.create ~seed:9 in
  let inst = uniform rng ~n:64 ~w:16 ~k:2 in
  let side = Grid_sched.default_subgrid_side ~rows:8 ~cols:8 inst in
  (* xi = 27*16*ln 16 / 2 = 598.8..., sqrt = 24.47 -> 25. *)
  Alcotest.(check int) "formula" 25 side

(* ------------------------------------------------------------------ *)
(* Cluster (Theorem 4)                                                *)
(* ------------------------------------------------------------------ *)

let cluster_p = { Cluster.clusters = 4; size = 5; bridge_weight = 6 }

let test_cluster_approaches_feasible () =
  let rng = Prng.create ~seed:10 in
  let n = cluster_p.Cluster.clusters * cluster_p.Cluster.size in
  let metric = Cluster.metric cluster_p in
  let inst = uniform rng ~n ~w:10 ~k:2 in
  List.iter
    (fun (name, approach) ->
      let sched = Cluster_sched.schedule ~approach cluster_p inst in
      check_feasible name metric inst sched)
    [
      ("approach 1", Cluster_sched.Approach1);
      ("approach 2", Cluster_sched.Approach2 { seed = 11 });
      ("best", Cluster_sched.Best { seed = 12 });
    ]

let test_cluster_local_sigma1 () =
  let rng = Prng.create ~seed:13 in
  let inst =
    Dtm_workload.Arbitrary.cluster_local ~rng cluster_p ~num_objects_per_cluster:4
      ~k:2
  in
  Alcotest.(check int) "sigma 1" 1 (Cluster_sched.sigma cluster_p inst);
  let metric = Cluster.metric cluster_p in
  let sched = Cluster_sched.schedule ~approach:Cluster_sched.Approach1 cluster_p inst in
  check_feasible "cluster local" metric inst sched;
  (* sigma = 1: clusters proceed in parallel, so no bridge crossing is
     needed and the makespan stays below one cluster's serial length. *)
  Alcotest.(check bool) "parallel clusters" true
    (Schedule.makespan sched <= (2 * cluster_p.Cluster.size * 2) + 2)

let test_cluster_spread_sigma () =
  let rng = Prng.create ~seed:14 in
  let inst =
    Dtm_workload.Arbitrary.cluster_spread ~rng cluster_p ~num_objects:8 ~k:2
      ~sigma:3
  in
  Alcotest.(check bool) "sigma >= 2" true (Cluster_sched.sigma cluster_p inst >= 2);
  let metric = Cluster.metric cluster_p in
  List.iter
    (fun approach ->
      check_feasible "cluster spread" metric inst
        (Cluster_sched.schedule ~approach cluster_p inst))
    [ Cluster_sched.Approach1; Cluster_sched.Approach2 { seed = 15 } ]

let prop_cluster_random =
  qtest ~count:30 "cluster schedules random workloads feasibly"
    QCheck.(pair (pair (int_range 2 5) (int_range 2 6)) (int_range 0 10_000))
    (fun ((clusters, size), seed) ->
      let rng = Prng.create ~seed in
      let p = { Cluster.clusters; size; bridge_weight = size + Prng.int rng 5 } in
      let n = clusters * size in
      let w = 1 + Prng.int rng 12 in
      let k = 1 + Prng.int rng (min 3 w) in
      let inst = uniform rng ~n ~w ~k in
      let metric = Cluster.metric p in
      Validator.is_feasible metric inst
        (Cluster_sched.schedule ~approach:Cluster_sched.Approach1 p inst)
      && Validator.is_feasible metric inst
           (Cluster_sched.schedule ~approach:(Cluster_sched.Approach2 { seed }) p inst))

let test_cluster_phase_count () =
  let rng = Prng.create ~seed:16 in
  let inst =
    Dtm_workload.Arbitrary.cluster_spread ~rng cluster_p ~num_objects:8 ~k:2 ~sigma:4
  in
  (* sigma <= 4 and 24 ln m > 4, so one phase. *)
  Alcotest.(check int) "single phase" 1 (Cluster_sched.phase_count cluster_p inst);
  Alcotest.(check bool) "round cap positive" true (Cluster_sched.round_cap cluster_p inst >= 1)

(* ------------------------------------------------------------------ *)
(* Star (Theorem 5)                                                   *)
(* ------------------------------------------------------------------ *)

let star_p = { Star.rays = 4; ray_len = 7 }

let test_star_variants_feasible () =
  let rng = Prng.create ~seed:17 in
  let n = 1 + (star_p.Star.rays * star_p.Star.ray_len) in
  let metric = Star.metric star_p in
  let inst = uniform rng ~n ~w:8 ~k:2 in
  List.iter
    (fun (name, variant) ->
      let sched = Star_sched.schedule ~variant star_p inst in
      check_feasible name metric inst sched)
    [
      ("greedy periods", Star_sched.Greedy_periods);
      ("randomized periods", Star_sched.Randomized_periods { seed = 18 });
      ("best", Star_sched.Best_periods { seed = 19 });
    ]

let test_star_sigma_of_period () =
  (* Build an instance where object 0 is used on two rays in period 3
     (depths 4..7) and object 1 on one ray only. *)
  let p = star_p in
  let v1 = Star.node p ~ray:0 ~depth:5 in
  let v2 = Star.node p ~ray:2 ~depth:6 in
  let v3 = Star.node p ~ray:1 ~depth:2 in
  let inst =
    Instance.create
      ~n:(1 + (p.Star.rays * p.Star.ray_len))
      ~num_objects:2
      ~txns:[ (v1, [ 0 ]); (v2, [ 0 ]); (v3, [ 1 ]) ]
      ~home:[| v1; v3 |]
  in
  Alcotest.(check int) "period 3 sigma" 2 (Star_sched.sigma_of_period p inst 3);
  Alcotest.(check int) "period 2 sigma" 1 (Star_sched.sigma_of_period p inst 2);
  let sched = Star_sched.schedule p inst in
  check_feasible "star mixed" (Star.metric p) inst sched

let prop_star_random =
  qtest ~count:30 "star schedules random workloads feasibly"
    QCheck.(pair (pair (int_range 1 5) (int_range 1 9)) (int_range 0 10_000))
    (fun ((rays, ray_len), seed) ->
      let rng = Prng.create ~seed in
      let p = { Star.rays; ray_len } in
      let n = 1 + (rays * ray_len) in
      let w = 1 + Prng.int rng 10 in
      let k = 1 + Prng.int rng (min 3 w) in
      let inst = uniform rng ~n ~w ~k in
      let metric = Star.metric p in
      Validator.is_feasible metric inst
        (Star_sched.schedule ~variant:Star_sched.Greedy_periods p inst)
      && Validator.is_feasible metric inst
           (Star_sched.schedule ~variant:(Star_sched.Randomized_periods { seed }) p inst))

(* ------------------------------------------------------------------ *)
(* Baselines and Auto                                                 *)
(* ------------------------------------------------------------------ *)

let test_baselines_feasible () =
  let rng = Prng.create ~seed:20 in
  let n = 16 in
  let metric = Dtm_topology.Clique.metric n in
  let inst = uniform rng ~n ~w:8 ~k:2 in
  check_feasible "sequential" metric inst (Baseline.sequential metric inst);
  check_feasible "random order" metric inst (Baseline.random_order ~seed:21 metric inst);
  check_feasible "nearest first" metric inst (Baseline.nearest_first metric inst)

let test_nearest_first_reduces_travel () =
  (* On a line with one widely shared object, the nearest-neighbour tour
     travels at most as far as a random serial order. *)
  let n = 32 in
  let metric = Dtm_topology.Line.metric n in
  let rng = Prng.create ~seed:25 in
  let inst = Dtm_workload.Uniform.instance ~rng ~n ~num_objects:2 ~k:1 () in
  let comm s = Dtm_core.Cost.communication metric inst s in
  let nn = comm (Baseline.nearest_first metric inst) in
  let rand = comm (Baseline.random_order ~seed:26 metric inst) in
  check_feasible "nn feasible" metric inst (Baseline.nearest_first metric inst);
  Alcotest.(check bool) "nn travel <= random travel" true (nn <= rand)

let test_baseline_sequential_is_serial () =
  let rng = Prng.create ~seed:22 in
  let n = 12 in
  let metric = Dtm_topology.Clique.metric n in
  let inst = uniform rng ~n ~w:6 ~k:2 in
  (* Sequential runs one transaction at a time: makespan >= #txns. *)
  Alcotest.(check bool) "serial" true
    (Schedule.makespan (Baseline.sequential metric inst) >= Instance.num_txns inst)

let test_auto_all_topologies () =
  let rng = Prng.create ~seed:23 in
  List.iter
    (fun topo ->
      let n = Topology.n topo in
      let w = max 1 (n / 3) in
      let k = min 2 w in
      let inst = uniform rng ~n ~w ~k in
      let sched = Auto.schedule topo inst in
      check_feasible (Topology.to_string topo) (Topology.metric topo) inst sched;
      Alcotest.(check bool) "has a name" true (String.length (Auto.name topo) > 0))
    Topology.all_examples

let test_auto_beats_sequential_on_parallel_workload () =
  (* A partitioned clique workload is embarrassingly parallel: the
     Theorem 1 greedy must beat serial execution comfortably. *)
  let rng = Prng.create ~seed:24 in
  let n = 64 in
  let inst = Dtm_workload.Arbitrary.partitioned ~rng ~n ~num_objects:64 ~k:2 ~parts:16 in
  let topo = Topology.Clique n in
  let fast = Schedule.makespan (Auto.schedule topo inst) in
  let slow =
    Schedule.makespan (Baseline.sequential (Topology.metric topo) inst)
  in
  Alcotest.(check bool) "greedy wins" true (fast * 4 <= slow)

(* ------------------------------------------------------------------ *)
(* Structural checks                                                  *)
(* ------------------------------------------------------------------ *)

let test_star_center_executes_first () =
  (* Section 7: the center's transaction is scheduled before any period. *)
  let p = { Star.rays = 4; ray_len = 6 } in
  let n = 1 + (p.Star.rays * p.Star.ray_len) in
  let rng = Prng.create ~seed:60 in
  let inst = uniform rng ~n ~w:6 ~k:2 in
  let sched = Star_sched.schedule ~variant:Star_sched.Greedy_periods p inst in
  let t_center = Schedule.time_exn sched Dtm_topology.Star.center in
  List.iter
    (fun v ->
      if v <> Dtm_topology.Star.center then
        Alcotest.(check bool) "center first" true
          (Schedule.time_exn sched v >= t_center))
    (Schedule.scheduled_nodes sched)

let test_grid_single_subgrid_equals_greedy () =
  (* When the subgrid covers the whole grid, Theorem 3's algorithm is the
     plain Section 2.3 greedy. *)
  let rows = 6 and cols = 6 in
  let rng = Prng.create ~seed:61 in
  let inst = uniform rng ~n:(rows * cols) ~w:8 ~k:2 in
  let metric = Dtm_topology.Grid.metric ~rows ~cols in
  let a = Grid_sched.schedule ~subgrid_side:100 ~rows ~cols inst in
  let b = Dtm_core.Greedy.schedule metric inst in
  List.iter
    (fun v ->
      Alcotest.(check (option int))
        (Printf.sprintf "time at %d" v)
        (Schedule.time b v) (Schedule.time a v))
    (Schedule.scheduled_nodes b)

let test_cluster_best_is_min () =
  let rng = Prng.create ~seed:62 in
  let inst =
    Dtm_workload.Arbitrary.cluster_spread ~rng cluster_p ~num_objects:8 ~k:2
      ~sigma:3
  in
  let mk approach =
    Schedule.makespan (Cluster_sched.schedule ~approach cluster_p inst)
  in
  let best = mk (Cluster_sched.Best { seed = 63 }) in
  Alcotest.(check int) "best = min of both" (min (mk Cluster_sched.Approach1) (mk (Cluster_sched.Approach2 { seed = 63 }))) best

(* ------------------------------------------------------------------ *)
(* Batched (repeated batches)                                         *)
(* ------------------------------------------------------------------ *)

let test_batched_feasible_per_batch () =
  let n = 16 in
  let metric = Dtm_topology.Clique.metric n in
  let rng = Prng.create ~seed:50 in
  let batches = List.init 4 (fun _ -> uniform rng ~n ~w:6 ~k:2) in
  let homes = Array.init 6 (fun o -> Instance.home (List.hd batches) o) in
  let steps = Batched.schedule metric ~homes batches in
  Alcotest.(check int) "one step per batch" 4 (List.length steps);
  List.iter2
    (fun batch step ->
      (* Each batch must be feasible for the instance rehomed at its
         entry positions. *)
      let inst =
        Instance.create ~n ~num_objects:6
          ~txns:
            (Array.to_list (Instance.txn_nodes batch)
            |> List.map (fun v ->
                   match Instance.txn_at batch v with
                   | Some objs -> (v, Array.to_list objs)
                   | None -> assert false))
          ~home:step.Batched.entry_positions
      in
      match Validator.check metric inst step.Batched.schedule with
      | Ok () -> ()
      | Error v -> Alcotest.failf "batch infeasible: %s" (Validator.explain v))
    batches steps;
  Alcotest.(check bool) "total makespan positive" true
    (Batched.total_makespan steps > 0)

let test_batched_positions_chain () =
  let n = 8 in
  let metric = Dtm_topology.Line.metric n in
  let rng = Prng.create ~seed:51 in
  let batches = List.init 3 (fun _ -> uniform rng ~n ~w:3 ~k:1) in
  let homes = Array.init 3 (fun o -> Instance.home (List.hd batches) o) in
  let steps = Batched.schedule metric ~homes batches in
  let rec chained = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check (array int)) "exit feeds entry" a.Batched.exit_positions
        b.Batched.entry_positions;
      chained rest
    | _ -> ()
  in
  chained steps;
  (match steps with
  | first :: _ ->
    Alcotest.(check (array int)) "first entry = homes" homes
      first.Batched.entry_positions
  | [] -> Alcotest.fail "no steps")

let test_batched_rejects_mismatch () =
  let metric = Dtm_topology.Clique.metric 4 in
  let a = uniform (Prng.create ~seed:52) ~n:4 ~w:2 ~k:1 in
  let b = uniform (Prng.create ~seed:53) ~n:5 ~w:2 ~k:1 in
  Alcotest.check_raises "shape"
    (Invalid_argument "Batched.schedule: batch shape mismatch") (fun () ->
      ignore (Batched.schedule metric ~homes:[| 0; 1 |] [ a; b ]))

(* ------------------------------------------------------------------ *)
(* Theorem-bound checks (Bounds)                                      *)
(* ------------------------------------------------------------------ *)

let prop_thm1_bound =
  qtest "Theorem 1 bound holds: clique makespan <= k*l + 1"
    QCheck.(pair (int_range 2 60) (int_range 0 100_000))
    (fun (n, seed) ->
      let rng = Prng.create ~seed in
      let w = 1 + Prng.int rng 12 in
      let k = 1 + Prng.int rng (min 4 w) in
      let inst = uniform rng ~n ~w ~k in
      Schedule.makespan (Clique_sched.schedule ~n inst) <= Bounds.clique inst)

let prop_sec31_bound =
  qtest ~count:40 "Section 3.1 bound holds on hypercube/torus/butterfly"
    QCheck.(pair (int_range 0 2) (int_range 0 100_000))
    (fun (ti, seed) ->
      let topo =
        match ti with
        | 0 -> Dtm_topology.Topology.Hypercube { dim = 4 }
        | 1 -> Dtm_topology.Topology.Torus { rows = 4; cols = 5 }
        | _ -> Dtm_topology.Topology.Butterfly { dim = 3 }
      in
      let rng = Prng.create ~seed in
      let n = Dtm_topology.Topology.n topo in
      let w = 1 + Prng.int rng 10 in
      let k = 1 + Prng.int rng (min 3 w) in
      let inst = uniform rng ~n ~w ~k in
      let metric = Dtm_topology.Topology.metric topo in
      Schedule.makespan (Diameter_sched.schedule metric inst)
      <= Bounds.diameter metric inst)

let prop_thm2_bound =
  qtest "Theorem 2 bound holds: line makespan <= 4l"
    QCheck.(pair (int_range 2 150) (int_range 0 100_000))
    (fun (n, seed) ->
      let rng = Prng.create ~seed in
      let w = 1 + Prng.int rng (max 1 (n / 2)) in
      let k = 1 + Prng.int rng (min 3 w) in
      let inst = uniform rng ~n ~w ~k in
      Schedule.makespan (Line_sched.schedule ~n inst) <= Bounds.line inst)

let prop_ring_bound =
  qtest "Ring bound holds: makespan <= 9l (or 2n degenerate)"
    QCheck.(pair (int_range 2 150) (int_range 0 100_000))
    (fun (n, seed) ->
      let rng = Prng.create ~seed in
      let w = 1 + Prng.int rng (max 1 (n / 2)) in
      let k = 1 + Prng.int rng (min 3 w) in
      let inst = uniform rng ~n ~w ~k in
      Schedule.makespan (Ring_sched.schedule ~n inst) <= Bounds.ring ~n inst)

let prop_thm3_bound =
  qtest ~count:40 "Lemma 5 style bound holds on grids"
    QCheck.(pair (pair (int_range 2 10) (int_range 2 10)) (int_range 0 100_000))
    (fun ((rows, cols), seed) ->
      let rng = Prng.create ~seed in
      let w = 1 + Prng.int rng 16 in
      let k = 1 + Prng.int rng (min 3 w) in
      let inst = uniform rng ~n:(rows * cols) ~w ~k in
      Schedule.makespan (Grid_sched.schedule ~rows ~cols inst)
      <= Bounds.grid ~rows ~cols inst)

let prop_thm4_bound =
  qtest ~count:40 "Lemma 6 bound holds for cluster Approach 1"
    QCheck.(pair (pair (int_range 2 5) (int_range 2 6)) (int_range 0 100_000))
    (fun ((clusters, size), seed) ->
      let rng = Prng.create ~seed in
      let p = { Cluster.clusters; size; bridge_weight = size + Prng.int rng 6 } in
      let n = clusters * size in
      let w = 1 + Prng.int rng 10 in
      let k = 1 + Prng.int rng (min 3 w) in
      let inst = uniform rng ~n ~w ~k in
      Schedule.makespan
        (Cluster_sched.schedule ~approach:Cluster_sched.Approach1 p inst)
      <= Bounds.cluster_approach1 p inst)

let () =
  Alcotest.run "dtm_sched"
    [
      ( "composer",
        [
          Alcotest.test_case "single group" `Quick test_composer_single_group;
          Alcotest.test_case "sequential groups" `Quick test_composer_sequential_groups;
          Alcotest.test_case "skips scheduled" `Quick test_composer_skips_scheduled;
          Alcotest.test_case "parallel chains" `Quick test_composer_chains;
          Alcotest.test_case "chains reject shared" `Quick test_composer_chains_reject_shared;
          Alcotest.test_case "chains reject duplicate" `Quick test_composer_chains_reject_duplicate;
          Alcotest.test_case "gap covers travel" `Quick test_composer_gap_accounts_travel;
        ] );
      ( "clique",
        [
          Alcotest.test_case "feasible + bounded" `Quick test_clique_feasible_and_bounded;
          Alcotest.test_case "hot object" `Quick test_clique_hot_object;
          prop_clique_random;
        ] );
      ("diameter", [ Alcotest.test_case "hypercube/butterfly/torus" `Quick test_diameter_topologies ]);
      ( "line",
        [
          Alcotest.test_case "feasible" `Quick test_line_feasible;
          Alcotest.test_case "4l bound" `Quick test_line_makespan_bound;
          Alcotest.test_case "windowed constant ratio" `Quick test_line_windowed_constant_ratio;
          prop_line_random;
          Alcotest.test_case "span" `Quick test_line_span;
        ] );
      ( "ring",
        [
          Alcotest.test_case "feasible" `Quick test_ring_feasible;
          Alcotest.test_case "wraparound objects" `Quick test_ring_wraparound_objects;
          Alcotest.test_case "O(l) bound" `Quick test_ring_makespan_bound;
          prop_ring_random;
        ] );
      ( "grid",
        [
          Alcotest.test_case "feasible" `Quick test_grid_feasible;
          Alcotest.test_case "subgrid order (Fig 2)" `Quick test_grid_subgrid_order;
          Alcotest.test_case "subgrid override" `Quick test_grid_subgrid_override;
          prop_grid_random;
          Alcotest.test_case "default side formula" `Quick test_grid_default_side_formula;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "approaches feasible" `Quick test_cluster_approaches_feasible;
          Alcotest.test_case "local sigma=1" `Quick test_cluster_local_sigma1;
          Alcotest.test_case "spread sigma" `Quick test_cluster_spread_sigma;
          prop_cluster_random;
          Alcotest.test_case "phase count" `Quick test_cluster_phase_count;
        ] );
      ( "star",
        [
          Alcotest.test_case "variants feasible" `Quick test_star_variants_feasible;
          Alcotest.test_case "sigma of period" `Quick test_star_sigma_of_period;
          prop_star_random;
        ] );
      ( "structural",
        [
          Alcotest.test_case "star center first" `Quick test_star_center_executes_first;
          Alcotest.test_case "grid single subgrid = greedy" `Quick test_grid_single_subgrid_equals_greedy;
          Alcotest.test_case "cluster best is min" `Quick test_cluster_best_is_min;
        ] );
      ( "batched",
        [
          Alcotest.test_case "feasible per batch" `Quick test_batched_feasible_per_batch;
          Alcotest.test_case "positions chain" `Quick test_batched_positions_chain;
          Alcotest.test_case "rejects mismatch" `Quick test_batched_rejects_mismatch;
        ] );
      ( "theorem-bounds",
        [
          prop_thm1_bound;
          prop_sec31_bound;
          prop_thm2_bound;
          prop_ring_bound;
          prop_thm3_bound;
          prop_thm4_bound;
        ] );
      ( "baseline-auto",
        [
          Alcotest.test_case "baselines feasible" `Quick test_baselines_feasible;
          Alcotest.test_case "nearest-first travel" `Quick test_nearest_first_reduces_travel;
          Alcotest.test_case "sequential is serial" `Quick test_baseline_sequential_is_serial;
          Alcotest.test_case "auto on all topologies" `Quick test_auto_all_topologies;
          Alcotest.test_case "auto beats sequential" `Quick test_auto_beats_sequential_on_parallel_workload;
        ] );
    ]
