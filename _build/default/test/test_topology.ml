(* Tests for the topology generators: structural invariants and agreement
   between the closed-form metrics and APSP on the explicit graphs. *)

open Dtm_topology
module G = Dtm_graph.Graph
module Metric = Dtm_graph.Metric
module Apsp = Dtm_graph.Apsp

let check_metric_matches_apsp name make_graph make_metric =
  Alcotest.test_case (name ^ " metric = APSP") `Quick (fun () ->
      let g = make_graph () in
      let m = make_metric () in
      let d = Apsp.distances g in
      let n = G.n g in
      Alcotest.(check int) "metric size" n (Metric.size m);
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if d.(u).(v) <> Metric.dist m u v then
            Alcotest.failf "%s: dist(%d,%d): apsp=%d metric=%d" name u v d.(u).(v)
              (Metric.dist m u v)
        done
      done)

(* ------------------------------------------------------------------ *)
(* Structure                                                          *)
(* ------------------------------------------------------------------ *)

let test_clique_structure () =
  let g = Clique.graph 6 in
  Alcotest.(check int) "n" 6 (G.n g);
  Alcotest.(check int) "edges" 15 (G.num_edges g);
  Alcotest.(check int) "degree" 5 (G.max_degree g);
  Alcotest.(check bool) "connected" true (G.is_connected g)

let test_clique_one_node () =
  let g = Clique.graph 1 in
  Alcotest.(check int) "n" 1 (G.n g);
  Alcotest.(check int) "edges" 0 (G.num_edges g)

let test_line_structure () =
  let g = Line.graph 10 in
  Alcotest.(check int) "edges" 9 (G.num_edges g);
  Alcotest.(check int) "end degree" 1 (G.degree g 0);
  Alcotest.(check int) "mid degree" 2 (G.degree g 5);
  Alcotest.(check bool) "connected" true (G.is_connected g)

let test_ring_structure () =
  let g = Ring.graph 10 in
  Alcotest.(check int) "edges" 10 (G.num_edges g);
  Alcotest.(check int) "2-regular" 2 (G.max_degree g);
  Alcotest.(check bool) "connected" true (G.is_connected g);
  Alcotest.(check int) "two-node ring" 1 (G.num_edges (Ring.graph 2));
  Alcotest.(check int) "one-node ring" 0 (G.num_edges (Ring.graph 1))

let test_ring_metric () =
  let m = Ring.metric 10 in
  Alcotest.(check int) "short way" 3 (Metric.dist m 1 4);
  Alcotest.(check int) "wrap way" 3 (Metric.dist m 9 2);
  Alcotest.(check int) "antipodal" 5 (Metric.dist m 0 5)

let test_ring_arc_span () =
  Alcotest.(check int) "no wrap" 4 (Ring.arc_span ~n:10 [ 2; 4; 6 ]);
  Alcotest.(check int) "wraps" 4 (Ring.arc_span ~n:10 [ 8; 0; 2 ]);
  Alcotest.(check int) "singleton" 0 (Ring.arc_span ~n:10 [ 3 ]);
  Alcotest.(check int) "empty" 0 (Ring.arc_span ~n:10 []);
  Alcotest.(check int) "antipodal pair" 5 (Ring.arc_span ~n:10 [ 0; 5 ]);
  Alcotest.(check int) "full ring" 9 (Ring.arc_span ~n:10 (List.init 10 Fun.id))

let test_grid_structure () =
  let g = Grid.graph ~rows:4 ~cols:5 in
  Alcotest.(check int) "n" 20 (G.n g);
  (* Edges: rows*(cols-1) horizontal + (rows-1)*cols vertical. *)
  Alcotest.(check int) "edges" ((4 * 4) + (3 * 5)) (G.num_edges g);
  Alcotest.(check int) "corner degree" 2 (G.degree g 0);
  Alcotest.(check bool) "connected" true (G.is_connected g)

let test_grid_coords_roundtrip () =
  for id = 0 to 19 do
    let x, y = Grid.coords ~cols:5 id in
    Alcotest.(check int) "roundtrip" id (Grid.node ~cols:5 ~x ~y)
  done

let test_torus_structure () =
  let g = Torus.graph ~rows:4 ~cols:4 in
  Alcotest.(check int) "n" 16 (G.n g);
  Alcotest.(check int) "edges" 32 (G.num_edges g);
  Alcotest.(check int) "regular degree" 4 (G.degree g 5);
  Alcotest.(check bool) "connected" true (G.is_connected g)

let test_torus_small () =
  (* cols = 2 would create duplicate wrap edges if not deduplicated. *)
  let g = Torus.graph ~rows:2 ~cols:2 in
  Alcotest.(check int) "n" 4 (G.n g);
  Alcotest.(check int) "edges" 4 (G.num_edges g)

let test_hypercube_structure () =
  let g = Hypercube.graph ~dim:4 in
  Alcotest.(check int) "n" 16 (G.n g);
  Alcotest.(check int) "edges" 32 (G.num_edges g);
  Alcotest.(check int) "regular" 4 (G.max_degree g);
  Alcotest.(check bool) "connected" true (G.is_connected g);
  Alcotest.(check int) "diameter" 4 (Metric.diameter (Hypercube.metric ~dim:4))

let test_butterfly_structure () =
  let dim = 3 in
  let g = Butterfly.graph ~dim in
  Alcotest.(check int) "n" ((dim + 1) * 8) (G.n g);
  (* Each of dim levels contributes 2 * 2^dim edges. *)
  Alcotest.(check int) "edges" (dim * 2 * 8) (G.num_edges g);
  Alcotest.(check bool) "connected" true (G.is_connected g);
  let m = Butterfly.metric ~dim in
  Alcotest.(check bool) "diameter <= 2 dim" true (Metric.diameter m <= 2 * dim)

let test_butterfly_node_roundtrip () =
  let dim = 3 in
  for l = 0 to dim do
    for r = 0 to 7 do
      let id = Butterfly.node ~dim ~level:l ~row:r in
      Alcotest.(check int) "level" l (Butterfly.level ~dim id);
      Alcotest.(check int) "row" r (Butterfly.row ~dim id)
    done
  done

let cluster_params = { Cluster.clusters = 4; size = 5; bridge_weight = 7 }

let test_cluster_structure () =
  let p = cluster_params in
  let g = Cluster.graph p in
  Alcotest.(check int) "n" 20 (G.n g);
  (* 4 cliques of C(5,2)=10 edges + C(4,2)=6 bridge edges. *)
  Alcotest.(check int) "edges" ((4 * 10) + 6) (G.num_edges g);
  Alcotest.(check bool) "connected" true (G.is_connected g);
  Alcotest.(check int) "bridge weight" 7
    (match G.edge_weight g (Cluster.bridge_node p 0) (Cluster.bridge_node p 1) with
    | Some w -> w
    | None -> -1)

let test_cluster_helpers () =
  let p = cluster_params in
  Alcotest.(check int) "cluster_of" 2 (Cluster.cluster_of p 13);
  Alcotest.(check bool) "is_bridge" true (Cluster.is_bridge p 10);
  Alcotest.(check bool) "not bridge" false (Cluster.is_bridge p 11);
  Alcotest.(check (list int)) "nodes" [ 5; 6; 7; 8; 9 ] (Cluster.nodes_of_cluster p 1)

let star_params = { Star.rays = 5; ray_len = 6 }

let test_star_structure () =
  let p = star_params in
  let g = Star.graph p in
  Alcotest.(check int) "n" 31 (G.n g);
  Alcotest.(check int) "edges" 30 (G.num_edges g);
  Alcotest.(check int) "center degree" 5 (G.degree g Star.center);
  Alcotest.(check bool) "connected (tree)" true (G.is_connected g)

let test_star_depth_ray () =
  let p = star_params in
  let id = Star.node p ~ray:3 ~depth:4 in
  Alcotest.(check (option int)) "ray" (Some 3) (Star.ray_of p id);
  Alcotest.(check int) "depth" 4 (Star.depth_of p id);
  Alcotest.(check (option int)) "center ray" None (Star.ray_of p Star.center);
  Alcotest.(check int) "center depth" 0 (Star.depth_of p Star.center)

let test_star_segments () =
  let p = star_params in
  (* ray_len = 6: segments are depths [1,1], [2,3], [4,6]. *)
  Alcotest.(check int) "num segments" 3 (Star.num_segments p);
  Alcotest.(check (pair int int)) "seg 1" (1, 1) (Star.segment_depths p 1);
  Alcotest.(check (pair int int)) "seg 2" (2, 3) (Star.segment_depths p 2);
  Alcotest.(check (pair int int)) "seg 3" (4, 6) (Star.segment_depths p 3);
  Alcotest.(check int) "segment_of_depth 1" 1 (Star.segment_of_depth 1);
  Alcotest.(check int) "segment_of_depth 3" 2 (Star.segment_of_depth 3);
  Alcotest.(check int) "segment_of_depth 4" 3 (Star.segment_of_depth 4)

let tree_params = { Tree.branching = 2; depth = 3 }

let test_tree_structure () =
  let g = Tree.graph tree_params in
  Alcotest.(check int) "n" 15 (G.n g);
  Alcotest.(check int) "n_of" 15 (Tree.n_of tree_params);
  Alcotest.(check int) "tree edges" 14 (G.num_edges g);
  Alcotest.(check bool) "connected" true (G.is_connected g);
  Alcotest.(check (option int)) "root parent" None (Tree.parent 0 tree_params);
  Alcotest.(check (option int)) "parent of 4" (Some 1) (Tree.parent 4 tree_params);
  Alcotest.(check int) "depth of leaf" 3 (Tree.node_depth 14 tree_params);
  Alcotest.(check int) "unary tree" 5 (Tree.n_of { Tree.branching = 1; depth = 4 })

let test_tree_metric () =
  let m = Tree.metric tree_params in
  (* Siblings 1 and 2 meet at the root: distance 2. *)
  Alcotest.(check int) "siblings" 2 (Metric.dist m 1 2);
  (* Leaves 7 and 14 are in different root subtrees: 3 + 3. *)
  Alcotest.(check int) "cross leaves" 6 (Metric.dist m 7 14);
  (* Ancestor chain 0 -> 1 -> 3 -> 7. *)
  Alcotest.(check int) "ancestor" 3 (Metric.dist m 0 7)

let hg_params = { Hypergrid.dims = [ 3; 4; 2 ] }

let test_hypergrid_structure () =
  let g = Hypergrid.graph hg_params in
  Alcotest.(check int) "n" 24 (G.n g);
  Alcotest.(check bool) "connected" true (G.is_connected g);
  (* Edges: for each axis, (d_i - 1) * prod(others). *)
  Alcotest.(check int) "edges" ((2 * 8) + (3 * 6) + (1 * 12)) (G.num_edges g);
  Alcotest.(check int) "diameter" 6 (Hypergrid.diameter hg_params)

let test_hypergrid_coords_roundtrip () =
  for id = 0 to 23 do
    Alcotest.(check int) "roundtrip" id
      (Hypergrid.node hg_params (Hypergrid.coords hg_params id))
  done

let test_hypergrid_degenerates () =
  (* One dimension is a line; [a; b] matches the grid. *)
  let line = Hypergrid.metric { Hypergrid.dims = [ 7 ] } in
  let lref = Line.metric 7 in
  for u = 0 to 6 do
    for v = 0 to 6 do
      Alcotest.(check int) "line" (Metric.dist lref u v) (Metric.dist line u v)
    done
  done

let test_blocks_roundtrip () =
  let p = Blocks.make ~s:9 in
  Alcotest.(check int) "root" 3 p.Blocks.root;
  Alcotest.(check int) "n" (9 * 9 * 3) (Blocks.n p);
  for id = 0 to Blocks.n p - 1 do
    let b, x, y = Blocks.coords p id in
    Alcotest.(check int) "roundtrip" id (Blocks.node p ~block:b ~x ~y)
  done

let test_blocks_rejects_non_square () =
  Alcotest.check_raises "non-square" (Invalid_argument "Blocks.make: s must be a perfect square")
    (fun () -> ignore (Blocks.make ~s:8))

let test_block_grid_structure () =
  let p = Blocks.make ~s:4 in
  let g = Block_grid.graph p in
  Alcotest.(check int) "n" 32 (G.n g);
  Alcotest.(check bool) "connected" true (G.is_connected g);
  (* Bridge edges carry weight s between adjacent blocks, one per row. *)
  let b0_right = Blocks.node p ~block:0 ~x:1 ~y:2 in
  let b1_left = Blocks.node p ~block:1 ~x:0 ~y:2 in
  Alcotest.(check (option int)) "bridge weight" (Some 4) (G.edge_weight g b0_right b1_left)

let test_block_tree_is_tree () =
  let p = Blocks.make ~s:4 in
  let g = Block_tree.graph p in
  Alcotest.(check int) "n" 32 (G.n g);
  Alcotest.(check int) "edges = n-1" 31 (G.num_edges g);
  Alcotest.(check bool) "connected" true (G.is_connected g)

let test_block_separation () =
  (* Any two nodes in different blocks are at distance >= s. *)
  let p = Blocks.make ~s:4 in
  List.iter
    (fun m ->
      let mm = m p in
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              Alcotest.(check bool) "separated" true (Metric.dist mm u v >= 4))
            (Blocks.block_nodes p 2))
        (Blocks.block_nodes p 0))
    [ Block_grid.metric; Block_tree.metric ]

(* ------------------------------------------------------------------ *)
(* Topology dispatcher                                                *)
(* ------------------------------------------------------------------ *)

let test_topology_roundtrip () =
  List.iter
    (fun t ->
      match Topology.of_string (Topology.to_string t) with
      | Ok t' ->
        Alcotest.(check string) "roundtrip" (Topology.to_string t) (Topology.to_string t')
      | Error e -> Alcotest.failf "parse failed: %s" e)
    Topology.all_examples

let test_topology_n_consistent () =
  List.iter
    (fun t ->
      Alcotest.(check int)
        (Topology.to_string t ^ " n")
        (G.n (Topology.graph t))
        (Topology.n t))
    Topology.all_examples

let test_topology_graphs_connected () =
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Topology.to_string t ^ " connected")
        true
        (G.is_connected (Topology.graph t)))
    Topology.all_examples

let test_topology_parse_errors () =
  List.iter
    (fun s ->
      match Topology.of_string s with
      | Ok _ -> Alcotest.failf "expected parse error for %S" s
      | Error _ -> ())
    [ "clique"; "clique:0"; "grid:4"; "grid:0x4"; "widget:3"; "cluster:2x2";
      "cluster:2x2:g0"; "blockgrid:8"; "hypercube:25"; "" ]

let test_topology_describe () =
  let d = Topology.describe (Topology.Clique 8) in
  Alcotest.(check bool) "mentions nodes" true
    (String.length d > 0 && String.contains d '8')

(* All metrics validated as true metrics on the small examples. *)
let test_all_metrics_valid () =
  List.iter
    (fun t ->
      match Metric.validate (Topology.metric t) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" (Topology.to_string t) e)
    Topology.all_examples

let metric_agreement_cases =
  [
    check_metric_matches_apsp "clique" (fun () -> Clique.graph 7) (fun () -> Clique.metric 7);
    check_metric_matches_apsp "line" (fun () -> Line.graph 9) (fun () -> Line.metric 9);
    check_metric_matches_apsp "ring even" (fun () -> Ring.graph 10) (fun () -> Ring.metric 10);
    check_metric_matches_apsp "ring odd" (fun () -> Ring.graph 9) (fun () -> Ring.metric 9);
    check_metric_matches_apsp "grid"
      (fun () -> Grid.graph ~rows:4 ~cols:6)
      (fun () -> Grid.metric ~rows:4 ~cols:6);
    check_metric_matches_apsp "torus"
      (fun () -> Torus.graph ~rows:5 ~cols:4)
      (fun () -> Torus.metric ~rows:5 ~cols:4);
    check_metric_matches_apsp "hypercube"
      (fun () -> Hypercube.graph ~dim:4)
      (fun () -> Hypercube.metric ~dim:4);
    check_metric_matches_apsp "cluster"
      (fun () -> Cluster.graph cluster_params)
      (fun () -> Cluster.metric cluster_params);
    check_metric_matches_apsp "cluster beta=1"
      (fun () -> Cluster.graph { Cluster.clusters = 4; size = 1; bridge_weight = 3 })
      (fun () -> Cluster.metric { Cluster.clusters = 4; size = 1; bridge_weight = 3 });
    check_metric_matches_apsp "star"
      (fun () -> Star.graph star_params)
      (fun () -> Star.metric star_params);
    check_metric_matches_apsp "tree 2x3"
      (fun () -> Tree.graph tree_params)
      (fun () -> Tree.metric tree_params);
    check_metric_matches_apsp "tree 3x2"
      (fun () -> Tree.graph { Tree.branching = 3; depth = 2 })
      (fun () -> Tree.metric { Tree.branching = 3; depth = 2 });
    check_metric_matches_apsp "hypergrid 3x4x2"
      (fun () -> Hypergrid.graph hg_params)
      (fun () -> Hypergrid.metric hg_params);
    check_metric_matches_apsp "block grid s=4"
      (fun () -> Block_grid.graph (Blocks.make ~s:4))
      (fun () -> Block_grid.metric (Blocks.make ~s:4));
    check_metric_matches_apsp "block grid s=9"
      (fun () -> Block_grid.graph (Blocks.make ~s:9))
      (fun () -> Block_grid.metric (Blocks.make ~s:9));
    check_metric_matches_apsp "block tree s=4"
      (fun () -> Block_tree.graph (Blocks.make ~s:4))
      (fun () -> Block_tree.metric (Blocks.make ~s:4));
    check_metric_matches_apsp "block tree s=9"
      (fun () -> Block_tree.graph (Blocks.make ~s:9))
      (fun () -> Block_tree.metric (Blocks.make ~s:9));
  ]

let () =
  Alcotest.run "dtm_topology"
    [
      ( "structure",
        [
          Alcotest.test_case "clique" `Quick test_clique_structure;
          Alcotest.test_case "clique n=1" `Quick test_clique_one_node;
          Alcotest.test_case "line" `Quick test_line_structure;
          Alcotest.test_case "ring" `Quick test_ring_structure;
          Alcotest.test_case "ring metric" `Quick test_ring_metric;
          Alcotest.test_case "ring arc span" `Quick test_ring_arc_span;
          Alcotest.test_case "grid" `Quick test_grid_structure;
          Alcotest.test_case "grid coords" `Quick test_grid_coords_roundtrip;
          Alcotest.test_case "torus" `Quick test_torus_structure;
          Alcotest.test_case "torus 2x2" `Quick test_torus_small;
          Alcotest.test_case "hypercube" `Quick test_hypercube_structure;
          Alcotest.test_case "butterfly" `Quick test_butterfly_structure;
          Alcotest.test_case "butterfly ids" `Quick test_butterfly_node_roundtrip;
          Alcotest.test_case "cluster" `Quick test_cluster_structure;
          Alcotest.test_case "cluster helpers" `Quick test_cluster_helpers;
          Alcotest.test_case "star" `Quick test_star_structure;
          Alcotest.test_case "star depth/ray" `Quick test_star_depth_ray;
          Alcotest.test_case "star segments" `Quick test_star_segments;
          Alcotest.test_case "tree" `Quick test_tree_structure;
          Alcotest.test_case "tree metric" `Quick test_tree_metric;
          Alcotest.test_case "hypergrid" `Quick test_hypergrid_structure;
          Alcotest.test_case "hypergrid coords" `Quick test_hypergrid_coords_roundtrip;
          Alcotest.test_case "hypergrid degenerate" `Quick test_hypergrid_degenerates;
          Alcotest.test_case "blocks roundtrip" `Quick test_blocks_roundtrip;
          Alcotest.test_case "blocks non-square" `Quick test_blocks_rejects_non_square;
          Alcotest.test_case "block grid" `Quick test_block_grid_structure;
          Alcotest.test_case "block tree is tree" `Quick test_block_tree_is_tree;
          Alcotest.test_case "block separation" `Quick test_block_separation;
        ] );
      ("metric-vs-apsp", metric_agreement_cases);
      ( "dispatcher",
        [
          Alcotest.test_case "to/of_string roundtrip" `Quick test_topology_roundtrip;
          Alcotest.test_case "n consistent" `Quick test_topology_n_consistent;
          Alcotest.test_case "graphs connected" `Quick test_topology_graphs_connected;
          Alcotest.test_case "parse errors" `Quick test_topology_parse_errors;
          Alcotest.test_case "describe" `Quick test_topology_describe;
          Alcotest.test_case "metrics valid" `Quick test_all_metrics_valid;
        ] );
    ]
