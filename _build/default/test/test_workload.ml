(* Tests for the workload generators, including the Section 8 lower-bound
   instances. *)

module Instance = Dtm_core.Instance
module Cluster = Dtm_topology.Cluster
module Blocks = Dtm_topology.Blocks
module Prng = Dtm_util.Prng
open Dtm_workload

let qtest ?(count = 80) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let arb_seed = QCheck.int_range 0 1_000_000

(* ------------------------------------------------------------------ *)
(* Uniform                                                            *)
(* ------------------------------------------------------------------ *)

let test_uniform_shape () =
  let rng = Prng.create ~seed:1 in
  let inst = Uniform.instance ~rng ~n:20 ~num_objects:8 ~k:3 () in
  Alcotest.(check int) "all nodes have txns" 20 (Instance.num_txns inst);
  Alcotest.(check int) "k respected" 3 (Instance.k_max inst);
  Array.iter
    (fun v ->
      match Instance.txn_at inst v with
      | Some objs -> Alcotest.(check int) "exactly k" 3 (Array.length objs)
      | None -> Alcotest.fail "missing txn")
    (Instance.txn_nodes inst)

let test_uniform_homes_at_requesters () =
  let rng = Prng.create ~seed:2 in
  let inst = Uniform.instance ~rng ~n:16 ~num_objects:6 ~k:2 () in
  Alcotest.(check bool) "paper placement" true (Instance.homes_at_requesters inst)

let test_uniform_density () =
  let rng = Prng.create ~seed:3 in
  let inst = Uniform.instance ~rng ~n:200 ~num_objects:8 ~k:2 ~density:0.3 () in
  let t = Instance.num_txns inst in
  Alcotest.(check bool) "sparse" true (t > 20 && t < 120)

let test_uniform_rejects_bad_k () =
  let rng = Prng.create ~seed:4 in
  Alcotest.check_raises "bad k" (Invalid_argument "Uniform.instance: bad k")
    (fun () -> ignore (Uniform.instance ~rng ~n:4 ~num_objects:2 ~k:3 ()))

let prop_uniform_deterministic =
  qtest "same seed, same instance" arb_seed (fun seed ->
      let gen () =
        let rng = Prng.create ~seed in
        Uniform.instance ~rng ~n:12 ~num_objects:5 ~k:2 ()
      in
      let a = gen () and b = gen () in
      List.for_all
        (fun v -> Instance.txn_at a v = Instance.txn_at b v)
        (List.init 12 Fun.id)
      && Array.init 5 (Instance.home a) = Array.init 5 (Instance.home b))

(* ------------------------------------------------------------------ *)
(* Arbitrary families                                                 *)
(* ------------------------------------------------------------------ *)

let test_hot_object () =
  let rng = Prng.create ~seed:5 in
  let inst = Arbitrary.hot_object ~rng ~n:15 ~num_objects:6 ~k:3 in
  Alcotest.(check int) "load = n via object 0" 15
    (Array.length (Instance.requesters inst 0));
  Array.iter
    (fun v ->
      Alcotest.(check bool) "uses object 0" true (Instance.uses inst ~node:v ~obj:0))
    (Instance.txn_nodes inst)

let test_hot_object_k1 () =
  let rng = Prng.create ~seed:6 in
  let inst = Arbitrary.hot_object ~rng ~n:5 ~num_objects:3 ~k:1 in
  Alcotest.(check int) "k" 1 (Instance.k_max inst)

let test_windowed_span () =
  let rng = Prng.create ~seed:7 in
  let n = 64 in
  let inst = Arbitrary.windowed ~rng ~n ~num_objects:n ~k:2 ~span:6 in
  (* Requesters of any object lie within a window of node positions. *)
  for o = 0 to n - 1 do
    let reqs = Instance.requesters inst o in
    if Array.length reqs > 1 then begin
      let lo = Array.fold_left min max_int reqs
      and hi = Array.fold_left max 0 reqs in
      Alcotest.(check bool) "bounded node span" true (hi - lo <= 12)
    end
  done

let test_partitioned_no_cross_traffic () =
  let rng = Prng.create ~seed:8 in
  let parts = 4 in
  let inst = Arbitrary.partitioned ~rng ~n:16 ~num_objects:8 ~k:2 ~parts in
  for o = 0 to 7 do
    let part_of_obj = o * parts / 8 in
    Array.iter
      (fun v ->
        Alcotest.(check int) "requester in object's part" part_of_obj (v * parts / 16))
      (Instance.requesters inst o)
  done

let cluster_p = { Cluster.clusters = 3; size = 4; bridge_weight = 5 }

let test_cluster_local_confinement () =
  let rng = Prng.create ~seed:9 in
  let inst = Arbitrary.cluster_local ~rng cluster_p ~num_objects_per_cluster:3 ~k:2 in
  Alcotest.(check int) "object count" 9 (Instance.num_objects inst);
  for o = 0 to 8 do
    let owner = o / 3 in
    Array.iter
      (fun v ->
        Alcotest.(check int) "requester in owning cluster" owner
          (Cluster.cluster_of cluster_p v))
      (Instance.requesters inst o)
  done

let test_cluster_spread_reaches_sigma () =
  let rng = Prng.create ~seed:10 in
  let inst = Arbitrary.cluster_spread ~rng cluster_p ~num_objects:6 ~k:2 ~sigma:3 in
  let sigma = Dtm_sched.Cluster_sched.sigma cluster_p inst in
  Alcotest.(check bool) "spread across clusters" true (sigma >= 2)

(* ------------------------------------------------------------------ *)
(* Zipf                                                               *)
(* ------------------------------------------------------------------ *)

let test_zipf_shape () =
  let rng = Prng.create ~seed:11 in
  let inst = Zipf.instance ~rng ~n:30 ~num_objects:10 ~k:2 ~exponent:1.0 in
  Alcotest.(check int) "txns" 30 (Instance.num_txns inst);
  Alcotest.(check int) "k" 2 (Instance.k_max inst)

let test_zipf_skew () =
  let rng = Prng.create ~seed:12 in
  let inst = Zipf.instance ~rng ~n:400 ~num_objects:20 ~k:1 ~exponent:1.5 in
  let hot = Array.length (Instance.requesters inst 0) in
  let cold = Array.length (Instance.requesters inst 19) in
  Alcotest.(check bool) "object 0 much hotter" true (hot > 4 * max 1 cold)

let test_zipf_zero_exponent_uniformish () =
  let rng = Prng.create ~seed:13 in
  let inst = Zipf.instance ~rng ~n:600 ~num_objects:6 ~k:1 ~exponent:0.0 in
  let counts = Array.init 6 (fun o -> Array.length (Instance.requesters inst o)) in
  Array.iter
    (fun c -> Alcotest.(check bool) "near uniform" true (c > 50 && c < 150))
    counts

(* ------------------------------------------------------------------ *)
(* Section 8 instances                                                *)
(* ------------------------------------------------------------------ *)

let test_lb_instance_structure () =
  let p = Blocks.make ~s:9 in
  let rng = Prng.create ~seed:14 in
  let inst = Lb_instance.instance ~rng p in
  Alcotest.(check int) "n" (Blocks.n p) (Instance.n inst);
  Alcotest.(check int) "2s objects" 18 (Instance.num_objects inst);
  Alcotest.(check int) "every node has a txn" (Blocks.n p) (Instance.num_txns inst);
  Alcotest.(check int) "k = 2" 2 (Instance.k_max inst);
  (* a_i is requested by exactly the nodes of block i. *)
  for i = 0 to 8 do
    let reqs = Instance.requesters inst (Lb_instance.a_object i) in
    Alcotest.(check int) "a_i full block" (Blocks.block_size p) (Array.length reqs);
    Array.iter
      (fun v -> Alcotest.(check int) "a_i block membership" i (Blocks.block_of p v))
      reqs
  done;
  (* All objects start in H_1 (block 0). *)
  for o = 0 to 17 do
    Alcotest.(check int) "home in H1" 0 (Blocks.block_of p (Instance.home inst o))
  done

let test_lb_instance_b_homes_at_users () =
  let p = Blocks.make ~s:9 in
  let rng = Prng.create ~seed:15 in
  let inst = Lb_instance.instance ~rng p in
  for j = 0 to 8 do
    let o = Lb_instance.b_object p j in
    let home = Instance.home inst o in
    let h1_users =
      Array.to_list (Instance.requesters inst o)
      |> List.filter (fun v -> Blocks.block_of p v = 0)
    in
    if h1_users <> [] then
      Alcotest.(check bool) "b home used in H1" true (List.mem home h1_users)
  done

let test_lb_instance_object_ids () =
  let p = Blocks.make ~s:4 in
  Alcotest.(check int) "a id" 2 (Lb_instance.a_object 2);
  Alcotest.(check int) "b id" 6 (Lb_instance.b_object p 2);
  Alcotest.(check bool) "is_b" true (Lb_instance.is_b_object p 5);
  Alcotest.(check bool) "not b" false (Lb_instance.is_b_object p 3)

let prop_lb_instance_schedulable =
  qtest ~count:10 "Section 8 instances schedule feasibly on both carriers"
    arb_seed (fun seed ->
      let p = Blocks.make ~s:4 in
      let rng = Prng.create ~seed in
      let inst = Lb_instance.instance ~rng p in
      let check metric =
        let sched = Dtm_core.Greedy.schedule metric inst in
        Dtm_core.Validator.is_feasible metric inst sched
      in
      check (Dtm_topology.Block_grid.metric p)
      && check (Dtm_topology.Block_tree.metric p))

let () =
  Alcotest.run "dtm_workload"
    [
      ( "uniform",
        [
          Alcotest.test_case "shape" `Quick test_uniform_shape;
          Alcotest.test_case "homes at requesters" `Quick test_uniform_homes_at_requesters;
          Alcotest.test_case "density" `Quick test_uniform_density;
          Alcotest.test_case "rejects bad k" `Quick test_uniform_rejects_bad_k;
          prop_uniform_deterministic;
        ] );
      ( "arbitrary",
        [
          Alcotest.test_case "hot object" `Quick test_hot_object;
          Alcotest.test_case "hot object k=1" `Quick test_hot_object_k1;
          Alcotest.test_case "windowed span" `Quick test_windowed_span;
          Alcotest.test_case "partitioned" `Quick test_partitioned_no_cross_traffic;
          Alcotest.test_case "cluster local" `Quick test_cluster_local_confinement;
          Alcotest.test_case "cluster spread" `Quick test_cluster_spread_reaches_sigma;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "shape" `Quick test_zipf_shape;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "zero exponent" `Quick test_zipf_zero_exponent_uniformish;
        ] );
      ( "section8",
        [
          Alcotest.test_case "structure" `Quick test_lb_instance_structure;
          Alcotest.test_case "b homes" `Quick test_lb_instance_b_homes_at_users;
          Alcotest.test_case "object ids" `Quick test_lb_instance_object_ids;
          prop_lb_instance_schedulable;
        ] );
    ]
