test/test_util.ml: Alcotest Array Bitset Dtm_util Fun List Pqueue Prng QCheck QCheck_alcotest Stats String Table Union_find
