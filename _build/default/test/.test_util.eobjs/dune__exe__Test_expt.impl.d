test/test_expt.ml: Alcotest Dtm_core Dtm_expt Dtm_topology List String
