test/test_golden.ml: Alcotest Dtm_core Dtm_online Dtm_sched Dtm_sim Dtm_topology Dtm_util Dtm_workload Printf Sys
