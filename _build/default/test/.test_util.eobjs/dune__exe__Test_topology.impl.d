test/test_topology.ml: Alcotest Array Block_grid Block_tree Blocks Butterfly Clique Cluster Dtm_graph Dtm_topology Fun Grid Hypercube Hypergrid Line List Ring Star String Topology Torus Tree
