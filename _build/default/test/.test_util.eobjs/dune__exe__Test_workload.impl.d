test/test_workload.ml: Alcotest Arbitrary Array Dtm_core Dtm_sched Dtm_topology Dtm_util Dtm_workload Fun Lb_instance List QCheck QCheck_alcotest Uniform Zipf
