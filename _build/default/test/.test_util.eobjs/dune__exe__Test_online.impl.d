test/test_online.ml: Alcotest Array Dtm_online Dtm_topology Dtm_util List Policy QCheck QCheck_alcotest Runner Stream
