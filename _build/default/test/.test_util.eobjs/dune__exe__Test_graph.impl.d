test/test_graph.ml: Alcotest Apsp Array Bfs Dijkstra Dtm_graph Dtm_util Format Fun Graph Graph_io Hashtbl List Metric Mst QCheck QCheck_alcotest Result Tsp Walk
