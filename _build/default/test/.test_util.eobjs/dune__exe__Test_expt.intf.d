test/test_expt.mli:
