test/test_cli.ml: Alcotest Buffer Filename List Printf String Sys Unix
