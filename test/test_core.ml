(* Tests for the core DTM model: instances, schedules, dependency graphs,
   greedy coloring, the basic greedy schedule, the validator, and the
   certified lower bounds. *)

open Dtm_core
module Metric = Dtm_graph.Metric
module Topology = Dtm_topology.Topology

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Fixed 5-node line metric. *)
let line5 = Dtm_topology.Line.metric 5

(* A small fixed instance on the line: three transactions, two objects.
   t0 at node 0 uses {0}; t2 at node 2 uses {0,1}; t4 at node 4 uses {1}.
   Homes: object 0 at node 0, object 1 at node 4. *)
let small_inst =
  Instance.create ~n:5 ~num_objects:2
    ~txns:[ (0, [ 0 ]); (2, [ 0; 1 ]); (4, [ 1 ]) ]
    ~home:[| 0; 4 |]

(* Random instance over an arbitrary topology. *)
let random_instance rng topo =
  let n = Topology.n topo in
  let w = 1 + Dtm_util.Prng.int rng (max 1 (n / 2)) in
  let txns = ref [] in
  for v = 0 to n - 1 do
    if Dtm_util.Prng.float rng 1.0 < 0.7 then begin
      let k = 1 + Dtm_util.Prng.int rng (min 4 w) in
      let objs = Array.to_list (Dtm_util.Prng.sample_subset rng ~k ~n:w) in
      txns := (v, objs) :: !txns
    end
  done;
  (* Guarantee at least one transaction. *)
  let txns = if !txns = [] then [ (0, [ 0 ]) ] else !txns in
  let inst0 =
    Instance.create ~n ~num_objects:w ~txns ~home:(Array.make w 0)
  in
  (* Homes: a random requester when one exists, else a random node. *)
  let home =
    Array.init w (fun o ->
        let reqs = Instance.requesters inst0 o in
        if Array.length reqs = 0 then Dtm_util.Prng.int rng n
        else reqs.(Dtm_util.Prng.int rng (Array.length reqs)))
  in
  Instance.create ~n ~num_objects:w ~txns ~home

let arb_topo_instance =
  let topos = Array.of_list Topology.all_examples in
  QCheck.make
    ~print:(fun (t, _) -> Topology.to_string t)
    QCheck.Gen.(
      let* ti = int_range 0 (Array.length topos - 1) in
      let* seed = int_range 0 1_000_000 in
      let rng = Dtm_util.Prng.create ~seed in
      let topo = topos.(ti) in
      return (topo, random_instance rng topo))

(* ------------------------------------------------------------------ *)
(* Instance                                                           *)
(* ------------------------------------------------------------------ *)

let test_instance_accessors () =
  Alcotest.(check int) "n" 5 (Instance.n small_inst);
  Alcotest.(check int) "objects" 2 (Instance.num_objects small_inst);
  Alcotest.(check int) "txns" 3 (Instance.num_txns small_inst);
  Alcotest.(check (array int)) "txn nodes" [| 0; 2; 4 |] (Instance.txn_nodes small_inst);
  Alcotest.(check bool) "txn at 2" true (Instance.txn_at small_inst 2 = Some [| 0; 1 |]);
  Alcotest.(check bool) "no txn at 1" true (Instance.txn_at small_inst 1 = None);
  Alcotest.(check (array int)) "requesters o0" [| 0; 2 |] (Instance.requesters small_inst 0);
  Alcotest.(check (array int)) "requesters o1" [| 2; 4 |] (Instance.requesters small_inst 1);
  Alcotest.(check int) "home o1" 4 (Instance.home small_inst 1);
  Alcotest.(check int) "k_max" 2 (Instance.k_max small_inst);
  Alcotest.(check int) "load" 2 (Instance.load small_inst);
  Alcotest.(check bool) "uses" true (Instance.uses small_inst ~node:2 ~obj:1);
  Alcotest.(check bool) "not uses" false (Instance.uses small_inst ~node:0 ~obj:1);
  Alcotest.(check (list int)) "shared" [ 0 ] (Instance.shared_objects small_inst ~node1:0 ~node2:2);
  Alcotest.(check (list int)) "no shared" [] (Instance.shared_objects small_inst ~node1:0 ~node2:4);
  Alcotest.(check bool) "homes at requesters" true (Instance.homes_at_requesters small_inst)

let test_instance_dedups_objects () =
  let i = Instance.create ~n:2 ~num_objects:1 ~txns:[ (0, [ 0; 0; 0 ]) ] ~home:[| 0 |] in
  Alcotest.(check bool) "deduped" true (Instance.txn_at i 0 = Some [| 0 |])

let test_instance_rejects () =
  let expect msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  expect "Instance.create: two transactions on one node" (fun () ->
      ignore (Instance.create ~n:2 ~num_objects:1 ~txns:[ (0, [ 0 ]); (0, [ 0 ]) ] ~home:[| 0 |]));
  expect "Instance.create: empty object list" (fun () ->
      ignore (Instance.create ~n:2 ~num_objects:1 ~txns:[ (0, []) ] ~home:[| 0 |]));
  expect "Instance.create: object out of range" (fun () ->
      ignore (Instance.create ~n:2 ~num_objects:1 ~txns:[ (0, [ 1 ]) ] ~home:[| 0 |]));
  expect "Instance.create: node out of range" (fun () ->
      ignore (Instance.create ~n:2 ~num_objects:1 ~txns:[ (2, [ 0 ]) ] ~home:[| 0 |]));
  expect "Instance.create: home size mismatch" (fun () ->
      ignore (Instance.create ~n:2 ~num_objects:1 ~txns:[ (0, [ 0 ]) ] ~home:[||]));
  expect "Instance.create: home out of range" (fun () ->
      ignore (Instance.create ~n:2 ~num_objects:1 ~txns:[ (0, [ 0 ]) ] ~home:[| 5 |]))

let test_instance_homes_not_at_requesters () =
  let i = Instance.create ~n:3 ~num_objects:1 ~txns:[ (0, [ 0 ]) ] ~home:[| 2 |] in
  Alcotest.(check bool) "home elsewhere" false (Instance.homes_at_requesters i)

(* ------------------------------------------------------------------ *)
(* Schedule                                                           *)
(* ------------------------------------------------------------------ *)

let test_schedule_basic () =
  let s = Schedule.create ~n:5 in
  Alcotest.(check int) "empty makespan" 0 (Schedule.makespan s);
  Schedule.set s ~node:2 ~time:3;
  Schedule.set s ~node:0 ~time:7;
  Alcotest.(check (option int)) "time" (Some 3) (Schedule.time s 2);
  Alcotest.(check (option int)) "unset" None (Schedule.time s 1);
  Alcotest.(check int) "makespan" 7 (Schedule.makespan s);
  Alcotest.(check (list int)) "scheduled" [ 0; 2 ] (Schedule.scheduled_nodes s)

let test_schedule_rejects_bad_time () =
  let s = Schedule.create ~n:2 in
  Alcotest.check_raises "time < 1" (Invalid_argument "Schedule.set: time < 1")
    (fun () -> Schedule.set s ~node:0 ~time:0)

let test_schedule_of_times_and_order () =
  let s = Schedule.of_times [ (0, 5); (2, 1); (4, 3) ] ~n:5 in
  let order = Schedule.object_order s ~requesters:[| 0; 2; 4 |] in
  Alcotest.(check (list int)) "by time" [ 2; 4; 0 ] order

let test_schedule_shift () =
  let s = Schedule.of_times [ (0, 2); (1, 5) ] ~n:2 in
  Schedule.shift s 3;
  Alcotest.(check (option int)) "shifted" (Some 5) (Schedule.time s 0);
  Schedule.shift s (-4);
  Alcotest.(check (option int)) "shifted down" (Some 1) (Schedule.time s 0);
  Alcotest.check_raises "below 1" (Invalid_argument "Schedule.shift: time would drop below 1")
    (fun () -> Schedule.shift s (-1))

let test_schedule_copy_independent () =
  let s = Schedule.of_times [ (0, 2) ] ~n:2 in
  let c = Schedule.copy s in
  Schedule.set c ~node:0 ~time:9;
  Alcotest.(check (option int)) "original" (Some 2) (Schedule.time s 0)

(* ------------------------------------------------------------------ *)
(* Dependency                                                         *)
(* ------------------------------------------------------------------ *)

let test_dependency_small () =
  let dep = Dependency.build line5 small_inst in
  (* Conflicts: (0,2) via object 0 at distance 2; (2,4) via object 1. *)
  Alcotest.(check int) "num conflicts" 2 (Dependency.num_conflicts dep);
  Alcotest.(check int) "hmax" 2 (Dependency.hmax dep);
  Alcotest.(check int) "max degree" 2 (Dependency.max_degree dep);
  Alcotest.(check int) "weighted degree" 4 (Dependency.weighted_degree dep);
  Alcotest.(check int) "deg of 2" 2 (Array.length (Dependency.conflicts dep 2));
  Alcotest.(check int) "deg of 0" 1 (Array.length (Dependency.conflicts dep 0))

let test_dependency_no_double_edges () =
  (* Two transactions sharing two objects get one conflict edge. *)
  let i =
    Instance.create ~n:3 ~num_objects:2
      ~txns:[ (0, [ 0; 1 ]); (2, [ 0; 1 ]) ]
      ~home:[| 0; 2 |]
  in
  let dep = Dependency.build line5 i in
  Alcotest.(check int) "one edge" 1 (Dependency.num_conflicts dep)

let test_dependency_empty () =
  let i = Instance.create ~n:3 ~num_objects:1 ~txns:[ (0, [ 0 ]) ] ~home:[| 0 |] in
  let dep = Dependency.build line5 i in
  Alcotest.(check int) "no conflicts" 0 (Dependency.num_conflicts dep);
  Alcotest.(check int) "hmax 0" 0 (Dependency.hmax dep)

let test_dependency_canonical_pair () =
  (* Two objects shared by the same requester pair, listed in opposite
     orders by the two transactions: the pair must collapse to a single
     canonical edge no matter the orientation it is discovered in, with
     symmetric adjacency on both endpoints. *)
  let i =
    Instance.create ~n:5 ~num_objects:2
      ~txns:[ (1, [ 0; 1 ]); (4, [ 1; 0 ]) ]
      ~home:[| 1; 4 |]
  in
  let dep = Dependency.build line5 i in
  Alcotest.(check int) "one canonical edge" 1 (Dependency.num_conflicts dep);
  Alcotest.(check (array (pair int int)))
    "adj of 1" [| (4, 3) |] (Dependency.conflicts dep 1);
  Alcotest.(check (array (pair int int)))
    "adj of 4" [| (1, 3) |] (Dependency.conflicts dep 4)

(* ------------------------------------------------------------------ *)
(* Coloring                                                           *)
(* ------------------------------------------------------------------ *)

let all_strategies = [ ("slotted", Coloring.Slotted); ("compact", Coloring.Compact) ]

let all_orders =
  [
    ("natural", Coloring.Natural);
    ("desc", Coloring.Desc_degree);
    ("random", Coloring.Random_order 42);
  ]

let test_coloring_valid_small () =
  let dep = Dependency.build line5 small_inst in
  List.iter
    (fun (sname, strategy) ->
      List.iter
        (fun (oname, order) ->
          let c = Coloring.greedy ~strategy ~order dep small_inst in
          if not (Coloring.is_valid dep small_inst c.Coloring.colors) then
            Alcotest.failf "invalid coloring for %s/%s" sname oname)
        all_orders)
    all_strategies

let test_coloring_slotted_bound () =
  let dep = Dependency.build line5 small_inst in
  let c = Coloring.greedy ~strategy:Coloring.Slotted dep small_inst in
  Alcotest.(check bool) "within Gamma + 1" true
    (c.Coloring.num_colors <= Dependency.weighted_degree dep + 1)

let test_coloring_compact_not_worse () =
  let dep = Dependency.build line5 small_inst in
  let slotted = Coloring.greedy ~strategy:Coloring.Slotted dep small_inst in
  let compact = Coloring.greedy ~strategy:Coloring.Compact dep small_inst in
  Alcotest.(check bool) "compact <= slotted" true
    (compact.Coloring.num_colors <= slotted.Coloring.num_colors)

let prop_coloring_valid =
  qtest "greedy coloring is valid on random instances" arb_topo_instance
    (fun (topo, inst) ->
      let metric = Topology.metric topo in
      let dep = Dependency.build metric inst in
      List.for_all
        (fun (_, strategy) ->
          List.for_all
            (fun (_, order) ->
              let c = Coloring.greedy ~strategy ~order dep inst in
              Coloring.is_valid dep inst c.Coloring.colors)
            all_orders)
        all_strategies)

let prop_coloring_slotted_gamma =
  qtest "slotted coloring uses <= Gamma + 1 colors" arb_topo_instance
    (fun (topo, inst) ->
      let metric = Topology.metric topo in
      let dep = Dependency.build metric inst in
      let c = Coloring.greedy ~strategy:Coloring.Slotted dep inst in
      c.Coloring.num_colors <= Dependency.weighted_degree dep + 1)

let test_is_valid_rejects_bad () =
  let dep = Dependency.build line5 small_inst in
  (* Nodes 0 and 2 conflict at distance 2; give them colors 1 and 2. *)
  let bad = [| 1; 0; 2; 0; 5 |] in
  Alcotest.(check bool) "rejected" false (Coloring.is_valid dep small_inst bad)

(* ------------------------------------------------------------------ *)
(* Validator                                                          *)
(* ------------------------------------------------------------------ *)

let test_validator_accepts_feasible () =
  (* Object 0 (home 0): t0@1 then t2@3 (distance 2 -> >= 2 apart: 3-1=2 ok).
     Object 1 (home 4): first user by time is t2@3, distance 2 <= 3 ok;
     then t4@5: 5-3=2 >= dist(2,4)=2 ok. *)
  let s = Schedule.of_times [ (0, 1); (2, 3); (4, 5) ] ~n:5 in
  (match Validator.check line5 small_inst s with
  | Ok () -> ()
  | Error v -> Alcotest.failf "unexpected violation: %s" (Validator.explain v));
  Alcotest.(check bool) "is_feasible" true (Validator.is_feasible line5 small_inst s)

let test_validator_rejects_unscheduled () =
  let s = Schedule.of_times [ (0, 1); (2, 3) ] ~n:5 in
  Alcotest.(check bool) "missing txn" false (Validator.is_feasible line5 small_inst s)

let test_validator_rejects_phantom () =
  let s = Schedule.of_times [ (0, 1); (1, 1); (2, 3); (4, 5) ] ~n:5 in
  Alcotest.(check bool) "phantom entry" false (Validator.is_feasible line5 small_inst s)

let test_validator_rejects_too_early_first () =
  (* Object 1 home is node 4; t2 first at time 1 < dist(4,2)=2. *)
  let s = Schedule.of_times [ (0, 1); (2, 1); (4, 5) ] ~n:5 in
  Alcotest.(check bool) "too early" false (Validator.is_feasible line5 small_inst s)

let test_validator_rejects_travel_violation () =
  (* t0@1, t2@2: object 0 needs 2 steps from node 0 to 2. *)
  let s = Schedule.of_times [ (0, 1); (2, 2); (4, 5) ] ~n:5 in
  Alcotest.(check bool) "travel" false (Validator.is_feasible line5 small_inst s)

let test_validator_check_all_counts () =
  let s = Schedule.of_times [ (0, 1); (2, 1); (4, 1) ] ~n:5 in
  let vs = Validator.check_all line5 small_inst s in
  Alcotest.(check bool) "multiple violations" true (List.length vs >= 2)

let test_validator_sequential_always_feasible () =
  (* Scheduling transactions far apart in time is always feasible when
     gaps exceed the diameter. *)
  let diam = Metric.diameter line5 in
  let gap = diam + 1 in
  let s =
    Schedule.of_times
      (List.mapi (fun i v -> (v, (i * gap) + gap)) [ 0; 2; 4 ])
      ~n:5
  in
  Alcotest.(check bool) "sequential feasible" true
    (Validator.is_feasible line5 small_inst s)

(* ------------------------------------------------------------------ *)
(* Greedy schedule + lower bound                                      *)
(* ------------------------------------------------------------------ *)

let test_greedy_small_feasible () =
  let s = Greedy.schedule line5 small_inst in
  match Validator.check line5 small_inst s with
  | Ok () -> ()
  | Error v -> Alcotest.failf "greedy infeasible: %s" (Validator.explain v)

let prop_greedy_feasible =
  qtest ~count:150 "greedy schedule is feasible on all topologies" arb_topo_instance
    (fun (topo, inst) ->
      let metric = Topology.metric topo in
      let s = Greedy.schedule metric inst in
      Validator.is_feasible metric inst s)

let prop_greedy_feasible_all_orders =
  qtest ~count:60 "greedy feasible under all strategies and orders" arb_topo_instance
    (fun (topo, inst) ->
      let metric = Topology.metric topo in
      List.for_all
        (fun (_, strategy) ->
          List.for_all
            (fun (_, order) ->
              Validator.is_feasible metric inst
                (Greedy.schedule ~strategy ~order metric inst))
            all_orders)
        all_strategies)

let prop_lower_bound_below_greedy =
  qtest ~count:150 "certified lower bound <= greedy makespan" arb_topo_instance
    (fun (topo, inst) ->
      let metric = Topology.metric topo in
      let s = Greedy.schedule metric inst in
      Lower_bound.certified metric inst <= Schedule.makespan s)

let test_lower_bound_components () =
  let lb = Lower_bound.compute line5 small_inst in
  Alcotest.(check int) "load" 2 lb.Lower_bound.load;
  (* Object 0: home 0, requesters {0,2}: walk 2.  Object 1: home 4,
     requesters {2,4}: walk 2. *)
  Alcotest.(check int) "max walk" 2 lb.Lower_bound.max_walk;
  Alcotest.(check int) "certified" 2 lb.Lower_bound.certified;
  Alcotest.(check int) "per-object entries" 2 (Array.length lb.Lower_bound.per_object)

let test_lower_bound_no_txn () =
  let i = Instance.create ~n:3 ~num_objects:1 ~txns:[ (0, [ 0 ]) ] ~home:[| 0 |] in
  let lb = Lower_bound.compute line5 i in
  Alcotest.(check int) "single txn certified" 1 lb.Lower_bound.certified

let test_ratio () =
  Alcotest.(check bool) "ratio" true
    (abs_float (Lower_bound.ratio ~makespan:6 ~lower:2 -. 3.0) < 1e-9);
  Alcotest.(check bool) "lower 0 guarded" true
    (abs_float (Lower_bound.ratio ~makespan:6 ~lower:0 -. 6.0) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Cost                                                               *)
(* ------------------------------------------------------------------ *)

let test_cost_communication () =
  let s = Schedule.of_times [ (0, 1); (2, 3); (4, 5) ] ~n:5 in
  (* Object 0: 0->0 (home) then 0->2: 2.  Object 1: 4->2 then 2->4: 4. *)
  let per = Cost.per_object_travel line5 small_inst s in
  Alcotest.(check (array int)) "per object" [| 2; 4 |] per;
  Alcotest.(check int) "total" 6 (Cost.communication line5 small_inst s)

let test_cost_summary_mentions_fields () =
  let s = Schedule.of_times [ (0, 1); (2, 3); (4, 5) ] ~n:5 in
  let str = Cost.summary line5 small_inst s in
  let contains needle =
    let nl = String.length needle and sl = String.length str in
    let rec go i = i + nl <= sl && (String.sub str i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains needle))
    [ "makespan=5"; "comm=6"; "ratio=" ]

(* ------------------------------------------------------------------ *)
(* Serialization                                                      *)
(* ------------------------------------------------------------------ *)

let instances_equal a b =
  Instance.n a = Instance.n b
  && Instance.num_objects a = Instance.num_objects b
  && List.for_all
       (fun v -> Instance.txn_at a v = Instance.txn_at b v)
       (List.init (Instance.n a) Fun.id)
  && List.for_all
       (fun o -> Instance.home a o = Instance.home b o)
       (List.init (Instance.num_objects a) Fun.id)

let test_serial_instance_roundtrip () =
  match Serial.instance_of_string (Serial.instance_to_string small_inst) with
  | Ok i -> Alcotest.(check bool) "equal" true (instances_equal small_inst i)
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let test_serial_schedule_roundtrip () =
  let s = Schedule.of_times [ (0, 1); (2, 3); (4, 5) ] ~n:5 in
  match Serial.schedule_of_string (Serial.schedule_to_string s) with
  | Ok s' ->
    Alcotest.(check int) "capacity" 5 (Schedule.capacity s');
    List.iter
      (fun v -> Alcotest.(check (option int)) "time" (Schedule.time s v) (Schedule.time s' v))
      [ 0; 1; 2; 3; 4 ]
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let test_serial_rejects () =
  Alcotest.(check bool) "empty" true (Serial.instance_of_string "" |> Result.is_error);
  Alcotest.(check bool) "bad header" true
    (Serial.instance_of_string "nonsense v9\nn 3" |> Result.is_error);
  Alcotest.(check bool) "missing home" true
    (Serial.instance_of_string "dtm-instance v1\nn 2\nobjects 1\ntxn 0 0"
    |> Result.is_error);
  Alcotest.(check bool) "bad line" true
    (Serial.schedule_of_string "dtm-schedule v1\nn 2\nwhatever" |> Result.is_error);
  Alcotest.(check bool) "bad int" true
    (Serial.schedule_of_string "dtm-schedule v1\nn 2\nat 0 xyz" |> Result.is_error)

let test_serial_comments () =
  let text =
    "# saved instance\ndtm-instance v1\n\nn 3\nobjects 1\nhome 0 1\n# txns\ntxn 1 0\n"
  in
  match Serial.instance_of_string text with
  | Ok i ->
    Alcotest.(check int) "n" 3 (Instance.n i);
    Alcotest.(check int) "home" 1 (Instance.home i 0)
  | Error e -> Alcotest.failf "parse failed: %s" e

let prop_serial_roundtrip =
  qtest ~count:100 "instance serialization round-trips" arb_topo_instance
    (fun (_, inst) ->
      match Serial.instance_of_string (Serial.instance_to_string inst) with
      | Ok i -> instances_equal inst i
      | Error _ -> false)

let prop_serial_fuzz =
  (* Arbitrary garbage never raises: it parses or returns Error. *)
  qtest ~count:300 "parsers never raise on garbage"
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 200) QCheck.Gen.printable)
    (fun s ->
      (match Serial.instance_of_string s with Ok _ | Error _ -> true)
      && (match Serial.schedule_of_string s with Ok _ | Error _ -> true)
      &&
      match Dtm_graph.Graph_io.of_string s with Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Replication extension: Rw modules                                  *)
(* ------------------------------------------------------------------ *)

(* small_inst with node 2 only reading object 0 and writing object 1. *)
let rw_of_small () =
  Rw_instance.create small_inst ~writes:[ (0, [ 0 ]); (2, [ 1 ]); (4, [ 1 ]) ]

let test_rw_partition () =
  let rw = rw_of_small () in
  Alcotest.(check (array int)) "writers of 0" [| 0 |] (Rw_instance.writers rw 0);
  Alcotest.(check (array int)) "readers of 0" [| 2 |] (Rw_instance.readers rw 0);
  Alcotest.(check (array int)) "writers of 1" [| 2; 4 |] (Rw_instance.writers rw 1);
  Alcotest.(check (array int)) "readers of 1" [||] (Rw_instance.readers rw 1);
  Alcotest.(check bool) "is_write" true (Rw_instance.is_write rw ~node:2 ~obj:1);
  Alcotest.(check bool) "is_read" false (Rw_instance.is_write rw ~node:2 ~obj:0);
  Alcotest.(check int) "write load" 2 (Rw_instance.write_load rw)

let test_rw_create_rejects () =
  let expect msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  expect "Rw_instance.create: node has no transaction" (fun () ->
      ignore (Rw_instance.create small_inst ~writes:[ (1, [ 0 ]) ]));
  expect "Rw_instance.create: written object not requested" (fun () ->
      ignore (Rw_instance.create small_inst ~writes:[ (0, [ 1 ]) ]));
  expect "Rw_instance.create: node listed twice" (fun () ->
      ignore (Rw_instance.create small_inst ~writes:[ (0, [ 0 ]); (0, [ 0 ]) ]))

let test_rw_all_write_matches_base_validator () =
  let rw = Rw_instance.all_write small_inst in
  let good = Schedule.of_times [ (0, 1); (2, 3); (4, 5) ] ~n:5 in
  let bad = Schedule.of_times [ (0, 1); (2, 2); (4, 5) ] ~n:5 in
  Alcotest.(check bool) "accepts like base" true (Rw_validator.is_feasible line5 rw good);
  Alcotest.(check bool) "rejects like base" false (Rw_validator.is_feasible line5 rw bad)

let test_rw_all_write_greedy_identical () =
  let rw = Rw_instance.all_write small_inst in
  let a = Greedy.schedule line5 small_inst in
  let b = Rw_greedy.schedule line5 rw in
  List.iter
    (fun v ->
      Alcotest.(check (option int))
        (Printf.sprintf "time at %d" v)
        (Schedule.time a v) (Schedule.time b v))
    (Schedule.scheduled_nodes a)

let test_rw_readers_share_steps () =
  (* Object 0 read by nodes 0 and 4, never written: both may run at the
     same step (base model would forbid it). *)
  let inst =
    Instance.create ~n:5 ~num_objects:1 ~txns:[ (0, [ 0 ]); (4, [ 0 ]) ]
      ~home:[| 2 |]
  in
  let rw = Rw_instance.create inst ~writes:[] in
  let s = Schedule.of_times [ (0, 2); (4, 2) ] ~n:5 in
  Alcotest.(check bool) "replicated reads concurrent" true
    (Rw_validator.is_feasible line5 rw s);
  Alcotest.(check bool) "base model forbids" false
    (Dtm_core.Validator.is_feasible line5 inst s)

let test_rw_reader_needs_copy_travel () =
  let inst =
    Instance.create ~n:5 ~num_objects:1 ~txns:[ (0, [ 0 ]); (4, [ 0 ]) ]
      ~home:[| 2 |]
  in
  let rw = Rw_instance.create inst ~writes:[] in
  (* Copies start at node 2: node 4 cannot read at step 1. *)
  let too_early = Schedule.of_times [ (0, 2); (4, 1) ] ~n:5 in
  Alcotest.(check bool) "copy travel enforced" false
    (Rw_validator.is_feasible line5 rw too_early)

let test_rw_reader_after_writer () =
  (* Node 0 writes object 0 (home 0) at t=1; node 4 reads it.  The copy
     leaves node 0 at t=1, so the read is legal at t >= 5, illegal at 4
     ... and sharing t=1 is also illegal. *)
  let inst =
    Instance.create ~n:5 ~num_objects:1 ~txns:[ (0, [ 0 ]); (4, [ 0 ]) ]
      ~home:[| 0 |]
  in
  let rw = Rw_instance.create inst ~writes:[ (0, [ 0 ]) ] in
  let legal = Schedule.of_times [ (0, 1); (4, 5) ] ~n:5 in
  let tight = Schedule.of_times [ (0, 1); (4, 4) ] ~n:5 in
  let tied = Schedule.of_times [ (0, 1); (4, 1) ] ~n:5 in
  Alcotest.(check bool) "legal" true (Rw_validator.is_feasible line5 rw legal);
  Alcotest.(check bool) "too tight" false (Rw_validator.is_feasible line5 rw tight);
  Alcotest.(check bool) "tied step" false (Rw_validator.is_feasible line5 rw tied)

let test_rw_read_before_write_from_home () =
  (* A reader scheduled before the writer reads the home version. *)
  let inst =
    Instance.create ~n:5 ~num_objects:1 ~txns:[ (0, [ 0 ]); (4, [ 0 ]) ]
      ~home:[| 4 |]
  in
  let rw = Rw_instance.create inst ~writes:[ (0, [ 0 ]) ] in
  (* Reader at node 4 = home: may run at step 1; writer at node 0 needs
     the master at distance 4, so t >= 4. *)
  let s = Schedule.of_times [ (4, 1); (0, 4) ] ~n:5 in
  Alcotest.(check bool) "reader first" true (Rw_validator.is_feasible line5 rw s)

let test_rw_greedy_feasible_small () =
  let rw = rw_of_small () in
  let s = Rw_greedy.schedule line5 rw in
  match Rw_validator.check line5 rw s with
  | Ok () -> ()
  | Error v -> Alcotest.failf "rw greedy infeasible: %s" (Dtm_core.Validator.explain v)

let test_rw_conflict_pairs () =
  let rw = rw_of_small () in
  (* (0,2) via object 0 (0 writes); (2,4) via object 1 (both write). *)
  Alcotest.(check (list (pair int int))) "pairs" [ (0, 2); (2, 4) ]
    (List.sort compare (Rw_greedy.conflict_pairs rw));
  (* Fully read-only: no pairs at all. *)
  let ro = Rw_instance.create small_inst ~writes:[] in
  Alcotest.(check (list (pair int int))) "no pairs" [] (Rw_greedy.conflict_pairs ro)

let prop_rw_greedy_feasible =
  qtest ~count:100 "rw greedy feasible across topologies and write mixes"
    arb_topo_instance
    (fun (topo, inst) ->
      let metric = Topology.metric topo in
      (* Derive a write mask from the instance deterministically. *)
      let writes =
        Array.to_list (Instance.txn_nodes inst)
        |> List.filter_map (fun v ->
               match Instance.txn_at inst v with
               | None -> None
               | Some objs ->
                 let written =
                   Array.to_list objs |> List.filter (fun o -> (v + o) mod 3 <> 0)
                 in
                 if written = [] then None else Some (v, written))
      in
      let rw = Rw_instance.create inst ~writes in
      Rw_validator.is_feasible metric rw (Rw_greedy.schedule metric rw))

let test_rw_lower_bound_components () =
  let rw = rw_of_small () in
  let lb = Rw_lower_bound.compute line5 rw in
  (* Object 1 has writers {2, 4}: write load 2; master walk from home 4
     through {2, 4} visits 4 for free then travels to 2: length 2.
     Reach: object 0 home 0 to reader 2 = 2, object 1 home 4 to node 2 =
     2. *)
  Alcotest.(check int) "write load" 2 lb.Rw_lower_bound.write_load;
  Alcotest.(check int) "writer walk" 2 lb.Rw_lower_bound.writer_walk;
  Alcotest.(check int) "reach" 2 lb.Rw_lower_bound.reach;
  Alcotest.(check int) "certified" 2 lb.Rw_lower_bound.certified

let prop_rw_lower_bound_below_rw_greedy =
  qtest ~count:100 "rw lower bound <= rw greedy makespan" arb_topo_instance
    (fun (topo, inst) ->
      let metric = Topology.metric topo in
      let writes =
        Array.to_list (Instance.txn_nodes inst)
        |> List.filter_map (fun v ->
               match Instance.txn_at inst v with
               | None -> None
               | Some objs ->
                 let written =
                   Array.to_list objs |> List.filter (fun o -> (v + o) mod 2 = 0)
                 in
                 if written = [] then None else Some (v, written))
      in
      let rw = Rw_instance.create inst ~writes in
      Rw_lower_bound.certified metric rw
      <= Schedule.makespan (Rw_greedy.schedule metric rw))

let test_rw_lb_all_write_leq_base () =
  (* With all accesses writing, the rw bound is at least as strong as...
     at minimum it never exceeds the base certified bound's validity:
     both must sit below the base greedy makespan. *)
  let rw = Rw_instance.all_write small_inst in
  let base = Lower_bound.certified line5 small_inst in
  let rwlb = Rw_lower_bound.certified line5 rw in
  let greedy = Schedule.makespan (Greedy.schedule line5 small_inst) in
  Alcotest.(check bool) "both below greedy" true (base <= greedy && rwlb <= greedy)

let test_rw_cost_counts_copies () =
  (* Object 0: writer at node 0 (home 0), readers at nodes 2 and 4.
     Master never moves after its write; copies travel 2 and 4. *)
  let inst =
    Instance.create ~n:5 ~num_objects:1
      ~txns:[ (0, [ 0 ]); (2, [ 0 ]); (4, [ 0 ]) ]
      ~home:[| 0 |]
  in
  let rw = Rw_instance.create inst ~writes:[ (0, [ 0 ]) ] in
  let s = Schedule.of_times [ (0, 1); (2, 3); (4, 5) ] ~n:5 in
  Alcotest.(check bool) "feasible under replication" true
    (Rw_validator.is_feasible line5 rw s);
  Alcotest.(check (array int)) "traffic" [| 6 |]
    (Rw_cost.per_object_traffic line5 rw s);
  (* Base model must carry the object through all three nodes: 0->2->4. *)
  Alcotest.(check int) "base travel smaller here" 4
    (Cost.communication line5 inst s)

let test_rw_cost_all_write_matches_base () =
  let rw = Rw_instance.all_write small_inst in
  let s = Schedule.of_times [ (0, 1); (2, 3); (4, 5) ] ~n:5 in
  Alcotest.(check int) "same as base communication"
    (Cost.communication line5 small_inst s)
    (Rw_cost.communication line5 rw s)

let test_rw_read_mostly_faster () =
  (* A hot object read by everyone: replication collapses the makespan
     versus the base model where it must visit every node. *)
  let n = 24 in
  let metric = Dtm_topology.Clique.metric n in
  let rng = Dtm_util.Prng.create ~seed:77 in
  let inst = Dtm_workload.Arbitrary.hot_object ~rng ~n ~num_objects:6 ~k:2 in
  let base_mk = Schedule.makespan (Greedy.schedule metric inst) in
  (* Only object 0's first requester writes it; everything else reads. *)
  let rw = Rw_instance.create inst ~writes:[ (0, [ 0 ]) ] in
  let rw_mk = Schedule.makespan (Rw_greedy.schedule metric rw) in
  Alcotest.(check bool) "replication collapses hot object" true (rw_mk * 2 <= base_mk)

let () =
  Alcotest.run "dtm_core"
    [
      ( "instance",
        [
          Alcotest.test_case "accessors" `Quick test_instance_accessors;
          Alcotest.test_case "dedups objects" `Quick test_instance_dedups_objects;
          Alcotest.test_case "rejects malformed" `Quick test_instance_rejects;
          Alcotest.test_case "homes elsewhere" `Quick test_instance_homes_not_at_requesters;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "basic" `Quick test_schedule_basic;
          Alcotest.test_case "rejects bad time" `Quick test_schedule_rejects_bad_time;
          Alcotest.test_case "of_times / order" `Quick test_schedule_of_times_and_order;
          Alcotest.test_case "shift" `Quick test_schedule_shift;
          Alcotest.test_case "copy" `Quick test_schedule_copy_independent;
        ] );
      ( "dependency",
        [
          Alcotest.test_case "small" `Quick test_dependency_small;
          Alcotest.test_case "no double edges" `Quick test_dependency_no_double_edges;
          Alcotest.test_case "empty" `Quick test_dependency_empty;
          Alcotest.test_case "canonical pair" `Quick test_dependency_canonical_pair;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "valid small" `Quick test_coloring_valid_small;
          Alcotest.test_case "slotted bound" `Quick test_coloring_slotted_bound;
          Alcotest.test_case "compact not worse" `Quick test_coloring_compact_not_worse;
          prop_coloring_valid;
          prop_coloring_slotted_gamma;
          Alcotest.test_case "is_valid rejects" `Quick test_is_valid_rejects_bad;
        ] );
      ( "validator",
        [
          Alcotest.test_case "accepts feasible" `Quick test_validator_accepts_feasible;
          Alcotest.test_case "rejects unscheduled" `Quick test_validator_rejects_unscheduled;
          Alcotest.test_case "rejects phantom" `Quick test_validator_rejects_phantom;
          Alcotest.test_case "rejects early first" `Quick test_validator_rejects_too_early_first;
          Alcotest.test_case "rejects travel violation" `Quick test_validator_rejects_travel_violation;
          Alcotest.test_case "check_all counts" `Quick test_validator_check_all_counts;
          Alcotest.test_case "sequential feasible" `Quick test_validator_sequential_always_feasible;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "small feasible" `Quick test_greedy_small_feasible;
          prop_greedy_feasible;
          prop_greedy_feasible_all_orders;
          prop_lower_bound_below_greedy;
        ] );
      ( "lower-bound",
        [
          Alcotest.test_case "components" `Quick test_lower_bound_components;
          Alcotest.test_case "single txn" `Quick test_lower_bound_no_txn;
          Alcotest.test_case "ratio" `Quick test_ratio;
        ] );
      ( "cost",
        [
          Alcotest.test_case "communication" `Quick test_cost_communication;
          Alcotest.test_case "summary" `Quick test_cost_summary_mentions_fields;
        ] );
      ( "serial",
        [
          Alcotest.test_case "instance roundtrip" `Quick test_serial_instance_roundtrip;
          Alcotest.test_case "schedule roundtrip" `Quick test_serial_schedule_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_serial_rejects;
          Alcotest.test_case "comments ignored" `Quick test_serial_comments;
          prop_serial_roundtrip;
          prop_serial_fuzz;
        ] );
      ( "replication",
        [
          Alcotest.test_case "partition" `Quick test_rw_partition;
          Alcotest.test_case "create rejects" `Quick test_rw_create_rejects;
          Alcotest.test_case "all_write validator" `Quick test_rw_all_write_matches_base_validator;
          Alcotest.test_case "all_write greedy identical" `Quick test_rw_all_write_greedy_identical;
          Alcotest.test_case "readers share steps" `Quick test_rw_readers_share_steps;
          Alcotest.test_case "copy travel" `Quick test_rw_reader_needs_copy_travel;
          Alcotest.test_case "reader after writer" `Quick test_rw_reader_after_writer;
          Alcotest.test_case "reader before writer" `Quick test_rw_read_before_write_from_home;
          Alcotest.test_case "rw greedy small" `Quick test_rw_greedy_feasible_small;
          Alcotest.test_case "conflict pairs" `Quick test_rw_conflict_pairs;
          prop_rw_greedy_feasible;
          Alcotest.test_case "rw lower bound" `Quick test_rw_lower_bound_components;
          prop_rw_lower_bound_below_rw_greedy;
          Alcotest.test_case "rw lb vs base" `Quick test_rw_lb_all_write_leq_base;
          Alcotest.test_case "rw cost copies" `Quick test_rw_cost_counts_copies;
          Alcotest.test_case "rw cost all-write" `Quick test_rw_cost_all_write_matches_base;
          Alcotest.test_case "read-mostly faster" `Quick test_rw_read_mostly_faster;
        ] );
    ]
