(* Unit and property tests for the dtm_util substrate. *)

open Dtm_util

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let da = Array.init 32 (fun _ -> Prng.int a 1_000_000) in
  let db = Array.init 32 (fun _ -> Prng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" true (da <> db)

let test_prng_copy_replays () =
  let a = Prng.create ~seed:7 in
  let _ = Prng.int a 10 in
  let b = Prng.copy a in
  let xs = Array.init 50 (fun _ -> Prng.int a 99) in
  let ys = Array.init 50 (fun _ -> Prng.int b 99) in
  Alcotest.(check bool) "copy replays" true (xs = ys)

let test_prng_split_independent () =
  let a = Prng.create ~seed:7 in
  let b = Prng.split a in
  let xs = Array.init 32 (fun _ -> Prng.int a 1_000_000) in
  let ys = Array.init 32 (fun _ -> Prng.int b 1_000_000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_prng_int_in_range () =
  let t = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Prng.int_in_range t ~lo:(-3) ~hi:4 in
    Alcotest.(check bool) "in range" true (x >= -3 && x <= 4)
  done

let test_prng_int_in_range_singleton () =
  let t = Prng.create ~seed:5 in
  Alcotest.(check int) "singleton range" 9 (Prng.int_in_range t ~lo:9 ~hi:9)

let test_sample_subset_basic () =
  let t = Prng.create ~seed:11 in
  for _ = 1 to 200 do
    let k = Prng.int t 10 and n = 10 + Prng.int t 20 in
    let s = Prng.sample_subset t ~k ~n in
    Alcotest.(check int) "size" k (Array.length s);
    Array.iter (fun x -> Alcotest.(check bool) "range" true (x >= 0 && x < n)) s;
    for i = 1 to Array.length s - 1 do
      Alcotest.(check bool) "strictly sorted" true (s.(i - 1) < s.(i))
    done
  done

let test_sample_subset_full () =
  let t = Prng.create ~seed:3 in
  let s = Prng.sample_subset t ~k:8 ~n:8 in
  Alcotest.(check (array int)) "k = n gives all" (Array.init 8 Fun.id) s

let test_sample_subset_empty () =
  let t = Prng.create ~seed:3 in
  Alcotest.(check int) "k = 0 empty" 0 (Array.length (Prng.sample_subset t ~k:0 ~n:5))

let test_sample_subset_uniformish () =
  (* Each element of [0, n) should appear with frequency ~ k/n. *)
  let t = Prng.create ~seed:13 in
  let n = 10 and k = 3 and trials = 3000 in
  let counts = Array.make n 0 in
  for _ = 1 to trials do
    Array.iter (fun x -> counts.(x) <- counts.(x) + 1) (Prng.sample_subset t ~k ~n)
  done;
  let expected = float_of_int (trials * k) /. float_of_int n in
  Array.iter
    (fun c ->
      let dev = abs_float (float_of_int c -. expected) /. expected in
      Alcotest.(check bool) "within 15% of uniform" true (dev < 0.15))
    counts

let test_permutation () =
  let t = Prng.create ~seed:17 in
  let p = Prng.permutation t 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_shuffle_preserves_multiset () =
  let t = Prng.create ~seed:19 in
  let a = [| 3; 1; 4; 1; 5; 9; 2; 6 |] in
  let b = Array.copy a in
  Prng.shuffle t b;
  let sa = Array.copy a and sb = Array.copy b in
  Array.sort compare sa;
  Array.sort compare sb;
  Alcotest.(check (array int)) "multiset preserved" sa sb

(* ------------------------------------------------------------------ *)
(* Pqueue                                                             *)
(* ------------------------------------------------------------------ *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q ~prio:p p) [ 5; 3; 8; 1; 9; 2; 7 ];
  let out = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | None -> ()
    | Some (p, _) ->
      out := p :: !out;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 5; 7; 8; 9 ] (List.rev !out)

let test_pqueue_empty () =
  let q : int Pqueue.t = Pqueue.create () in
  Alcotest.(check bool) "is_empty" true (Pqueue.is_empty q);
  Alcotest.(check bool) "pop none" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek none" true (Pqueue.peek q = None)

let test_pqueue_peek () =
  let q = Pqueue.create () in
  Pqueue.push q ~prio:4 "d";
  Pqueue.push q ~prio:2 "b";
  Alcotest.(check bool) "peek min" true (Pqueue.peek q = Some (2, "b"));
  Alcotest.(check int) "length" 2 (Pqueue.length q)

let test_pqueue_clear () =
  let q = Pqueue.create () in
  Pqueue.push q ~prio:1 ();
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

let test_pqueue_pop_exn () =
  let q : unit Pqueue.t = Pqueue.create () in
  Alcotest.check_raises "pop_exn empty" (Invalid_argument "Pqueue.pop_exn: empty queue")
    (fun () -> ignore (Pqueue.pop_exn q))

let prop_pqueue_sorts =
  qtest "pqueue drains any list sorted"
    QCheck.(list small_int)
    (fun xs ->
      let q = Pqueue.create () in
      List.iter (fun x -> Pqueue.push q ~prio:x x) xs;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Union_find                                                         *)
(* ------------------------------------------------------------------ *)

let test_uf_basic () =
  let uf = Union_find.create 6 in
  Alcotest.(check int) "initial count" 6 (Union_find.count uf);
  Alcotest.(check bool) "union new" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "union dup" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  Alcotest.(check int) "count after" 5 (Union_find.count uf)

let test_uf_transitive () =
  let uf = Union_find.create 10 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  ignore (Union_find.union uf 2 3);
  Alcotest.(check bool) "transitive" true (Union_find.same uf 0 3);
  Alcotest.(check int) "count" 7 (Union_find.count uf)

let prop_uf_count =
  qtest "union-find count equals number of components"
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let uf = Union_find.create 20 in
      let merges =
        List.fold_left
          (fun acc (a, b) -> if Union_find.union uf a b then acc + 1 else acc)
          0 pairs
      in
      Union_find.count uf = 20 - merges)

(* ------------------------------------------------------------------ *)
(* Bitset                                                             *)
(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 99;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "mem 64" true (Bitset.mem b 64);
  Alcotest.(check bool) "not mem 1" false (Bitset.mem b 1);
  Bitset.remove b 63;
  Alcotest.(check bool) "removed" false (Bitset.mem b 63);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 64; 99 ] (Bitset.to_list b)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "out of bounds" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.add b 10)

let test_bitset_union_inter () =
  let a = Bitset.of_list 50 [ 1; 2; 3; 40 ] in
  let b = Bitset.of_list 50 [ 2; 3; 4 ] in
  Alcotest.(check int) "inter" 2 (Bitset.inter_cardinal a b);
  Bitset.union_into a b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 40 ] (Bitset.to_list a)

let test_bitset_copy_independent () =
  let a = Bitset.of_list 10 [ 1 ] in
  let b = Bitset.copy a in
  Bitset.add b 2;
  Alcotest.(check bool) "original untouched" false (Bitset.mem a 2);
  Alcotest.(check bool) "copy has it" true (Bitset.mem b 2)

let test_bitset_clear () =
  let a = Bitset.of_list 10 [ 1; 5 ] in
  Bitset.clear a;
  Alcotest.(check bool) "cleared" true (Bitset.is_empty a)

let prop_bitset_models_set =
  qtest "bitset agrees with a reference set"
    QCheck.(list (int_bound 63))
    (fun xs ->
      let b = Bitset.create 64 in
      List.iter (Bitset.add b) xs;
      let reference = List.sort_uniq compare xs in
      Bitset.to_list b = reference && Bitset.cardinal b = List.length reference)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let test_stats_mean () =
  Alcotest.(check bool) "mean" true (feq (Stats.mean [| 1.0; 2.0; 3.0 |]) 2.0)

let test_stats_stddev () =
  Alcotest.(check bool) "stddev of constants" true (feq (Stats.stddev [| 4.0; 4.0; 4.0 |]) 0.0);
  Alcotest.(check bool) "stddev" true (feq (Stats.stddev [| 2.0; 4.0 |]) (sqrt 2.0))

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check bool) "p0" true (feq (Stats.percentile xs 0.0) 1.0);
  Alcotest.(check bool) "p100" true (feq (Stats.percentile xs 100.0) 4.0);
  Alcotest.(check bool) "median" true (feq (Stats.median xs) 2.5)

let test_stats_geomean () =
  Alcotest.(check bool) "geomean" true (feq (Stats.geometric_mean [| 1.0; 4.0 |]) 2.0)

let test_stats_linreg () =
  let slope, intercept =
    Stats.linear_regression [| (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) |]
  in
  Alcotest.(check bool) "slope" true (feq slope 2.0);
  Alcotest.(check bool) "intercept" true (feq intercept 1.0)

let test_stats_log2_slope () =
  (* y = x^2 has log-log slope 2. *)
  let pts = Array.init 8 (fun i ->
      let x = float_of_int (i + 1) in
      (x, x *. x))
  in
  Alcotest.(check bool) "exponent 2" true (feq ~eps:1e-6 (Stats.log2_slope pts) 2.0)

let test_stats_histogram () =
  let h = Stats.histogram [| 0.0; 0.1; 0.9; 1.0 |] ~bins:2 in
  Alcotest.(check int) "bins" 2 (Array.length h);
  Alcotest.(check int) "bin0" 2 (snd h.(0));
  Alcotest.(check int) "bin1" 2 (snd h.(1))

let test_stats_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 2.0 |] in
  Alcotest.(check bool) "min" true (feq lo (-1.0));
  Alcotest.(check bool) "max" true (feq hi 3.0)

(* ------------------------------------------------------------------ *)
(* Stats.Window                                                       *)
(* ------------------------------------------------------------------ *)

let test_window_known_distribution () =
  (* 1..100 shuffled: nearest-rank percentiles are exact order
     statistics, so p50 = 50, p99 = 99, p99.9 = 100. *)
  let w = Stats.Window.create 128 in
  let xs = Array.init 100 (fun i -> i + 1) in
  let rng = Dtm_util.Prng.create ~seed:11 in
  Dtm_util.Prng.shuffle rng xs;
  Array.iter (Stats.Window.add w) xs;
  Alcotest.(check int) "p50" 50 (Stats.Window.p50 w);
  Alcotest.(check int) "p99" 99 (Stats.Window.p99 w);
  Alcotest.(check int) "p999" 100 (Stats.Window.p999 w);
  Alcotest.(check int) "p0 -> min" 1 (Stats.Window.percentile w 0.0);
  Alcotest.(check int) "p100 -> max" 100 (Stats.Window.percentile w 100.0);
  Alcotest.(check int) "max_sample" 100 (Stats.Window.max_sample w);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Stats.Window.mean w)

let test_window_nearest_rank () =
  (* [1; 2; 3; 4]: rank ceil(p/100 * 4), a sample that occurred. *)
  let w = Stats.Window.create 8 in
  List.iter (Stats.Window.add w) [ 4; 2; 1; 3 ];
  Alcotest.(check int) "p25" 1 (Stats.Window.percentile w 25.0);
  Alcotest.(check int) "p50" 2 (Stats.Window.percentile w 50.0);
  Alcotest.(check int) "p51" 3 (Stats.Window.percentile w 51.0);
  Alcotest.(check int) "p75" 3 (Stats.Window.percentile w 75.0);
  Alcotest.(check int) "p76" 4 (Stats.Window.percentile w 76.0)

let test_window_rollover () =
  (* Capacity 10, samples 1..25: the window holds 16..25. *)
  let w = Stats.Window.create 10 in
  for i = 1 to 25 do
    Stats.Window.add w i
  done;
  Alcotest.(check int) "length" 10 (Stats.Window.length w);
  Alcotest.(check int) "total" 25 (Stats.Window.total w);
  Alcotest.(check int) "capacity" 10 (Stats.Window.capacity w);
  Alcotest.(check int) "p50 of 16..25" 20 (Stats.Window.p50 w);
  Alcotest.(check int) "p99 of 16..25" 25 (Stats.Window.p99 w);
  Alcotest.(check int) "min survivor" 16 (Stats.Window.percentile w 0.0);
  Alcotest.(check int) "max_sample" 25 (Stats.Window.max_sample w)

let test_window_edge_cases () =
  let w = Stats.Window.create 4 in
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.Window.percentile: empty") (fun () ->
      ignore (Stats.Window.p50 w));
  Stats.Window.add w 7;
  Alcotest.(check int) "single p50" 7 (Stats.Window.p50 w);
  Alcotest.(check int) "single p999" 7 (Stats.Window.p999 w);
  Stats.Window.clear w;
  Alcotest.(check int) "cleared length" 0 (Stats.Window.length w);
  Alcotest.(check int) "cleared total" 0 (Stats.Window.total w);
  List.iter (Stats.Window.add w) [ 5; 5; 5; 5 ];
  Alcotest.(check int) "all-equal p50" 5 (Stats.Window.p50 w);
  Alcotest.(check int) "all-equal p999" 5 (Stats.Window.p999 w);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.Window.percentile: p out of range") (fun () ->
      ignore (Stats.Window.percentile w 101.0));
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Stats.Window.create: capacity <= 0") (fun () ->
      ignore (Stats.Window.create 0))

let test_window_merge () =
  (* Two windows with disjoint samples: the merge holds all of them and
     the percentiles are over the union. *)
  let a = Stats.Window.create 8 and b = Stats.Window.create 8 in
  List.iter (Stats.Window.add a) [ 1; 3; 5 ];
  List.iter (Stats.Window.add b) [ 2; 4 ];
  let m = Stats.Window.merge ~capacity:16 [ a; b ] in
  Alcotest.(check int) "length" 5 (Stats.Window.length m);
  Alcotest.(check int) "total" 5 (Stats.Window.total m);
  Alcotest.(check int) "p50" 3 (Stats.Window.p50 m);
  Alcotest.(check int) "max" 5 (Stats.Window.max_sample m);
  (* A rolled-over source: live samples replay oldest-first and the
     rolled-out count carries into [total]. *)
  let c = Stats.Window.create 4 in
  for i = 1 to 10 do
    Stats.Window.add c i
  done;
  (* c holds 7..10 with total 10 *)
  let m2 = Stats.Window.merge ~capacity:3 [ c ] in
  Alcotest.(check int) "rolled length" 3 (Stats.Window.length m2);
  Alcotest.(check int) "rolled total" 10 (Stats.Window.total m2);
  (* capacity 3 keeps the most recent of c's live samples: 8, 9, 10 *)
  Alcotest.(check int) "rolled min" 8 (Stats.Window.percentile m2 0.0);
  Alcotest.(check int) "rolled max" 10 (Stats.Window.max_sample m2);
  let e = Stats.Window.merge ~capacity:2 [] in
  Alcotest.(check int) "empty merge" 0 (Stats.Window.length e)

(* Merging k windows = feeding one window the concatenation of their
   live sample sequences (oldest-first), for any capacities. *)
let prop_window_merge_is_concat =
  qtest ~count:200 "Window.merge = concat replay"
    QCheck.(
      pair (int_range 1 12)
        (small_list (pair (int_range 1 8) (small_list small_int))))
    (fun (cap, specs) ->
      let windows =
        List.map
          (fun (c, xs) ->
            let w = Stats.Window.create c in
            List.iter (Stats.Window.add w) xs;
            (w, xs))
          specs
      in
      let merged = Stats.Window.merge ~capacity:cap (List.map fst windows) in
      (* Rebuild the expected live sequences directly from the inputs:
         a window of capacity c fed xs holds the last min(c, len xs)
         samples, oldest first. *)
      let replay = Stats.Window.create cap in
      let replayed_total = ref 0 in
      List.iter
        (fun (c, xs) ->
          let n = List.length xs in
          let live = max 0 (n - c) in
          List.iteri
            (fun i x -> if i >= live then Stats.Window.add replay x)
            xs;
          replayed_total := !replayed_total + live)
        specs;
      let same_samples =
        Stats.Window.length merged = Stats.Window.length replay
        && (Stats.Window.length merged = 0
           || List.for_all
                (fun p ->
                  Stats.Window.percentile merged p
                  = Stats.Window.percentile replay p)
                [ 0.0; 25.0; 50.0; 75.0; 99.0; 100.0 ])
      in
      same_samples
      && Stats.Window.total merged
         = Stats.Window.total replay + !replayed_total)

(* ------------------------------------------------------------------ *)
(* Table                                                              *)
(* ------------------------------------------------------------------ *)

let test_table_renders () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  (* Right-aligned numeric column: "22" ends its line. *)
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 5 (List.length lines)

let test_table_mismatch () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "cell count" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_table_csv () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("v", Table.Right) ] in
  Table.add_row t [ "plain"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "needs, quoting"; "say \"hi\"" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv"
    "name,v\nplain,1\n\"needs, quoting\",\"say \"\"hi\"\"\"\n" csv

let test_table_cells () =
  Alcotest.(check string) "int cell" "42" (Table.cell_int 42);
  Alcotest.(check string) "float cell" "3.14" (Table.cell_float ~decimals:2 3.14159)

let () =
  Alcotest.run "dtm_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy replays" `Quick test_prng_copy_replays;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "int_in_range" `Quick test_prng_int_in_range;
          Alcotest.test_case "int_in_range singleton" `Quick test_prng_int_in_range_singleton;
          Alcotest.test_case "sample_subset basic" `Quick test_sample_subset_basic;
          Alcotest.test_case "sample_subset full" `Quick test_sample_subset_full;
          Alcotest.test_case "sample_subset empty" `Quick test_sample_subset_empty;
          Alcotest.test_case "sample_subset uniform-ish" `Slow test_sample_subset_uniformish;
          Alcotest.test_case "permutation" `Quick test_permutation;
          Alcotest.test_case "shuffle multiset" `Quick test_shuffle_preserves_multiset;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "pop order" `Quick test_pqueue_order;
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          Alcotest.test_case "peek" `Quick test_pqueue_peek;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          Alcotest.test_case "pop_exn" `Quick test_pqueue_pop_exn;
          prop_pqueue_sorts;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basic" `Quick test_uf_basic;
          Alcotest.test_case "transitive" `Quick test_uf_transitive;
          prop_uf_count;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "union/inter" `Quick test_bitset_union_inter;
          Alcotest.test_case "copy independent" `Quick test_bitset_copy_independent;
          Alcotest.test_case "clear" `Quick test_bitset_clear;
          prop_bitset_models_set;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "geometric mean" `Quick test_stats_geomean;
          Alcotest.test_case "linear regression" `Quick test_stats_linreg;
          Alcotest.test_case "log2 slope" `Quick test_stats_log2_slope;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "min_max" `Quick test_stats_min_max;
          Alcotest.test_case "window known distribution" `Quick
            test_window_known_distribution;
          Alcotest.test_case "window nearest rank" `Quick
            test_window_nearest_rank;
          Alcotest.test_case "window rollover" `Quick test_window_rollover;
          Alcotest.test_case "window edge cases" `Quick test_window_edge_cases;
          Alcotest.test_case "window merge" `Quick test_window_merge;
          prop_window_merge_is_concat;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders" `Quick test_table_renders;
          Alcotest.test_case "cell mismatch" `Quick test_table_mismatch;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "cell formatting" `Quick test_table_cells;
        ] );
    ]
