(* The executable STM runtime, property-checked:

     - conservation: starts = commits + aborts, every transaction
       commits exactly once, and the summed final object values equal
       the summed write-set sizes (zero lost commits) — across domain
       counts and every contention manager,
     - serializability: each committed run's version history is a
       conflict-serializable order — checked structurally (every
       object's write versions are a gap-free 1..k chain and the
       reads-from/version-order graph is acyclic) and through the
       existing DTM115 trace lint on a synthetic one-txn-per-node
       instance,
     - the acceptance-scale run: 10^5 transactions across 8 domains
       with zero lost commits,
     - contention-manager algebra: symmetric verdicts, age monotony,
       backoff delay ranges,
     - Spearman rank correlation (the validation harness's metric). *)

module Policy = Dtm_online.Policy
module Prng = Dtm_util.Prng
module Stats = Dtm_util.Stats
module Injection = Dtm_workload.Injection
module Desc = Dtm_stm.Desc
module Tvar = Dtm_stm.Tvar
module Cm = Dtm_stm.Cm
module Runtime = Dtm_stm.Runtime
module Validate = Dtm_stm.Validate

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let seed_gen = QCheck.int_range 0 1_000_000

let policies =
  [
    Policy.Timestamp { preemption = true };
    Policy.Timestamp { preemption = false };
    Policy.Window_greedy { window = 8; seed = 3 };
    Policy.Backoff { seed = 11; limit = 6 };
    Policy.Random_grant 7;
    Policy.Nearest;
  ]

(* Seed-derived random workload: a handful of nodes, few objects (so
   conflicts actually happen), mixed read/write sets. *)
let random_workload ~seed =
  let rng = Prng.create ~seed in
  let range lo hi = Prng.int_in_range rng ~lo ~hi in
  let txns = range 5 60 in
  let num_objects = range 2 10 in
  let distinct k =
    let k = min k num_objects in
    let rec draw acc k =
      if k = 0 then acc
      else
        let o = range 0 (num_objects - 1) in
        if List.mem o acc then draw acc k else draw (o :: acc) (k - 1)
    in
    Array.of_list (draw [] k)
  in
  let specs =
    Array.init txns (fun _ ->
        {
          Runtime.node = range 0 7;
          writes = distinct (range 1 3);
          reads = distinct (range 0 2);
          arrival = range 1 20;
          work = range 0 200;
        })
  in
  (num_objects, specs)

(* Structural serializability lives in Validate (shared with the CLI
   verdict); here we alias it and cross-check against DTM115 below. *)
let serializable = Validate.log_serializable

(* ----- DTM115: feed the committed order through the trace lint ----- *)

let dtm115_ok ~num_objects records =
  let with_writes =
    Array.of_list
      (List.filter
         (fun (r : Runtime.commit_record) -> Array.length r.Runtime.write_set > 0)
         (Array.to_list records))
  in
  let n = Array.length with_writes in
  if n = 0 then true
  else begin
    (* Synthetic instance: committed transaction i lives at node i of a
       line; commit step = 2 + seq keeps every time distinct and >= 1. *)
    let txns =
      Array.to_list
        (Array.mapi
           (fun i (r : Runtime.commit_record) ->
             (i, Array.to_list (Array.map fst r.Runtime.write_set)))
           with_writes)
    in
    let inst =
      Dtm_core.Instance.create ~n ~num_objects ~txns
        ~home:(Array.make num_objects 0)
    in
    let commits =
      Dtm_core.Schedule.of_times (List.init n (fun i -> (i, 2 + i))) ~n
    in
    let graph = Dtm_topology.Line.graph n in
    let metric = Dtm_topology.Line.oracle n in
    let findings =
      Dtm_analysis.Trace_lint.check ~graph ~metric inst ~commits
        (Dtm_sim.Trace.of_events [])
    in
    not
      (List.exists
         (fun d ->
           d.Dtm_analysis.Diagnostic.code = Dtm_analysis.Code.Trace_unserializable)
         findings)
  end

(* ----- unit tests ----- *)

let test_tvar_basics () =
  let tv = Tvar.create ~id:0 42 in
  Alcotest.(check (pair int int)) "initial" (0, 42) (Tvar.read tv);
  let d = Desc.make ~tid:0 ~birth:1 in
  Alcotest.(check bool) "active" true (Desc.is_active d);
  Alcotest.(check bool) "commit" true (Desc.try_commit d);
  Alcotest.(check bool) "re-abort fails" false (Desc.try_abort d)

let test_sequential_counter () =
  let specs =
    Array.init 100 (fun i ->
        {
          Runtime.node = 0;
          reads = [||];
          writes = [| 0 |];
          arrival = 1 + i;
          work = 0;
        })
  in
  let rep, records = Runtime.run ~record:true ~domains:1 ~num_objects:1 specs in
  Alcotest.(check int) "commits" 100 rep.Runtime.commits;
  Alcotest.(check int) "aborts" 0 rep.Runtime.aborts;
  Alcotest.(check int) "final value" 100 rep.Runtime.total_increments;
  Alcotest.(check bool) "conserved" true (Validate.conserved rep specs);
  Alcotest.(check int) "records" 100 (Array.length records);
  Array.iteri
    (fun i r -> Alcotest.(check int) "seq dense" i r.Runtime.seq)
    records;
  Alcotest.(check bool) "serializable" true (serializable records);
  Alcotest.(check bool) "dtm115" true (dtm115_ok ~num_objects:1 records)

let test_cm_algebra () =
  let a = Desc.make ~tid:0 ~birth:1 and b = Desc.make ~tid:1 ~birth:5 in
  let greedy = Cm.of_policy (Policy.Timestamp { preemption = true }) in
  (match greedy.Cm.resolve ~self:a ~other:b ~attempt:0 with
  | Cm.Abort_other -> ()
  | _ -> Alcotest.fail "older self must win");
  (match greedy.Cm.resolve ~self:b ~other:a ~attempt:0 with
  | Cm.Abort_self -> ()
  | _ -> Alcotest.fail "younger self must lose");
  let random = Cm.of_policy (Policy.Random_grant 3) in
  let verdict ~self ~other =
    match random.Cm.resolve ~self ~other ~attempt:0 with
    | Cm.Abort_other -> `Win
    | Cm.Abort_self -> `Lose
    | Cm.Wait _ -> `Wait
  in
  (match (verdict ~self:a ~other:b, verdict ~self:b ~other:a) with
  | `Win, `Lose | `Lose, `Win -> ()
  | _ -> Alcotest.fail "random verdicts must be antisymmetric");
  let bo = Cm.of_policy (Policy.Backoff { seed = 1; limit = 4 }) in
  for attempt = 0 to 3 do
    match bo.Cm.resolve ~self:a ~other:b ~attempt with
    | Cm.Wait d ->
      if d < 1 || d > 1 lsl attempt then
        Alcotest.failf "backoff delay %d out of range at attempt %d" d attempt
    | _ -> Alcotest.fail "backoff must wait below its limit"
  done;
  match bo.Cm.resolve ~self:a ~other:b ~attempt:4 with
  | Cm.Abort_other -> ()
  | _ -> Alcotest.fail "backoff must claim after limit"

let test_backoff_delay_range () =
  for attempt = 0 to 12 do
    let d = Policy.backoff_delay ~seed:9 ~id:17 ~attempt ~limit:8 in
    let cap = 1 lsl min attempt 8 in
    if d < 1 || d > cap then
      Alcotest.failf "delay %d outside [1, %d]" d cap
  done

let test_spearman () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "identity" 1.0 (Stats.spearman x x);
  Alcotest.(check (float 1e-9))
    "reversal" (-1.0)
    (Stats.spearman x [| 9.0; 7.0; 5.0; 3.0 |]);
  Alcotest.(check (float 1e-9))
    "constant side" 0.0
    (Stats.spearman x [| 2.0; 2.0; 2.0; 2.0 |]);
  (* Monotone but nonlinear is still rank-perfect. *)
  Alcotest.(check (float 1e-9))
    "monotone" 1.0
    (Stats.spearman x [| 1.0; 10.0; 100.0; 1000.0 |])

(* ----- properties ----- *)

let prop_conservation =
  qtest ~count:25 "conservation across domains and managers" seed_gen
    (fun seed ->
      let num_objects, specs = random_workload ~seed in
      List.for_all
        (fun policy ->
          List.for_all
            (fun domains ->
              let rep, _ =
                Runtime.run ~cm:(Cm.of_policy policy) ~domains ~num_objects
                  specs
              in
              Validate.conserved rep specs)
            [ 1; 2; 4 ])
        policies)

let prop_serializable =
  qtest ~count:25 "committed runs are serializable (structural + DTM115)"
    seed_gen (fun seed ->
      let num_objects, specs = random_workload ~seed in
      List.for_all
        (fun policy ->
          let _, records =
            Runtime.run ~record:true ~cm:(Cm.of_policy policy) ~domains:4
              ~num_objects specs
          in
          serializable records && dtm115_ok ~num_objects records)
        policies)

(* The acceptance-scale run: 10^5 transactions, 8 domains, low
   contention, zero lost commits, serializable commit log. *)
let test_hundred_k_eight_domains () =
  let rng = Prng.create ~seed:42 in
  let num_objects = 4096 in
  let specs =
    Array.init 100_000 (fun i ->
        let o1 = Prng.int_in_range rng ~lo:0 ~hi:(num_objects - 1) in
        let o2 = Prng.int_in_range rng ~lo:0 ~hi:(num_objects - 1) in
        {
          Runtime.node = i land 255;
          reads = [||];
          writes = (if o1 = o2 then [| o1 |] else [| o1; o2 |]);
          arrival = 1 + (i / 64);
          work = 0;
        })
  in
  let rep, records =
    Runtime.run ~record:true
      ~cm:(Cm.of_policy (Policy.Timestamp { preemption = true }))
      ~domains:8 ~num_objects specs
  in
  Alcotest.(check int) "all commit" 100_000 rep.Runtime.commits;
  Alcotest.(check bool) "conserved" true (Validate.conserved rep specs);
  Alcotest.(check bool) "serializable" true (serializable records)

let test_validation_harness () =
  let spec =
    {
      Injection.n = 32;
      num_objects = 16;
      k = 2;
      rate = 0.5;
      burst = 1;
      dist = Injection.Uniform_objects;
      seed = 1;
    }
  in
  let metric = Dtm_topology.Clique.metric 32 in
  let row =
    Validate.policy_row ~domains:2 ~work_target_ns:200.0 ~metric ~spec
      ~count:200 ~seeds:[ 1; 2; 3; 4 ]
      (Policy.Timestamp { preemption = true })
  in
  Alcotest.(check int) "four samples" 4 (Array.length row.Validate.samples);
  Array.iter
    (fun s ->
      Alcotest.(check int) "sample commits" 200 s.Validate.commits;
      Alcotest.(check bool) "sim ran" true (s.Validate.sim_makespan > 0))
    row.Validate.samples;
  Alcotest.(check bool) "correlation in range" true
    (row.Validate.correlation >= -1.0 && row.Validate.correlation <= 1.0);
  let curve =
    Validate.speedup_curve ~work_target_ns:200.0 ~metric ~spec ~count:200
      ~domains_list:[ 1; 2 ]
      (Policy.Timestamp { preemption = true })
  in
  (match curve with
  | [ one; two ] ->
    Alcotest.(check int) "first point" 1 one.Validate.p_domains;
    Alcotest.(check (float 1e-9)) "baseline speedup" 1.0 one.Validate.p_speedup;
    Alcotest.(check bool) "positive speedup" true (two.Validate.p_speedup > 0.0)
  | _ -> Alcotest.fail "two points expected");
  ignore
    (Validate.sim_makespan ~policy:(Policy.Backoff { seed = 2; limit = 5 })
       ~metric ~spec ~count:50 ())

let test_of_injection () =
  let spec =
    {
      Injection.n = 16;
      num_objects = 8;
      k = 2;
      rate = 1.0;
      burst = 1;
      dist = Injection.Uniform_objects;
      seed = 5;
    }
  in
  let metric = Dtm_topology.Line.metric 16 in
  let w = Runtime.of_injection ~work_scale:3 ~metric ~spec ~count:64 () in
  Alcotest.(check int) "count" 64 (Array.length w);
  Array.iter
    (fun s ->
      Alcotest.(check bool) "arrival >= 1" true (s.Runtime.arrival >= 1);
      Alcotest.(check bool) "work positive" true (s.Runtime.work >= 3);
      Alcotest.(check int) "all-write" 0 (Array.length s.Runtime.reads))
    w;
  (* Same spec, same draw: materializing twice replays identically. *)
  let w' = Runtime.of_injection ~work_scale:3 ~metric ~spec ~count:64 () in
  Alcotest.(check bool) "replay" true (w = w')

let () =
  Alcotest.run "dtm_stm"
    [
      ( "stm",
        [
          Alcotest.test_case "tvar+desc basics" `Quick test_tvar_basics;
          Alcotest.test_case "sequential counter" `Quick test_sequential_counter;
          Alcotest.test_case "cm algebra" `Quick test_cm_algebra;
          Alcotest.test_case "backoff delay range" `Quick
            test_backoff_delay_range;
          Alcotest.test_case "spearman" `Quick test_spearman;
          prop_conservation;
          prop_serializable;
          Alcotest.test_case "1e5 txns on 8 domains" `Slow
            test_hundred_k_eight_domains;
          Alcotest.test_case "validation harness" `Slow test_validation_harness;
          Alcotest.test_case "of_injection" `Quick test_of_injection;
        ] );
    ]
