(* Landmark (ALT) oracle: exactness, bound soundness, and the large-n
   scaling contract.

   The oracle's whole claim is "exact distances without the n^2 table":
   the QCheck layer pins [Landmark.dist] to Dijkstra/APSP on random
   instances of all seven paper topologies (so the goal-directed
   pruning, the tie-break key and the per-domain cache never drift from
   the reference), checks the O(L) bracket around every distance, and a
   smoke test runs an n=10^5 grid end-to-end — build, queries, and a
   streamed open-system run — under wall-clock and live-heap bounds
   that an n^2 matrix (~40 GB) could not meet. *)

module Graph = Dtm_graph.Graph
module Metric = Dtm_graph.Metric
module Landmark = Dtm_graph.Landmark
module Apsp = Dtm_graph.Apsp
module Topology = Dtm_topology.Topology
module Prng = Dtm_util.Prng

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let seed_gen = QCheck.int_range 0 1_000_000

(* Same seven families as test_props, drawn smaller: exactness is
   checked against full APSP, so instances stay a few hundred nodes. *)
let seven_topologies rng =
  let range lo hi = Prng.int_in_range rng ~lo ~hi in
  [
    Topology.Clique (range 4 24);
    Topology.Line (range 4 32);
    Topology.Grid { rows = range 2 5; cols = range 2 5 };
    Topology.Cluster
      {
        Dtm_topology.Cluster.clusters = range 2 4;
        size = range 2 5;
        bridge_weight = range 2 8;
      };
    Topology.Hypercube { dim = range 2 4 };
    Topology.Butterfly { dim = range 2 3 };
    Topology.Star { Dtm_topology.Star.rays = range 2 5; ray_len = range 1 6 };
  ]

let for_all_topologies seed check =
  let rng = Prng.create ~seed in
  List.for_all
    (fun topo ->
      let g = Topology.graph topo in
      let landmarks = 1 + Prng.int rng 6 in
      check ~rng g (Landmark.build ~landmarks g))
    (seven_topologies rng)

let prop_landmark_exact =
  qtest "landmark dist = Dijkstra/APSP on all 7 topologies" seed_gen
    (fun seed ->
      for_all_topologies seed (fun ~rng:_ g lm ->
          let reference = Apsp.distances g in
          let n = Graph.n g in
          let ok = ref true in
          for u = 0 to n - 1 do
            for v = 0 to n - 1 do
              if Landmark.dist lm u v <> reference.(u).(v) then ok := false
            done
          done;
          !ok))

let prop_landmark_bounds_sound =
  qtest "landmark lower <= dist <= upper on all 7 topologies" seed_gen
    (fun seed ->
      for_all_topologies seed (fun ~rng:_ g lm ->
          let reference = Apsp.distances g in
          let n = Graph.n g in
          let ok = ref true in
          for u = 0 to n - 1 do
            for v = 0 to n - 1 do
              let d = reference.(u).(v) in
              if Landmark.lower_bound lm u v > d then ok := false;
              if d > Landmark.upper_bound lm u v then ok := false
            done
          done;
          !ok))

(* The Metric wrapper must agree with the oracle it wraps, and
   [materialize] must leave it alone (the table it would build is the
   thing the backend exists to avoid). *)
let prop_metric_backend_consistent =
  qtest "Metric.of_landmark backend is consistent" seed_gen (fun seed ->
      for_all_topologies seed (fun ~rng g lm ->
          let m = Metric.of_landmark lm in
          let mm = Metric.materialize m in
          Metric.is_landmark m
          && Metric.is_landmark mm
          && (not (Metric.is_flat m))
          &&
          let n = Graph.n g in
          let ok = ref true in
          for _ = 1 to 50 do
            let u = Prng.int rng n and v = Prng.int rng n in
            let d = Metric.dist m u v in
            if d <> Landmark.dist lm u v then ok := false;
            if Metric.lower_bound m u v > d then ok := false;
            if d > Metric.upper_bound m u v then ok := false
          done;
          !ok))

(* Router rows are the PR 5 freeze lifecycle reused as a landmark
   store: the metric it exports must be the same exact oracle. *)
let prop_router_landmark_metric =
  qtest "Router.landmark_metric = Dijkstra" seed_gen ~count:15 (fun seed ->
      let rng = Prng.create ~seed in
      let topo = List.nth (seven_topologies rng) (Prng.int rng 7) in
      let g = Topology.graph topo in
      let router = Dtm_sim.Router.create g in
      let m = Dtm_sim.Router.landmark_metric ~landmarks:4 router in
      let frozen = Dtm_sim.Router.freeze router in
      let reference = Apsp.distances g in
      let n = Graph.n g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Metric.dist m u v <> reference.(u).(v) then ok := false
        done
      done;
      (* the router cache itself must still answer (shared rows) *)
      !ok && Dtm_sim.Router.is_frozen frozen)

let prop_disconnected_exact =
  qtest "landmark handles disconnected graphs" seed_gen ~count:20 (fun seed ->
      let rng = Prng.create ~seed in
      (* two line components: 0..a-1 and a..a+b-1 *)
      let a = 2 + Prng.int rng 5 and b = 2 + Prng.int rng 5 in
      let n = a + b in
      let edges =
        List.init (a - 1) (fun i -> (i, i + 1, 1))
        @ List.init (b - 1) (fun i -> (a + i, a + i + 1, 1))
      in
      let g = Graph.of_edges ~n edges in
      let lm = Landmark.build ~landmarks:3 g in
      let reference = Apsp.distances g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Landmark.dist lm u v <> reference.(u).(v) then ok := false
        done
      done;
      !ok)

let test_powerlaw_roundtrip () =
  let t = Topology.Power_law { Dtm_topology.Power_law.n = 24; attach = 2; seed = 7 } in
  let s = Topology.to_string t in
  Alcotest.(check string) "to_string" "powerlaw:24x2:s7" s;
  (match Topology.of_string s with
  | Ok t' -> Alcotest.(check bool) "roundtrip" true (t = t')
  | Error e -> Alcotest.fail e);
  let g = Topology.graph t in
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check int) "n" 24 (Graph.n g)

let test_powerlaw_large_uses_landmark () =
  let t =
    Topology.Power_law { Dtm_topology.Power_law.n = 2000; attach = 2; seed = 1 }
  in
  let m = Topology.metric t in
  Alcotest.(check bool) "landmark-backed" true (Metric.is_landmark m);
  (* spot-check against single-source Dijkstra *)
  let g = Topology.graph t in
  let row = Dtm_graph.Dijkstra.distances g ~src:17 in
  let rng = Prng.create ~seed:5 in
  for _ = 1 to 200 do
    let v = Prng.int rng 2000 in
    Alcotest.(check int)
      (Printf.sprintf "dist 17->%d" v)
      row.(v) (Metric.dist m 17 v)
  done

(* Weighted small-world exactness: random edge weights on a
   Barabási–Albert graph exercise the bidi fallback's ALT-pruning path
   (uniform-weight graphs skip it entirely), pinning the pruned search
   to Dijkstra.  The deterministic case is big enough that nearly every
   query dispatches to bidi rather than A-star. *)
let reweight ~wmax ~seed g =
  let rng = Prng.create ~seed in
  let edges =
    List.map
      (fun { Graph.u; v; _ } -> (u, v, 1 + Prng.int rng wmax))
      (Graph.edges g)
  in
  Graph.of_edges ~n:(Graph.n g) edges

let prop_weighted_powerlaw_exact =
  qtest "landmark dist = Dijkstra on weighted power-law" seed_gen ~count:15
    (fun seed ->
      let rng = Prng.create ~seed in
      let n = 60 + Prng.int rng 140 in
      let attach = 2 + Prng.int rng 2 in
      let g0 =
        Topology.graph
          (Topology.Power_law { Dtm_topology.Power_law.n; attach; seed })
      in
      let g = reweight ~wmax:(1 + Prng.int rng 99) ~seed:(seed + 1) g0 in
      let lm = Landmark.build ~landmarks:(1 + Prng.int rng 7) g in
      let ok = ref true in
      for _ = 1 to 3 do
        let src = Prng.int rng n in
        let row = Dtm_graph.Dijkstra.distances g ~src in
        for v = 0 to n - 1 do
          if Landmark.dist lm src v <> row.(v) then ok := false
        done
      done;
      !ok)

let test_weighted_powerlaw_medium () =
  let n = 3000 in
  let g0 =
    Topology.graph
      (Topology.Power_law { Dtm_topology.Power_law.n; attach = 3; seed = 42 })
  in
  let g = reweight ~wmax:100 ~seed:7 g0 in
  let lm = Landmark.build g in
  let rng = Prng.create ~seed:99 in
  for _ = 1 to 5 do
    let src = Prng.int rng n in
    let row = Dtm_graph.Dijkstra.distances g ~src in
    for _ = 1 to 400 do
      let v = Prng.int rng n in
      Alcotest.(check int)
        (Printf.sprintf "dist %d->%d" src v)
        row.(v) (Landmark.dist lm src v)
    done
  done

(* The scaling contract (ISSUE 8 acceptance): an n=10^5 grid builds,
   answers 10^4 queries, and drives a streamed open-system run in
   seconds — with a live heap orders of magnitude below the ~40 GB an
   n^2 table would take.  Wall-clock bounds are generous (CI machines
   vary); the heap bound is the hard line. *)
let test_grid_100k_smoke () =
  let rows = 316 and cols = 317 in
  let n = rows * cols in
  let t0 = Unix.gettimeofday () in
  let g = Dtm_topology.Grid.graph ~rows ~cols in
  let lm = Landmark.build g in
  let m = Metric.of_landmark lm in
  let build_s = Unix.gettimeofday () -. t0 in
  (* exactness spot-check against one Dijkstra row *)
  let row = Dtm_graph.Dijkstra.distances g ~src:12345 in
  let rng = Prng.create ~seed:11 in
  for _ = 1 to 100 do
    let v = Prng.int rng n in
    Alcotest.(check int) "grid dist" row.(v) (Metric.dist m 12345 v)
  done;
  let t1 = Unix.gettimeofday () in
  let acc = ref 0 in
  for _ = 1 to 10_000 do
    let u = Prng.int rng n and v = Prng.int rng n in
    acc := !acc + Metric.dist m u v
  done;
  let query_s = Unix.gettimeofday () -. t1 in
  Alcotest.(check bool) "queries nonzero" true (!acc > 0);
  (* streamed open-system run: the instance is never materialized *)
  let spec =
    {
      Dtm_workload.Injection.n;
      num_objects = 64;
      k = 2;
      rate = 0.25;
      burst = 1;
      dist = Dtm_workload.Injection.Uniform_objects;
      seed = 3;
    }
  in
  let homes = Array.init 64 (Dtm_workload.Injection.home_of spec) in
  let t2 = Unix.gettimeofday () in
  let r =
    Dtm_online.Open_system.run m
      (Dtm_workload.Injection.source ~limit:2_000 spec)
      ~homes ~horizon:100_000
  in
  let run_s = Unix.gettimeofday () -. t2 in
  Alcotest.(check int) "all injected committed" 2_000 r.Dtm_online.Open_system.committed;
  Gc.full_major ();
  let live_words = (Gc.stat ()).Gc.live_words in
  (* n^2 would be 10^10 words; L rows are ~1.1M words.  128M words
     (~1 GB) is a loose ceiling that still catches any accidental
     materialization by three orders of magnitude. *)
  Alcotest.(check bool)
    (Printf.sprintf "live heap %d words < 128M" live_words)
    true
    (live_words < 128_000_000);
  let total = build_s +. query_s +. run_s in
  Alcotest.(check bool)
    (Printf.sprintf "wall clock %.1fs (build %.1f, queries %.1f, run %.1f) < 60s"
       total build_s query_s run_s)
    true (total < 60.0)

(* The 10^6-node tier of the same contract.  Build is ~24 BFS rows
   (unit-weight grid), queries mostly resolve from the lo = hi bracket,
   and the streamed run never materializes the instance.  Gated behind
   DTM_LARGE_N_1M because even in release profile it needs a couple of
   minutes of one core — the CI large-n job opts in; plain
   [dune runtest] stays at the 10^5 tier. *)
let test_grid_1m_smoke () =
  let rows = 1000 and cols = 1000 in
  let n = rows * cols in
  let t0 = Unix.gettimeofday () in
  let g = Dtm_topology.Grid.graph ~rows ~cols in
  let lm = Landmark.build g in
  let m = Metric.of_landmark lm in
  let build_s = Unix.gettimeofday () -. t0 in
  let row = Dtm_graph.Dijkstra.distances g ~src:123456 in
  let rng = Prng.create ~seed:11 in
  for _ = 1 to 50 do
    let v = Prng.int rng n in
    Alcotest.(check int) "grid dist" row.(v) (Metric.dist m 123456 v)
  done;
  let t1 = Unix.gettimeofday () in
  let acc = ref 0 in
  for _ = 1 to 10_000 do
    let u = Prng.int rng n and v = Prng.int rng n in
    acc := !acc + Metric.dist m u v
  done;
  let query_s = Unix.gettimeofday () -. t1 in
  Alcotest.(check bool) "queries nonzero" true (!acc > 0);
  let spec =
    {
      Dtm_workload.Injection.n;
      num_objects = 64;
      k = 2;
      rate = 0.05;
      burst = 1;
      dist = Dtm_workload.Injection.Uniform_objects;
      seed = 3;
    }
  in
  let homes = Array.init 64 (Dtm_workload.Injection.home_of spec) in
  let t2 = Unix.gettimeofday () in
  let r =
    Dtm_online.Open_system.run m
      (Dtm_workload.Injection.source ~limit:1_000 spec)
      ~homes ~horizon:200_000
  in
  let run_s = Unix.gettimeofday () -. t2 in
  Alcotest.(check int) "all injected committed" 1_000
    r.Dtm_online.Open_system.committed;
  Gc.full_major ();
  let live_words = (Gc.stat ()).Gc.live_words in
  (* n^2 would be 10^12 words; 24 landmark rows are 24M words and the
     graph another ~40M.  256M words (~2 GB) still catches accidental
     materialization by nearly four orders of magnitude. *)
  Alcotest.(check bool)
    (Printf.sprintf "live heap %d words < 256M" live_words)
    true
    (live_words < 256_000_000);
  let total = build_s +. query_s +. run_s in
  Alcotest.(check bool)
    (Printf.sprintf
       "wall clock %.1fs (build %.1f, queries %.1f, run %.1f) < 300s" total
       build_s query_s run_s)
    true (total < 300.0)

let large_n_tests =
  let base =
    [ Alcotest.test_case "grid 100k smoke" `Slow test_grid_100k_smoke ]
  in
  if Sys.getenv_opt "DTM_LARGE_N_1M" <> None then
    base @ [ Alcotest.test_case "grid 1M smoke" `Slow test_grid_1m_smoke ]
  else base

let () =
  Alcotest.run "dtm_landmark"
    [
      ( "exactness",
        [
          prop_landmark_exact;
          prop_disconnected_exact;
          prop_router_landmark_metric;
        ] );
      ("bounds", [ prop_landmark_bounds_sound; prop_metric_backend_consistent ]);
      ( "powerlaw",
        [
          Alcotest.test_case "roundtrip" `Quick test_powerlaw_roundtrip;
          Alcotest.test_case "large n uses landmark" `Quick
            test_powerlaw_large_uses_landmark;
          prop_weighted_powerlaw_exact;
          Alcotest.test_case "weighted power-law medium" `Quick
            test_weighted_powerlaw_medium;
        ] );
      ("large_n", large_n_tests);
    ]
