(* Tests for the execution substrate: router, trace invariants, schedule
   replay on explicit graphs, and the online engine. *)

open Dtm_sim
module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule
module Validator = Dtm_core.Validator
module Cost = Dtm_core.Cost
module Topology = Dtm_topology.Topology
module Prng = Dtm_util.Prng

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let line5_g = Dtm_topology.Line.graph 5
let line5_m = Dtm_topology.Line.metric 5

let small_inst =
  Instance.create ~n:5 ~num_objects:2
    ~txns:[ (0, [ 0 ]); (2, [ 0; 1 ]); (4, [ 1 ]) ]
    ~home:[| 0; 4 |]

let feasible_sched = Schedule.of_times [ (0, 1); (2, 3); (4, 5) ] ~n:5

(* ------------------------------------------------------------------ *)
(* Router                                                             *)
(* ------------------------------------------------------------------ *)

let test_router_route () =
  let r = Router.create line5_g in
  Alcotest.(check (list int)) "path" [ 1; 2; 3 ] (Router.route r ~src:1 ~dst:3);
  Alcotest.(check (list int)) "self" [ 2 ] (Router.route r ~src:2 ~dst:2);
  Alcotest.(check int) "distance" 2 (Router.distance r ~src:1 ~dst:3);
  Alcotest.(check int) "hops" 2 (Router.hops r ~src:1 ~dst:3)

let test_router_weighted () =
  (* Diamond where the weighted shortest path avoids the heavy edge. *)
  let g = Dtm_graph.Graph.of_edges ~n:4 [ (0, 1, 1); (1, 3, 1); (0, 3, 5) ] in
  let r = Router.create g in
  Alcotest.(check (list int)) "avoids heavy edge" [ 0; 1; 3 ] (Router.route r ~src:0 ~dst:3);
  Alcotest.(check int) "weighted distance" 2 (Router.distance r ~src:0 ~dst:3)

let test_router_unreachable () =
  let g = Dtm_graph.Graph.of_edges ~n:3 [ (0, 1, 1) ] in
  let r = Router.create g in
  Alcotest.check_raises "unreachable" (Invalid_argument "Router.route: unreachable")
    (fun () -> ignore (Router.route r ~src:0 ~dst:2))

let test_router_freeze () =
  let r = Router.create line5_g in
  Router.warm r [| 0; 2 |];
  let f = Router.freeze r in
  Alcotest.(check bool) "snapshot frozen" true (Router.is_frozen f);
  Alcotest.(check bool) "original still live" false (Router.is_frozen r);
  (* Warmed and unwarmed sources answer identically through the
     snapshot; the unwarmed one is computed on demand, uncached. *)
  for src = 0 to 4 do
    for dst = 0 to 4 do
      Alcotest.(check (list int))
        (Printf.sprintf "route %d->%d" src dst)
        (Router.route r ~src ~dst) (Router.route f ~src ~dst);
      Alcotest.(check int)
        (Printf.sprintf "hops %d->%d" src dst)
        (Router.hops r ~src ~dst) (Router.hops f ~src ~dst)
    done
  done

let test_router_hops_weighted () =
  (* hops counts edges, not weight: 0-1-3 is 2 hops of total weight 2,
     while distance to the lone far node stays weighted. *)
  let g = Dtm_graph.Graph.of_edges ~n:4 [ (0, 1, 1); (1, 3, 1); (2, 3, 7) ] in
  let r = Router.create g in
  Alcotest.(check int) "two hops" 2 (Router.hops r ~src:0 ~dst:3);
  Alcotest.(check int) "three hops" 3 (Router.hops r ~src:0 ~dst:2);
  Alcotest.(check int) "weighted distance" 9 (Router.distance r ~src:0 ~dst:2);
  Alcotest.(check int) "zero hops to self" 0 (Router.hops r ~src:2 ~dst:2)

(* ------------------------------------------------------------------ *)
(* Events and traces                                                  *)
(* ------------------------------------------------------------------ *)

let test_event_ordering () =
  let e1 = Event.Arrive { obj = 0; node = 1; time = 3 } in
  let e2 = Event.Execute { node = 1; time = 3 } in
  let e3 = Event.Depart { obj = 0; node = 1; dest = 2; time = 3 } in
  let sorted = Trace.of_events [ e3; e2; e1 ] in
  Alcotest.(check (list string)) "receive/execute/forward order"
    [ Event.to_string e1; Event.to_string e2; Event.to_string e3 ]
    (List.map Event.to_string (Trace.events sorted))

let test_trace_single_copy_ok () =
  let t =
    Trace.of_events
      [
        Event.Depart { obj = 0; node = 0; dest = 1; time = 1 };
        Event.Arrive { obj = 0; node = 1; time = 2 };
        Event.Depart { obj = 0; node = 1; dest = 2; time = 3 };
        Event.Arrive { obj = 0; node = 2; time = 4 };
      ]
  in
  Alcotest.(check bool) "ok" true (Trace.check_single_copy t ~initial_pos:[| 0 |] = Ok ())

let test_trace_single_copy_bad () =
  let t =
    Trace.of_events [ Event.Depart { obj = 0; node = 3; dest = 1; time = 1 } ]
  in
  Alcotest.(check bool) "teleport caught" true
    (Trace.check_single_copy t ~initial_pos:[| 0 |] <> Ok ())

let test_trace_executes_once () =
  let ok = Trace.of_events [ Event.Execute { node = 1; time = 1 } ] in
  Alcotest.(check bool) "once" true (Trace.check_executes_once ok = Ok ());
  let bad =
    Trace.of_events
      [ Event.Execute { node = 1; time = 1 }; Event.Execute { node = 1; time = 2 } ]
  in
  Alcotest.(check bool) "twice caught" true (Trace.check_executes_once bad <> Ok ())

(* ------------------------------------------------------------------ *)
(* Replay                                                             *)
(* ------------------------------------------------------------------ *)

let test_replay_feasible () =
  let r = Replay.run line5_g small_inst feasible_sched in
  Alcotest.(check bool) "ok" true r.Replay.ok;
  Alcotest.(check (list string)) "no errors" [] r.Replay.errors;
  Alcotest.(check int) "makespan" 5 r.Replay.makespan;
  (* Object 0 travels 0->2 (2 steps); object 1 travels 4->2->4 (4). *)
  Alcotest.(check int) "messages" 6 r.Replay.messages;
  Alcotest.(check int) "hops" 6 r.Replay.hops;
  Alcotest.(check bool) "trace single copy" true
    (Trace.check_single_copy r.Replay.trace ~initial_pos:[| 0; 4 |] = Ok ());
  Alcotest.(check bool) "trace executes once" true
    (Trace.check_executes_once r.Replay.trace = Ok ())

let test_replay_catches_infeasible () =
  let bad = Schedule.of_times [ (0, 1); (2, 2); (4, 5) ] ~n:5 in
  let r = Replay.run line5_g small_inst bad in
  Alcotest.(check bool) "not ok" false r.Replay.ok;
  Alcotest.(check bool) "has errors" true (r.Replay.errors <> [])

let test_replay_catches_unscheduled () =
  let missing = Schedule.of_times [ (0, 1); (2, 3) ] ~n:5 in
  let r = Replay.run line5_g small_inst missing in
  Alcotest.(check bool) "not ok" false r.Replay.ok

let test_replay_messages_match_cost () =
  let r = Replay.run line5_g small_inst feasible_sched in
  Alcotest.(check int) "messages = communication cost"
    (Cost.communication line5_m small_inst feasible_sched)
    r.Replay.messages

let check_replay_results_equal label (a : Replay.result) (b : Replay.result) =
  Alcotest.(check bool) (label ^ ": ok") a.Replay.ok b.Replay.ok;
  Alcotest.(check (list string)) (label ^ ": errors") a.Replay.errors b.Replay.errors;
  Alcotest.(check int) (label ^ ": makespan") a.Replay.makespan b.Replay.makespan;
  Alcotest.(check int) (label ^ ": messages") a.Replay.messages b.Replay.messages;
  Alcotest.(check int) (label ^ ": hops") a.Replay.hops b.Replay.hops;
  Alcotest.(check int) (label ^ ": wait") a.Replay.total_wait b.Replay.total_wait;
  Alcotest.(check bool) (label ^ ": trace") true
    (Trace.events a.Replay.trace = Trace.events b.Replay.trace)

let test_replay_shared_router () =
  let router = Router.create line5_g in
  let fresh = Replay.run line5_g small_inst feasible_sched in
  (* Two runs through the same router: the first warms the cache, the
     second hits it; both must equal the fresh-router run. *)
  let warm1 = Replay.run ~router line5_g small_inst feasible_sched in
  let warm2 = Replay.run ~router line5_g small_inst feasible_sched in
  check_replay_results_equal "first shared" fresh warm1;
  check_replay_results_equal "second shared" fresh warm2;
  (* A frozen snapshot answers identically too. *)
  let frozen = Router.freeze router in
  check_replay_results_equal "frozen" fresh
    (Replay.run ~router:frozen line5_g small_inst feasible_sched)

let test_replay_rejects_foreign_router () =
  let other = Dtm_topology.Line.graph 5 in
  let router = Router.create other in
  Alcotest.check_raises "foreign graph"
    (Invalid_argument "Replay.run: router was built for a different graph")
    (fun () -> ignore (Replay.run ~router line5_g small_inst feasible_sched))

let test_replay_warm_allocation () =
  (* Steady state: with a warm router and warmed-up scratch, a replay's
     allocations are a small constant (trace snapshot + result record),
     not proportional to consed per-hop lists.  Compare against the cold
     path, which rebuilds the Dijkstra cache every call. *)
  let p = { Dtm_topology.Star.rays = 6; ray_len = 15 } in
  let g = Dtm_topology.Star.graph p in
  let n = 1 + (p.Dtm_topology.Star.rays * p.Dtm_topology.Star.ray_len) in
  let rng = Prng.create ~seed:77 in
  let inst = Dtm_workload.Uniform.instance ~rng ~n ~num_objects:22 ~k:2 () in
  let sched = Engine.run (Dtm_topology.Star.metric p) inst in
  let router = Router.create g in
  ignore (Replay.run ~router g inst sched);
  let words f =
    let before = Gc.minor_words () in
    ignore (Sys.opaque_identity (f ()));
    Gc.minor_words () -. before
  in
  let warm = words (fun () -> Replay.run ~router g inst sched) in
  let cold = words (fun () -> Replay.run g inst sched) in
  let events = Dtm_sim.Trace.length (Replay.run ~router g inst sched).Replay.trace in
  (* The trace snapshot (a handful of words per event) plus a small
     constant is the only per-run allocation: no per-hop lists. *)
  let bound = (12.0 *. float_of_int events) +. 2048.0 in
  Alcotest.(check bool)
    (Printf.sprintf "warm replay allocation bounded (%.0f words, %d events)"
       warm events)
    true (warm < bound);
  Alcotest.(check bool)
    (Printf.sprintf "warm allocates less than cold (%.0f vs %.0f)" warm cold)
    true (warm < cold)

(* Replay agrees with the metric-level validator on every topology, for
   schedules produced by the matching paper algorithm. *)
let arb_topo_seed =
  let topos = Array.of_list Topology.all_examples in
  QCheck.make
    ~print:(fun (t, seed) -> Topology.to_string t ^ "/" ^ string_of_int seed)
    QCheck.Gen.(
      let* ti = int_range 0 (Array.length topos - 1) in
      let* seed = int_range 0 100_000 in
      return (topos.(ti), seed))

let prop_replay_validates_auto_schedules =
  qtest "replay accepts every Auto schedule" arb_topo_seed (fun (topo, seed) ->
      let rng = Prng.create ~seed in
      let n = Topology.n topo in
      let w = max 1 (n / 3) in
      let k = min 2 w in
      let inst = Dtm_workload.Uniform.instance ~rng ~n ~num_objects:w ~k () in
      let sched = Dtm_sched.Auto.schedule topo inst in
      let r = Replay.run (Topology.graph topo) inst sched in
      r.Replay.ok
      && Trace.check_single_copy r.Replay.trace
           ~initial_pos:(Array.init w (Instance.home inst))
         = Ok ()
      && Trace.check_executes_once r.Replay.trace = Ok ())

let prop_replay_agrees_with_validator =
  (* Random (often infeasible) schedules: replay and validator must
     agree on feasibility. *)
  qtest "replay ok iff validator ok" QCheck.(int_range 0 100_000) (fun seed ->
      let rng = Prng.create ~seed in
      let n = 6 in
      let inst =
        Dtm_workload.Uniform.instance ~rng ~n ~num_objects:3 ~k:2 ()
      in
      let sched = Schedule.create ~n in
      Array.iter
        (fun v -> Schedule.set sched ~node:v ~time:(1 + Prng.int rng 8))
        (Instance.txn_nodes inst);
      let g = Dtm_topology.Line.graph n and m = Dtm_topology.Line.metric n in
      let r = Replay.run g inst sched in
      r.Replay.ok = Validator.is_feasible m inst sched)

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

let test_engine_feasible () =
  let s = Engine.run line5_m small_inst in
  match Validator.check line5_m small_inst s with
  | Ok () -> ()
  | Error v -> Alcotest.failf "engine infeasible: %s" (Validator.explain v)

let prop_engine_feasible =
  qtest "online engine always emits feasible schedules" arb_topo_seed
    (fun (topo, seed) ->
      let rng = Prng.create ~seed in
      let n = Topology.n topo in
      let w = max 1 (n / 2) in
      let k = min 3 w in
      let inst = Dtm_workload.Uniform.instance ~rng ~n ~num_objects:w ~k () in
      let m = Topology.metric topo in
      Validator.is_feasible m inst (Engine.run m inst))

let prop_compact_never_longer =
  qtest "compaction never lengthens a schedule" arb_topo_seed (fun (topo, seed) ->
      let rng = Prng.create ~seed in
      let n = Topology.n topo in
      let w = max 1 (n / 3) in
      let k = min 2 w in
      let inst = Dtm_workload.Uniform.instance ~rng ~n ~num_objects:w ~k () in
      let m = Topology.metric topo in
      let sched = Dtm_sched.Auto.schedule topo inst in
      let compacted = Engine.compact m inst sched in
      Validator.is_feasible m inst compacted
      && Schedule.makespan compacted <= Schedule.makespan sched)

let test_engine_custom_priority () =
  let s =
    Engine.run ~priority:(Engine.Custom (fun v -> -v)) line5_m small_inst
  in
  Alcotest.(check bool) "feasible reversed" true
    (Validator.is_feasible line5_m small_inst s);
  (* Node 4 has the highest priority so it runs at step 1. *)
  Alcotest.(check (option int)) "node 4 first" (Some 1) (Schedule.time s 4)

let test_engine_run_bounded () =
  let full = Engine.run line5_m small_inst in
  let mk = Schedule.makespan full in
  (* A cutoff at the makespan itself must trip, one above must not. *)
  Alcotest.(check bool) "cutoff = makespan cuts" true
    (Engine.run_bounded ~cutoff:mk line5_m small_inst = None);
  (match Engine.run_bounded ~cutoff:(mk + 1) line5_m small_inst with
  | None -> Alcotest.fail "cutoff above makespan must not cut"
  | Some s -> Alcotest.(check int) "same makespan" mk (Schedule.makespan s));
  (* The unbounded run is the cutoff:max_int special case. *)
  match Engine.run_bounded ~cutoff:max_int line5_m small_inst with
  | None -> Alcotest.fail "max_int cutoff must not cut"
  | Some s ->
    List.iter
      (fun v ->
        Alcotest.(check (option int))
          (Printf.sprintf "time of node %d" v)
          (Schedule.time full v) (Schedule.time s v))
      (Schedule.scheduled_nodes full)

(* ------------------------------------------------------------------ *)
(* Gantt                                                              *)
(* ------------------------------------------------------------------ *)

let test_gantt_chart () =
  let s = Gantt.chart small_inst feasible_sched in
  Alcotest.(check bool) "mentions makespan" true
    (String.length s > 0
    &&
    let lines = String.split_on_char '\n' s in
    List.length lines >= 5);
  (* One row per transaction. *)
  let rows =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.length l > 4 && String.sub l 0 4 = "node")
  in
  Alcotest.(check int) "3 rows" 3 (List.length rows)

let test_gantt_profile () =
  let s = Gantt.parallelism_profile feasible_sched in
  Alcotest.(check bool) "has strip" true (String.contains s '|');
  let empty = Gantt.parallelism_profile (Schedule.create ~n:3) in
  Alcotest.(check string) "empty" "empty schedule\n" empty

let test_gantt_journeys () =
  let s = Gantt.object_journeys line5_m small_inst feasible_sched in
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.length l > 0)
  in
  Alcotest.(check int) "one line per used object" 2 (List.length lines);
  (* Object 1's travel 4 -> 2 -> 4 = 4 must be reported. *)
  Alcotest.(check bool) "travel reported" true
    (List.exists
       (fun l ->
         String.length l > 10
         && List.exists (fun needle ->
                let nl = String.length needle and sl = String.length l in
                let rec go i = i + nl <= sl && (String.sub l i nl = needle || go (i + 1)) in
                go 0)
              [ "[travel 4]" ])
       lines)

(* ------------------------------------------------------------------ *)
(* Optimal                                                            *)
(* ------------------------------------------------------------------ *)

let test_optimal_between_lb_and_greedy () =
  let metric = Dtm_topology.Line.metric 5 in
  let opt = Optimal.exhaustive metric small_inst in
  Alcotest.(check bool) "feasible" true
    (Validator.is_feasible metric small_inst opt);
  let lb = Dtm_core.Lower_bound.certified metric small_inst in
  let greedy = Schedule.makespan (Dtm_core.Greedy.schedule metric small_inst) in
  let o = Schedule.makespan opt in
  Alcotest.(check bool) "lb <= opt" true (lb <= o);
  Alcotest.(check bool) "opt <= greedy" true (o <= greedy)

let test_optimal_cap () =
  let n = Optimal.max_transactions + 1 in
  let inst =
    Instance.create ~n ~num_objects:1
      ~txns:(List.init n (fun v -> (v, [ 0 ])))
      ~home:[| 0 |]
  in
  Alcotest.check_raises "cap"
    (Invalid_argument "Optimal.exhaustive: too many transactions") (fun () ->
      ignore (Optimal.exhaustive (Dtm_topology.Clique.metric n) inst))

let test_optimal_beats_bad_order () =
  (* One object homed at node 0 on a line, requested at 0, 2, 4: visiting
     0 -> 2 -> 4 (makespan 5) beats e.g. 4 -> 2 -> 0 (makespan >= 9). *)
  let metric = Dtm_topology.Line.metric 5 in
  let inst =
    Instance.create ~n:5 ~num_objects:1
      ~txns:[ (0, [ 0 ]); (2, [ 0 ]); (4, [ 0 ]) ]
      ~home:[| 0 |]
  in
  Alcotest.(check int) "optimal sweep" 5 (Optimal.makespan metric inst)

let prop_optimal_sandwich =
  qtest ~count:40 "lb <= opt <= greedy on tiny instances"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let n = 5 + Prng.int rng 3 in
      let inst =
        Dtm_workload.Uniform.instance ~rng ~n ~num_objects:3 ~k:2 ()
      in
      let metric = Dtm_topology.Ring.metric n in
      let opt = Optimal.makespan metric inst in
      let lb = Dtm_core.Lower_bound.certified metric inst in
      let greedy = Schedule.makespan (Dtm_core.Greedy.schedule metric inst) in
      let ring = Schedule.makespan (Dtm_sched.Ring_sched.schedule ~n inst) in
      lb <= opt && opt <= greedy && opt <= ring)

(* Transcribed seed Optimal.exhaustive: materialized permutation lists,
   assoc-list priorities, full (uncut) engine runs.  Pins the in-place
   Heap's enumeration + incumbent-cutoff rewrite to the same optimum. *)
let seed_ref_optimal_makespan metric inst =
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l
  in
  let nodes = Array.to_list (Instance.txn_nodes inst) in
  List.fold_left
    (fun best order ->
      let prio = List.mapi (fun i v -> (v, i)) order in
      let sched =
        Engine.run
          ~priority:(Engine.Custom (fun v -> List.assoc v prio))
          metric inst
      in
      min best (Schedule.makespan sched))
    max_int (permutations nodes)

let prop_optimal_matches_seed =
  qtest ~count:25 "Optimal.makespan = seed exhaustive reference"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let n = 4 + Prng.int rng 3 in
      let inst =
        Dtm_workload.Uniform.instance ~rng ~n ~num_objects:2 ~k:2 ()
      in
      let metric = Dtm_topology.Ring.metric n in
      Optimal.makespan metric inst = seed_ref_optimal_makespan metric inst)

(* ------------------------------------------------------------------ *)
(* Congestion                                                         *)
(* ------------------------------------------------------------------ *)

(* A star topology funnels every cross-ray transfer through the center,
   so small capacities must visibly queue. *)
let congested_setup seed =
  let p = { Dtm_topology.Star.rays = 5; ray_len = 4 } in
  let n = 1 + (p.Dtm_topology.Star.rays * p.Dtm_topology.Star.ray_len) in
  let rng = Prng.create ~seed in
  let inst = Dtm_workload.Uniform.instance ~rng ~n ~num_objects:6 ~k:2 () in
  let g = Dtm_topology.Star.graph p in
  let m = Dtm_topology.Star.metric p in
  let priority = Engine.run m inst in
  (g, m, inst, priority)

let test_congestion_unbounded_matches_engine () =
  let g, m, inst, priority = congested_setup 31 in
  let r = Congestion.run g inst ~priority in
  let engine = Engine.compact m inst priority in
  List.iter
    (fun v ->
      Alcotest.(check (option int))
        (Printf.sprintf "commit time of node %d" v)
        (Schedule.time engine v)
        (Schedule.time r.Congestion.commit_times v))
    (Schedule.scheduled_nodes engine);
  Alcotest.(check int) "no delayed hops" 0 r.Congestion.delayed_hops

let test_congestion_monotone_in_capacity () =
  let g, _, inst, priority = congested_setup 32 in
  let mk c = (Congestion.run ~capacity:c g inst ~priority).Congestion.makespan in
  let unbounded = (Congestion.run g inst ~priority).Congestion.makespan in
  let m1 = mk 1 and m2 = mk 2 and m4 = mk 4 in
  Alcotest.(check bool) "cap1 >= cap2" true (m1 >= m2);
  Alcotest.(check bool) "cap2 >= cap4" true (m2 >= m4);
  Alcotest.(check bool) "cap4 >= unbounded" true (m4 >= unbounded)

let test_congestion_commits_feasible () =
  let g, m, inst, priority = congested_setup 33 in
  let r = Congestion.run ~capacity:1 g inst ~priority in
  (* Queueing only delays commits, so the realized times still satisfy
     every travel constraint of the uncongested model. *)
  Alcotest.(check bool) "realized schedule feasible" true
    (Validator.is_feasible m inst r.Congestion.commit_times);
  Alcotest.(check int) "all transactions committed"
    (Instance.num_txns inst)
    (List.length (Schedule.scheduled_nodes r.Congestion.commit_times))

let test_congestion_messages_invariant () =
  let g, _, inst, priority = congested_setup 34 in
  let m1 = (Congestion.run ~capacity:1 g inst ~priority).Congestion.messages in
  let mu = (Congestion.run g inst ~priority).Congestion.messages in
  Alcotest.(check int) "same routes, same messages" mu m1

let test_congestion_queues_under_pressure () =
  (* All transactions share a hot object: with capacity 1 on a clique the
     run still completes and reports queue statistics. *)
  let n = 12 in
  let rng = Prng.create ~seed:35 in
  let inst = Dtm_workload.Arbitrary.hot_object ~rng ~n ~num_objects:4 ~k:2 in
  let g = Dtm_topology.Clique.graph n in
  let m = Dtm_topology.Clique.metric n in
  let priority = Engine.run m inst in
  let r = Congestion.run ~capacity:1 g inst ~priority in
  Alcotest.(check bool) "completes" true (r.Congestion.makespan >= n);
  Alcotest.(check bool) "max_queue observed" true (r.Congestion.max_queue >= 1)

let test_congestion_shared_router () =
  let g, _, inst, priority = congested_setup 37 in
  let fresh = Congestion.run ~capacity:2 g inst ~priority in
  let router = Router.create g in
  Router.warm_all router;
  let shared = Congestion.run ~router ~capacity:2 g inst ~priority in
  let frozen =
    Congestion.run ~router:(Router.freeze router) ~capacity:2 g inst ~priority
  in
  List.iter
    (fun (label, r) ->
      Alcotest.(check int) (label ^ ": makespan") fresh.Congestion.makespan
        r.Congestion.makespan;
      Alcotest.(check int) (label ^ ": messages") fresh.Congestion.messages
        r.Congestion.messages;
      Alcotest.(check int) (label ^ ": max_queue") fresh.Congestion.max_queue
        r.Congestion.max_queue;
      Alcotest.(check int) (label ^ ": delayed") fresh.Congestion.delayed_hops
        r.Congestion.delayed_hops;
      List.iter
        (fun v ->
          Alcotest.(check (option int))
            (Printf.sprintf "%s: commit of %d" label v)
            (Schedule.time fresh.Congestion.commit_times v)
            (Schedule.time r.Congestion.commit_times v))
        (Schedule.scheduled_nodes fresh.Congestion.commit_times))
    [ ("shared", shared); ("frozen", frozen) ]

let test_congestion_rejects_bad_args () =
  let g, _, inst, priority = congested_setup 36 in
  Alcotest.check_raises "capacity" (Invalid_argument "Congestion.run: capacity < 1")
    (fun () -> ignore (Congestion.run ~capacity:0 g inst ~priority));
  let other = Dtm_topology.Star.graph { Dtm_topology.Star.rays = 5; ray_len = 4 } in
  Alcotest.check_raises "foreign router"
    (Invalid_argument "Congestion.run: router was built for a different graph")
    (fun () ->
      ignore (Congestion.run ~router:(Router.create other) g inst ~priority));
  let missing = Schedule.create ~n:(Instance.n inst) in
  Alcotest.check_raises "unscheduled"
    (Invalid_argument "Congestion.run: priority leaves a transaction unscheduled")
    (fun () -> ignore (Congestion.run g inst ~priority:missing))

let prop_congestion_unbounded_equals_engine =
  qtest ~count:40 "capacity=inf congestion == engine on all topologies"
    arb_topo_seed (fun (topo, seed) ->
      let rng = Prng.create ~seed in
      let n = Topology.n topo in
      let w = max 1 (n / 3) in
      let k = min 2 w in
      let inst = Dtm_workload.Uniform.instance ~rng ~n ~num_objects:w ~k () in
      let m = Topology.metric topo in
      let priority = Engine.run m inst in
      let r = Congestion.run (Topology.graph topo) inst ~priority in
      let engine = Engine.compact m inst priority in
      List.for_all
        (fun v -> Schedule.time engine v = Schedule.time r.Congestion.commit_times v)
        (Schedule.scheduled_nodes engine))

let prop_congestion_cap1_feasible =
  qtest ~count:30 "capacity=1 commits stay metric-feasible" arb_topo_seed
    (fun (topo, seed) ->
      let rng = Prng.create ~seed in
      let n = Topology.n topo in
      let w = max 1 (n / 3) in
      let k = min 2 w in
      let inst = Dtm_workload.Uniform.instance ~rng ~n ~num_objects:w ~k () in
      let m = Topology.metric topo in
      let priority = Engine.run m inst in
      let r = Congestion.run ~capacity:1 (Topology.graph topo) inst ~priority in
      Validator.is_feasible m inst r.Congestion.commit_times)

let () =
  Alcotest.run "dtm_sim"
    [
      ( "router",
        [
          Alcotest.test_case "route" `Quick test_router_route;
          Alcotest.test_case "weighted" `Quick test_router_weighted;
          Alcotest.test_case "unreachable" `Quick test_router_unreachable;
          Alcotest.test_case "freeze" `Quick test_router_freeze;
          Alcotest.test_case "hops weighted" `Quick test_router_hops_weighted;
        ] );
      ( "trace",
        [
          Alcotest.test_case "event ordering" `Quick test_event_ordering;
          Alcotest.test_case "single copy ok" `Quick test_trace_single_copy_ok;
          Alcotest.test_case "single copy bad" `Quick test_trace_single_copy_bad;
          Alcotest.test_case "executes once" `Quick test_trace_executes_once;
        ] );
      ( "replay",
        [
          Alcotest.test_case "feasible" `Quick test_replay_feasible;
          Alcotest.test_case "catches infeasible" `Quick test_replay_catches_infeasible;
          Alcotest.test_case "catches unscheduled" `Quick test_replay_catches_unscheduled;
          Alcotest.test_case "messages = cost" `Quick test_replay_messages_match_cost;
          Alcotest.test_case "shared router" `Quick test_replay_shared_router;
          Alcotest.test_case "foreign router" `Quick test_replay_rejects_foreign_router;
          Alcotest.test_case "warm allocation" `Quick test_replay_warm_allocation;
          prop_replay_validates_auto_schedules;
          prop_replay_agrees_with_validator;
        ] );
      ( "engine",
        [
          Alcotest.test_case "feasible" `Quick test_engine_feasible;
          prop_engine_feasible;
          prop_compact_never_longer;
          Alcotest.test_case "custom priority" `Quick test_engine_custom_priority;
          Alcotest.test_case "run_bounded cutoff" `Quick test_engine_run_bounded;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "chart" `Quick test_gantt_chart;
          Alcotest.test_case "profile" `Quick test_gantt_profile;
          Alcotest.test_case "journeys" `Quick test_gantt_journeys;
        ] );
      ( "optimal",
        [
          Alcotest.test_case "sandwiched by bounds" `Quick
            test_optimal_between_lb_and_greedy;
          Alcotest.test_case "cap enforced" `Quick test_optimal_cap;
          Alcotest.test_case "beats a bad order" `Quick test_optimal_beats_bad_order;
          prop_optimal_sandwich;
          prop_optimal_matches_seed;
        ] );
      ( "congestion",
        [
          Alcotest.test_case "unbounded matches engine" `Quick
            test_congestion_unbounded_matches_engine;
          Alcotest.test_case "monotone in capacity" `Quick
            test_congestion_monotone_in_capacity;
          Alcotest.test_case "commits feasible" `Quick test_congestion_commits_feasible;
          Alcotest.test_case "messages invariant" `Quick
            test_congestion_messages_invariant;
          Alcotest.test_case "queues under pressure" `Quick
            test_congestion_queues_under_pressure;
          Alcotest.test_case "shared router" `Quick test_congestion_shared_router;
          Alcotest.test_case "rejects bad args" `Quick test_congestion_rejects_bad_args;
          prop_congestion_unbounded_equals_engine;
          prop_congestion_cap1_feasible;
        ] );
    ]
