(* Tests for the experiment registry and figure reproductions: every
   figure's structural checks must pass, and the cheap experiments must
   produce well-formed tables. *)

let test_registry_complete () =
  let ids = List.map (fun e -> e.Dtm_expt.Registry.id) Dtm_expt.Registry.all in
  let expected =
    [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e10"; "e11";
      "e12"; "e13"; "e14"; "e15"; "e16"; "e17"; "e18"; "f1"; "f2"; "f3"; "f4";
      "f5"; "f6" ]
  in
  Alcotest.(check (list string)) "all entries present" expected ids

let test_registry_find () =
  Alcotest.(check bool) "finds e1" true (Dtm_expt.Registry.find "e1" <> None);
  Alcotest.(check bool) "rejects junk" true (Dtm_expt.Registry.find "e99" = None)

let test_figures_all_checks_pass () =
  List.iter
    (fun (id, f) ->
      let r = f () in
      Alcotest.(check bool) (id ^ " has rendering") true
        (String.length r.Dtm_expt.Figures.rendering > 0);
      List.iter
        (fun (name, ok) ->
          if not ok then Alcotest.failf "%s: check %S failed" id name)
        r.Dtm_expt.Figures.checks)
    Dtm_expt.Figures.all

let test_runner_measure () =
  let metric = Dtm_topology.Line.metric 5 in
  let inst =
    Dtm_core.Instance.create ~n:5 ~num_objects:1 ~txns:[ (0, [ 0 ]); (4, [ 0 ]) ]
      ~home:[| 0 |]
  in
  let sched = Dtm_core.Schedule.of_times [ (0, 1); (4, 5) ] ~n:5 in
  let m = Dtm_expt.Runner.measure metric inst sched in
  Alcotest.(check int) "makespan" 5 m.Dtm_expt.Runner.makespan;
  Alcotest.(check bool) "feasible" true m.Dtm_expt.Runner.feasible;
  Alcotest.(check bool) "ratio >= 1" true (m.Dtm_expt.Runner.ratio >= 1.0)

(* Cheap experiments run end-to-end with 1 seed and render non-empty
   tables mentioning feasibility. *)
let test_cheap_experiments_run () =
  let seeds = [ 1 ] in
  List.iter
    (fun id ->
      match Dtm_expt.Registry.find id with
      | None -> Alcotest.failf "missing %s" id
      | Some e ->
        let out = Dtm_expt.Registry.run_to_string ~seeds e in
        Alcotest.(check bool) (id ^ " non-empty") true (String.length out > 100))
    [ "e1"; "e8"; "f1"; "f2"; "f3"; "f4"; "f5"; "f6" ]

let () =
  Alcotest.run "dtm_expt"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "find" `Quick test_registry_find;
        ] );
      ( "figures",
        [ Alcotest.test_case "all checks pass" `Quick test_figures_all_checks_pass ] );
      ( "runner",
        [ Alcotest.test_case "measure" `Quick test_runner_measure ] );
      ( "experiments",
        [ Alcotest.test_case "cheap entries run" `Slow test_cheap_experiments_run ] );
    ]
