(* Golden regression tests: exact makespans for fixed seeds.  These pin
   the behaviour of every scheduler so that refactorings that change
   results (even to feasible ones) are flagged for review.  If a change
   is intentional, update the constants and note it in the commit. *)

module Schedule = Dtm_core.Schedule
module Prng = Dtm_util.Prng

let uniform ~seed ~n ~w ~k =
  Dtm_workload.Uniform.instance ~rng:(Prng.create ~seed) ~n ~num_objects:w ~k ()

let check name expected actual =
  Alcotest.(check int) (name ^ " makespan") expected actual

let test_clique_golden () =
  let inst = uniform ~seed:1 ~n:32 ~w:8 ~k:2 in
  check "clique" 10
    (Schedule.makespan (Dtm_sched.Clique_sched.schedule ~n:32 inst))

let test_line_golden () =
  let inst = uniform ~seed:2 ~n:64 ~w:16 ~k:2 in
  check "line" 189 (Schedule.makespan (Dtm_sched.Line_sched.schedule ~n:64 inst))

let test_ring_golden () =
  let inst = uniform ~seed:3 ~n:64 ~w:16 ~k:2 in
  check "ring" 127 (Schedule.makespan (Dtm_sched.Ring_sched.schedule ~n:64 inst))

let test_grid_golden () =
  let inst = uniform ~seed:4 ~n:64 ~w:16 ~k:2 in
  check "grid" 58
    (Schedule.makespan (Dtm_sched.Grid_sched.schedule ~rows:8 ~cols:8 inst))

let test_cluster_golden () =
  let p = { Dtm_topology.Cluster.clusters = 4; size = 6; bridge_weight = 8 } in
  let inst = uniform ~seed:5 ~n:24 ~w:8 ~k:2 in
  check "cluster approach1" 47
    (Schedule.makespan
       (Dtm_sched.Cluster_sched.schedule ~approach:Dtm_sched.Cluster_sched.Approach1
          p inst));
  check "cluster approach2" 99
    (Schedule.makespan
       (Dtm_sched.Cluster_sched.schedule
          ~approach:(Dtm_sched.Cluster_sched.Approach2 { seed = 6 })
          p inst))

let test_star_golden () =
  let p = { Dtm_topology.Star.rays = 5; ray_len = 6 } in
  let inst = uniform ~seed:7 ~n:31 ~w:8 ~k:2 in
  check "star greedy" 77
    (Schedule.makespan
       (Dtm_sched.Star_sched.schedule ~variant:Dtm_sched.Star_sched.Greedy_periods p
          inst))

let test_engine_golden () =
  let inst = uniform ~seed:8 ~n:32 ~w:8 ~k:2 in
  check "engine" 18
    (Schedule.makespan (Dtm_sim.Engine.run (Dtm_topology.Clique.metric 32) inst))

let test_online_golden () =
  let rng = Prng.create ~seed:9 in
  let s =
    Dtm_online.Stream.uniform ~rng ~n:16 ~num_objects:6 ~k:2 ~txns_per_node:3
      ~mean_gap:2
  in
  let homes = Dtm_online.Stream.initial_homes ~rng s in
  let r =
    Dtm_online.Runner.run
      ~policy:(Dtm_online.Policy.Timestamp { preemption = true })
      (Dtm_topology.Clique.metric 16) s ~homes
  in
  check "online greedy-cm" 32 r.Dtm_online.Runner.makespan

(* Discover-and-print helper: when a golden value changes legitimately,
   run with GOLDEN_PRINT=1 to see the new values. *)
let () =
  if Sys.getenv_opt "GOLDEN_PRINT" <> None then begin
    let p v = Printf.printf "%d\n" v in
    p (Schedule.makespan (Dtm_sched.Clique_sched.schedule ~n:32 (uniform ~seed:1 ~n:32 ~w:8 ~k:2)));
    p (Schedule.makespan (Dtm_sched.Line_sched.schedule ~n:64 (uniform ~seed:2 ~n:64 ~w:16 ~k:2)));
    p (Schedule.makespan (Dtm_sched.Ring_sched.schedule ~n:64 (uniform ~seed:3 ~n:64 ~w:16 ~k:2)));
    p (Schedule.makespan (Dtm_sched.Grid_sched.schedule ~rows:8 ~cols:8 (uniform ~seed:4 ~n:64 ~w:16 ~k:2)))
  end

let () =
  Alcotest.run "dtm_golden"
    [
      ( "golden",
        [
          Alcotest.test_case "clique" `Quick test_clique_golden;
          Alcotest.test_case "line" `Quick test_line_golden;
          Alcotest.test_case "ring" `Quick test_ring_golden;
          Alcotest.test_case "grid" `Quick test_grid_golden;
          Alcotest.test_case "cluster" `Quick test_cluster_golden;
          Alcotest.test_case "star" `Quick test_star_golden;
          Alcotest.test_case "engine" `Quick test_engine_golden;
          Alcotest.test_case "online" `Quick test_online_golden;
        ] );
    ]
