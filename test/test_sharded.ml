(* Property layer for the sharded open-system engine:

     - shards = 1 reproduces the unsharded [Open_system] run exactly —
       the full report and the commit sequence — on all seven paper
       topologies and every policy,
     - at shards in {2, 4}, conservation (injected = committed + queue)
       holds at every merged step and a finite stream drains completely,
     - the committed prefix of a sharded run is a legal DTM execution:
       it replays through the Walker and passes every DTM11x lint,
     - a fixed (spec, shards) is byte-identical at -j1 and -j4: the
       pool size may change the interleaving of rounds across domains
       but never the result,
     - a 10^6-transaction steady-state run at shards = 4 stays on the
       frontier (live-heap bound) and allocates O(1) per transaction. *)

module Topology = Dtm_topology.Topology
module Prng = Dtm_util.Prng
module Pool = Dtm_util.Pool
module Stream = Dtm_online.Stream
module Policy = Dtm_online.Policy
module Open_system = Dtm_online.Open_system
module Sharded = Dtm_online.Sharded
module Injection = Dtm_workload.Injection

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let seed_gen = QCheck.int_range 0 1_000_000

let seven_topologies rng =
  let range lo hi = Prng.int_in_range rng ~lo ~hi in
  [
    Topology.Clique (range 4 24);
    Topology.Line (range 4 32);
    Topology.Grid { rows = range 2 5; cols = range 2 5 };
    Topology.Cluster
      {
        Dtm_topology.Cluster.clusters = range 2 4;
        size = range 2 5;
        bridge_weight = range 2 8;
      };
    Topology.Hypercube { dim = range 2 4 };
    Topology.Butterfly { dim = range 2 3 };
    Topology.Star { Dtm_topology.Star.rays = range 2 5; ray_len = range 1 6 };
  ]

let policies =
  [
    Policy.Timestamp { preemption = false };
    Policy.Timestamp { preemption = true };
    Policy.Nearest;
    Policy.Random_grant 5;
    Policy.Window_greedy { window = 8; seed = 2 };
  ]

let draw_policy rng = List.nth policies (Prng.int rng (List.length policies))

let spec_of rng ~n =
  let range lo hi = Prng.int_in_range rng ~lo ~hi in
  let dist =
    match Prng.int rng 3 with
    | 0 -> Injection.Uniform_objects
    | 1 -> Injection.Zipf_objects (0.5 +. Prng.float rng 1.0)
    | _ -> Injection.Hot_objects (Prng.float rng 0.9)
  in
  let num_objects = range 2 32 in
  {
    Injection.n;
    num_objects;
    k = Prng.int_in_range rng ~lo:1 ~hi:(min 3 num_objects);
    rate = 0.05 +. Prng.float rng 1.0;
    burst = range 1 6;
    dist;
    seed = Prng.int rng 1_000_000;
  }

let report_pair r =
  ( ( r.Open_system.horizon,
      r.Open_system.injected,
      r.Open_system.committed,
      r.Open_system.final_queue,
      r.Open_system.peak_queue,
      r.Open_system.mean_queue ),
    ( r.Open_system.latency_p50,
      r.Open_system.latency_p99,
      r.Open_system.latency_p999,
      r.Open_system.max_latency,
      r.Open_system.total_travel,
      r.Open_system.forced_grants,
      r.Open_system.preemptions,
      r.Open_system.verdict ) )

(* ------------------------------------------------------------------ *)
(* S1: one shard IS the open system                                    *)
(* ------------------------------------------------------------------ *)

let prop_one_shard_matches_open_system =
  qtest ~count:15 "S1: shards=1 = Open_system (report + commits), 7 topologies"
    seed_gen (fun seed ->
      let rng = Prng.create ~seed in
      List.for_all
        (fun topo ->
          let n = Topology.n topo in
          let policy = draw_policy rng in
          let spec = spec_of rng ~n in
          let limit = Prng.int_in_range rng ~lo:1 ~hi:150 in
          let metric = Topology.metric topo in
          let homes = Injection.homes spec in
          let horizon = Prng.int_in_range rng ~lo:10 ~hi:3_000 in
          let commits = ref [] in
          let on_commit ~id ~node ~step = commits := (id, node, step) :: !commits in
          let base =
            Open_system.run ~policy ~patience:10 ~on_commit metric
              (Injection.source ~limit spec)
              ~homes ~horizon
          in
          let base_commits = !commits in
          commits := [];
          let sharded =
            Sharded.run ~policy ~patience:10 ~on_commit ~shards:1 metric
              (Injection.source_factory ~limit spec)
              ~homes ~horizon
          in
          report_pair base = report_pair sharded && base_commits = !commits)
        (seven_topologies rng))

(* ------------------------------------------------------------------ *)
(* S2: conservation + drain at shards in {2, 4}                        *)
(* ------------------------------------------------------------------ *)

let prop_conservation_sharded =
  qtest ~count:20 "S2: sharded conservation at every merged step; drain"
    QCheck.(pair seed_gen (int_range 0 1))
    (fun (seed, si) ->
      let shards = if si = 0 then 2 else 4 in
      let rng = Prng.create ~seed in
      let spec = spec_of rng ~n:(Prng.int_in_range rng ~lo:2 ~hi:24) in
      let limit = Prng.int_in_range rng ~lo:1 ~hi:200 in
      let policy = draw_policy rng in
      let metric = Dtm_topology.Clique.metric spec.Injection.n in
      let violations = ref 0 in
      let steps = ref 0 in
      let probe ~step:_ ~injected ~committed ~queue =
        incr steps;
        if injected <> committed + queue then incr violations
      in
      let r =
        Sharded.run ~policy ~patience:10 ~probe ~shards metric
          (Injection.source_factory ~limit spec)
          ~homes:(Injection.homes spec) ~horizon:100_000
      in
      !violations = 0
      && !steps > 0
      && r.Open_system.injected = limit
      && r.Open_system.committed = limit
      && r.Open_system.final_queue = 0
      && r.Open_system.verdict = Open_system.Bounded)

(* ------------------------------------------------------------------ *)
(* S3: sharded committed prefixes pass the DTM11x lints                *)
(* ------------------------------------------------------------------ *)

let one_shot_stream rng topo =
  let n = Topology.n topo in
  let num_objects = Prng.int_in_range rng ~lo:1 ~hi:(max 1 (n / 2) + 1) in
  let issuers = Prng.int_in_range rng ~lo:1 ~hi:(min n 8) in
  let nodes = Array.to_list (Prng.sample_subset rng ~k:issuers ~n) in
  let txns =
    List.map
      (fun node ->
        let k = Prng.int_in_range rng ~lo:1 ~hi:(min 3 num_objects) in
        let objects = Array.to_list (Prng.sample_subset rng ~k ~n:num_objects) in
        { Stream.node; objects; arrival = 1 + Prng.int rng 20 })
      nodes
  in
  Stream.create ~n ~num_objects txns

let lint_prefix rng topo ~shards =
  let policy = draw_policy rng in
  let stream = one_shot_stream rng topo in
  let metric = Topology.metric topo in
  let homes = Stream.initial_homes ~rng stream in
  let horizon = Prng.int_in_range rng ~lo:10 ~hi:2_000 in
  let commits = ref [] in
  let on_commit ~id:_ ~node ~step = commits := (node, step) :: !commits in
  let _ =
    Sharded.run ~policy ~patience:10 ~on_commit ~shards metric
      (fun () -> Stream.to_source stream)
      ~homes ~horizon
  in
  match !commits with
  | [] -> true
  | commits ->
    let n = Stream.n stream in
    let committed_nodes = List.map fst commits in
    let txns =
      List.filter_map
        (fun v ->
          match Stream.queue_at stream v with
          | [ t ] when List.mem v committed_nodes -> Some (v, t.Stream.objects)
          | _ -> None)
        (List.init n (fun v -> v))
    in
    let inst =
      Dtm_core.Instance.create ~n
        ~num_objects:(Stream.num_objects stream)
        ~txns ~home:homes
    in
    let sched = Dtm_core.Schedule.of_times commits ~n in
    let graph = Topology.graph topo in
    let w = Dtm_sim.Walker.run graph metric inst sched in
    w.Dtm_sim.Walker.ok
    && Dtm_analysis.Trace_lint.check ~graph ~metric inst ~commits:sched
         w.Dtm_sim.Walker.trace
       = []

let prop_lint_prefixes_sharded =
  qtest ~count:15
    "S3: sharded committed prefixes pass DTM11x lints, shards in {2, 4}"
    seed_gen (fun seed ->
      let rng = Prng.create ~seed in
      List.for_all
        (fun topo ->
          lint_prefix rng topo ~shards:2 && lint_prefix rng topo ~shards:4)
        (seven_topologies rng))

(* ------------------------------------------------------------------ *)
(* S4: the pool size never changes the result                          *)
(* ------------------------------------------------------------------ *)

let run_with_jobs ~jobs ~shards ~policy ~spec ~limit ~metric ~homes ~horizon =
  Pool.with_pool ~jobs (fun pool ->
      let commits = ref [] in
      let on_commit ~id ~node ~step = commits := (id, node, step) :: !commits in
      let r =
        Sharded.run ~policy ~patience:10 ~on_commit ~pool ~shards metric
          (Injection.source_factory ~limit spec)
          ~homes ~horizon
      in
      (report_pair r, !commits))

let prop_jobs_byte_identical =
  qtest ~count:25 "S4: -j1 = -j4 for a fixed (spec, shards)" seed_gen
    (fun seed ->
      let rng = Prng.create ~seed in
      let shards = List.nth [ 2; 3; 4 ] (Prng.int rng 3) in
      let spec = spec_of rng ~n:(Prng.int_in_range rng ~lo:2 ~hi:24) in
      let limit = Prng.int_in_range rng ~lo:1 ~hi:200 in
      let policy = draw_policy rng in
      let metric = Dtm_topology.Clique.metric spec.Injection.n in
      let homes = Injection.homes spec in
      let horizon = Prng.int_in_range rng ~lo:10 ~hi:5_000 in
      let a =
        run_with_jobs ~jobs:1 ~shards ~policy ~spec ~limit ~metric ~homes
          ~horizon
      in
      let b =
        run_with_jobs ~jobs:4 ~shards ~policy ~spec ~limit ~metric ~homes
          ~horizon
      in
      a = b)

(* ------------------------------------------------------------------ *)
(* Frontier-boundedness of the sharded 10^6-transaction run            *)
(* ------------------------------------------------------------------ *)

let test_sharded_steady_state_allocation () =
  let txns = 1_000_000 in
  let spec =
    {
      Injection.n = 32;
      num_objects = 128;
      k = 2;
      rate = 1.0;
      burst = 4;
      dist = Injection.Zipf_objects 1.0;
      seed = 7;
    }
  in
  let metric = Dtm_topology.Clique.metric spec.Injection.n in
  let homes = Injection.homes spec in
  (* jobs = 1 so Gc counters see every domain's allocation. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      Gc.full_major ();
      let live0 = (Gc.stat ()).Gc.live_words in
      let live_peak = ref live0 in
      let probe ~step ~injected:_ ~committed:_ ~queue:_ =
        if step mod 250_000 = 0 then begin
          Gc.full_major ();
          let lw = (Gc.stat ()).Gc.live_words in
          if lw > !live_peak then live_peak := lw
        end
      in
      let words_before = Gc.minor_words () in
      let r =
        Sharded.run
          ~policy:(Policy.Timestamp { preemption = true })
          ~probe ~pool ~shards:4 metric
          (Injection.source_factory ~limit:txns spec)
          ~homes ~horizon:(4 * txns)
      in
      let words = Gc.minor_words () -. words_before in
      Alcotest.(check int)
        "all transactions committed" txns r.Open_system.committed;
      Alcotest.(check bool)
        "verdict bounded" true
        (r.Open_system.verdict = Open_system.Bounded);
      let live_growth = !live_peak - live0 in
      Alcotest.(check bool)
        (Printf.sprintf "live heap stays at the frontier (grew %d words)"
           live_growth)
        true
        (live_growth < 3_000_000);
      (* Each of the 4 cells replays the full generator stream, so the
         per-transaction constant is roughly 4x the generator share of
         the unsharded engine's plus the protocol's own messages; the
         bound still trips on anything super-linear in the history. *)
      let per_txn = words /. float_of_int txns in
      Alcotest.(check bool)
        (Printf.sprintf "allocation is O(1) per transaction (%.1f words/txn)"
           per_txn)
        true (per_txn < 1_200.0))

let () =
  Alcotest.run "dtm_sharded"
    [
      ("delegation", [ prop_one_shard_matches_open_system ]);
      ("conservation", [ prop_conservation_sharded ]);
      ("trace-lints", [ prop_lint_prefixes_sharded ]);
      ("determinism", [ prop_jobs_byte_identical ]);
      ( "allocation",
        [
          Alcotest.test_case "sharded steady-state frontier" `Slow
            test_sharded_steady_state_allocation;
        ] );
    ]
