(* Tests for the Dtm_util.Pool domain pool: ordered merge (parallel =
   sequential, byte for byte), deterministic exception propagation,
   nested joins (helping), and the shared default pool the -j flag
   configures. *)

module Pool = Dtm_util.Pool

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let test_map_matches_sequential () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          let xs = List.init 100 (fun i -> i) in
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d" jobs)
            (List.map (fun x -> (x * x) + 1) xs)
            (Pool.map p (fun x -> (x * x) + 1) xs)))
    [ 1; 2; 4; 7 ]

let test_map_empty_and_singleton () =
  Pool.with_pool ~jobs:3 (fun p ->
      Alcotest.(check (list int)) "empty" [] (Pool.map p succ []);
      Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.map p succ [ 7 ]))

let test_map_reduce_ordered () =
  (* String concatenation is non-commutative: any merge-order slip shows. *)
  Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 50 (fun i -> i) in
      Alcotest.(check string) "ordered fold"
        (String.concat "," (List.map string_of_int xs))
        (Pool.map_reduce p
           ~map:string_of_int
           ~reduce:(fun acc s -> if acc = "" then s else acc ^ "," ^ s)
           ~init:"" xs))

exception Boom of int

let test_earliest_exception_wins () =
  Pool.with_pool ~jobs:4 (fun p ->
      List.iter
        (fun _ ->
          match
            Pool.map p (fun i -> if i mod 3 = 2 then raise (Boom i) else i)
              (List.init 30 (fun i -> i))
          with
          | _ -> Alcotest.fail "expected Boom"
          | exception Boom i ->
            Alcotest.(check int) "lowest failing index" 2 i)
        (List.init 10 Fun.id))

let test_nested_maps () =
  (* An outer map whose tasks themselves map on the same pool: the
     helping join must keep this deadlock-free at any pool size. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          let expected =
            List.init 8 (fun i -> List.init 20 (fun j -> (i * 100) + j))
          in
          let got =
            Pool.map p
              (fun i -> Pool.map p (fun j -> (i * 100) + j) (List.init 20 Fun.id))
              (List.init 8 Fun.id)
          in
          Alcotest.(check (list (list int)))
            (Printf.sprintf "nested jobs=%d" jobs)
            expected got))
    [ 1; 2; 4 ]

let test_shutdown_then_map_still_works () =
  let p = Pool.create ~jobs:3 in
  Alcotest.(check (list int)) "before" [ 2; 3 ] (Pool.map p succ [ 1; 2 ]);
  Pool.shutdown p;
  Pool.shutdown p;
  (* After shutdown the caller drains the queue itself. *)
  Alcotest.(check (list int)) "after" [ 2; 3; 4 ] (Pool.map p succ [ 1; 2; 3 ])

let test_bsp_rounds_and_barrier () =
  (* A token-passing chain with double-buffered mailboxes, the pattern
     the sharded engine uses: round r reads the buffer written in round
     r-1 and writes the other one, so no location is read and written by
     different cells in the same round.  Any barrier slip (a cell
     starting round r+1 before all of round r finished) changes the
     tally. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          let workers = 5 in
          let rounds = 12 in
          let mail = Array.init 2 (fun _ -> Array.make workers 0) in
          let seen = Array.make workers 0 in
          Pool.bsp p ~workers (fun ~round i ->
              let cur = mail.(round land 1)
              and nxt = mail.((round + 1) land 1) in
              seen.(i) <- seen.(i) + cur.(i);
              nxt.((i + 1) mod workers) <- seen.(i) + 1;
              round + 1 < rounds);
          (* The protocol is deterministic, so a plain sequential replay
             gives the expected trace. *)
          let emailbox = Array.make workers 0 in
          let eseen = Array.make workers 0 in
          for _ = 0 to rounds - 1 do
            let next = Array.make workers 0 in
            for i = 0 to workers - 1 do
              eseen.(i) <- eseen.(i) + emailbox.(i);
              next.((i + 1) mod workers) <- eseen.(i) + 1
            done;
            Array.blit next 0 emailbox 0 workers
          done;
          Alcotest.(check (array int))
            (Printf.sprintf "bsp jobs=%d" jobs)
            eseen seen))
    [ 1; 2; 4 ]

let test_bsp_stops_when_all_done () =
  Pool.with_pool ~jobs:2 (fun p ->
      let calls = Array.make 3 0 in
      (* Cells retire at different rounds; the loop runs until the last. *)
      Pool.bsp p ~workers:3 (fun ~round i ->
          calls.(i) <- calls.(i) + 1;
          round < i);
      Alcotest.(check (array int)) "every cell stepped every round"
        [| 3; 3; 3 |] calls;
      Alcotest.check_raises "workers 0"
        (Invalid_argument "Pool.bsp: workers must be >= 1") (fun () ->
          Pool.bsp p ~workers:0 (fun ~round:_ _ -> false)))

let test_default_pool_configurable () =
  Pool.set_default_jobs 2;
  Alcotest.(check int) "configured" 2 (Pool.default_jobs ());
  Alcotest.(check int) "pool size" 2 (Pool.jobs (Pool.default ()));
  Alcotest.(check (list int)) "run" [ 1; 4; 9 ] (Pool.run (fun x -> x * x) [ 1; 2; 3 ]);
  Pool.set_default_jobs 3;
  Alcotest.(check int) "replaced" 3 (Pool.jobs (Pool.default ()))

let test_jobs_validation () =
  Alcotest.check_raises "create 0" (Invalid_argument "Pool.create: jobs must be >= 1")
    (fun () -> ignore (Pool.create ~jobs:0));
  Alcotest.check_raises "set 0"
    (Invalid_argument "Pool.set_default_jobs: jobs must be >= 1") (fun () ->
      Pool.set_default_jobs 0)

(* Parallel map equals List.map on random inputs, pool sizes and
   functions; runs the same batch twice to catch scheduling-dependent
   state. *)
let prop_map_deterministic =
  qtest ~count:200 "Pool.map = List.map, twice, any jobs"
    QCheck.(pair (int_range 1 6) (small_list small_int))
    (fun (jobs, xs) ->
      Pool.with_pool ~jobs (fun p ->
          let f x = (x * 37) mod 101 in
          let expected = List.map f xs in
          Pool.map p f xs = expected && Pool.map p f xs = expected))

let prop_map_reduce_matches_fold =
  qtest ~count:200 "map_reduce = fold_left over List.map"
    QCheck.(pair (int_range 1 5) (small_list small_int))
    (fun (jobs, xs) ->
      Pool.with_pool ~jobs (fun p ->
          Pool.map_reduce p ~map:string_of_int
            ~reduce:(fun acc s -> acc ^ "|" ^ s)
            ~init:"" xs
          = List.fold_left (fun acc s -> acc ^ "|" ^ s) "" (List.map string_of_int xs)))

let () =
  Alcotest.run "dtm_pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map = sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "empty + singleton" `Quick test_map_empty_and_singleton;
          Alcotest.test_case "map_reduce ordered" `Quick test_map_reduce_ordered;
          Alcotest.test_case "earliest exception wins" `Quick
            test_earliest_exception_wins;
          Alcotest.test_case "nested maps" `Quick test_nested_maps;
          Alcotest.test_case "bsp barrier" `Quick test_bsp_rounds_and_barrier;
          Alcotest.test_case "bsp termination" `Quick test_bsp_stops_when_all_done;
          Alcotest.test_case "shutdown" `Quick test_shutdown_then_map_still_works;
          Alcotest.test_case "default pool" `Quick test_default_pool_configurable;
          Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
        ] );
      ("properties", [ prop_map_deterministic; prop_map_reduce_matches_fold ]);
    ]
