(* Integration tests: drive the built binaries end-to-end and check exit
   codes and key output.  The dune rule declares the executables as deps,
   so they are available at ../bin relative to the test's cwd. *)

let cli = "../bin/dtm_cli.exe"
let experiments = "../bin/experiments.exe"

let run cmd =
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED c -> c | _ -> -1 in
  (code, Buffer.contents buf)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_contains out needles =
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "output mentions %S" n) true
        (contains out n))
    needles

let test_topologies () =
  let code, out = run (cli ^ " topologies") in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out [ "clique:8"; "ring:12"; "star:4x5"; "blocktree:4"; "hypergrid:3x3x3" ]

let test_schedule_clique () =
  let code, out = run (cli ^ " schedule -t clique:16 -w 4 -k 2 --seed 3") in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out [ "feasible:  yes"; "greedy (Thm 1)"; "makespan=" ]

let test_schedule_replay_chart () =
  let code, out = run (cli ^ " schedule -t grid:4x4 -w 6 -k 2 --replay --chart") in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out
    [ "subgrid decomposition (Thm 3)"; "replay:    ok=true"; "parallelism |"; "object" ]

let test_schedule_each_scheduler () =
  List.iter
    (fun s ->
      let code, out =
        run (Printf.sprintf "%s schedule -t ring:12 -w 4 -k 2 --scheduler %s" cli s)
      in
      Alcotest.(check int) (s ^ " exit 0") 0 code;
      check_contains out [ "feasible:  yes" ])
    [ "auto"; "greedy"; "sequential"; "online" ]

let test_schedule_workloads () =
  List.iter
    (fun w ->
      let code, out =
        run (Printf.sprintf "%s schedule -t clique:12 -w 6 -k 2 --workload %s" cli w)
      in
      Alcotest.(check int) (w ^ " exit 0") 0 code;
      check_contains out [ "feasible:  yes" ])
    [ "uniform"; "hot"; "zipf" ]

let test_lower_bound () =
  let code, out = run (cli ^ " lower-bound -t star:4x5 -w 6 -k 2") in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out [ "load l:"; "max walk:"; "certified:"; "requesters, walk in" ]

let test_bad_topology () =
  let code, _ = run (cli ^ " schedule -t widget:9 -w 4 -k 2") in
  Alcotest.(check bool) "non-zero exit" true (code <> 0)

let test_save_and_validate_roundtrip () =
  let dir = Filename.temp_file "dtm" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let inst_file = Filename.concat dir "inst.txt" in
  let sched_file = Filename.concat dir "sched.txt" in
  let code, _ =
    run
      (Printf.sprintf
         "%s schedule -t ring:10 -w 4 -k 2 --save-instance %s --save-schedule %s"
         cli inst_file sched_file)
  in
  Alcotest.(check int) "save exit 0" 0 code;
  let code, out =
    run
      (Printf.sprintf "%s validate -t ring:10 --instance %s --schedule %s" cli
         inst_file sched_file)
  in
  Alcotest.(check int) "validate exit 0" 0 code;
  check_contains out [ "feasible: yes" ];
  (* Corrupt the schedule: every transaction at step 1 cannot be valid. *)
  let oc = open_out sched_file in
  output_string oc "dtm-schedule v1\nn 10\nat 0 1\n";
  close_out oc;
  let code, _ =
    run
      (Printf.sprintf "%s validate -t ring:10 --instance %s --schedule %s" cli
         inst_file sched_file)
  in
  Alcotest.(check bool) "invalid rejected" true (code <> 0)

let test_custom_graph_file () =
  let path = Filename.temp_file "dtm" ".graph" in
  let oc = open_out path in
  (* A 5-cycle with one chord. *)
  output_string oc
    "dtm-graph v1\nn 5\nedge 0 1 1\nedge 1 2 1\nedge 2 3 1\nedge 3 4 1\nedge 4 0 1\nedge 0 2 2\n";
  close_out oc;
  let code, out =
    run (Printf.sprintf "%s schedule -t file:%s -w 3 -k 2" cli path)
  in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out [ "custom graph"; "bounded-diameter greedy"; "feasible:  yes" ]

let test_custom_graph_missing_file () =
  let code, _ = run (cli ^ " schedule -t file:/nonexistent.graph -w 3 -k 2") in
  Alcotest.(check bool) "non-zero exit" true (code <> 0)

let test_online_subcommand () =
  List.iter
    (fun policy ->
      let code, out =
        run
          (Printf.sprintf "%s online -t grid:4x4 -w 6 -k 2 --txns-per-node 2 --policy %s"
             cli policy)
      in
      Alcotest.(check int) (policy ^ " exit 0") 0 code;
      check_contains out [ "makespan:"; "mean response:" ])
    [ "timestamp"; "greedy-cm"; "nearest"; "random"; "window-greedy" ]

let test_serve_subcommand () =
  List.iter
    (fun dist ->
      let code, out =
        run
          (Printf.sprintf
             "%s serve -t clique:8 -w 16 -k 2 --rate 0.5 --dist %s --horizon 2000"
             cli dist)
      in
      Alcotest.(check int) (dist ^ " exit 0") 0 code;
      check_contains out [ "verdict:"; "injected:"; "latency:"; "recoveries:" ])
    [ "uniform"; "zipf:1.1"; "hot:0.5" ]

let test_serve_critical_flag () =
  let code, out =
    run
      (cli
     ^ " serve -t line:8 -w 8 -k 2 --rate 0.3 --horizon 1500 --critical")
  in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out [ "critical rate: rho* in [" ]

let test_serve_bad_dist () =
  let code, _ = run (cli ^ " serve -t clique:4 --dist pareto:2") in
  Alcotest.(check bool) "non-zero exit" true (code <> 0)

let test_capacity_flag () =
  let code, out = run (cli ^ " schedule -t star:4x4 -w 6 -k 2 --capacity 1") in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out [ "congestion (cap 1):"; "max_queue=" ]

let test_analyze_clean () =
  let code, out = run (cli ^ " analyze -t grid:8x8 -w 16 -k 2") in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out [ "certificate: makespan"; "[ok]"; "no findings" ]

let test_analyze_json () =
  let code, out = run (cli ^ " analyze -t star:4x5 -w 8 -k 2 --json") in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out
    [ "\"topology\": \"star:4x5\""; "\"certificate\""; "\"errors\": 0"; "\"holds\": true" ]

let test_analyze_codes () =
  let code, out = run (cli ^ " analyze --codes") in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out [ "DTM001"; "DTM105"; "DTM201"; "step-conflict" ]

let test_analyze_corrupted_schedule () =
  let dir = Filename.temp_file "dtm" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let inst_file = Filename.concat dir "inst.txt" in
  let sched_file = Filename.concat dir "sched.txt" in
  let code, _ =
    run
      (Printf.sprintf
         "%s schedule -t line:8 -w 3 -k 2 --save-instance %s --save-schedule %s"
         cli inst_file sched_file)
  in
  Alcotest.(check int) "save exit 0" 0 code;
  let code, _ =
    run
      (Printf.sprintf "%s analyze -t line:8 --instance %s --schedule %s" cli
         inst_file sched_file)
  in
  Alcotest.(check int) "clean schedule accepted" 0 code;
  (* Corrupt: give two requesters of one object the same step by moving
     every transaction to its neighbour's step.  Cheap textual edit:
     duplicate the step of node 0 onto node 1. *)
  let ic = open_in sched_file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let step0 =
    List.find_map
      (fun l ->
        match String.split_on_char ' ' l with
        | [ "at"; "0"; t ] -> Some t
        | _ -> None)
      !lines
    |> Option.get
  in
  let rewritten =
    List.rev_map
      (fun l ->
        match String.split_on_char ' ' l with
        | [ "at"; "1"; _ ] -> "at 1 " ^ step0
        | _ -> l)
      !lines
  in
  let oc = open_out sched_file in
  List.iter (fun l -> output_string oc (l ^ "\n")) rewritten;
  close_out oc;
  let code, out =
    run
      (Printf.sprintf "%s analyze -t line:8 --instance %s --schedule %s" cli
         inst_file sched_file)
  in
  Alcotest.(check int) "corrupted exits 1" 1 code;
  check_contains out [ "error DTM10" ];
  (* The dynamic validator agrees. *)
  let code, _ =
    run
      (Printf.sprintf "%s validate -t line:8 --instance %s --schedule %s" cli
         inst_file sched_file)
  in
  Alcotest.(check bool) "validator also rejects" true (code <> 0)

let test_verify_clean () =
  let code, out = run (cli ^ " verify -t line:6 -w 3 -k 2") in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out
    [
      "passes:    static, replay, congestion (cap 1), model";
      "seed 1: makespan=";
      "optimum=";
      "0 errors";
    ]

let test_verify_json () =
  let code, out = run (cli ^ " verify -t grid:4x4 -w 6 -k 2 --seeds 2 --json") in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out
    [
      "\"topology\": \"grid:4x4\"";
      "\"capacity\": 1";
      "\"replay_events\"";
      "\"congestion_makespan\"";
      "\"errors\": 0";
    ]

let test_verify_codes () =
  let code, out = run (cli ^ " verify --codes") in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out
    [ "DTM110"; "DTM115"; "DTM123"; "trace-teleport"; "model-suboptimal" ]

let test_verify_capacity () =
  let code, out = run (cli ^ " verify -t ring:8 -w 4 -k 2 --capacity 2") in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out [ "congestion (cap 2)" ]

let test_experiments_list () =
  let code, out = run (experiments ^ " --list") in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out [ "e1 "; "e13"; "f6" ]

let test_experiments_single () =
  let code, out = run (experiments ^ " f3") in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains out [ "Figure 3"; "[ok]" ];
  Alcotest.(check bool) "no failed checks" false (contains out "[FAIL]")

let test_experiments_unknown () =
  let code, _ = run (experiments ^ " e99") in
  Alcotest.(check bool) "non-zero exit" true (code <> 0)

let () =
  Alcotest.run "dtm_cli"
    [
      ( "cli",
        [
          Alcotest.test_case "topologies" `Quick test_topologies;
          Alcotest.test_case "schedule clique" `Quick test_schedule_clique;
          Alcotest.test_case "replay + chart" `Quick test_schedule_replay_chart;
          Alcotest.test_case "every scheduler" `Quick test_schedule_each_scheduler;
          Alcotest.test_case "every workload" `Quick test_schedule_workloads;
          Alcotest.test_case "lower-bound" `Quick test_lower_bound;
          Alcotest.test_case "bad topology" `Quick test_bad_topology;
          Alcotest.test_case "save + validate" `Quick test_save_and_validate_roundtrip;
          Alcotest.test_case "custom graph file" `Quick test_custom_graph_file;
          Alcotest.test_case "missing graph file" `Quick test_custom_graph_missing_file;
          Alcotest.test_case "online subcommand" `Quick test_online_subcommand;
          Alcotest.test_case "serve subcommand" `Quick test_serve_subcommand;
          Alcotest.test_case "serve --critical" `Quick test_serve_critical_flag;
          Alcotest.test_case "serve bad dist" `Quick test_serve_bad_dist;
          Alcotest.test_case "capacity flag" `Quick test_capacity_flag;
          Alcotest.test_case "analyze clean" `Quick test_analyze_clean;
          Alcotest.test_case "analyze --json" `Quick test_analyze_json;
          Alcotest.test_case "analyze --codes" `Quick test_analyze_codes;
          Alcotest.test_case "analyze corrupted schedule" `Quick
            test_analyze_corrupted_schedule;
          Alcotest.test_case "verify clean" `Quick test_verify_clean;
          Alcotest.test_case "verify --json" `Quick test_verify_json;
          Alcotest.test_case "verify --codes" `Quick test_verify_codes;
          Alcotest.test_case "verify --capacity" `Quick test_verify_capacity;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "--list" `Quick test_experiments_list;
          Alcotest.test_case "single figure" `Quick test_experiments_single;
          Alcotest.test_case "unknown id" `Quick test_experiments_unknown;
        ] );
    ]
