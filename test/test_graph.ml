(* Unit and property tests for the dtm_graph substrate. *)

open Dtm_graph

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* A fixed path graph 0-1-2-3-4 with unit weights. *)
let path5 = Graph.of_edges ~n:5 [ (0, 1, 1); (1, 2, 1); (2, 3, 1); (3, 4, 1) ]

(* A weighted diamond: 0-1 (1), 0-2 (4), 1-2 (1), 2-3 (1), 1-3 (5). *)
let diamond =
  Graph.of_edges ~n:4 [ (0, 1, 1); (0, 2, 4); (1, 2, 1); (2, 3, 1); (1, 3, 5) ]

(* Random connected unit-weight graph generator: a random tree plus extras. *)
let random_graph_gen =
  QCheck.Gen.(
    let* n = int_range 2 24 in
    let* extra = int_range 0 (n * 2) in
    let* seed = int_range 0 1_000_000 in
    let rng = Dtm_util.Prng.create ~seed in
    let edges = ref [] in
    let mem = Hashtbl.create 64 in
    let add u v =
      let u, v = if u < v then (u, v) else (v, u) in
      if u <> v && not (Hashtbl.mem mem (u, v)) then begin
        Hashtbl.replace mem (u, v) ();
        edges := (u, v, 1) :: !edges
      end
    in
    for v = 1 to n - 1 do
      add (Dtm_util.Prng.int rng v) v
    done;
    for _ = 1 to extra do
      add (Dtm_util.Prng.int rng n) (Dtm_util.Prng.int rng n)
    done;
    return (Graph.of_edges ~n !edges))

let arb_graph = QCheck.make ~print:(fun g -> Format.asprintf "%a" Graph.pp g) random_graph_gen

(* ------------------------------------------------------------------ *)
(* Graph                                                              *)
(* ------------------------------------------------------------------ *)

let test_graph_basic () =
  Alcotest.(check int) "n" 5 (Graph.n path5);
  Alcotest.(check int) "edges" 4 (Graph.num_edges path5);
  Alcotest.(check int) "deg 0" 1 (Graph.degree path5 0);
  Alcotest.(check int) "deg 2" 2 (Graph.degree path5 2);
  Alcotest.(check int) "max degree" 2 (Graph.max_degree path5);
  Alcotest.(check bool) "mem 1-2" true (Graph.mem_edge path5 1 2);
  Alcotest.(check bool) "mem 0-2" false (Graph.mem_edge path5 0 2);
  Alcotest.(check bool) "weight" true (Graph.edge_weight diamond 1 3 = Some 5);
  Alcotest.(check int) "max weight" 5 (Graph.max_weight diamond);
  Alcotest.(check int) "total weight" 12 (Graph.total_weight diamond)

let test_graph_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self-loop")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (1, 1, 1) ]))

let test_graph_rejects_duplicate () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.of_edges: duplicate edge")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (0, 1, 1); (1, 0, 2) ]))

let test_graph_rejects_bad_weight () =
  Alcotest.check_raises "weight" (Invalid_argument "Graph.of_edges: non-positive weight")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (0, 1, 0) ]))

let test_graph_rejects_out_of_range () =
  Alcotest.check_raises "range" (Invalid_argument "Graph.of_edges: node out of range")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (0, 3, 1) ]))

let test_graph_connectivity () =
  Alcotest.(check bool) "path connected" true (Graph.is_connected path5);
  let disconnected = Graph.of_edges ~n:4 [ (0, 1, 1); (2, 3, 1) ] in
  Alcotest.(check bool) "two components" false (Graph.is_connected disconnected);
  Alcotest.(check bool) "empty graph" true (Graph.is_connected (Graph.of_edges ~n:0 []));
  Alcotest.(check bool) "single node" true (Graph.is_connected (Graph.of_edges ~n:1 []))

let test_graph_neighbors () =
  let ns = Graph.neighbors path5 2 in
  let sorted = Array.copy ns in
  Array.sort compare sorted;
  Alcotest.(check bool) "neighbors of middle" true (sorted = [| (1, 1); (3, 1) |])

(* ------------------------------------------------------------------ *)
(* Bfs / Dijkstra                                                     *)
(* ------------------------------------------------------------------ *)

let test_bfs_distances () =
  let d = Bfs.distances path5 ~src:0 in
  Alcotest.(check (array int)) "path distances" [| 0; 1; 2; 3; 4 |] d

let test_bfs_unreachable () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1) ] in
  let d = Bfs.distances g ~src:0 in
  Alcotest.(check bool) "unreachable" true (d.(2) = max_int)

let test_bfs_path () =
  match Bfs.path path5 ~src:0 ~dst:4 with
  | Some p -> Alcotest.(check (list int)) "path nodes" [ 0; 1; 2; 3; 4 ] p
  | None -> Alcotest.fail "expected a path"

let test_bfs_path_none () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1) ] in
  Alcotest.(check bool) "no path" true (Bfs.path g ~src:0 ~dst:2 = None)

let test_dijkstra_weighted () =
  let d = Dijkstra.distances diamond ~src:0 in
  (* 0->2 best via 1: 1 + 1 = 2, not the direct weight-4 edge. *)
  Alcotest.(check (array int)) "weighted distances" [| 0; 1; 2; 3 |] d

let test_dijkstra_path () =
  match Dijkstra.path diamond ~src:0 ~dst:3 with
  | Some p -> Alcotest.(check (list int)) "via 1 and 2" [ 0; 1; 2; 3 ] p
  | None -> Alcotest.fail "expected a path"

let prop_bfs_dijkstra_agree =
  qtest "bfs = dijkstra on unit weights" arb_graph (fun g ->
      let ok = ref true in
      for src = 0 to min 4 (Graph.n g - 1) do
        if Bfs.distances g ~src <> Dijkstra.distances g ~src then ok := false
      done;
      !ok)

let prop_dijkstra_triangle =
  qtest "dijkstra distances satisfy the triangle inequality" arb_graph (fun g ->
      let d = Apsp.distances g in
      let n = Graph.n g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          for w = 0 to n - 1 do
            if
              d.(u).(w) < max_int && d.(w).(v) < max_int
              && d.(u).(v) > d.(u).(w) + d.(w).(v)
            then ok := false
          done
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Apsp / Metric                                                      *)
(* ------------------------------------------------------------------ *)

let test_apsp_symmetric () =
  let d = Apsp.distances diamond in
  for u = 0 to 3 do
    for v = 0 to 3 do
      Alcotest.(check int) "symmetric" d.(u).(v) d.(v).(u)
    done
  done

let test_apsp_unit_detection () =
  Alcotest.(check bool) "path5 unit" true (Apsp.unit_weights path5);
  Alcotest.(check bool) "diamond weighted" false (Apsp.unit_weights diamond)

let test_metric_validate_ok () =
  let m = Apsp.to_metric diamond in
  Alcotest.(check bool) "valid metric" true (Metric.validate m = Ok ())

let test_metric_validate_catches_asymmetry () =
  let bad = Metric.make ~size:2 (fun u v -> if u < v then 1 else 2) in
  Alcotest.(check bool) "invalid" true (Metric.validate bad <> Ok ())

let test_metric_diameter () =
  let m = Apsp.to_metric path5 in
  Alcotest.(check int) "diameter" 4 (Metric.diameter m)

let test_metric_max_dist_among () =
  let m = Apsp.to_metric path5 in
  Alcotest.(check int) "subset diameter" 3 (Metric.max_dist_among m [ 1; 2; 4 ]);
  Alcotest.(check int) "singleton" 0 (Metric.max_dist_among m [ 2 ]);
  Alcotest.(check int) "empty" 0 (Metric.max_dist_among m [])

let test_metric_out_of_range () =
  let m = Metric.make ~size:3 (fun _ _ -> 1) in
  Alcotest.check_raises "range" (Invalid_argument "Metric.dist: node out of range")
    (fun () -> ignore (Metric.dist m 0 3))

let test_metric_flat_backend () =
  let m = Apsp.to_metric path5 in
  Alcotest.(check bool) "apsp metric is flat" true (Metric.is_flat m);
  let oracle = Metric.make ~size:5 (fun u v -> abs (u - v)) in
  Alcotest.(check bool) "oracle not flat" false (Metric.is_flat oracle);
  let flat = Metric.materialize ~threshold:1 oracle in
  Alcotest.(check bool) "materialized" true (Metric.is_flat flat);
  for u = 0 to 4 do
    for v = 0 to 4 do
      Alcotest.(check int) "agrees" (Metric.dist oracle u v) (Metric.dist flat u v)
    done
  done;
  Alcotest.(check bool) "below threshold stays oracle" false
    (Metric.is_flat (Metric.materialize ~threshold:6 oracle));
  Alcotest.(check bool) "above max_size stays oracle" false
    (Metric.is_flat (Metric.materialize ~threshold:1 ~max_size:4 oracle))

let test_metric_of_flat_rejects () =
  Alcotest.check_raises "length"
    (Invalid_argument "Metric.of_flat: length <> size * size") (fun () ->
      ignore (Metric.of_flat ~size:2 [| 0; 1; 1 |]))

let test_metric_flat_out_of_range () =
  let m = Metric.of_flat ~size:2 [| 0; 1; 1; 0 |] in
  Alcotest.check_raises "range" (Invalid_argument "Metric.dist: node out of range")
    (fun () -> ignore (Metric.dist m 2 0))

let test_metric_validate_first_error () =
  (* The early-exit validate reports the same message the exhaustive scan
     used to put first. *)
  let bad =
    Metric.make ~size:3 (fun u v ->
        if u = v then 0 else if (u, v) = (0, 2) then 5 else 1)
  in
  Alcotest.(check bool) "asymmetry first" true
    (Metric.validate bad = Error "asymmetric at (0,2)");
  let no_triangle =
    Metric.of_matrix [| [| 0; 1; 5 |]; [| 1; 0; 1 |]; [| 5; 1; 0 |] |]
  in
  Alcotest.(check bool) "triangle message" true
    (Metric.validate no_triangle
    = Error "triangle violated: d(0,2) > d(0,1)+d(1,2)")

(* ------------------------------------------------------------------ *)
(* Mst                                                                *)
(* ------------------------------------------------------------------ *)

let test_kruskal_tree_size () =
  let tree, w = Mst.kruskal diamond in
  Alcotest.(check int) "n-1 edges" 3 (List.length tree);
  Alcotest.(check int) "weight" 3 w

let test_kruskal_forest () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 2); (2, 3, 3) ] in
  let tree, w = Mst.kruskal g in
  Alcotest.(check int) "forest edges" 2 (List.length tree);
  Alcotest.(check int) "forest weight" 5 w

let test_metric_mst () =
  let m = Apsp.to_metric path5 in
  let tree, w = Mst.metric_mst m [ 0; 2; 4 ] in
  Alcotest.(check int) "edges" 2 (List.length tree);
  Alcotest.(check int) "weight" 4 w

let test_metric_mst_degenerate () =
  let m = Apsp.to_metric path5 in
  Alcotest.(check bool) "empty" true (Mst.metric_mst m [] = ([], 0));
  Alcotest.(check bool) "singleton" true (Mst.metric_mst m [ 3 ] = ([], 0));
  Alcotest.(check bool) "duplicates merged" true (snd (Mst.metric_mst m [ 3; 3; 3 ]) = 0)

let prop_mst_leq_any_tree =
  qtest "kruskal weight <= total graph weight" arb_graph (fun g ->
      snd (Mst.kruskal g) <= Graph.total_weight g)

(* ------------------------------------------------------------------ *)
(* Tsp / Walk                                                         *)
(* ------------------------------------------------------------------ *)

let test_tsp_exact_line () =
  let m = Apsp.to_metric path5 in
  (* Optimal path through {0, 2, 4} is 0->2->4 of length 4. *)
  Alcotest.(check int) "line tsp" 4 (Tsp.exact_path_length m [ 0; 2; 4 ]);
  (* Starting from node 4: 4->2->0 also length 4; from 2: 2->0->4 = 6. *)
  Alcotest.(check int) "start 4" 4 (Tsp.exact_path_length m ~start:4 [ 0; 2 ]);
  Alcotest.(check int) "start mid" 6 (Tsp.exact_path_length m ~start:2 [ 0; 4 ])

let test_tsp_exact_degenerate () =
  let m = Apsp.to_metric path5 in
  Alcotest.(check int) "empty" 0 (Tsp.exact_path_length m []);
  Alcotest.(check int) "singleton free" 0 (Tsp.exact_path_length m [ 3 ]);
  Alcotest.(check int) "singleton with start" 3 (Tsp.exact_path_length m ~start:0 [ 3 ])

let test_tsp_exact_cap () =
  let m = Metric.make ~size:20 (fun u v -> abs (u - v)) in
  let terms = List.init 16 Fun.id in
  Alcotest.check_raises "cap" (Invalid_argument "Tsp.exact_path_length: too many terminals")
    (fun () -> ignore (Tsp.exact_path_length m terms))

let test_tsp_nn () =
  let m = Apsp.to_metric path5 in
  let order, len = Tsp.nearest_neighbor m ~start:0 [ 4; 2 ] in
  Alcotest.(check (list int)) "nn order" [ 2; 4 ] order;
  Alcotest.(check int) "nn length" 4 len

let test_tsp_mst_preorder () =
  let m = Apsp.to_metric path5 in
  let order, len = Tsp.mst_preorder m [ 0; 2; 4 ] in
  Alcotest.(check int) "visits all" 3 (List.length order);
  Alcotest.(check bool) "length sane" true (len >= 4)

let arb_terminals =
  QCheck.make
    QCheck.Gen.(
      let* g = random_graph_gen in
      let n = Graph.n g in
      let* size = int_range 1 (min n 7) in
      let* seed = int_range 0 1_000_000 in
      let rng = Dtm_util.Prng.create ~seed in
      let terms = Array.to_list (Dtm_util.Prng.sample_subset rng ~k:size ~n) in
      let start = Dtm_util.Prng.int rng n in
      return (g, start, terms))

let prop_tsp_bounds_bracket_exact =
  qtest "lower <= exact <= upper (with start)" arb_terminals (fun (g, start, terms) ->
      let m = Apsp.to_metric g in
      let lo = Tsp.lower_bound m ~start terms in
      let hi = Tsp.upper_bound m ~start terms in
      let ex = Tsp.exact_path_length m ~start terms in
      lo <= ex && ex <= hi)

let prop_tsp_bounds_bracket_exact_free =
  qtest "lower <= exact <= upper (free start)" arb_terminals (fun (g, _, terms) ->
      let m = Apsp.to_metric g in
      let lo = Tsp.lower_bound m terms in
      let hi = Tsp.upper_bound m terms in
      let ex = Tsp.exact_path_length m terms in
      lo <= ex && ex <= hi)

let prop_walk_bounds_consistent =
  qtest "walk bounds ordered and exact bracketed" arb_terminals
    (fun (g, start, terms) ->
      let m = Apsp.to_metric g in
      let b = Walk.bounds m ~home:start terms in
      b.Walk.lower <= b.Walk.upper
      && Walk.best_lower b <= Walk.best_upper b
      &&
      match b.Walk.exact with
      | Some e -> b.Walk.lower <= e && e <= b.Walk.upper
      | None -> true)

let test_walk_empty () =
  let m = Apsp.to_metric path5 in
  let b = Walk.bounds m ~home:0 [] in
  Alcotest.(check int) "empty lower" 0 b.Walk.lower;
  Alcotest.(check int) "empty upper" 0 b.Walk.upper

let test_walk_line_exact () =
  let m = Apsp.to_metric path5 in
  let b = Walk.bounds m ~home:2 [ 0; 4 ] in
  Alcotest.(check bool) "exact known" true (b.Walk.exact = Some 6)

(* ------------------------------------------------------------------ *)
(* Graph_io                                                           *)
(* ------------------------------------------------------------------ *)

let test_graph_io_roundtrip () =
  match Graph_io.of_string (Graph_io.to_string diamond) with
  | Ok g ->
    Alcotest.(check int) "n" (Graph.n diamond) (Graph.n g);
    Alcotest.(check bool) "same edges" true (Graph.edges g = Graph.edges diamond)
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let test_graph_io_rejects () =
  List.iter
    (fun (name, text) ->
      Alcotest.(check bool) name true (Result.is_error (Graph_io.of_string text)))
    [
      ("empty", "");
      ("bad header", "graph v2\nn 3");
      ("missing n", "dtm-graph v1\nedge 0 1 1");
      ("bad record", "dtm-graph v1\nn 3\nvertex 1");
      ("self loop", "dtm-graph v1\nn 3\nedge 1 1 1");
      ("duplicate", "dtm-graph v1\nn 3\nedge 0 1 1\nedge 1 0 2");
      ("bad weight", "dtm-graph v1\nn 3\nedge 0 1 0");
      ("bad int", "dtm-graph v1\nn 3\nedge 0 x 1");
    ]

let test_graph_io_comments () =
  let text = "# a graph\ndtm-graph v1\n\nn 2\n# the only edge\nedge 0 1 3\n" in
  match Graph_io.of_string text with
  | Ok g -> Alcotest.(check (option int)) "weight" (Some 3) (Graph.edge_weight g 0 1)
  | Error e -> Alcotest.failf "parse failed: %s" e

let prop_graph_io_roundtrip =
  qtest "graph serialization round-trips" arb_graph (fun g ->
      match Graph_io.of_string (Graph_io.to_string g) with
      | Ok g' -> Graph.edges g' = Graph.edges g && Graph.n g' = Graph.n g
      | Error _ -> false)

let () =
  Alcotest.run "dtm_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "basic accessors" `Quick test_graph_basic;
          Alcotest.test_case "rejects self loop" `Quick test_graph_rejects_self_loop;
          Alcotest.test_case "rejects duplicate" `Quick test_graph_rejects_duplicate;
          Alcotest.test_case "rejects bad weight" `Quick test_graph_rejects_bad_weight;
          Alcotest.test_case "rejects out of range" `Quick test_graph_rejects_out_of_range;
          Alcotest.test_case "connectivity" `Quick test_graph_connectivity;
          Alcotest.test_case "neighbors" `Quick test_graph_neighbors;
        ] );
      ( "shortest-paths",
        [
          Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
          Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "bfs path" `Quick test_bfs_path;
          Alcotest.test_case "bfs no path" `Quick test_bfs_path_none;
          Alcotest.test_case "dijkstra weighted" `Quick test_dijkstra_weighted;
          Alcotest.test_case "dijkstra path" `Quick test_dijkstra_path;
          prop_bfs_dijkstra_agree;
          prop_dijkstra_triangle;
        ] );
      ( "apsp-metric",
        [
          Alcotest.test_case "apsp symmetric" `Quick test_apsp_symmetric;
          Alcotest.test_case "unit detection" `Quick test_apsp_unit_detection;
          Alcotest.test_case "metric validates" `Quick test_metric_validate_ok;
          Alcotest.test_case "catches asymmetry" `Quick test_metric_validate_catches_asymmetry;
          Alcotest.test_case "diameter" `Quick test_metric_diameter;
          Alcotest.test_case "max_dist_among" `Quick test_metric_max_dist_among;
          Alcotest.test_case "out of range" `Quick test_metric_out_of_range;
          Alcotest.test_case "flat backend" `Quick test_metric_flat_backend;
          Alcotest.test_case "of_flat rejects" `Quick test_metric_of_flat_rejects;
          Alcotest.test_case "flat out of range" `Quick test_metric_flat_out_of_range;
          Alcotest.test_case "validate first error" `Quick test_metric_validate_first_error;
        ] );
      ( "mst",
        [
          Alcotest.test_case "kruskal tree" `Quick test_kruskal_tree_size;
          Alcotest.test_case "kruskal forest" `Quick test_kruskal_forest;
          Alcotest.test_case "metric mst" `Quick test_metric_mst;
          Alcotest.test_case "degenerate" `Quick test_metric_mst_degenerate;
          prop_mst_leq_any_tree;
        ] );
      ( "graph-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_graph_io_roundtrip;
          Alcotest.test_case "rejects" `Quick test_graph_io_rejects;
          Alcotest.test_case "comments" `Quick test_graph_io_comments;
          prop_graph_io_roundtrip;
        ] );
      ( "tsp-walk",
        [
          Alcotest.test_case "exact on line" `Quick test_tsp_exact_line;
          Alcotest.test_case "exact degenerate" `Quick test_tsp_exact_degenerate;
          Alcotest.test_case "exact cap" `Quick test_tsp_exact_cap;
          Alcotest.test_case "nearest neighbor" `Quick test_tsp_nn;
          Alcotest.test_case "mst preorder" `Quick test_tsp_mst_preorder;
          prop_tsp_bounds_bracket_exact;
          prop_tsp_bounds_bracket_exact_free;
          prop_walk_bounds_consistent;
          Alcotest.test_case "walk empty" `Quick test_walk_empty;
          Alcotest.test_case "walk exact on line" `Quick test_walk_line_exact;
        ] );
    ]
