(* The determinism guarantee, end to end: the binaries must produce
   byte-identical stdout at any -j.  The domain pool merges results in
   submission order and every seed owns its own Prng, so nothing about
   the output may depend on the parallelism degree.

   Runs a cheap subset of experiment entries (e15 is excluded by design:
   it reports wall-clock timings). *)

let experiments = "../bin/experiments.exe"
let cli = "../bin/dtm_cli.exe"

let run cmd =
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED c -> c | _ -> -1 in
  (code, Buffer.contents buf)

let check_identical name cmd_of_jobs =
  let code1, out1 = run (cmd_of_jobs 1) in
  let code4, out4 = run (cmd_of_jobs 4) in
  Alcotest.(check int) (name ^ ": -j 1 exit 0") 0 code1;
  Alcotest.(check int) (name ^ ": -j 4 exit 0") 0 code4;
  Alcotest.(check bool) (name ^ ": output non-empty") true (String.length out1 > 0);
  Alcotest.(check string) (name ^ ": -j 4 byte-identical to -j 1") out1 out4

let test_experiments_subset () =
  check_identical "experiments e3 e8 f1 f2 f3" (fun j ->
      Printf.sprintf "%s -j %d e3 e8 f1 f2 f3" experiments j)

let test_experiments_e16 () =
  (* E16 fans its topology x policy cells over the pool and bisects
     rho* per cell; the whole table must still be jobs-invariant. *)
  check_identical "experiments e16" (fun j ->
      Printf.sprintf "%s -j %d e16" experiments j)

let test_experiments_csv () =
  check_identical "experiments --csv e8" (fun j ->
      Printf.sprintf "%s -j %d --csv e8" experiments j)

let test_analyze_json () =
  check_identical "dtm analyze --json" (fun j ->
      Printf.sprintf "%s analyze -t grid:8x8 -w 16 -k 2 --json -j %d" cli j)

let test_analyze_text () =
  check_identical "dtm analyze (text)" (fun j ->
      Printf.sprintf "%s analyze -t butterfly:3 -w 12 -k 3 -j %d" cli j)

let test_verify_text () =
  check_identical "dtm verify (text)" (fun j ->
      Printf.sprintf "%s verify -t grid:4x4 -w 6 -k 2 --seeds 3 -j %d" cli j)

let test_verify_json () =
  check_identical "dtm verify --json" (fun j ->
      Printf.sprintf "%s verify -t star:3x3 -w 4 -k 2 --seeds 2 --json -j %d" cli j)

let () =
  Alcotest.run "dtm_determinism"
    [
      ( "parallel-vs-sequential",
        [
          Alcotest.test_case "experiments subset" `Quick test_experiments_subset;
          Alcotest.test_case "experiments e16" `Quick test_experiments_e16;
          Alcotest.test_case "experiments csv" `Quick test_experiments_csv;
          Alcotest.test_case "analyze json" `Quick test_analyze_json;
          Alcotest.test_case "analyze text" `Quick test_analyze_text;
          Alcotest.test_case "verify text" `Quick test_verify_text;
          Alcotest.test_case "verify json" `Quick test_verify_json;
        ] );
    ]
