(* Tests for the static diagnostics subsystem (dtm_analysis): code
   table, renderers, the schedule analyzer's agreement with the dynamic
   validator, the instance/metric lints, and the approximation
   certificate checker across all seven paper topologies. *)

open Dtm_analysis
module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule
module Validator = Dtm_core.Validator
module Topology = Dtm_topology.Topology
module Metric = Dtm_graph.Metric
module Prng = Dtm_util.Prng

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let uniform rng ~n ~w ~k = Dtm_workload.Uniform.instance ~rng ~n ~num_objects:w ~k ()

(* Fixed 5-node line: three transactions, two objects (as in test_core). *)
let line5 = Dtm_topology.Line.metric 5

let small_inst =
  Instance.create ~n:5 ~num_objects:2
    ~txns:[ (0, [ 0 ]); (2, [ 0; 1 ]); (4, [ 1 ]) ]
    ~home:[| 0; 4 |]

let feasible_small = Schedule.of_times [ (0, 1); (2, 3); (4, 1) ] ~n:5

(* ------------------------------------------------------------------ *)
(* Codes and renderers                                                *)
(* ------------------------------------------------------------------ *)

let test_codes_stable () =
  let ids = List.map Code.id Code.all in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " shape") true
        (String.length id = 6 && String.sub id 0 3 = "DTM"))
    ids;
  List.iter
    (fun c ->
      Alcotest.(check bool) (Code.id c ^ " roundtrip") true
        (Code.of_id (Code.id c) = Some c))
    Code.all;
  Alcotest.(check (option reject)) "unknown id" None (Code.of_id "DTM999")

let test_every_code_renders () =
  List.iter
    (fun c ->
      let d =
        Diagnostic.make ~loc:(Location.make ~obj:3 ~node:7 ~step:9 ()) c
          "synthetic finding"
      in
      let r = Diagnostic.render d in
      Alcotest.(check bool) (Code.id c ^ " text has id") true (contains r (Code.id c));
      Alcotest.(check bool) (Code.id c ^ " text has title") true
        (contains r (Code.title c));
      Alcotest.(check bool) (Code.id c ^ " text has loc") true
        (contains r "(object 3, node 7, step 9)");
      let j = Json.to_string (Diagnostic.to_json d) in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (Code.id c ^ " json has " ^ needle) true
            (contains j needle))
        [
          "\"code\": \"" ^ Code.id c ^ "\"";
          "\"severity\": \""
          ^ Severity.to_string (Code.default_severity c)
          ^ "\"";
          "\"object\": 3";
          "\"node\": 7";
          "\"step\": 9";
        ])
    Code.all

let test_report_basics () =
  let e = Diagnostic.make Code.Step_conflict "e" in
  let w = Diagnostic.make Code.Unrequested_object "w" in
  let i = Diagnostic.make Code.Shiftable_start "i" in
  let r = Report.of_diagnostics [ i; w; e; e ] in
  Alcotest.(check int) "dedup" 3 (Report.total r);
  Alcotest.(check int) "errors" 1 (Report.count r Severity.Error);
  Alcotest.(check int) "warnings" 1 (Report.count r Severity.Warning);
  Alcotest.(check int) "infos" 1 (Report.count r Severity.Info);
  (match Report.diagnostics r with
  | first :: _ ->
    Alcotest.(check bool) "errors first" true (Diagnostic.is_error first)
  | [] -> Alcotest.fail "empty report");
  Alcotest.(check int) "exit code" 1 (Report.exit_code r);
  Alcotest.(check int) "clean exit" 0 (Report.exit_code Report.empty);
  Alcotest.(check bool) "summary" true
    (contains (Report.summary r) "1 error, 1 warning, 1 info")

(* ------------------------------------------------------------------ *)
(* Schedule analyzer vs the dynamic validator                         *)
(* ------------------------------------------------------------------ *)

let test_feasible_clean () =
  let errs = Schedule_lint.errors_only line5 small_inst feasible_small in
  Alcotest.(check int) "0 errors" 0 (List.length errs);
  Alcotest.(check bool) "validator agrees" true
    (Validator.is_feasible line5 small_inst feasible_small)

let test_duplicate_step_matches_validator () =
  (* Both requesters of object 0 on one step: the acceptance scenario. *)
  let bad = Schedule.of_times [ (0, 3); (2, 3); (4, 1) ] ~n:5 in
  let errs = Schedule_lint.errors_only line5 small_inst bad in
  Alcotest.(check bool) "analyzer errors" true (errs <> []);
  (match Validator.check line5 small_inst bad with
  | Ok () -> Alcotest.fail "validator should reject"
  | Error v ->
    Alcotest.(check bool) "same object as validator" true
      (List.exists
         (fun d -> d.Diagnostic.loc.Location.obj = v.Validator.obj)
         errs));
  Alcotest.(check bool) "DTM105 reported" true
    (List.exists (fun d -> d.Diagnostic.code = Code.Step_conflict) errs)

let test_unscheduled_and_phantom () =
  let missing = Schedule.of_times [ (0, 1); (2, 3) ] ~n:5 in
  let errs = Schedule_lint.errors_only line5 small_inst missing in
  Alcotest.(check bool) "DTM101" true
    (List.exists
       (fun d ->
         d.Diagnostic.code = Code.Unscheduled_txn
         && d.Diagnostic.loc.Location.node = Some 4)
       errs);
  let phantom = Schedule.of_times [ (0, 1); (2, 3); (4, 1); (1, 2) ] ~n:5 in
  let errs = Schedule_lint.errors_only line5 small_inst phantom in
  Alcotest.(check bool) "DTM102" true
    (List.exists
       (fun d ->
         d.Diagnostic.code = Code.Phantom_entry
         && d.Diagnostic.loc.Location.node = Some 1)
       errs)

let test_capacity_mismatch () =
  let wrong = Schedule.of_times [ (0, 1); (2, 3) ] ~n:3 in
  let errs = Schedule_lint.errors_only line5 small_inst wrong in
  Alcotest.(check bool) "DTM106" true
    (List.exists (fun d -> d.Diagnostic.code = Code.Capacity_mismatch) errs)

let test_shiftable_start () =
  let shifted = Schedule.copy feasible_small in
  Schedule.shift shifted 5;
  let ds = Schedule_lint.check line5 small_inst shifted in
  match
    List.find_opt (fun d -> d.Diagnostic.code = Code.Shiftable_start) ds
  with
  | Some d ->
    Alcotest.(check bool) "mentions slack 5" true
      (contains d.Diagnostic.message "shifted 5 steps")
  | None -> Alcotest.fail "expected DTM107"

(* Random instance on a random example topology, with a randomly
   corrupted schedule: whenever the dynamic validator rejects, the
   static analyzer reports an error at the same object/node; and the
   analyzer is clean iff the validator accepts. *)
let prop_analyzer_matches_validator =
  qtest ~count:300 "validator rejects => analyzer errors at same location"
    QCheck.(pair (int_range 0 12) (int_range 0 100_000))
    (fun (ti, seed) ->
      let topo = List.nth Topology.all_examples (ti mod List.length Topology.all_examples) in
      let metric = Topology.metric topo in
      let rng = Prng.create ~seed in
      let n = Topology.n topo in
      let w = 1 + Prng.int rng (max 1 (n / 2)) in
      let k = 1 + Prng.int rng (min 3 w) in
      let inst = uniform rng ~n ~w ~k in
      let sched = Dtm_core.Greedy.schedule metric inst in
      (* Corrupt half the time: move one scheduled node onto another's
         step or to step 1. *)
      (match (Prng.bool rng, Schedule.scheduled_nodes sched) with
      | true, (_ :: _ as nodes) ->
        let arr = Array.of_list nodes in
        let v = Prng.choose rng arr in
        let t =
          if Prng.bool rng then Schedule.time_exn sched (Prng.choose rng arr)
          else 1
        in
        Schedule.set sched ~node:v ~time:t
      | _ -> ());
      let verdict = Validator.check_all metric inst sched in
      let errs = Schedule_lint.errors_only metric inst sched in
      let clean_agrees = (verdict = []) = (errs = []) in
      let located v =
        List.exists
          (fun d ->
            (v.Validator.obj = None
            || d.Diagnostic.loc.Location.obj = v.Validator.obj)
            && (v.Validator.node = None
               || d.Diagnostic.loc.Location.node = v.Validator.node))
          errs
      in
      clean_agrees && List.for_all located verdict)

(* ------------------------------------------------------------------ *)
(* Instance and metric lints                                          *)
(* ------------------------------------------------------------------ *)

let test_unrequested_object () =
  let inst =
    Instance.create ~n:5 ~num_objects:3 ~txns:[ (0, [ 0 ]); (2, [ 0 ]) ]
      ~home:[| 0; 1; 2 |]
  in
  let ds = Instance_lint.check line5 inst in
  Alcotest.(check bool) "DTM006 for objects 1 and 2" true
    (List.length
       (List.filter (fun d -> d.Diagnostic.code = Code.Unrequested_object) ds)
    = 2);
  Alcotest.(check bool) "DTM008 info" true
    (List.exists (fun d -> d.Diagnostic.code = Code.Home_not_at_requester) ds
    = not (Instance.homes_at_requesters inst))

let test_empty_instance () =
  let inst = Instance.create ~n:3 ~num_objects:1 ~txns:[] ~home:[| 0 |] in
  let ds = Instance_lint.check (Dtm_topology.Line.metric 3) inst in
  Alcotest.(check bool) "DTM005" true
    (List.exists (fun d -> d.Diagnostic.code = Code.Empty_instance) ds)

let test_unreachable_home () =
  (* Two disconnected components: object homed in one, requested in the
     other. *)
  let graph = Dtm_graph.Graph.of_edges ~n:4 [ (0, 1, 1); (2, 3, 1) ] in
  let metric = Dtm_graph.Apsp.to_metric graph in
  let inst =
    Instance.create ~n:4 ~num_objects:1 ~txns:[ (2, [ 0 ]) ] ~home:[| 0 |]
  in
  let ds = Instance_lint.check metric inst in
  Alcotest.(check bool) "DTM001" true
    (List.exists
       (fun d ->
         d.Diagnostic.code = Code.Unreachable_home
         && d.Diagnostic.loc.Location.obj = Some 0
         && d.Diagnostic.loc.Location.node = Some 2)
       ds)

let test_hub_overload () =
  (* Star with 6 rays of one node each: every object requested on every
     ray forces 5 center transits per object. *)
  let p = { Dtm_topology.Star.rays = 6; ray_len = 1 } in
  let topo = Topology.Star p in
  let metric = Topology.metric topo in
  let rays = List.init 6 (fun r -> 1 + r) in
  let w = 6 in
  let inst =
    Instance.create ~n:7 ~num_objects:w
      ~txns:(List.map (fun v -> (v, List.init w Fun.id)) rays)
      ~home:(Array.make w 1)
  in
  let ds = Instance_lint.check ~topo metric inst in
  Alcotest.(check bool) "DTM007" true
    (List.exists (fun d -> d.Diagnostic.code = Code.Hub_overload) ds)

let test_metric_lints () =
  Alcotest.(check (list reject)) "clean metric" []
    (Metric_lint.check line5);
  let bad =
    Metric.of_matrix
      [| [| 0; 5; 1 |]; [| 4; 2; 1 |]; [| 1; 1; 0 |] |]
  in
  let ds = Metric_lint.check bad in
  let has c = List.exists (fun d -> d.Diagnostic.code = c) ds in
  Alcotest.(check bool) "DTM002 asymmetry" true (has Code.Metric_asymmetry);
  Alcotest.(check bool) "DTM003 diagonal" true (has Code.Metric_degenerate);
  Alcotest.(check bool) "DTM004 triangle" true (has Code.Triangle_violation)

(* ------------------------------------------------------------------ *)
(* Certificates                                                       *)
(* ------------------------------------------------------------------ *)

let seven_topologies =
  [
    Topology.Clique 12;
    Topology.Line 16;
    Topology.Grid { rows = 4; cols = 4 };
    Topology.Cluster { Dtm_topology.Cluster.clusters = 3; size = 4; bridge_weight = 5 };
    Topology.Hypercube { dim = 3 };
    Topology.Butterfly { dim = 2 };
    Topology.Star { Dtm_topology.Star.rays = 4; ray_len = 5 };
  ]

let test_certificates_hold () =
  (* 200 seeds x 7 topologies: fanned out on the domain pool (the same
     machinery the -j flag uses), failures reported in seed order. *)
  Dtm_util.Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun topo ->
          let n = Topology.n topo in
          Dtm_util.Pool.map pool
            (fun seed ->
              let rng = Prng.create ~seed in
              let w = 1 + Prng.int rng (max 1 (n / 2)) in
              let k = 1 + Prng.int rng (min 3 w) in
              let inst = uniform rng ~n ~w ~k in
              let cert, diags = Certificate.check_auto ~seed topo inst in
              if diags <> [] then
                Alcotest.failf "%s seed %d: %s"
                  (Topology.to_string topo)
                  seed
                  (String.concat "; " (List.map Diagnostic.render diags));
              match cert.Certificate.bound with
              | Some b ->
                Alcotest.(check bool) "makespan within bound" true
                  (cert.Certificate.makespan <= b)
              | None -> Alcotest.failf "%s: no bound" (Topology.to_string topo))
            (List.init 200 Fun.id)
          |> ignore)
        seven_topologies)

let test_certificate_failure_path () =
  (* A deliberately broken bound must trip DTM201. *)
  let broken =
    {
      Certificate.scheduler = "broken";
      topology = "clique:4";
      makespan = 50;
      lower = 5;
      bound = Some 10;
      factor = 2.0;
    }
  in
  (match Certificate.verify broken with
  | [ d ] ->
    Alcotest.(check bool) "DTM201" true
      (d.Diagnostic.code = Code.Certificate_violation);
    Alcotest.(check bool) "is error" true (Diagnostic.is_error d);
    Alcotest.(check bool) "render flags violation" true
      (contains (Certificate.render broken) "VIOLATED")
  | ds ->
    Alcotest.failf "expected one DTM201, got %d findings" (List.length ds));
  let unavailable = { broken with Certificate.bound = None; makespan = 1 } in
  match Certificate.verify unavailable with
  | [ d ] ->
    Alcotest.(check bool) "DTM202" true
      (d.Diagnostic.code = Code.Certificate_unavailable)
  | ds ->
    Alcotest.failf "expected one DTM202, got %d findings" (List.length ds)

let test_certificate_unavailable_disconnected () =
  let graph = Dtm_graph.Graph.of_edges ~n:4 [ (0, 1, 1); (2, 3, 1) ] in
  let topo = Topology.Custom { name = "split"; graph } in
  let inst =
    Instance.create ~n:4 ~num_objects:1 ~txns:[ (0, [ 0 ]); (1, [ 0 ]) ]
      ~home:[| 0 |]
  in
  Alcotest.(check (option reject)) "no finite bound" None
    (Certificate.theorem_bound topo inst)

(* ------------------------------------------------------------------ *)
(* Driver and experiment gate                                         *)
(* ------------------------------------------------------------------ *)

let test_run_auto_clean () =
  let topo = Topology.Grid { rows = 4; cols = 4 } in
  let rng = Prng.create ~seed:11 in
  let inst = uniform rng ~n:16 ~w:8 ~k:2 in
  let report, sched, cert = Analyze.run_auto topo inst in
  Alcotest.(check int) "0 errors" 0 (Report.count report Severity.Error);
  Alcotest.(check bool) "schedule feasible" true
    (Validator.is_feasible (Topology.metric topo) inst sched);
  Alcotest.(check bool) "certificate holds" true
    (match cert.Certificate.bound with
    | Some b -> cert.Certificate.makespan <= b
    | None -> false)

let test_measure_gate () =
  let m = Dtm_expt.Runner.measure line5 small_inst feasible_small in
  Alcotest.(check bool) "clean" true m.Dtm_expt.Runner.clean;
  let bad = Schedule.of_times [ (0, 3); (2, 3); (4, 1) ] ~n:5 in
  let m = Dtm_expt.Runner.measure line5 small_inst bad in
  Alcotest.(check bool) "not feasible" false m.Dtm_expt.Runner.feasible;
  Alcotest.(check bool) "not clean" false m.Dtm_expt.Runner.clean

let () =
  Alcotest.run "dtm_analysis"
    [
      ( "codes",
        [
          Alcotest.test_case "stable ids" `Quick test_codes_stable;
          Alcotest.test_case "every code renders" `Quick test_every_code_renders;
          Alcotest.test_case "report basics" `Quick test_report_basics;
        ] );
      ( "schedule-lint",
        [
          Alcotest.test_case "feasible is clean" `Quick test_feasible_clean;
          Alcotest.test_case "duplicate step = validator verdict" `Quick
            test_duplicate_step_matches_validator;
          Alcotest.test_case "unscheduled + phantom" `Quick
            test_unscheduled_and_phantom;
          Alcotest.test_case "capacity mismatch" `Quick test_capacity_mismatch;
          Alcotest.test_case "shiftable start" `Quick test_shiftable_start;
          prop_analyzer_matches_validator;
        ] );
      ( "instance-lint",
        [
          Alcotest.test_case "unrequested object" `Quick test_unrequested_object;
          Alcotest.test_case "empty instance" `Quick test_empty_instance;
          Alcotest.test_case "unreachable home" `Quick test_unreachable_home;
          Alcotest.test_case "hub overload" `Quick test_hub_overload;
          Alcotest.test_case "metric lints" `Quick test_metric_lints;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "hold on 200 instances x 7 topologies" `Slow
            test_certificates_hold;
          Alcotest.test_case "failure path" `Quick test_certificate_failure_path;
          Alcotest.test_case "unavailable on disconnected" `Quick
            test_certificate_unavailable_disconnected;
        ] );
      ( "driver",
        [
          Alcotest.test_case "run_auto clean" `Quick test_run_auto_clean;
          Alcotest.test_case "experiment gate" `Quick test_measure_gate;
        ] );
    ]
