(* Property layer for the continual-arrival open-system engine:

     - seeded injection sources replay identically (and their homes are
       stable),
     - conservation holds at every step: injected = committed + queue,
     - a finite stream drains completely and the engine reports it
       bounded,
     - the committed prefix of any run is a legal DTM execution: its
       commit times replay through the metric-descent Walker and pass
       every DTM11x trace lint, on all seven paper topologies,
     - a 10^6-transaction steady-state run holds only the active
       frontier (live-heap probe) and allocates O(1) per transaction
       (minor-words bound), mirroring the PR 5 warm-replay test. *)

module Topology = Dtm_topology.Topology
module Prng = Dtm_util.Prng
module Stream = Dtm_online.Stream
module Policy = Dtm_online.Policy
module Open_system = Dtm_online.Open_system
module Injection = Dtm_workload.Injection

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let seed_gen = QCheck.int_range 0 1_000_000

let seven_topologies rng =
  let range lo hi = Prng.int_in_range rng ~lo ~hi in
  [
    Topology.Clique (range 4 24);
    Topology.Line (range 4 32);
    Topology.Grid { rows = range 2 5; cols = range 2 5 };
    Topology.Cluster
      {
        Dtm_topology.Cluster.clusters = range 2 4;
        size = range 2 5;
        bridge_weight = range 2 8;
      };
    Topology.Hypercube { dim = range 2 4 };
    Topology.Butterfly { dim = range 2 3 };
    Topology.Star { Dtm_topology.Star.rays = range 2 5; ray_len = range 1 6 };
  ]

let policies =
  [
    Policy.Timestamp { preemption = false };
    Policy.Timestamp { preemption = true };
    Policy.Nearest;
    Policy.Random_grant 5;
    Policy.Window_greedy { window = 8; seed = 2 };
  ]

let draw_policy rng = List.nth policies (Prng.int rng (List.length policies))

let spec_of rng =
  let range lo hi = Prng.int_in_range rng ~lo ~hi in
  let dist =
    match Prng.int rng 3 with
    | 0 -> Injection.Uniform_objects
    | 1 -> Injection.Zipf_objects (0.5 +. Prng.float rng 1.0)
    | _ -> Injection.Hot_objects (Prng.float rng 0.9)
  in
  {
    Injection.n = range 2 24;
    num_objects = range 2 32;
    k = 0 (* fixed below *);
    rate = 0.05 +. Prng.float rng 1.0;
    burst = range 1 6;
    dist;
    seed = Prng.int rng 1_000_000;
  }

let spec_of rng =
  let s = spec_of rng in
  let m = s.Injection.num_objects in
  { s with Injection.k = Prng.int_in_range rng ~lo:1 ~hi:(min 3 m) }

(* ------------------------------------------------------------------ *)
(* P1: injection replay determinism                                    *)
(* ------------------------------------------------------------------ *)

let prop_injection_replays =
  qtest "P1: equal specs produce identical streams and homes" seed_gen
    (fun seed ->
      let rng = Prng.create ~seed in
      let spec = spec_of rng in
      let take n src =
        List.init n (fun _ -> Stream.pull src)
        |> List.filter_map (fun t -> t)
        |> List.map (fun t -> (t.Stream.node, t.Stream.objects, t.Stream.arrival))
      in
      let a = take 500 (Injection.source spec) in
      let b = take 500 (Injection.source spec) in
      a = b
      && Injection.homes spec = Injection.homes spec
      && List.length a = 500)

(* ------------------------------------------------------------------ *)
(* P2: to_source ordering round-trips                                  *)
(* ------------------------------------------------------------------ *)

let prop_to_source_ordered =
  qtest "P2: Stream.to_source yields (arrival, node)-sorted txns" seed_gen
    (fun seed ->
      let rng = Prng.create ~seed in
      let n = Prng.int_in_range rng ~lo:2 ~hi:12 in
      let s =
        Stream.uniform ~rng ~n ~num_objects:6 ~k:2
          ~txns_per_node:(Prng.int rng 5)
          ~mean_gap:2
      in
      let src = Stream.to_source s in
      let rec drain acc =
        match Stream.pull src with
        | None -> List.rev acc
        | Some t -> drain (t :: acc)
      in
      let pulled = drain [] in
      List.length pulled = Stream.total s
      && List.for_all2
           (fun a b ->
             a.Stream.arrival = b.Stream.arrival && a.Stream.node = b.Stream.node)
           pulled (Stream.txns s))

(* ------------------------------------------------------------------ *)
(* P3: conservation + drain on finite injection workloads              *)
(* ------------------------------------------------------------------ *)

let prop_conservation =
  qtest "P3: injected = committed + queue at every step; finite drains"
    seed_gen (fun seed ->
      let rng = Prng.create ~seed in
      let spec = spec_of rng in
      let limit = Prng.int_in_range rng ~lo:1 ~hi:200 in
      let policy = draw_policy rng in
      let metric = Dtm_topology.Clique.metric spec.Injection.n in
      let violations = ref 0 in
      let steps = ref 0 in
      let probe ~step:_ ~injected ~committed ~queue =
        incr steps;
        if injected <> committed + queue then incr violations
      in
      let r =
        Open_system.run ~policy ~patience:10 ~probe metric
          (Injection.source ~limit spec)
          ~homes:(Injection.homes spec) ~horizon:100_000
      in
      !violations = 0
      && !steps > 0
      && r.Open_system.injected = limit
      && r.Open_system.committed = limit
      && r.Open_system.final_queue = 0
      && r.Open_system.verdict = Open_system.Bounded
      && r.Open_system.injected
         = r.Open_system.committed + r.Open_system.final_queue)

(* ------------------------------------------------------------------ *)
(* P4: committed prefixes replay and pass the DTM11x lints             *)
(* ------------------------------------------------------------------ *)

(* At most one transaction per node, so the committed prefix of a run
   maps directly onto a core [Instance]. *)
let one_shot_stream rng topo =
  let n = Topology.n topo in
  let num_objects = Prng.int_in_range rng ~lo:1 ~hi:(max 1 (n / 2) + 1) in
  let issuers = Prng.int_in_range rng ~lo:1 ~hi:(min n 8) in
  let nodes = Array.to_list (Prng.sample_subset rng ~k:issuers ~n) in
  let txns =
    List.map
      (fun node ->
        let k = Prng.int_in_range rng ~lo:1 ~hi:(min 3 num_objects) in
        let objects = Array.to_list (Prng.sample_subset rng ~k ~n:num_objects) in
        { Stream.node; objects; arrival = 1 + Prng.int rng 20 })
      nodes
  in
  Stream.create ~n ~num_objects txns

let lint_prefix ~seed:_ rng topo =
  let policy = draw_policy rng in
  let stream = one_shot_stream rng topo in
  let metric = Topology.metric topo in
  let homes = Stream.initial_homes ~rng stream in
  let horizon = Prng.int_in_range rng ~lo:10 ~hi:2_000 in
  let commits = ref [] in
  let on_commit ~id:_ ~node ~step = commits := (node, step) :: !commits in
  let _ =
    Open_system.run ~policy ~patience:10 ~on_commit metric
      (Stream.to_source stream) ~homes ~horizon
  in
  match !commits with
  | [] -> true (* nothing committed within the horizon: empty prefix *)
  | commits ->
    let n = Stream.n stream in
    let committed_nodes = List.map fst commits in
    let txns =
      List.filter_map
        (fun v ->
          match Stream.queue_at stream v with
          | [ t ] when List.mem v committed_nodes -> Some (v, t.Stream.objects)
          | _ -> None)
        (List.init n (fun v -> v))
    in
    let inst =
      Dtm_core.Instance.create ~n
        ~num_objects:(Stream.num_objects stream)
        ~txns ~home:homes
    in
    let sched = Dtm_core.Schedule.of_times commits ~n in
    let graph = Topology.graph topo in
    let w = Dtm_sim.Walker.run graph metric inst sched in
    w.Dtm_sim.Walker.ok
    && Dtm_analysis.Trace_lint.check ~graph ~metric inst ~commits:sched
         w.Dtm_sim.Walker.trace
       = []

let prop_lint_prefixes =
  qtest ~count:20
    "P4: committed prefixes pass DTM11x lints on all seven topologies"
    seed_gen (fun seed ->
      let rng = Prng.create ~seed in
      List.for_all (fun topo -> lint_prefix ~seed rng topo)
        (seven_topologies rng))

(* ------------------------------------------------------------------ *)
(* Frontier-boundedness of the 10^6-transaction steady-state run       *)
(* ------------------------------------------------------------------ *)

let test_steady_state_allocation () =
  let txns = 1_000_000 in
  let spec =
    {
      Injection.n = 32;
      num_objects = 128;
      k = 2;
      rate = 1.0;
      burst = 4;
      dist = Injection.Zipf_objects 1.0;
      seed = 7;
    }
  in
  let metric = Dtm_topology.Clique.metric spec.Injection.n in
  let homes = Injection.homes spec in
  Gc.full_major ();
  let live0 = (Gc.stat ()).Gc.live_words in
  let live_peak = ref live0 in
  let probe ~step ~injected:_ ~committed:_ ~queue:_ =
    (* A handful of full majors along the way: the live heap never grows
       past the frontier, so materializing the stream (~20M words for
       10^6 transactions) would trip the bound at the first probe. *)
    if step mod 250_000 = 0 then begin
      Gc.full_major ();
      let lw = (Gc.stat ()).Gc.live_words in
      if lw > !live_peak then live_peak := lw
    end
  in
  let words_before = Gc.minor_words () in
  let r =
    Open_system.run
      ~policy:(Policy.Timestamp { preemption = true })
      ~probe metric
      (Injection.source ~limit:txns spec)
      ~homes ~horizon:(4 * txns)
  in
  let words = Gc.minor_words () -. words_before in
  Alcotest.(check int) "all transactions committed" txns r.Open_system.committed;
  Alcotest.(check bool)
    "verdict bounded" true
    (r.Open_system.verdict = Open_system.Bounded);
  let live_growth = !live_peak - live0 in
  Alcotest.(check bool)
    (Printf.sprintf "live heap stays at the frontier (grew %d words)"
       live_growth)
    true
    (live_growth < 2_000_000);
  (* ~240 words/txn today (generator draws, waiter conses, calendar
     entries, per-step sorts); the bound has headroom for constants but
     trips on anything super-linear in the history. *)
  let per_txn = words /. float_of_int txns in
  Alcotest.(check bool)
    (Printf.sprintf "allocation is O(1) per transaction (%.1f words/txn)"
       per_txn)
    true (per_txn < 500.0)

let () =
  Alcotest.run "dtm_stability"
    [
      ( "injection",
        [ prop_injection_replays; prop_to_source_ordered ] );
      ("conservation", [ prop_conservation ]);
      ("trace-lints", [ prop_lint_prefixes ]);
      ( "allocation",
        [
          Alcotest.test_case "steady-state frontier" `Slow
            test_steady_state_allocation;
        ] );
    ]
