(* The property-based test layer (QCheck): random instances on all
   seven paper topologies, checking the end-to-end contracts the
   theorems promise —

     - the auto scheduler's output is validator-feasible,
     - its makespan stays within the Certificate theorem bound,
     - the certified lower bound never exceeds a feasible makespan,
     - Engine.compact never lengthens a schedule (and stays feasible),
     - every generated topology metric passes Metric_lint,
     - the parallel measurement stack (Dtm_util.Pool) is byte-identical
       to sequential at any -j,
     - the branch-and-bound walk oracle equals the transcribed Held-Karp
       reference, and the lower-bound engines are jobs-invariant.

   Every property draws one integer seed and derives size parameters
   per topology from it with Prng, so each QCheck case exercises all
   seven families deterministically. *)

module Topology = Dtm_topology.Topology
module Schedule = Dtm_core.Schedule
module Validator = Dtm_core.Validator
module Certificate = Dtm_analysis.Certificate
module Prng = Dtm_util.Prng
module Pool = Dtm_util.Pool

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let seed_gen = QCheck.int_range 0 1_000_000

(* One topology per family, sizes drawn from the seed. *)
let seven_topologies rng =
  let range lo hi = Prng.int_in_range rng ~lo ~hi in
  [
    Topology.Clique (range 4 24);
    Topology.Line (range 4 32);
    Topology.Grid { rows = range 2 5; cols = range 2 5 };
    Topology.Cluster
      {
        Dtm_topology.Cluster.clusters = range 2 4;
        size = range 2 5;
        bridge_weight = range 2 8;
      };
    Topology.Hypercube { dim = range 2 4 };
    Topology.Butterfly { dim = range 2 3 };
    Topology.Star { Dtm_topology.Star.rays = range 2 5; ray_len = range 1 6 };
  ]

let instance_on rng topo =
  let n = Topology.n topo in
  let w = 1 + Prng.int rng (max 1 (n / 2)) in
  let k = 1 + Prng.int rng (min 3 w) in
  Dtm_workload.Uniform.instance ~rng ~n ~num_objects:w ~k ()

let for_all_topologies seed check =
  let rng = Prng.create ~seed in
  List.for_all
    (fun topo ->
      let inst = instance_on rng topo in
      check ~seed topo inst)
    (seven_topologies rng)

(* P1: the paper scheduler always emits a feasible schedule. *)
let prop_auto_feasible =
  qtest "auto schedule is validator-feasible on all 7 topologies" seed_gen
    (fun seed ->
      for_all_topologies seed (fun ~seed topo inst ->
          let sched = Dtm_sched.Auto.schedule ~seed topo inst in
          Validator.is_feasible (Topology.metric topo) inst sched))

(* P2: the makespan stays inside the topology's theorem bound. *)
let prop_auto_within_certificate =
  qtest "auto schedule within its Certificate theorem bound" seed_gen
    (fun seed ->
      for_all_topologies seed (fun ~seed topo inst ->
          let cert, diags = Certificate.check_auto ~seed topo inst in
          diags = []
          &&
          match cert.Certificate.bound with
          | Some b -> cert.Certificate.makespan <= b
          | None -> false))

(* P3: the certified lower bound is sound — no feasible schedule beats it. *)
let prop_lower_bound_sound =
  qtest "certified lower bound <= any feasible makespan" seed_gen
    (fun seed ->
      for_all_topologies seed (fun ~seed topo inst ->
          let metric = Topology.metric topo in
          let lb = Dtm_core.Lower_bound.certified metric inst in
          let sched = Dtm_sched.Auto.schedule ~seed topo inst in
          let greedy = Dtm_core.Greedy.schedule metric inst in
          lb <= Schedule.makespan sched && lb <= Schedule.makespan greedy))

(* P4: compaction never lengthens and preserves feasibility. *)
let prop_compact_never_lengthens =
  qtest "Engine.compact never lengthens a schedule" seed_gen
    (fun seed ->
      for_all_topologies seed (fun ~seed:_ topo inst ->
          let metric = Topology.metric topo in
          let sched = Dtm_core.Greedy.schedule metric inst in
          let compacted = Dtm_sim.Engine.compact metric inst sched in
          Schedule.makespan compacted <= Schedule.makespan sched
          && Validator.is_feasible metric inst compacted))

(* P5: every generated topology metric is a clean metric space. *)
let prop_metrics_pass_lint =
  qtest "topology metrics always pass Metric_lint" seed_gen
    (fun seed ->
      let rng = Prng.create ~seed in
      List.for_all
        (fun topo -> Dtm_analysis.Metric_lint.check (Topology.metric topo) = [])
        (seven_topologies rng))

(* P6: the parallel measurement stack is deterministic — mean_ratio is
   bit-identical at -j 1 and -j 4 (ordered merge, per-seed Prng). *)
let prop_measurements_parallel_deterministic =
  qtest ~count:15 "Runner.mean_ratio identical at jobs 1 and 4" seed_gen
    (fun seed ->
      let rng = Prng.create ~seed in
      let topo =
        List.nth (seven_topologies rng) (seed mod 7)
      in
      let n = Topology.n topo in
      let w = max 2 (n / 3) in
      let measure () =
        Dtm_expt.Runner.mean_ratio
          ~seeds:[ seed; seed + 1; seed + 2; seed + 3 ]
          ~gen:(fun rng ->
            Dtm_workload.Uniform.instance ~rng ~n ~num_objects:w ~k:2 ())
          ~metric:(Topology.metric topo)
          ~sched:(fun inst -> Dtm_core.Greedy.schedule (Topology.metric topo) inst)
          ()
      in
      Pool.set_default_jobs 1;
      let sequential = measure () in
      Pool.set_default_jobs 4;
      let parallel = measure () in
      Pool.set_default_jobs 2;
      sequential = parallel)

(* P7: Runner.sweep merges in seed order — it equals the sequential map. *)
let prop_sweep_ordered =
  qtest ~count:15 "Runner.sweep = sequential per-seed measurement" seed_gen
    (fun seed ->
      let rng = Prng.create ~seed in
      let topo = List.nth (seven_topologies rng) ((seed + 3) mod 7) in
      let metric = Topology.metric topo in
      let n = Topology.n topo in
      let gen rng =
        Dtm_workload.Uniform.instance ~rng ~n ~num_objects:(max 2 (n / 4)) ~k:2 ()
      in
      let sched inst = Dtm_core.Greedy.schedule metric inst in
      let seeds = List.init 5 (fun i -> seed + i) in
      let swept = Dtm_expt.Runner.sweep ~seeds ~gen ~metric ~sched () in
      let sequential =
        List.map
          (fun s ->
            let rng = Prng.create ~seed:s in
            let inst = gen rng in
            Dtm_expt.Runner.measure metric inst (sched inst))
          seeds
      in
      swept = sequential)

(* P8: the flat (materialized) metric backend is observationally equal
   to the closed-form oracle on all seven paper topologies — dist on
   every pair, diameter, and max_dist_among on a random subset. *)
let prop_flat_matches_oracle =
  qtest "flat backend = closure oracle on all 7 topologies" seed_gen
    (fun seed ->
      let rng = Prng.create ~seed in
      let range lo hi = Prng.int_in_range rng ~lo ~hi in
      let oracles =
        [
          Dtm_topology.Clique.oracle (range 4 24);
          Dtm_topology.Line.oracle (range 4 32);
          Dtm_topology.Grid.oracle ~rows:(range 2 6) ~cols:(range 2 6);
          Dtm_topology.Torus.oracle ~rows:(range 2 6) ~cols:(range 2 6);
          Dtm_topology.Hypercube.oracle ~dim:(range 2 4);
          Dtm_topology.Star.oracle
            { Dtm_topology.Star.rays = range 2 5; ray_len = range 1 6 };
          Dtm_topology.Cluster.oracle
            {
              Dtm_topology.Cluster.clusters = range 2 4;
              size = range 2 5;
              bridge_weight = range 2 8;
            };
        ]
      in
      let module Metric = Dtm_graph.Metric in
      List.for_all
        (fun oracle ->
          let flat = Metric.materialize ~threshold:1 oracle in
          let n = Metric.size oracle in
          let dists_agree = ref (Metric.is_flat flat) in
          for u = 0 to n - 1 do
            for v = 0 to n - 1 do
              if Metric.dist flat u v <> Metric.dist oracle u v then
                dists_agree := false
            done
          done;
          let k = 1 + Prng.int rng n in
          let nodes = Array.to_list (Prng.sample_subset rng ~k ~n) in
          !dists_agree
          && Metric.diameter flat = Metric.diameter oracle
          && Metric.max_dist_among flat nodes = Metric.max_dist_among oracle nodes)
        oracles)

(* Reference (pre-optimization) conflict-graph and coloring kernels,
   transcribed from the seed implementations: boxed-tuple hashing for
   dedup, list-based interval scans for the color searches.  P9/P10
   pin the rewritten kernels to these. *)
module Seed_ref = struct
  module Instance = Dtm_core.Instance
  module Dependency = Dtm_core.Dependency

  (* conflicts, hmax, num_conflicts of the seed Dependency.build *)
  let build metric inst =
    let n = Instance.n inst in
    let pair_seen = Hashtbl.create 256 in
    let adj = Array.make (max 1 n) [] in
    let hmax = ref 0 and num = ref 0 in
    for o = 0 to Instance.num_objects inst - 1 do
      let reqs = Instance.requesters inst o in
      let len = Array.length reqs in
      for i = 0 to len - 1 do
        for j = i + 1 to len - 1 do
          let u = reqs.(i) and v = reqs.(j) in
          if not (Hashtbl.mem pair_seen (u, v)) then begin
            Hashtbl.replace pair_seen (u, v) ();
            let w = Dtm_graph.Metric.dist metric u v in
            adj.(u) <- (v, w) :: adj.(u);
            adj.(v) <- (u, w) :: adj.(v);
            if w > !hmax then hmax := w;
            incr num
          end
        done
      done
    done;
    (Array.map Array.of_list adj, !hmax, !num)

  let smallest_compact constraints =
    let forbidden =
      List.filter_map
        (fun (cv, w) ->
          let lo = max 1 (cv - w + 1) and hi = cv + w - 1 in
          if lo <= hi then Some (lo, hi) else None)
        constraints
    in
    let sorted = List.sort compare forbidden in
    let rec scan c = function
      | [] -> c
      | (lo, hi) :: rest -> if c < lo then c else scan (max c (hi + 1)) rest
    in
    scan 1 sorted

  let smallest_slotted hmax constraints =
    let step = max 1 hmax in
    let ok c = List.for_all (fun (cv, w) -> abs (c - cv) >= w) constraints in
    let rec go j =
      let c = (j * step) + 1 in
      if ok c then c else go (j + 1)
    in
    go 0

  let order_nodes order dep inst =
    let nodes = Array.copy (Instance.txn_nodes inst) in
    (match order with
    | Dtm_core.Coloring.Natural -> ()
    | Dtm_core.Coloring.Desc_degree ->
      let deg v = Array.length (Dependency.conflicts dep v) in
      let lst = Array.to_list nodes in
      let sorted = List.stable_sort (fun a b -> compare (deg b) (deg a)) lst in
      List.iteri (fun i v -> nodes.(i) <- v) sorted
    | Dtm_core.Coloring.Random_order seed ->
      let rng = Prng.create ~seed in
      Prng.shuffle rng nodes);
    nodes

  (* Seed Coloring.greedy on top of the production dependency graph
     (adjacency order differs from the seed's, but both searches are
     insensitive to it). *)
  let greedy ~strategy ~order dep inst =
    let n = Instance.n inst in
    let colors = Array.make n 0 in
    let nodes = order_nodes order dep inst in
    let hmax = Dependency.hmax dep in
    Array.iter
      (fun v ->
        let constraints =
          Array.to_list (Dependency.conflicts dep v)
          |> List.filter_map (fun (u, w) ->
                 if colors.(u) <> 0 then Some (colors.(u), w) else None)
        in
        let c =
          match strategy with
          | Dtm_core.Coloring.Compact -> smallest_compact constraints
          | Dtm_core.Coloring.Slotted -> smallest_slotted hmax constraints
        in
        colors.(v) <- c)
      nodes;
    (colors, Array.fold_left max 0 colors)
end

(* P9: the int-keyed radix dedup in Dependency.build matches the seed's
   tuple-hashing build: same edge set (as sorted adjacency), hmax and
   conflict count on random instances over all seven topologies. *)
let prop_dependency_matches_seed =
  qtest "Dependency.build = seed reference on all 7 topologies" seed_gen
    (fun seed ->
      for_all_topologies seed (fun ~seed:_ topo inst ->
          let metric = Topology.metric topo in
          let dep = Dtm_core.Dependency.build metric inst in
          let ref_adj, ref_hmax, ref_num = Seed_ref.build metric inst in
          let sorted a =
            let l = Array.to_list a in
            List.sort compare l
          in
          Dtm_core.Dependency.hmax dep = ref_hmax
          && Dtm_core.Dependency.num_conflicts dep = ref_num
          && List.for_all
               (fun v ->
                 sorted (Dtm_core.Dependency.conflicts dep v)
                 = sorted ref_adj.(v))
               (List.init (Dtm_core.Instance.n inst) Fun.id)))

(* P10: the scratch-array color searches match the seed's list-based
   ones — identical colorings for every strategy/order combination. *)
let prop_coloring_matches_seed =
  qtest "Coloring.greedy = seed reference on all 7 topologies" seed_gen
    (fun seed ->
      for_all_topologies seed (fun ~seed:_ topo inst ->
          let metric = Topology.metric topo in
          let dep = Dtm_core.Dependency.build metric inst in
          List.for_all
            (fun strategy ->
              List.for_all
                (fun order ->
                  let c = Dtm_core.Coloring.greedy ~strategy ~order dep inst in
                  let ref_colors, ref_num =
                    Seed_ref.greedy ~strategy ~order dep inst
                  in
                  c.Dtm_core.Coloring.colors = ref_colors
                  && c.Dtm_core.Coloring.num_colors = ref_num)
                [
                  Dtm_core.Coloring.Natural;
                  Dtm_core.Coloring.Desc_degree;
                  Dtm_core.Coloring.Random_order (seed land 0xffff);
                ])
            [ Dtm_core.Coloring.Compact; Dtm_core.Coloring.Slotted ]))

(* P11: the branch-and-bound walk oracle equals the transcribed
   Held-Karp reference on random terminal subsets of all seven
   topologies, with and without an anchored start — and the cheap
   bounds bracket it. *)
let prop_walk_oracle_exact =
  qtest "Tsp branch-and-bound = Held-Karp reference on all 7 topologies"
    seed_gen (fun seed ->
      let rng = Prng.create ~seed in
      let module Metric = Dtm_graph.Metric in
      let module Tsp = Dtm_graph.Tsp in
      List.for_all
        (fun topo ->
          let m = Topology.metric topo in
          let n = Metric.size m in
          let k = Prng.int_in_range rng ~lo:2 ~hi:(min 10 n) in
          let terms = Array.to_list (Prng.sample_subset rng ~k ~n) in
          let start =
            if Prng.int rng 2 = 0 then None else Some (Prng.int rng n)
          in
          let exact = Tsp.exact_path_length m ?start terms in
          let reference = Tsp.held_karp_path_length m ?start terms in
          let lower = Tsp.lower_bound m ?start terms in
          let upper = Tsp.upper_bound m ?start terms in
          exact = reference && lower <= exact && exact <= upper)
        (seven_topologies rng))

(* P12: the parallel per-object fan-out of the lower-bound engines is
   structurally identical at jobs 1 (sequential path) and jobs 4
   (dedicated pool), on an instance large enough to clear the
   parallelism floors. *)
let prop_lower_bound_parallel_deterministic =
  qtest ~count:10 "Lower_bound/Rw_lower_bound identical at jobs 1 and 4"
    seed_gen (fun seed ->
      let rng = Prng.create ~seed in
      let topo = Topology.Grid { rows = 6; cols = 7 } in
      let metric = Topology.metric topo in
      let inst =
        Dtm_workload.Uniform.instance ~rng ~n:(Topology.n topo)
          ~num_objects:8 ~k:3 ()
      in
      let seq = Dtm_core.Lower_bound.compute ~jobs:1 metric inst in
      let par = Dtm_core.Lower_bound.compute ~jobs:4 metric inst in
      let rw = Dtm_core.Rw_instance.all_write inst in
      let rw_seq = Dtm_core.Rw_lower_bound.compute ~jobs:1 metric rw in
      let rw_par = Dtm_core.Rw_lower_bound.compute ~jobs:4 metric rw in
      seq = par && rw_seq = rw_par)

(* P13: replay through a caller-owned router — warm, reused, or frozen —
   is observationally identical to a fresh-router replay on all seven
   topologies: same result record and byte-identical trace events. *)
let prop_replay_shared_router_identical =
  qtest ~count:20 "Replay.run ?router = fresh router on all 7 topologies"
    seed_gen (fun seed ->
      for_all_topologies seed (fun ~seed topo inst ->
          let g = Topology.graph topo in
          let sched = Dtm_sched.Auto.schedule ~seed topo inst in
          let fresh = Dtm_sim.Replay.run g inst sched in
          let router = Dtm_sim.Router.create g in
          let warm1 = Dtm_sim.Replay.run ~router g inst sched in
          let warm2 = Dtm_sim.Replay.run ~router g inst sched in
          let frozen =
            Dtm_sim.Replay.run ~router:(Dtm_sim.Router.freeze router) g inst
              sched
          in
          let same (a : Dtm_sim.Replay.result) (b : Dtm_sim.Replay.result) =
            a.Dtm_sim.Replay.ok = b.Dtm_sim.Replay.ok
            && a.Dtm_sim.Replay.errors = b.Dtm_sim.Replay.errors
            && a.Dtm_sim.Replay.makespan = b.Dtm_sim.Replay.makespan
            && a.Dtm_sim.Replay.messages = b.Dtm_sim.Replay.messages
            && a.Dtm_sim.Replay.hops = b.Dtm_sim.Replay.hops
            && a.Dtm_sim.Replay.total_wait = b.Dtm_sim.Replay.total_wait
            && Dtm_sim.Trace.events a.Dtm_sim.Replay.trace
               = Dtm_sim.Trace.events b.Dtm_sim.Replay.trace
          in
          same fresh warm1 && same fresh warm2 && same fresh frozen))

(* P14: a frozen router shared across Pool domains keeps replay
   deterministic — the merged per-seed outputs are identical at jobs 1
   and jobs 4. *)
let prop_replay_pool_deterministic =
  qtest ~count:10 "Pool-parallel replay with frozen router, jobs 1 = jobs 4"
    seed_gen (fun seed ->
      let rng = Prng.create ~seed in
      let topo = List.nth (seven_topologies rng) (seed mod 7) in
      let g = Topology.graph topo in
      let router = Dtm_sim.Router.create g in
      Dtm_sim.Router.warm_all router;
      let router = Dtm_sim.Router.freeze router in
      let replay_digest s =
        let rng = Prng.create ~seed:s in
        let inst = instance_on rng topo in
        let sched = Dtm_sched.Auto.schedule ~seed:s topo inst in
        let r = Dtm_sim.Replay.run ~router g inst sched in
        ( r.Dtm_sim.Replay.ok,
          r.Dtm_sim.Replay.messages,
          r.Dtm_sim.Replay.hops,
          r.Dtm_sim.Replay.total_wait,
          Dtm_sim.Trace.events r.Dtm_sim.Replay.trace )
      in
      let seeds = List.init 8 (fun i -> seed + i) in
      Pool.set_default_jobs 1;
      let seq = Pool.run replay_digest seeds in
      Pool.set_default_jobs 4;
      let par = Pool.run replay_digest seeds in
      Pool.set_default_jobs 2;
      seq = par)

(* Reference (pre-optimization) nearest-neighbour tour, transcribed from
   the seed Baseline.nearest_first: full O(m^2) visited scan with strict
   improvement (ties -> smallest index). *)
let seed_ref_nearest_tour metric nodes =
  let m = Array.length nodes in
  let visited = Array.make m false in
  let order = Array.make m nodes.(0) in
  visited.(0) <- true;
  for i = 1 to m - 1 do
    let cur = order.(i - 1) in
    let pick = ref (-1) and best = ref max_int in
    for j = 0 to m - 1 do
      if not visited.(j) then begin
        let d = Dtm_graph.Metric.dist metric cur nodes.(j) in
        if d < !best then begin
          best := d;
          pick := j
        end
      end
    done;
    visited.(!pick) <- true;
    order.(i) <- nodes.(!pick)
  done;
  order

(* P15: the bucketed expanding-ring scan inside Baseline.nearest_first
   produces exactly the seed tour — checked through the resulting
   schedule, which is a function of the visit order alone. *)
let prop_nearest_first_matches_seed =
  qtest "Baseline.nearest_first = seed O(m^2) reference on all 7 topologies"
    seed_gen (fun seed ->
      for_all_topologies seed (fun ~seed:_ topo inst ->
          let metric = Topology.metric topo in
          let nodes = Dtm_core.Instance.txn_nodes inst in
          if Array.length nodes = 0 then true
          else begin
            let order = seed_ref_nearest_tour metric nodes in
            let composer = Dtm_sched.Composer.create metric inst in
            Array.iter
              (fun v -> Dtm_sched.Composer.run_greedy_group composer [ v ])
              order;
            let reference = Dtm_sched.Composer.schedule composer in
            let fast = Dtm_sched.Baseline.nearest_first metric inst in
            List.for_all
              (fun v -> Schedule.time reference v = Schedule.time fast v)
              (Schedule.scheduled_nodes reference)
            && Schedule.makespan reference = Schedule.makespan fast
          end))

(* P16: every execution trace the simulators produce — Dijkstra replay,
   metric-descent walker, bounded-capacity congestion — passes the
   DTM11x trace lints on all seven topologies, including the per-edge
   capacity audit at the capacity the congestion run was given. *)
let prop_traces_pass_lints =
  qtest ~count:20 "replay/walker/congestion traces pass the DTM11x lints"
    seed_gen (fun seed ->
      for_all_topologies seed (fun ~seed topo inst ->
          let metric = Topology.metric topo in
          let g = Topology.graph topo in
          let sched = Dtm_sched.Auto.schedule ~seed topo inst in
          let clean ?capacity ~commits trace =
            Dtm_analysis.Trace_lint.check ?capacity ~graph:g ~metric inst
              ~commits trace
            = []
          in
          let capacity = 1 + (seed mod 3) in
          let r = Dtm_sim.Replay.run g inst sched in
          let w = Dtm_sim.Walker.run g metric inst sched in
          let c = Dtm_sim.Congestion.run ~capacity g inst ~priority:sched in
          r.Dtm_sim.Replay.ok && w.Dtm_sim.Walker.ok
          && clean ~commits:sched r.Dtm_sim.Replay.trace
          && clean ~commits:sched w.Dtm_sim.Walker.trace
          && clean ~capacity ~commits:c.Dtm_sim.Congestion.commit_times
               c.Dtm_sim.Congestion.trace))

(* P17: the model checker's reachable-state search and the permutation
   search in Optimal.exhaustive find the same optimum on random small
   instances (<= 7 transactions) of all seven topologies — 30 cases x 7
   families = 210 cross-validations per run. *)
let small_instance_on rng topo =
  let n = Topology.n topo in
  let t = 2 + Prng.int rng (min 6 (n - 1)) in
  let nodes = Array.init n (fun i -> i) in
  for i = 0 to t - 1 do
    let j = i + Prng.int rng (n - i) in
    let tmp = nodes.(i) in
    nodes.(i) <- nodes.(j);
    nodes.(j) <- tmp
  done;
  let w = 1 + Prng.int rng 3 in
  let home = Array.init w (fun _ -> Prng.int rng n) in
  let txns =
    List.init t (fun i ->
        let k = 1 + Prng.int rng w in
        let objs = Array.init w (fun o -> o) in
        for x = 0 to k - 1 do
          let j = x + Prng.int rng (w - x) in
          let tmp = objs.(x) in
          objs.(x) <- objs.(j);
          objs.(j) <- tmp
        done;
        (nodes.(i), Array.to_list (Array.sub objs 0 k)))
  in
  Dtm_core.Instance.create ~n ~num_objects:w ~home ~txns

let prop_model_check_matches_exhaustive =
  qtest "Model_check.optimum = Optimal.exhaustive on all 7 topologies"
    seed_gen (fun seed ->
      let rng = Prng.create ~seed in
      List.for_all
        (fun topo ->
          let inst = small_instance_on rng topo in
          let metric = Topology.metric topo in
          Dtm_analysis.Model_check.optimum metric inst
          = Dtm_sim.Optimal.makespan metric inst)
        (seven_topologies rng))

(* P18: the composed verifier is deterministic under the pool — the
   rendered report and every outcome number are identical at -j 1 and
   -j 4 (the CLI-level twin lives in test_determinism). *)
let prop_verify_parallel_deterministic =
  qtest ~count:5 "Verify.run identical at jobs 1 and 4" seed_gen (fun seed ->
      let rng = Prng.create ~seed in
      let topo = List.nth (seven_topologies rng) (seed mod 7) in
      let inst = instance_on rng topo in
      let sched = Dtm_sched.Auto.schedule ~seed topo inst in
      let snap () =
        let v = Dtm_analysis.Verify.run topo inst sched in
        ( Dtm_analysis.Report.render v.Dtm_analysis.Verify.report,
          v.Dtm_analysis.Verify.makespan,
          v.Dtm_analysis.Verify.lower,
          v.Dtm_analysis.Verify.replay_events,
          v.Dtm_analysis.Verify.congestion_makespan,
          v.Dtm_analysis.Verify.congestion_events,
          v.Dtm_analysis.Verify.optimum )
      in
      Pool.set_default_jobs 1;
      let sequential = snap () in
      Pool.set_default_jobs 4;
      let parallel = snap () in
      Pool.set_default_jobs 2;
      sequential = parallel)

let () =
  Alcotest.run "dtm_props"
    [
      ( "scheduler",
        [ prop_auto_feasible; prop_auto_within_certificate; prop_lower_bound_sound ] );
      ("compaction", [ prop_compact_never_lengthens ]);
      ("lints", [ prop_metrics_pass_lint ]);
      ( "determinism",
        [
          prop_measurements_parallel_deterministic;
          prop_sweep_ordered;
          prop_lower_bound_parallel_deterministic;
          prop_replay_pool_deterministic;
          prop_verify_parallel_deterministic;
        ] );
      ( "verifier",
        [ prop_traces_pass_lints; prop_model_check_matches_exhaustive ] );
      ( "kernels",
        [
          prop_flat_matches_oracle;
          prop_dependency_matches_seed;
          prop_coloring_matches_seed;
          prop_walk_oracle_exact;
          prop_replay_shared_router_identical;
          prop_nearest_first_matches_seed;
        ] );
    ]
