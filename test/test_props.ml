(* The property-based test layer (QCheck): random instances on all
   seven paper topologies, checking the end-to-end contracts the
   theorems promise —

     - the auto scheduler's output is validator-feasible,
     - its makespan stays within the Certificate theorem bound,
     - the certified lower bound never exceeds a feasible makespan,
     - Engine.compact never lengthens a schedule (and stays feasible),
     - every generated topology metric passes Metric_lint,
     - the parallel measurement stack (Dtm_util.Pool) is byte-identical
       to sequential at any -j.

   Every property draws one integer seed and derives size parameters
   per topology from it with Prng, so each QCheck case exercises all
   seven families deterministically. *)

module Topology = Dtm_topology.Topology
module Schedule = Dtm_core.Schedule
module Validator = Dtm_core.Validator
module Certificate = Dtm_analysis.Certificate
module Prng = Dtm_util.Prng
module Pool = Dtm_util.Pool

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let seed_gen = QCheck.int_range 0 1_000_000

(* One topology per family, sizes drawn from the seed. *)
let seven_topologies rng =
  let range lo hi = Prng.int_in_range rng ~lo ~hi in
  [
    Topology.Clique (range 4 24);
    Topology.Line (range 4 32);
    Topology.Grid { rows = range 2 5; cols = range 2 5 };
    Topology.Cluster
      {
        Dtm_topology.Cluster.clusters = range 2 4;
        size = range 2 5;
        bridge_weight = range 2 8;
      };
    Topology.Hypercube { dim = range 2 4 };
    Topology.Butterfly { dim = range 2 3 };
    Topology.Star { Dtm_topology.Star.rays = range 2 5; ray_len = range 1 6 };
  ]

let instance_on rng topo =
  let n = Topology.n topo in
  let w = 1 + Prng.int rng (max 1 (n / 2)) in
  let k = 1 + Prng.int rng (min 3 w) in
  Dtm_workload.Uniform.instance ~rng ~n ~num_objects:w ~k ()

let for_all_topologies seed check =
  let rng = Prng.create ~seed in
  List.for_all
    (fun topo ->
      let inst = instance_on rng topo in
      check ~seed topo inst)
    (seven_topologies rng)

(* P1: the paper scheduler always emits a feasible schedule. *)
let prop_auto_feasible =
  qtest "auto schedule is validator-feasible on all 7 topologies" seed_gen
    (fun seed ->
      for_all_topologies seed (fun ~seed topo inst ->
          let sched = Dtm_sched.Auto.schedule ~seed topo inst in
          Validator.is_feasible (Topology.metric topo) inst sched))

(* P2: the makespan stays inside the topology's theorem bound. *)
let prop_auto_within_certificate =
  qtest "auto schedule within its Certificate theorem bound" seed_gen
    (fun seed ->
      for_all_topologies seed (fun ~seed topo inst ->
          let cert, diags = Certificate.check_auto ~seed topo inst in
          diags = []
          &&
          match cert.Certificate.bound with
          | Some b -> cert.Certificate.makespan <= b
          | None -> false))

(* P3: the certified lower bound is sound — no feasible schedule beats it. *)
let prop_lower_bound_sound =
  qtest "certified lower bound <= any feasible makespan" seed_gen
    (fun seed ->
      for_all_topologies seed (fun ~seed topo inst ->
          let metric = Topology.metric topo in
          let lb = Dtm_core.Lower_bound.certified metric inst in
          let sched = Dtm_sched.Auto.schedule ~seed topo inst in
          let greedy = Dtm_core.Greedy.schedule metric inst in
          lb <= Schedule.makespan sched && lb <= Schedule.makespan greedy))

(* P4: compaction never lengthens and preserves feasibility. *)
let prop_compact_never_lengthens =
  qtest "Engine.compact never lengthens a schedule" seed_gen
    (fun seed ->
      for_all_topologies seed (fun ~seed:_ topo inst ->
          let metric = Topology.metric topo in
          let sched = Dtm_core.Greedy.schedule metric inst in
          let compacted = Dtm_sim.Engine.compact metric inst sched in
          Schedule.makespan compacted <= Schedule.makespan sched
          && Validator.is_feasible metric inst compacted))

(* P5: every generated topology metric is a clean metric space. *)
let prop_metrics_pass_lint =
  qtest "topology metrics always pass Metric_lint" seed_gen
    (fun seed ->
      let rng = Prng.create ~seed in
      List.for_all
        (fun topo -> Dtm_analysis.Metric_lint.check (Topology.metric topo) = [])
        (seven_topologies rng))

(* P6: the parallel measurement stack is deterministic — mean_ratio is
   bit-identical at -j 1 and -j 4 (ordered merge, per-seed Prng). *)
let prop_measurements_parallel_deterministic =
  qtest ~count:15 "Runner.mean_ratio identical at jobs 1 and 4" seed_gen
    (fun seed ->
      let rng = Prng.create ~seed in
      let topo =
        List.nth (seven_topologies rng) (seed mod 7)
      in
      let n = Topology.n topo in
      let w = max 2 (n / 3) in
      let measure () =
        Dtm_expt.Runner.mean_ratio
          ~seeds:[ seed; seed + 1; seed + 2; seed + 3 ]
          ~gen:(fun rng ->
            Dtm_workload.Uniform.instance ~rng ~n ~num_objects:w ~k:2 ())
          ~metric:(Topology.metric topo)
          ~sched:(fun inst -> Dtm_core.Greedy.schedule (Topology.metric topo) inst)
      in
      Pool.set_default_jobs 1;
      let sequential = measure () in
      Pool.set_default_jobs 4;
      let parallel = measure () in
      Pool.set_default_jobs 2;
      sequential = parallel)

(* P7: Runner.sweep merges in seed order — it equals the sequential map. *)
let prop_sweep_ordered =
  qtest ~count:15 "Runner.sweep = sequential per-seed measurement" seed_gen
    (fun seed ->
      let rng = Prng.create ~seed in
      let topo = List.nth (seven_topologies rng) ((seed + 3) mod 7) in
      let metric = Topology.metric topo in
      let n = Topology.n topo in
      let gen rng =
        Dtm_workload.Uniform.instance ~rng ~n ~num_objects:(max 2 (n / 4)) ~k:2 ()
      in
      let sched inst = Dtm_core.Greedy.schedule metric inst in
      let seeds = List.init 5 (fun i -> seed + i) in
      let swept = Dtm_expt.Runner.sweep ~seeds ~gen ~metric ~sched in
      let sequential =
        List.map
          (fun s ->
            let rng = Prng.create ~seed:s in
            let inst = gen rng in
            Dtm_expt.Runner.measure metric inst (sched inst))
          seeds
      in
      swept = sequential)

let () =
  Alcotest.run "dtm_props"
    [
      ( "scheduler",
        [ prop_auto_feasible; prop_auto_within_certificate; prop_lower_bound_sound ] );
      ("compaction", [ prop_compact_never_lengthens ]);
      ("lints", [ prop_metrics_pass_lint ]);
      ( "determinism",
        [ prop_measurements_parallel_deterministic; prop_sweep_ordered ] );
    ]
