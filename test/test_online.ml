(* Tests for the online executor (Section 9's open problem #1): streams,
   policies, deadlock recovery, and the preemptive greedy contention
   manager. *)

open Dtm_online
module Prng = Dtm_util.Prng

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let line5 = Dtm_topology.Line.metric 5

let all_policies =
  [
    ("timestamp", Policy.Timestamp { preemption = false });
    ("greedy-cm", Policy.Timestamp { preemption = true });
    ("nearest", Policy.Nearest);
    ("random", Policy.Random_grant 7);
    ("window-greedy", Policy.Window_greedy { window = 16; seed = 1 });
  ]

(* ------------------------------------------------------------------ *)
(* Stream                                                             *)
(* ------------------------------------------------------------------ *)

let test_stream_basics () =
  let s =
    Stream.create ~n:3 ~num_objects:2
      [
        { Stream.node = 0; objects = [ 0 ]; arrival = 1 };
        { Stream.node = 0; objects = [ 1 ]; arrival = 4 };
        { Stream.node = 2; objects = [ 0; 1 ]; arrival = 2 };
      ]
  in
  Alcotest.(check int) "total" 3 (Stream.total s);
  Alcotest.(check int) "queue len" 2 (List.length (Stream.queue_at s 0));
  let all = Stream.txns s in
  Alcotest.(check int) "sorted first arrival" 1 (List.hd all).Stream.arrival

let test_stream_rejects () =
  let expect msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  expect "Stream.create: arrival < 1" (fun () ->
      ignore
        (Stream.create ~n:2 ~num_objects:1
           [ { Stream.node = 0; objects = [ 0 ]; arrival = 0 } ]));
  expect "Stream.create: arrivals not sorted per node" (fun () ->
      ignore
        (Stream.create ~n:2 ~num_objects:1
           [
             { Stream.node = 0; objects = [ 0 ]; arrival = 5 };
             { Stream.node = 0; objects = [ 0 ]; arrival = 2 };
           ]));
  expect "Stream.create: object out of range" (fun () ->
      ignore
        (Stream.create ~n:2 ~num_objects:1
           [ { Stream.node = 0; objects = [ 3 ]; arrival = 1 } ]))

let test_stream_uniform_shape () =
  let rng = Prng.create ~seed:1 in
  let s = Stream.uniform ~rng ~n:6 ~num_objects:4 ~k:2 ~txns_per_node:3 ~mean_gap:2 in
  Alcotest.(check int) "total" 18 (Stream.total s);
  List.iter
    (fun t -> Alcotest.(check int) "k objects" 2 (List.length t.Stream.objects))
    (Stream.txns s)

let test_stream_homes () =
  let rng = Prng.create ~seed:2 in
  let s = Stream.uniform ~rng ~n:6 ~num_objects:4 ~k:2 ~txns_per_node:2 ~mean_gap:1 in
  let homes = Stream.initial_homes ~rng s in
  Alcotest.(check int) "one home per object" 4 (Array.length homes);
  Array.iter (fun h -> Alcotest.(check bool) "in range" true (h >= 0 && h < 6)) homes

(* ------------------------------------------------------------------ *)
(* Runner                                                             *)
(* ------------------------------------------------------------------ *)

let test_single_local_txn () =
  let s =
    Stream.create ~n:5 ~num_objects:1
      [ { Stream.node = 2; objects = [ 0 ]; arrival = 1 } ]
  in
  let r = Runner.run line5 s ~homes:[| 2 |] in
  Alcotest.(check int) "completed" 1 r.Runner.completed;
  (* Issue at 1, local grant delivers at 2, commit at 2. *)
  Alcotest.(check int) "makespan" 2 r.Runner.makespan;
  Alcotest.(check int) "no travel" 0 r.Runner.total_travel

let test_sequential_per_node () =
  (* Two txns at one node over one object: strictly serialized. *)
  let s =
    Stream.create ~n:5 ~num_objects:1
      [
        { Stream.node = 1; objects = [ 0 ]; arrival = 1 };
        { Stream.node = 1; objects = [ 0 ]; arrival = 1 };
      ]
  in
  let r = Runner.run line5 s ~homes:[| 1 |] in
  Alcotest.(check int) "completed" 2 r.Runner.completed;
  Alcotest.(check bool) "serialized" true (r.Runner.makespan >= 4)

let test_all_policies_complete () =
  List.iter
    (fun (name, policy) ->
      let rng = Prng.create ~seed:11 in
      let s =
        Stream.uniform ~rng ~n:10 ~num_objects:5 ~k:2 ~txns_per_node:4 ~mean_gap:3
      in
      let homes = Stream.initial_homes ~rng s in
      let metric = Dtm_topology.Ring.metric 10 in
      let r = Runner.run ~policy metric s ~homes in
      Alcotest.(check int) (name ^ " completed") (Stream.total s) r.Runner.completed;
      Alcotest.(check bool) (name ^ " responses sane") true (r.Runner.mean_response >= 1.0))
    all_policies

let test_greedy_cm_needs_no_recovery () =
  let rng = Prng.create ~seed:13 in
  let s =
    Stream.uniform ~rng ~n:12 ~num_objects:6 ~k:3 ~txns_per_node:5 ~mean_gap:2
  in
  let homes = Stream.initial_homes ~rng s in
  let metric = Dtm_topology.Clique.metric 12 in
  let r =
    Runner.run ~policy:(Policy.Timestamp { preemption = true }) metric s ~homes
  in
  Alcotest.(check int) "no forced grants" 0 r.Runner.forced_grants;
  Alcotest.(check bool) "preemptions happen" true (r.Runner.preemptions >= 0)

let test_nearest_deadlock_recovered () =
  (* Classic cross-hold: both transactions need both objects; nearest
     granting splits them and deadlocks, the watchdog recovers. *)
  let s =
    Stream.create ~n:5 ~num_objects:2
      [
        { Stream.node = 0; objects = [ 0; 1 ]; arrival = 1 };
        { Stream.node = 4; objects = [ 0; 1 ]; arrival = 1 };
      ]
  in
  let r = Runner.run ~policy:Policy.Nearest ~patience:10 line5 s ~homes:[| 0; 4 |] in
  Alcotest.(check int) "completed" 2 r.Runner.completed;
  Alcotest.(check bool) "watchdog fired" true (r.Runner.forced_grants > 0)

let test_timestamp_avoids_that_deadlock () =
  let s =
    Stream.create ~n:5 ~num_objects:2
      [
        { Stream.node = 0; objects = [ 0; 1 ]; arrival = 1 };
        { Stream.node = 4; objects = [ 0; 1 ]; arrival = 1 };
      ]
  in
  let r =
    Runner.run ~policy:(Policy.Timestamp { preemption = false }) ~patience:10
      line5 s ~homes:[| 0; 4 |]
  in
  Alcotest.(check int) "completed" 2 r.Runner.completed;
  Alcotest.(check int) "no recovery needed" 0 r.Runner.forced_grants

let test_deterministic () =
  let go () =
    let rng = Prng.create ~seed:17 in
    let s =
      Stream.uniform ~rng ~n:8 ~num_objects:4 ~k:2 ~txns_per_node:3 ~mean_gap:2
    in
    let homes = Stream.initial_homes ~rng s in
    Runner.run ~policy:(Policy.Random_grant 3) (Dtm_topology.Clique.metric 8) s
      ~homes
  in
  let a = go () and b = go () in
  Alcotest.(check int) "same makespan" a.Runner.makespan b.Runner.makespan;
  Alcotest.(check int) "same travel" a.Runner.total_travel b.Runner.total_travel

let prop_online_completes =
  qtest "every policy completes every stream"
    QCheck.(pair (int_range 0 100_000) (int_range 0 4))
    (fun (seed, pi) ->
      let rng = Prng.create ~seed in
      let n = 4 + Prng.int rng 10 in
      let w = 2 + Prng.int rng 5 in
      let s =
        Stream.uniform ~rng ~n ~num_objects:w
          ~k:(1 + Prng.int rng (min 3 w))
          ~txns_per_node:(1 + Prng.int rng 3)
          ~mean_gap:(1 + Prng.int rng 4)
      in
      let homes = Stream.initial_homes ~rng s in
      let metric = Dtm_topology.Torus.metric ~rows:1 ~cols:n in
      let _, policy = List.nth all_policies pi in
      let r = Runner.run ~policy ~patience:20 metric s ~homes in
      r.Runner.completed = Stream.total s)

let prop_greedy_cm_no_recovery =
  qtest ~count:30 "greedy CM never needs the watchdog"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let n = 4 + Prng.int rng 8 in
      let w = 2 + Prng.int rng 4 in
      let s =
        Stream.uniform ~rng ~n ~num_objects:w ~k:(min 2 w) ~txns_per_node:3
          ~mean_gap:2
      in
      let homes = Stream.initial_homes ~rng s in
      let r =
        Runner.run
          ~policy:(Policy.Timestamp { preemption = true })
          (Dtm_topology.Clique.metric n) s ~homes
      in
      r.Runner.forced_grants = 0 && r.Runner.completed = Stream.total s)

let () =
  Alcotest.run "dtm_online"
    [
      ( "stream",
        [
          Alcotest.test_case "basics" `Quick test_stream_basics;
          Alcotest.test_case "rejects" `Quick test_stream_rejects;
          Alcotest.test_case "uniform shape" `Quick test_stream_uniform_shape;
          Alcotest.test_case "homes" `Quick test_stream_homes;
        ] );
      ( "runner",
        [
          Alcotest.test_case "single local txn" `Quick test_single_local_txn;
          Alcotest.test_case "sequential per node" `Quick test_sequential_per_node;
          Alcotest.test_case "all policies complete" `Quick test_all_policies_complete;
          Alcotest.test_case "greedy CM no recovery" `Quick test_greedy_cm_needs_no_recovery;
          Alcotest.test_case "nearest deadlock recovered" `Quick test_nearest_deadlock_recovered;
          Alcotest.test_case "timestamp avoids split" `Quick test_timestamp_avoids_that_deadlock;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          prop_online_completes;
          prop_greedy_cm_no_recovery;
        ] );
    ]
