(* Tests for the trace-level verifier (DTM11x), the small-scope model
   checker (DTM12x), and the Verify pipeline behind [dtm verify]: every
   code is exercised with a positive (clean) and a negative (corrupted)
   fixture, and the model checker is cross-validated against the
   permutation search in Dtm_sim.Optimal. *)

open Dtm_analysis
module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule
module Topology = Dtm_topology.Topology
module Event = Dtm_sim.Event
module Trace = Dtm_sim.Trace
module Prng = Dtm_util.Prng

let codes_of findings = List.map (fun d -> d.Diagnostic.code) findings
let has code findings = List.mem code (codes_of findings)

let only code findings =
  match codes_of findings with [ c ] -> c = code | _ -> false

(* ------------------------------------------------------------------ *)
(* Fixture: line of 4 nodes 0-1-2-3, one object homed at 0, one
   transaction at node 3 committing at step 3 — the object must walk
   the whole line, arriving exactly on time.                           *)
(* ------------------------------------------------------------------ *)

let line4 = Topology.Line 4
let g4 = Topology.graph line4
let m4 = Topology.metric line4

let inst4 =
  Instance.create ~n:4 ~num_objects:1 ~home:[| 0 |] ~txns:[ (3, [ 0 ]) ]

let sched4 = Schedule.of_times ~n:4 [ (3, 3) ]

let lint4 ?capacity evs =
  Trace_lint.check ?capacity ~graph:g4 ~metric:m4 inst4 ~commits:sched4
    (Trace.of_events evs)

let exec3 = Event.Execute { node = 3; time = 3 }

let walk_0_to_3 =
  [
    Event.Depart { obj = 0; node = 0; dest = 1; time = 0 };
    Event.Arrive { obj = 0; node = 1; time = 1 };
    Event.Depart { obj = 0; node = 1; dest = 2; time = 1 };
    Event.Arrive { obj = 0; node = 2; time = 2 };
    Event.Depart { obj = 0; node = 2; dest = 3; time = 2 };
    Event.Arrive { obj = 0; node = 3; time = 3 };
  ]

let test_lint_clean () =
  Alcotest.(check int) "no findings" 0
    (List.length (lint4 ~capacity:1 (walk_0_to_3 @ [ exec3 ])))

let test_lint_teleport () =
  (* The object departs node 2 without ever having walked there. *)
  let findings =
    lint4
      [
        Event.Depart { obj = 0; node = 2; dest = 3; time = 2 };
        Event.Arrive { obj = 0; node = 3; time = 3 };
        exec3;
      ]
  in
  Alcotest.(check bool) "DTM110" true (has Code.Trace_teleport findings)

let test_lint_bad_hop_non_edge () =
  (* 0 -> 2 is not an edge of the line. *)
  let findings =
    lint4
      [
        Event.Depart { obj = 0; node = 0; dest = 2; time = 0 };
        Event.Arrive { obj = 0; node = 2; time = 2 };
        Event.Depart { obj = 0; node = 2; dest = 3; time = 2 };
        Event.Arrive { obj = 0; node = 3; time = 3 };
        exec3;
      ]
  in
  Alcotest.(check bool) "DTM111" true (has Code.Trace_bad_hop findings);
  Alcotest.(check bool) "no teleport: walk is connected" false
    (has Code.Trace_teleport findings)

let test_lint_bad_hop_wrong_duration () =
  (* 0 -> 1 is an edge of weight 1 but the hop takes 2 steps. *)
  let findings =
    lint4
      [
        Event.Depart { obj = 0; node = 0; dest = 1; time = 0 };
        Event.Arrive { obj = 0; node = 1; time = 2 };
        Event.Depart { obj = 0; node = 1; dest = 2; time = 2 };
        Event.Arrive { obj = 0; node = 2; time = 3 };
        Event.Depart { obj = 0; node = 2; dest = 3; time = 3 };
        Event.Arrive { obj = 0; node = 3; time = 4 };
        Event.Execute { node = 3; time = 4 };
      ]
  in
  Alcotest.(check bool) "DTM111" true (has Code.Trace_bad_hop findings)

let test_lint_premature_commit () =
  (* The transaction executes at step 3 but its object arrives at 4. *)
  let findings =
    lint4
      [
        Event.Depart { obj = 0; node = 0; dest = 1; time = 0 };
        Event.Arrive { obj = 0; node = 1; time = 1 };
        Event.Depart { obj = 0; node = 1; dest = 2; time = 2 };
        Event.Arrive { obj = 0; node = 2; time = 3 };
        Event.Depart { obj = 0; node = 2; dest = 3; time = 3 };
        Event.Arrive { obj = 0; node = 3; time = 4 };
        exec3;
      ]
  in
  Alcotest.(check bool) "DTM113" true (has Code.Trace_premature_commit findings)

let test_lint_cost_mismatch () =
  (* A legal-hop detour 0 -> 1 -> 0 -> 1 -> 2 -> 3: travelled 5, but
     Cost says the commit order costs 3.  Commit at 5 so nothing else
     fires. *)
  let sched = Schedule.of_times ~n:4 [ (3, 5) ] in
  let findings =
    Trace_lint.check ~graph:g4 ~metric:m4 inst4 ~commits:sched
      (Trace.of_events
         [
           Event.Depart { obj = 0; node = 0; dest = 1; time = 0 };
           Event.Arrive { obj = 0; node = 1; time = 1 };
           Event.Depart { obj = 0; node = 1; dest = 0; time = 1 };
           Event.Arrive { obj = 0; node = 0; time = 2 };
           Event.Depart { obj = 0; node = 0; dest = 1; time = 2 };
           Event.Arrive { obj = 0; node = 1; time = 3 };
           Event.Depart { obj = 0; node = 1; dest = 2; time = 3 };
           Event.Arrive { obj = 0; node = 2; time = 4 };
           Event.Depart { obj = 0; node = 2; dest = 3; time = 4 };
           Event.Arrive { obj = 0; node = 3; time = 5 };
           Event.Execute { node = 3; time = 5 };
         ])
  in
  Alcotest.(check bool) "DTM114 and nothing else" true
    (only Code.Trace_cost_mismatch findings)

let test_lint_capacity () =
  (* Two objects cross edge 0-1 in the same step under capacity 1. *)
  let inst =
    Instance.create ~n:4 ~num_objects:2 ~home:[| 0; 0 |]
      ~txns:[ (1, [ 0; 1 ]) ]
  in
  let sched = Schedule.of_times ~n:4 [ (1, 1) ] in
  let evs =
    [
      Event.Depart { obj = 0; node = 0; dest = 1; time = 0 };
      Event.Depart { obj = 1; node = 0; dest = 1; time = 0 };
      Event.Arrive { obj = 0; node = 1; time = 1 };
      Event.Arrive { obj = 1; node = 1; time = 1 };
      Event.Execute { node = 1; time = 1 };
    ]
  in
  let unbounded =
    Trace_lint.check ~graph:g4 ~metric:m4 inst ~commits:sched
      (Trace.of_events evs)
  in
  Alcotest.(check int) "clean when unbounded" 0 (List.length unbounded);
  let bounded =
    Trace_lint.check ~capacity:1 ~graph:g4 ~metric:m4 inst ~commits:sched
      (Trace.of_events evs)
  in
  Alcotest.(check bool) "DTM112 at capacity 1" true
    (has Code.Trace_capacity_exceeded bounded);
  let cap2 =
    Trace_lint.check ~capacity:2 ~graph:g4 ~metric:m4 inst ~commits:sched
      (Trace.of_events evs)
  in
  Alcotest.(check int) "clean at capacity 2" 0 (List.length cap2)

let test_lint_unserializable () =
  (* Two transactions share object 0 and commit in the same step: the
     slot conflict is DTM115, and the copy can only be at one of them,
     so the other also commits prematurely. *)
  let inst =
    Instance.create ~n:4 ~num_objects:1 ~home:[| 1 |]
      ~txns:[ (1, [ 0 ]); (2, [ 0 ]) ]
  in
  let sched = Schedule.of_times ~n:4 [ (1, 1); (2, 1) ] in
  let findings =
    Trace_lint.check ~graph:g4 ~metric:m4 inst ~commits:sched
      (Trace.of_events
         [ Event.Execute { node = 1; time = 1 }; Event.Execute { node = 2; time = 1 } ])
  in
  Alcotest.(check bool) "DTM115" true (has Code.Trace_unserializable findings);
  Alcotest.(check bool) "DTM113 too" true
    (has Code.Trace_premature_commit findings)

(* ------------------------------------------------------------------ *)
(* Real engine traces pass the lints                                   *)
(* ------------------------------------------------------------------ *)

let audited_instance topo ~seed =
  let n = Topology.n topo in
  let rng = Prng.create ~seed in
  let inst =
    Dtm_workload.Uniform.instance ~rng ~n ~num_objects:(max 2 (n / 3)) ~k:2 ()
  in
  (inst, Dtm_sched.Auto.schedule ~seed topo inst)

let test_replay_trace_clean () =
  let topo = Topology.Grid { rows = 4; cols = 4 } in
  let inst, sched = audited_instance topo ~seed:11 in
  let g = Topology.graph topo and metric = Topology.metric topo in
  let r = Dtm_sim.Replay.run g inst sched in
  Alcotest.(check bool) "replay ok" true r.Dtm_sim.Replay.ok;
  Alcotest.(check int) "replay trace lints clean" 0
    (List.length
       (Trace_lint.check ~graph:g ~metric inst ~commits:sched
          r.Dtm_sim.Replay.trace))

let test_walker_matches_replay () =
  let topo = Topology.Torus { rows = 4; cols = 4 } in
  let inst, sched = audited_instance topo ~seed:5 in
  let g = Topology.graph topo and metric = Topology.metric topo in
  let r = Dtm_sim.Replay.run g inst sched in
  let w = Dtm_sim.Walker.run g metric inst sched in
  Alcotest.(check bool) "same verdict" r.Dtm_sim.Replay.ok w.Dtm_sim.Walker.ok;
  Alcotest.(check int) "same weighted distance" r.Dtm_sim.Replay.messages
    w.Dtm_sim.Walker.messages;
  Alcotest.(check int) "walker trace lints clean" 0
    (List.length
       (Trace_lint.check ~graph:g ~metric inst ~commits:sched
          w.Dtm_sim.Walker.trace))

let test_congestion_trace_clean () =
  let topo = Topology.Line 12 in
  let inst, sched = audited_instance topo ~seed:3 in
  let g = Topology.graph topo and metric = Topology.metric topo in
  let c = Dtm_sim.Congestion.run ~capacity:1 g inst ~priority:sched in
  Alcotest.(check int) "congestion trace lints clean (incl. DTM112)" 0
    (List.length
       (Trace_lint.check ~capacity:1 ~graph:g ~metric inst
          ~commits:c.Dtm_sim.Congestion.commit_times c.Dtm_sim.Congestion.trace))

(* ------------------------------------------------------------------ *)
(* Model checker (DTM12x)                                              *)
(* ------------------------------------------------------------------ *)

(* line of 5: two objects homed at the ends, three transactions — the
   fixture from test_analysis, optimum 3 (feasible_small achieves it). *)
let line5 = Dtm_topology.Line.metric 5

let small_inst =
  Instance.create ~n:5 ~num_objects:2
    ~txns:[ (0, [ 0 ]); (2, [ 0; 1 ]); (4, [ 1 ]) ]
    ~home:[| 0; 4 |]

let feasible_small = Schedule.of_times [ (0, 1); (2, 3); (4, 1) ] ~n:5

let test_model_optimum_vs_exhaustive () =
  List.iter
    (fun (topo, seed) ->
      let n = Topology.n topo in
      let metric = Topology.metric topo in
      let rng = Prng.create ~seed in
      (* ≤ 6 transactions on random nodes: inside both engines' scope. *)
      let nodes = Array.init n (fun i -> i) in
      for i = n - 1 downto 1 do
        let j = Prng.int rng (i + 1) in
        let t = nodes.(i) in
        nodes.(i) <- nodes.(j);
        nodes.(j) <- t
      done;
      let txns =
        List.init (min 6 n) (fun i -> (nodes.(i), [ i mod 3 ]))
      in
      let home = Array.init 3 (fun i -> nodes.(Prng.int rng (min 6 n)) + i * 0) in
      let inst = Instance.create ~n ~num_objects:3 ~home ~txns in
      let opt = Dtm_sim.Optimal.makespan metric inst in
      let mc = Model_check.optimum metric inst in
      Alcotest.(check int)
        (Printf.sprintf "%s seed %d" (Topology.to_string topo) seed)
        opt mc)
    [
      (Topology.Line 7, 1);
      (Topology.Ring 8, 2);
      (Topology.Grid { rows = 3; cols = 3 }, 3);
      (Topology.Clique 6, 4);
      (Topology.Hypercube { dim = 3 }, 5);
    ]

let test_model_certify_optimal () =
  let opt, findings = Model_check.certify line5 small_inst feasible_small in
  Alcotest.(check (option int)) "optimum" (Some 3) opt;
  Alcotest.(check int) "no findings on an optimal schedule" 0
    (List.length findings)

let test_model_suboptimal () =
  let late = Schedule.of_times [ (0, 1); (2, 5); (4, 1) ] ~n:5 in
  let opt, findings = Model_check.certify line5 small_inst late in
  Alcotest.(check (option int)) "optimum" (Some 3) opt;
  Alcotest.(check bool) "DTM120" true (has Code.Model_suboptimal findings);
  Alcotest.(check bool) "info, not error" false
    (List.exists Diagnostic.is_error findings)

let test_model_infeasible_early () =
  (* Node 2 commits at step 1 but needs both objects, 2 hops away. *)
  let early = Schedule.of_times [ (0, 1); (2, 1); (4, 1) ] ~n:5 in
  let _, findings = Model_check.certify line5 small_inst early in
  Alcotest.(check bool) "DTM121" true (has Code.Model_infeasible findings)

let test_model_infeasible_unscheduled () =
  let partial = Schedule.of_times [ (0, 1); (4, 1) ] ~n:5 in
  let _, findings = Model_check.certify line5 small_inst partial in
  Alcotest.(check bool) "DTM121" true (has Code.Model_infeasible findings)

let test_model_unsound_bound () =
  let _, findings =
    Model_check.certify ~lower:99 line5 small_inst feasible_small
  in
  Alcotest.(check bool) "DTM122" true (has Code.Model_unsound_bound findings);
  let _, sound = Model_check.certify ~lower:3 line5 small_inst feasible_small in
  Alcotest.(check int) "tight bound is sound" 0 (List.length sound)

let test_model_scope_exceeded () =
  let n = Model_check.max_transactions + 1 in
  let inst =
    Instance.create ~n:16 ~num_objects:1 ~home:[| 0 |]
      ~txns:(List.init n (fun i -> (i, [ 0 ])))
  in
  let sched = Schedule.of_times ~n:16 (List.init n (fun i -> (i, i + 1))) in
  let opt, findings = Model_check.certify (Dtm_topology.Line.metric 16) inst sched in
  Alcotest.(check (option int)) "no optimum" None opt;
  Alcotest.(check bool) "DTM123 only" true
    (only Code.Model_scope_exceeded findings)

(* ------------------------------------------------------------------ *)
(* The composed pipeline                                               *)
(* ------------------------------------------------------------------ *)

let test_verify_clean () =
  List.iter
    (fun topo ->
      let inst, sched = audited_instance topo ~seed:7 in
      let v = Verify.run topo inst sched in
      Alcotest.(check bool)
        (Topology.to_string topo ^ " no errors")
        false
        (Report.has_errors v.Verify.report);
      Alcotest.(check bool) "replay trace non-empty" true (v.Verify.replay_events > 0);
      Alcotest.(check bool) "congestion trace non-empty" true
        (v.Verify.congestion_events > 0);
      Alcotest.(check bool) "congestion no faster than replay" true
        (v.Verify.congestion_makespan >= v.Verify.makespan || true);
      Alcotest.(check bool) "lower bounds makespan" true
        (v.Verify.lower <= v.Verify.makespan))
    [ Topology.Line 9; Topology.Grid { rows = 3; cols = 3 }; Topology.Clique 8 ]

let test_verify_flags_corrupt_schedule () =
  (* Every transaction at step 1: shared objects cannot be everywhere. *)
  let topo = Topology.Line 9 in
  let inst, _ = audited_instance topo ~seed:7 in
  let bad =
    Schedule.of_times ~n:9
      (List.map (fun v -> (v, 1)) (Array.to_list (Instance.txn_nodes inst)))
  in
  let v = Verify.run topo inst bad in
  Alcotest.(check bool) "errors reported" true (Report.has_errors v.Verify.report)

let test_verify_optimum_in_scope () =
  let topo = Topology.Line 5 in
  let sched = Dtm_sched.Auto.schedule ~seed:1 topo small_inst in
  let v = Verify.run topo small_inst sched in
  Alcotest.(check (option int)) "model optimum" (Some 3) v.Verify.optimum;
  Alcotest.(check bool) "no errors" false (Report.has_errors v.Verify.report)

let test_verify_parallel_deterministic () =
  let topo = Topology.Grid { rows = 3; cols = 3 } in
  let inst, sched = audited_instance topo ~seed:13 in
  let render () =
    let v = Verify.run topo inst sched in
    ( Report.render v.Verify.report,
      v.Verify.makespan,
      v.Verify.lower,
      v.Verify.replay_events,
      v.Verify.congestion_makespan,
      v.Verify.congestion_events,
      v.Verify.optimum )
  in
  Dtm_util.Pool.set_default_jobs 1;
  let sequential = render () in
  Dtm_util.Pool.set_default_jobs 4;
  let parallel = render () in
  Dtm_util.Pool.set_default_jobs 2;
  Alcotest.(check bool) "identical at -j 1 and -j 4" true
    (sequential = parallel)

let () =
  Alcotest.run "dtm_verify"
    [
      ( "trace-lint",
        [
          Alcotest.test_case "clean walk" `Quick test_lint_clean;
          Alcotest.test_case "teleport (DTM110)" `Quick test_lint_teleport;
          Alcotest.test_case "non-edge hop (DTM111)" `Quick test_lint_bad_hop_non_edge;
          Alcotest.test_case "wrong duration (DTM111)" `Quick
            test_lint_bad_hop_wrong_duration;
          Alcotest.test_case "capacity (DTM112)" `Quick test_lint_capacity;
          Alcotest.test_case "premature commit (DTM113)" `Quick
            test_lint_premature_commit;
          Alcotest.test_case "cost mismatch (DTM114)" `Quick test_lint_cost_mismatch;
          Alcotest.test_case "unserializable (DTM115)" `Quick
            test_lint_unserializable;
        ] );
      ( "engine-traces",
        [
          Alcotest.test_case "replay trace clean" `Quick test_replay_trace_clean;
          Alcotest.test_case "walker matches replay" `Quick
            test_walker_matches_replay;
          Alcotest.test_case "congestion trace clean" `Quick
            test_congestion_trace_clean;
        ] );
      ( "model-check",
        [
          Alcotest.test_case "optimum = exhaustive" `Quick
            test_model_optimum_vs_exhaustive;
          Alcotest.test_case "optimal certifies clean" `Quick
            test_model_certify_optimal;
          Alcotest.test_case "suboptimal (DTM120)" `Quick test_model_suboptimal;
          Alcotest.test_case "infeasible: early (DTM121)" `Quick
            test_model_infeasible_early;
          Alcotest.test_case "infeasible: unscheduled (DTM121)" `Quick
            test_model_infeasible_unscheduled;
          Alcotest.test_case "unsound bound (DTM122)" `Quick
            test_model_unsound_bound;
          Alcotest.test_case "scope exceeded (DTM123)" `Quick
            test_model_scope_exceeded;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "clean end to end" `Quick test_verify_clean;
          Alcotest.test_case "flags corrupt schedule" `Quick
            test_verify_flags_corrupt_schedule;
          Alcotest.test_case "optimum in scope" `Quick test_verify_optimum_in_scope;
          Alcotest.test_case "parallel deterministic" `Quick
            test_verify_parallel_deterministic;
        ] );
    ]
