(* Bench regression gate: diff a fresh BENCH.json (written by
   [main.exe --json]) against the committed BENCH_BASELINE.json and fail
   when a gated substrate kernel regressed.

   CI hosts vary wildly in absolute speed, so raw ms comparisons are
   useless across machines.  Instead every kernel present in both files
   contributes a fresh/baseline ratio, and the *median* ratio is taken
   as the machine-speed factor between the two runs; each gated kernel
   is then judged by its ratio normalized by that median.  A kernel is
   only flagged when it slowed down relative to the rest of the suite —
   a uniformly slower CI box moves every ratio together and cancels out.

   Usage: compare.exe [--factor F] [FRESH [BASELINE]]
     FRESH     defaults to BENCH.json (gitignored, freshly produced)
     BASELINE  defaults to BENCH_BASELINE.json (committed, 500 ms quota)
     --factor  normalized-ratio threshold, default 2.0

   Exit 0 when every gated kernel is within the factor, 1 on regression
   or on a gated kernel missing from the fresh run (a silently dropped
   benchmark must not read as a pass), 2 on malformed input. *)

(* The kernels the gate protects.  Beyond the substrate layer (where the
   perf work lives), the list includes every experiment/ablation kernel
   that proved stable at the 50 ms CI quota: >= 0.05 ms/run (above timer
   noise) and <= 1.3x max/min spread over repeated runs.  Re-measured
   after the landmark-oracle PR (4 runs at 50 ms): e4 now spreads 1.08x,
   e5 1.19x, e8 1.09x — all three rejoin the gate (their earlier 1.6x /
   2.8x / 1.8x noise predated the grid/cluster scheduler rework).  Still
   excluded: e3 (tiny), e11 (1.8x spread even after the incremental
   rewrite — permutation search time depends on cutoff luck), and the
   sub-0.05 ms coloring/tsp micro-kernels. *)
let gated =
  [
    "dtm/substrate/apsp_grid16";
    "dtm/substrate/baseline_sequential";
    "dtm/substrate/dependency_build";
    "dtm/substrate/lower_bound";
    "dtm/substrate/metric_landmark";
    "dtm/substrate/metric_landmark_weighted";
    "dtm/substrate/online_engine";
    "dtm/substrate/replay_grid";
    "dtm/substrate/replay_grid_cold";
    "dtm/substrate/validator";
    "dtm/experiments/e1_clique_thm1";
    "dtm/experiments/e2_hypercube_sec31";
    "dtm/experiments/e4_grid_thm3";
    "dtm/experiments/e5_cluster_thm4";
    "dtm/experiments/e6_star_thm5";
    "dtm/experiments/e8_coloring_sec23";
    "dtm/experiments/e7_blockgrid_sec8";
    "dtm/extensions/e9_congestion_cap1";
    "dtm/extensions/e9_congestion_unbounded";
    "dtm/extensions/e10_nearest_first";
    "dtm/extensions/e12_ring_sched";
    "dtm/extensions/e14_online_greedy_cm";
    "dtm/online/steady_state_1m";
    "dtm/online/steady_state_1m_s1";
    "dtm/online/steady_state_1m_s4";
    "dtm/online/stability_probe";
    "dtm/ablations/cluster_approach1";
    "dtm/ablations/cluster_approach2";
    "dtm/ablations/grid_xi_half";
    "dtm/ablations/grid_xi_double";
    "dtm/verify/trace_lint";
    "dtm/verify/model_check_small";
    "dtm/stm/commit_throughput_1d";
    "dtm/stm/commit_throughput_4d";
  ]

(* Per-kernel threshold overrides, multiplied on top of --factor's
   normalized-ratio gate.  The STM kernels spawn real domains inside
   the timed region, which makes them quota-sensitive in two ways: on
   a shared CI box domain wake-up latency swings the 4-domain kernel
   ~1.5x between otherwise identical runs (measured: 5.6-8.2 ms
   spread at the 50 ms quota), and the per-run domain spawn/teardown
   cost amortizes differently at the 50 ms CI quota than at the
   500 ms baseline quota (the 1-domain kernel reads ~2.3x its
   baseline ms from that alone).  Gate both, but at a looser
   threshold so scheduler jitter and quota skew do not read as perf
   regressions; a genuine slowdown still trips the widened bound. *)
let factor_override =
  [
    ("dtm/stm/commit_throughput_1d", 1.5);
    ("dtm/stm/commit_throughput_4d", 1.5);
    (* The sharded 4-cell kernel shares the STM kernels' domain wake-up
       jitter: its pool-map barrier per round is scheduler-sensitive on
       shared CI boxes. *)
    ("dtm/online/steady_state_1m_s4", 1.5);
  ]

(* Kernels whose reading only means "scaling" when the host gives each
   domain a core: name -> domains it wants.  When the fresh run's
   recorded core count is below that, the kernel is reported and
   annotated but never fails the gate — a single-core container running
   4 domains measures contention, not a regression. *)
let multicore = [ ("dtm/stm/commit_throughput_4d", 4); ("dtm/online/steady_state_1m_s4", 4) ]

(* ------------------------------------------------------------------ *)
(* Minimal JSON-subset parser: objects, strings (escapes pass through
   verbatim), numbers, bools, null.  Exactly what main.exe emits —
   arrays are not produced, so they are not accepted.                 *)
(* ------------------------------------------------------------------ *)

type json =
  | Obj of (string * json) list
  | Str of string
  | Num of float
  | Lit of string

exception Malformed of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Malformed (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 32 in
    let rec go () =
      match peek () with
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
        | None -> fail "unterminated escape")
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
      | None -> fail "unterminated string"
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> parse_object ()
    | Some '"' -> Str (parse_string ())
    | Some ('0' .. '9' | '-') -> Num (parse_number ())
    | Some ('t' | 'f' | 'n') ->
      let start = !pos in
      let rec word () =
        match peek () with
        | Some ('a' .. 'z') ->
          advance ();
          word ()
        | _ -> ()
      in
      word ();
      Lit (String.sub s start (!pos - start))
    | _ -> fail "expected value"
  and parse_object () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec member () =
        skip_ws ();
        let key = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          member ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      member ();
      Obj (List.rev !fields)
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let read_doc path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "compare: cannot open %s: %s\n" path msg;
      exit 2
  in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  match parse body with
  | exception Malformed msg ->
    Printf.eprintf "compare: %s: malformed JSON (%s)\n" path msg;
    exit 2
  | Obj fields -> fields
  | _ ->
    Printf.eprintf "compare: %s: top level is not an object\n" path;
    exit 2

let results_of path fields =
  match List.assoc_opt "results" fields with
  | Some (Obj results) ->
    List.filter_map
      (fun (k, v) -> match v with Num f -> Some (k, f) | _ -> None)
      results
  | _ ->
    Printf.eprintf "compare: %s: no \"results\" object\n" path;
    exit 2

(* Detected core count of the machine that produced the file; absent in
   files written before the field existed. *)
let cores_of fields =
  match List.assoc_opt "config" fields with
  | Some (Obj config) -> (
    match List.assoc_opt "cores" config with
    | Some (Num c) -> Some (int_of_float c)
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The gate                                                            *)
(* ------------------------------------------------------------------ *)

let median = function
  | [] -> 1.0
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let m = Array.length a in
    if m land 1 = 1 then a.(m / 2) else (a.((m / 2) - 1) +. a.(m / 2)) /. 2.0

let usage = "usage: compare.exe [--factor F] [FRESH [BASELINE]]"

let () =
  let factor = ref 2.0 in
  let positional = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--factor" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f when f > 1.0 ->
        factor := f;
        parse_args rest
      | _ ->
        Printf.eprintf "invalid --factor %s\n%s\n" v usage;
        exit 2)
    | arg :: rest ->
      positional := arg :: !positional;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let fresh_path, baseline_path =
    match List.rev !positional with
    | [] -> ("BENCH.json", "BENCH_BASELINE.json")
    | [ f ] -> (f, "BENCH_BASELINE.json")
    | [ f; b ] -> (f, b)
    | _ ->
      Printf.eprintf "%s\n" usage;
      exit 2
  in
  let fresh_doc = read_doc fresh_path in
  let fresh = results_of fresh_path fresh_doc in
  let fresh_cores = cores_of fresh_doc in
  let baseline = results_of baseline_path (read_doc baseline_path) in
  let ratios =
    List.filter_map
      (fun (name, base_ms) ->
        match List.assoc_opt name fresh with
        | Some fresh_ms when base_ms > 0.0 -> Some (name, fresh_ms /. base_ms)
        | _ -> None)
      baseline
  in
  let speed = median (List.map snd ratios) in
  Printf.printf "machine-speed factor (median fresh/baseline over %d kernels): %.3f\n"
    (List.length ratios) speed;
  Printf.printf "%-40s %10s %10s %8s\n" "gated kernel" "base ms" "fresh ms" "norm";
  let failed = ref false in
  List.iter
    (fun name ->
      match (List.assoc_opt name baseline, List.assoc_opt name fresh) with
      | None, _ ->
        Printf.printf "%-40s missing from baseline (skipped)\n" name
      | Some _, None ->
        Printf.printf "%-40s MISSING from fresh run\n" name;
        failed := true
      | Some base_ms, Some fresh_ms ->
        let widen =
          match List.assoc_opt name factor_override with
          | Some w -> w
          | None -> 1.0
        in
        let undercored =
          match (List.assoc_opt name multicore, fresh_cores) with
          | Some domains, Some cores -> cores < domains
          | _ -> false
        in
        let norm = fresh_ms /. base_ms /. speed in
        let flag = (not undercored) && norm > !factor *. widen in
        if flag then failed := true;
        Printf.printf "%-40s %10.4f %10.4f %7.2fx%s%s%s\n" name base_ms fresh_ms
          norm
          (if widen > 1.0 then Printf.sprintf " (gate %.1fx)" (!factor *. widen)
           else "")
          (if undercored then
             Printf.sprintf "  (cores %d < domains: informational, not gated)"
               (Option.get fresh_cores)
           else "")
          (if flag then "  REGRESSION" else ""))
    gated;
  if !failed then begin
    Printf.printf "FAIL: a gated kernel regressed more than %.1fx (normalized)\n"
      !factor;
    exit 1
  end
  else Printf.printf "OK: all gated kernels within %.1fx (normalized)\n" !factor
