(* Benchmark harness: one bechamel test per experiment (E1-E8: the cost of
   computing each theorem's schedule), plus the DESIGN.md ablations
   (coloring strategy, grid subgrid side, cluster approach) and substrate
   micro-benchmarks.  Run with: dune exec bench/main.exe

   Flags:
     --json        also write BENCH.json (machine-readable name ->
                   time/run ms, with git rev and config) next to the
                   text table; the file is gitignored.
     --quota-ms N  per-test time quota in milliseconds (default 500);
                   CI runs a ~50 ms smoke so the harness cannot bitrot.
     -j/--jobs N   domain-pool width for the kernels that fan out on
                   Dtm_util.Pool (lower_bound, apsp); -j 1 isolates the
                   single-domain algorithmic cost. *)

open Bechamel
open Toolkit

let rng_of seed = Dtm_util.Prng.create ~seed

(* Pre-generated inputs: generation cost must stay out of the timings. *)

let clique_n = 128
let clique_inst =
  Dtm_workload.Uniform.instance ~rng:(rng_of 1) ~n:clique_n ~num_objects:32 ~k:3 ()

let hyper_dim = 7
let hyper_metric = Dtm_topology.Hypercube.metric ~dim:hyper_dim
let hyper_inst =
  Dtm_workload.Uniform.instance ~rng:(rng_of 2) ~n:(1 lsl hyper_dim)
    ~num_objects:32 ~k:2 ()

let line_n = 1024
let line_inst =
  Dtm_workload.Arbitrary.windowed ~rng:(rng_of 3) ~n:line_n ~num_objects:line_n
    ~k:2 ~span:16

let grid_side = 16
let grid_inst =
  Dtm_workload.Uniform.instance ~rng:(rng_of 4) ~n:(grid_side * grid_side)
    ~num_objects:32 ~k:2 ()

let cluster_p =
  { Dtm_topology.Cluster.clusters = 6; size = 8; bridge_weight = 16 }
let cluster_inst =
  Dtm_workload.Arbitrary.cluster_spread ~rng:(rng_of 5) cluster_p
    ~num_objects:18 ~k:2 ~sigma:4

let star_p = { Dtm_topology.Star.rays = 6; ray_len = 15 }
let star_inst =
  Dtm_workload.Uniform.instance ~rng:(rng_of 6)
    ~n:(1 + (star_p.Dtm_topology.Star.rays * star_p.Dtm_topology.Star.ray_len))
    ~num_objects:22 ~k:2 ()

let blocks_p = Dtm_topology.Blocks.make ~s:9
let block_metric = Dtm_topology.Block_grid.metric blocks_p
let block_inst = Dtm_workload.Lb_instance.instance ~rng:(rng_of 7) blocks_p

let clique_metric = Dtm_topology.Clique.metric clique_n
let line_metric = Dtm_topology.Line.metric line_n
let grid_metric = Dtm_topology.Grid.metric ~rows:grid_side ~cols:grid_side
let grid_graph = Dtm_topology.Grid.graph ~rows:grid_side ~cols:grid_side

let clique_dep = Dtm_core.Dependency.build clique_metric clique_inst
let cluster_metric = Dtm_topology.Cluster.metric cluster_p
let cluster_dep = Dtm_core.Dependency.build cluster_metric cluster_inst

let grid_sched = Dtm_sched.Grid_sched.schedule ~rows:grid_side ~cols:grid_side grid_inst

(* Warm shared routers: the steady-state kernels measure pure replay /
   congestion cost; the [_cold] kernel keeps the per-call Dijkstra price
   visible. *)
let grid_router =
  let r = Dtm_sim.Router.create grid_graph in
  Dtm_sim.Router.warm_all r;
  r

let stage = Staged.stage

(* One test per experiment: the cost of the theorem's scheduler. *)
let experiment_tests =
  Test.make_grouped ~name:"experiments"
    [
      Test.make ~name:"e1_clique_thm1" (stage (fun () ->
          Dtm_sched.Clique_sched.schedule ~n:clique_n clique_inst));
      Test.make ~name:"e2_hypercube_sec31" (stage (fun () ->
          Dtm_sched.Diameter_sched.schedule hyper_metric hyper_inst));
      Test.make ~name:"e3_line_thm2" (stage (fun () ->
          Dtm_sched.Line_sched.schedule ~n:line_n line_inst));
      Test.make ~name:"e4_grid_thm3" (stage (fun () ->
          Dtm_sched.Grid_sched.schedule ~rows:grid_side ~cols:grid_side grid_inst));
      Test.make ~name:"e5_cluster_thm4" (stage (fun () ->
          Dtm_sched.Cluster_sched.schedule
            ~approach:(Dtm_sched.Cluster_sched.Best { seed = 1 })
            cluster_p cluster_inst));
      Test.make ~name:"e6_star_thm5" (stage (fun () ->
          Dtm_sched.Star_sched.schedule
            ~variant:(Dtm_sched.Star_sched.Best_periods { seed = 1 })
            star_p star_inst));
      Test.make ~name:"e7_blockgrid_sec8" (stage (fun () ->
          Dtm_core.Greedy.schedule block_metric block_inst));
      Test.make ~name:"e8_coloring_sec23" (stage (fun () ->
          Dtm_core.Coloring.greedy clique_dep clique_inst));
    ]

(* DESIGN.md ablations. *)
let ablation_tests =
  Test.make_grouped ~name:"ablations"
    [
      Test.make ~name:"coloring_slotted" (stage (fun () ->
          Dtm_core.Coloring.greedy ~strategy:Dtm_core.Coloring.Slotted
            cluster_dep cluster_inst));
      Test.make ~name:"coloring_compact" (stage (fun () ->
          Dtm_core.Coloring.greedy ~strategy:Dtm_core.Coloring.Compact
            cluster_dep cluster_inst));
      Test.make ~name:"grid_xi_half" (stage (fun () ->
          Dtm_sched.Grid_sched.schedule ~subgrid_side:4 ~rows:grid_side
            ~cols:grid_side grid_inst));
      Test.make ~name:"grid_xi_double" (stage (fun () ->
          Dtm_sched.Grid_sched.schedule ~subgrid_side:16 ~rows:grid_side
            ~cols:grid_side grid_inst));
      Test.make ~name:"cluster_approach1" (stage (fun () ->
          Dtm_sched.Cluster_sched.schedule ~approach:Dtm_sched.Cluster_sched.Approach1
            cluster_p cluster_inst));
      Test.make ~name:"cluster_approach2" (stage (fun () ->
          Dtm_sched.Cluster_sched.schedule
            ~approach:(Dtm_sched.Cluster_sched.Approach2 { seed = 1 })
            cluster_p cluster_inst));
      Test.make ~name:"tsp_lb_exact12" (stage (fun () ->
          Dtm_graph.Tsp.exact_path_length line_metric
            [ 3; 99; 200; 311; 402; 489; 555; 678; 740; 803; 901; 1000 ]));
      Test.make ~name:"tsp_lb_mst12" (stage (fun () ->
          Dtm_graph.Tsp.lower_bound line_metric
            [ 3; 99; 200; 311; 402; 489; 555; 678; 740; 803; 901; 1000 ]));
    ]

(* Extensions: ring scheduler, congestion engine, exact optima. *)
let tiny_inst =
  Dtm_workload.Uniform.instance ~rng:(rng_of 8) ~n:7 ~num_objects:3 ~k:2 ()

let ring_n = 512
let ring_inst =
  Dtm_workload.Arbitrary.windowed ~rng:(rng_of 9) ~n:ring_n ~num_objects:ring_n
    ~k:2 ~span:16

let star_graph = Dtm_topology.Star.graph star_p
let star_metric = Dtm_topology.Star.metric star_p
let star_priority = Dtm_sim.Engine.run star_metric star_inst

let star_router =
  let r = Dtm_sim.Router.create star_graph in
  Dtm_sim.Router.warm_all r;
  r

let extension_tests =
  Test.make_grouped ~name:"extensions"
    [
      Test.make ~name:"e12_ring_sched" (stage (fun () ->
          Dtm_sched.Ring_sched.schedule ~n:ring_n ring_inst));
      Test.make ~name:"e9_congestion_cap1" (stage (fun () ->
          Dtm_sim.Congestion.run ~router:star_router ~capacity:1 star_graph
            star_inst ~priority:star_priority));
      Test.make ~name:"e9_congestion_unbounded" (stage (fun () ->
          Dtm_sim.Congestion.run ~router:star_router star_graph star_inst
            ~priority:star_priority));
      Test.make ~name:"e11_optimal_7txn" (stage (fun () ->
          Dtm_sim.Optimal.makespan (Dtm_topology.Clique.metric 7) tiny_inst));
      Test.make ~name:"e10_nearest_first" (stage (fun () ->
          Dtm_sched.Baseline.nearest_first grid_metric grid_inst));
      Test.make ~name:"e14_online_greedy_cm" (stage (fun () ->
          let rng = rng_of 10 in
          let s =
            Dtm_online.Stream.uniform ~rng ~n:25 ~num_objects:8 ~k:2
              ~txns_per_node:3 ~mean_gap:3
          in
          let homes = Dtm_online.Stream.initial_homes ~rng s in
          Dtm_online.Runner.run
            ~policy:(Dtm_online.Policy.Timestamp { preemption = true })
            (Dtm_topology.Grid.metric ~rows:5 ~cols:5)
            s ~homes));
    ]

(* Open-system steady-state kernels (E16's inner loop): the
   continual-arrival engine pulling a seeded injection source.  The
   workload is deterministic, so even a single sample per quota gives a
   stable reading. *)
let steady_spec =
  {
    Dtm_workload.Injection.n = 32;
    num_objects = 128;
    k = 2;
    rate = 1.0;
    burst = 4;
    dist = Dtm_workload.Injection.Zipf_objects 1.0;
    seed = 7;
  }

let steady_metric = Dtm_topology.Clique.metric steady_spec.Dtm_workload.Injection.n
let steady_homes = Dtm_workload.Injection.homes steady_spec

let probe_spec =
  {
    steady_spec with
    Dtm_workload.Injection.n = 16;
    num_objects = 32;
    rate = 0.4;
    dist = Dtm_workload.Injection.Zipf_objects 1.1;
  }

let probe_metric = Dtm_topology.Clique.metric probe_spec.Dtm_workload.Injection.n
let probe_homes = Dtm_workload.Injection.homes probe_spec

let online_tests =
  Test.make_grouped ~name:"online"
    [
      (* 10^6 transactions end to end: the frontier-only engine must
         digest them in O(1) space and roughly a second. *)
      Test.make ~name:"steady_state_1m" (stage (fun () ->
          Dtm_online.Open_system.run
            ~policy:(Dtm_online.Policy.Timestamp { preemption = true })
            steady_metric
            (Dtm_workload.Injection.source ~limit:1_000_000 steady_spec)
            ~homes:steady_homes ~horizon:4_000_000));
      (* One short-horizon bisection probe, as E16 issues ~250 of. *)
      Test.make ~name:"stability_probe" (stage (fun () ->
          Dtm_online.Open_system.run
            ~policy:(Dtm_online.Policy.Window_greedy { window = 16; seed = 1 })
            ~divergence_cap:400 probe_metric
            (Dtm_workload.Injection.source probe_spec)
            ~homes:probe_homes ~horizon:1_000));
      (* The same 10^6-transaction workload through the sharded engine:
         _s1 pays the bulk-synchronous driver at S = 1 (it delegates, so
         it doubles as the delegation-overhead check) and _s4 runs four
         shard cells on the domain pool.  _s4 / _s1 is the wall-clock
         scaling claim; on hosts with fewer cores than shards the
         comparison is informational (compare.exe annotates it). *)
      Test.make ~name:"steady_state_1m_s1" (stage (fun () ->
          Dtm_online.Sharded.run
            ~policy:(Dtm_online.Policy.Timestamp { preemption = true })
            ~shards:1 steady_metric
            (Dtm_workload.Injection.source_factory ~limit:1_000_000 steady_spec)
            ~homes:steady_homes ~horizon:4_000_000));
      Test.make ~name:"steady_state_1m_s4" (stage (fun () ->
          Dtm_online.Sharded.run
            ~policy:(Dtm_online.Policy.Timestamp { preemption = true })
            ~shards:4 steady_metric
            (Dtm_workload.Injection.source_factory ~limit:1_000_000 steady_spec)
            ~homes:steady_homes ~horizon:4_000_000));
    ]

(* Landmark oracle: build (L Dijkstras over CSR) plus a deterministic
   batch of exact queries on a 32x32 grid.  Building a fresh oracle per
   run keeps the per-domain query cache cold, so the goal-directed
   search cost stays visible instead of degenerating into cache hits. *)
let lm_graph = Dtm_topology.Grid.graph ~rows:32 ~cols:32
let lm_pairs =
  let rng = rng_of 11 in
  Array.init 1024 (fun _ ->
      (Dtm_util.Prng.int rng 1024, Dtm_util.Prng.int rng 1024))

(* Weighted small-world variant: random 1..100 edge weights on a
   power-law graph route every query through the bidi fallback's
   ALT-pruned path (uniform-weight graphs skip the pruning), so this
   kernel watches the cost the weighted tuning targets.  The oracle is
   built once — queries, not construction, are the measured object —
   and, as with [metric_landmark], the oracle is rebuilt per run so the
   per-domain query cache stays cold. *)
let lmw_n = 4096
let lmw_graph =
  let g0 =
    Dtm_topology.Power_law.graph
      { Dtm_topology.Power_law.n = lmw_n; attach = 3; seed = 42 }
  in
  let rng = rng_of 7 in
  let edges =
    List.map
      (fun { Dtm_graph.Graph.u; v; _ } ->
        (u, v, 1 + Dtm_util.Prng.int rng 100))
      (Dtm_graph.Graph.edges g0)
  in
  Dtm_graph.Graph.of_edges ~n:lmw_n edges

let lmw_pairs =
  let rng = rng_of 23 in
  Array.init 64 (fun _ ->
      (Dtm_util.Prng.int rng lmw_n, Dtm_util.Prng.int rng lmw_n))

(* Substrate and baselines. *)
let substrate_tests =
  Test.make_grouped ~name:"substrate"
    [
      Test.make ~name:"apsp_grid16" (stage (fun () -> Dtm_graph.Apsp.distances grid_graph));
      Test.make ~name:"dependency_build" (stage (fun () ->
          Dtm_core.Dependency.build grid_metric grid_inst));
      Test.make ~name:"lower_bound" (stage (fun () ->
          Dtm_core.Lower_bound.compute grid_metric grid_inst));
      Test.make ~name:"metric_landmark" (stage (fun () ->
          let m =
            Dtm_graph.Metric.of_landmark (Dtm_graph.Landmark.build lm_graph)
          in
          Array.fold_left
            (fun acc (u, v) -> acc + Dtm_graph.Metric.dist m u v)
            0 lm_pairs));
      Test.make ~name:"metric_landmark_weighted" (stage (fun () ->
          let lm = Dtm_graph.Landmark.build lmw_graph in
          Array.fold_left
            (fun acc (u, v) -> acc + Dtm_graph.Landmark.dist lm u v)
            0 lmw_pairs));
      Test.make ~name:"validator" (stage (fun () ->
          Dtm_core.Validator.is_feasible grid_metric grid_inst grid_sched));
      Test.make ~name:"replay_grid" (stage (fun () ->
          Dtm_sim.Replay.run ~router:grid_router grid_graph grid_inst grid_sched));
      Test.make ~name:"replay_grid_cold" (stage (fun () ->
          Dtm_sim.Replay.run grid_graph grid_inst grid_sched));
      Test.make ~name:"online_engine" (stage (fun () ->
          Dtm_sim.Engine.run grid_metric grid_inst));
      Test.make ~name:"baseline_sequential" (stage (fun () ->
          Dtm_sched.Baseline.sequential clique_metric clique_inst));
    ]

(* Verifier kernels: the DTM11x lints over a precomputed replay trace
   (the audit every experiment row now pays), and the small-scope model
   checker on the 7-transaction instance e11 already uses. *)
let grid_trace =
  (Dtm_sim.Replay.run ~router:grid_router grid_graph grid_inst grid_sched)
    .Dtm_sim.Replay.trace

let verify_tests =
  Test.make_grouped ~name:"verify"
    [
      Test.make ~name:"trace_lint" (stage (fun () ->
          Dtm_analysis.Trace_lint.check ~graph:grid_graph ~metric:grid_metric
            grid_inst ~commits:grid_sched grid_trace));
      Test.make ~name:"model_check_small" (stage (fun () ->
          Dtm_analysis.Model_check.optimum (Dtm_topology.Clique.metric 7)
            tiny_inst));
    ]

(* STM commit-path kernels: a fixed injected workload with zero
   busy-work, so the measurement is the commit protocol itself (open
   CAS, validation, status CAS, pool orchestration).  The 4-domain
   variant pays the pool spawn per run on purpose — that is the real
   cost of standing up the runtime. *)
let stm_spec =
  {
    Dtm_workload.Injection.n = 32;
    num_objects = 256;
    k = 2;
    rate = 2.0;
    burst = 1;
    dist = Dtm_workload.Injection.Uniform_objects;
    seed = 13;
  }

let stm_workload =
  Dtm_stm.Runtime.of_injection ~work_scale:0
    ~metric:(Dtm_topology.Clique.metric stm_spec.Dtm_workload.Injection.n)
    ~spec:stm_spec ~count:2048 ()

let stm_cm =
  Dtm_stm.Cm.of_policy (Dtm_online.Policy.Timestamp { preemption = true })

let stm_tests =
  Test.make_grouped ~name:"stm"
    [
      Test.make ~name:"commit_throughput_1d" (stage (fun () ->
          Dtm_stm.Runtime.run ~cm:stm_cm ~domains:1
            ~num_objects:stm_spec.Dtm_workload.Injection.num_objects
            stm_workload));
      Test.make ~name:"commit_throughput_4d" (stage (fun () ->
          Dtm_stm.Runtime.run ~cm:stm_cm ~domains:4
            ~num_objects:stm_spec.Dtm_workload.Injection.num_objects
            stm_workload));
    ]

let all_tests =
  Test.make_grouped ~name:"dtm"
    [
      experiment_tests;
      ablation_tests;
      extension_tests;
      online_tests;
      substrate_tests;
      verify_tests;
      stm_tests;
    ]

let bench_limit = 2000

let benchmark ~quota_ms =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:bench_limit
      ~quota:(Time.second (quota_ms /. 1000.0))
      ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  Analyze.merge ols instances results

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then "unknown" else line
  with _ -> "unknown"

let json_path = "BENCH.json"

let write_json rows ~quota_ms =
  let open Dtm_analysis.Json in
  let results = List.map (fun (name, ms) -> (name, Float ms)) rows in
  let doc =
    Obj
      [
        ("schema", String "dtm-bench/1");
        ("git_rev", String (git_rev ()));
        ( "config",
          Obj
            [
              ("quota_ms", Float quota_ms);
              ("limit", Int bench_limit);
              (* Honest multicore reporting: the domain-parallel kernels
                 (stm 4d, online _s4) only measure scaling when the host
                 actually has the cores; compare.exe reads this to
                 annotate them on smaller machines. *)
              ("cores", Int (Domain.recommended_domain_count ()));
              ("estimator", String "monotonic-clock OLS, ms per run");
            ] );
        ("results", Obj results);
      ]
  in
  let oc = open_out json_path in
  output_string oc (to_string doc);
  output_string oc "\n";
  close_out oc

let usage = "usage: main.exe [--json] [--quota-ms N] [-j N]"

let () =
  let json = ref false and quota_ms = ref 500.0 in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--quota-ms" :: v :: rest -> (
      match float_of_string_opt v with
      | Some x when x > 0.0 ->
        quota_ms := x;
        parse rest
      | _ ->
        Printf.eprintf "invalid --quota-ms %s\n%s\n" v usage;
        exit 2)
    | ("-j" | "--jobs") :: v :: rest -> (
      match int_of_string_opt v with
      | Some j when j >= 1 ->
        Dtm_util.Pool.set_default_jobs j;
        parse rest
      | _ ->
        Printf.eprintf "invalid -j value %s\n%s\n" v usage;
        exit 2)
    | arg :: _ ->
      Printf.eprintf "unknown argument %s\n%s\n" arg usage;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let results = benchmark ~quota_ms:!quota_ms in
  let ms_of_ns ns = ns /. 1_000_000.0 in
  (* Extract the monotonic-clock OLS estimate per test and print a
     stable, diff-friendly table. *)
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | _ -> nan
        in
        (name, est) :: acc)
      clock []
    |> List.sort compare
  in
  Printf.printf "%-40s %14s\n" "benchmark" "time/run (ms)";
  Printf.printf "%s\n" (String.make 55 '-');
  List.iter
    (fun (name, ns) -> Printf.printf "%-40s %14.4f\n" name (ms_of_ns ns))
    rows;
  if !json then begin
    write_json (List.map (fun (n, ns) -> (n, ms_of_ns ns)) rows) ~quota_ms:!quota_ms;
    Printf.printf "\nwrote %s\n" json_path
  end
