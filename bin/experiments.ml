(* Experiment driver: regenerates every table and figure of the
   reproduction (see DESIGN.md's experiment index and EXPERIMENTS.md for
   the recorded outputs).

   Entries run in parallel on the Dtm_util.Pool domain pool; output is
   merged in entry order, so stdout is byte-identical for any -j.

   Usage:
     dune exec bin/experiments.exe               # run everything
     dune exec bin/experiments.exe -- e3 f2      # run selected entries
     dune exec bin/experiments.exe -- -j 4 e1 e3 # 4-way parallel
     dune exec bin/experiments.exe -- --csv e4   # CSV for one table
     dune exec bin/experiments.exe -- --list     # list entries *)

let list_entries () =
  print_endline "available entries:";
  List.iter
    (fun e ->
      Printf.printf "  %-4s %s\n" e.Dtm_expt.Registry.id e.Dtm_expt.Registry.title)
    Dtm_expt.Registry.all

let run_entries entries =
  List.iter
    (fun (_, out) -> print_string out)
    (Dtm_expt.Registry.run_many entries)

let run_csv id =
  match Dtm_expt.Registry.find (String.lowercase_ascii id) with
  | Some { Dtm_expt.Registry.csv = Some f; _ } ->
    print_string (f ~seeds:Dtm_expt.Registry.default_seeds)
  | Some _ ->
    Printf.eprintf "entry %S has no tabular output\n" id;
    exit 1
  | None ->
    Printf.eprintf "unknown entry %S (try --list)\n" id;
    exit 1

let resolve id =
  match Dtm_expt.Registry.find (String.lowercase_ascii id) with
  | Some e -> e
  | None ->
    Printf.eprintf "unknown entry %S (try --list)\n" id;
    exit 1

(* Strip -j N / --jobs N (default: every recommended domain). *)
let rec extract_jobs acc = function
  | [] -> List.rev acc
  | ("-j" | "--jobs") :: v :: rest -> (
    match int_of_string_opt v with
    | Some j when j >= 1 ->
      Dtm_util.Pool.set_default_jobs j;
      extract_jobs acc rest
    | _ ->
      Printf.eprintf "invalid -j value %S (need an integer >= 1)\n" v;
      exit 1)
  | [ ("-j" | "--jobs") ] ->
    prerr_endline "-j needs a value";
    exit 1
  | x :: rest -> extract_jobs (x :: acc) rest

let () =
  let args = extract_jobs [] (List.tl (Array.to_list Sys.argv)) in
  match args with
  | [ "--list" ] -> list_entries ()
  | "--csv" :: ids when ids <> [] -> List.iter run_csv ids
  | [] -> run_entries Dtm_expt.Registry.all
  | ids -> run_entries (List.map resolve ids)
