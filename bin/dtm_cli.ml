(* dtm: command-line front end.

   Examples:
     dtm schedule -t clique:64 -w 16 -k 3 --seed 1
     dtm schedule -t grid:16x16 -w 32 -k 2 --scheduler sequential --replay
     dtm lower-bound -t star:8x7 -w 12 -k 2
     dtm topologies *)

open Cmdliner
module Topology = Dtm_topology.Topology
module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule

let topo_conv =
  let parse s =
    (* "file:PATH" loads an arbitrary graph in the dtm-graph format and
       schedules it with the Section 3.1 bounded-diameter greedy. *)
    if String.length s > 5 && String.sub s 0 5 = "file:" then begin
      let path = String.sub s 5 (String.length s - 5) in
      if not (Sys.file_exists path) then Error (`Msg ("no such file: " ^ path))
      else begin
        let ic = open_in path in
        let len = in_channel_length ic in
        let contents = really_input_string ic len in
        close_in ic;
        match Dtm_graph.Graph_io.of_string contents with
        | Ok graph ->
          Ok (Topology.Custom { name = Filename.basename path; graph })
        | Error e -> Error (`Msg ("cannot parse graph: " ^ e))
      end
    end
    else Topology.of_string s |> Result.map_error (fun e -> `Msg e)
  in
  Arg.conv (parse, fun fmt t -> Format.pp_print_string fmt (Topology.to_string t))

let topo_arg =
  Arg.(
    required
    & opt (some topo_conv) None
    & info [ "t"; "topology" ] ~docv:"TOPO"
        ~doc:
          "Topology, e.g. clique:64, line:128, grid:16x16, torus:8x8, \
           hypercube:6, butterfly:4, cluster:5x6:g12, star:8x7, blockgrid:9, \
           blocktree:9, powerlaw:100000x3:s42.")

let objects_arg =
  Arg.(value & opt int 16 & info [ "w"; "objects" ] ~docv:"W" ~doc:"Number of shared objects.")

let k_arg =
  Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"Objects requested per transaction.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Size of the domain pool the analysis and measurement passes \
           run on (default: all recommended domains).  Results are \
           merged in submission order, so output is byte-identical for \
           any $(docv).")

let apply_jobs = function
  | None -> ()
  | Some j when j >= 1 -> Dtm_util.Pool.set_default_jobs j
  | Some j ->
    Printf.eprintf "invalid -j value %d (need an integer >= 1)\n" j;
    exit 124

let workload_arg =
  Arg.(
    value
    & opt (enum [ ("uniform", `Uniform); ("hot", `Hot); ("zipf", `Zipf) ]) `Uniform
    & info [ "workload" ] ~docv:"KIND" ~doc:"Workload: uniform, hot, or zipf.")

let scheduler_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("auto", `Auto);
             ("greedy", `Greedy);
             ("sequential", `Sequential);
             ("online", `Online);
           ])
        `Auto
    & info [ "scheduler" ] ~docv:"ALGO"
        ~doc:
          "auto (the paper's algorithm for the topology), greedy (Section \
           2.3), sequential baseline, or online list scheduling.")

let replay_arg =
  Arg.(value & flag & info [ "replay" ] ~doc:"Also replay the schedule hop-by-hop.")

let times_arg =
  Arg.(value & flag & info [ "times" ] ~doc:"Print each transaction's execution step.")

let save_instance_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-instance" ] ~docv:"FILE"
        ~doc:"Write the generated instance in the dtm-instance format.")

let save_schedule_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-schedule" ] ~docv:"FILE"
        ~doc:"Write the computed schedule in the dtm-schedule format.")

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let chart_arg =
  Arg.(
    value & flag
    & info [ "chart" ]
        ~doc:"Render an ASCII Gantt chart, parallelism profile, and object journeys.")

let make_instance topo ~w ~k ~seed ~workload =
  let n = Topology.n topo in
  let rng = Dtm_util.Prng.create ~seed in
  match workload with
  | `Uniform -> Dtm_workload.Uniform.instance ~rng ~n ~num_objects:w ~k ()
  | `Hot -> Dtm_workload.Arbitrary.hot_object ~rng ~n ~num_objects:w ~k
  | `Zipf -> Dtm_workload.Zipf.instance ~rng ~n ~num_objects:w ~k ~exponent:1.0

let capacity_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "capacity" ] ~docv:"C"
        ~doc:
          "Also execute the schedule's visit orders under a per-edge \
           admission bound of $(docv) objects per step (congestion \
           extension).")

let schedule_cmd =
  let run topo w k seed workload scheduler replay times chart save_inst save_sched
      capacity jobs =
    apply_jobs jobs;
    let inst = make_instance topo ~w ~k ~seed ~workload in
    let metric = Topology.metric topo in
    let name, sched =
      match scheduler with
      | `Auto -> (Dtm_sched.Auto.name topo, Dtm_sched.Auto.schedule ~seed topo inst)
      | `Greedy -> ("basic greedy (Sec 2.3)", Dtm_core.Greedy.schedule metric inst)
      | `Sequential -> ("sequential baseline", Dtm_sched.Baseline.sequential metric inst)
      | `Online -> ("online list scheduling", Dtm_sim.Engine.run metric inst)
    in
    Printf.printf "topology:  %s\n" (Topology.describe topo);
    Printf.printf "workload:  %d objects, k = %d, seed = %d\n" w k seed;
    Printf.printf "scheduler: %s\n" name;
    (match Dtm_core.Validator.check metric inst sched with
    | Ok () -> Printf.printf "feasible:  yes\n"
    | Error v -> Printf.printf "feasible:  NO - %s\n" (Dtm_core.Validator.explain v));
    Printf.printf "%s\n" (Dtm_core.Cost.summary metric inst sched);
    if times then
      List.iter
        (fun v -> Printf.printf "  node %d -> step %d\n" v (Schedule.time_exn sched v))
        (Schedule.scheduled_nodes sched);
    (match save_inst with
    | Some path ->
      write_file path (Dtm_core.Serial.instance_to_string inst);
      Printf.printf "instance saved to %s\n" path
    | None -> ());
    (match save_sched with
    | Some path ->
      write_file path (Dtm_core.Serial.schedule_to_string sched);
      Printf.printf "schedule saved to %s\n" path
    | None -> ());
    if chart then begin
      print_newline ();
      print_string (Dtm_sim.Gantt.chart inst sched);
      print_string (Dtm_sim.Gantt.parallelism_profile sched);
      print_newline ();
      print_string (Dtm_sim.Gantt.object_journeys metric inst sched)
    end;
    (* Bind the graph once: replay and congestion share one router (the
       [?router] argument requires physical equality with its graph). *)
    let graph = lazy (Topology.graph topo) in
    let router = lazy (Dtm_sim.Router.create (Lazy.force graph)) in
    if replay then begin
      let r =
        Dtm_sim.Replay.run ~router:(Lazy.force router) (Lazy.force graph) inst
          sched
      in
      Printf.printf "replay:    ok=%b messages=%d hops=%d idle=%d events=%d\n"
        r.Dtm_sim.Replay.ok r.Dtm_sim.Replay.messages r.Dtm_sim.Replay.hops
        r.Dtm_sim.Replay.total_wait
        (Dtm_sim.Trace.length r.Dtm_sim.Replay.trace)
    end;
    match capacity with
    | None -> ()
    | Some c ->
      let r =
        Dtm_sim.Congestion.run ~router:(Lazy.force router) ~capacity:c
          (Lazy.force graph) inst ~priority:sched
      in
      Printf.printf
        "congestion (cap %d): makespan=%d delayed_hops=%d max_queue=%d\n" c
        r.Dtm_sim.Congestion.makespan r.Dtm_sim.Congestion.delayed_hops
        r.Dtm_sim.Congestion.max_queue
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Generate a workload and schedule it.")
    Term.(
      const run $ topo_arg $ objects_arg $ k_arg $ seed_arg $ workload_arg
      $ scheduler_arg $ replay_arg $ times_arg $ chart_arg $ save_instance_arg
      $ save_schedule_arg $ capacity_arg $ jobs_arg)

let lower_bound_cmd =
  let run topo w k seed workload =
    let inst = make_instance topo ~w ~k ~seed ~workload in
    let metric = Topology.metric topo in
    let lb = Dtm_core.Lower_bound.compute metric inst in
    Printf.printf "topology:    %s\n" (Topology.describe topo);
    Printf.printf "load l:      %d\n" lb.Dtm_core.Lower_bound.load;
    Printf.printf "max walk:    %d\n" lb.Dtm_core.Lower_bound.max_walk;
    Printf.printf "certified:   %d\n" lb.Dtm_core.Lower_bound.certified;
    Array.iter
      (fun p ->
        if p.Dtm_core.Lower_bound.requesters > 0 then begin
          let wk = p.Dtm_core.Lower_bound.walk in
          Printf.printf "  object %d: %d requesters, walk in [%d, %d]%s\n"
            p.Dtm_core.Lower_bound.obj p.Dtm_core.Lower_bound.requesters
            wk.Dtm_graph.Walk.lower wk.Dtm_graph.Walk.upper
            (match wk.Dtm_graph.Walk.exact with
            | Some e -> Printf.sprintf " (exact %d)" e
            | None -> "")
        end)
      lb.Dtm_core.Lower_bound.per_object
  in
  Cmd.v
    (Cmd.info "lower-bound" ~doc:"Show the certified lower bound of an instance.")
    Term.(const run $ topo_arg $ objects_arg $ k_arg $ seed_arg $ workload_arg)

let validate_cmd =
  let run topo inst_file sched_file =
    let fail msg =
      prerr_endline msg;
      exit 1
    in
    let inst =
      match Dtm_core.Serial.instance_of_string (read_file inst_file) with
      | Ok i -> i
      | Error e -> fail ("cannot parse instance: " ^ e)
    in
    let sched =
      match Dtm_core.Serial.schedule_of_string (read_file sched_file) with
      | Ok s -> s
      | Error e -> fail ("cannot parse schedule: " ^ e)
    in
    if Instance.n inst <> Topology.n topo then
      fail "instance node count does not match the topology";
    let metric = Topology.metric topo in
    match Dtm_core.Validator.check metric inst sched with
    | Ok () ->
      Printf.printf "feasible: yes\n%s\n" (Dtm_core.Cost.summary metric inst sched)
    | Error v ->
      Printf.printf "feasible: NO - %s\n" (Dtm_core.Validator.explain v);
      exit 2
  in
  let inst_file =
    Arg.(
      required
      & opt (some file) None
      & info [ "instance" ] ~docv:"FILE" ~doc:"Instance file (dtm-instance format).")
  in
  let sched_file =
    Arg.(
      required
      & opt (some file) None
      & info [ "schedule" ] ~docv:"FILE" ~doc:"Schedule file (dtm-schedule format).")
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Validate a saved schedule against a saved instance.")
    Term.(const run $ topo_arg $ inst_file $ sched_file)

let online_cmd =
  let run topo w k seed txns_per_node mean_gap policy =
    let n = Topology.n topo in
    let metric = Topology.metric topo in
    let rng = Dtm_util.Prng.create ~seed in
    let stream =
      Dtm_online.Stream.uniform ~rng ~n ~num_objects:w ~k ~txns_per_node
        ~mean_gap
    in
    let homes = Dtm_online.Stream.initial_homes ~rng stream in
    let r = Dtm_online.Runner.run ~policy metric stream ~homes in
    Printf.printf "topology:      %s\n" (Topology.describe topo);
    Printf.printf "stream:        %d transactions (%d per node), mean gap %d\n"
      (Dtm_online.Stream.total stream)
      txns_per_node mean_gap;
    Printf.printf "policy:        %s\n" (Dtm_online.Policy.to_string policy);
    Printf.printf "makespan:      %d\n" r.Dtm_online.Runner.makespan;
    Printf.printf "mean response: %.2f (p95 %.2f)\n" r.Dtm_online.Runner.mean_response
      r.Dtm_online.Runner.p95_response;
    Printf.printf "travel:        %d weighted units\n" r.Dtm_online.Runner.total_travel;
    Printf.printf "recoveries:    %d forced grants, %d preemptions\n"
      r.Dtm_online.Runner.forced_grants r.Dtm_online.Runner.preemptions
  in
  let txns_arg =
    Arg.(value & opt int 4 & info [ "txns-per-node" ] ~docv:"T" ~doc:"Transactions issued per node.")
  in
  let gap_arg =
    Arg.(value & opt int 3 & info [ "mean-gap" ] ~docv:"G" ~doc:"Mean inter-arrival gap per node.")
  in
  let policy_arg =
    let policy_conv =
      Arg.enum
        [
          ("timestamp", Dtm_online.Policy.Timestamp { preemption = false });
          ("greedy-cm", Dtm_online.Policy.Timestamp { preemption = true });
          ("nearest", Dtm_online.Policy.Nearest);
          ("random", Dtm_online.Policy.Random_grant 1);
          ("window-greedy", Dtm_online.Policy.Window_greedy { window = 16; seed = 1 });
          ("backoff", Dtm_online.Policy.Backoff { seed = 1; limit = 8 });
        ]
    in
    Arg.(
      value
      & opt policy_conv (Dtm_online.Policy.Timestamp { preemption = true })
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Contention manager: timestamp, greedy-cm, nearest, random, \
             window-greedy, or backoff.")
  in
  Cmd.v
    (Cmd.info "online"
       ~doc:"Run a continuous transaction stream under a contention manager.")
    Term.(
      const run $ topo_arg $ objects_arg $ k_arg $ seed_arg $ txns_arg $ gap_arg
      $ policy_arg)

let serve_cmd =
  let run topo w k seed rate burst dist policy horizon patience critical shards
      jobs =
    apply_jobs jobs;
    if shards < 1 then begin
      prerr_endline "dtm serve: --shards must be >= 1";
      exit 124
    end;
    let n = Topology.n topo in
    let metric = Topology.metric topo in
    let spec =
      { Dtm_workload.Injection.n; num_objects = w; k; rate; burst; dist; seed }
    in
    let homes = Dtm_workload.Injection.homes spec in
    Printf.printf "topology:      %s\n" (Topology.describe topo);
    Printf.printf "injection:     %s\n" (Dtm_workload.Injection.describe spec);
    Printf.printf "policy:        %s\n" (Dtm_online.Policy.to_string policy);
    if shards > 1 then Printf.printf "shards:        %d\n" shards;
    let serve rate =
      let factory =
        Dtm_workload.Injection.source_factory
          { spec with Dtm_workload.Injection.rate }
      in
      Dtm_online.Sharded.run ~policy ~patience ~shards metric factory ~homes
        ~horizon
    in
    let r = serve rate in
    let module O = Dtm_online.Open_system in
    Printf.printf "horizon:       %d steps\n" r.O.horizon;
    Printf.printf "verdict:       %s\n" (O.verdict_to_string r.O.verdict);
    Printf.printf "injected:      %d txns (committed %d)\n" r.O.injected
      r.O.committed;
    Printf.printf "queue:         final %d, peak %d, mean %.1f\n" r.O.final_queue
      r.O.peak_queue r.O.mean_queue;
    if r.O.committed > 0 then
      Printf.printf "latency:       p50 %d, p99 %d, p999 %d, max %d steps\n"
        r.O.latency_p50 r.O.latency_p99 r.O.latency_p999 r.O.max_latency;
    Printf.printf "travel:        %d weighted units\n" r.O.total_travel;
    Printf.printf "recoveries:    %d forced grants, %d preemptions\n"
      r.O.forced_grants r.O.preemptions;
    if critical then begin
      let stable rho = (serve rho).O.verdict = O.Bounded in
      let lo, hi =
        O.critical_rate ~lo:(rate /. 16.0) ~hi:(rate *. 16.0) stable
      in
      Printf.printf "critical rate: rho* in [%.4f, %.4f] txns/step\n" lo hi
    end
  in
  let rate_arg =
    Arg.(
      value
      & opt float 0.3
      & info [ "rate" ] ~docv:"RHO" ~doc:"Injection rate (transactions per step).")
  in
  let burst_arg =
    Arg.(
      value
      & opt int 1
      & info [ "burst" ] ~docv:"B"
          ~doc:"Token-bucket burstiness: arrivals clump into batches of ~B.")
  in
  let dist_arg =
    let parse s =
      match String.split_on_char ':' s with
      | [ "uniform" ] -> Ok Dtm_workload.Injection.Uniform_objects
      | [ "zipf"; e ] -> (
        match float_of_string_opt e with
        | Some e when e >= 0.0 -> Ok (Dtm_workload.Injection.Zipf_objects e)
        | _ -> Error (`Msg "zipf wants a non-negative exponent, e.g. zipf:1.1"))
      | [ "hot"; p ] -> (
        match float_of_string_opt p with
        | Some p when p >= 0.0 && p <= 1.0 ->
          Ok (Dtm_workload.Injection.Hot_objects p)
        | _ -> Error (`Msg "hot wants a probability, e.g. hot:0.8"))
      | _ -> Error (`Msg "expected uniform, zipf:EXPONENT, or hot:PROB")
    in
    let print ppf d =
      Format.pp_print_string ppf (Dtm_workload.Injection.dist_to_string d)
    in
    Arg.(
      value
      & opt (conv (parse, print)) Dtm_workload.Injection.Uniform_objects
      & info [ "dist" ] ~docv:"DIST"
          ~doc:"Object popularity: uniform, zipf:EXPONENT, or hot:PROB.")
  in
  let policy_arg =
    let policy_conv =
      Arg.enum
        [
          ("timestamp", Dtm_online.Policy.Timestamp { preemption = false });
          ("greedy-cm", Dtm_online.Policy.Timestamp { preemption = true });
          ("nearest", Dtm_online.Policy.Nearest);
          ("random", Dtm_online.Policy.Random_grant 1);
          ("window-greedy", Dtm_online.Policy.Window_greedy { window = 16; seed = 1 });
          ("backoff", Dtm_online.Policy.Backoff { seed = 1; limit = 8 });
        ]
    in
    Arg.(
      value
      & opt policy_conv (Dtm_online.Policy.Timestamp { preemption = true })
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Contention manager: timestamp, greedy-cm, nearest, random, \
             window-greedy, or backoff.")
  in
  let horizon_arg =
    Arg.(
      value
      & opt int 20_000
      & info [ "horizon" ] ~docv:"STEPS" ~doc:"Steps to simulate.")
  in
  let patience_arg =
    Arg.(
      value
      & opt int 50
      & info [ "patience" ] ~docv:"STEPS"
          ~doc:"Idle steps before the deadlock watchdog intervenes.")
  in
  let critical_arg =
    Arg.(
      value & flag
      & info [ "critical" ]
          ~doc:"Also binary-search the critical rate rho* for this policy.")
  in
  let shards_arg =
    Arg.(
      value
      & opt int 1
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Partition objects across S shards advanced in bulk-synchronous \
             rounds on the domain pool; 1 (the default) runs the unsharded \
             engine.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a continual-arrival open-system workload and judge stability.")
    Term.(
      const run $ topo_arg $ objects_arg $ k_arg $ seed_arg $ rate_arg
      $ burst_arg $ dist_arg $ policy_arg $ horizon_arg $ patience_arg
      $ critical_arg $ shards_arg $ jobs_arg)

let analyze_cmd =
  let module Analysis = Dtm_analysis in
  let run topo w k seed workload scheduler inst_file sched_file json
      no_certificate codes jobs =
    apply_jobs jobs;
    if codes then begin
      print_endline "diagnostic codes (dtm analyze):";
      List.iter
        (fun c ->
          Printf.printf "  %s %-24s %-8s %s\n" (Analysis.Code.id c)
            (Analysis.Code.title c)
            (Analysis.Severity.to_string (Analysis.Code.default_severity c))
            (Analysis.Code.describe c))
        Analysis.Code.all;
      exit 0
    end;
    let topo =
      match topo with
      | Some t -> t
      | None ->
        prerr_endline "dtm analyze: a topology is required (or use --codes)";
        exit 124
    in
    let fail msg =
      prerr_endline msg;
      exit 124
    in
    let inst =
      match inst_file with
      | Some path -> (
        match Dtm_core.Serial.instance_of_string (read_file path) with
        | Ok i -> i
        | Error e -> fail ("cannot parse instance: " ^ e))
      | None -> make_instance topo ~w ~k ~seed ~workload
    in
    let metric = Topology.metric topo in
    (* A loaded schedule has an unknown producer, so no theorem bound
       applies; certificates are checked only for schedules we compute
       with the paper's per-topology algorithm. *)
    let sched_name, sched, certificate =
      match sched_file with
      | Some path -> (
        match Dtm_core.Serial.schedule_of_string (read_file path) with
        | Ok s -> (Some ("loaded from " ^ path), Some s, None)
        | Error e -> fail ("cannot parse schedule: " ^ e))
      | None -> (
        match scheduler with
        | `Auto ->
          let name = Dtm_sched.Auto.name topo in
          let s = Dtm_sched.Auto.schedule ~seed topo inst in
          let cert = Analysis.Certificate.make ~scheduler:name topo inst s in
          (Some name, Some s, if no_certificate then None else Some cert)
        | `Greedy ->
          (Some "basic greedy (Sec 2.3)", Some (Dtm_core.Greedy.schedule metric inst), None)
        | `Sequential ->
          (Some "sequential baseline", Some (Dtm_sched.Baseline.sequential metric inst), None)
        | `None -> (None, None, None))
    in
    let report = Analysis.Analyze.run ?schedule:sched ?certificate topo inst in
    if json then begin
      let extra =
        [ ("topology", Analysis.Json.String (Topology.to_string topo)) ]
        @ (match sched_name with
          | Some s -> [ ("scheduler", Analysis.Json.String s) ]
          | None -> [])
        @ (match sched with
          | Some s ->
            [ ("makespan", Analysis.Json.Int (Schedule.makespan s)) ]
          | None -> [])
        @
        match certificate with
        | Some c -> [ ("certificate", Analysis.Certificate.to_json c) ]
        | None -> []
      in
      print_endline (Analysis.Json.to_string (Analysis.Report.to_json ~extra report))
    end
    else begin
      Printf.printf "topology:  %s\n" (Topology.describe topo);
      (match sched_name with
      | Some s -> Printf.printf "scheduler: %s\n" s
      | None -> ());
      (match sched with
      | Some s -> Printf.printf "makespan:  %d\n" (Schedule.makespan s)
      | None -> ());
      (match certificate with
      | Some c -> Printf.printf "%s\n" (Analysis.Certificate.render c)
      | None -> ());
      print_string (Analysis.Report.render report)
    end;
    exit (Analysis.Report.exit_code report)
  in
  let topo_opt_arg =
    Arg.(
      value
      & opt (some topo_conv) None
      & info [ "t"; "topology" ] ~docv:"TOPO"
          ~doc:"Topology to analyze (see $(b,dtm topologies)).")
  in
  let scheduler_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("auto", `Auto);
               ("greedy", `Greedy);
               ("sequential", `Sequential);
               ("none", `None);
             ])
          `Auto
      & info [ "scheduler" ] ~docv:"ALGO"
          ~doc:
            "Scheduler whose output to analyze: auto (with certificate \
             check), greedy, sequential, or none (instance/topology lints \
             only).")
  in
  let inst_file_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "instance" ] ~docv:"FILE"
          ~doc:"Analyze this saved instance instead of generating one.")
  in
  let sched_file_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:"Analyze this saved schedule instead of computing one.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let no_cert_arg =
    Arg.(value & flag & info [ "no-certificate" ] ~doc:"Skip the certificate check.")
  in
  let codes_arg =
    Arg.(value & flag & info [ "codes" ] ~doc:"List all diagnostic codes and exit.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically analyze an instance and schedule: lints, feasibility \
          proof, and the scheduler's approximation certificate.  Exits \
          non-zero when any error-severity finding is reported.")
    Term.(
      const run $ topo_opt_arg $ objects_arg $ k_arg $ seed_arg $ workload_arg
      $ scheduler_arg $ inst_file_arg $ sched_file_arg $ json_arg $ no_cert_arg
      $ codes_arg $ jobs_arg)

let verify_cmd =
  let module Analysis = Dtm_analysis in
  let run topo w k seed seeds workload capacity json codes jobs =
    apply_jobs jobs;
    if codes then begin
      print_endline "diagnostic codes (dtm verify):";
      List.iter
        (fun c ->
          Printf.printf "  %s %-24s %-8s %s\n" (Analysis.Code.id c)
            (Analysis.Code.title c)
            (Analysis.Severity.to_string (Analysis.Code.default_severity c))
            (Analysis.Code.describe c))
        Analysis.Code.all;
      exit 0
    end;
    let topo =
      match topo with
      | Some t -> t
      | None ->
        prerr_endline "dtm verify: a topology is required (or use --codes)";
        exit 124
    in
    if seeds < 1 then begin
      prerr_endline "dtm verify: --seeds must be >= 1";
      exit 124
    end;
    if capacity < 1 then begin
      prerr_endline "dtm verify: --capacity must be >= 1";
      exit 124
    end;
    let seed_list = List.init seeds (fun i -> seed + i) in
    (* One end-to-end audit per seed, fanned over the shared pool; the
       pool merges in submission order and each audit's passes merge in
       a fixed order, so the report is byte-identical for any -j. *)
    let outcomes =
      Dtm_util.Pool.run
        (fun seed ->
          let inst = make_instance topo ~w ~k ~seed ~workload in
          let sched = Dtm_sched.Auto.schedule ~seed topo inst in
          (seed, Analysis.Verify.run ~capacity topo inst sched))
        seed_list
    in
    let report =
      List.fold_left
        (fun acc (_, o) -> Analysis.Report.merge acc o.Analysis.Verify.report)
        Analysis.Report.empty outcomes
    in
    if json then begin
      let seed_json (s, o) =
        Analysis.Json.Obj
          [
            ("seed", Analysis.Json.Int s);
            ("makespan", Analysis.Json.Int o.Analysis.Verify.makespan);
            ("lower", Analysis.Json.Int o.Analysis.Verify.lower);
            ("replay_events", Analysis.Json.Int o.Analysis.Verify.replay_events);
            ( "congestion_makespan",
              Analysis.Json.Int o.Analysis.Verify.congestion_makespan );
            ( "congestion_events",
              Analysis.Json.Int o.Analysis.Verify.congestion_events );
            ( "optimum",
              match o.Analysis.Verify.optimum with
              | Some v -> Analysis.Json.Int v
              | None -> Analysis.Json.Null );
          ]
      in
      let extra =
        [
          ("topology", Analysis.Json.String (Topology.to_string topo));
          ("scheduler", Analysis.Json.String (Dtm_sched.Auto.name topo));
          ("capacity", Analysis.Json.Int capacity);
          ("seeds", Analysis.Json.List (List.map seed_json outcomes));
        ]
      in
      print_endline (Analysis.Json.to_string (Analysis.Report.to_json ~extra report))
    end
    else begin
      Printf.printf "topology:  %s\n" (Topology.describe topo);
      Printf.printf "scheduler: %s\n" (Dtm_sched.Auto.name topo);
      Printf.printf "workload:  %d objects, k = %d, seeds %d..%d\n" w k seed
        (seed + seeds - 1);
      Printf.printf "passes:    static, replay, congestion (cap %d), model\n"
        capacity;
      List.iter
        (fun (s, o) ->
          Printf.printf
            "seed %d: makespan=%d lower=%d ratio=%.2f replay_events=%d \
             congestion_makespan=%d congestion_events=%d optimum=%s\n"
            s o.Analysis.Verify.makespan o.Analysis.Verify.lower
            (Dtm_core.Lower_bound.ratio ~makespan:o.Analysis.Verify.makespan
               ~lower:o.Analysis.Verify.lower)
            o.Analysis.Verify.replay_events o.Analysis.Verify.congestion_makespan
            o.Analysis.Verify.congestion_events
            (match o.Analysis.Verify.optimum with
            | Some v -> string_of_int v
            | None -> "-"))
        outcomes;
      print_string (Analysis.Report.render report)
    end;
    exit (Analysis.Report.exit_code report)
  in
  let topo_opt_arg =
    Arg.(
      value
      & opt (some topo_conv) None
      & info [ "t"; "topology" ] ~docv:"TOPO"
          ~doc:"Topology to verify (see $(b,dtm topologies)).")
  in
  let seeds_arg =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Number of consecutive seeds to audit, starting at --seed.")
  in
  let verify_capacity_arg =
    Arg.(
      value & opt int 1
      & info [ "capacity" ] ~docv:"C"
          ~doc:"Per-edge admission bound used by the congestion pass.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let codes_arg =
    Arg.(value & flag & info [ "codes" ] ~doc:"List all diagnostic codes and exit.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Audit the whole pipeline on generated workloads: static analysis, \
          a trace-linted replay, a trace-linted bounded-capacity congestion \
          run, and the small-scope model checker against the certified \
          lower bound.  Exits non-zero when any error-severity finding is \
          reported.")
    Term.(
      const run $ topo_opt_arg $ objects_arg $ k_arg $ seed_arg $ seeds_arg
      $ workload_arg $ verify_capacity_arg $ json_arg $ codes_arg $ jobs_arg)

let stm_cmd =
  let module I = Dtm_workload.Injection in
  let module Stm = Dtm_stm in
  let run topo w k seed rate burst dist count domains seeds work_ns policies =
    let n = Topology.n topo in
    let metric = Topology.metric topo in
    let spec = { I.n; num_objects = w; k; rate; burst; dist; seed } in
    let seed_list = List.init (max 1 seeds) (fun i -> seed + i) in
    Printf.printf "topology:      %s\n" (Topology.describe topo);
    Printf.printf "injection:     %s\n" (I.describe spec);
    Printf.printf "workload:      %d txns per run, %d seeds\n" count seeds;
    Printf.printf "calibration:   %.2f ns per work unit, %.0f ns target per \
                   distance unit\n"
      (Stm.Calibrate.ns_per_unit ()) work_ns;
    (* Sim-vs-measured rank correlation, one row per policy. *)
    let row_domains = match domains with d :: _ -> d | [] -> 1 in
    print_newline ();
    Printf.printf "%-28s %14s %10s %12s\n" "policy" "corr(sim,wall)"
      "abort-rate" "mean-wall-ms";
    List.iter
      (fun policy ->
        let row =
          Stm.Validate.policy_row ~domains:row_domains ~work_target_ns:work_ns
            ~metric ~spec ~count ~seeds:seed_list policy
        in
        let mean_wall_ms =
          Array.fold_left
            (fun a s -> a +. (float_of_int s.Stm.Validate.wall_ns /. 1e6))
            0.0 row.Stm.Validate.samples
          /. float_of_int (max 1 (Array.length row.Stm.Validate.samples))
        in
        Printf.printf "%-28s %14.3f %10.3f %12.2f\n" row.Stm.Validate.cm_name
          row.Stm.Validate.correlation row.Stm.Validate.mean_abort_rate
          mean_wall_ms)
      policies;
    (* Scaling curve for the first policy over the domain list, plus the
       wall-clock-independent correctness verdicts CI keys on. *)
    (match policies with
    | [] -> ()
    | policy :: _ ->
      let work_scale = Stm.Calibrate.units_for ~target_ns:work_ns in
      let workload =
        Stm.Runtime.of_injection ~work_scale ~metric ~spec ~count ()
      in
      let cores = Domain.recommended_domain_count () in
      Printf.printf "\ncores:         %d detected%s\n" cores
        (if List.exists (fun d -> d > cores) domains then
           " (domain counts above this measure overhead, not scaling)"
         else "");
      Printf.printf "scaling (%s, fixed workload):\n"
        (Dtm_online.Policy.to_string policy);
      Printf.printf "%8s %10s %16s %10s %8s\n" "domains" "wall-ms"
        "throughput" "aborts" "speedup";
      let base = ref 0 in
      let all_ok = ref true in
      List.iter
        (fun d ->
          let rep, records =
            Stm.Runtime.run ~record:true ~cm:(Stm.Cm.of_policy policy)
              ~domains:d ~num_objects:w workload
          in
          if !base = 0 then base := rep.Stm.Runtime.wall_ns;
          let ok =
            Stm.Validate.conserved rep workload
            && Stm.Validate.log_serializable records
          in
          all_ok := !all_ok && ok;
          Printf.printf "%8d %10.2f %16.0f %10d %8.2f\n" d
            (float_of_int rep.Stm.Runtime.wall_ns /. 1e6)
            rep.Stm.Runtime.throughput rep.Stm.Runtime.aborts
            (float_of_int !base /. float_of_int rep.Stm.Runtime.wall_ns))
        domains;
      Printf.printf "\nverdict:       %s (conservation + serializability at \
                     every domain count)\n"
        (if !all_ok then "ok" else "FAILED");
      if not !all_ok then exit 1)
  in
  let rate_arg =
    Arg.(
      value
      & opt float 0.5
      & info [ "rate" ] ~docv:"RHO" ~doc:"Injection rate (transactions per step).")
  in
  let burst_arg =
    Arg.(
      value
      & opt int 1
      & info [ "burst" ] ~docv:"B" ~doc:"Token-bucket burstiness.")
  in
  let dist_arg =
    let parse s =
      match String.split_on_char ':' s with
      | [ "uniform" ] -> Ok I.Uniform_objects
      | [ "zipf"; e ] -> (
        match float_of_string_opt e with
        | Some e when e >= 0.0 -> Ok (I.Zipf_objects e)
        | _ -> Error (`Msg "zipf wants a non-negative exponent, e.g. zipf:1.1"))
      | [ "hot"; p ] -> (
        match float_of_string_opt p with
        | Some p when p >= 0.0 && p <= 1.0 -> Ok (I.Hot_objects p)
        | _ -> Error (`Msg "hot wants a probability, e.g. hot:0.8"))
      | _ -> Error (`Msg "expected uniform, zipf:EXPONENT, or hot:PROB")
    in
    let print ppf d = Format.pp_print_string ppf (I.dist_to_string d) in
    Arg.(
      value
      & opt (conv (parse, print)) I.Uniform_objects
      & info [ "dist" ] ~docv:"DIST"
          ~doc:"Object popularity: uniform, zipf:EXPONENT, or hot:PROB.")
  in
  let count_arg =
    Arg.(
      value
      & opt int 2000
      & info [ "count" ] ~docv:"N" ~doc:"Transactions to execute per run.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (list int) [ 1; 4 ]
      & info [ "domains" ] ~docv:"D,D,..."
          ~doc:"Domain counts for the scaling curve (first is the baseline \
                and runs the correlation rows).")
  in
  let seeds_arg =
    Arg.(
      value
      & opt int 4
      & info [ "seeds" ] ~docv:"S"
          ~doc:"Seeds per correlation row (>= 2 for a defined rank \
                correlation).")
  in
  let work_ns_arg =
    Arg.(
      value
      & opt float 2000.0
      & info [ "work-ns" ] ~docv:"NS"
          ~doc:"Calibrated busy-work per simulated distance unit, in \
                nanoseconds.")
  in
  let policies_arg =
    let policy_conv =
      Arg.enum
        [
          ("timestamp", Dtm_online.Policy.Timestamp { preemption = false });
          ("greedy-cm", Dtm_online.Policy.Timestamp { preemption = true });
          ("nearest", Dtm_online.Policy.Nearest);
          ("random", Dtm_online.Policy.Random_grant 1);
          ("window-greedy", Dtm_online.Policy.Window_greedy { window = 16; seed = 1 });
          ("backoff", Dtm_online.Policy.Backoff { seed = 1; limit = 8 });
        ]
    in
    Arg.(
      value
      & opt (list policy_conv)
          [
            Dtm_online.Policy.Timestamp { preemption = true };
            Dtm_online.Policy.Window_greedy { window = 16; seed = 1 };
            Dtm_online.Policy.Backoff { seed = 1; limit = 8 };
          ]
      & info [ "policies" ] ~docv:"P,P,..."
          ~doc:"Contention managers to compare: timestamp, greedy-cm, \
                nearest, random, window-greedy, backoff.")
  in
  Cmd.v
    (Cmd.info "stm"
       ~doc:
         "Execute injected workloads on the multicore STM runtime and \
          correlate simulated makespans with measured wall-clock.")
    Term.(
      const run $ topo_arg $ objects_arg $ k_arg $ seed_arg $ rate_arg
      $ burst_arg $ dist_arg $ count_arg $ domains_arg $ seeds_arg
      $ work_ns_arg $ policies_arg)

let topologies_cmd =
  let run () =
    print_endline "supported topologies (with example parameters):";
    List.iter
      (fun t -> Printf.printf "  %s\n" (Topology.describe t))
      Topology.all_examples
  in
  Cmd.v
    (Cmd.info "topologies" ~doc:"List supported topologies.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "dtm" ~version:"1.0.0"
      ~doc:"Provably fast schedulers for distributed transactional memory"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            schedule_cmd;
            lower_bound_cmd;
            validate_cmd;
            analyze_cmd;
            verify_cmd;
            online_cmd;
            serve_cmd;
            stm_cmd;
            topologies_cmd;
          ]))
