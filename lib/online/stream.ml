type txn = { node : int; objects : int list; arrival : int }

type t = { n : int; num_objects : int; queues : txn list array }

let create ~n ~num_objects txns =
  if n < 1 then invalid_arg "Stream.create: n < 1";
  if num_objects < 1 then invalid_arg "Stream.create: num_objects < 1";
  let queues = Array.make n [] in
  List.iter
    (fun t ->
      if t.node < 0 || t.node >= n then invalid_arg "Stream.create: node out of range";
      if t.arrival < 1 then invalid_arg "Stream.create: arrival < 1";
      if t.objects = [] then invalid_arg "Stream.create: empty object list";
      List.iter
        (fun o ->
          if o < 0 || o >= num_objects then
            invalid_arg "Stream.create: object out of range")
        t.objects;
      queues.(t.node) <- t :: queues.(t.node))
    txns;
  Array.iteri
    (fun v q ->
      let q = List.rev q in
      let rec check_sorted = function
        | a :: (b :: _ as rest) ->
          if b.arrival < a.arrival then
            invalid_arg "Stream.create: arrivals not sorted per node";
          check_sorted rest
        | _ -> ()
      in
      check_sorted q;
      queues.(v) <- q)
    queues;
  { n; num_objects; queues }

let n t = t.n
let num_objects t = t.num_objects
let queue_at t v = t.queues.(v)

let txns t =
  Array.to_list t.queues |> List.concat
  |> List.sort (fun a b ->
         match compare a.arrival b.arrival with
         | 0 -> compare a.node b.node
         | c -> c)

let total t = Array.fold_left (fun acc q -> acc + List.length q) 0 t.queues

let uniform ~rng ~n ~num_objects ~k ~txns_per_node ~mean_gap =
  if k < 1 || k > num_objects then invalid_arg "Stream.uniform: bad k";
  if txns_per_node < 0 then invalid_arg "Stream.uniform: negative txns_per_node";
  if mean_gap < 1 then invalid_arg "Stream.uniform: mean_gap < 1";
  let all = ref [] in
  for node = 0 to n - 1 do
    let time = ref 0 in
    for _ = 1 to txns_per_node do
      time := !time + 1 + Dtm_util.Prng.int rng (2 * mean_gap);
      let objects =
        Array.to_list (Dtm_util.Prng.sample_subset rng ~k ~n:num_objects)
      in
      all := { node; objects; arrival = !time } :: !all
    done
  done;
  create ~n ~num_objects (List.rev !all)

type source = {
  src_n : int;
  src_num_objects : int;
  src_pull : unit -> txn option;
}

let make_source ~n ~num_objects pull =
  if n < 1 then invalid_arg "Stream.make_source: n < 1";
  if num_objects < 1 then invalid_arg "Stream.make_source: num_objects < 1";
  { src_n = n; src_num_objects = num_objects; src_pull = pull }

let source_n s = s.src_n
let source_num_objects s = s.src_num_objects
let pull s = s.src_pull ()

let to_source t =
  (* Merge the per-node queues by (arrival, node) without materializing
     the global list: each queue is already arrival-sorted, so an O(n)
     head scan per pull suffices. *)
  let heads = Array.copy t.queues in
  let pull () =
    let best = ref (-1) in
    Array.iteri
      (fun v q ->
        match q with
        | [] -> ()
        | x :: _ ->
          if
            !best < 0
            ||
            let y = List.hd heads.(!best) in
            x.arrival < y.arrival
          then best := v)
      heads;
    if !best < 0 then None
    else begin
      match heads.(!best) with
      | x :: rest ->
        heads.(!best) <- rest;
        Some x
      | [] -> assert false
    end
  in
  make_source ~n:t.n ~num_objects:t.num_objects pull

let of_source ?limit src =
  let buf = ref [] in
  let count = ref 0 in
  let continue () = match limit with None -> true | Some l -> !count < l in
  let rec drain () =
    if continue () then begin
      match pull src with
      | None -> ()
      | Some txn ->
        buf := txn :: !buf;
        incr count;
        drain ()
    end
  in
  drain ();
  create ~n:src.src_n ~num_objects:src.src_num_objects (List.rev !buf)

let initial_homes ~rng t =
  let users = Array.make t.num_objects [] in
  Array.iter
    (List.iter (fun txn ->
         List.iter (fun o -> users.(o) <- txn.node :: users.(o)) txn.objects))
    t.queues;
  Array.map
    (fun l ->
      match l with
      | [] -> Dtm_util.Prng.int rng t.n
      | _ -> Dtm_util.Prng.choose_list rng l)
    users
