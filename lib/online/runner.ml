type stats = {
  makespan : int;
  completed : int;
  mean_response : float;
  p95_response : float;
  total_travel : int;
  forced_grants : int;
  preemptions : int;
}

type txn = {
  id : int;
  node : int;
  objects : int array;
  arrival : int;
  ready : int; (* step it was issued *)
  mutable done_ : bool;
}

type obj = {
  mutable pos : int;
  mutable granted : txn option;
  mutable dest : int;
  mutable transit_until : int; (* 0 = not in transit *)
}

let run ?(policy = Policy.Timestamp { preemption = false }) ?(patience = 50)
    metric stream ~homes =
  if Array.length homes <> Stream.num_objects stream then
    invalid_arg "Runner.run: homes size mismatch";
  if patience < 1 then invalid_arg "Runner.run: patience < 1";
  let rng =
    match policy with
    | Policy.Random_grant seed | Policy.Backoff { seed; _ } ->
      Dtm_util.Prng.create ~seed
    | Policy.Timestamp _ | Policy.Nearest | Policy.Window_greedy _ ->
      Dtm_util.Prng.create ~seed:0
  in
  let n = Stream.n stream in
  (* Transactions are pulled lazily: a node's next transaction record is
     allocated only when it is issued, so at most [n] records are live at
     once.  Ids stay node-major (node v's j-th transaction is
     [offsets.(v) + j]); because each node holds at most one live
     transaction, scanning nodes in order visits live transactions in
     ascending id order — the same candidate order the materialized
     executor produced. *)
  let pending = Array.init n (fun v -> ref (Stream.queue_at stream v)) in
  let offsets = Array.make n 0 in
  let total = ref 0 in
  for v = 0 to n - 1 do
    offsets.(v) <- !total;
    total := !total + List.length !(pending.(v))
  done;
  let total = !total in
  let issued = Array.make n 0 in
  let current : txn option array = Array.make n None in
  let last_commit = Array.make n (-1) in
  let objs =
    Array.map
      (fun h -> { pos = h; granted = None; dest = h; transit_until = 0 })
      homes
  in
  let completed = ref 0 in
  let travel = ref 0 and forced = ref 0 and preempted = ref 0 in
  let makespan = ref 0 in
  let responses = ref [] in
  let older a b =
    match compare a.arrival b.arrival with 0 -> compare a.id b.id | c -> c
  in
  let holds o t = match o.granted with Some g -> g.id = t.id | None -> false in
  (* Live transactions that request object [oid] but do not hold it, in
     ascending id order. *)
  let waiters o oid =
    let acc = ref [] in
    for v = n - 1 downto 0 do
      match current.(v) with
      | Some t when Array.exists (fun x -> x = oid) t.objects && not (holds o t)
        ->
        acc := t :: !acc
      | _ -> ()
    done;
    !acc
  in
  let send o ~to_ now =
    let d = Dtm_graph.Metric.dist metric o.pos to_.node in
    o.granted <- Some to_;
    o.dest <- to_.node;
    o.transit_until <- now + max 1 d;
    travel := !travel + d
  in
  let choose o candidates =
    match candidates with
    | [] -> None
    | _ -> (
      match policy with
      | Policy.Timestamp _ ->
        List.fold_left
          (fun acc c ->
            match acc with
            | None -> Some c
            | Some b -> if older c b < 0 then Some c else acc)
          None candidates
      | Policy.Nearest ->
        let dist c = Dtm_graph.Metric.dist metric o.pos c.node in
        List.fold_left
          (fun acc c ->
            match acc with
            | None -> Some c
            | Some b ->
              if dist c < dist b || (dist c = dist b && older c b < 0) then
                Some c
              else acc)
          None candidates
      | Policy.Random_grant _ | Policy.Backoff _ ->
        Some (Dtm_util.Prng.choose_list rng candidates)
      | Policy.Window_greedy { window; seed } ->
        let key c =
          let w = Policy.window_index ~window ~arrival:c.arrival in
          (w, Policy.window_priority ~seed ~window_id:w ~id:c.id)
        in
        List.fold_left
          (fun acc c ->
            match acc with
            | None -> Some c
            | Some b ->
              let kc = key c and kb = key b in
              if kc < kb || (kc = kb && older c b < 0) then Some c else acc)
          None candidates)
  in
  let t = ref 0 in
  let last_progress = ref 0 in
  let step_cap = 1_000_000 in
  while !completed < total do
    incr t;
    if !t > step_cap then failwith "Runner.run: step cap exceeded";
    let now = !t in
    (* 1. Issue: a node whose previous transaction committed before this
       step pulls its next queued transaction once the arrival step has
       passed. *)
    for v = 0 to n - 1 do
      if current.(v) = None then begin
        match !(pending.(v)) with
        | st :: rest
          when now >= st.Stream.arrival
               && (issued.(v) = 0 || last_commit.(v) < now) ->
          let r =
            {
              id = offsets.(v) + issued.(v);
              node = v;
              objects = Array.of_list st.Stream.objects;
              arrival = st.Stream.arrival;
              ready = now;
              done_ = false;
            }
          in
          pending.(v) := rest;
          issued.(v) <- issued.(v) + 1;
          current.(v) <- Some r;
          last_progress := now
        | _ -> ()
      end
    done;
    (* 2. Deliver. *)
    Array.iter
      (fun o ->
        if o.transit_until <> 0 && o.transit_until <= now then begin
          o.pos <- o.dest;
          o.transit_until <- 0;
          last_progress := now
        end)
      objs;
    (* 3. Execute. *)
    for v = 0 to n - 1 do
      match current.(v) with
      | Some txn ->
        let ready_to_commit =
          Array.for_all
            (fun oid ->
              let o = objs.(oid) in
              holds o txn && o.transit_until = 0 && o.pos = txn.node)
            txn.objects
        in
        if ready_to_commit then begin
          txn.done_ <- true;
          if now > !makespan then makespan := now;
          responses := float_of_int (now - txn.ready + 1) :: !responses;
          incr completed;
          last_commit.(v) <- now;
          current.(v) <- None;
          Array.iter (fun oid -> objs.(oid).granted <- None) txn.objects;
          last_progress := now
        end
      | None -> ()
    done;
    (* 4. Grant free objects; preempt if the policy allows. *)
    Array.iteri
      (fun oid o ->
        if o.transit_until = 0 then begin
          match o.granted with
          | None -> (
            match choose o (waiters o oid) with
            | Some c -> send o ~to_:c now
            | None -> ())
          | Some holder -> (
            match policy with
            | Policy.Timestamp { preemption = true } when not holder.done_ -> (
              let ws =
                List.filter (fun c -> older c holder < 0) (waiters o oid)
              in
              match choose o ws with
              | Some c ->
                incr preempted;
                send o ~to_:c now
              | None -> ())
            | _ -> ())
        end)
      objs;
    (* 5. Watchdog: break waits-for cycles by force-granting the oldest
       waiting transaction's objects. *)
    if now - !last_progress > patience && !completed < total then begin
      let oldest =
        Array.fold_left
          (fun acc cur ->
            match cur with
            | Some txn -> (
              match acc with
              | None -> Some txn
              | Some b -> if older txn b < 0 then Some txn else acc)
            | None -> acc)
          None current
      in
      match oldest with
      | None ->
        (* No waiting transaction: arrivals are just sparse; wait on. *)
        last_progress := now
      | Some star ->
        Array.iter
          (fun oid ->
            let o = objs.(oid) in
            if (not (holds o star)) && o.transit_until = 0 then begin
              incr forced;
              send o ~to_:star now
            end)
          star.objects;
        last_progress := now
    end
  done;
  let resp = Array.of_list !responses in
  {
    makespan = !makespan;
    completed = !completed;
    mean_response = Dtm_util.Stats.mean resp;
    p95_response = Dtm_util.Stats.percentile resp 95.0;
    total_travel = !travel;
    forced_grants = !forced;
    preemptions = !preempted;
  }
