(** Object-granting policies for the online executor — the contention
    managers of the TM literature the paper builds on (Section 1.2 cites
    the greedy manager of Guerraoui-Herlihy-Pochon and the experimental
    managers of Scherer-Scott).

    When an object is released (or revoked), the policy picks which
    waiting transaction receives it next. *)

type t =
  | Timestamp of { preemption : bool }
      (** oldest waiting transaction first (ties by node id).  With
          [preemption], an older waiter steals an object that sits,
          undelivered-to-commit, at a younger transaction — the classic
          Greedy contention manager, which needs no deadlock recovery. *)
  | Nearest
      (** the waiter closest to the object's current position (ties by
          age) — locality-seeking, but deadlock-prone without recovery. *)
  | Random_grant of int  (** uniformly random waiter, seeded. *)
  | Window_greedy of { window : int; seed : int }
      (** the window-based greedy contention manager (Sharma-Busch,
          arXiv 1002.4182): time is sliced into windows of [window]
          steps; transactions from earlier windows always win, and
          within one window each transaction carries a pseudo-random
          priority derived from [seed].  Randomized priorities break the
          adversarial chains that starve plain timestamp ordering, while
          the window floor still bounds how long anyone waits.
          Non-preemptive; relies on the executor's watchdog for deadlock
          recovery.  Requires [window >= 1]. *)
  | Backoff of { seed : int; limit : int }
      (** randomized exponential backoff (the Polite manager of
          Scherer-Scott): on conflict the requester retreats for a
          pseudo-random delay that doubles per attempt up to
          [2^limit], then claims the object outright.  In the discrete
          online engines the grant order degenerates to a seeded random
          waiter (backoff has no meaning when grants are instantaneous
          per step); the STM runtime uses the full delay schedule via
          {!backoff_delay}.  Requires [limit >= 1]. *)

val to_string : t -> string

val window_index : window:int -> arrival:int -> int
(** The window an arrival step falls into ([(arrival - 1) / window]).
    Raises [Invalid_argument] when [window < 1]. *)

val window_priority : seed:int -> window_id:int -> id:int -> int
(** Deterministic per-(transaction, window) priority: a stateless
    SplitMix64-style hash, non-negative, identical across runs and
    platforms.  Lower wins. *)

val backoff_delay : seed:int -> id:int -> attempt:int -> limit:int -> int
(** Pseudo-random backoff delay for a transaction's [attempt]-th
    conflict: uniform-ish in [1, 2^min(attempt, limit)], stateless and
    platform-independent (same SplitMix64 mixer as
    {!window_priority}).  Raises [Invalid_argument] when [limit < 1]
    or [attempt < 0]. *)
