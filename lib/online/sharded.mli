(** Sharded open-system engine: the {!Open_system} frontier engine
    partitioned across [S] shards that advance in bulk-synchronous
    rounds on a {!Dtm_util.Pool}.

    Objects are placed on shards by {!shard_of}, a stateless splitmix
    hash of the object id (the same finalizer recipe as
    [Injection.home_of], with an independent base constant).  A
    transaction anchors at the home shard of its {e first} object; that
    shard owns its lifecycle (injection, missing-count, commit,
    latency).  Remote objects are acquired through a message protocol:
    the anchor registers a {e proxy waiter} with the owner
    ([msg_request]), the owner grants and reports landings
    ([msg_delivered]), commits release remote claims ([msg_release]),
    and preemption or watchdog pressure against a remotely-held object
    runs a revocation handshake ([msg_revoke]/[msg_ack]/[msg_force]) —
    the object never moves until the holder's anchor concedes, so a
    committed transaction's objects were provably all at its node, and
    committed prefixes stay lint-clean.

    Each round executes [round_steps] global steps locally on every
    shard; messages written during round [r] are applied by their
    receiver at the start of round [r + 1], read in fixed sender order
    from per-(sender, receiver) buffers.  The barrier is the pool-map
    join, so for a given (stream, shards, round_steps) the result is
    byte-identical at any [-j N].  Every cell replays its own copy of
    the stream and assigns ids in pull order, so ids — and therefore
    timestamp order — are global and identical across shards.

    [shards = 1] delegates to {!Open_system.run} and reproduces its
    report exactly.  At every [S], [injected = committed + final_queue]
    (conservation), and the verdict uses the same
    middle-third/final-third backlog test. *)

val shard_of : shards:int -> int -> int
(** [shard_of ~shards oid] is the owning shard of object [oid], in
    [0, shards); [shard_of ~shards:1 oid = 0].  Stateless: tools and
    tests can recompute the placement.  Raises [Invalid_argument] when
    [shards < 1]. *)

val run :
  ?policy:Policy.t ->
  ?patience:int ->
  ?latency_window:int ->
  ?divergence_cap:int ->
  ?probe:(step:int -> injected:int -> committed:int -> queue:int -> unit) ->
  ?on_commit:(id:int -> node:int -> step:int -> unit) ->
  ?pool:Dtm_util.Pool.t ->
  ?round_steps:int ->
  shards:int ->
  Dtm_graph.Metric.t ->
  (unit -> Stream.source) ->
  homes:int array ->
  horizon:int ->
  Open_system.report
(** [run ~shards metric make_source ~homes ~horizon] drives the sharded
    system.  [make_source] is called once per shard (each cell replays
    the stream privately), so it must return equal sources — e.g.
    [Injection.source_factory spec].  Defaults match {!Open_system.run}
    ([patience 50], [latency_window 65536], [divergence_cap 10_000],
    non-preemptive timestamp policy), plus [pool] (the shared default
    pool) and [round_steps = 4], the message latency granularity.  Longer rounds
    amortize the barrier but stretch every cross-shard handoff by up to
    [2 round_steps] steps, which lowers the sustainable injection rate
    on contended objects — at the steady-state benchmark spec (Zipf 1.0,
    rate 1.0) rounds of 4 are stable while rounds of 8 diverge.

    [probe] fires after every merged step with cumulative global
    counters; [on_commit] fires in (step, id) order — the same order the
    unsharded engine produces.  Early exits (divergence, drain) are
    detected at the merged-step level but take effect at round
    granularity: [horizon] in the report is the last merged step.

    The metric must be safe to query from multiple domains ([Flat] and
    [Landmark] backends are; an [Oracle] closure is the caller's
    responsibility).  Raises [Invalid_argument] on non-positive
    parameters or a homes/object-count mismatch. *)
