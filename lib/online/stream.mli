(** Dynamic transaction streams (the online setting of Section 9).

    Each node issues a queue of transactions over time: a node's next
    transaction becomes ready [think] steps after its previous one
    commits, but never before its nominal arrival step.  A stream fixes
    the per-node queues and arrival offsets; the executor
    ({!Runner}) resolves actual start times. *)

type txn = {
  node : int;
  objects : int list;  (** non-empty *)
  arrival : int;  (** earliest step at which the transaction exists, >= 1 *)
}

type t

val create : n:int -> num_objects:int -> txn list -> t
(** Validates ranges and that each node's transactions have
    non-decreasing arrivals; within a node they execute in list order. *)

val n : t -> int
val num_objects : t -> int

val txns : t -> txn list
(** All transactions, globally sorted by (arrival, node). *)

val queue_at : t -> int -> txn list
(** A node's transactions in issue order. *)

val total : t -> int

val uniform :
  rng:Dtm_util.Prng.t ->
  n:int ->
  num_objects:int ->
  k:int ->
  txns_per_node:int ->
  mean_gap:int ->
  t
(** Random stream: every node issues [txns_per_node] transactions over
    uniform k-subsets; inter-arrival gaps are geometric-ish with the
    given mean (>= 1). *)

(** {2 Pull-based sources}

    A [source] yields transactions one at a time in non-decreasing
    arrival order (ties in any deterministic order), so long-horizon
    executors can consume 10^6–10^7 transactions while holding only the
    active frontier — the whole stream is never materialized. *)

type source

val make_source : n:int -> num_objects:int -> (unit -> txn option) -> source
(** [make_source ~n ~num_objects pull] wraps a generator.  The contract
    (unchecked): successive [pull]s return non-decreasing arrivals, and
    every transaction is in range for [n]/[num_objects]. *)

val source_n : source -> int
val source_num_objects : source -> int

val pull : source -> txn option
(** Next transaction, or [None] when exhausted.  Stateful. *)

val to_source : t -> source
(** The stream's transactions in (arrival, node) order, pulled one at a
    time (an O(n) per-node head scan per pull; nothing is copied). *)

val of_source : ?limit:int -> source -> t
(** Materialize (a prefix of) a source — for tests and small finite
    workloads only; defeats the purpose on long horizons. *)

val initial_homes : rng:Dtm_util.Prng.t -> t -> int array
(** Homes for the objects: a uniform requester of each (uniform node if
    unused), as in the batch workloads. *)
