(** The continual-arrival open-system engine.

    {!Runner} executes a finite closed stream: each node works through
    its own queue, one transaction at a time.  This module executes the
    {e open} system of {i Stable Scheduling in Transactional Memory}
    (arXiv 2208.07359): transactions arrive exogenously from a
    {!Stream.source} at an injection rate rho, any number may be pending
    at once, and the interesting question is not makespan but whether
    the backlog stays {e bounded} — and at which critical rate rho* a
    policy destabilizes.

    The movement model matches {!Runner}: a granted object travels
    [max 1 (dist pos node)] steps; grants are irrevocable until commit
    except under the preemptive timestamp policy; a watchdog
    force-grants the oldest live transaction's objects after [patience]
    idle steps.  Per step: inject, deliver, commit, grant, watchdog,
    sample.

    The engine holds only the active frontier — live transaction
    records, per-object waiter lists (compacted lazily), and a circular
    delivery calendar — so a 10^6–10^7-transaction run allocates O(1)
    memory per transaction and never materializes the stream
    (test/test_stability.ml enforces this with a [Gc] bound).

    Everything is deterministic: one seeded [Prng] (used only by
    [Random_grant]), deterministic tie-breaks everywhere else, commits
    processed in ascending transaction id per step. *)

type verdict = Bounded | Diverging

val verdict_to_string : verdict -> string

type report = {
  horizon : int;  (** steps actually executed (may stop early) *)
  injected : int;
  committed : int;
  final_queue : int;  (** live transactions when the run stopped *)
  peak_queue : int;
  mean_queue : float;
  latency_p50 : int;
      (** exact nearest-rank percentiles of commit latency
          (commit - arrival + 1) over the trailing window; -1 when
          nothing committed *)
  latency_p99 : int;
  latency_p999 : int;
  max_latency : int;
  total_travel : int;
  forced_grants : int;
  preemptions : int;
  verdict : verdict;
}

val run :
  ?policy:Policy.t ->
  ?patience:int ->
  ?latency_window:int ->
  ?divergence_cap:int ->
  ?probe:(step:int -> injected:int -> committed:int -> queue:int -> unit) ->
  ?on_commit:(id:int -> node:int -> step:int -> unit) ->
  Dtm_graph.Metric.t ->
  Stream.source ->
  homes:int array ->
  horizon:int ->
  report
(** [run metric src ~homes ~horizon] drives the system for [horizon]
    steps (defaults: non-preemptive timestamp policy, patience 50,
    latency window 65536, divergence cap 10_000 live transactions).

    Stops early when the backlog exceeds [divergence_cap] (verdict
    [Diverging]) or when the source is exhausted and the system has
    drained (verdict [Bounded]).  A full-horizon run is judged by
    comparing the mean backlog over the final third of the horizon
    against the middle third: bounded iff
    [mean_last <= 1.35 * mean_mid + 4.0] — a steady queue passes, steady
    growth fails.

    [probe] fires after every step with cumulative counters (the
    conservation property [injected = committed + queue] is checked
    there); [on_commit] fires per commit with the transaction's id,
    issuing node and commit step, in ascending id order within a step.

    Transaction ids are assigned in pull order, so under the timestamp
    policies age order is id order.  Raises [Invalid_argument] on a
    homes/object-count mismatch or non-positive parameters. *)

val critical_rate :
  ?iters:int -> lo:float -> hi:float -> (float -> bool) -> float * float
(** [critical_rate ~lo ~hi stable] binary-searches the critical
    injection rate: given [stable rho] (typically "run the engine at
    rate rho and check the verdict"), returns the final bracket
    [(rho_stable, rho_unstable)] after [iters] bisections (default 7; 2
    + iters probes total).  Degenerate answers: [(lo, lo)] when even
    [lo] is unstable, [(hi, hi)] when [hi] is still stable.  Requires
    [0 < lo < hi]. *)
