module Prng = Dtm_util.Prng
module Pool = Dtm_util.Pool
module Window = Dtm_util.Stats.Window

(* Stateless splitmix placement of objects onto shards, the same
   finalizer recipe as [Injection.home_of] with its own base so the two
   partitions are independent.  Every cell, test and tool can recompute
   it without sharing state. *)
let shard_of ~shards o =
  if shards < 1 then invalid_arg "Sharded.shard_of: shards < 1";
  if shards = 1 then 0
  else begin
    let z = 0x73686172 + (o * 0x9e3779b9) in
    let z = (z lxor (z lsr 30)) * 0x2545F4914F6CDD1D in
    let z = (z lxor (z lsr 27)) * 0x2545F4914F6CDD1D in
    let z = (z lxor (z lsr 31)) land max_int in
    z mod shards
  end

let anchor_of ~shards st = shard_of ~shards (List.hd st.Stream.objects)

(* ------------------------------------------------------------------ *)
(* Cross-shard messages                                               *)
(* ------------------------------------------------------------------ *)

(* Fixed-width integer records in flat per-(sender, receiver) buffers.
   A message written during round r is applied by its receiver at the
   start of round r + 1; each (sender, receiver) channel is FIFO, which
   the protocol relies on (DELIVERED before a later REVOKE for the same
   object, REQUEST before any FORCE for the same transaction). *)
let msg_request = 0 (* oid, txn id, node, arrival: register a waiter *)
let msg_delivered = 1 (* oid, txn id: your object landed at the txn *)
let msg_release = 2 (* oid, txn id: txn committed, drop its claim *)
let msg_revoke = 3 (* oid, txn id: give back the delivered object *)
let msg_ack = 4 (* oid, txn id: revocation granted, object is free *)
let msg_force = 5 (* oid, txn id: watchdog demands a grant to txn *)

type buf = { mutable a : int array; mutable len : int }

let buf_make () = { a = Array.make 64 0; len = 0 }

let buf_push b x =
  if b.len = Array.length b.a then begin
    let na = Array.make (2 * b.len) 0 in
    Array.blit b.a 0 na 0 b.len;
    b.a <- na
  end;
  b.a.(b.len) <- x;
  b.len <- b.len + 1

(* ------------------------------------------------------------------ *)
(* Cell state: one frontier-only sub-engine per shard                  *)
(* ------------------------------------------------------------------ *)

(* The waiter record covers both roles: a transaction anchored at this
   cell (full object set, authoritative [missing] count) and a proxy for
   a remote transaction waiting on one object owned here ([objects] is
   that single object, [anchor] names the shard that owns the
   lifecycle). *)
type txn = {
  id : int; (* global pull-order id, identical on every cell *)
  node : int;
  arrival : int;
  anchor : int;
  objects : int array;
  wslots : int array;
  mutable missing : int;
  mutable live : bool;
}

let dummy =
  {
    id = -1;
    node = 0;
    arrival = 0;
    anchor = -1;
    objects = [||];
    wslots = [||];
    missing = 0;
    live = false;
  }

type obj = {
  mutable pos : int;
  mutable holder : txn;
  mutable dest : int;
  mutable transit_until : int; (* 0 = landed *)
  mutable whead : int;
  mutable wtail : int;
  mutable wcount : int;
  mutable dirty : bool;
  (* A REVOKE for the current holder is in flight: the object must not
     move or be re-stolen until the holder's anchor answers (ACK) or
     commits (RELEASE) — that handshake is what keeps committed prefixes
     physically consistent under cross-shard preemption.  [revoke_for]
     is the waiter the revocation was issued for: the ACK grants to it
     directly, as the unsharded engine's force does, rather than letting
     the policy's free-object choice (e.g. Nearest) hand the object
     straight back to the revokee. *)
  mutable revoking : bool;
  mutable revoke_for : txn;
}

let older a b =
  match compare a.arrival b.arrival with 0 -> compare a.id b.id | c -> c

let isort_int (a : int array) n =
  for i = 1 to n - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && a.(!j) > x do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

let isort_txn (a : txn array) n =
  for i = 1 to n - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && a.(!j).id > x.id do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

type cell = {
  me : int;
  shards : int;
  metric : Dtm_graph.Metric.t;
  policy : Policy.t;
  patience : int;
  rng : Prng.t;
  owner : int array; (* oid -> owning shard, shared read-only *)
  objs : obj array; (* full object table; only owned slots are used *)
  src : Stream.source; (* this cell's private replay of the stream *)
  mutable pending : Stream.txn option;
  mutable pull_index : int; (* global ids: pull order, all cells agree *)
  (* transactions anchored here that wait on at least one remote object,
     addressable by id for DELIVERED / REVOKE application *)
  remote_txns : (int, txn) Hashtbl.t;
  (* intrusive waiter pool (see Open_system) *)
  mutable wcap : int;
  mutable w_txn : txn array;
  mutable w_prev : int array;
  mutable w_next : int array;
  mutable w_free : int;
  mutable w_used : int;
  (* circular delivery calendar *)
  mutable bsize : int;
  mutable slot_head : int array;
  mutable ccap : int;
  mutable cal_t : int array;
  mutable cal_oid : int array;
  mutable cal_next : int array;
  mutable cal_free : int;
  mutable cal_used : int;
  (* age ring of local live transactions (watchdog order) *)
  mutable q_cap : int;
  mutable q_buf : txn array;
  mutable q_head : int;
  mutable q_len : int;
  (* per-step scratch *)
  mutable dirty_buf : int array;
  mutable dirty_n : int;
  mutable commit_buf : txn array;
  mutable commit_n : int;
  (* counters *)
  mutable injected : int;
  mutable committed : int;
  mutable live_count : int;
  mutable travel : int;
  mutable forced : int;
  mutable preempted : int;
  latq : Window.t;
  mutable max_latency : int;
  mutable last_progress : int;
  mutable monotone : bool;
  mutable last_reg_arrival : int;
  (* per-round logs, read by the driver at the barrier *)
  inj_delta : int array; (* injections per step offset within the round *)
  com_delta : int array;
  commit_log : buf; (* (step, id, node) triples, only kept when needed *)
  mutable exhausted : bool;
}

let make_cell ~me ~shards ~metric ~policy ~patience ~latency_window ~owner
    ~homes ~src ~round_steps =
  let rng =
    match policy with
    | Policy.Random_grant seed | Policy.Backoff { seed; _ } ->
      Prng.create ~seed:(seed + (1000003 * me))
    | Policy.Timestamp _ | Policy.Nearest | Policy.Window_greedy _ ->
      Prng.create ~seed:me
  in
  let objs =
    Array.map
      (fun h ->
        {
          pos = h;
          holder = dummy;
          dest = h;
          transit_until = 0;
          whead = -1;
          wtail = -1;
          wcount = 0;
          dirty = false;
          revoking = false;
          revoke_for = dummy;
        })
      homes
  in
  {
    me;
    shards;
    metric;
    policy;
    patience;
    rng;
    owner;
    objs;
    src;
    pending = Stream.pull src;
    pull_index = 0;
    remote_txns = Hashtbl.create 64;
    wcap = 256;
    w_txn = Array.make 256 dummy;
    w_prev = Array.make 256 (-1);
    w_next = Array.make 256 (-1);
    w_free = -1;
    w_used = 0;
    bsize = 128;
    slot_head = Array.make 128 (-1);
    ccap = 256;
    cal_t = Array.make 256 0;
    cal_oid = Array.make 256 0;
    cal_next = Array.make 256 (-1);
    cal_free = -1;
    cal_used = 0;
    q_cap = 1024;
    q_buf = Array.make 1024 dummy;
    q_head = 0;
    q_len = 0;
    dirty_buf = Array.make 64 0;
    dirty_n = 0;
    commit_buf = Array.make 64 dummy;
    commit_n = 0;
    injected = 0;
    committed = 0;
    live_count = 0;
    travel = 0;
    forced = 0;
    preempted = 0;
    latq = Window.create latency_window;
    max_latency = 0;
    last_progress = 0;
    monotone = true;
    last_reg_arrival = min_int;
    inj_delta = Array.make round_steps 0;
    com_delta = Array.make round_steps 0;
    commit_log = buf_make ();
    exhausted = false;
  }

(* ---- waiter pool ------------------------------------------------- *)

let walloc c t =
  let e =
    if c.w_free >= 0 then begin
      let e = c.w_free in
      c.w_free <- c.w_next.(e);
      e
    end
    else begin
      if c.w_used = c.wcap then begin
        let cap = 2 * c.wcap in
        let nt = Array.make cap dummy in
        let np = Array.make cap (-1) in
        let nn = Array.make cap (-1) in
        Array.blit c.w_txn 0 nt 0 c.wcap;
        Array.blit c.w_prev 0 np 0 c.wcap;
        Array.blit c.w_next 0 nn 0 c.wcap;
        c.w_txn <- nt;
        c.w_prev <- np;
        c.w_next <- nn;
        c.wcap <- cap
      end;
      let e = c.w_used in
      c.w_used <- c.w_used + 1;
      e
    end
  in
  c.w_txn.(e) <- t;
  e

let wlink c o e =
  c.w_prev.(e) <- -1;
  c.w_next.(e) <- o.whead;
  if o.whead >= 0 then c.w_prev.(o.whead) <- e else o.wtail <- e;
  o.whead <- e;
  o.wcount <- o.wcount + 1

let wunlink c o e =
  let p = c.w_prev.(e) and nx = c.w_next.(e) in
  if p >= 0 then c.w_next.(p) <- nx else o.whead <- nx;
  if nx >= 0 then c.w_prev.(nx) <- p else o.wtail <- p;
  o.wcount <- o.wcount - 1;
  c.w_txn.(e) <- dummy;
  c.w_next.(e) <- c.w_free;
  c.w_free <- e

(* A force grant must never bypass an older waiter: in the unsharded
   engine the watchdog serves the {e globally} oldest transaction, which
   by construction is the oldest waiter on every object it touches.  A
   shard's watchdog only knows its {e local} oldest, so without this
   check two shards force-grant and preempt the same object back and
   forth forever (each serving its own elder).  Dropping a force when an
   older waiter exists restores the global rule: the globally oldest
   transaction's forces always pass, nothing can steal from it, and it
   commits. *)
let has_older_waiter c o star =
  let e = ref o.whead in
  let found = ref false in
  while !e >= 0 && not !found do
    let t = c.w_txn.(!e) in
    if t != star && older t star < 0 then found := true else e := c.w_next.(!e)
  done;
  !found

(* Find the waiter-pool entry of [txnid] in [o]'s list (short walks). *)
let wfind c o txnid =
  let e = ref o.whead in
  let found = ref (-1) in
  while !e >= 0 && !found < 0 do
    if c.w_txn.(!e).id = txnid then found := !e else e := c.w_next.(!e)
  done;
  !found

(* ---- delivery calendar ------------------------------------------- *)

let calloc c =
  if c.cal_free >= 0 then begin
    let e = c.cal_free in
    c.cal_free <- c.cal_next.(e);
    e
  end
  else begin
    if c.cal_used = c.ccap then begin
      let cap = 2 * c.ccap in
      let nt = Array.make cap 0 in
      let no = Array.make cap 0 in
      let nn = Array.make cap (-1) in
      Array.blit c.cal_t 0 nt 0 c.ccap;
      Array.blit c.cal_oid 0 no 0 c.ccap;
      Array.blit c.cal_next 0 nn 0 c.ccap;
      c.cal_t <- nt;
      c.cal_oid <- no;
      c.cal_next <- nn;
      c.ccap <- cap
    end;
    let e = c.cal_used in
    c.cal_used <- c.cal_used + 1;
    e
  end

let grow_buckets c needed =
  let size = ref c.bsize in
  while !size < needed do
    size := !size * 2
  done;
  let nb = Array.make !size (-1) in
  Array.iter
    (fun head ->
      let e = ref head in
      while !e >= 0 do
        let nx = c.cal_next.(!e) in
        let slot = c.cal_t.(!e) mod !size in
        c.cal_next.(!e) <- nb.(slot);
        nb.(slot) <- !e;
        e := nx
      done)
    c.slot_head;
  c.bsize <- !size;
  c.slot_head <- nb

let schedule_delivery c ~now t oid =
  if t - now + 1 >= c.bsize then grow_buckets c (t - now + 2);
  let e = calloc c in
  c.cal_t.(e) <- t;
  c.cal_oid.(e) <- oid;
  let slot = t mod c.bsize in
  c.cal_next.(e) <- c.slot_head.(slot);
  c.slot_head.(slot) <- e

(* ---- age ring ----------------------------------------------------- *)

let q_push c t =
  if c.q_len = c.q_cap then begin
    let cap = 2 * c.q_cap in
    let nb = Array.make cap dummy in
    for i = 0 to c.q_len - 1 do
      nb.(i) <- c.q_buf.((c.q_head + i) mod c.q_cap)
    done;
    c.q_buf <- nb;
    c.q_cap <- cap;
    c.q_head <- 0
  end;
  c.q_buf.((c.q_head + c.q_len) mod c.q_cap) <- t;
  c.q_len <- c.q_len + 1

let q_peek c = c.q_buf.(c.q_head)

let q_drop c =
  c.q_buf.(c.q_head) <- dummy;
  c.q_head <- (c.q_head + 1) mod c.q_cap;
  c.q_len <- c.q_len - 1

(* ---- step scratch ------------------------------------------------- *)

let mark_dirty c oid =
  let o = c.objs.(oid) in
  if not o.dirty then begin
    o.dirty <- true;
    if c.dirty_n = Array.length c.dirty_buf then begin
      let nb = Array.make (2 * c.dirty_n) 0 in
      Array.blit c.dirty_buf 0 nb 0 c.dirty_n;
      c.dirty_buf <- nb
    end;
    c.dirty_buf.(c.dirty_n) <- oid;
    c.dirty_n <- c.dirty_n + 1
  end

let commit_push c t =
  if c.commit_n = Array.length c.commit_buf then begin
    let nb = Array.make (2 * c.commit_n) dummy in
    Array.blit c.commit_buf 0 nb 0 c.commit_n;
    c.commit_buf <- nb
  end;
  c.commit_buf.(c.commit_n) <- t;
  c.commit_n <- c.commit_n + 1

let send c o oid ~to_ now =
  let d = Dtm_graph.Metric.dist c.metric o.pos to_.node in
  o.holder <- to_;
  o.dest <- to_.node;
  let t = now + max 1 d in
  o.transit_until <- t;
  c.travel <- c.travel + d;
  schedule_delivery c ~now t oid

(* ---- policy choice (same candidate order as Open_system) ---------- *)

let choose c o =
  let head = o.whead in
  if head < 0 then dummy
  else begin
    match c.policy with
    | Policy.Timestamp _ when c.monotone -> c.w_txn.(o.wtail)
    | Policy.Timestamp _ ->
      let best = ref c.w_txn.(head) in
      let e = ref c.w_next.(head) in
      while !e >= 0 do
        let cand = c.w_txn.(!e) in
        if older cand !best < 0 then best := cand;
        e := c.w_next.(!e)
      done;
      !best
    | Policy.Nearest ->
      let best = ref c.w_txn.(head) in
      let best_d = ref (Dtm_graph.Metric.dist c.metric o.pos !best.node) in
      let e = ref c.w_next.(head) in
      while !e >= 0 do
        let cand = c.w_txn.(!e) in
        let d = Dtm_graph.Metric.dist c.metric o.pos cand.node in
        if d < !best_d || (d = !best_d && older cand !best < 0) then begin
          best := cand;
          best_d := d
        end;
        e := c.w_next.(!e)
      done;
      !best
    | Policy.Random_grant _ | Policy.Backoff _ ->
      let idx = Prng.int c.rng o.wcount in
      let e = ref head in
      for _ = 1 to idx do
        e := c.w_next.(!e)
      done;
      c.w_txn.(!e)
    | Policy.Window_greedy { window; seed } ->
      let key cand =
        let w = Policy.window_index ~window ~arrival:cand.arrival in
        (w, Policy.window_priority ~seed ~window_id:w ~id:cand.id)
      in
      let best = ref c.w_txn.(head) in
      let best_k = ref (key !best) in
      let e = ref c.w_next.(head) in
      while !e >= 0 do
        let cand = c.w_txn.(!e) in
        let kc = key cand in
        if kc < !best_k || (kc = !best_k && older cand !best < 0) then begin
          best := cand;
          best_k := kc
        end;
        e := c.w_next.(!e)
      done;
      !best
  end

let choose_older_than c holder o =
  if c.monotone then begin
    if o.wtail < 0 then dummy
    else begin
      let cand = c.w_txn.(o.wtail) in
      if cand != holder && older cand holder < 0 then cand else dummy
    end
  end
  else begin
    let best = ref dummy in
    let e = ref o.whead in
    while !e >= 0 do
      let cand = c.w_txn.(!e) in
      if
        cand != holder && older cand holder < 0
        && (!best == dummy || older cand !best < 0)
      then best := cand;
      e := c.w_next.(!e)
    done;
    !best
  end

(* ------------------------------------------------------------------ *)
(* Round execution                                                    *)
(* ------------------------------------------------------------------ *)

(* [outbox.(set).(s).(d)] is the channel s -> d for rounds of parity
   [set]: written by cell s during round r (set = r land 1), read and
   reset by cell d during round r + 1.  One writer and one reader per
   buffer per round, which is exactly what [Pool]'s barrier publishes. *)
type net = buf array array array

let post (net : net) ~set ~src ~dst tag a b =
  let bf = net.(set).(src).(dst) in
  buf_push bf tag;
  buf_push bf a;
  buf_push bf b

let post4 (net : net) ~set ~src ~dst tag a b cc d =
  let bf = net.(set).(src).(dst) in
  buf_push bf tag;
  buf_push bf a;
  buf_push bf b;
  buf_push bf cc;
  buf_push bf d

(* Deliver a landed object to its holder (shared by the calendar walk
   and nothing else — proxies turn into DELIVERED messages). *)
let deliver c (net : net) ~set oid =
  let o = c.objs.(oid) in
  o.pos <- o.dest;
  o.transit_until <- 0;
  let h = o.holder in
  if h != dummy && h.live && o.pos = h.node then begin
    if h.anchor = c.me then begin
      h.missing <- h.missing - 1;
      if h.missing = 0 then commit_push c h
    end
    else post net ~set ~src:c.me ~dst:h.anchor msg_delivered oid h.id
  end;
  mark_dirty c oid

let register_waiter c t oid =
  if t.arrival < c.last_reg_arrival then c.monotone <- false
  else c.last_reg_arrival <- t.arrival;
  let e = walloc c t in
  wlink c c.objs.(oid) e;
  mark_dirty c oid;
  e

let apply_inbox c (net : net) ~round ~now =
  let rset = (round + 1) land 1 and wset = round land 1 in
  for src = 0 to c.shards - 1 do
    let bf = net.(rset).(src).(c.me) in
    let i = ref 0 in
    while !i < bf.len do
      let tag = bf.a.(!i) in
      if tag = msg_request then begin
        let oid = bf.a.(!i + 1)
        and id = bf.a.(!i + 2)
        and node = bf.a.(!i + 3)
        and arrival = bf.a.(!i + 4) in
        let t =
          {
            id;
            node;
            arrival;
            anchor = src;
            objects = [| oid |];
            wslots = [| -1 |];
            missing = 0;
            live = true;
          }
        in
        t.wslots.(0) <- register_waiter c t oid;
        i := !i + 5
      end
      else begin
        let oid = bf.a.(!i + 1) and id = bf.a.(!i + 2) in
        i := !i + 3;
        if tag = msg_delivered then begin
          match Hashtbl.find_opt c.remote_txns id with
          | Some t when t.live ->
            t.missing <- t.missing - 1;
            if t.missing = 0 then commit_push c t
          | _ -> ()
        end
        else if tag = msg_release then begin
          let o = c.objs.(oid) in
          let e = wfind c o id in
          if e >= 0 then wunlink c o e;
          if o.holder != dummy && o.holder.id = id then begin
            o.holder.live <- false;
            o.holder <- dummy;
            o.revoking <- false;
            o.revoke_for <- dummy;
            mark_dirty c oid
          end
        end
        else if tag = msg_revoke then begin
          (* The owner wants the object back: concede before it moves,
             so this cell never commits a transaction whose object has
             already left its node. *)
          match Hashtbl.find_opt c.remote_txns id with
          | Some t when t.live ->
            t.missing <- t.missing + 1;
            post net ~set:wset ~src:c.me ~dst:src msg_ack oid id
          | _ -> () (* committed: the RELEASE is already in flight *)
        end
        else if tag = msg_ack then begin
          let o = c.objs.(oid) in
          if o.revoking && o.holder != dummy && o.holder.id = id then begin
            o.holder <- dummy;
            o.revoking <- false;
            let star = o.revoke_for in
            o.revoke_for <- dummy;
            (* Live waiters stay linked until commit or release, so a
               live [star] still wants the object: grant it directly. *)
            if star != dummy && star.live then send c o oid ~to_:star now
            else mark_dirty c oid
          end
        end
        else begin
          (* msg_force: a remote watchdog demands this object for [id].
             Grant immediately when free, steal when held locally, start
             a revocation when held by another shard's transaction — but
             only from a {e younger} holder.  Each cell's watchdog serves
             its local oldest, so without the age guard two shards could
             revoke each other's elders forever; with it, the globally
             oldest transaction never loses a delivered object and the
             system stays livelock-free, as in the unsharded engine. *)
          let o = c.objs.(oid) in
          let e = wfind c o id in
          if e >= 0 && o.transit_until = 0 && not o.revoking then begin
            let star = c.w_txn.(e) in
            if o.holder == star || has_older_waiter c o star then ()
            else if o.holder == dummy then begin
              c.forced <- c.forced + 1;
              send c o oid ~to_:star now
            end
            else if older star o.holder < 0 then begin
              if o.holder.anchor = c.me then begin
                o.holder.missing <- o.holder.missing + 1;
                c.forced <- c.forced + 1;
                send c o oid ~to_:star now
              end
              else begin
                o.revoking <- true;
                o.revoke_for <- star;
                c.forced <- c.forced + 1;
                post net ~set:wset ~src:c.me ~dst:o.holder.anchor msg_revoke
                  oid o.holder.id
              end
            end
          end
        end
      end
    done;
    bf.len <- 0
  done

let run_step c (net : net) ~set ~first now =
  (* 1. Inject: pull the full stream, keep transactions anchored here,
     assign the shared pull-order id either way. *)
  let rec inject () =
    match c.pending with
    | Some st when st.Stream.arrival <= now ->
      let gid = c.pull_index in
      c.pull_index <- gid + 1;
      if anchor_of ~shards:c.shards st = c.me then begin
        let k = List.length st.Stream.objects in
        let t =
          {
            id = gid;
            node = st.Stream.node;
            arrival = st.Stream.arrival;
            anchor = c.me;
            objects = Array.of_list st.Stream.objects;
            wslots = Array.make k (-1);
            missing = k;
            live = true;
          }
        in
        c.injected <- c.injected + 1;
        c.live_count <- c.live_count + 1;
        c.inj_delta.(now - first) <- c.inj_delta.(now - first) + 1;
        q_push c t;
        let remote = ref false in
        for i = 0 to k - 1 do
          let oid = t.objects.(i) in
          if c.owner.(oid) = c.me then t.wslots.(i) <- register_waiter c t oid
          else begin
            remote := true;
            post4 net ~set ~src:c.me ~dst:c.owner.(oid) msg_request oid gid
              t.node t.arrival
          end
        done;
        if !remote then Hashtbl.replace c.remote_txns gid t
      end;
      c.pending <- Stream.pull c.src;
      inject ()
    | _ -> ()
  in
  inject ();
  (* 2. Deliver this step's calendar bucket. *)
  let slot = now mod c.bsize in
  let head = c.slot_head.(slot) in
  if head >= 0 then begin
    c.slot_head.(slot) <- -1;
    let e = ref head in
    while !e >= 0 do
      let nx = c.cal_next.(!e) in
      if c.cal_t.(!e) = now then deliver c net ~set c.cal_oid.(!e);
      c.cal_next.(!e) <- c.cal_free;
      c.cal_free <- !e;
      e := nx
    done;
    c.last_progress <- now
  end;
  (* 3. Commit (ascending id).  [missing] can have bounced back above
     zero since the push (a revocation applied at the round start), so
     re-check; a skipped entry is re-pushed when it next reaches zero. *)
  if c.commit_n > 0 then begin
    let n = c.commit_n in
    c.commit_n <- 0;
    let cb = c.commit_buf in
    isort_txn cb n;
    for i = 0 to n - 1 do
      let t = cb.(i) in
      cb.(i) <- dummy;
      if t.live && t.missing = 0 then begin
        t.live <- false;
        c.live_count <- c.live_count - 1;
        c.committed <- c.committed + 1;
        c.com_delta.(now - first) <- c.com_delta.(now - first) + 1;
        let latency = now - t.arrival + 1 in
        Window.add c.latq latency;
        if latency > c.max_latency then c.max_latency <- latency;
        buf_push c.commit_log now;
        buf_push c.commit_log t.id;
        buf_push c.commit_log t.node;
        for j = 0 to Array.length t.objects - 1 do
          let oid = t.objects.(j) in
          if c.owner.(oid) = c.me then begin
            let o = c.objs.(oid) in
            wunlink c o t.wslots.(j);
            if o.holder == t then begin
              o.holder <- dummy;
              o.revoking <- false;
              mark_dirty c oid
            end
          end
          else post net ~set ~src:c.me ~dst:c.owner.(oid) msg_release oid t.id
        done;
        Hashtbl.remove c.remote_txns t.id;
        c.last_progress <- now
      end
    done
  end;
  (* 4. Grant dirty owned objects (ascending object id). *)
  if c.dirty_n > 0 then begin
    let n = c.dirty_n in
    c.dirty_n <- 0;
    let db = c.dirty_buf in
    isort_int db n;
    for i = 0 to n - 1 do
      let oid = db.(i) in
      let o = c.objs.(oid) in
      o.dirty <- false;
      if o.transit_until = 0 && not o.revoking then begin
        if o.holder == dummy then begin
          let cand = choose c o in
          if cand != dummy then send c o oid ~to_:cand now
        end
        else begin
          match c.policy with
          | Policy.Timestamp { preemption = true } ->
            let holder = o.holder in
            let cand = choose_older_than c holder o in
            if cand != dummy then begin
              if holder.anchor = c.me then begin
                holder.missing <- holder.missing + 1;
                c.preempted <- c.preempted + 1;
                send c o oid ~to_:cand now
              end
              else begin
                (* Cross-shard steal: handshake first, grant on ACK. *)
                o.revoking <- true;
                o.revoke_for <- cand;
                c.preempted <- c.preempted + 1;
                post net ~set ~src:c.me ~dst:holder.anchor msg_revoke oid
                  holder.id
              end
            end
          | _ -> ()
        end
      end
    done
  end;
  (* 5. Drain dead ring heads eagerly (frontier-only retention). *)
  while c.q_len > 0 && not (q_peek c).live do
    q_drop c
  done;
  (* 6. Watchdog for the oldest local live transaction. *)
  if now - c.last_progress > c.patience then begin
    while c.q_len > 0 && not (q_peek c).live do
      q_drop c
    done;
    if c.q_len = 0 then c.last_progress <- now
    else begin
      let star = q_peek c in
      for i = 0 to Array.length star.objects - 1 do
        let oid = star.objects.(i) in
        if c.owner.(oid) = c.me then begin
          let o = c.objs.(oid) in
          if
            o.transit_until = 0 && o.holder != star && (not o.revoking)
            && not (has_older_waiter c o star)
          then begin
            if o.holder == dummy then begin
              c.forced <- c.forced + 1;
              send c o oid ~to_:star now
            end
            else if older star o.holder < 0 then begin
              (* Same younger-holder-only rule as msg_force: the holder
                 may be a proxy for a remote transaction older than our
                 local star, and stealing from elders can livelock. *)
              if o.holder.anchor = c.me then begin
                o.holder.missing <- o.holder.missing + 1;
                c.forced <- c.forced + 1;
                send c o oid ~to_:star now
              end
              else begin
                o.revoking <- true;
                o.revoke_for <- star;
                c.forced <- c.forced + 1;
                post net ~set ~src:c.me ~dst:o.holder.anchor msg_revoke oid
                  o.holder.id
              end
            end
          end
        end
        else
          post net ~set ~src:c.me ~dst:c.owner.(oid) msg_force oid star.id
      done;
      c.last_progress <- now
    end
  end

let run_round c (net : net) ~round ~round_steps ~horizon =
  let first = (round * round_steps) + 1 in
  let last = min (first + round_steps - 1) horizon in
  Array.fill c.inj_delta 0 round_steps 0;
  Array.fill c.com_delta 0 round_steps 0;
  c.commit_log.len <- 0;
  let set = round land 1 in
  apply_inbox c net ~round ~now:first;
  for now = first to last do
    run_step c net ~set ~first now
  done;
  c.exhausted <- c.pending = None

(* ------------------------------------------------------------------ *)
(* The driver                                                          *)
(* ------------------------------------------------------------------ *)

let run ?(policy = Policy.Timestamp { preemption = false }) ?(patience = 50)
    ?(latency_window = 65536) ?(divergence_cap = 10_000) ?probe ?on_commit
    ?pool ?(round_steps = 4) ~shards metric make_source ~homes ~horizon =
  if shards < 1 then invalid_arg "Sharded.run: shards < 1";
  if round_steps < 1 then invalid_arg "Sharded.run: round_steps < 1";
  if shards = 1 then
    (* One shard IS the open system: delegate, byte-identically. *)
    Open_system.run ~policy ~patience ~latency_window ~divergence_cap ?probe
      ?on_commit metric (make_source ()) ~homes ~horizon
  else begin
    if patience < 1 then invalid_arg "Sharded.run: patience < 1";
    if horizon < 1 then invalid_arg "Sharded.run: horizon < 1";
    if divergence_cap < 1 then invalid_arg "Sharded.run: divergence_cap < 1";
    let pool = match pool with Some p -> p | None -> Pool.default () in
    let num_objects = Array.length homes in
    let owner = Array.init num_objects (shard_of ~shards) in
    let cells =
      Array.init shards (fun me ->
        let src = make_source () in
        if Array.length homes <> Stream.source_num_objects src then
          invalid_arg "Sharded.run: homes size mismatch";
        make_cell ~me ~shards ~metric ~policy ~patience ~latency_window
          ~owner ~homes ~src ~round_steps)
    in
    let net =
      Array.init 2 (fun _ ->
        Array.init shards (fun _ -> Array.init shards (fun _ -> buf_make ())))
    in
    let idxs = List.init shards Fun.id in
    let g_inj = ref 0 and g_com = ref 0 in
    let peak_queue = ref 0 in
    let queue_sum = ref 0.0 in
    let t1 = horizon / 3 and t2 = 2 * horizon / 3 in
    let sum_mid = ref 0.0 and sum_last = ref 0.0 in
    let steps_done = ref 0 in
    let diverged = ref false in
    let finished = ref false in
    let round = ref 0 in
    (* Merge scratch for on_commit: triples gathered across cells and
       sorted by (step, id) — the same per-step ascending-id order the
       unsharded engine reports. *)
    let merge_commits () =
      match on_commit with
      | None -> ()
      | Some f ->
        let total =
          Array.fold_left (fun acc c -> acc + (c.commit_log.len / 3)) 0 cells
        in
        if total > 0 then begin
          let trip = Array.make total (0, 0, 0) in
          let j = ref 0 in
          Array.iter
            (fun c ->
              let bf = c.commit_log in
              let i = ref 0 in
              while !i < bf.len do
                trip.(!j) <- (bf.a.(!i), bf.a.(!i + 1), bf.a.(!i + 2));
                incr j;
                i := !i + 3
              done)
            cells;
          Array.sort compare trip;
          Array.iter (fun (step, id, node) -> f ~id ~node ~step) trip
        end
    in
    while not !finished do
      let r = !round in
      let first = (r * round_steps) + 1 in
      let last = min (first + round_steps - 1) horizon in
      ignore
        (Pool.map pool
           (fun i ->
             run_round cells.(i) net ~round:r ~round_steps ~horizon;
             ())
           idxs);
      (* The map join is the barrier: every cell's round is complete and
         published.  Merge the per-step deltas in step order. *)
      for s = first to last do
        let off = s - first in
        let di = ref 0 and dc = ref 0 in
        Array.iter
          (fun c ->
            di := !di + c.inj_delta.(off);
            dc := !dc + c.com_delta.(off))
          cells;
        g_inj := !g_inj + !di;
        g_com := !g_com + !dc;
        let q = !g_inj - !g_com in
        if q > !peak_queue then peak_queue := q;
        queue_sum := !queue_sum +. float_of_int q;
        if s > t2 then sum_last := !sum_last +. float_of_int q
        else if s > t1 then sum_mid := !sum_mid +. float_of_int q;
        (match probe with
        | Some f -> f ~step:s ~injected:!g_inj ~committed:!g_com ~queue:q
        | None -> ());
        steps_done := s;
        if q > divergence_cap then diverged := true
      done;
      merge_commits ();
      let all_exhausted = Array.for_all (fun c -> c.exhausted) cells in
      if !diverged then finished := true
      else if all_exhausted && !g_inj - !g_com = 0 then finished := true
      else if last >= horizon then finished := true;
      incr round
    done;
    let hsteps = !steps_done in
    let verdict =
      if !diverged then Open_system.Diverging
      else if hsteps < horizon then Open_system.Bounded
      else begin
        let mean_mid = !sum_mid /. float_of_int (max 1 (t2 - t1)) in
        let mean_last = !sum_last /. float_of_int (max 1 (horizon - t2)) in
        if mean_last <= (1.35 *. mean_mid) +. 4.0 then Open_system.Bounded
        else Open_system.Diverging
      end
    in
    let latq =
      Window.merge ~capacity:latency_window
        (Array.to_list (Array.map (fun c -> c.latq) cells))
    in
    let pct p = if Window.length latq = 0 then -1 else Window.percentile latq p in
    let sum f = Array.fold_left (fun acc c -> acc + f c) 0 cells in
    {
      Open_system.horizon = hsteps;
      injected = !g_inj;
      committed = !g_com;
      final_queue = !g_inj - !g_com;
      peak_queue = !peak_queue;
      mean_queue =
        (if hsteps = 0 then 0.0 else !queue_sum /. float_of_int hsteps);
      latency_p50 = pct 50.0;
      latency_p99 = pct 99.0;
      latency_p999 = pct 99.9;
      max_latency = Array.fold_left (fun acc c -> max acc c.max_latency) 0 cells;
      total_travel = sum (fun c -> c.travel);
      forced_grants = sum (fun c -> c.forced);
      preemptions = sum (fun c -> c.preempted);
      verdict;
    }
  end

