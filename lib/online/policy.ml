type t =
  | Timestamp of { preemption : bool }
  | Nearest
  | Random_grant of int
  | Window_greedy of { window : int; seed : int }
  | Backoff of { seed : int; limit : int }

let to_string = function
  | Timestamp { preemption = true } -> "timestamp+preemption (Greedy CM)"
  | Timestamp { preemption = false } -> "timestamp"
  | Nearest -> "nearest"
  | Random_grant _ -> "random"
  | Window_greedy _ -> "window-greedy"
  | Backoff _ -> "randomized-backoff"

let window_index ~window ~arrival =
  if window < 1 then invalid_arg "Policy.window_index: window < 1";
  (arrival - 1) / window

(* SplitMix64-style finalizer: a stateless, platform-independent mixer so
   window priorities are reproducible without threading a Prng through
   the executor.  Only the low 62 bits survive [land max_int]; that is
   plenty for a tie-break. *)
let mix64 x =
  let x = Int64.of_int x in
  let x = Int64.logxor x (Int64.shift_right_logical x 30) in
  let x = Int64.mul x 0xbf58476d1ce4e5b9L in
  let x = Int64.logxor x (Int64.shift_right_logical x 27) in
  let x = Int64.mul x 0x94d049bb133111ebL in
  let x = Int64.logxor x (Int64.shift_right_logical x 31) in
  Int64.to_int x land max_int

let window_priority ~seed ~window_id ~id =
  mix64 (seed lxor mix64 (window_id lxor mix64 id))

(* Randomized exponential backoff (the Polite manager of Scherer-Scott):
   the delay for attempt [a] is a stateless pseudo-random draw from
   [1, 2^min(a, limit)], so two contenders with equal ages still
   de-synchronize.  Stateless for the same reason as [window_priority]:
   the STM runtime consults it from many domains at once and must not
   share a Prng. *)
let backoff_delay ~seed ~id ~attempt ~limit =
  if limit < 1 then invalid_arg "Policy.backoff_delay: limit < 1";
  if attempt < 0 then invalid_arg "Policy.backoff_delay: attempt < 0";
  let cap = 1 lsl min attempt limit in
  1 + (mix64 (seed lxor mix64 ((attempt * 0x1000003) lxor mix64 id)) mod cap)
