module Prng = Dtm_util.Prng

type verdict = Bounded | Diverging

let verdict_to_string = function
  | Bounded -> "bounded"
  | Diverging -> "diverging"

type report = {
  horizon : int;
  injected : int;
  committed : int;
  final_queue : int;
  peak_queue : int;
  mean_queue : float;
  latency_p50 : int;
  latency_p99 : int;
  latency_p999 : int;
  max_latency : int;
  total_travel : int;
  forced_grants : int;
  preemptions : int;
  verdict : verdict;
}

(* The live-transaction record.  [wslots] holds, per object slot, this
   transaction's entry index in that object's intrusive waiter list, so
   a commit unlinks all of its registrations in O(k) without scanning
   anybody's list. *)
type txn = {
  id : int;
  node : int;
  objects : int array;
  arrival : int;
  mutable missing : int; (* requested objects not yet delivered to us *)
  mutable live : bool;
  wslots : int array;
}

(* [dummy] is the engine-wide sentinel: "no holder", a free waiter-pool
   slot, an empty ring-buffer cell.  It is never live, so every liveness
   test rejects it without a special case. *)
let dummy =
  {
    id = -1;
    node = 0;
    objects = [||];
    arrival = 0;
    missing = 0;
    live = false;
    wslots = [||];
  }

(* [holder == dummy] means unheld; [whead]/[wtail] are the newest and
   oldest entries of the object's waiter list in the shared waiter pool
   (-1 when empty), [wcount] its length. *)
type obj = {
  mutable pos : int;
  mutable holder : txn;
  mutable dest : int;
  mutable transit_until : int; (* 0 = landed *)
  mutable whead : int;
  mutable wtail : int;
  mutable wcount : int;
  mutable dirty : bool; (* queued for grant consideration this step *)
}

let older a b =
  match compare a.arrival b.arrival with 0 -> compare a.id b.id | c -> c

(* In-place ascending insertion sorts over array prefixes: the per-step
   commit and dirty batches are tiny (a handful of entries), so this
   beats [List.sort]'s allocation and stays deterministic. *)
let isort_int (a : int array) n =
  for i = 1 to n - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && a.(!j) > x do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

let isort_txn (a : txn array) n =
  for i = 1 to n - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && a.(!j).id > x.id do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

let run ?(policy = Policy.Timestamp { preemption = false }) ?(patience = 50)
    ?(latency_window = 65536) ?(divergence_cap = 10_000) ?probe ?on_commit
    metric src ~homes ~horizon =
  if Array.length homes <> Stream.source_num_objects src then
    invalid_arg "Open_system.run: homes size mismatch";
  if patience < 1 then invalid_arg "Open_system.run: patience < 1";
  if horizon < 1 then invalid_arg "Open_system.run: horizon < 1";
  if divergence_cap < 1 then invalid_arg "Open_system.run: divergence_cap < 1";
  let rng =
    match policy with
    | Policy.Random_grant seed | Policy.Backoff { seed; _ } -> Prng.create ~seed
    | Policy.Timestamp _ | Policy.Nearest | Policy.Window_greedy _ ->
      Prng.create ~seed:0
  in
  let objs =
    Array.map
      (fun h ->
        {
          pos = h;
          holder = dummy;
          dest = h;
          transit_until = 0;
          whead = -1;
          wtail = -1;
          wcount = 0;
          dirty = false;
        })
      homes
  in
  (* Shared waiter pool: one intrusive doubly-linked node per (txn,
     object) registration, recycled through a freelist, so waiting costs
     no allocation and a commit unlinks in O(1) per object.  Freed slots
     point back at [dummy] so dead transaction records are not retained
     through the pool. *)
  let wcap = ref 256 in
  let w_txn = ref (Array.make !wcap dummy) in
  let w_prev = ref (Array.make !wcap (-1)) in
  let w_next = ref (Array.make !wcap (-1)) in
  let w_free = ref (-1) in
  let w_used = ref 0 in
  let walloc t =
    let e =
      if !w_free >= 0 then begin
        let e = !w_free in
        w_free := (!w_next).(e);
        e
      end
      else begin
        if !w_used = !wcap then begin
          let cap = 2 * !wcap in
          let nt = Array.make cap dummy in
          let np = Array.make cap (-1) in
          let nn = Array.make cap (-1) in
          Array.blit !w_txn 0 nt 0 !wcap;
          Array.blit !w_prev 0 np 0 !wcap;
          Array.blit !w_next 0 nn 0 !wcap;
          w_txn := nt;
          w_prev := np;
          w_next := nn;
          wcap := cap
        end;
        let e = !w_used in
        incr w_used;
        e
      end
    in
    (!w_txn).(e) <- t;
    e
  in
  (* Prepend: waiter lists are newest-first, as before. *)
  let wlink o e =
    let wp = !w_prev and wn = !w_next in
    wp.(e) <- -1;
    wn.(e) <- o.whead;
    if o.whead >= 0 then wp.(o.whead) <- e else o.wtail <- e;
    o.whead <- e;
    o.wcount <- o.wcount + 1
  in
  let wunlink o e =
    let wp = !w_prev and wn = !w_next in
    let p = wp.(e) and nx = wn.(e) in
    if p >= 0 then wn.(p) <- nx else o.whead <- nx;
    if nx >= 0 then wp.(nx) <- p else o.wtail <- p;
    o.wcount <- o.wcount - 1;
    (!w_txn).(e) <- dummy;
    wn.(e) <- !w_free;
    w_free := e
  in
  (* Deliveries bucketed by step in a growable circular calendar, so a
     step never scans the object table: slot (t mod size) holds the
     objects landing at step t, and the buffer grows (rarely) past the
     longest transit delay ever scheduled.  Entries live in an int-pool
     (freelist-recycled singly-linked chains per slot) — scheduling and
     delivering allocate nothing. *)
  let bsize = ref 128 in
  let slot_head = ref (Array.make !bsize (-1)) in
  let ccap = ref 256 in
  let cal_t = ref (Array.make !ccap 0) in
  let cal_oid = ref (Array.make !ccap 0) in
  let cal_next = ref (Array.make !ccap (-1)) in
  let cal_free = ref (-1) in
  let cal_used = ref 0 in
  let calloc () =
    if !cal_free >= 0 then begin
      let e = !cal_free in
      cal_free := (!cal_next).(e);
      e
    end
    else begin
      if !cal_used = !ccap then begin
        let cap = 2 * !ccap in
        let nt = Array.make cap 0 in
        let no = Array.make cap 0 in
        let nn = Array.make cap (-1) in
        Array.blit !cal_t 0 nt 0 !ccap;
        Array.blit !cal_oid 0 no 0 !ccap;
        Array.blit !cal_next 0 nn 0 !ccap;
        cal_t := nt;
        cal_oid := no;
        cal_next := nn;
        ccap := cap
      end;
      let e = !cal_used in
      incr cal_used;
      e
    end
  in
  let grow_buckets needed =
    let size = ref !bsize in
    while !size < needed do
      size := !size * 2
    done;
    let nb = Array.make !size (-1) in
    let old = !slot_head in
    let ct = !cal_t and cn = !cal_next in
    Array.iter
      (fun head ->
        let e = ref head in
        while !e >= 0 do
          let nx = cn.(!e) in
          let slot = ct.(!e) mod !size in
          cn.(!e) <- nb.(slot);
          nb.(slot) <- !e;
          e := nx
        done)
      old;
    bsize := !size;
    slot_head := nb
  in
  let schedule_delivery ~now t oid =
    if t - now + 1 >= !bsize then grow_buckets (t - now + 2);
    let e = calloc () in
    (!cal_t).(e) <- t;
    (!cal_oid).(e) <- oid;
    let slot = t mod !bsize in
    let sh = !slot_head in
    (!cal_next).(e) <- sh.(slot);
    sh.(slot) <- e
  in
  let injected = ref 0 in
  let committed = ref 0 in
  let live = ref 0 in
  let travel = ref 0 and forced = ref 0 and preempted = ref 0 in
  let latq = Dtm_util.Stats.Window.create latency_window in
  let max_latency = ref 0 in
  let peak_queue = ref 0 in
  let queue_sum = ref 0.0 in
  (* Segment sums for the stability verdict: planned-horizon thirds. *)
  let t1 = horizon / 3 and t2 = 2 * horizon / 3 in
  let sum_mid = ref 0.0 and sum_last = ref 0.0 in
  (* Age order of the live frontier: a growable ring of records in
     injection order (committed entries are skipped and dropped as they
     reach the front). *)
  let q_cap = ref 1024 in
  let q_buf = ref (Array.make !q_cap dummy) in
  let q_head = ref 0 in
  let q_len = ref 0 in
  let q_push t =
    if !q_len = !q_cap then begin
      let cap = 2 * !q_cap in
      let nb = Array.make cap dummy in
      for i = 0 to !q_len - 1 do
        nb.(i) <- (!q_buf).((!q_head + i) mod !q_cap)
      done;
      q_buf := nb;
      q_cap := cap;
      q_head := 0
    end;
    (!q_buf).((!q_head + !q_len) mod !q_cap) <- t;
    incr q_len
  in
  let q_peek () = (!q_buf).(!q_head) in
  let q_drop () =
    (!q_buf).(!q_head) <- dummy;
    q_head := (!q_head + 1) mod !q_cap;
    decr q_len
  in
  (* Dirty-object and ready-to-commit batches live in reusable array
     prefixes, sorted in place. *)
  let dirty_buf = ref (Array.make 64 0) in
  let dirty_n = ref 0 in
  let mark_dirty oid =
    let o = objs.(oid) in
    if not o.dirty then begin
      o.dirty <- true;
      if !dirty_n = Array.length !dirty_buf then begin
        let nb = Array.make (2 * !dirty_n) 0 in
        Array.blit !dirty_buf 0 nb 0 !dirty_n;
        dirty_buf := nb
      end;
      (!dirty_buf).(!dirty_n) <- oid;
      incr dirty_n
    end
  in
  let commit_buf = ref (Array.make 64 dummy) in
  let commit_n = ref 0 in
  let commit_push t =
    if !commit_n = Array.length !commit_buf then begin
      let nb = Array.make (2 * !commit_n) dummy in
      Array.blit !commit_buf 0 nb 0 !commit_n;
      commit_buf := nb
    end;
    (!commit_buf).(!commit_n) <- t;
    incr commit_n
  in
  let send o oid ~to_ now =
    let d = Dtm_graph.Metric.dist metric o.pos to_.node in
    o.holder <- to_;
    o.dest <- to_.node;
    let t = now + max 1 d in
    o.transit_until <- t;
    travel := !travel + d;
    schedule_delivery ~now t oid
  in
  (* Sources contract non-decreasing arrivals and ids are assigned in
     pull order, so age order is id order and the oldest waiter is the
     tail of the newest-first list — the timestamp policies grant in
     O(1).  [monotone] guards that reasoning: if a source ever violates
     the contract, the flag drops (before the offender is registered)
     and the exact [older]-minimizing walk takes over. *)
  let monotone = ref true in
  let last_arrival = ref min_int in
  (* Pick the winning waiter under [policy] by walking the object's
     intrusive list.  Entries are live by construction (commits unlink
     eagerly), and the walk runs newest-first — the same candidate order
     the lazily compacted lists used to present, so the seeded
     [Random_grant] draw sequence is unchanged. *)
  let choose o =
    let wn = !w_next and wt = !w_txn in
    let head = o.whead in
    if head < 0 then dummy
    else begin
      match policy with
      | Policy.Timestamp _ when !monotone -> wt.(o.wtail)
      | Policy.Timestamp _ ->
        let best = ref wt.(head) in
        let e = ref wn.(head) in
        while !e >= 0 do
          let c = wt.(!e) in
          if older c !best < 0 then best := c;
          e := wn.(!e)
        done;
        !best
      | Policy.Nearest ->
        let best = ref wt.(head) in
        let best_d = ref (Dtm_graph.Metric.dist metric o.pos !best.node) in
        let e = ref wn.(head) in
        while !e >= 0 do
          let c = wt.(!e) in
          let d = Dtm_graph.Metric.dist metric o.pos c.node in
          if d < !best_d || (d = !best_d && older c !best < 0) then begin
            best := c;
            best_d := d
          end;
          e := wn.(!e)
        done;
        !best
      | Policy.Random_grant _ | Policy.Backoff _ ->
        let idx = Prng.int rng o.wcount in
        let e = ref head in
        for _ = 1 to idx do
          e := wn.(!e)
        done;
        wt.(!e)
      | Policy.Window_greedy { window; seed } ->
        let key c =
          let w = Policy.window_index ~window ~arrival:c.arrival in
          (w, Policy.window_priority ~seed ~window_id:w ~id:c.id)
        in
        let best = ref wt.(head) in
        let best_k = ref (key !best) in
        let e = ref wn.(head) in
        while !e >= 0 do
          let c = wt.(!e) in
          let kc = key c in
          if kc < !best_k || (kc = !best_k && older c !best < 0) then begin
            best := c;
            best_k := kc
          end;
          e := wn.(!e)
        done;
        !best
    end
  in
  (* The preemptive-timestamp steal: the oldest waiter strictly older
     than the holder (the filtered-then-minimized walk of old).  Under
     the monotone fast path the only possible winner is the tail — any
     other waiter is younger than it, and if the tail is not older than
     the holder nobody is. *)
  let choose_older_than holder o =
    if !monotone then begin
      if o.wtail < 0 then dummy
      else begin
        let c = (!w_txn).(o.wtail) in
        if c != holder && c.id < holder.id then c else dummy
      end
    end
    else begin
      let wn = !w_next and wt = !w_txn in
      let best = ref dummy in
      let e = ref o.whead in
      while !e >= 0 do
        let c = wt.(!e) in
        if
          c != holder && older c holder < 0
          && (!best == dummy || older c !best < 0)
        then best := c;
        e := wn.(!e)
      done;
      !best
    end
  in
  let deliver now oid =
    let o = objs.(oid) in
    o.pos <- o.dest;
    o.transit_until <- 0;
    let h = o.holder in
    if h != dummy && h.live && o.pos = h.node then begin
      h.missing <- h.missing - 1;
      if h.missing = 0 then commit_push h
    end;
    (* A landed object is a fresh grant/steal opportunity: waiters that
       registered while it was in flight were skipped then. *)
    mark_dirty oid;
    ignore now
  in
  let next_id = ref 0 in
  let pending = ref (Stream.pull src) in
  let last_progress = ref 0 in
  let steps_done = ref 0 in
  let diverged = ref false in
  let finished = ref false in
  let step = ref 0 in
  while (not !finished) && !step < horizon do
    incr step;
    let now = !step in
    (* 1. Inject every transaction whose arrival step has come. *)
    let rec inject () =
      match !pending with
      | Some st when st.Stream.arrival <= now ->
        if st.Stream.arrival < !last_arrival then monotone := false
        else last_arrival := st.Stream.arrival;
        let k = List.length st.Stream.objects in
        let r =
          {
            id = !next_id;
            node = st.Stream.node;
            objects = Array.of_list st.Stream.objects;
            arrival = st.Stream.arrival;
            missing = k;
            live = true;
            wslots = Array.make k (-1);
          }
        in
        incr next_id;
        incr injected;
        incr live;
        q_push r;
        for i = 0 to k - 1 do
          let oid = r.objects.(i) in
          let e = walloc r in
          wlink objs.(oid) e;
          r.wslots.(i) <- e;
          mark_dirty oid
        done;
        (* Injection is NOT progress: under continual arrivals it would
           reset the watchdog forever and a wedged grant state would
           never recover.  Only deliveries and commits count. *)
        pending := Stream.pull src;
        inject ()
      | _ -> ()
    in
    inject ();
    (* 2. Deliver this step's bucket. *)
    let slot = now mod !bsize in
    let head = (!slot_head).(slot) in
    if head >= 0 then begin
      (!slot_head).(slot) <- -1;
      let ct = !cal_t and cn = !cal_next in
      let e = ref head in
      while !e >= 0 do
        let nx = cn.(!e) in
        if ct.(!e) = now then deliver now (!cal_oid).(!e);
        cn.(!e) <- !cal_free;
        cal_free := !e;
        e := nx
      done;
      last_progress := now
    end;
    (* 3. Commit (ascending id for a deterministic latency sample order). *)
    if !commit_n > 0 then begin
      let n = !commit_n in
      commit_n := 0;
      let cb = !commit_buf in
      isort_txn cb n;
      for i = 0 to n - 1 do
        let txn = cb.(i) in
        cb.(i) <- dummy;
        txn.live <- false;
        decr live;
        incr committed;
        let latency = now - txn.arrival + 1 in
        Dtm_util.Stats.Window.add latq latency;
        if latency > !max_latency then max_latency := latency;
        (match on_commit with
        | Some f -> f ~id:txn.id ~node:txn.node ~step:now
        | None -> ());
        for j = 0 to Array.length txn.objects - 1 do
          let o = objs.(txn.objects.(j)) in
          wunlink o txn.wslots.(j);
          if o.holder == txn then begin
            o.holder <- dummy;
            mark_dirty txn.objects.(j)
          end
        done;
        last_progress := now
      done
    end;
    (* 4. Grant dirty objects (ascending object id).  Nothing in the
       grant path re-marks, so the batch prefix is stable while it is
       walked. *)
    if !dirty_n > 0 then begin
      let n = !dirty_n in
      dirty_n := 0;
      let db = !dirty_buf in
      isort_int db n;
      for i = 0 to n - 1 do
        let oid = db.(i) in
        let o = objs.(oid) in
        o.dirty <- false;
        if o.transit_until = 0 then begin
          if o.holder == dummy then begin
            let c = choose o in
            if c != dummy then send o oid ~to_:c now
          end
          else begin
            match policy with
            | Policy.Timestamp { preemption = true } ->
              let holder = o.holder in
              let c = choose_older_than holder o in
              if c != dummy then begin
                (* The object sits delivered at the holder: stealing
                   it re-opens that request. *)
                holder.missing <- holder.missing + 1;
                incr preempted;
                send o oid ~to_:c now
              end
            | _ -> ()
          end
        end
      done
    end;
    (* 5. Drain committed entries from the age ring eagerly — otherwise
       every transaction ever injected stays reachable through it and a
       10^6-transaction run retains the whole history instead of the
       frontier.  (The watchdog below also skips dead entries, but only
       when it fires.) *)
    while !q_len > 0 && not (q_peek ()).live do
      q_drop ()
    done;
    (* 6. Watchdog: force-grant the oldest live transaction's objects
       after [patience] idle steps. *)
    if now - !last_progress > patience then begin
      while !q_len > 0 && not (q_peek ()).live do
        q_drop ()
      done;
      if !q_len = 0 then last_progress := now
      else begin
        let star = q_peek () in
        for i = 0 to Array.length star.objects - 1 do
          let oid = star.objects.(i) in
          let o = objs.(oid) in
          if o.transit_until = 0 && o.holder != star then begin
            if o.holder != dummy then o.holder.missing <- o.holder.missing + 1;
            incr forced;
            send o oid ~to_:star now
          end
        done;
        last_progress := now
      end
    end;
    (* 7. Sample the queue; verdict bookkeeping; early exits. *)
    let q = !live in
    if q > !peak_queue then peak_queue := q;
    queue_sum := !queue_sum +. float_of_int q;
    if now > t2 then sum_last := !sum_last +. float_of_int q
    else if now > t1 then sum_mid := !sum_mid +. float_of_int q;
    (match probe with
    | Some f -> f ~step:now ~injected:!injected ~committed:!committed ~queue:q
    | None -> ());
    steps_done := now;
    if q > divergence_cap then begin
      diverged := true;
      finished := true
    end
    else if !pending = None && q = 0 then finished := true
  done;
  let hsteps = !steps_done in
  let verdict =
    if !diverged then Diverging
    else if hsteps < horizon then Bounded (* drained a finite source *)
    else begin
      let mean_mid = !sum_mid /. float_of_int (max 1 (t2 - t1)) in
      let mean_last = !sum_last /. float_of_int (max 1 (horizon - t2)) in
      if mean_last <= (1.35 *. mean_mid) +. 4.0 then Bounded else Diverging
    end
  in
  let pct p =
    if Dtm_util.Stats.Window.length latq = 0 then -1
    else Dtm_util.Stats.Window.percentile latq p
  in
  {
    horizon = hsteps;
    injected = !injected;
    committed = !committed;
    final_queue = !live;
    peak_queue = !peak_queue;
    mean_queue = (if hsteps = 0 then 0.0 else !queue_sum /. float_of_int hsteps);
    latency_p50 = pct 50.0;
    latency_p99 = pct 99.0;
    latency_p999 = pct 99.9;
    max_latency = !max_latency;
    total_travel = !travel;
    forced_grants = !forced;
    preemptions = !preempted;
    verdict;
  }

let critical_rate ?(iters = 7) ~lo ~hi stable =
  if not (lo > 0.0 && lo < hi) then
    invalid_arg "Open_system.critical_rate: need 0 < lo < hi";
  if iters < 1 then invalid_arg "Open_system.critical_rate: iters < 1";
  if not (stable lo) then (lo, lo)
  else if stable hi then (hi, hi)
  else begin
    let lo = ref lo and hi = ref hi in
    for _ = 1 to iters do
      let mid = 0.5 *. (!lo +. !hi) in
      if stable mid then lo := mid else hi := mid
    done;
    (!lo, !hi)
  end
