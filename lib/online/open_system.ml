module Prng = Dtm_util.Prng

type verdict = Bounded | Diverging

let verdict_to_string = function
  | Bounded -> "bounded"
  | Diverging -> "diverging"

type report = {
  horizon : int;
  injected : int;
  committed : int;
  final_queue : int;
  peak_queue : int;
  mean_queue : float;
  latency_p50 : int;
  latency_p99 : int;
  latency_p999 : int;
  max_latency : int;
  total_travel : int;
  forced_grants : int;
  preemptions : int;
  verdict : verdict;
}

type txn = {
  id : int;
  node : int;
  objects : int array;
  arrival : int;
  mutable missing : int; (* requested objects not yet delivered to us *)
  mutable live : bool;
}

type obj = {
  mutable pos : int;
  mutable holder : txn option;
  mutable dest : int;
  mutable transit_until : int; (* 0 = landed *)
  mutable waiters : txn list; (* newest first; dead entries compacted lazily *)
  mutable dirty : bool; (* queued for grant consideration this step *)
}

let older a b =
  match compare a.arrival b.arrival with 0 -> compare a.id b.id | c -> c

let run ?(policy = Policy.Timestamp { preemption = false }) ?(patience = 50)
    ?(latency_window = 65536) ?(divergence_cap = 10_000) ?probe ?on_commit
    metric src ~homes ~horizon =
  if Array.length homes <> Stream.source_num_objects src then
    invalid_arg "Open_system.run: homes size mismatch";
  if patience < 1 then invalid_arg "Open_system.run: patience < 1";
  if horizon < 1 then invalid_arg "Open_system.run: horizon < 1";
  if divergence_cap < 1 then invalid_arg "Open_system.run: divergence_cap < 1";
  let rng =
    match policy with
    | Policy.Random_grant seed | Policy.Backoff { seed; _ } -> Prng.create ~seed
    | Policy.Timestamp _ | Policy.Nearest | Policy.Window_greedy _ ->
      Prng.create ~seed:0
  in
  let objs =
    Array.map
      (fun h ->
        {
          pos = h;
          holder = None;
          dest = h;
          transit_until = 0;
          waiters = [];
          dirty = false;
        })
      homes
  in
  (* Deliveries bucketed by step in a growable circular calendar, so a
     step never scans the object table: slot (t mod size) holds the
     objects landing at step t, and the buffer grows (rarely) past the
     longest transit delay ever scheduled. *)
  let bsize = ref 128 in
  let buckets = ref (Array.make !bsize []) in
  let grow_buckets needed =
    let size = ref !bsize in
    while !size < needed do
      size := !size * 2
    done;
    let nb = Array.make !size [] in
    Array.iter
      (List.iter (fun ((t, _) as e) -> nb.(t mod !size) <- e :: nb.(t mod !size)))
      !buckets;
    bsize := !size;
    buckets := nb
  in
  let schedule_delivery ~now t oid =
    if t - now + 1 >= !bsize then grow_buckets (t - now + 2);
    let slot = t mod !bsize in
    !buckets.(slot) <- (t, oid) :: !buckets.(slot)
  in
  let injected = ref 0 in
  let committed = ref 0 in
  let live = ref 0 in
  let travel = ref 0 and forced = ref 0 and preempted = ref 0 in
  let latq = Dtm_util.Stats.Window.create latency_window in
  let max_latency = ref 0 in
  let peak_queue = ref 0 in
  let queue_sum = ref 0.0 in
  (* Segment sums for the stability verdict: planned-horizon thirds. *)
  let t1 = horizon / 3 and t2 = 2 * horizon / 3 in
  let sum_mid = ref 0.0 and sum_last = ref 0.0 in
  let live_queue : txn Queue.t = Queue.create () in
  let dirty_list = ref [] in
  let mark_dirty oid =
    let o = objs.(oid) in
    if not o.dirty then begin
      o.dirty <- true;
      dirty_list := oid :: !dirty_list
    end
  in
  let send o oid ~to_ now =
    let d = Dtm_graph.Metric.dist metric o.pos to_.node in
    o.holder <- Some to_;
    o.dest <- to_.node;
    let t = now + max 1 d in
    o.transit_until <- t;
    travel := !travel + d;
    schedule_delivery ~now t oid
  in
  let holds o t = match o.holder with Some h -> h.id = t.id | None -> false in
  let choose o candidates =
    match candidates with
    | [] -> None
    | _ -> (
      match policy with
      | Policy.Timestamp _ ->
        List.fold_left
          (fun acc c ->
            match acc with
            | None -> Some c
            | Some b -> if older c b < 0 then Some c else acc)
          None candidates
      | Policy.Nearest ->
        let dist c = Dtm_graph.Metric.dist metric o.pos c.node in
        List.fold_left
          (fun acc c ->
            match acc with
            | None -> Some c
            | Some b ->
              if dist c < dist b || (dist c = dist b && older c b < 0) then
                Some c
              else acc)
          None candidates
      | Policy.Random_grant _ | Policy.Backoff _ ->
        Some (Prng.choose_list rng candidates)
      | Policy.Window_greedy { window; seed } ->
        let key c =
          let w = Policy.window_index ~window ~arrival:c.arrival in
          (w, Policy.window_priority ~seed ~window_id:w ~id:c.id)
        in
        List.fold_left
          (fun acc c ->
            match acc with
            | None -> Some c
            | Some b ->
              let kc = key c and kb = key b in
              if kc < kb || (kc = kb && older c b < 0) then Some c else acc)
          None candidates)
  in
  let to_commit = ref [] in
  let deliver now oid =
    let o = objs.(oid) in
    o.pos <- o.dest;
    o.transit_until <- 0;
    (match o.holder with
    | Some h when h.live && o.pos = h.node ->
      h.missing <- h.missing - 1;
      if h.missing = 0 then to_commit := h :: !to_commit
    | _ -> ());
    (* A landed object is a fresh grant/steal opportunity: waiters that
       registered while it was in flight were skipped then. *)
    mark_dirty oid;
    ignore now
  in
  let next_id = ref 0 in
  let pending = ref (Stream.pull src) in
  let last_progress = ref 0 in
  let steps_done = ref 0 in
  let diverged = ref false in
  let finished = ref false in
  let step = ref 0 in
  while (not !finished) && !step < horizon do
    incr step;
    let now = !step in
    (* 1. Inject every transaction whose arrival step has come. *)
    let rec inject () =
      match !pending with
      | Some st when st.Stream.arrival <= now ->
        let r =
          {
            id = !next_id;
            node = st.Stream.node;
            objects = Array.of_list st.Stream.objects;
            arrival = st.Stream.arrival;
            missing = List.length st.Stream.objects;
            live = true;
          }
        in
        incr next_id;
        incr injected;
        incr live;
        Queue.push r live_queue;
        Array.iter
          (fun oid ->
            objs.(oid).waiters <- r :: objs.(oid).waiters;
            mark_dirty oid)
          r.objects;
        (* Injection is NOT progress: under continual arrivals it would
           reset the watchdog forever and a wedged grant state would
           never recover.  Only deliveries and commits count. *)
        pending := Stream.pull src;
        inject ()
      | _ -> ()
    in
    inject ();
    (* 2. Deliver this step's bucket. *)
    let slot = now mod !bsize in
    (match !buckets.(slot) with
    | [] -> ()
    | entries ->
      !buckets.(slot) <- [];
      List.iter (fun (t, oid) -> if t = now then deliver now oid) entries;
      last_progress := now);
    (* 3. Commit (ascending id for a deterministic latency sample order). *)
    (match !to_commit with
    | [] -> ()
    | ready ->
      to_commit := [];
      let ready = List.sort (fun a b -> compare a.id b.id) ready in
      List.iter
        (fun txn ->
          txn.live <- false;
          decr live;
          incr committed;
          let latency = now - txn.arrival + 1 in
          Dtm_util.Stats.Window.add latq latency;
          if latency > !max_latency then max_latency := latency;
          (match on_commit with
          | Some f -> f ~id:txn.id ~node:txn.node ~step:now
          | None -> ());
          Array.iter
            (fun oid ->
              let o = objs.(oid) in
              if holds o txn then begin
                o.holder <- None;
                mark_dirty oid
              end)
            txn.objects;
          last_progress := now)
        ready);
    (* 4. Grant dirty objects (ascending object id). *)
    (match !dirty_list with
    | [] -> ()
    | ds ->
      dirty_list := [];
      let ds = List.sort Int.compare ds in
      List.iter
        (fun oid ->
          let o = objs.(oid) in
          o.dirty <- false;
          if o.transit_until = 0 then begin
            o.waiters <- List.filter (fun t -> t.live) o.waiters;
            match o.holder with
            | None -> (
              match choose o o.waiters with
              | Some c -> send o oid ~to_:c now
              | None -> ())
            | Some holder -> (
              match policy with
              | Policy.Timestamp { preemption = true } -> (
                let ws =
                  List.filter
                    (fun c -> c.id <> holder.id && older c holder < 0)
                    o.waiters
                in
                match choose o ws with
                | Some c ->
                  (* The object sits delivered at the holder: stealing
                     it re-opens that request. *)
                  holder.missing <- holder.missing + 1;
                  incr preempted;
                  send o oid ~to_:c now
                | None -> ())
              | _ -> ())
          end)
        ds);
    (* 5. Drain committed entries from the age queue eagerly — otherwise
       every transaction ever injected stays reachable through it and a
       10^6-transaction run retains the whole history instead of the
       frontier.  (The watchdog below also skips dead entries, but only
       when it fires.) *)
    while
      (not (Queue.is_empty live_queue)) && not (Queue.peek live_queue).live
    do
      ignore (Queue.pop live_queue)
    done;
    (* 6. Watchdog: force-grant the oldest live transaction's objects
       after [patience] idle steps. *)
    if now - !last_progress > patience then begin
      let rec oldest () =
        if Queue.is_empty live_queue then None
        else begin
          let f = Queue.peek live_queue in
          if f.live then Some f
          else begin
            ignore (Queue.pop live_queue);
            oldest ()
          end
        end
      in
      match oldest () with
      | None -> last_progress := now
      | Some star ->
        Array.iter
          (fun oid ->
            let o = objs.(oid) in
            if o.transit_until = 0 && not (holds o star) then begin
              (match o.holder with
              | Some h -> h.missing <- h.missing + 1
              | None -> ());
              incr forced;
              send o oid ~to_:star now
            end)
          star.objects;
        last_progress := now
    end;
    (* 7. Sample the queue; verdict bookkeeping; early exits. *)
    let q = !live in
    if q > !peak_queue then peak_queue := q;
    queue_sum := !queue_sum +. float_of_int q;
    if now > t2 then sum_last := !sum_last +. float_of_int q
    else if now > t1 then sum_mid := !sum_mid +. float_of_int q;
    (match probe with
    | Some f -> f ~step:now ~injected:!injected ~committed:!committed ~queue:q
    | None -> ());
    steps_done := now;
    if q > divergence_cap then begin
      diverged := true;
      finished := true
    end
    else if !pending = None && q = 0 then finished := true
  done;
  let hsteps = !steps_done in
  let verdict =
    if !diverged then Diverging
    else if hsteps < horizon then Bounded (* drained a finite source *)
    else begin
      let mean_mid = !sum_mid /. float_of_int (max 1 (t2 - t1)) in
      let mean_last = !sum_last /. float_of_int (max 1 (horizon - t2)) in
      if mean_last <= (1.35 *. mean_mid) +. 4.0 then Bounded else Diverging
    end
  in
  let pct p =
    if Dtm_util.Stats.Window.length latq = 0 then -1
    else Dtm_util.Stats.Window.percentile latq p
  in
  {
    horizon = hsteps;
    injected = !injected;
    committed = !committed;
    final_queue = !live;
    peak_queue = !peak_queue;
    mean_queue = (if hsteps = 0 then 0.0 else !queue_sum /. float_of_int hsteps);
    latency_p50 = pct 50.0;
    latency_p99 = pct 99.0;
    latency_p999 = pct 99.9;
    max_latency = !max_latency;
    total_travel = !travel;
    forced_grants = !forced;
    preemptions = !preempted;
    verdict;
  }

let critical_rate ?(iters = 7) ~lo ~hi stable =
  if not (lo > 0.0 && lo < hi) then
    invalid_arg "Open_system.critical_rate: need 0 < lo < hi";
  if iters < 1 then invalid_arg "Open_system.critical_rate: iters < 1";
  if not (stable lo) then (lo, lo)
  else if stable hi then (hi, hi)
  else begin
    let lo = ref lo and hi = ref hi in
    for _ = 1 to iters do
      let mid = 0.5 *. (!lo +. !hi) in
      if stable mid then lo := mid else hi := mid
    done;
    (!lo, !hi)
  end
