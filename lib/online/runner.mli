(** The online executor: continuous transaction arrival, policy-driven
    object movement (paper Section 9's first open problem, made
    executable).

    Semantics per step: (1) nodes whose previous transaction committed
    issue their next queued transaction once its arrival step has passed;
    (2) in-transit objects are delivered; (3) a waiting transaction
    commits when all its objects have been delivered to it; (4) released
    objects are granted to waiting requesters by the {!Policy} and start
    travelling (metric distance = delay).

    Grants are irrevocable until commit, so waits-for cycles can form; a
    watchdog breaks them by force-granting every object of the oldest
    waiting transaction (the abort-and-retry of real TMs, counted in
    [forced_grants]).  The preemptive timestamp policy (Greedy CM)
    instead steals objects from younger holders as it goes and needs no
    recovery.

    Transaction records are pulled from the stream lazily — a record is
    allocated when its node issues it, so at most [Stream.n] records are
    live at any moment regardless of stream length.  For continual
    arrivals at an injection rate (the open-system model), use
    {!Open_system} instead. *)

type stats = {
  makespan : int;  (** last commit step *)
  completed : int;
  mean_response : float;  (** mean of (commit - ready) + 1 per txn *)
  p95_response : float;
  total_travel : int;  (** weighted distance moved by objects *)
  forced_grants : int;  (** deadlock-recovery interventions *)
  preemptions : int;  (** objects stolen by older transactions *)
}

val run :
  ?policy:Policy.t ->
  ?patience:int ->
  Dtm_graph.Metric.t ->
  Stream.t ->
  homes:int array ->
  stats
(** [run m stream ~homes] executes the whole stream; default policy
    [Timestamp { preemption = false }], default [patience] 50 idle steps
    before deadlock recovery.  Raises [Failure] if the run exceeds an
    internal step cap (indicative of a bug, not expected). *)
