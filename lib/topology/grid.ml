let check ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Grid: rows/cols < 1"

let node ~cols ~x ~y = (y * cols) + x
let coords ~cols id = (id mod cols, id / cols)

let graph ~rows ~cols =
  check ~rows ~cols;
  let edges = ref [] in
  for y = 0 to rows - 1 do
    for x = 0 to cols - 1 do
      let u = node ~cols ~x ~y in
      if x + 1 < cols then edges := (u, node ~cols ~x:(x + 1) ~y, 1) :: !edges;
      if y + 1 < rows then edges := (u, node ~cols ~x ~y:(y + 1), 1) :: !edges
    done
  done;
  Dtm_graph.Graph.of_edges ~n:(rows * cols) !edges

let oracle ~rows ~cols =
  check ~rows ~cols;
  Dtm_graph.Metric.make ~size:(rows * cols) (fun u v ->
      let xu, yu = coords ~cols u and xv, yv = coords ~cols v in
      abs (xu - xv) + abs (yu - yv))

let metric ~rows ~cols = Dtm_graph.Metric.materialize (oracle ~rows ~cols)
