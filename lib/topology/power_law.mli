(** Power-law (Barabási–Albert) random graph: the large sparse networks
    the fog-cloud direction targets (arXiv 2511.09776), and the natural
    stress test for the landmark metric backend — hub-and-spoke
    structure with small diameter and no closed-form distances.

    Arriving nodes attach to [attach] distinct existing nodes with
    probability proportional to degree; the seed graph is a clique on
    [attach + 1] nodes, so the result is connected.  Unit edge
    weights.  Deterministic in [seed]. *)

type params = { n : int; attach : int; seed : int }

val graph : params -> Dtm_graph.Graph.t
(** Requires [n >= 2] and [1 <= attach < n]. *)

val metric : params -> Dtm_graph.Metric.t
(** {!Dtm_graph.Apsp.auto_metric} of {!graph}: APSP-backed up to the
    materialization cutoff, landmark-backed above it. *)
