(* Barabási–Albert preferential attachment.

   Each arriving node attaches to [attach] distinct existing nodes,
   picked proportionally to degree by uniform sampling from the
   endpoint list (every edge contributes both ends, so a node appears
   once per incident edge).  The seed graph is a clique on
   [attach + 1] nodes, so the graph is connected by construction and
   every node has degree >= attach.  All randomness flows through one
   [Prng], so a params value names exactly one graph. *)

type params = { n : int; attach : int; seed : int }

let validate p =
  if p.n < 2 then invalid_arg "Power_law: n < 2";
  if p.attach < 1 then invalid_arg "Power_law: attach < 1";
  if p.attach >= p.n then invalid_arg "Power_law: attach >= n"

let graph p =
  validate p;
  let m0 = p.attach + 1 in
  let rng = Dtm_util.Prng.create ~seed:p.seed in
  (* [ends] lists every edge endpoint; uniform draws from it are
     degree-proportional.  Final length is twice the edge count. *)
  let num_edges = (m0 * (m0 - 1) / 2) + ((p.n - m0) * p.attach) in
  let ends = Array.make (2 * num_edges) 0 in
  let filled = ref 0 in
  let edges = ref [] in
  let add u v =
    edges := (u, v, 1) :: !edges;
    ends.(!filled) <- u;
    ends.(!filled + 1) <- v;
    filled := !filled + 2
  in
  for u = 0 to m0 - 1 do
    for v = u + 1 to m0 - 1 do
      add u v
    done
  done;
  let chosen = Array.make p.attach (-1) in
  for v = m0 to p.n - 1 do
    (* attach distinct targets by rejection; attach is small and the
       endpoint pool grows linearly, so retries are rare. *)
    let pool = !filled in
    for i = 0 to p.attach - 1 do
      let rec draw () =
        let t = ends.(Dtm_util.Prng.int rng pool) in
        let rec dup j = j < i && (chosen.(j) = t || dup (j + 1)) in
        if dup 0 then draw () else t
      in
      chosen.(i) <- draw ()
    done;
    for i = 0 to p.attach - 1 do
      add chosen.(i) v
    done
  done;
  Dtm_graph.Graph.of_edges ~n:p.n !edges

let metric p = Dtm_graph.Apsp.auto_metric (graph p)
