type t =
  | Clique of int
  | Line of int
  | Ring of int
  | Grid of { rows : int; cols : int }
  | Torus of { rows : int; cols : int }
  | Hypercube of { dim : int }
  | Butterfly of { dim : int }
  | Cluster of Cluster.params
  | Star of Star.params
  | Tree of Tree.params
  | Hypergrid of Hypergrid.params
  | Block_grid of { s : int }
  | Block_tree of { s : int }
  | Power_law of Power_law.params
  | Custom of { name : string; graph : Dtm_graph.Graph.t }

let n = function
  | Clique n | Line n | Ring n -> n
  | Grid { rows; cols } | Torus { rows; cols } -> rows * cols
  | Hypercube { dim } -> 1 lsl dim
  | Butterfly { dim } -> (dim + 1) * (1 lsl dim)
  | Cluster p -> p.Cluster.clusters * p.Cluster.size
  | Star p -> 1 + (p.Star.rays * p.Star.ray_len)
  | Tree p -> Tree.n_of p
  | Hypergrid p -> Hypergrid.n_of p
  | Block_grid { s } | Block_tree { s } -> Blocks.n (Blocks.make ~s)
  | Power_law p -> p.Power_law.n
  | Custom { graph; _ } -> Dtm_graph.Graph.n graph

let graph = function
  | Clique n -> Clique.graph n
  | Line n -> Line.graph n
  | Ring n -> Ring.graph n
  | Grid { rows; cols } -> Grid.graph ~rows ~cols
  | Torus { rows; cols } -> Torus.graph ~rows ~cols
  | Hypercube { dim } -> Hypercube.graph ~dim
  | Butterfly { dim } -> Butterfly.graph ~dim
  | Cluster p -> Cluster.graph p
  | Star p -> Star.graph p
  | Tree p -> Tree.graph p
  | Hypergrid p -> Hypergrid.graph p
  | Block_grid { s } -> Block_grid.graph (Blocks.make ~s)
  | Block_tree { s } -> Block_tree.graph (Blocks.make ~s)
  | Power_law p -> Power_law.graph p
  | Custom { graph; _ } -> graph

let metric = function
  | Clique n -> Clique.metric n
  | Line n -> Line.metric n
  | Ring n -> Ring.metric n
  | Grid { rows; cols } -> Grid.metric ~rows ~cols
  | Torus { rows; cols } -> Torus.metric ~rows ~cols
  | Hypercube { dim } -> Hypercube.metric ~dim
  | Butterfly { dim } -> Butterfly.metric ~dim
  | Cluster p -> Cluster.metric p
  | Star p -> Star.metric p
  | Tree p -> Tree.metric p
  | Hypergrid p -> Hypergrid.metric p
  | Block_grid { s } -> Block_grid.metric (Blocks.make ~s)
  | Block_tree { s } -> Block_tree.metric (Blocks.make ~s)
  | Power_law p -> Power_law.metric p
  | Custom { graph; _ } -> Dtm_graph.Apsp.auto_metric graph

let to_string = function
  | Clique n -> Printf.sprintf "clique:%d" n
  | Line n -> Printf.sprintf "line:%d" n
  | Ring n -> Printf.sprintf "ring:%d" n
  | Grid { rows; cols } -> Printf.sprintf "grid:%dx%d" rows cols
  | Torus { rows; cols } -> Printf.sprintf "torus:%dx%d" rows cols
  | Hypercube { dim } -> Printf.sprintf "hypercube:%d" dim
  | Butterfly { dim } -> Printf.sprintf "butterfly:%d" dim
  | Cluster p ->
    Printf.sprintf "cluster:%dx%d:g%d" p.Cluster.clusters p.Cluster.size
      p.Cluster.bridge_weight
  | Star p -> Printf.sprintf "star:%dx%d" p.Star.rays p.Star.ray_len
  | Tree p -> Printf.sprintf "tree:%dx%d" p.Tree.branching p.Tree.depth
  | Hypergrid p ->
    Printf.sprintf "hypergrid:%s"
      (String.concat "x" (List.map string_of_int p.Hypergrid.dims))
  | Block_grid { s } -> Printf.sprintf "blockgrid:%d" s
  | Block_tree { s } -> Printf.sprintf "blocktree:%d" s
  | Power_law p ->
    Printf.sprintf "powerlaw:%dx%d:s%d" p.Power_law.n p.Power_law.attach
      p.Power_law.seed
  | Custom { name; _ } -> Printf.sprintf "custom:%s" name

let parse_int s = int_of_string_opt (String.trim s)

let parse_pair s =
  match String.split_on_char 'x' s with
  | [ a; b ] -> (
    match (parse_int a, parse_int b) with
    | Some a, Some b -> Some (a, b)
    | _ -> None)
  | _ -> None

let of_string str =
  let fail () = Error (Printf.sprintf "cannot parse topology %S" str) in
  match String.split_on_char ':' (String.lowercase_ascii (String.trim str)) with
  | [ "clique"; n ] -> (
    match parse_int n with Some n when n >= 1 -> Ok (Clique n) | _ -> fail ())
  | [ "line"; n ] -> (
    match parse_int n with Some n when n >= 1 -> Ok (Line n) | _ -> fail ())
  | [ "ring"; n ] -> (
    match parse_int n with Some n when n >= 1 -> Ok (Ring n) | _ -> fail ())
  | [ "grid"; p ] -> (
    match parse_pair p with
    | Some (rows, cols) when rows >= 1 && cols >= 1 -> Ok (Grid { rows; cols })
    | _ -> fail ())
  | [ "torus"; p ] -> (
    match parse_pair p with
    | Some (rows, cols) when rows >= 1 && cols >= 1 -> Ok (Torus { rows; cols })
    | _ -> fail ())
  | [ "hypercube"; d ] -> (
    match parse_int d with
    | Some dim when dim >= 0 && dim <= 20 -> Ok (Hypercube { dim })
    | _ -> fail ())
  | [ "butterfly"; d ] -> (
    match parse_int d with
    | Some dim when dim >= 1 && dim <= 12 -> Ok (Butterfly { dim })
    | _ -> fail ())
  | [ "cluster"; p; g ] -> (
    match (parse_pair p, g) with
    | Some (clusters, size), g
      when String.length g > 1 && g.[0] = 'g' && clusters >= 1 && size >= 1 -> (
      match parse_int (String.sub g 1 (String.length g - 1)) with
      | Some bridge_weight when bridge_weight >= 1 ->
        Ok (Cluster { Cluster.clusters; size; bridge_weight })
      | _ -> fail ())
    | _ -> fail ())
  | [ "tree"; p ] -> (
    match parse_pair p with
    | Some (branching, depth) when branching >= 1 && depth >= 0 ->
      Ok (Tree { Tree.branching; depth })
    | _ -> fail ())
  | [ "hypergrid"; p ] -> (
    let parts = String.split_on_char 'x' p in
    let dims = List.filter_map parse_int parts in
    if List.length dims = List.length parts && dims <> []
       && List.for_all (fun d -> d >= 1) dims
    then Ok (Hypergrid { Hypergrid.dims })
    else fail ())
  | [ "star"; p ] -> (
    match parse_pair p with
    | Some (rays, ray_len) when rays >= 1 && ray_len >= 1 ->
      Ok (Star { Star.rays; ray_len })
    | _ -> fail ())
  | [ "blockgrid"; s ] -> (
    match parse_int s with
    | Some s when s >= 1 -> (
      try
        ignore (Blocks.make ~s);
        Ok (Block_grid { s })
      with Invalid_argument _ -> fail ())
    | _ -> fail ())
  | [ "blocktree"; s ] -> (
    match parse_int s with
    | Some s when s >= 1 -> (
      try
        ignore (Blocks.make ~s);
        Ok (Block_tree { s })
      with Invalid_argument _ -> fail ())
    | _ -> fail ())
  | [ "powerlaw"; p; s ] -> (
    match (parse_pair p, s) with
    | Some (n, attach), s
      when String.length s > 1 && s.[0] = 's' && n >= 2 && attach >= 1
           && attach < n -> (
      match parse_int (String.sub s 1 (String.length s - 1)) with
      | Some seed when seed >= 0 -> Ok (Power_law { Power_law.n; attach; seed })
      | _ -> fail ())
    | _ -> fail ())
  | _ -> fail ()

let describe t =
  let kind =
    match t with
    | Clique _ -> "complete graph"
    | Line _ -> "line graph"
    | Ring _ -> "ring graph"
    | Grid _ -> "grid"
    | Torus _ -> "torus"
    | Hypercube _ -> "hypercube"
    | Butterfly _ -> "butterfly"
    | Cluster _ -> "cluster graph"
    | Star _ -> "star graph"
    | Tree _ -> "complete b-ary tree"
    | Hypergrid _ -> "d-dimensional grid"
    | Block_grid _ -> "Section-8 block grid"
    | Block_tree _ -> "Section-8 block tree"
    | Power_law _ -> "power-law (Barabási–Albert) graph"
    | Custom _ -> "custom graph"
  in
  Printf.sprintf "%s (%s, %d nodes)" (to_string t) kind (n t)

let all_examples =
  [
    Clique 8;
    Line 12;
    Ring 12;
    Grid { rows = 4; cols = 5 };
    Torus { rows = 4; cols = 4 };
    Hypercube { dim = 3 };
    Butterfly { dim = 2 };
    Cluster { Cluster.clusters = 3; size = 4; bridge_weight = 5 };
    Star { Star.rays = 4; ray_len = 5 };
    Tree { Tree.branching = 2; depth = 3 };
    Hypergrid { Hypergrid.dims = [ 3; 3; 3 ] };
    Block_grid { s = 4 };
    Block_tree { s = 4 };
    Power_law { Power_law.n = 24; attach = 2; seed = 7 };
  ]
