(** Cluster graph (paper, Section 6): [clusters] complete graphs of
    [size] nodes each with unit internal edges; the first node of each
    cluster is its designated bridge node, and every pair of bridge nodes
    is joined by an edge of weight [bridge_weight] (the paper's γ, with
    γ >= β assumed by the analysis but not required to build the graph).

    Node ids: cluster [c] holds ids [c * size, (c+1) * size); the bridge
    node of cluster [c] is [c * size]. *)

type params = { clusters : int; size : int; bridge_weight : int }

val graph : params -> Dtm_graph.Graph.t
(** Requires all three parameters >= 1. *)

val metric : params -> Dtm_graph.Metric.t
(** {!oracle}, materialized into the flat backend when the size is in
    {!Dtm_graph.Metric.materialize}'s range. *)

val oracle : params -> Dtm_graph.Metric.t
(** Closed form: 1 inside a cluster; between clusters,
    [gamma + (0 or 1) + (0 or 1)] depending on whether each endpoint is a
    bridge node. *)

val cluster_of : params -> int -> int
val bridge_node : params -> int -> int
(** [bridge_node p c] is the bridge node of cluster [c]. *)

val is_bridge : params -> int -> bool
val nodes_of_cluster : params -> int -> int list
