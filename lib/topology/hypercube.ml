let check dim = if dim < 0 || dim > 20 then invalid_arg "Hypercube: dim out of range"

let graph ~dim =
  check dim;
  let n = 1 lsl dim in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for b = 0 to dim - 1 do
      let v = u lxor (1 lsl b) in
      if u < v then edges := (u, v, 1) :: !edges
    done
  done;
  Dtm_graph.Graph.of_edges ~n !edges

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let oracle ~dim =
  check dim;
  Dtm_graph.Metric.make ~size:(1 lsl dim) (fun u v -> popcount (u lxor v))

let metric ~dim = Dtm_graph.Metric.materialize (oracle ~dim)
