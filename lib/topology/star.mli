(** Star graph (paper, Section 7): a center node plus [rays] line graphs
    of [ray_len] nodes each; every edge has weight 1.

    Node ids: the center is 0; node [j] of ray [r] (0-based, [j = 0]
    adjacent to the center) is [1 + r * ray_len + j].  The paper's depth
    of a ray node — its distance to the center — is [j + 1].

    Rays are divided into η = ceil(log2 β) segments of exponentially
    growing length: segment [i] (1-based) holds the nodes at depths
    [2^(i-1), 2^i - 1]; this is the decomposition Theorem 5's schedule
    works period by period. *)

type params = { rays : int; ray_len : int }

val graph : params -> Dtm_graph.Graph.t
(** Requires [rays >= 1] and [ray_len >= 1]. *)

val metric : params -> Dtm_graph.Metric.t
(** {!oracle}, materialized into the flat backend when the size is in
    {!Dtm_graph.Metric.materialize}'s range. *)

val oracle : params -> Dtm_graph.Metric.t
(** Closed form: within a ray, [|j1 - j2|]; across rays (or to the
    center), via the center. *)

val center : int
(** The center node id (0). *)

val node : params -> ray:int -> depth:int -> int
(** Node of [ray] at [depth] >= 1 from the center. *)

val ray_of : params -> int -> int option
(** [None] for the center. *)

val depth_of : params -> int -> int
(** Distance to the center; 0 for the center itself. *)

val num_segments : params -> int
(** η = ceil(log2 ray_len), at least 1. *)

val segment_of_depth : int -> int
(** 1-based segment index of a depth >= 1: [floor(log2 depth) + 1]. *)

val segment_depths : params -> int -> int * int
(** [segment_depths p i] is the inclusive depth range of segment [i],
    clipped to [ray_len]. *)
