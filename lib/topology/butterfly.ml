let check dim = if dim < 1 || dim > 12 then invalid_arg "Butterfly: dim out of range"

let node ~dim ~level ~row = (level lsl dim) + row
let level ~dim id = id lsr dim
let row ~dim id = id land ((1 lsl dim) - 1)

let graph ~dim =
  check dim;
  let rows = 1 lsl dim in
  let n = (dim + 1) * rows in
  let edges = ref [] in
  for l = 0 to dim - 1 do
    for r = 0 to rows - 1 do
      let u = node ~dim ~level:l ~row:r in
      edges := (u, node ~dim ~level:(l + 1) ~row:r, 1) :: !edges;
      edges := (u, node ~dim ~level:(l + 1) ~row:(r lxor (1 lsl l)), 1) :: !edges
    done
  done;
  Dtm_graph.Graph.of_edges ~n !edges

let metric ~dim =
  check dim;
  (* No closed form for butterfly distances; above the materialization
     cutoff (dim >= 8) the APSP table stops fitting and the landmark
     oracle takes over. *)
  Dtm_graph.Apsp.auto_metric (graph ~dim)
