(** Line graph: nodes [0, n) in a path with unit edge weights (paper,
    Section 4).  Node 0 is the leftmost node. *)

val graph : int -> Dtm_graph.Graph.t
(** [graph n]; requires [n >= 1]. *)

val metric : int -> Dtm_graph.Metric.t
(** {!oracle}, materialized into the flat backend when the size is in
    {!Dtm_graph.Metric.materialize}'s range. *)

val oracle : int -> Dtm_graph.Metric.t
(** Closed form: [|u - v|]. *)
