(** Sum type over every topology in the library, with uniform access to
    the explicit graph, a distance oracle, and CLI parsing.

    This is the type the scheduling dispatcher ({!Dtm_sched.Auto}) matches
    on to pick the paper's algorithm for each topology. *)

type t =
  | Clique of int  (** complete graph on n nodes (Section 3) *)
  | Line of int  (** path on n nodes (Section 4) *)
  | Ring of int  (** cycle on n nodes (extension; Theorem 2 technique) *)
  | Grid of { rows : int; cols : int }  (** unit grid (Section 5) *)
  | Torus of { rows : int; cols : int }  (** extension topology *)
  | Hypercube of { dim : int }  (** 2^dim nodes (Section 3.1) *)
  | Butterfly of { dim : int }  (** (dim+1)·2^dim nodes (Section 3.1) *)
  | Cluster of Cluster.params  (** cliques + bridge edges (Section 6) *)
  | Star of Star.params  (** center + rays (Section 7) *)
  | Tree of Tree.params  (** complete b-ary tree (Section 8 carrier family) *)
  | Hypergrid of Hypergrid.params
      (** d-dimensional grid (Section 3.1 mentions log-n dimensions) *)
  | Block_grid of { s : int }  (** Section 8 grid construction *)
  | Block_tree of { s : int }  (** Section 8 tree construction *)
  | Power_law of Power_law.params
      (** Barabási–Albert preferential attachment: the large sparse
          networks of the fog-cloud direction (arXiv 2511.09776).
          Landmark-backed metric above the materialization cutoff. *)
  | Custom of { name : string; graph : Dtm_graph.Graph.t }
      (** arbitrary user graph (APSP metric; scheduled by the Section 3.1
          greedy).  Not produced by {!of_string} — build it directly,
          e.g. from {!Dtm_graph.Graph_io}. *)

val n : t -> int
(** Number of nodes, without building the graph. *)

val graph : t -> Dtm_graph.Graph.t

val metric : t -> Dtm_graph.Metric.t
(** Closed-form oracle where one exists (everything but Butterfly), else
    APSP-backed. *)

val to_string : t -> string
(** Round-trips with {!of_string}, e.g. ["clique:64"], ["ring:32"], ["grid:8x8"],
    ["cluster:5x6:g12"], ["star:8x7"], ["hypercube:6"],
    ["powerlaw:100000x3:s42"]. *)

val of_string : string -> (t, string) result

val describe : t -> string
(** One-line human description with node count. *)

val all_examples : t list
(** One small instance of each topology, for tests and demos. *)
