let graph n =
  if n < 1 then invalid_arg "Line.graph: n < 1";
  let edges = List.init (n - 1) (fun i -> (i, i + 1, 1)) in
  Dtm_graph.Graph.of_edges ~n edges

let oracle n =
  if n < 1 then invalid_arg "Line.metric: n < 1";
  Dtm_graph.Metric.make ~size:n (fun u v -> abs (u - v))

let metric n = Dtm_graph.Metric.materialize (oracle n)
