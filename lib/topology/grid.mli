(** Rectangular grid with unit edge weights (paper, Section 5).

    Node ids are row-major: node [(x, y)] (column [x], row [y], both
    0-based) has id [y * cols + x].  The paper's n×n grid is
    [graph ~rows:n ~cols:n]. *)

val graph : rows:int -> cols:int -> Dtm_graph.Graph.t
(** Requires [rows >= 1] and [cols >= 1]. *)

val metric : rows:int -> cols:int -> Dtm_graph.Metric.t
(** {!oracle}, materialized into the flat backend when the size is in
    {!Dtm_graph.Metric.materialize}'s range. *)

val oracle : rows:int -> cols:int -> Dtm_graph.Metric.t
(** Closed form: Manhattan distance. *)

val node : cols:int -> x:int -> y:int -> int
(** Id of the node at column [x], row [y]. *)

val coords : cols:int -> int -> int * int
(** [(x, y)] of a node id. *)
