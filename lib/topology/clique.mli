(** Complete graph on [n] nodes, all edge weights 1 (paper, Section 3). *)

val graph : int -> Dtm_graph.Graph.t
(** [graph n]; requires [n >= 1]. *)

val metric : int -> Dtm_graph.Metric.t
(** {!oracle}, materialized into the flat backend when the size is in
    {!Dtm_graph.Metric.materialize}'s range. *)

val oracle : int -> Dtm_graph.Metric.t
(** Closed form: 0 on the diagonal, 1 elsewhere. *)
