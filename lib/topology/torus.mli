(** 2D torus (wraparound grid) with unit edge weights.

    Not analysed in the paper; included as an extension topology for the
    generic diameter-based scheduler of Section 3.1 (a torus has diameter
    (rows + cols) / 2, so the O(k l d) bound applies). *)

val graph : rows:int -> cols:int -> Dtm_graph.Graph.t
(** Requires [rows >= 1] and [cols >= 1]. *)

val metric : rows:int -> cols:int -> Dtm_graph.Metric.t
(** {!oracle}, materialized into the flat backend when the size is in
    {!Dtm_graph.Metric.materialize}'s range. *)

val oracle : rows:int -> cols:int -> Dtm_graph.Metric.t
(** Closed form: wraparound Manhattan distance. *)
