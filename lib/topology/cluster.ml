type params = { clusters : int; size : int; bridge_weight : int }

let check p =
  if p.clusters < 1 || p.size < 1 || p.bridge_weight < 1 then
    invalid_arg "Cluster: parameters must be >= 1"

let cluster_of p id = id / p.size
let bridge_node p c = c * p.size
let is_bridge p id = id mod p.size = 0

let nodes_of_cluster p c = List.init p.size (fun i -> (c * p.size) + i)

let graph p =
  check p;
  let n = p.clusters * p.size in
  let edges = ref [] in
  for c = 0 to p.clusters - 1 do
    let base = c * p.size in
    for i = 0 to p.size - 1 do
      for j = i + 1 to p.size - 1 do
        edges := (base + i, base + j, 1) :: !edges
      done
    done
  done;
  for c1 = 0 to p.clusters - 1 do
    for c2 = c1 + 1 to p.clusters - 1 do
      edges := (bridge_node p c1, bridge_node p c2, p.bridge_weight) :: !edges
    done
  done;
  Dtm_graph.Graph.of_edges ~n !edges

let oracle p =
  check p;
  let gamma = p.bridge_weight in
  Dtm_graph.Metric.make ~size:(p.clusters * p.size) (fun u v ->
      if u = v then 0
      else if cluster_of p u = cluster_of p v then 1
      else begin
        let hop id = if is_bridge p id then 0 else 1 in
        hop u + gamma + hop v
      end)

let metric p = Dtm_graph.Metric.materialize (oracle p)
