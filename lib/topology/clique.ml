let graph n =
  if n < 1 then invalid_arg "Clique.graph: n < 1";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v, 1) :: !edges
    done
  done;
  Dtm_graph.Graph.of_edges ~n !edges

let oracle n =
  if n < 1 then invalid_arg "Clique.metric: n < 1";
  Dtm_graph.Metric.make ~size:n (fun u v -> if u = v then 0 else 1)

let metric n = Dtm_graph.Metric.materialize (oracle n)
