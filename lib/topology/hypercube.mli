(** Hypercube of dimension [dim]: 2^dim nodes, unit-weight edges between
    ids at Hamming distance 1 (paper, Section 3.1). *)

val graph : dim:int -> Dtm_graph.Graph.t
(** Requires [0 <= dim <= 20]. *)

val metric : dim:int -> Dtm_graph.Metric.t
(** {!oracle}, materialized into the flat backend when the size is in
    {!Dtm_graph.Metric.materialize}'s range. *)

val oracle : dim:int -> Dtm_graph.Metric.t
(** Closed form: Hamming distance [popcount (u lxor v)]. *)
