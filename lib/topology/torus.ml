let check ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Torus: rows/cols < 1"

let graph ~rows ~cols =
  check ~rows ~cols;
  let node x y = (y * cols) + x in
  let seen = Hashtbl.create 64 in
  let edges = ref [] in
  let add u v =
    let u, v = if u < v then (u, v) else (v, u) in
    if u <> v && not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.replace seen (u, v) ();
      edges := (u, v, 1) :: !edges
    end
  in
  for y = 0 to rows - 1 do
    for x = 0 to cols - 1 do
      add (node x y) (node ((x + 1) mod cols) y);
      add (node x y) (node x ((y + 1) mod rows))
    done
  done;
  Dtm_graph.Graph.of_edges ~n:(rows * cols) !edges

let oracle ~rows ~cols =
  check ~rows ~cols;
  Dtm_graph.Metric.make ~size:(rows * cols) (fun u v ->
      let xu = u mod cols and yu = u / cols in
      let xv = v mod cols and yv = v / cols in
      let dx = abs (xu - xv) and dy = abs (yu - yv) in
      min dx (cols - dx) + min dy (rows - dy))

let metric ~rows ~cols = Dtm_graph.Metric.materialize (oracle ~rows ~cols)
