type params = { rays : int; ray_len : int }

let check p =
  if p.rays < 1 || p.ray_len < 1 then invalid_arg "Star: parameters must be >= 1"

let center = 0

let node p ~ray ~depth =
  if ray < 0 || ray >= p.rays || depth < 1 || depth > p.ray_len then
    invalid_arg "Star.node: out of range";
  1 + (ray * p.ray_len) + (depth - 1)

let ray_of p id = if id = center then None else Some ((id - 1) / p.ray_len)

let depth_of p id = if id = center then 0 else ((id - 1) mod p.ray_len) + 1

let graph p =
  check p;
  let n = 1 + (p.rays * p.ray_len) in
  let edges = ref [] in
  for r = 0 to p.rays - 1 do
    edges := (center, node p ~ray:r ~depth:1, 1) :: !edges;
    for d = 1 to p.ray_len - 1 do
      edges := (node p ~ray:r ~depth:d, node p ~ray:r ~depth:(d + 1), 1) :: !edges
    done
  done;
  Dtm_graph.Graph.of_edges ~n !edges

let oracle p =
  check p;
  Dtm_graph.Metric.make ~size:(1 + (p.rays * p.ray_len)) (fun u v ->
      if u = v then 0
      else begin
        match (ray_of p u, ray_of p v) with
        | None, _ -> depth_of p v
        | _, None -> depth_of p u
        | Some ru, Some rv ->
          if ru = rv then abs (depth_of p u - depth_of p v)
          else depth_of p u + depth_of p v
      end)

let metric p = Dtm_graph.Metric.materialize (oracle p)

let rec log2_floor x = if x <= 1 then 0 else 1 + log2_floor (x / 2)

let segment_of_depth depth =
  if depth < 1 then invalid_arg "Star.segment_of_depth: depth < 1";
  log2_floor depth + 1

let num_segments p = segment_of_depth p.ray_len

let segment_depths p i =
  if i < 1 || i > num_segments p then invalid_arg "Star.segment_depths: bad segment";
  let lo = 1 lsl (i - 1) in
  let hi = min p.ray_len ((1 lsl i) - 1) in
  (lo, hi)
