type strategy = Slotted | Compact

type order = Natural | Desc_degree | Random_order of int

type t = { colors : int array; num_colors : int }

let order_nodes order dep inst =
  let nodes = Array.copy (Instance.txn_nodes inst) in
  (match order with
  | Natural -> ()
  | Desc_degree ->
    let deg v = Array.length (Dependency.conflicts dep v) in
    (* Stable sort keeps ascending node id within equal degrees. *)
    let lst = Array.to_list nodes in
    let sorted =
      List.stable_sort (fun a b -> compare (deg b) (deg a)) lst
    in
    List.iteri (fun i v -> nodes.(i) <- v) sorted
  | Random_order seed ->
    let rng = Dtm_util.Prng.create ~seed in
    Dtm_util.Prng.shuffle rng nodes);
  nodes

(* Per-call scratch space: constraint colors/weights of the already
   colored neighbors, and the forbidden intervals derived from them.
   Sized once by the graph's max degree so the per-node searches are
   allocation-free.  Local to each [greedy] call, so concurrent calls
   from pool workers never share state. *)
type scratch = {
  cv : int array; (* neighbor color *)
  cw : int array; (* conflict weight *)
  lo : int array; (* forbidden interval start *)
  hi : int array; (* forbidden interval end *)
}

let make_scratch dep =
  let cap = max 1 (Dependency.max_degree dep) in
  {
    cv = Array.make cap 0;
    cw = Array.make cap 0;
    lo = Array.make cap 0;
    hi = Array.make cap 0;
  }

(* Smallest c >= 1 with |c - cv| >= w for every colored conflict (cv, w):
   collect the forbidden open intervals, sort them by start (insertion
   sort on the scratch arrays: degrees are small and the input nearly
   sorted), and scan.  Equivalent to the interval-list scan it replaces —
   the running max over interval ends is insensitive to the order of
   equal starts. *)
let smallest_compact s m =
  let k = ref 0 in
  for i = 0 to m - 1 do
    let c = Array.unsafe_get s.cv i and w = Array.unsafe_get s.cw i in
    let l = if c - w + 1 < 1 then 1 else c - w + 1 in
    let h = c + w - 1 in
    if l <= h then begin
      Array.unsafe_set s.lo !k l;
      Array.unsafe_set s.hi !k h;
      incr k
    end
  done;
  let k = !k in
  for i = 1 to k - 1 do
    let l = s.lo.(i) and h = s.hi.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && s.lo.(!j) > l do
      s.lo.(!j + 1) <- s.lo.(!j);
      s.hi.(!j + 1) <- s.hi.(!j);
      decr j
    done;
    s.lo.(!j + 1) <- l;
    s.hi.(!j + 1) <- h
  done;
  let c = ref 1 in
  let i = ref 0 in
  let stop = ref false in
  while (not !stop) && !i < k do
    if !c < s.lo.(!i) then stop := true
    else begin
      if s.hi.(!i) + 1 > !c then c := s.hi.(!i) + 1;
      incr i
    end
  done;
  !c

let smallest_slotted hmax s m =
  let step = if hmax < 1 then 1 else hmax in
  let j = ref 0 and found = ref (-1) in
  while !found < 0 do
    let c = (!j * step) + 1 in
    let ok = ref true in
    for i = 0 to m - 1 do
      if abs (c - Array.unsafe_get s.cv i) < Array.unsafe_get s.cw i then
        ok := false
    done;
    if !ok then found := c else incr j
  done;
  !found

let greedy ?(strategy = Compact) ?(order = Natural) dep inst =
  let n = Instance.n inst in
  let colors = Array.make n 0 in
  let nodes = order_nodes order dep inst in
  let hmax = Dependency.hmax dep in
  let s = make_scratch dep in
  Array.iter
    (fun v ->
      let conf = Dependency.conflicts dep v in
      let m = ref 0 in
      Array.iter
        (fun (u, w) ->
          let cu = Array.unsafe_get colors u in
          if cu <> 0 then begin
            Array.unsafe_set s.cv !m cu;
            Array.unsafe_set s.cw !m w;
            incr m
          end)
        conf;
      let c =
        match strategy with
        | Compact -> smallest_compact s !m
        | Slotted -> smallest_slotted hmax s !m
      in
      colors.(v) <- c)
    nodes;
  { colors; num_colors = Array.fold_left max 0 colors }

let is_valid dep inst colors =
  let n = Instance.n inst in
  if Array.length colors <> n then false
  else begin
    let ok = ref true in
    for v = 0 to n - 1 do
      (match Instance.txn_at inst v with
      | None -> if colors.(v) <> 0 then ok := false
      | Some _ -> if colors.(v) < 1 then ok := false);
      Array.iter
        (fun (u, w) ->
          if colors.(v) >= 1 && colors.(u) >= 1 && abs (colors.(v) - colors.(u)) < w
          then ok := false)
        (Dependency.conflicts dep v)
    done;
    !ok
  end
