type violation = { what : string; obj : int option; node : int option }

let explain v =
  let extra =
    match (v.obj, v.node) with
    | Some o, Some n -> Printf.sprintf " (object %d, node %d)" o n
    | Some o, None -> Printf.sprintf " (object %d)" o
    | None, Some n -> Printf.sprintf " (node %d)" n
    | None, None -> ""
  in
  v.what ^ extra

let collect metric inst sched ~stop_at_first =
  let out = ref [] in
  let add what ?obj ?node () = out := { what; obj; node } :: !out in
  let done_ () = stop_at_first && !out <> [] in
  (* All looked-up nodes come from the instance, so one up-front range
     check covers every lookup; undersized metrics keep the checked
     (raising) path. *)
  let dist =
    if Dtm_graph.Metric.size metric >= Instance.n inst then
      Dtm_graph.Metric.unsafe_dist metric
    else Dtm_graph.Metric.dist metric
  in
  (* Every transaction scheduled; nothing else scheduled. *)
  let n = Instance.n inst in
  let v = ref 0 in
  while (not (done_ ())) && !v < n do
    (match (Instance.txn_at inst !v, Schedule.time sched !v) with
    | Some _, None -> add "transaction not scheduled" ~node:!v ()
    | None, Some _ -> add "schedule entry for node without transaction" ~node:!v ()
    | _ -> ());
    incr v
  done;
  (* Per-object itinerary constraints. *)
  let o = ref 0 in
  while (not (done_ ())) && !o < Instance.num_objects inst do
    let reqs = Instance.requesters inst !o in
    let all_scheduled =
      Array.for_all (fun r -> Schedule.time sched r <> None) reqs
    in
    if all_scheduled && Array.length reqs > 0 then begin
      let order = Schedule.object_order sched ~requesters:reqs in
      (match order with
      | [] -> ()
      | first :: _ ->
        let t1 = Schedule.time_exn sched first in
        let d = dist (Instance.home inst !o) first in
        if t1 < max 1 d then
          add
            (Printf.sprintf
               "first requester at step %d but object needs %d steps from home"
               t1 (max 1 d))
            ~obj:!o ~node:first ());
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          let ta = Schedule.time_exn sched a and tb = Schedule.time_exn sched b in
          let d = dist a b in
          if tb - ta < d then
            add
              (Printf.sprintf
                 "consecutive users at steps %d and %d but distance is %d" ta tb d)
              ~obj:!o ~node:b ();
          if ta = tb then
            add "two users of one object share a time step" ~obj:!o ~node:b ();
          if not (done_ ()) then pairs rest
        | _ -> ()
      in
      pairs order
    end;
    incr o
  done;
  List.rev !out

let check_all metric inst sched = collect metric inst sched ~stop_at_first:false

let check metric inst sched =
  match collect metric inst sched ~stop_at_first:true with
  | [] -> Ok ()
  | v :: _ -> Error v

let is_feasible metric inst sched = check metric inst sched = Ok ()
