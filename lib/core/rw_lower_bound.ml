type t = { write_load : int; writer_walk : int; reach : int; certified : int }

(* Same fan-out policy as [Lower_bound.compute]: independent per-object
   walk/reach work in contiguous chunks on the domain pool, merged in
   submission order.  The merge is a pair of maxes, so parallel output
   is identical to sequential at any parallelism. *)
let par_min_objects = 2
let par_min_requesters = 32

let compute ?jobs metric rw =
  let inst = Rw_instance.base rw in
  let w = Instance.num_objects inst in
  let write_load = Rw_instance.write_load rw in
  (* (writer-walk, reach) contributions of one object. *)
  let one o =
    let home = Instance.home inst o in
    let writers = Array.to_list (Rw_instance.writers rw o) in
    let walk =
      if writers = [] then 0
      else
        Dtm_graph.Walk.best_lower (Dtm_graph.Walk.bounds metric ~home writers)
    in
    let reach =
      Array.fold_left
        (fun acc u -> max acc (Dtm_graph.Metric.dist metric home u))
        0 (Instance.requesters inst o)
    in
    (walk, reach)
  in
  let total_requesters = ref 0 in
  for o = 0 to w - 1 do
    total_requesters := !total_requesters + Array.length (Instance.requesters inst o)
  done;
  let wanted =
    match jobs with Some j -> max 1 j | None -> Dtm_util.Pool.default_jobs ()
  in
  let writer_walk = ref 0 and reach = ref 0 in
  let merge (walk, r) =
    if walk > !writer_walk then writer_walk := walk;
    if r > !reach then reach := r
  in
  if wanted <= 1 || w < par_min_objects || !total_requesters < par_min_requesters
  then
    for o = 0 to w - 1 do
      merge (one o)
    done
  else begin
    let chunks = min w (wanted * 4) in
    let ranges =
      List.init chunks (fun c -> (c * w / chunks, ((c + 1) * w / chunks) - 1))
    in
    let run_chunk (lo, hi) =
      let walk = ref 0 and r = ref 0 in
      for o = lo to hi do
        let cw, cr = one o in
        if cw > !walk then walk := cw;
        if cr > !r then r := cr
      done;
      (!walk, !r)
    in
    let pieces =
      match jobs with
      | None -> Dtm_util.Pool.run run_chunk ranges
      | Some j ->
        Dtm_util.Pool.with_pool ~jobs:j (fun p ->
            Dtm_util.Pool.map p run_chunk ranges)
    in
    List.iter merge pieces
  end;
  let base = if Instance.num_txns inst > 0 then 1 else 0 in
  {
    write_load;
    writer_walk = !writer_walk;
    reach = !reach;
    certified = max base (max write_load (max !writer_walk !reach));
  }

let certified ?jobs metric rw = (compute ?jobs metric rw).certified
