type t = {
  conflicts : (int * int) array array; (* per node: (neighbor, weight) *)
  hmax : int;
  max_degree : int;
  num_conflicts : int;
}

(* LSD radix sort (8-bit digits) of the first [m] cells of [keys],
   ascending.  Keys are non-negative (encoded node pairs), so digit
   extraction by shift-and-mask is exact; pass count adapts to the
   largest key. *)
let radix_sort keys m =
  if m > 1 then begin
    let tmp = Array.make m 0 in
    let count = Array.make 256 0 in
    let maxk = ref 0 in
    for i = 0 to m - 1 do
      let k = Array.unsafe_get keys i in
      if k > !maxk then maxk := k
    done;
    let src = ref keys and dst = ref tmp in
    let shift = ref 0 in
    while !maxk lsr !shift > 0 do
      Array.fill count 0 256 0;
      let src_a = !src and dst_a = !dst in
      for i = 0 to m - 1 do
        let d = (Array.unsafe_get src_a i lsr !shift) land 255 in
        Array.unsafe_set count d (Array.unsafe_get count d + 1)
      done;
      let sum = ref 0 in
      for d = 0 to 255 do
        let c = Array.unsafe_get count d in
        Array.unsafe_set count d !sum;
        sum := !sum + c
      done;
      for i = 0 to m - 1 do
        let k = Array.unsafe_get src_a i in
        let d = (k lsr !shift) land 255 in
        Array.unsafe_set dst_a (Array.unsafe_get count d) k;
        Array.unsafe_set count d (Array.unsafe_get count d + 1)
      done;
      src := dst_a;
      dst := src_a;
      shift := !shift + 8
    done;
    if !src != keys then Array.blit !src 0 keys 0 m
  end

(* Conflict edges are discovered as requester pairs, one per object they
   share.  Instead of hashing boxed (u, v) tuples, each pair is encoded
   as the canonical int key [min u v * n + max u v] — canonicalization
   makes the dedup robust to the orientation a pair arrives in, so a
   shared pair can never double an edge — and the whole batch is
   deduplicated by one radix sort over a flat int array.  Distances are
   looked up once per unique edge, and adjacency arrays are preallocated
   from exact degree counts. *)
let build metric inst =
  let n = Instance.n inst in
  let num_objects = Instance.num_objects inst in
  let total = ref 0 in
  for o = 0 to num_objects - 1 do
    let len = Array.length (Instance.requesters inst o) in
    total := !total + (len * (len - 1) / 2)
  done;
  let keys = Array.make (max 1 !total) 0 in
  let idx = ref 0 in
  for o = 0 to num_objects - 1 do
    let reqs = Instance.requesters inst o in
    let len = Array.length reqs in
    for i = 0 to len - 1 do
      let u = Array.unsafe_get reqs i in
      for j = i + 1 to len - 1 do
        let v = Array.unsafe_get reqs j in
        let key = if u < v then (u * n) + v else (v * n) + u in
        Array.unsafe_set keys !idx key;
        incr idx
      done
    done
  done;
  let m = !total in
  radix_sort keys m;
  let deg = Array.make (max 1 n) 0 in
  let uniq = ref 0 in
  let prev = ref (-1) in
  for i = 0 to m - 1 do
    let key = Array.unsafe_get keys i in
    if key <> !prev then begin
      prev := key;
      Array.unsafe_set keys !uniq key;
      incr uniq;
      let u = key / n and v = key mod n in
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1
    end
  done;
  let conflicts = Array.init n (fun v -> Array.make deg.(v) (0, 0)) in
  let fill = Array.make (max 1 n) 0 in
  let hmax = ref 0 in
  let in_range = Dtm_graph.Metric.size metric >= n in
  for i = 0 to !uniq - 1 do
    let key = keys.(i) in
    let u = key / n and v = key mod n in
    let w =
      (* Requesters are validated by Instance, so when the metric covers
         the instance the bounds check is redundant; fall back to the
         checked lookup (and its exception) on undersized metrics. *)
      if in_range then Dtm_graph.Metric.unsafe_dist metric u v else Dtm_graph.Metric.dist metric u v
    in
    if w > !hmax then hmax := w;
    conflicts.(u).(fill.(u)) <- (v, w);
    fill.(u) <- fill.(u) + 1;
    conflicts.(v).(fill.(v)) <- (u, w);
    fill.(v) <- fill.(v) + 1
  done;
  let max_degree =
    Array.fold_left (fun acc a -> max acc (Array.length a)) 0 conflicts
  in
  { conflicts; hmax = !hmax; max_degree; num_conflicts = !uniq }

let conflicts t v =
  if v < 0 || v >= Array.length t.conflicts then
    invalid_arg "Dependency.conflicts: node out of range";
  t.conflicts.(v)

let hmax t = t.hmax
let max_degree t = t.max_degree
let weighted_degree t = t.hmax * t.max_degree
let num_conflicts t = t.num_conflicts
