(** Certified per-instance lower bounds on execution time.

    The paper measures every upper bound against the objects' optimal
    walks/TSP tours (Sections 1.1, 8) and the per-object load ℓ
    (Theorem 1).  [certified] is a value provably <= the optimal
    makespan, combining:

    - [load]: some object is requested by ℓ transactions, which must
      execute at distinct steps, so OPT >= ℓ;
    - [max_walk]: some object must travel from its home through all its
      requesters, so OPT >= its shortest-walk lower bound (exact TSP path
      when the requester set is small, a certified MST bound otherwise);
    - 1 whenever the instance has at least one transaction. *)

type per_object = {
  obj : int;
  requesters : int;
  walk : Dtm_graph.Walk.bounds;  (** walk bounds from the object's home *)
}

type t = {
  load : int;
  max_walk : int;
  certified : int;
  per_object : per_object array;
}

val compute : ?jobs:int -> Dtm_graph.Metric.t -> Instance.t -> t
(** Per-object walk oracles run in parallel on {!Dtm_util.Pool} (the
    shared default pool, i.e. [-j N] in the binaries; a dedicated pool
    of [jobs] domains when [jobs] is given, [jobs = 1] forcing a
    sequential run).  Chunks merge in submission order, so the result —
    including the [per_object] array — is byte-identical at any
    parallelism.  Each domain reuses one [Tsp] scratch arena across all
    the objects it processes. *)

val certified : ?jobs:int -> Dtm_graph.Metric.t -> Instance.t -> int
(** Just the combined bound. *)

val ratio : makespan:int -> lower:int -> float
(** [makespan / max 1 lower] — the approximation ratio the experiments
    report. *)
