(** Certified lower bounds under read replication.

    Three provable components:
    - [write_load]: an object's writers execute at distinct steps;
    - [writer_walk]: the master copy must walk from its home through all
      writers, so the walk lower bound over the {e writer} set applies;
    - [reach]: any user (reader or writer) of object [o] at step [t]
      needs a version that originated at the home at step 0, and every
      forwarding path obeys the triangle inequality, so
      [t >= max 1 (dist (home o) u)]. *)

type t = {
  write_load : int;
  writer_walk : int;
  reach : int;
  certified : int;  (** max of the above (and 1 if any transaction) *)
}

val compute : ?jobs:int -> Dtm_graph.Metric.t -> Rw_instance.t -> t
(** Per-object writer walks and reach scans run in parallel on
    {!Dtm_util.Pool}, exactly as in {!Lower_bound.compute} (shared
    default pool unless [jobs] is given; results identical at any
    parallelism). *)

val certified : ?jobs:int -> Dtm_graph.Metric.t -> Rw_instance.t -> int
