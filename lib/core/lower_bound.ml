type per_object = { obj : int; requesters : int; walk : Dtm_graph.Walk.bounds }

type t = {
  load : int;
  max_walk : int;
  certified : int;
  per_object : per_object array;
}

(* Fan-out policy: per-object walk oracles are independent, so they run
   on the domain pool in contiguous chunks (roughly 4 per worker for
   load balance against uneven requester sets), merged in submission
   order — the [per_object] array is byte-identical to a sequential
   build at any parallelism.  Tiny instances stay sequential: below
   these floors the pool's queue round-trips would dominate the walk
   oracles themselves. *)
let par_min_objects = 2
let par_min_requesters = 32

let chunk_ranges ~w ~chunks =
  List.init chunks (fun c -> (c * w / chunks, ((c + 1) * w / chunks) - 1))

let per_object_array ?jobs metric inst =
  let w = Instance.num_objects inst in
  let one o =
    let reqs = Instance.requesters inst o in
    let walk =
      Dtm_graph.Walk.bounds metric ~home:(Instance.home inst o)
        (Array.to_list reqs)
    in
    { obj = o; requesters = Array.length reqs; walk }
  in
  let total_requesters = ref 0 in
  for o = 0 to w - 1 do
    total_requesters := !total_requesters + Array.length (Instance.requesters inst o)
  done;
  let wanted =
    match jobs with Some j -> max 1 j | None -> Dtm_util.Pool.default_jobs ()
  in
  if wanted <= 1 || w < par_min_objects || !total_requesters < par_min_requesters
  then Array.init w one
  else begin
    let ranges = chunk_ranges ~w ~chunks:(min w (wanted * 4)) in
    let run_chunk (lo, hi) = Array.init (hi - lo + 1) (fun i -> one (lo + i)) in
    let pieces =
      match jobs with
      | None -> Dtm_util.Pool.run run_chunk ranges
      | Some j ->
        Dtm_util.Pool.with_pool ~jobs:j (fun p ->
            Dtm_util.Pool.map p run_chunk ranges)
    in
    Array.concat pieces
  end

let compute ?jobs metric inst =
  let per_object = per_object_array ?jobs metric inst in
  let load = Instance.load inst in
  let max_walk =
    Array.fold_left
      (fun acc p ->
        if p.requesters = 0 then acc
        else max acc (Dtm_graph.Walk.best_lower p.walk))
      0 per_object
  in
  let base = if Instance.num_txns inst > 0 then 1 else 0 in
  { load; max_walk; certified = max base (max load max_walk); per_object }

let certified ?jobs metric inst = (compute ?jobs metric inst).certified

let ratio ~makespan ~lower = float_of_int makespan /. float_of_int (max 1 lower)
