module Instance = Dtm_core.Instance

let in_order order metric inst =
  let composer = Composer.create metric inst in
  Array.iter (fun v -> Composer.run_greedy_group composer [ v ]) order;
  Composer.schedule composer

let sequential metric inst = in_order (Instance.txn_nodes inst) metric inst

let random_order ~seed metric inst =
  let rng = Dtm_util.Prng.create ~seed in
  let order = Dtm_util.Prng.shuffled_copy rng (Instance.txn_nodes inst) in
  in_order order metric inst

(* Quadratic nearest-neighbour tour; reference semantics, used when the
   bucketed scan's reachability precondition fails. *)
let nearest_tour_scan metric nodes =
  let m = Array.length nodes in
  let visited = Array.make m false in
  let order = Array.make m nodes.(0) in
  visited.(0) <- true;
  for i = 1 to m - 1 do
    let cur = order.(i - 1) in
    let pick = ref (-1) and best = ref max_int in
    for j = 0 to m - 1 do
      if not visited.(j) then begin
        let d = Dtm_graph.Metric.dist metric cur nodes.(j) in
        if d < !best then begin
          best := d;
          pick := j
        end
      end
    done;
    visited.(!pick) <- true;
    order.(i) <- nodes.(!pick)
  done;
  order

(* Bucketed nearest-neighbour tour.  Candidates are bucketed statically
   by their distance [ds.(j)] from the anchor [nodes.(0)]; by the
   triangle inequality, dist(cur, nodes.(j)) >= |ds.(j) - ds(cur)|, so a
   candidate in ring [r] around the current node's bucket can never beat
   a best below [r].  Scanning rings outwards and stopping once
   [best <= r] visits only the candidates near the tour's frontier
   instead of all remaining ones.  Ties break towards the smallest
   candidate index, exactly like the reference scan. *)
let nearest_tour_bucketed metric nodes ds dmax =
  let m = Array.length nodes in
  (* On a landmark metric each [dist] is a pruned search, but its O(L)
     lower bound is nearly free: a candidate whose bound already
     exceeds the incumbent cannot win or tie, so skip the search.
     Exact backends answer [lower_bound] with the distance itself —
     that would be the same lookup twice, hence the gate. *)
  let use_lb = Dtm_graph.Metric.is_landmark metric in
  (* Per-distance buckets of candidate indices, swap-removed on visit. *)
  let blen = Array.make (dmax + 1) 0 in
  Array.iter (fun d -> blen.(d) <- blen.(d) + 1) ds;
  let bucket = Array.init (dmax + 1) (fun d -> Array.make blen.(d) 0) in
  let bpos = Array.make m 0 in
  Array.fill blen 0 (dmax + 1) 0;
  for j = 0 to m - 1 do
    let d = ds.(j) in
    bucket.(d).(blen.(d)) <- j;
    bpos.(j) <- blen.(d);
    blen.(d) <- blen.(d) + 1
  done;
  let remove j =
    let d = ds.(j) in
    let last = blen.(d) - 1 in
    let k = bpos.(j) in
    let moved = bucket.(d).(last) in
    bucket.(d).(k) <- moved;
    bpos.(moved) <- k;
    blen.(d) <- last
  in
  let order = Array.make m nodes.(0) in
  remove 0;
  let cur_j = ref 0 in
  for i = 1 to m - 1 do
    let cur = nodes.(!cur_j) in
    let dc = ds.(!cur_j) in
    let pick = ref (-1) and best = ref max_int in
    let scan d =
      if d >= 0 && d <= dmax then
        for k = 0 to blen.(d) - 1 do
          let j = bucket.(d).(k) in
          if
            (not use_lb)
            || Dtm_graph.Metric.lower_bound metric cur nodes.(j) <= !best
          then begin
            let dist = Dtm_graph.Metric.dist metric cur nodes.(j) in
            if dist < !best || (dist = !best && j < !pick) then begin
              best := dist;
              pick := j
            end
          end
        done
    in
    let r = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      scan (dc - !r);
      if !r > 0 then scan (dc + !r);
      if !pick >= 0 && !best <= !r then continue_ := false
      else if dc - !r < 0 && dc + !r > dmax then continue_ := false
      else incr r
    done;
    remove !pick;
    order.(i) <- nodes.(!pick);
    cur_j := !pick
  done;
  order

let nearest_first metric inst =
  let nodes = Instance.txn_nodes inst in
  let m = Array.length nodes in
  if m = 0 then in_order [||] metric inst
  else begin
    let ds = Array.map (fun v -> Dtm_graph.Metric.dist metric nodes.(0) v) nodes in
    let order =
      if Array.exists (fun d -> d = max_int) ds then
        (* Disconnected transaction set: the ring bound is meaningless. *)
        nearest_tour_scan metric nodes
      else nearest_tour_bucketed metric nodes ds (Array.fold_left max 0 ds)
    in
    in_order order metric inst
  end
