module Topology = Dtm_topology.Topology

let schedule ?(seed = 0) topo inst =
  match topo with
  | Topology.Clique n -> Clique_sched.schedule ~n inst
  | Topology.Line n -> Line_sched.schedule ~n inst
  | Topology.Ring n -> Ring_sched.schedule ~n inst
  | Topology.Grid { rows; cols } -> Grid_sched.schedule ~rows ~cols inst
  | Topology.Cluster p -> Cluster_sched.schedule ~approach:(Cluster_sched.Best { seed }) p inst
  | Topology.Star p -> Star_sched.schedule ~variant:(Star_sched.Best_periods { seed }) p inst
  | Topology.Torus _ | Topology.Hypercube _ | Topology.Butterfly _
  | Topology.Tree _ | Topology.Hypergrid _ | Topology.Block_grid _
  | Topology.Block_tree _ | Topology.Power_law _ | Topology.Custom _ ->
    Diameter_sched.schedule (Topology.metric topo) inst

let name = function
  | Topology.Clique _ -> "greedy (Thm 1)"
  | Topology.Line _ -> "two-phase sweep (Thm 2)"
  | Topology.Ring _ -> "ring arc sweep (Thm 2 extension)"
  | Topology.Grid _ -> "subgrid decomposition (Thm 3)"
  | Topology.Cluster _ -> "cluster best-of-approaches (Thm 4)"
  | Topology.Star _ -> "star period schedule (Thm 5)"
  | Topology.Torus _ | Topology.Hypercube _ | Topology.Butterfly _
  | Topology.Tree _ | Topology.Hypergrid _ | Topology.Block_grid _
  | Topology.Block_tree _ | Topology.Power_law _ | Topology.Custom _ ->
    "bounded-diameter greedy (Sec 3.1)"
