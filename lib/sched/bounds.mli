(** Closed-form makespan upper bounds from the paper's proofs,
    instantiated per instance.

    Each function evaluates the bound the corresponding theorem proves
    for its algorithm on the given instance (using instance-measured
    quantities such as l, k, σ, or the per-subgrid loads, with the
    paper's constants).  Because the proofs are worst-case, the
    implementations must never exceed them — the test suite asserts
    [makespan <= bound] across random instances, turning each theorem
    into an executable check. *)

val clique : Dtm_core.Instance.t -> int
(** Theorem 1: the greedy schedule ends by k·l + 1. *)

val diameter : Dtm_graph.Metric.t -> Dtm_core.Instance.t -> int
(** Section 3.1: k·l·d + d on a diameter-d metric (the extra d covers
    initial positioning). *)

val line : Dtm_core.Instance.t -> int
(** Theorem 2: 4·l with l the largest object span (our step-1 time
    convention). *)

val ring : n:int -> Dtm_core.Instance.t -> int
(** Ring extension: 9·l, or 2·n in the degenerate single-sweep case. *)

val grid : rows:int -> cols:int -> Dtm_core.Instance.t -> int
(** Lemma 5's chain with instance-measured per-subgrid loads: the sum
    over subgrids of their greedy bounds (2·side·U_g·k + 1) plus
    transition periods (3·side each) plus the 2·max(rows,cols) initial
    positioning, evaluated at the algorithm's default subgrid side. *)

val star : Dtm_topology.Star.params -> Dtm_core.Instance.t -> int
(** Theorem 5's schedule, bounded via its greedy-periods variant: the
    center first, then one group per segment period; each period costs
    at most a transition gap (<= the diameter d = 2·ray_len) plus a
    greedy group span (<= k·l·d), summed over the η = ceil(log2 β)
    periods.  [Star_sched]'s default best-of variant never exceeds the
    greedy-periods variant, so the bound applies to it too. *)

val cluster_approach1 :
  Dtm_topology.Cluster.params -> Dtm_core.Instance.t -> int
(** Lemma 6: k·(σ·β)·(γ+2) + γ + 3 (weighted degree of the dependency
    graph, plus one, plus initial positioning of at most γ + 2). *)
