module Instance = Dtm_core.Instance
module Cluster = Dtm_topology.Cluster

let clique inst = (Instance.k_max inst * Instance.load inst) + 1

let diameter metric inst =
  let d = Dtm_graph.Metric.diameter metric in
  (Instance.k_max inst * Instance.load inst * d) + d

let line inst = 4 * Line_sched.span inst

let ring ~n inst =
  let l = Ring_sched.span ~n inst in
  if n / l <= 1 then 2 * n else 9 * l

let grid ~rows ~cols inst =
  let side = Grid_sched.default_subgrid_side ~rows ~cols inst in
  if side >= rows && side >= cols then
    diameter (Dtm_topology.Grid.metric ~rows ~cols) inst
  else begin
    let k = max 1 (Instance.k_max inst) in
    let order = Grid_sched.subgrid_order ~rows ~cols ~side in
    let diam = rows + cols in
    (* Per-subgrid greedy bound with the subgrid's measured max object
       load, plus a diameter's worth of transition slack per subgrid. *)
    let subgrid_of v =
      let x, y = Dtm_topology.Grid.coords ~cols v in
      (y / side, x / side)
    in
    let load_in = Hashtbl.create 32 in
    for o = 0 to Instance.num_objects inst - 1 do
      let per = Hashtbl.create 8 in
      Array.iter
        (fun v ->
          let key = subgrid_of v in
          Hashtbl.replace per key
            (1 + Option.value ~default:0 (Hashtbl.find_opt per key)))
        (Instance.requesters inst o);
      Hashtbl.iter
        (fun key c ->
          if c > Option.value ~default:0 (Hashtbl.find_opt load_in key) then
            Hashtbl.replace load_in key c)
        per
    done;
    List.fold_left
      (fun acc key ->
        let u = Option.value ~default:0 (Hashtbl.find_opt load_in key) in
        acc + (2 * side * u * k) + 1 + diam)
      diam order
  end

let star (p : Dtm_topology.Star.params) inst =
  let eta = Dtm_topology.Star.num_segments p in
  let d = 2 * p.Dtm_topology.Star.ray_len in
  let k = max 1 (Instance.k_max inst) in
  let l = max 1 (Instance.load inst) in
  1 + (((eta + 1) * d * ((k * l) + 1)) + d)

let cluster_approach1 p inst =
  let sigma = max 1 (Cluster_sched.sigma p inst) in
  let k = max 1 (Instance.k_max inst) in
  let gamma = p.Cluster.bridge_weight in
  ((gamma + 2) * k * sigma * p.Cluster.size) + gamma + 3
