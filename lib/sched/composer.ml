module Metric = Dtm_graph.Metric
module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule
module Dependency = Dtm_core.Dependency
module Coloring = Dtm_core.Coloring

type t = {
  metric : Metric.t;
  inst : Instance.t;
  sched : Schedule.t;
  obj_time : int array; (* step at which the object was last released *)
  obj_pos : int array; (* node where the object currently sits *)
  scheduled : bool array;
  mutable cursor : int;
}

let create metric inst =
  let w = Instance.num_objects inst in
  {
    metric;
    inst;
    sched = Schedule.create ~n:(Instance.n inst);
    obj_time = Array.make w 0;
    obj_pos = Array.init w (Instance.home inst);
    scheduled = Array.make (Instance.n inst) false;
    cursor = 0;
  }

let cursor t = t.cursor
let is_scheduled t v = t.scheduled.(v)

let unscheduled t =
  Array.to_list (Instance.txn_nodes t.inst)
  |> List.filter (fun v -> not t.scheduled.(v))

let pending_group t nodes =
  List.sort_uniq compare nodes
  |> List.filter (fun v ->
         (not t.scheduled.(v)) && Instance.txn_at t.inst v <> None)

(* Objects requested by at least one node of the group, with the group's
   requesters of each. *)
let group_objects t group =
  let members = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace members v ()) group;
  let out = ref [] in
  for o = 0 to Instance.num_objects t.inst - 1 do
    let users =
      Array.to_list (Instance.requesters t.inst o)
      |> List.filter (Hashtbl.mem members)
    in
    if users <> [] then out := (o, users) :: !out
  done;
  List.rev !out

let commit t assignments =
  (* [assignments]: (node, relative time >= 1) pairs, already feasible
     relative to each other; place them after cursor + gap. *)
  match assignments with
  | [] -> ()
  | _ ->
    let base = t.cursor in
    let rel = Hashtbl.create 64 in
    List.iter (fun (v, r) -> Hashtbl.replace rel v r) assignments;
    let group = List.map fst assignments in
    let objs = group_objects t group in
    let gap = ref 0 in
    List.iter
      (fun (o, users) ->
        let first =
          List.fold_left
            (fun best v ->
              match best with
              | None -> Some v
              | Some b -> if Hashtbl.find rel v < Hashtbl.find rel b then Some v else best)
            None users
        in
        match first with
        | None -> ()
        | Some v ->
          let need =
            t.obj_time.(o)
            + Metric.dist t.metric t.obj_pos.(o) v
            - (base + Hashtbl.find rel v)
          in
          if need > !gap then gap := need)
      objs;
    let gap = max 0 !gap in
    List.iter
      (fun (v, r) ->
        let time = base + gap + r in
        Schedule.set t.sched ~node:v ~time;
        t.scheduled.(v) <- true;
        if time > t.cursor then t.cursor <- time)
      assignments;
    (* Each used object now sits at its last user in the group. *)
    List.iter
      (fun (_o, users) ->
        let o = _o in
        let last =
          List.fold_left
            (fun best v ->
              match best with
              | None -> Some v
              | Some b -> if Hashtbl.find rel v > Hashtbl.find rel b then Some v else best)
            None users
        in
        match last with
        | None -> ()
        | Some v ->
          t.obj_time.(o) <- base + gap + Hashtbl.find rel v;
          t.obj_pos.(o) <- v)
      objs

(* Singleton fast path: a lone pending transaction always colors 1 (its
   sub-instance has no conflicts), so [commit t [(v, 1)]] reduces to a
   direct placement over just the transaction's own objects — no
   sub-instance, dependency graph, coloring pass, or hashtables.  The
   serial baselines ([Baseline.in_order]) issue one group per
   transaction, so this path carries their whole composer cost. *)
let commit_single t v =
  match Instance.txn_at t.inst v with
  | None -> assert false (* pending_group filtered *)
  | Some objs ->
    let base = t.cursor in
    let gap = ref 0 in
    Array.iter
      (fun o ->
        let need =
          t.obj_time.(o) + Metric.dist t.metric t.obj_pos.(o) v - (base + 1)
        in
        if need > !gap then gap := need)
      objs;
    let time = base + max 0 !gap + 1 in
    Schedule.set t.sched ~node:v ~time;
    t.scheduled.(v) <- true;
    if time > t.cursor then t.cursor <- time;
    Array.iter
      (fun o ->
        t.obj_time.(o) <- time;
        t.obj_pos.(o) <- v)
      objs

let run_greedy_group ?strategy ?order t nodes =
  let group = pending_group t nodes in
  match group with
  | [] -> ()
  | [ v ] ->
    ignore strategy;
    ignore order;
    commit_single t v
  | _ ->
    begin
    (* Color the conflicts inside the group with the Section 2.3 greedy
       scheme; colors become times relative to the group start. *)
    let sub =
      Instance.create ~n:(Instance.n t.inst)
        ~num_objects:(Instance.num_objects t.inst)
        ~txns:
          (List.map
             (fun v ->
               match Instance.txn_at t.inst v with
               | Some objs -> (v, Array.to_list objs)
               | None -> assert false)
             group)
        ~home:(Array.init (Instance.num_objects t.inst) (Instance.home t.inst))
    in
    let dep = Dependency.build t.metric sub in
    let coloring = Coloring.greedy ?strategy ?order dep sub in
    commit t (List.map (fun v -> (v, coloring.Coloring.colors.(v))) group)
  end

let run_parallel_chains t chains =
  let chains =
    List.map
      (List.filter (fun v ->
           (not t.scheduled.(v)) && Instance.txn_at t.inst v <> None))
      chains
    |> List.filter (fun c -> c <> [])
  in
  if chains <> [] then begin
    (* Chains must not repeat a node (times would be overwritten). *)
    let seen = Hashtbl.create 64 in
    List.iter
      (List.iter (fun v ->
           if Hashtbl.mem seen v then
             invalid_arg "Composer.run_parallel_chains: duplicate node"
           else Hashtbl.replace seen v ()))
      chains;
    (* No object may span two chains. *)
    let owner = Hashtbl.create 64 in
    List.iteri
      (fun ci chain ->
        List.iter
          (fun v ->
            match Instance.txn_at t.inst v with
            | None -> ()
            | Some objs ->
              Array.iter
                (fun o ->
                  match Hashtbl.find_opt owner o with
                  | Some cj when cj <> ci ->
                    invalid_arg
                      "Composer.run_parallel_chains: object shared across chains"
                  | _ -> Hashtbl.replace owner o ci)
                objs)
          chain)
      chains;
    let assignments =
      List.concat_map
        (fun chain ->
          let rec offsets prev off acc = function
            | [] -> List.rev acc
            | v :: rest ->
              let off =
                match prev with
                | None -> 1
                | Some p -> off + Metric.dist t.metric p v
              in
              offsets (Some v) off ((v, off) :: acc) rest
          in
          offsets None 0 [] chain)
        chains
    in
    commit t assignments
  end

let schedule t = Schedule.copy t.sched
