let kruskal g =
  let edges =
    List.sort (fun a b -> Int.compare a.Graph.w b.Graph.w) (Graph.edges g)
  in
  let uf = Dtm_util.Union_find.create (Graph.n g) in
  let tree = ref [] and total = ref 0 in
  List.iter
    (fun e ->
      if Dtm_util.Union_find.union uf e.Graph.u e.Graph.v then begin
        tree := e :: !tree;
        total := !total + e.Graph.w
      end)
    edges;
  (List.rev !tree, !total)

(* Sorted dedup on a flat int array ([Int.compare] only) — same result
   as [List.sort_uniq compare] on ints without the polymorphic-compare
   closure in this hot path. *)
let sort_uniq_array terminals =
  match terminals with
  | [] -> [||]
  | l ->
    let arr = Array.of_list l in
    Array.sort Int.compare arr;
    let n = Array.length arr in
    let k = ref 1 in
    for i = 1 to n - 1 do
      if arr.(i) <> arr.(!k - 1) then begin
        arr.(!k) <- arr.(i);
        incr k
      end
    done;
    if !k = n then arr else Array.sub arr 0 !k

let metric_mst m terminals =
  let arr = sort_uniq_array terminals in
  let t = Array.length arr in
  if t <= 1 then ([], 0)
  else begin
    (* Prim's algorithm over the metric closure: O(t^2) distance calls. *)
    let in_tree = Array.make t false in
    let best = Array.make t max_int in
    let best_from = Array.make t (-1) in
    in_tree.(0) <- true;
    for j = 1 to t - 1 do
      best.(j) <- Metric.dist m arr.(0) arr.(j);
      best_from.(j) <- 0
    done;
    let tree = ref [] and total = ref 0 in
    for _ = 1 to t - 1 do
      let pick = ref (-1) in
      for j = 0 to t - 1 do
        if (not in_tree.(j)) && (!pick = -1 || best.(j) < best.(!pick)) then
          pick := j
      done;
      let j = !pick in
      in_tree.(j) <- true;
      tree := (arr.(best_from.(j)), arr.(j)) :: !tree;
      total := !total + best.(j);
      for x = 0 to t - 1 do
        if not in_tree.(x) then begin
          let d = Metric.dist m arr.(j) arr.(x) in
          if d < best.(x) then begin
            best.(x) <- d;
            best_from.(x) <- j
          end
        end
      done
    done;
    (List.rev !tree, !total)
  end
