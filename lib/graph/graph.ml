type edge = { u : int; v : int; w : int }

type t = {
  n : int;
  adj : (int * int) array array;
  edge_list : edge list;
  (* CSR mirror of [adj]: neighbours of [u] live at indices
     [off.(u) .. off.(u+1) - 1] of [nbr] (targets) and [wt] (weights).
     Flat int arrays keep traversals (BFS, Dijkstra, replay) free of
     tuple dereferences. *)
  off : int array;
  nbr : int array;
  wt : int array;
}

(* Builds are array-based throughout: at large n (10^6-node power-law
   graphs carry 3M edges) the original list pipeline — a tuple-keyed
   Hashtbl for duplicate detection plus a polymorphic [List.sort] —
   dominated graph construction.  Sorting canonical records with a
   monomorphic comparator and catching duplicates as adjacent equal
   (u, v) pairs keeps the exact same [edge_list] order and the same
   [Invalid_argument] conditions at a fraction of the cost. *)
let of_edges ~n triples =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let canon =
    Array.of_list
      (List.rev_map
         (fun (u, v, w) ->
           if u < 0 || u >= n || v < 0 || v >= n then
             invalid_arg "Graph.of_edges: node out of range";
           if u = v then invalid_arg "Graph.of_edges: self-loop";
           if w <= 0 then invalid_arg "Graph.of_edges: non-positive weight";
           let u, v = if u < v then (u, v) else (v, u) in
           { u; v; w })
         triples)
  in
  Array.sort
    (fun a b ->
      if a.u <> b.u then Int.compare a.u b.u
      else if a.v <> b.v then Int.compare a.v b.v
      else Int.compare a.w b.w)
    canon;
  let m = Array.length canon in
  for i = 1 to m - 1 do
    let a = canon.(i - 1) and b = canon.(i) in
    if a.u = b.u && a.v = b.v then invalid_arg "Graph.of_edges: duplicate edge"
  done;
  let edge_list = Array.to_list canon in
  let deg = Array.make n 0 in
  Array.iter
    (fun { u; v; _ } ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    canon;
  let adj = Array.init n (fun i -> Array.make deg.(i) (0, 0)) in
  let fill = Array.make n 0 in
  Array.iter
    (fun { u; v; w } ->
      adj.(u).(fill.(u)) <- (v, w);
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- (u, w);
      fill.(v) <- fill.(v) + 1)
    canon;
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + deg.(i)
  done;
  let total = off.(n) in
  let nbr = Array.make total 0 and wt = Array.make total 0 in
  for u = 0 to n - 1 do
    let base = off.(u) in
    Array.iteri
      (fun i (v, w) ->
        nbr.(base + i) <- v;
        wt.(base + i) <- w)
      adj.(u)
  done;
  { n; adj; edge_list; off; nbr; wt }

let n g = g.n
let num_edges g = List.length g.edge_list
let edges g = g.edge_list
let degree g u = Array.length g.adj.(u)
let neighbors g u = g.adj.(u)

let csr g = (g.off, g.nbr, g.wt)

let iter_neighbors g u f =
  let hi = g.off.(u + 1) in
  for i = g.off.(u) to hi - 1 do
    f (Array.unsafe_get g.nbr i) (Array.unsafe_get g.wt i)
  done

let edge_weight g u v =
  let hi = g.off.(u + 1) in
  let rec scan i =
    if i >= hi then None
    else if Array.unsafe_get g.nbr i = v then Some (Array.unsafe_get g.wt i)
    else scan (i + 1)
  in
  scan g.off.(u)

let mem_edge g u v = edge_weight g u v <> None

let max_weight g = List.fold_left (fun acc e -> max acc e.w) 0 g.edge_list

let max_degree g =
  let best = ref 0 in
  for u = 0 to g.n - 1 do
    best := max !best (Array.length g.adj.(u))
  done;
  !best

let total_weight g = List.fold_left (fun acc e -> acc + e.w) 0 g.edge_list

let is_connected g =
  if g.n <= 1 then true
  else begin
    let seen = Array.make g.n false in
    let stack = ref [ 0 ] in
    seen.(0) <- true;
    let count = ref 1 in
    let rec go () =
      match !stack with
      | [] -> ()
      | u :: rest ->
        stack := rest;
        iter_neighbors g u (fun v _ ->
            if not seen.(v) then begin
              seen.(v) <- true;
              incr count;
              stack := v :: !stack
            end);
        go ()
    in
    go ();
    !count = g.n
  end

let pp fmt g =
  Format.fprintf fmt "graph(n=%d, m=%d)" g.n (num_edges g);
  if num_edges g <= 32 then
    List.iter
      (fun { u; v; w } -> Format.fprintf fmt "@ (%d-%d:%d)" u v w)
      g.edge_list
