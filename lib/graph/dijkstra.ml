let distances_and_parents g ~src =
  let n = Graph.n g in
  let off, nbr, wt = Graph.csr g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let pq = Dtm_util.Pqueue.create () in
  dist.(src) <- 0;
  Dtm_util.Pqueue.push pq ~prio:0 src;
  let rec loop () =
    match Dtm_util.Pqueue.pop pq with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        let hi = Array.unsafe_get off (u + 1) in
        for i = Array.unsafe_get off u to hi - 1 do
          let v = Array.unsafe_get nbr i in
          let nd = d + Array.unsafe_get wt i in
          if nd < Array.unsafe_get dist v then begin
            Array.unsafe_set dist v nd;
            Array.unsafe_set parent v u;
            Dtm_util.Pqueue.push pq ~prio:nd v
          end
        done
      end;
      loop ()
  in
  loop ();
  (dist, parent)

(* Distance-only variant on a flat monomorphic heap: two parallel int
   arrays instead of [Pqueue]'s boxed entries, so the inner loop never
   allocates.  Distances are unique, so any correct relaxation order
   yields the same array — unlike [distances_and_parents], whose parent
   trees are tie-sensitive (Router replay depends on that exact heap)
   and therefore keep the original queue. *)
let distances g ~src =
  let n = Graph.n g in
  let off, nbr, wt = Graph.csr g in
  let dist = Array.make n max_int in
  let cap = ref 256 in
  let hp = ref (Array.make !cap 0) in
  let hv = ref (Array.make !cap 0) in
  let size = ref 0 in
  let push prio v =
    if !size = !cap then begin
      let ncap = 2 * !cap in
      let np = Array.make ncap 0 and nv = Array.make ncap 0 in
      Array.blit !hp 0 np 0 !size;
      Array.blit !hv 0 nv 0 !size;
      hp := np;
      hv := nv;
      cap := ncap
    end;
    let a = !hp and b = !hv in
    (* Sift the hole up, then drop the new entry in. *)
    let i = ref !size in
    incr size;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if Array.unsafe_get a p > prio then begin
        Array.unsafe_set a !i (Array.unsafe_get a p);
        Array.unsafe_set b !i (Array.unsafe_get b p);
        i := p
      end
      else continue := false
    done;
    Array.unsafe_set a !i prio;
    Array.unsafe_set b !i v
  in
  dist.(src) <- 0;
  push 0 src;
  while !size > 0 do
    let a = !hp and b = !hv in
    let d = Array.unsafe_get a 0 and u = Array.unsafe_get b 0 in
    (* Pop: move the last entry into the root's hole, sifting down. *)
    decr size;
    if !size > 0 then begin
      let lp = Array.unsafe_get a !size and lv = Array.unsafe_get b !size in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 in
        if l >= !size then continue := false
        else begin
          let r = l + 1 in
          let c =
            if r < !size && Array.unsafe_get a r < Array.unsafe_get a l then r
            else l
          in
          if Array.unsafe_get a c < lp then begin
            Array.unsafe_set a !i (Array.unsafe_get a c);
            Array.unsafe_set b !i (Array.unsafe_get b c);
            i := c
          end
          else continue := false
        end
      done;
      Array.unsafe_set a !i lp;
      Array.unsafe_set b !i lv
    end;
    (* Lazy deletion: an entry is current only while it matches the
       label it was pushed with. *)
    if d = Array.unsafe_get dist u then begin
      let hi = Array.unsafe_get off (u + 1) in
      for i = Array.unsafe_get off u to hi - 1 do
        let v = Array.unsafe_get nbr i in
        let nd = d + Array.unsafe_get wt i in
        if nd < Array.unsafe_get dist v then begin
          Array.unsafe_set dist v nd;
          push nd v
        end
      done
    end
  done;
  dist

let path g ~src ~dst =
  let dist, parent = distances_and_parents g ~src in
  if dist.(dst) = max_int then None
  else begin
    let rec build v acc = if v = src then src :: acc else build parent.(v) (v :: acc) in
    Some (build dst [])
  end
