let distances_and_parents g ~src =
  let n = Graph.n g in
  let off, nbr, wt = Graph.csr g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let pq = Dtm_util.Pqueue.create () in
  dist.(src) <- 0;
  Dtm_util.Pqueue.push pq ~prio:0 src;
  let rec loop () =
    match Dtm_util.Pqueue.pop pq with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        let hi = Array.unsafe_get off (u + 1) in
        for i = Array.unsafe_get off u to hi - 1 do
          let v = Array.unsafe_get nbr i in
          let nd = d + Array.unsafe_get wt i in
          if nd < Array.unsafe_get dist v then begin
            Array.unsafe_set dist v nd;
            Array.unsafe_set parent v u;
            Dtm_util.Pqueue.push pq ~prio:nd v
          end
        done
      end;
      loop ()
  in
  loop ();
  (dist, parent)

let distances g ~src = fst (distances_and_parents g ~src)

let path g ~src ~dst =
  let dist, parent = distances_and_parents g ~src in
  if dist.(dst) = max_int then None
  else begin
    let rec build v acc = if v = src then src :: acc else build parent.(v) (v :: acc) in
    Some (build dst [])
  end
