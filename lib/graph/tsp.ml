let max_exact_terminals = 15

(* Sorted dedup on a flat int array: Int.compare only, no polymorphic
   compare in the hot dedup path.  Same ordering as the seed's
   [List.sort_uniq compare] (ints compare identically either way). *)
let sort_uniq_array terminals =
  match terminals with
  | [] -> [||]
  | l ->
    let arr = Array.of_list l in
    Array.sort Int.compare arr;
    let n = Array.length arr in
    let k = ref 1 in
    for i = 1 to n - 1 do
      if arr.(i) <> arr.(!k - 1) then begin
        arr.(!k) <- arr.(i);
        incr k
      end
    done;
    if !k = n then arr else Array.sub arr 0 !k

let dedup terminals = Array.to_list (sort_uniq_array terminals)

(* ------------------------------------------------------------------ *)
(* Scratch arena                                                      *)
(* ------------------------------------------------------------------ *)

(* All exact searches on a domain share one arena: flat arrays sized to
   the largest terminal set seen so far, so the per-object hot loop of
   [Lower_bound.compute] allocates nothing after warm-up.  The Held-Karp
   fallback table ((2^t)*t ints) is only grown when the fallback actually
   fires. *)
module Scratch = struct
  type t = {
    mutable dm : int array;  (* t*t terminal-pair distances, row-major *)
    mutable d0 : int array;  (* start -> terminal distances *)
    mutable mark : bool array;  (* Prim in-tree flags (positional) *)
    mutable key : int array;  (* Prim best-edge weights (positional) *)
    mutable idx : int array;  (* gather buffer: remaining terminal ids *)
    mutable cand : int array;  (* B&B child ids, one t-slice per depth *)
    mutable ccost : int array;  (* B&B child edge costs, same layout *)
    mutable dp : int array;  (* Held-Karp fallback, (2^t)*t flat *)
    mutable mst : int array;  (* MST-remainder memo by mask, -1 = unset *)
  }

  let create () =
    {
      dm = [||];
      d0 = [||];
      mark = [||];
      key = [||];
      idx = [||];
      cand = [||];
      ccost = [||];
      dp = [||];
      mst = [||];
    }

  let ensure s ~terms:t =
    if Array.length s.d0 < t then begin
      s.d0 <- Array.make t 0;
      s.mark <- Array.make t false;
      s.key <- Array.make t 0;
      s.idx <- Array.make t 0
    end;
    if Array.length s.dm < t * t then begin
      s.dm <- Array.make (t * t) 0;
      s.cand <- Array.make (t * t) 0;
      s.ccost <- Array.make (t * t) 0
    end

  let ensure_dp s n = if Array.length s.dp < n then s.dp <- Array.make n 0

  (* One slot per subset; reset (the 2^t prefix only) before each
     search, since the memo is keyed by mask alone and the snapshotted
     distances change between searches. *)
  let reset_mst s t =
    let need = 1 lsl t in
    if Array.length s.mst < need then s.mst <- Array.make need (-1)
    else Array.fill s.mst 0 need (-1)
end

(* Bring the arena's field labels into scope for the kernels below. *)
open Scratch

let scratch_key = Domain.DLS.new_key Scratch.create
let domain_scratch () = Domain.DLS.get scratch_key

(* Snapshot the terminal-pair (and start) distances into the arena once:
   every search below reads them many times and must not pay an oracle
   call per read.  Returns whether a start node is present. *)
let load_scratch (s : Scratch.t) m ~start terms =
  let t = Array.length terms in
  Scratch.ensure s ~terms:t;
  let dm = s.dm in
  for i = 0 to t - 1 do
    let ti = terms.(i) in
    let base = i * t in
    dm.(base + i) <- 0;
    for j = i + 1 to t - 1 do
      let d = Metric.dist m ti terms.(j) in
      dm.(base + j) <- d;
      dm.((j * t) + i) <- d
    done
  done;
  match start with
  | None -> false
  | Some st ->
    let d0 = s.d0 in
    for j = 0 to t - 1 do
      d0.(j) <- Metric.dist m st terms.(j)
    done;
    true

(* ------------------------------------------------------------------ *)
(* Exact search: branch-and-bound with MST-remainder pruning           *)
(* ------------------------------------------------------------------ *)

(* Weight of the minimum spanning tree over the terminals NOT in [mask]
   (Prim, O(r^2) on the snapshotted distances).  Any completion of a
   partial path must span those terminals, so this is admissible.
   Memoized by mask: the same remaining set is reached through every
   permutation of the visited prefix and by all siblings pruned at the
   same frontier, so most lookups after the first are array reads. *)
let mst_remaining_compute (s : Scratch.t) t mask =
  let dm = s.dm and key = s.key and mark = s.mark and idx = s.idx in
  let r = ref 0 in
  for j = 0 to t - 1 do
    if mask land (1 lsl j) = 0 then begin
      idx.(!r) <- j;
      incr r
    end
  done;
  let r = !r in
  if r <= 1 then 0
  else begin
    let root = idx.(0) * t in
    for x = 1 to r - 1 do
      mark.(x) <- false;
      key.(x) <- Array.unsafe_get dm (root + idx.(x))
    done;
    let total = ref 0 in
    for _ = 1 to r - 1 do
      let pick = ref (-1) and best = ref max_int in
      for x = 1 to r - 1 do
        if (not mark.(x)) && key.(x) < !best then begin
          best := key.(x);
          pick := x
        end
      done;
      let x = !pick in
      mark.(x) <- true;
      total := !total + key.(x);
      let base = idx.(x) * t in
      for y = 1 to r - 1 do
        if not mark.(y) then begin
          let d = Array.unsafe_get dm (base + idx.(y)) in
          if d < key.(y) then key.(y) <- d
        end
      done
    done;
    !total
  end

let mst_remaining (s : Scratch.t) t mask =
  let c = Array.unsafe_get s.mst mask in
  if c >= 0 then c
  else begin
    let w = mst_remaining_compute s t mask in
    Array.unsafe_set s.mst mask w;
    w
  end

(* Held-Karp on the arena: set-major flat table, dp.(set*t + last).
   Fallback for the rare instances where branch-and-bound degenerates. *)
let held_karp_core (s : Scratch.t) t ~has_start =
  let full = (1 lsl t) - 1 in
  Scratch.ensure_dp s ((full + 1) * t);
  let dm = s.dm and d0 = s.d0 and dp = s.dp in
  Array.fill dp 0 ((full + 1) * t) max_int;
  for j = 0 to t - 1 do
    dp.(((1 lsl j) * t) + j) <- (if has_start then d0.(j) else 0)
  done;
  for set = 1 to full do
    let row = set * t in
    for last = 0 to t - 1 do
      let cur = Array.unsafe_get dp (row + last) in
      if cur < max_int && set land (1 lsl last) <> 0 then begin
        let base = last * t in
        for next = 0 to t - 1 do
          if set land (1 lsl next) = 0 then begin
            let cell = ((set lor (1 lsl next)) * t) + next in
            let cand = cur + Array.unsafe_get dm (base + next) in
            if cand < Array.unsafe_get dp cell then
              Array.unsafe_set dp cell cand
          end
        done
      end
    done
  done;
  let best = ref max_int in
  for j = 0 to t - 1 do
    if dp.((full * t) + j) < !best then best := dp.((full * t) + j)
  done;
  !best

(* Expansion budget before abandoning branch-and-bound for the DP: each
   expansion costs O(t^2), so the cap keeps the worst case within a
   small constant of one Held-Karp run. *)
let bb_budget = 20_000

exception Budget

(* [upper] must be the length of a known feasible walk (it is the
   initial incumbent): the search only records strict improvements, so
   the result is exact precisely because [upper] is achievable. *)
let branch_and_bound (s : Scratch.t) t ~has_start ~upper =
  Scratch.reset_mst s t;
  let dm = s.dm and d0 = s.d0 in
  let full = (1 lsl t) - 1 in
  let best = ref upper in
  let expanded = ref 0 in
  let rec go depth mask cur g =
    if mask = full then begin
      if g < !best then best := g
    end
    else begin
      incr expanded;
      if !expanded > bb_budget then raise Budget;
      let cand = s.cand and ccost = s.ccost in
      let base = depth * t in
      let cnt = ref 0 and min_edge = ref max_int in
      for j = 0 to t - 1 do
        if mask land (1 lsl j) = 0 then begin
          let c =
            if cur >= 0 then Array.unsafe_get dm ((cur * t) + j)
            else if has_start then d0.(j)
            else 0
          in
          cand.(base + !cnt) <- j;
          ccost.(base + !cnt) <- c;
          incr cnt;
          if c < !min_edge then min_edge := c
        end
      done;
      let cnt = !cnt in
      (* Admissible completion bound: cheapest edge into the remaining
         set plus a spanning tree of it. *)
      if g + !min_edge + mst_remaining s t mask < !best then begin
        (* Nearest-first child order (insertion sort on the depth slice)
           finds strong incumbents early and sharpens later pruning. *)
        for a = 1 to cnt - 1 do
          let cj = cand.(base + a) and cc = ccost.(base + a) in
          let b = ref (a - 1) in
          while !b >= 0 && ccost.(base + !b) > cc do
            cand.(base + !b + 1) <- cand.(base + !b);
            ccost.(base + !b + 1) <- ccost.(base + !b);
            decr b
          done;
          cand.(base + !b + 1) <- cj;
          ccost.(base + !b + 1) <- cc
        done;
        for a = 0 to cnt - 1 do
          let j = cand.(base + a) in
          let c = ccost.(base + a) in
          (* Per-child admissible bound: the completion from [j] still
             spans the set remaining after [j].  The memo makes this
             a lookup for every sibling after the first toucher, and
             the expanded child reuses the same entry for its own
             frontier bound. *)
          if g + c < !best then begin
            let cmask = mask lor (1 lsl j) in
            if cmask = full || g + c + mst_remaining s t cmask < !best then
              go (depth + 1) cmask j (g + c)
          end
        done
      end
    end
  in
  (try go 0 0 (-1) 0 with Budget -> best := held_karp_core s t ~has_start);
  !best

(* ------------------------------------------------------------------ *)
(* Heuristic bounds                                                   *)
(* ------------------------------------------------------------------ *)

let nearest_neighbor m ~start terminals =
  let terms = sort_uniq_array terminals in
  let t = Array.length terms in
  let visited = Array.make t false in
  let order = ref [] and total = ref 0 and cur = ref start in
  for _ = 1 to t do
    let pick = ref (-1) and best = ref max_int in
    for j = 0 to t - 1 do
      if not visited.(j) then begin
        let d = Metric.dist m !cur terms.(j) in
        if d < !best then begin
          best := d;
          pick := j
        end
      end
    done;
    visited.(!pick) <- true;
    order := terms.(!pick) :: !order;
    total := !total + !best;
    cur := terms.(!pick)
  done;
  (List.rev !order, !total)

let mst_preorder m ?start terminals =
  let terms = dedup terminals in
  match terms with
  | [] -> ([], 0)
  | [ x ] ->
    let d = match start with None -> 0 | Some s -> Metric.dist m s x in
    ([ x ], d)
  | root :: _ ->
    let tree, _ = Mst.metric_mst m terms in
    let children = Hashtbl.create 16 in
    let add_child u v =
      let cur = try Hashtbl.find children u with Not_found -> [] in
      Hashtbl.replace children u (v :: cur)
    in
    List.iter
      (fun (u, v) ->
        add_child u v;
        add_child v u)
      tree;
    let visited = Hashtbl.create 16 in
    let order = ref [] in
    let rec dfs u =
      if not (Hashtbl.mem visited u) then begin
        Hashtbl.replace visited u ();
        order := u :: !order;
        let kids = try Hashtbl.find children u with Not_found -> [] in
        List.iter dfs (List.rev kids)
      end
    in
    dfs root;
    let order = List.rev !order in
    let total = ref 0 in
    let rec walk prev = function
      | [] -> ()
      | x :: rest ->
        total := !total + Metric.dist m prev x;
        walk x rest
    in
    (match (start, order) with
    | Some s, _ -> walk s order
    | None, first :: rest -> walk first rest
    | None, [] -> ());
    (order, !total)

let lower_bound m ?start terminals =
  let terms = dedup terminals in
  let pts = match start with None -> terms | Some s -> dedup (s :: terms) in
  let _, w = Mst.metric_mst m pts in
  w

let upper_bound m ?start terminals =
  let terms = dedup terminals in
  match terms with
  | [] -> 0
  | first :: _ ->
    (* Without a mandatory start, anchoring nearest-neighbour at the first
       terminal makes its initial hop cost 0, so the result is still a
       valid Hamiltonian path over the terminal set. *)
    let nn_start = match start with Some s -> s | None -> first in
    let _, nn = nearest_neighbor m ~start:nn_start terminals in
    let _, pre = mst_preorder m ?start terminals in
    min nn pre

(* ------------------------------------------------------------------ *)
(* Exact entry points                                                  *)
(* ------------------------------------------------------------------ *)

let exact_within m ?start ~lower ~upper terminals =
  let terms = sort_uniq_array terminals in
  let t = Array.length terms in
  if t = 0 then 0
  else if t > max_exact_terminals then
    invalid_arg "Tsp.exact_path_length: too many terminals"
  else if lower >= upper then upper
  else begin
    let s = domain_scratch () in
    let has_start = load_scratch s m ~start terms in
    branch_and_bound s t ~has_start ~upper
  end

let exact_path_length m ?start terminals =
  let terms = dedup terminals in
  match terms with
  | [] -> 0
  | _ ->
    if List.length terms > max_exact_terminals then
      invalid_arg "Tsp.exact_path_length: too many terminals";
    let lower = lower_bound m ?start terms in
    let upper = upper_bound m ?start terms in
    exact_within m ?start ~lower ~upper terms

(* Transcribed seed implementation (full Held-Karp DP, fresh matrices):
   the test reference the branch-and-bound oracle is pinned against. *)
let held_karp_path_length m ?start terminals =
  let terms = Array.of_list (dedup terminals) in
  let t = Array.length terms in
  if t = 0 then 0
  else if t > max_exact_terminals then
    invalid_arg "Tsp.held_karp_path_length: too many terminals"
  else begin
    let dm = Array.make (t * t) 0 in
    for i = 0 to t - 1 do
      for j = 0 to t - 1 do
        dm.((i * t) + j) <- Metric.dist m terms.(i) terms.(j)
      done
    done;
    let full = (1 lsl t) - 1 in
    let dp = Array.make_matrix (full + 1) t max_int in
    for j = 0 to t - 1 do
      dp.(1 lsl j).(j) <-
        (match start with None -> 0 | Some s -> Metric.dist m s terms.(j))
    done;
    for set = 1 to full do
      let row = Array.unsafe_get dp set in
      for last = 0 to t - 1 do
        let cur = Array.unsafe_get row last in
        if cur < max_int && set land (1 lsl last) <> 0 then begin
          let base = last * t in
          for next = 0 to t - 1 do
            if set land (1 lsl next) = 0 then begin
              let nset = set lor (1 lsl next) in
              let cand = cur + Array.unsafe_get dm (base + next) in
              let nrow = Array.unsafe_get dp nset in
              if cand < Array.unsafe_get nrow next then
                Array.unsafe_set nrow next cand
            end
          done
        end
      done
    done;
    let best = ref max_int in
    for j = 0 to t - 1 do
      if dp.(full).(j) < !best then best := dp.(full).(j)
    done;
    !best
  end
