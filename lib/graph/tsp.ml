let max_exact_terminals = 15

let dedup terminals = List.sort_uniq compare terminals

(* Held-Karp dynamic program over subsets of terminals.  [start] is an
   optional mandatory first node outside the subset indexing. *)
let exact_path_length m ?start terminals =
  let terms = Array.of_list (dedup terminals) in
  let t = Array.length terms in
  if t = 0 then 0
  else if t > max_exact_terminals then
    invalid_arg "Tsp.exact_path_length: too many terminals"
  else begin
    (* Snapshot the terminal-pair distances into a flat t*t array once:
       the DP below reads them O(2^t * t^2) times and must not pay an
       oracle call per read. *)
    let dm = Array.make (t * t) 0 in
    for i = 0 to t - 1 do
      for j = 0 to t - 1 do
        dm.((i * t) + j) <- Metric.dist m terms.(i) terms.(j)
      done
    done;
    let full = (1 lsl t) - 1 in
    let dp = Array.make_matrix (full + 1) t max_int in
    for j = 0 to t - 1 do
      dp.(1 lsl j).(j) <-
        (match start with None -> 0 | Some s -> Metric.dist m s terms.(j))
    done;
    for set = 1 to full do
      let row = Array.unsafe_get dp set in
      for last = 0 to t - 1 do
        let cur = Array.unsafe_get row last in
        if cur < max_int && set land (1 lsl last) <> 0 then begin
          let base = last * t in
          for next = 0 to t - 1 do
            if set land (1 lsl next) = 0 then begin
              let nset = set lor (1 lsl next) in
              let cand = cur + Array.unsafe_get dm (base + next) in
              let nrow = Array.unsafe_get dp nset in
              if cand < Array.unsafe_get nrow next then
                Array.unsafe_set nrow next cand
            end
          done
        end
      done
    done;
    let best = ref max_int in
    for j = 0 to t - 1 do
      if dp.(full).(j) < !best then best := dp.(full).(j)
    done;
    !best
  end

let nearest_neighbor m ~start terminals =
  let terms = Array.of_list (dedup terminals) in
  let t = Array.length terms in
  let visited = Array.make t false in
  let order = ref [] and total = ref 0 and cur = ref start in
  for _ = 1 to t do
    let pick = ref (-1) and best = ref max_int in
    for j = 0 to t - 1 do
      if not visited.(j) then begin
        let d = Metric.dist m !cur terms.(j) in
        if d < !best then begin
          best := d;
          pick := j
        end
      end
    done;
    visited.(!pick) <- true;
    order := terms.(!pick) :: !order;
    total := !total + !best;
    cur := terms.(!pick)
  done;
  (List.rev !order, !total)

let mst_preorder m ?start terminals =
  let terms = dedup terminals in
  match terms with
  | [] -> ([], 0)
  | [ x ] ->
    let d = match start with None -> 0 | Some s -> Metric.dist m s x in
    ([ x ], d)
  | root :: _ ->
    let tree, _ = Mst.metric_mst m terms in
    let children = Hashtbl.create 16 in
    let add_child u v =
      let cur = try Hashtbl.find children u with Not_found -> [] in
      Hashtbl.replace children u (v :: cur)
    in
    List.iter
      (fun (u, v) ->
        add_child u v;
        add_child v u)
      tree;
    let visited = Hashtbl.create 16 in
    let order = ref [] in
    let rec dfs u =
      if not (Hashtbl.mem visited u) then begin
        Hashtbl.replace visited u ();
        order := u :: !order;
        let kids = try Hashtbl.find children u with Not_found -> [] in
        List.iter dfs (List.rev kids)
      end
    in
    dfs root;
    let order = List.rev !order in
    let total = ref 0 in
    let rec walk prev = function
      | [] -> ()
      | x :: rest ->
        total := !total + Metric.dist m prev x;
        walk x rest
    in
    (match (start, order) with
    | Some s, _ -> walk s order
    | None, first :: rest -> walk first rest
    | None, [] -> ());
    (order, !total)

let lower_bound m ?start terminals =
  let terms = dedup terminals in
  let pts = match start with None -> terms | Some s -> dedup (s :: terms) in
  let _, w = Mst.metric_mst m pts in
  w

let upper_bound m ?start terminals =
  let terms = dedup terminals in
  match terms with
  | [] -> 0
  | first :: _ ->
    (* Without a mandatory start, anchoring nearest-neighbour at the first
       terminal makes its initial hop cost 0, so the result is still a
       valid Hamiltonian path over the terminal set. *)
    let nn_start = match start with Some s -> s | None -> first in
    let _, nn = nearest_neighbor m ~start:nn_start terminals in
    let _, pre = mst_preorder m ?start terminals in
    min nn pre
