let unit_weights g = List.for_all (fun e -> e.Graph.w = 1) (Graph.edges g)

(* Below this node count the per-task bookkeeping of the pool costs more
   than the searches themselves. *)
let parallel_threshold = 64

let distances g =
  let n = Graph.n g in
  let single = if unit_weights g then Bfs.distances else Dijkstra.distances in
  if n < parallel_threshold then Array.init n (fun src -> single g ~src)
  else
    (* One independent search per source on the shared domain pool.
       Pool.map merges in submission order, so the matrix (and anything
       derived from it) is identical to the sequential result. *)
    let rows = Dtm_util.Pool.run (fun src -> single g ~src) (List.init n Fun.id) in
    Array.of_list rows

let to_metric g =
  let n = Graph.n g in
  let rows = distances g in
  let flat = Array.make (n * n) 0 in
  for u = 0 to n - 1 do
    Array.blit rows.(u) 0 flat (u * n) n
  done;
  Metric.of_flat ~size:n flat

(* The same cutoff [Metric.materialize] applies to closure oracles: up
   to it the n^2 table is cache-resident and unbeatable per query;
   above it the table stops fitting and the landmark oracle's L * n
   rows take over. *)
let auto_metric g =
  if Graph.n g <= Metric.default_max_size then to_metric g
  else Metric.of_landmark (Landmark.build g)
