let unit_weights g = List.for_all (fun e -> e.Graph.w = 1) (Graph.edges g)

(* Below this node count the per-task bookkeeping of the pool costs more
   than the searches themselves. *)
let parallel_threshold = 64

let distances g =
  let n = Graph.n g in
  let single = if unit_weights g then Bfs.distances else Dijkstra.distances in
  if n < parallel_threshold then Array.init n (fun src -> single g ~src)
  else
    (* One independent search per source on the shared domain pool.
       Pool.map merges in submission order, so the matrix (and anything
       derived from it) is identical to the sequential result. *)
    let rows = Dtm_util.Pool.run (fun src -> single g ~src) (List.init n Fun.id) in
    Array.of_list rows

let to_metric g =
  let n = Graph.n g in
  let rows = distances g in
  let flat = Array.make (n * n) 0 in
  for u = 0 to n - 1 do
    Array.blit rows.(u) 0 flat (u * n) n
  done;
  Metric.of_flat ~size:n flat
