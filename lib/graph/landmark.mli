(** Landmark (ALT) distance oracle: exact shortest-path queries in
    O(L·n) storage instead of the n² flat table.

    An oracle holds L per-landmark distance rows (each a full Dijkstra
    from one landmark).  The rows give O(L) triangle-inequality bounds

    {v lower(u,v) = max_l |d(l,u) - d(l,v)|
      upper(u,v) = min_l  d(l,u) + d(l,v) v}

    and settle the rest with one exact search over the CSR graph: a
    goal-directed (A-star) Dijkstra when the ALT potential is strong
    (structured topologies — grids, lines, trees), a bidirectional
    Dijkstra seeded with the upper bound when it is not (small-world
    graphs, where landmark differences collapse and meeting in the
    middle is asymptotically better).  Queries are exact on any graph
    and pure: per-query state lives in domain-local scratch, so a built
    oracle can be shared across [Dtm_util.Pool] domains like a frozen
    {!Dtm_sim.Router}.

    Build cost is L Dijkstra runs (farthest-point selection); per-query
    cost is O(L) when the bounds coincide, otherwise one pruned search.
    A per-domain direct-mapped cache (16k slots) makes repeated hot
    pairs O(1), which is the access pattern of the open-system engine
    re-evaluating waiter distances step after step. *)

type t

val build : ?landmarks:int -> Graph.t -> t
(** [build g] selects landmarks by farthest-point sweep (first the node
    farthest from node 0, then iteratively the node maximizing the
    distance to the chosen set; disconnected components are covered
    first) and runs one Dijkstra per landmark.  [landmarks] defaults to
    8 plus one per size doubling past 64k nodes, clamped to [n].
    Raises [Invalid_argument] on an empty graph. *)

val select : ?landmarks:int -> n:int -> (int -> int array) -> int array * int array array
(** [select ~n dist_from] runs the farthest-point sweep of {!build}
    against an arbitrary per-source distance supplier (e.g. a
    {!Dtm_sim.Router}'s cached rows) and returns [(landmark ids, rows)]
    ready for {!of_rows}.  Calls [dist_from] once per landmark plus once
    for node 0. *)

val of_rows :
  n:int -> landmarks:int array -> rows:int array array -> Graph.t -> t
(** [of_rows ~n ~landmarks ~rows g] wraps precomputed per-source
    distance arrays — e.g. a frozen {!Dtm_sim.Router}'s source rows —
    without copying them.  [rows.(l).(v)] must be the exact graph
    distance from [landmarks.(l)] to [v]; the arrays must not be
    mutated afterwards.  Raises [Invalid_argument] on length
    mismatches or an empty landmark set. *)

val size : t -> int
val num_landmarks : t -> int

val landmarks : t -> int array
(** The landmark node ids, in selection order (a copy). *)

val storage_words : t -> int
(** Words held by the distance rows: [num_landmarks * size] — the
    figure to compare against the flat table's [size²]. *)

val dist : t -> int -> int -> int
(** Exact shortest-path distance ([max_int] when disconnected); raises
    [Invalid_argument] if a node is out of range. *)

val lower_bound : t -> int -> int -> int
(** O(L) lower bound on {!dist}; [max_int] when a landmark proves the
    pair disconnected. *)

val upper_bound : t -> int -> int -> int
(** O(L) upper bound on {!dist} (a via-landmark walk); [max_int] when
    no landmark reaches both endpoints. *)


(**/**)

val unsafe_dist : t -> int -> int -> int
val unsafe_lower_bound : t -> int -> int -> int
val unsafe_upper_bound : t -> int -> int -> int
(** Bounds-check-free variants for [Metric]'s hot path; out-of-range
    arguments are undefined behaviour. *)

(**/**)
