(** Immutable weighted undirected graphs.

    Nodes are the integers [0, n).  Edge weights are strictly positive
    integers and model communication delays (paper, Section 2.1).  The
    representation is adjacency arrays, built once; all traversals in the
    library go through this module. *)

type t

type edge = { u : int; v : int; w : int }

val of_edges : n:int -> (int * int * int) list -> t
(** [of_edges ~n edges] builds a graph on [n] nodes from [(u, v, w)]
    triples.  Raises [Invalid_argument] on self-loops, nodes out of range,
    non-positive weights, or duplicate edges (in either orientation). *)

val n : t -> int
(** Number of nodes. *)

val num_edges : t -> int

val edges : t -> edge list
(** Each undirected edge exactly once, with [u < v], sorted. *)

val degree : t -> int -> int

val neighbors : t -> int -> (int * int) array
(** [neighbors g u] is the array of [(v, w)] pairs adjacent to [u].  The
    returned array must not be mutated. *)

val iter_neighbors : t -> int -> (int -> int -> unit) -> unit
(** [iter_neighbors g u f] applies [f v w] for each edge [(u, v, w)]. *)

val csr : t -> int array * int array * int array
(** [csr g] is [(off, targets, weights)]: the neighbours of [u] are
    [targets.(i)] with weights [weights.(i)] for
    [off.(u) <= i < off.(u + 1)].  Flat compressed-sparse-row view used
    by the traversal kernels; do not mutate. *)

val edge_weight : t -> int -> int -> int option
(** [edge_weight g u v] is [Some w] if the edge exists. *)

val mem_edge : t -> int -> int -> bool

val max_weight : t -> int
(** Largest edge weight; 0 for edgeless graphs. *)

val is_connected : t -> bool
(** True for the empty and one-node graph. *)

val max_degree : t -> int

val total_weight : t -> int

val pp : Format.formatter -> t -> unit
(** Debug printer: node/edge counts and the edge list when small. *)
