(** All-pairs shortest paths.

    Runs BFS from every source when all weights are 1, Dijkstra otherwise.
    Sources are independent, so graphs of at least 64 nodes fan out over
    the shared {!Dtm_util.Pool} (results merged in source order — the
    matrix is identical to a sequential run at any [-j]).  The resulting
    matrix backs a {!Metric.t} for schedulers that run on arbitrary
    graphs. *)

val distances : Graph.t -> int array array
(** [distances g] is the full matrix; [max_int] marks unreachable pairs. *)

val to_metric : Graph.t -> Metric.t
(** APSP-backed metric for [g], built directly on the flat
    {!Metric.of_flat} backend. *)

val auto_metric : Graph.t -> Metric.t
(** {!to_metric} up to {!Metric.default_max_size} nodes; above that, a
    landmark (ALT) metric ({!Landmark.build}) — n² ints stop being
    affordable exactly where the flat cutoff says so. *)

val unit_weights : Graph.t -> bool
(** True when every edge has weight 1. *)
