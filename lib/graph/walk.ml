type bounds = { lower : int; upper : int; exact : int option }

(* Cheap-first: the MST lower bound and NN/preorder upper bound cost
   O(t^2) distance reads; when they coincide the exact optimum is free.
   Only genuinely ambiguous sets pay for the branch-and-bound search —
   which then starts from the bounds just computed instead of
   recomputing them. *)
let bounds m ?home requesters =
  let terms = Tsp.dedup requesters in
  match terms with
  | [] -> { lower = 0; upper = 0; exact = Some 0 }
  | _ ->
    let lower = Tsp.lower_bound m ?start:home terms in
    let upper = Tsp.upper_bound m ?start:home terms in
    if lower = upper then { lower; upper; exact = Some lower }
    else if List.length terms <= Tsp.max_exact_terminals then begin
      let e = Tsp.exact_within m ?start:home ~lower ~upper terms in
      (* The exact value collapses both bounds, exactly as clamping the
         heuristic bounds against it would. *)
      { lower = e; upper = e; exact = Some e }
    end
    else { lower; upper; exact = None }

let best_lower b = match b.exact with Some e -> e | None -> b.lower
let best_upper b = match b.exact with Some e -> e | None -> b.upper
