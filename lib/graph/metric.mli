(** Distance oracles.

    Schedulers only need pairwise distances, and for the structured
    topologies of the paper these have closed forms (Manhattan distance on
    the grid, Hamming distance on the hypercube, ...).  A [Metric.t]
    abstracts over closed-form oracles and APSP-backed matrices so that a
    scheduler can run on either without caring which.

    Three backends exist: a closure oracle ([make]), a flat row-major
    [int array] ([of_flat], [of_matrix], [materialize]), and a landmark
    (ALT) oracle ([of_landmark]) for graphs too large to materialize.
    The flat backend is validated once at construction; lookups are a
    single bounds check followed by an unchecked read, so the hot loops
    of [Dependency], [Validator], [Tsp], and the simulators pay no
    closure call per distance.  The landmark backend answers exactly via
    goal-directed search in O(L·n) storage; see {!Landmark}. *)

type t

val make : size:int -> (int -> int -> int) -> t
(** [make ~size dist] wraps a distance function over [0, size).  The
    function must be symmetric, zero on the diagonal, and satisfy the
    triangle inequality; {!validate} can verify this on small instances. *)

val of_flat : size:int -> int array -> t
(** [of_flat ~size data] wraps a row-major distance array
    ([data.(u * size + v)] is the distance from [u] to [v]; not copied —
    do not mutate).  Raises [Invalid_argument] unless
    [Array.length data = size * size]. *)

val of_matrix : int array array -> t
(** Copies a precomputed distance matrix into the flat backend. *)

val of_landmark : Landmark.t -> t
(** Wraps an ALT oracle: exact per-query distances from L landmark rows
    plus goal-directed search, in O(L·n) storage.  {!materialize} leaves
    landmark metrics unchanged — they exist precisely because the n²
    table does not fit. *)

val materialize : ?threshold:int -> ?max_size:int -> t -> t
(** [materialize t] memoizes a closure-backed metric into the flat
    backend by evaluating all [size * size] pairs once.  Metrics smaller
    than [threshold] (default 16) are left alone — the closure is cheap
    enough there and the O(size²) table would be pure overhead for
    one-shot uses — as are metrics larger than [max_size] (default 1024),
    whose tables would no longer be comfortably cache- and
    memory-resident.  Flat metrics are returned unchanged. *)

val default_max_size : int
(** {!materialize}'s default size cutoff (1024): the boundary above
    which the library stops building n² tables and switches to the
    landmark backend ({!Apsp.auto_metric}). *)

val size : t -> int

val is_flat : t -> bool
(** True when lookups are backed by the flat array. *)

val is_landmark : t -> bool
(** True when backed by a landmark (ALT) oracle. *)

val landmark : t -> Landmark.t option
(** The underlying ALT oracle, when there is one. *)

val dist : t -> int -> int -> int
(** [dist m u v]; raises [Invalid_argument] if a node is out of range. *)

val unsafe_dist : t -> int -> int -> int
(** [dist] without the bounds check: the caller must guarantee
    [0 <= u, v < size t].  On the flat backend this compiles to a single
    unchecked array read.  Out-of-range arguments are undefined
    behaviour. *)

val lower_bound : t -> int -> int -> int
(** Cheap lower bound on [dist t u v]: O(L) landmark bound on the
    landmark backend, the exact distance elsewhere.  Lets ring searches
    and branch-and-bound prune without paying a full query.  Raises
    [Invalid_argument] if a node is out of range. *)

val upper_bound : t -> int -> int -> int
(** Cheap upper bound on [dist t u v], dual to {!lower_bound}. *)

val diameter : t -> int
(** Maximum finite pairwise distance (O(size^2) lookups; array scan on
    the flat backend). *)

val max_dist_among : t -> int list -> int
(** Largest pairwise distance within the given node list; 0 for lists of
    length < 2. *)

val validate : t -> (unit, string) result
(** Checks symmetry, identity, and triangle inequality, stopping at the
    first violation.  O(size^3) when valid; intended for tests. *)
