let search g ~src =
  let n = Graph.n g in
  let off, nbr, _ = Graph.csr g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  (* Each node enters the frontier at most once, so a flat int array with
     head/tail cursors replaces Queue — no allocation per visited node. *)
  let queue = Array.make (max 1 n) 0 in
  let head = ref 0 and tail = ref 0 in
  dist.(src) <- 0;
  queue.(0) <- src;
  tail := 1;
  while !head < !tail do
    let u = Array.unsafe_get queue !head in
    incr head;
    let du = Array.unsafe_get dist u + 1 in
    let hi = Array.unsafe_get off (u + 1) in
    for i = Array.unsafe_get off u to hi - 1 do
      let v = Array.unsafe_get nbr i in
      if Array.unsafe_get dist v = max_int then begin
        Array.unsafe_set dist v du;
        Array.unsafe_set parent v u;
        Array.unsafe_set queue !tail v;
        incr tail
      end
    done
  done;
  (dist, parent)

let distances g ~src = fst (search g ~src)
let parents g ~src = snd (search g ~src)

let path g ~src ~dst =
  let dist, parent = search g ~src in
  if dist.(dst) = max_int then None
  else begin
    let rec build v acc = if v = src then src :: acc else build parent.(v) (v :: acc) in
    Some (build dst [])
  end
