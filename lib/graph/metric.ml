type backend =
  | Oracle of (int -> int -> int)
  | Flat of int array (* row-major, length size * size *)
  | Landmark of Landmark.t (* ALT oracle: L rows + on-demand A* *)

type t = { size : int; backend : backend }

let make ~size dist =
  if size < 0 then invalid_arg "Metric.make: negative size";
  { size; backend = Oracle dist }

let of_flat ~size data =
  if size < 0 then invalid_arg "Metric.of_flat: negative size";
  if Array.length data <> size * size then
    invalid_arg "Metric.of_flat: length <> size * size";
  { size; backend = Flat data }

let of_matrix m =
  let size = Array.length m in
  Array.iter
    (fun row ->
      if Array.length row <> size then invalid_arg "Metric.of_matrix: ragged")
    m;
  let data = Array.make (size * size) 0 in
  for u = 0 to size - 1 do
    Array.blit m.(u) 0 data (u * size) size
  done;
  { size; backend = Flat data }

let of_landmark lm = { size = Landmark.size lm; backend = Landmark lm }

let size t = t.size

let is_flat t = match t.backend with Flat _ -> true | Oracle _ | Landmark _ -> false

let is_landmark t =
  match t.backend with Landmark _ -> true | Oracle _ | Flat _ -> false

let landmark t = match t.backend with Landmark lm -> Some lm | _ -> None

(* Hot path: caller guarantees [0 <= u, v < size].  The flat case is a
   single multiply-add and an unchecked read. *)
let unsafe_dist t u v =
  match t.backend with
  | Flat d -> Array.unsafe_get d ((u * t.size) + v)
  | Oracle f -> f u v
  | Landmark lm -> Landmark.unsafe_dist lm u v

let dist t u v =
  if u < 0 || u >= t.size || v < 0 || v >= t.size then
    invalid_arg "Metric.dist: node out of range";
  unsafe_dist t u v

(* Bound pair: exact backends answer with the distance itself; the
   landmark backend answers in O(L) without running a search.  Callers
   that only need a bracket (ring searches, pruning) stay cheap on
   every backend. *)
let lower_bound t u v =
  if u < 0 || u >= t.size || v < 0 || v >= t.size then
    invalid_arg "Metric.lower_bound: node out of range";
  match t.backend with
  | Landmark lm -> Landmark.unsafe_lower_bound lm u v
  | Flat _ | Oracle _ -> unsafe_dist t u v

let upper_bound t u v =
  if u < 0 || u >= t.size || v < 0 || v >= t.size then
    invalid_arg "Metric.upper_bound: node out of range";
  match t.backend with
  | Landmark lm -> Landmark.unsafe_upper_bound lm u v
  | Flat _ | Oracle _ -> unsafe_dist t u v

let default_threshold = 16
let default_max_size = 1024

let materialize ?(threshold = default_threshold) ?(max_size = default_max_size)
    t =
  match t.backend with
  | Flat _ -> t
  (* The landmark backend exists precisely because the flat table does
     not fit; materializing it would reintroduce the n^2 wall. *)
  | Landmark _ -> t
  | Oracle f ->
    if t.size < threshold || t.size > max_size then t
    else begin
      let n = t.size in
      let data = Array.make (n * n) 0 in
      for u = 0 to n - 1 do
        let base = u * n in
        for v = 0 to n - 1 do
          Array.unsafe_set data (base + v) (f u v)
        done
      done;
      { t with backend = Flat data }
    end

let diameter t =
  let n = t.size in
  match t.backend with
  | Flat d ->
    let best = ref 0 in
    for u = 0 to n - 1 do
      let base = u * n in
      for v = u + 1 to n - 1 do
        let x = Array.unsafe_get d (base + v) in
        if x < max_int && x > !best then best := x
      done
    done;
    !best
  | Oracle _ | Landmark _ ->
    let best = ref 0 in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        let x = unsafe_dist t u v in
        if x < max_int then best := max !best x
      done
    done;
    !best

let max_dist_among t nodes =
  let best = ref 0 in
  let rec outer = function
    | [] -> ()
    | u :: rest ->
      List.iter (fun v -> best := max !best (dist t u v)) rest;
      outer rest
  in
  outer nodes;
  !best

exception Invalid of string

let validate t =
  (* Early exit: the triple loop is O(size^3), so stop at the first
     violation instead of scanning the rest of the space. *)
  let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt in
  let d u v = unsafe_dist t u v in
  try
    for u = 0 to t.size - 1 do
      if d u u <> 0 then fail "dist(%d,%d) <> 0" u u;
      for v = 0 to t.size - 1 do
        if d u v <> d v u then fail "asymmetric at (%d,%d)" u v;
        if u <> v && d u v <= 0 then fail "non-positive dist(%d,%d)" u v
      done
    done;
    for u = 0 to t.size - 1 do
      for v = 0 to t.size - 1 do
        for w = 0 to t.size - 1 do
          let duv = d u v and duw = d u w and dwv = d w v in
          if duw < max_int && dwv < max_int && duv > duw + dwv then
            fail "triangle violated: d(%d,%d) > d(%d,%d)+d(%d,%d)" u v u w w v
        done
      done
    done;
    Ok ()
  with Invalid e -> Error e
