(** Travelling-salesman {e path} bounds over a metric.

    The paper's optimal-time surrogate is the shortest walk an object must
    make through the nodes that request it (Sections 1.1 and 8).  Under a
    shortest-path metric, the shortest such walk equals the shortest
    Hamiltonian path on the terminal set in the metric closure.  This
    module provides certified lower/upper bounds and an exact solver for
    small terminal sets.

    The exact solver is cheap-first: callers that already hold matching
    lower and upper bounds pay nothing ({!exact_within} returns
    immediately), and otherwise a branch-and-bound search prunes with the
    admissible MST-of-the-remainder heuristic, falling back to the
    Held-Karp dynamic program only when pruning degenerates.  All exact
    searches run on a per-domain scratch arena (flat arrays, grown once,
    reused across calls), so the per-object loop of
    [Lower_bound.compute] allocates nothing after warm-up. *)

val max_exact_terminals : int
(** Largest terminal count accepted by {!exact_path_length} (15: the
    Held-Karp fallback is O(2^t t^2)). *)

val dedup : int list -> int list
(** Sorted terminal list with duplicates merged ([Int.compare] on a flat
    array internally — the hot dedup path makes no polymorphic-compare
    calls). *)

val exact_path_length : Metric.t -> ?start:int -> int list -> int
(** [exact_path_length m ?start terminals] is the length of a shortest
    path visiting every terminal once, optionally beginning at [start]
    (which need not be a terminal).  Duplicates are merged.  Returns 0 for
    an empty or singleton set (with no [start]).  Raises
    [Invalid_argument] beyond {!max_exact_terminals} terminals. *)

val exact_within :
  Metric.t -> ?start:int -> lower:int -> upper:int -> int list -> int
(** [exact_within m ?start ~lower ~upper terminals] is
    {!exact_path_length} for a caller that has already computed bounds:
    [lower] must be a valid lower bound (e.g. {!lower_bound}) and [upper]
    the length of a {e known feasible} walk (e.g. {!upper_bound} — it
    seeds the branch-and-bound incumbent, so a non-achievable value would
    be unsound).  When [lower = upper] the answer is free. *)

val held_karp_path_length : Metric.t -> ?start:int -> int list -> int
(** The transcribed seed implementation (full Held-Karp DP over subsets,
    fresh matrices): kept as the test reference that pins
    {!exact_path_length}'s branch-and-bound to the exact optimum.  Same
    contract as {!exact_path_length}. *)

val nearest_neighbor : Metric.t -> start:int -> int list -> int list * int
(** Greedy visiting order from [start] (not included in the returned
    order unless it is a terminal) and its length.  An upper bound. *)

val mst_preorder : Metric.t -> ?start:int -> int list -> int list * int
(** Visiting order obtained by a preorder traversal of the metric MST —
    the classic 2-approximation — and its length. *)

val lower_bound : Metric.t -> ?start:int -> int list -> int
(** Certified lower bound on the shortest path through the terminals
    ([start] included as a mandatory first node when given): the metric
    MST weight, which every Hamiltonian path dominates. *)

val upper_bound : Metric.t -> ?start:int -> int list -> int
(** Best of {!nearest_neighbor} and {!mst_preorder}. *)
