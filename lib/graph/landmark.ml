(* Landmark (ALT) distance oracle.

   [Metric.Flat] materializes n^2 distances, which caps topologies at
   ~10^3 nodes; this backend stores only L per-landmark distance rows
   (L * n ints) and answers arbitrary queries exactly with a
   goal-directed (A-star) Dijkstra over the CSR graph, pruned by the
   triangle-inequality potential

     h(x) = max_l |d(l, x) - d(l, v)|   <=  d(x, v)

   which is a consistent heuristic, so the first settlement of the
   target is the exact shortest-path distance.  Queries where the
   potential is too weak to steer (small-world graphs) fall back to a
   bidirectional Dijkstra instead — see [bidi] below.  The same rows
   give the O(L) bound pair

     lower(u, v) = max_l |d(l, u) - d(l, v)|
     upper(u, v) = min_l  d(l, u) + d(l, v)

   for callers that only need brackets; when the two coincide the exact
   query is free, which on path-like graphs resolves most queries
   without touching the priority queue at all.

   Landmarks are chosen by farthest-point selection: the first is the
   node farthest from node 0 (so it lands on the periphery), each next
   one maximizes the distance to the landmarks already chosen, ties
   broken towards the smaller node id.  Selection and the verdicts it
   feeds are deterministic.

   Per-query state (distance labels, heuristic memo, priority queue and
   a direct-mapped exact-pair cache) lives in a per-domain scratch
   keyed off the oracle, so a frozen oracle value can be captured by
   closures running on [Dtm_util.Pool] domains: queries are pure reads
   of the shared rows plus writes to domain-local scratch. *)

type t = {
  n : int;
  landmarks : int array;  (* node ids, in selection order *)
  rows : int array array;  (* rows.(l).(v) = d(landmarks.(l), v) *)
  off : int array;  (* CSR of the underlying graph *)
  nbr : int array;
  wt : int array;
  wt_uniform : bool;  (* all edge weights equal: bidi skips ALT pruning *)
  scratch : scratch Domain.DLS.key;
}

and scratch = {
  mutable gdist : int array;  (* A* g-values / forward labels, stamped *)
  mutable bdist : int array;  (* backward labels (bidirectional search) *)
  mutable hmemo : int array;  (* h-values for the current target, stamped *)
  mutable bmemo : int array;  (* h-values towards the source (bidi only) *)
  mutable stamp : int array;
  mutable epoch : int;
  (* Per-query precomputation: [tv.(l)] caches d(landmark l, target) for
     the A-star heuristic (-1 when the target misses the landmark), and
     the [sel_*] triple holds the [nsel] landmark rows chosen to drive
     bidi pruning together with their endpoint distances.  Reading the
     endpoint rows once per query instead of once per touched node is
     what keeps the per-touch cost at [nsel] array reads. *)
  mutable tv : int array;
  mutable sel_rows : int array array;
  mutable sel_dv : int array;
  mutable sel_du : int array;
  mutable nsel : int;
  pq : int Dtm_util.Pqueue.t;
  bq : int Dtm_util.Pqueue.t;
  (* Direct-mapped exact-pair cache: [ckey.(i)] holds the encoded pair
     (or -1) whose exact distance is [cval.(i)].  One slot per hash —
     a stamped 1-way LRU; hot (pos, node) pairs in the open-system
     engine hit it on every re-evaluation. *)
  ckey : int array;
  cval : int array;
}

let cache_bits = 14
let cache_slots = 1 lsl cache_bits

let make_scratch () =
  {
    gdist = [||];
    bdist = [||];
    hmemo = [||];
    bmemo = [||];
    stamp = [||];
    epoch = 0;
    tv = [||];
    sel_rows = [||];
    sel_dv = [||];
    sel_du = [||];
    nsel = 0;
    pq = Dtm_util.Pqueue.create ();
    bq = Dtm_util.Pqueue.create ();
    ckey = Array.make cache_slots (-1);
    cval = Array.make cache_slots 0;
  }

let size t = t.n
let num_landmarks t = Array.length t.landmarks
let landmarks t = Array.copy t.landmarks

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let default_landmarks n =
  (* Enough rows to steer A* without drowning the cache: 8 up to 64k
     nodes, then four more per doubling (24 at 10^6).  Rows on the
     unit-weight topologies are BFS-built, so the marginal row costs a
     linear scan; what it buys at large n is measurable — on a 10^6
     grid the lo = hi "free query" rate climbs from ~52% at 12 rows to
     ~65% at 24, and on power-law graphs the tighter upper bound seeds
     the bidirectional search's incumbent. *)
  let rec extra n acc = if n <= 65_536 then acc else extra (n / 2) (acc + 4) in
  min n (8 + extra n 0)


(* Whether every edge carries the same weight.  On such graphs bidi
   searches are hop-bounded and tiny, and the per-touch landmark-row
   reads behind ALT pruning cost more than the labels they prune; the
   pruning pays off exactly when weights spread the explored ball. *)
let weights_uniform wt =
  let m = Array.length wt in
  m = 0
  ||
  let w0 = wt.(0) in
  let rec go i = i >= m || (wt.(i) = w0 && go (i + 1)) in
  go 1

let of_rows ~n ~landmarks ~rows graph =
  if Array.length landmarks = 0 then
    invalid_arg "Landmark.of_rows: no landmarks";
  if Array.length landmarks <> Array.length rows then
    invalid_arg "Landmark.of_rows: landmarks/rows length mismatch";
  if Graph.n graph <> n then invalid_arg "Landmark.of_rows: graph size mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Landmark.of_rows: row length mismatch")
    rows;
  let off, nbr, wt = Graph.csr graph in
  {
    n;
    landmarks;
    rows;
    off;
    nbr;
    wt;
    wt_uniform = weights_uniform wt;
    scratch = Domain.DLS.new_key make_scratch;
  }

let select ?landmarks:(want : int option) ~n dist_from =
  if n < 1 then invalid_arg "Landmark.select: empty graph";
  let want =
    match want with
    | None -> default_landmarks n
    | Some l ->
      if l < 1 then invalid_arg "Landmark.select: landmarks < 1";
      min l n
  in
  let chosen = Array.make want 0 in
  let rows = Array.make want [||] in
  (* Farthest-point sweep.  [mind.(v)] is the distance from [v] to the
     nearest chosen landmark; the next landmark maximizes it.  Nodes at
     max_int (other components) win first, so every component gets a
     landmark before refinement starts. *)
  let row0 = dist_from 0 in
  let first = ref 0 and best = ref (-1) in
  for v = 0 to n - 1 do
    let d = row0.(v) in
    let d = if d = max_int then -1 else d in
    if d > !best then begin
      best := d;
      first := v
    end
  done;
  chosen.(0) <- !first;
  rows.(0) <- dist_from !first;
  let mind = Array.copy rows.(0) in
  for l = 1 to want - 1 do
    let pick = ref 0 and best = ref (-1) in
    for v = 0 to n - 1 do
      (* max_int (uncovered component) sorts above every finite
         distance; ties keep the smallest id. *)
      let d = mind.(v) in
      if d > !best then begin
        best := d;
        pick := v
      end
    done;
    chosen.(l) <- !pick;
    let row = dist_from !pick in
    rows.(l) <- row;
    for v = 0 to n - 1 do
      if row.(v) < mind.(v) then mind.(v) <- row.(v)
    done
  done;
  (chosen, rows)

let build ?landmarks graph =
  let n = Graph.n graph in
  if n < 1 then invalid_arg "Landmark.build: empty graph";
  (* Unit-weight graphs (every paper topology except the weighted
     bridges) take BFS rows: at 10^6 nodes a heap-free traversal per
     landmark is the difference between seconds and tens of seconds of
     build time.  Weighted graphs keep Dijkstra. *)
  let row_of =
    let _, _, wt = Graph.csr graph in
    if Array.length wt = 0 || (weights_uniform wt && wt.(0) = 1) then
      fun src -> Bfs.distances graph ~src
    else fun src -> Dijkstra.distances graph ~src
  in
  let chosen, rows = select ?landmarks ~n row_of in
  let off, nbr, wt = Graph.csr graph in
  {
    n;
    landmarks = chosen;
    rows;
    off;
    nbr;
    wt;
    wt_uniform = weights_uniform wt;
    scratch = Domain.DLS.new_key make_scratch;
  }

(* ------------------------------------------------------------------ *)
(* Bounds                                                             *)
(* ------------------------------------------------------------------ *)

let check t u v name =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg (name ^ ": node out of range")

let unsafe_lower_bound t u v =
  if u = v then 0
  else begin
    let rows = t.rows in
    let best = ref 0 in
    (try
       for l = 0 to Array.length rows - 1 do
         let row = Array.unsafe_get rows l in
         let du = Array.unsafe_get row u and dv = Array.unsafe_get row v in
         if du = max_int || dv = max_int then begin
           (* Exactly one endpoint reaches this landmark: the pair is
              disconnected and the lower bound is infinite. *)
           if du <> dv then begin
             best := max_int;
             raise Exit
           end
         end
         else begin
           let d = if du >= dv then du - dv else dv - du in
           if d > !best then best := d
         end
       done
     with Exit -> ());
    !best
  end

let unsafe_upper_bound t u v =
  if u = v then 0
  else begin
    let rows = t.rows in
    let best = ref max_int in
    for l = 0 to Array.length rows - 1 do
      let row = Array.unsafe_get rows l in
      let du = Array.unsafe_get row u and dv = Array.unsafe_get row v in
      if du < max_int && dv < max_int && du + dv < !best then best := du + dv
    done;
    !best
  end

let lower_bound t u v =
  check t u v "Landmark.lower_bound";
  unsafe_lower_bound t u v

let upper_bound t u v =
  check t u v "Landmark.upper_bound";
  unsafe_upper_bound t u v

(* ------------------------------------------------------------------ *)
(* Exact queries: goal-directed Dijkstra                              *)
(* ------------------------------------------------------------------ *)

(* How many landmark rows bidi consults per touched node.  Goldberg's
   ALT observation: for a fixed (u, v) pair almost all the pruning power
   comes from the couple of landmarks "behind" u or v; the rest cost
   row reads without tightening the bound.  Four of eight rows keeps
   >90% of the pruning at half the per-touch cache misses. *)
let max_active = 2

let ensure_scratch t =
  let s = Domain.DLS.get t.scratch in
  if Array.length s.gdist < t.n then begin
    s.gdist <- Array.make t.n 0;
    s.bdist <- Array.make t.n 0;
    s.hmemo <- Array.make t.n 0;
    s.bmemo <- Array.make t.n 0;
    s.stamp <- Array.make t.n 0;
    s.epoch <- 0
  end;
  if Array.length s.tv < Array.length t.rows then begin
    s.tv <- Array.make (Array.length t.rows) (-1);
    s.sel_rows <- Array.make max_active [||];
    s.sel_dv <- Array.make max_active 0;
    s.sel_du <- Array.make max_active 0;
    s.nsel <- 0
  end;
  s

(* h(x) = max_l |d(l,x) - d(l,target)|, memoized per (query, node).
   [s.tv] caches the target's landmark distances for the whole query
   (-1 marks landmarks the target cannot reach), so each first touch
   costs one row read per landmark, not two.  Disconnected-from-landmark
   nodes get h = 0 (still admissible): the search itself discovers
   unreachability. *)
let heuristic t s x =
  if s.stamp.(x) = s.epoch then s.hmemo.(x)
  else begin
    let rows = t.rows in
    let tv = s.tv in
    let best = ref 0 in
    for l = 0 to Array.length rows - 1 do
      let dv = Array.unsafe_get tv l in
      if dv >= 0 then begin
        let dx = Array.unsafe_get (Array.unsafe_get rows l) x in
        if dx < max_int then begin
          let d = if dx >= dv then dx - dv else dv - dx in
          if d > !best then best := d
        end
      end
    done;
    s.stamp.(x) <- s.epoch;
    s.hmemo.(x) <- !best;
    s.gdist.(x) <- max_int;
    !best
  end

let astar t s u v ~cap =
  s.epoch <- s.epoch + 1;
  Dtm_util.Pqueue.clear s.pq;
  (* Equal-f ties break towards larger g.  On grids the ALT potential is
     exact inside the u–v rectangle, so every node there shares the same
     f; without the tie-break A-star settles the whole rectangle, with
     it the search walks one corridor.  The composite key
     [(f lsl 20) lor (gmask - g)] preserves the f-order whenever [cap]
     is small enough not to overflow; huge-weight graphs degrade to the
     plain key. *)
  let shift = if cap < 1 lsl 40 then 20 else 0 in
  let gmask = (1 lsl shift) - 1 in
  let key f g = (f lsl shift) lor (gmask - min g gmask) in
  for l = 0 to Array.length t.rows - 1 do
    let dv = t.rows.(l).(v) in
    s.tv.(l) <- (if dv = max_int then -1 else dv)
  done;
  let h0 = heuristic t s u in
  s.gdist.(u) <- 0;
  Dtm_util.Pqueue.push s.pq ~prio:(key h0 0) u;
  let answer = ref max_int in
  (try
     let rec loop () =
       match Dtm_util.Pqueue.pop s.pq with
       | None -> ()
       | Some (k, x) ->
         if x = v then begin
           answer := s.gdist.(x);
           raise Exit
         end;
         (* Lazy deletion: stale entries carry an f above the node's
            current label + heuristic. *)
         let f = k lsr shift in
         if f = s.gdist.(x) + heuristic t s x then begin
           let g = s.gdist.(x) in
           let hi = Array.unsafe_get t.off (x + 1) in
           for i = Array.unsafe_get t.off x to hi - 1 do
             let y = Array.unsafe_get t.nbr i in
             let ng = g + Array.unsafe_get t.wt i in
             let hy = heuristic t s y in
             (* [heuristic] initializes the label on first touch. *)
             if ng < s.gdist.(y) && ng + hy <= cap then begin
               s.gdist.(y) <- ng;
               Dtm_util.Pqueue.push s.pq ~prio:(key (ng + hy) ng) y
             end
           done
         end;
         loop ()
     in
     loop ()
   with Exit -> ());
  !answer

(* Bidirectional Dijkstra for the queries where the ALT potential is
   weak.  On expander-like graphs (power-law, hypercube cores) every
   pairwise distance concentrates near the average, so
   max_l |d(l,u) - d(l,v)| is close to 0 and A-star degenerates to a
   full Dijkstra over the ball of radius hi — nearly the whole graph.
   Meeting in the middle explores two balls of radius ~d/2 instead,
   which on a branching-b graph is ~sqrt(b^d): thousands of nodes
   instead of all of them.  The landmark upper bound [hi] is the length
   of a real u-landmark-v walk, so it seeds the incumbent; the search
   stops when the two frontiers' minima sum past it. *)
(* The caller preselects the pruning rows ([s.sel_rows]/[s.sel_du]/
   [s.sel_dv]/[s.nsel]) — the ranking rides on the bounds pass that
   already reads every row at both endpoints, so selection costs the
   query nothing here. *)
let bidi t s u v ~seed =
  s.epoch <- s.epoch + 1;
  Dtm_util.Pqueue.clear s.pq;
  Dtm_util.Pqueue.clear s.bq;
  (* First touch memoizes the landmark bounds towards both endpoints:
     [hmemo.(x)] bounds d(x, v), [bmemo.(x)] bounds d(x, u).  They are
     pruning bounds, not search potentials — the queues stay keyed on
     plain g — so the classic Dijkstra termination proof is untouched;
     see the pruning note in [expand]. *)
  let touch x =
    if s.stamp.(x) <> s.epoch then begin
      s.stamp.(x) <- s.epoch;
      s.gdist.(x) <- max_int;
      s.bdist.(x) <- max_int;
      let hf = ref 0 and hb = ref 0 in
      for k = 0 to s.nsel - 1 do
        let dx = Array.unsafe_get (Array.unsafe_get s.sel_rows k) x in
        (* Selected rows have finite endpoint distances by
           construction; only [x] can miss the landmark. *)
        if dx < max_int then begin
          let dv = Array.unsafe_get s.sel_dv k in
          let d = if dx >= dv then dx - dv else dv - dx in
          if d > !hf then hf := d;
          let du = Array.unsafe_get s.sel_du k in
          let d = if dx >= du then dx - du else du - dx in
          if d > !hb then hb := d
        end
      done;
      s.hmemo.(x) <- !hf;
      s.bmemo.(x) <- !hb
    end
  in
  touch u;
  touch v;
  s.gdist.(u) <- 0;
  s.bdist.(v) <- 0;
  Dtm_util.Pqueue.push s.pq ~prio:0 u;
  Dtm_util.Pqueue.push s.bq ~prio:0 v;
  let best = ref seed in
  (* The graph is undirected, so both searches scan the same CSR rows;
     the caller passes which label array is "mine" vs "theirs", and
     [htoward] is the memo bounding the distance to *this* search's
     target (hmemo forward, bmemo backward). *)
  let expand mine theirs htoward myq g x =
    if g = Array.unsafe_get mine x then begin
      let hi_i = Array.unsafe_get t.off (x + 1) in
      for i = Array.unsafe_get t.off x to hi_i - 1 do
        let y = Array.unsafe_get t.nbr i in
        let ng = g + Array.unsafe_get t.wt i in
        if ng < !best then begin
          touch y;
          (* ALT pruning: any u-v path through y is at least
             g(y) + d(y, target) >= ng + htoward.(y), so when that
             already meets the incumbent, y cannot improve it and the
             label is not worth queueing.  On weighted small-world
             graphs this cuts the queued frontier by more than half. *)
          if
            ng < Array.unsafe_get mine y
            && ng + Array.unsafe_get htoward y < !best
          then begin
            Array.unsafe_set mine y ng;
            Dtm_util.Pqueue.push myq ~prio:ng y;
            let other = Array.unsafe_get theirs y in
            if other < max_int && ng + other < !best then best := ng + other
          end
        end
      done
    end
  in
  let rec loop () =
    match (Dtm_util.Pqueue.peek s.pq, Dtm_util.Pqueue.peek s.bq) with
    | None, None -> ()
    | Some (kf, _), Some (kb, _) when kf + kb >= !best -> ()
    | fo, bo ->
      let take_fwd =
        match (fo, bo) with
        | Some (kf, _), Some (kb, _) -> kf <= kb
        | Some _, None -> true
        | None, _ -> false
      in
      if take_fwd then begin
        match Dtm_util.Pqueue.pop s.pq with
        | Some (g, x) ->
          expand s.gdist s.bdist s.hmemo s.pq g x;
          loop ()
        | None -> ()
      end
      else begin
        match Dtm_util.Pqueue.pop s.bq with
        | Some (g, x) ->
          expand s.bdist s.gdist s.bmemo s.bq g x;
          loop ()
        | None -> ()
      end
  in
  loop ();
  !best

let unsafe_dist t u v =
  if u = v then 0
  else begin
    (* One fused pass over the rows: the lower bound, the upper bound
       and bidi's two-best-row ranking all derive from the same
       (row.(u), row.(v)) pair, so computing them together halves the
       strided row reads per query and makes the pruning-row selection
       free — it used to be a third full scan inside [bidi]. *)
    let rows = t.rows in
    let lo = ref 0 and hi = ref max_int in
    let b1 = ref (-1) and s1 = ref (-1) in
    let b2 = ref (-1) and s2 = ref (-1) in
    (try
       for l = 0 to Array.length rows - 1 do
         let row = Array.unsafe_get rows l in
         let du = Array.unsafe_get row u and dv = Array.unsafe_get row v in
         if du = max_int || dv = max_int then begin
           (* Exactly one endpoint reaches this landmark: the pair is
              disconnected and the lower bound is infinite. *)
           if du <> dv then begin
             lo := max_int;
             raise Exit
           end
         end
         else begin
           let d = if du >= dv then du - dv else dv - du in
           if d > !lo then lo := d;
           if du + dv < !hi then hi := du + dv;
           (* Streaming top-2, first-maximum wins on ties — the same
              rows the removed selection scan inside [bidi] picked. *)
           if d > !s1 then begin
             b2 := !b1;
             s2 := !s1;
             b1 := l;
             s1 := d
           end
           else if d > !s2 then begin
             b2 := l;
             s2 := d
           end
         end
       done
     with Exit -> ());
    let lo = !lo and hi = !hi in
    if lo = max_int then max_int
    else if lo = hi then lo
    else begin
      let s = ensure_scratch t in
      (* Canonical orientation: the metric is symmetric, so (u, v) and
         (v, u) share a cache slot. *)
      let a, b = if u < v then (u, v) else (v, u) in
      let key = (a * t.n) + b in
      let slot = key land (cache_slots - 1) in
      if Array.unsafe_get s.ckey slot = key then Array.unsafe_get s.cval slot
      else begin
        (* Dispatch on heuristic strength: when the ALT lower bound
           recovers at least half the upper bound, goal direction is
           doing real work (grids, lines, trees) and A-star wins; when
           it does not (small-world graphs, where all landmark
           differences collapse) the heuristic is ballast and meeting
           in the middle is asymptotically better. *)
        let d =
          if 2 * lo >= hi then astar t s a b ~cap:hi
          else begin
            (* Hand bidi its pruning rows: the two strongest from the
               pass above, endpoint distances re-read in canonical
               (a, b) orientation.  Uniform-weight graphs skip pruning
               entirely (the heuristic cannot separate frontiers). *)
            s.nsel <- 0;
            if (not t.wt_uniform) && !b1 >= 0 then begin
              let row = rows.(!b1) in
              s.sel_rows.(0) <- row;
              s.sel_du.(0) <- row.(a);
              s.sel_dv.(0) <- row.(b);
              s.nsel <- 1;
              if !b2 >= 0 then begin
                let row = rows.(!b2) in
                s.sel_rows.(1) <- row;
                s.sel_du.(1) <- row.(a);
                s.sel_dv.(1) <- row.(b);
                s.nsel <- 2
              end
            end;
            bidi t s a b ~seed:hi
          end
        in
        s.ckey.(slot) <- key;
        s.cval.(slot) <- d;
        d
      end
    end
  end

let dist t u v =
  check t u v "Landmark.dist";
  unsafe_dist t u v

(* L * n ints plus the CSR aliases: the figure DESIGN.md quotes against
   the n^2 flat table. *)
let storage_words t = num_landmarks t * t.n
