(** Fixed-size domain pool with deterministic, order-preserving joins.

    The experiment suite measures thousands of independent per-seed
    instances; this module fans that work out across OCaml 5 domains
    while guaranteeing that parallel output is {e byte-identical} to a
    sequential run: results are merged in submission order, every task
    owns its inputs (each seed builds its own {!Prng.t}), and the first
    raised exception is re-raised deterministically (lowest submission
    index wins).

    Blocked joins {e help}: a caller waiting for its batch pops and runs
    queued tasks instead of idling, so nested [map] calls from inside a
    pool task (e.g. the registry parallelizing over experiments while
    each experiment parallelizes over seeds) cannot deadlock and still
    use every domain. *)

type t

val create : jobs:int -> t
(** [create ~jobs] makes a pool of total parallelism [jobs] >= 1
    (the caller participates, so [jobs - 1] worker domains are
    spawned).  [jobs = 1] spawns nothing and runs everything in the
    calling domain. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element of [xs], possibly in
    parallel, and returns the results in the order of [xs].  If any
    application raises, the exception of the earliest-submitted failing
    element is re-raised after the whole batch has settled. *)

val bsp : t -> workers:int -> (round:int -> int -> bool) -> unit
(** [bsp t ~workers step] runs [workers] cells in lockstep
    bulk-synchronous rounds: round [r] applies [step ~round:r i] to every
    cell index [i] (possibly in parallel) and only starts round [r + 1]
    once all cells have finished round [r] — the join of the underlying
    {!map} is the barrier, and its lock hand-off makes every write a cell
    performed during round [r] (shared mailboxes, counters) visible to
    all cells in round [r + 1] without further synchronization, provided
    no location is written by two cells in the same round.  The loop
    continues while {e any} cell returns [true] and stops after the first
    round in which all return [false].  Cells are submitted in index
    order, so the computation is byte-identical at any pool size,
    including a sequential [jobs = 1] pool. *)

val map_reduce :
  t -> map:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> init:'acc -> 'a list -> 'acc
(** [map_reduce t ~map ~reduce ~init xs] folds [reduce] over the mapped
    results {e in submission order} — exactly
    [List.fold_left reduce init (Pool.map t map xs)] — so any
    non-commutative merge (float accumulation, list building, table
    rows) behaves as in a sequential run. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent.  Any [map] still in flight in
    another domain finishes (its caller helps), but new work submitted
    after [shutdown] runs in the submitting domain only. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down
    afterwards (also on exceptions). *)

(** {1 The shared default pool}

    Library code ([Dtm_expt.Runner], [Dtm_analysis.Analyze], ...) draws
    on one process-wide pool so that a single [-j N] flag controls the
    parallelism of the whole measurement stack. *)

val default_jobs : unit -> int
(** The configured default parallelism; initially
    [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** [set_default_jobs n] makes subsequent {!default} pools use
    parallelism [n] >= 1 ([-j N]).  Call it before the first {!run};
    changing it later replaces the shared pool at the next {!default}
    call (the old one is shut down when idle). *)

val default : unit -> t
(** The shared pool, created on first use with {!default_jobs}.
    Worker domains are joined automatically at process exit. *)

val run : ('a -> 'b) -> 'a list -> 'b list
(** [run f xs] = [map (default ()) f xs]. *)
