(** Small descriptive-statistics helpers for the experiment harness. *)

val mean : float array -> float
(** Arithmetic mean; raises [Invalid_argument] on an empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for arrays of length
    <= 1. *)

val min_max : float array -> float * float

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0, 100], by linear interpolation on the
    sorted data. *)

val median : float array -> float

val geometric_mean : float array -> float
(** Requires strictly positive entries. *)

val linear_regression : (float * float) array -> float * float
(** [linear_regression pts] returns [(slope, intercept)] of the
    least-squares line through [pts].  Requires >= 2 points with distinct
    abscissae. *)

val log2_slope : (float * float) array -> float
(** Slope of [log2 y] against [log2 x]: the empirical growth exponent.
    Requires positive coordinates. *)

val ranks : float array -> float array
(** Fractional (average) 1-based ranks: ties share the mean of the rank
    range they span. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation: Pearson correlation of the fractional
    ranks, in [-1, 1].  Returns 0 when either side is constant (no
    ordering information).  Raises [Invalid_argument] on mismatched
    lengths or fewer than 2 points. *)

val histogram : float array -> bins:int -> (float * int) array
(** [histogram xs ~bins] buckets [xs] into [bins] equal-width bins over
    [min, max]; returns (bin lower edge, count). *)

(** Bounded sliding window of integer samples (e.g. latencies in steps)
    with exact nearest-rank percentiles.  The ring is allocated at
    [create] and [add] never allocates, so a 10^7-transaction
    steady-state run can record every latency without GC pressure;
    [percentile] sorts a copy of the live samples (report-time only).
    Once more than [capacity] samples arrive, the window holds the most
    recent [capacity] of them. *)
module Window : sig
  type t

  val create : int -> t
  (** [create capacity] with [capacity >= 1]. *)

  val capacity : t -> int

  val length : t -> int
  (** Live samples currently in the window ([<= capacity]). *)

  val total : t -> int
  (** Samples ever added, including ones that have rolled out. *)

  val clear : t -> unit
  val add : t -> int -> unit

  val percentile : t -> float -> int
  (** Exact nearest-rank percentile over the window: the smallest sample
      with at least [ceil (p/100 * length)] samples [<=] it.  Always a
      value that actually occurred.  Raises [Invalid_argument] on an
      empty window or [p] outside [0, 100]. *)

  val p50 : t -> int
  val p99 : t -> int
  val p999 : t -> int

  val max_sample : t -> int
  val mean : t -> float

  val merge : capacity:int -> t list -> t
  (** [merge ~capacity ws] is a fresh window fed every live sample of the
      windows in [ws], taken in list order and oldest-first within each
      window, with the rolled-out portion of each [total] carried over —
      so [total (merge ~capacity ws) = sum of totals].  Per-shard
      latency windows merge into one global window this way; the result
      is deterministic in the order of [ws]. *)
end
