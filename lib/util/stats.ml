let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n <= 1 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.0

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.geometric_mean: empty";
  let acc =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive entry";
        acc +. log x)
      0.0 xs
  in
  exp (acc /. float_of_int n)

let linear_regression pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Stats.linear_regression: need >= 2 points";
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    pts;
  let fn = float_of_int n in
  let denom = (fn *. !sxx) -. (!sx *. !sx) in
  if abs_float denom < 1e-12 then
    invalid_arg "Stats.linear_regression: degenerate abscissae";
  let slope = ((fn *. !sxy) -. (!sx *. !sy)) /. denom in
  let intercept = (!sy -. (slope *. !sx)) /. fn in
  (slope, intercept)

let log2_slope pts =
  let log2 x = log x /. log 2.0 in
  let lpts =
    Array.map
      (fun (x, y) ->
        if x <= 0.0 || y <= 0.0 then invalid_arg "Stats.log2_slope: non-positive";
        (log2 x, log2 y))
      pts
  in
  fst (linear_regression lpts)

(* Average ranks (1-based, ties share the mean of their rank range), the
   standard fractional-rank convention so Spearman on tied data matches
   textbook values. *)
let ranks xs =
  let n = Array.length xs in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) idx;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do
      incr j
    done;
    (* positions !i..!j hold equal values; average rank is the midpoint *)
    let avg = float_of_int (!i + !j + 2) /. 2.0 in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.spearman: length mismatch";
  if n < 2 then invalid_arg "Stats.spearman: need >= 2 points";
  let rx = ranks xs and ry = ranks ys in
  let mx = mean rx and my = mean ry in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = rx.(i) -. mx and dy = ry.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 || !syy = 0.0 then 0.0
  else !sxy /. sqrt (!sxx *. !syy)

module Window = struct
  (* Bounded ring buffer of integer samples with exact nearest-rank
     percentiles over the window contents.  The buffer is allocated once
     at [create]; [add] never allocates, and [percentile] sorts a scratch
     array also allocated at [create], so a long steady-state run can
     sample latencies without GC pressure. *)
  type t = {
    buf : int array;
    mutable next : int; (* write cursor *)
    mutable filled : int; (* live samples, <= capacity *)
    mutable total : int; (* samples ever added *)
  }

  let create capacity =
    if capacity <= 0 then invalid_arg "Stats.Window.create: capacity <= 0";
    { buf = Array.make capacity 0; next = 0; filled = 0; total = 0 }

  let capacity w = Array.length w.buf
  let length w = w.filled
  let total w = w.total

  let clear w =
    w.next <- 0;
    w.filled <- 0;
    w.total <- 0

  let add w x =
    let cap = Array.length w.buf in
    w.buf.(w.next) <- x;
    w.next <- (w.next + 1) mod cap;
    if w.filled < cap then w.filled <- w.filled + 1;
    w.total <- w.total + 1

  (* Exact nearest-rank percentile: the smallest sample such that at
     least ceil(p/100 * n) samples are <= it.  No interpolation — tail
     latencies should report a value that actually occurred. *)
  let percentile w p =
    if w.filled = 0 then invalid_arg "Stats.Window.percentile: empty";
    if p < 0.0 || p > 100.0 then
      invalid_arg "Stats.Window.percentile: p out of range";
    let n = w.filled in
    (* The ring occupies slots 0..filled-1 whenever filled < capacity and
       the whole buffer once full, so the live multiset is always a
       prefix. *)
    let sorted = Array.sub w.buf 0 n in
    Array.sort Int.compare sorted;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    sorted.(rank - 1)

  let p50 w = percentile w 50.0
  let p99 w = percentile w 99.0
  let p999 w = percentile w 99.9

  let max_sample w =
    if w.filled = 0 then invalid_arg "Stats.Window.max_sample: empty";
    let m = ref w.buf.(0) in
    for i = 1 to w.filled - 1 do
      if w.buf.(i) > !m then m := w.buf.(i)
    done;
    !m

  let mean w =
    if w.filled = 0 then invalid_arg "Stats.Window.mean: empty";
    let s = ref 0 in
    for i = 0 to w.filled - 1 do
      s := !s + w.buf.(i)
    done;
    float_of_int !s /. float_of_int w.filled

  (* Replays each source's live samples oldest-first into a fresh ring,
     so under the usual eviction rule the merged window keeps the most
     recent samples of the concatenation; rolled-out counts carry over
     into [total].  Deterministic in the list order. *)
  let merge ~capacity ws =
    let w = create capacity in
    List.iter
      (fun src ->
        let cap = Array.length src.buf in
        let start = if src.filled < cap then 0 else src.next in
        for j = 0 to src.filled - 1 do
          add w src.buf.((start + j) mod cap)
        done;
        w.total <- w.total + (src.total - src.filled))
      ws;
    w
end

let histogram xs ~bins =
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  let lo, hi = min_max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b >= bins then bins - 1 else b in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts
