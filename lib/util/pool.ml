(* Work-queue domain pool.  One mutex guards the queue and every batch
   counter; [work] signals queued tasks, [progress] signals task
   completions.  Joins help (run queued tasks while waiting), which
   makes nested [map] calls deadlock-free without a second scheduler. *)

type task = { run : unit -> unit }

type t = {
  queue : task Queue.t;
  lock : Mutex.t;
  work : Condition.t;
  progress : Condition.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  size : int;
}

let jobs t = t.size

let worker pool =
  let rec next () =
    if pool.stopping then None
    else if Queue.is_empty pool.queue then begin
      Condition.wait pool.work pool.lock;
      next ()
    end
    else Some (Queue.pop pool.queue)
  in
  let rec loop () =
    Mutex.lock pool.lock;
    let t = next () in
    Mutex.unlock pool.lock;
    match t with
    | None -> ()
    | Some t ->
      t.run ();
      loop ()
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      queue = Queue.create ();
      lock = Mutex.create ();
      work = Condition.create ();
      progress = Condition.create ();
      stopping = false;
      workers = [];
      size = jobs;
    }
  in
  pool.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stopping <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let map pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when pool.size = 1 && pool.workers = [] -> List.map f xs
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let out = Array.make n None in
    (* Guarded by [pool.lock]: how many of this batch's slots are empty. *)
    let remaining = ref n in
    let task i =
      {
        run =
          (fun () ->
            let r =
              try Ok (f arr.(i))
              with e -> Error (e, Printexc.get_raw_backtrace ())
            in
            Mutex.lock pool.lock;
            out.(i) <- Some r;
            decr remaining;
            Condition.broadcast pool.progress;
            Mutex.unlock pool.lock);
      }
    in
    Mutex.lock pool.lock;
    for i = 0 to n - 1 do
      Queue.push (task i) pool.queue
    done;
    Condition.broadcast pool.work;
    (* Help until every slot of this batch is filled.  Tasks popped here
       may belong to other batches (nested maps): running them is what
       keeps a blocked join from wasting its domain or deadlocking. *)
    let rec drain () =
      if !remaining > 0 then
        if not (Queue.is_empty pool.queue) then begin
          let t = Queue.pop pool.queue in
          Mutex.unlock pool.lock;
          t.run ();
          Mutex.lock pool.lock;
          drain ()
        end
        else begin
          Condition.wait pool.progress pool.lock;
          drain ()
        end
    in
    drain ();
    Mutex.unlock pool.lock;
    (* First failure in submission order wins: deterministic regardless
       of which domain hit it first. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | _ -> ())
      out;
    Array.to_list
      (Array.map (function Some (Ok v) -> v | _ -> assert false) out)

(* Bulk-synchronous supersteps: every round maps [step ~round] over the
   worker indices and the [map] join is the barrier — its mutex hand-off
   publishes all of round r's writes (e.g. per-pair mailboxes) before any
   cell starts round r+1.  Cells therefore never need their own
   synchronization, and because [map] merges in submission order the
   whole computation is byte-identical at any pool size, including a
   jobs=1 pool that runs the cells sequentially. *)
let bsp pool ~workers step =
  if workers < 1 then invalid_arg "Pool.bsp: workers must be >= 1";
  let ids = List.init workers Fun.id in
  let rec loop round =
    let live = map pool (fun i -> step ~round i) ids in
    if List.exists Fun.id live then loop (round + 1)
  in
  loop 0

let map_reduce pool ~map:f ~reduce ~init xs =
  List.fold_left reduce init (map pool f xs)

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* The shared default pool                                            *)
(* ------------------------------------------------------------------ *)

let default_lock = Mutex.create ()
let configured_jobs = ref None
let shared = ref None
let exit_hook = ref false

let recommended () = max 1 (Domain.recommended_domain_count ())

let default_jobs () =
  Mutex.lock default_lock;
  let j = match !configured_jobs with Some j -> j | None -> recommended () in
  Mutex.unlock default_lock;
  j

let set_default_jobs j =
  if j < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Mutex.lock default_lock;
  configured_jobs := Some j;
  Mutex.unlock default_lock

let default () =
  Mutex.lock default_lock;
  let wanted = match !configured_jobs with Some j -> j | None -> recommended () in
  let pool =
    match !shared with
    | Some p when p.size = wanted -> p
    | prev ->
      Option.iter shutdown prev;
      let p = create ~jobs:wanted in
      shared := Some p;
      if not !exit_hook then begin
        exit_hook := true;
        at_exit (fun () ->
            Mutex.lock default_lock;
            let p = !shared in
            shared := None;
            Mutex.unlock default_lock;
            Option.iter shutdown p)
      end;
      p
  in
  Mutex.unlock default_lock;
  pool

let run f xs = map (default ()) f xs
