(* Flat event accumulator: a struct-of-arrays that the replay engine
   appends into instead of consing [Event.t] lists.  The arrays are grown
   geometrically and reused across runs ([clear] just resets the count),
   so steady-state emission allocates nothing.  Phases use the same
   encoding as [Event.phase] (0 arrive, 1 execute, 2 depart); fields a
   constructor lacks are stored as 0, which reproduces the structural
   tie-break of [Event.compare_chronological] when sorting. *)

type t = {
  mutable time : int array;
  mutable phase : int array;
  mutable obj : int array;
  mutable node : int array;
  mutable dest : int array;
  mutable count : int;
}

let create () =
  { time = [||]; phase = [||]; obj = [||]; node = [||]; dest = [||]; count = 0 }

let clear t = t.count <- 0
let length t = t.count

let grow t =
  let cap = max 256 (2 * Array.length t.time) in
  let g a =
    let b = Array.make cap 0 in
    Array.blit a 0 b 0 t.count;
    b
  in
  t.time <- g t.time;
  t.phase <- g t.phase;
  t.obj <- g t.obj;
  t.node <- g t.node;
  t.dest <- g t.dest

let emit t ~phase ~obj ~node ~dest ~time =
  if t.count = Array.length t.time then grow t;
  let i = t.count in
  Array.unsafe_set t.time i time;
  Array.unsafe_set t.phase i phase;
  Array.unsafe_set t.obj i obj;
  Array.unsafe_set t.node i node;
  Array.unsafe_set t.dest i dest;
  t.count <- i + 1

let emit_depart t ~obj ~node ~dest ~time = emit t ~phase:2 ~obj ~node ~dest ~time
let emit_arrive t ~obj ~node ~time = emit t ~phase:0 ~obj ~node ~dest:0 ~time
let emit_execute t ~node ~time = emit t ~phase:1 ~obj:0 ~node ~dest:0 ~time

let raw t = (t.time, t.phase, t.obj, t.node, t.dest)
