(** Chronological execution traces with invariant checking.

    The replay and online engines emit traces; tests assert the
    single-copy and exactly-once invariants on them.  Internally a trace
    is a flat struct-of-arrays, so building one from a replay's event
    arena costs a handful of array allocations instead of a consed,
    sorted list. *)

type t

val of_events : Event.t list -> t
(** Sorts the events chronologically. *)

val of_arena : Event_arena.t -> t
(** Sorted snapshot of the arena's events; the arena can be reused
    afterwards. *)

val events : t -> Event.t list

val length : t -> int

val executions : t -> (int * int) list
(** [(node, time)] of every [Execute] event, chronological. *)

val object_history : t -> int -> Event.t list
(** All events touching a given object. *)

val check_single_copy : t -> initial_pos:int array -> (unit, string) result
(** Every object departs only from the node where it currently is, and
    arrives where it was headed: the single-copy invariant of the
    data-flow model. *)

val check_executes_once : t -> (unit, string) result
(** No node commits twice. *)

val pp : Format.formatter -> t -> unit

(**/**)

val raw : t -> int * int array * int array * int array * int array * int array
(** [(count, time, phase, obj, node, dest)] — the flat chronological
    struct-of-arrays (phase 0 arrive, 1 execute, 2 depart; absent fields
    are 0).  Owned by the trace: callers must not mutate.  Analyzer
    internals (trace lints) walk the arrays directly so auditing a
    million-event trace allocates nothing. *)

(**/**)
