(** Canonical hop-by-hop trace of a schedule, routed by the metric.

    {!Replay} expands schedules with Dijkstra shortest-path trees —
    exact, but each tree costs [O(m log n)] plus two [n]-element arrays,
    which is prohibitive when an experiment sweep audits thousands of
    replays on 4096-node graphs.  This module produces an equivalent
    trace by greedy metric descent instead: from [u] toward [dst] it
    takes the first CSR neighbour [v] with
    [w(u,v) + dist(v,dst) = dist(u,dst)].  On a graph whose metric is
    its shortest-path metric such a neighbour always exists, every walk
    has exact metric length, and the whole trace costs
    [O(hops * degree)] with no per-source state at all — cheap enough
    to run under every [Runner.measure] call.

    The emitted timing convention is exactly {!Replay}'s: an object
    leaves at the end of the step that releases it, each hop of weight
    [w] departs at [t] and arrives at [t + w], and the release advances
    to the committing transaction's step. *)

type result = {
  ok : bool;
  errors : string list;  (** empty iff [ok] *)
  messages : int;  (** total weighted distance travelled *)
  hops : int;  (** total edges traversed *)
  trace : Trace.t;
}

val run :
  Dtm_graph.Graph.t ->
  Dtm_graph.Metric.t ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t ->
  result
(** [run g metric inst sched] walks every object along its scheduled
    visit order.  [ok = false] when a transaction is unscheduled, an
    object cannot reach its user in time, or the metric disagrees with
    the graph (no descending neighbour) — the same failures
    {!Replay.run} reports.  [metric] must be the shortest-path metric of
    [g] and [Metric.size metric = Graph.n g]. *)
