module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule

type result = {
  ok : bool;
  errors : string list;
  makespan : int;
  messages : int;
  hops : int;
  total_wait : int;
  trace : Trace.t;
}

(* Per-domain scratch: the event arena and the path buffer are grown once
   and reused across runs, so a steady-state replay with a warm shared
   router allocates nothing on the hop-by-hop path (the trace snapshot
   and result record are the only per-run allocations). *)
type scratch = { arena : Event_arena.t; mutable path : int array }

let scratch_key =
  Domain.DLS.new_key (fun () -> { arena = Event_arena.create (); path = [||] })

let run ?router graph inst sched =
  let router =
    match router with
    | Some r ->
      if not (Router.graph r == graph) then
        invalid_arg "Replay.run: router was built for a different graph";
      r
    | None -> Router.create graph
  in
  let sc = Domain.DLS.get scratch_key in
  let g_n = Dtm_graph.Graph.n graph in
  if Array.length sc.path < g_n then sc.path <- Array.make (max g_n 1) 0;
  let path = sc.path in
  let arena = sc.arena in
  Event_arena.clear arena;
  let errors = ref [] in
  let error fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let messages = ref 0 and hops = ref 0 and total_wait = ref 0 in
  (* Transactions must all be scheduled. *)
  Array.iter
    (fun v ->
      match Schedule.time sched v with
      | Some t -> Event_arena.emit_execute arena ~node:v ~time:t
      | None -> error "transaction at node %d is unscheduled" v)
    (Instance.txn_nodes inst);
  (* Hop-by-hop along the router's shortest path, leaving at the end of
     step [release]; returns the arrival step.  The chain is written into
     a suffix of the scratch buffer (parent pointers give it back to
     front), and each hop's weight is the distance difference of its
     endpoints along the tree — no edge scan, no path list. *)
  let move o src dst release =
    let s = Router.source router src in
    let dist = s.Router.dist and parent = s.Router.parent in
    if dist.(dst) = max_int then invalid_arg "Router.route: unreachable";
    let i = ref (g_n - 1) in
    let v = ref dst in
    while !v <> src do
      path.(!i) <- !v;
      decr i;
      v := Array.unsafe_get parent !v
    done;
    path.(!i) <- src;
    let t = ref release in
    for j = !i to g_n - 2 do
      let a = Array.unsafe_get path j and b = Array.unsafe_get path (j + 1) in
      let w = Array.unsafe_get dist b - Array.unsafe_get dist a in
      Event_arena.emit_depart arena ~obj:o ~node:a ~dest:b ~time:!t;
      Event_arena.emit_arrive arena ~obj:o ~node:b ~time:(!t + w);
      messages := !messages + w;
      incr hops;
      t := !t + w
    done;
    !t
  in
  (* Per-object replay along its visit order. *)
  for o = 0 to Instance.num_objects inst - 1 do
    let reqs = Instance.requesters inst o in
    let all_scheduled = Array.for_all (fun v -> Schedule.time sched v <> None) reqs in
    if Array.length reqs > 0 && all_scheduled then begin
      let order = Schedule.object_order sched ~requesters:reqs in
      let pos = ref (Instance.home inst o) and release = ref 0 in
      List.iter
        (fun v ->
          let t = Schedule.time_exn sched v in
          let arrival = if v = !pos then !release else move o !pos v !release in
          if arrival > t then
            error "object %d reaches node %d at step %d but it executes at %d" o v
              arrival t
          else if t < 1 then error "object %d used at invalid step %d" o t
          else total_wait := !total_wait + (t - max arrival 0);
          pos := v;
          release := t)
        order
    end
  done;
  let trace = Trace.of_arena arena in
  {
    ok = !errors = [];
    errors = List.rev !errors;
    makespan = Schedule.makespan sched;
    messages = !messages;
    hops = !hops;
    total_wait = !total_wait;
    trace;
  }
