module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule

type priority =
  | Node_order
  | By_schedule of Schedule.t
  | Custom of (int -> int)

exception Cut

let run_bounded ?(priority = Node_order) ~cutoff metric inst =
  let rank =
    match priority with
    | Node_order -> fun v -> v
    | By_schedule s -> fun v -> Schedule.time_exn s v
    | Custom f -> f
  in
  let order =
    Array.to_list (Instance.txn_nodes inst)
    |> List.stable_sort (fun a b ->
           match compare (rank a) (rank b) with 0 -> compare a b | c -> c)
  in
  let w = Instance.num_objects inst in
  let release = Array.make w 0 in
  let pos = Array.init w (Instance.home inst) in
  let sched = Schedule.create ~n:(Instance.n inst) in
  try
    List.iter
      (fun v ->
        match Instance.txn_at inst v with
        | None -> ()
        | Some objs ->
          let ready =
            Array.fold_left
              (fun acc o ->
                max acc (release.(o) + Dtm_graph.Metric.dist metric pos.(o) v))
              1 objs
          in
          (* The makespan is the max of the ready times, so once one
             transaction reaches [cutoff] the whole run cannot come in
             under it — abandon the rest of the order. *)
          if ready >= cutoff then raise Cut;
          Schedule.set sched ~node:v ~time:ready;
          Array.iter
            (fun o ->
              release.(o) <- ready;
              pos.(o) <- v)
            objs)
      order;
    Some sched
  with Cut -> None

let run ?priority metric inst =
  match run_bounded ?priority ~cutoff:max_int metric inst with
  | Some sched -> sched
  | None -> assert false (* ready times are < max_int *)

let compact metric inst sched = run ~priority:(By_schedule sched) metric inst
