(* Chronological traces stored as flat struct-of-arrays.  The sort order
   is exactly [Event.compare_chronological]: time, then phase (arrive <
   execute < depart), then the constructor's fields in declaration order
   — absent fields are stored as 0 on both sides of any same-phase
   comparison, so the flat comparator and the structural one agree. *)

type t = {
  count : int;
  time : int array;
  phase : int array; (* 0 arrive, 1 execute, 2 depart, as Event.phase *)
  obj : int array;
  node : int array;
  dest : int array;
}

(* Sorting dominates trace construction, and a closure comparing five
   arrays per call is slow.  When the fields fit in 62 bits total, each
   event packs into one int whose natural order is exactly the
   lexicographic (time, phase, obj, node, dest) order — events equal in
   all five fields are interchangeable — so a plain int sort suffices. *)
let bits_for x =
  let rec go b v = if v = 0 then max b 1 else go (b + 1) (v lsr 1) in
  go 0 x

(* Stable LSD radix sort of non-negative keys, byte digits.  A generic
   [Array.sort] pays an unspecialized closure call per comparison; over
   the packed keys that call is the whole cost, and counting passes
   remove it. *)
let radix_sort_nonneg keys count =
  let maxk = ref 0 in
  for i = 0 to count - 1 do
    if keys.(i) > !maxk then maxk := keys.(i)
  done;
  let tmp = Array.make (max count 1) 0 in
  let counts = Array.make 256 0 in
  let src = ref keys and dst = ref tmp in
  let shift = ref 0 in
  while !maxk lsr !shift > 0 do
    Array.fill counts 0 256 0;
    let s = !src and d = !dst in
    for i = 0 to count - 1 do
      let dig = (Array.unsafe_get s i lsr !shift) land 255 in
      counts.(dig) <- counts.(dig) + 1
    done;
    let acc = ref 0 in
    for dig = 0 to 255 do
      let c = counts.(dig) in
      counts.(dig) <- !acc;
      acc := !acc + c
    done;
    for i = 0 to count - 1 do
      let k = Array.unsafe_get s i in
      let dig = (k lsr !shift) land 255 in
      Array.unsafe_set d counts.(dig) k;
      counts.(dig) <- counts.(dig) + 1
    done;
    let t = !src in
    src := !dst;
    dst := t;
    shift := !shift + 8
  done;
  if !src != keys then Array.blit !src 0 keys 0 count

let of_arena_packed count at ap ao an ad ~bt ~bo ~bn ~bd =
  let keys = Array.make count 0 in
  let so = bn + bd and sn = bd in
  let sp = bo + bn + bd and st = 2 + bo + bn + bd in
  for i = 0 to count - 1 do
    keys.(i) <-
      (at.(i) lsl st) lor (ap.(i) lsl sp) lor (ao.(i) lsl so)
      lor (an.(i) lsl sn) lor ad.(i)
  done;
  radix_sort_nonneg keys count;
  ignore bt;
  let time = Array.make count 0 and phase = Array.make count 0 in
  let obj = Array.make count 0 and node = Array.make count 0 in
  let dest = Array.make count 0 in
  let mask b = (1 lsl b) - 1 in
  let mo = mask bo and mn = mask bn and md = mask bd in
  for i = 0 to count - 1 do
    let k = keys.(i) in
    time.(i) <- k lsr st;
    phase.(i) <- (k lsr sp) land 3;
    obj.(i) <- (k lsr so) land mo;
    node.(i) <- (k lsr sn) land mn;
    dest.(i) <- k land md
  done;
  { count; time; phase; obj; node; dest }

let of_arena arena =
  let count = Event_arena.length arena in
  let at, ap, ao, an, ad = Event_arena.raw arena in
  let maxof a =
    let m = ref 0 in
    for i = 0 to count - 1 do
      if a.(i) > !m then m := a.(i)
    done;
    !m
  in
  let nonneg a =
    let ok = ref true in
    for i = 0 to count - 1 do
      if a.(i) < 0 then ok := false
    done;
    !ok
  in
  let bt = bits_for (maxof at) and bo = bits_for (maxof ao) in
  let bn = bits_for (maxof an) and bd = bits_for (maxof ad) in
  if
    count > 0
    && bt + 2 + bo + bn + bd <= 62
    && nonneg at && nonneg ao && nonneg an && nonneg ad
  then
    of_arena_packed count at ap ao an ad ~bt ~bo ~bn ~bd
  else begin
    let idx = Array.init count Fun.id in
    let cmp i j =
      let c = Int.compare at.(i) at.(j) in
      if c <> 0 then c
      else
        let c = Int.compare ap.(i) ap.(j) in
        if c <> 0 then c
        else
          let c = Int.compare ao.(i) ao.(j) in
          if c <> 0 then c
          else
            let c = Int.compare an.(i) an.(j) in
            if c <> 0 then c else Int.compare ad.(i) ad.(j)
    in
    Array.sort cmp idx;
    let pick src = Array.init count (fun k -> src.(idx.(k))) in
    {
      count;
      time = pick at;
      phase = pick ap;
      obj = pick ao;
      node = pick an;
      dest = pick ad;
    }
  end

let of_events events =
  let arena = Event_arena.create () in
  List.iter
    (fun e ->
      match e with
      | Event.Depart { obj; node; dest; time } ->
        Event_arena.emit_depart arena ~obj ~node ~dest ~time
      | Event.Arrive { obj; node; time } ->
        Event_arena.emit_arrive arena ~obj ~node ~time
      | Event.Execute { node; time } -> Event_arena.emit_execute arena ~node ~time)
    events;
  of_arena arena

let get t i =
  match t.phase.(i) with
  | 0 -> Event.Arrive { obj = t.obj.(i); node = t.node.(i); time = t.time.(i) }
  | 1 -> Event.Execute { node = t.node.(i); time = t.time.(i) }
  | _ ->
    Event.Depart
      { obj = t.obj.(i); node = t.node.(i); dest = t.dest.(i); time = t.time.(i) }

let events t = List.init t.count (get t)
let length t = t.count

let executions t =
  let out = ref [] in
  for i = t.count - 1 downto 0 do
    if t.phase.(i) = 1 then out := (t.node.(i), t.time.(i)) :: !out
  done;
  !out

let object_history t o =
  let out = ref [] in
  for i = t.count - 1 downto 0 do
    if t.phase.(i) <> 1 && t.obj.(i) = o then out := get t i :: !out
  done;
  !out

let check_single_copy t ~initial_pos =
  let pos = Array.copy initial_pos in
  (* None in [in_flight] means at [pos]; Some dest means travelling. *)
  let in_flight = Array.make (Array.length initial_pos) None in
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  for i = 0 to t.count - 1 do
    match t.phase.(i) with
    | 2 ->
      let obj = t.obj.(i) and node = t.node.(i) and dest = t.dest.(i) in
      if in_flight.(obj) <> None then fail "object %d departed while in flight" obj
      else if pos.(obj) <> node then
        fail "object %d departed from %d but is at %d" obj node pos.(obj)
      else in_flight.(obj) <- Some dest
    | 0 -> (
      let obj = t.obj.(i) and node = t.node.(i) in
      match in_flight.(obj) with
      | Some dest when dest = node ->
        in_flight.(obj) <- None;
        pos.(obj) <- node
      | Some dest -> fail "object %d arrived at %d but headed to %d" obj node dest
      | None -> fail "object %d arrived without departing" obj)
    | _ -> ()
  done;
  match !err with None -> Ok () | Some e -> Error e

let check_executes_once t =
  let seen = Hashtbl.create 64 in
  let err = ref None in
  for i = 0 to t.count - 1 do
    if t.phase.(i) = 1 then begin
      let node = t.node.(i) in
      if Hashtbl.mem seen node && !err = None then
        err := Some (Printf.sprintf "node %d executed twice" node)
      else Hashtbl.replace seen node ()
    end
  done;
  match !err with None -> Ok () | Some e -> Error e

let pp fmt t =
  for i = 0 to t.count - 1 do
    Format.fprintf fmt "%a@." Event.pp (get t i)
  done

let raw t = (t.count, t.time, t.phase, t.obj, t.node, t.dest)
