(** Online data-flow execution (list scheduling).

    The paper's model is offline, but its execution rule — a transaction
    runs as soon as all its objects have arrived, then forwards them —
    also defines a natural online engine once each object knows the order
    in which to visit its requesters.  This module runs that engine with
    a global priority order (objects visit requesters in priority order,
    which makes the execution deadlock-free) and returns the resulting
    schedule; it is feasible by construction.

    Uses: an online baseline for the experiments (paper Section 9 lists
    the online setting as future work), and a compaction pass — replaying
    an offline schedule's times as priorities can only shorten it. *)

type priority =
  | Node_order  (** ascending node id *)
  | By_schedule of Dtm_core.Schedule.t
      (** ascending scheduled time (ties by node id) — compaction *)
  | Custom of (int -> int)  (** smaller value = earlier *)

val run :
  ?priority:priority ->
  Dtm_graph.Metric.t ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t

val run_bounded :
  ?priority:priority ->
  cutoff:int ->
  Dtm_graph.Metric.t ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t option
(** [run_bounded ~cutoff m inst] is [run m inst] when the resulting
    makespan is < [cutoff], and [None] otherwise — detected as soon as
    one transaction's ready time reaches [cutoff], so a doomed order
    costs only a prefix of the engine pass.  The branch-and-bound of
    {!Optimal.exhaustive} uses this to discard permutations that cannot
    beat the incumbent. *)

val compact :
  Dtm_graph.Metric.t ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t ->
  Dtm_core.Schedule.t
(** [compact m inst sched] = [run ~priority:(By_schedule sched) m inst]:
    a feasible schedule no longer than [sched]. *)
