(** Shortest-path routing over the explicit communication graph.

    The paper's model sends objects along shortest paths (Section 2.1);
    the simulator uses this module to expand metric-level moves into the
    hop-by-hop node sequences the network would really carry.  Routes are
    computed with Dijkstra and cached per source.

    A router has an explicit lifecycle: [create] one per graph, reuse it
    across any number of {!Replay.run}/{!Congestion.run} calls (their
    [?router] parameters) so the per-source cache survives between
    replays, and {!freeze} it into an immutable snapshot before sharing
    it across [Dtm_util.Pool] domains — the mutable cache itself is not
    domain-safe. *)

type t

val create : Dtm_graph.Graph.t -> t

val graph : t -> Dtm_graph.Graph.t
(** The graph the router was built for.  [Replay.run]/[Congestion.run]
    require (physically) the same graph value they are given. *)

val warm : t -> int array -> unit
(** Precompute the shortest-path trees of the given sources. *)

val warm_all : t -> unit
(** Precompute every source's tree ([n] Dijkstra runs). *)

val freeze : t -> t
(** Immutable snapshot of the cache as warmed so far, safe to share
    across pool domains.  Sources missing from the snapshot are computed
    on demand but never cached, so warm first.  The original router is
    unaffected and may keep caching. *)

val is_frozen : t -> bool

val route : t -> src:int -> dst:int -> int list
(** Node sequence from [src] to [dst], both inclusive ([src] alone when
    equal).  Raises [Invalid_argument] when unreachable. *)

val distance : t -> src:int -> dst:int -> int
(** Weighted length of {!route}. *)

val hops : t -> src:int -> dst:int -> int
(** Number of edges of {!route}, counted on the parent chain without
    materializing the path. *)

val landmark_metric : ?landmarks:int -> t -> Dtm_graph.Metric.t
(** Landmark (ALT) metric over the router's graph, backed zero-copy by
    the router's own per-source cache: the selected sources are warmed
    (and so cached, on an unfrozen router) and their distance rows
    shared with the oracle.  Freeze afterwards to share both across
    pool domains.  [landmarks] as in {!Dtm_graph.Landmark.build}. *)

(**/**)

type source = private { dist : int array; parent : int array }

val source : t -> int -> source
(** Shortest-path tree rooted at the given source.  The arrays are owned
    by the router and must not be mutated; simulator internals walk them
    directly so the hot path allocates nothing. *)

(**/**)
