module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule

type result = {
  makespan : int;
  commit_times : Schedule.t;
  messages : int;
  max_queue : int;
  delayed_hops : int;
  trace : Trace.t;
}

(* Per-domain scratch arena for the event trace, reused across runs. *)
let scratch_key = Domain.DLS.new_key (fun () -> Event_arena.create ())

(* Directed edges are identified by their CSR index in the graph (entry
   [j] is the edge tail->nbr.(j), weight wt.(j)); [mate.(j)] is the CSR
   index of the opposite direction, and min j mate.(j) is the canonical
   id the shared admission bound is counted under.

   All per-object and per-edge state lives in flat int arrays: object
   location is (kind, a, b) with kind 0 = At a, 1 = Queued on edge a,
   2 = Crossing arriving at step a towards b; the per-edge FIFOs are
   intrusive lists threaded through [q_next] (an object sits in at most
   one queue).  The step loop therefore allocates nothing. *)

let k_at = 0
let k_queued = 1
let k_crossing = 2

let run ?router ?(capacity = max_int) graph inst ~priority =
  if capacity < 1 then invalid_arg "Congestion.run: capacity < 1";
  let router =
    match router with
    | Some r ->
      if not (Router.graph r == graph) then
        invalid_arg "Congestion.run: router was built for a different graph";
      r
    | None -> Router.create graph
  in
  let n = Instance.n inst in
  let off, nbr, wt = Dtm_graph.Graph.csr graph in
  let ndir = Array.length nbr in
  (* CSR index of the directed edge tail->head. *)
  let edge_id tail head =
    let hi = off.(tail + 1) in
    let rec scan j =
      if j >= hi then assert false
      else if Array.unsafe_get nbr j = head then j
      else scan (j + 1)
    in
    scan off.(tail)
  in
  let mate = Array.make ndir 0 in
  let tails = Array.make (max ndir 1) 0 in
  for tail = 0 to Dtm_graph.Graph.n graph - 1 do
    for j = off.(tail) to off.(tail + 1) - 1 do
      mate.(j) <- edge_id nbr.(j) tail;
      tails.(j) <- tail
    done
  done;
  let arena = Domain.DLS.get scratch_key in
  Event_arena.clear arena;
  let w = Instance.num_objects inst in
  Array.iter
    (fun v ->
      if Schedule.time priority v = None then
        invalid_arg "Congestion.run: priority leaves a transaction unscheduled")
    (Instance.txn_nodes inst);
  (* Object state. *)
  let loc_kind = Array.make (max w 1) k_at in
  let loc_a = Array.make (max w 1) 0 in
  let loc_b = Array.make (max w 1) 0 in
  let targets =
    Array.init w (fun o ->
        Schedule.object_order priority ~requesters:(Instance.requesters inst o))
  in
  let path_buf = Array.make (max w 1) [||] in
  let path_pos = Array.make (max w 1) 0 in
  let path_len = Array.make (max w 1) 0 in
  for o = 0 to w - 1 do
    loc_a.(o) <- Instance.home inst o
  done;
  let commit = Schedule.create ~n in
  let done_ = Array.make n false in
  let remaining = ref (Instance.num_txns inst) in
  (* FIFO queue per directed edge, intrusive through [q_next]; entries
     carry their enqueue step in [q_since].  The admission bound is
     shared between the two directions of an edge. *)
  let q_head = Array.make ndir (-1) in
  let q_tail = Array.make ndir (-1) in
  let q_len = Array.make ndir 0 in
  let q_next = Array.make (max w 1) (-1) in
  let q_since = Array.make (max w 1) 0 in
  (* Edges are admitted in order of their first-ever enqueue; [rank]
     pins that order once per edge.  The admit phase walks only the
     active set — edges with a non-empty queue, kept sorted by rank — so
     each step skips every idle edge instead of scanning all [ndir]
     directed edges ever touched.  Skipping is sound: an empty edge's
     admit body could only reset the shared admission stamp, and a
     fresh stamp with count 0 is indistinguishable from a reset one. *)
  let rank = Array.make ndir 0 in
  let rank_count = ref 0 in
  let ordered = Array.make ndir false in
  let active = Array.make ndir 0 in
  let active_count = ref 0 in
  let in_active = Array.make ndir false in
  let activate edge =
    if not in_active.(edge) then begin
      in_active.(edge) <- true;
      (* Sorted insert; new edges usually rank near the end. *)
      let r = rank.(edge) in
      let i = ref !active_count in
      while !i > 0 && rank.(active.(!i - 1)) > r do
        active.(!i) <- active.(!i - 1);
        decr i
      done;
      active.(!i) <- edge;
      incr active_count
    end
  in
  let admitted_stamp = Array.make ndir (-1) in
  let admitted_count = Array.make ndir 0 in
  let enqueue o edge now =
    loc_kind.(o) <- k_queued;
    loc_a.(o) <- edge;
    q_next.(o) <- -1;
    q_since.(o) <- now;
    if q_tail.(edge) < 0 then q_head.(edge) <- o else q_next.(q_tail.(edge)) <- o;
    q_tail.(edge) <- o;
    q_len.(edge) <- q_len.(edge) + 1;
    if not ordered.(edge) then begin
      ordered.(edge) <- true;
      rank.(edge) <- !rank_count;
      incr rank_count
    end;
    activate edge
  in
  (* Replan: the chain towards [target] from the router's shortest-path
     tree rooted at the object's current node, stored as the nodes after
     it (ending at [target]) in the object's path buffer. *)
  let replan o v target =
    let s = Router.source router v in
    if s.Router.dist.(target) = max_int then
      invalid_arg "Router.route: unreachable";
    let parent = s.Router.parent in
    let hops = ref 0 and x = ref target in
    while !x <> v do
      incr hops;
      x := Array.unsafe_get parent !x
    done;
    let hops = !hops in
    if Array.length path_buf.(o) < hops then path_buf.(o) <- Array.make hops 0;
    let buf = path_buf.(o) in
    let x = ref target in
    for i = hops - 1 downto 0 do
      buf.(i) <- !x;
      x := Array.unsafe_get parent !x
    done;
    path_pos.(o) <- 0;
    path_len.(o) <- hops
  in
  let messages = ref 0 and max_queue = ref 0 and delayed = ref 0 in
  let makespan = ref 0 in
  (* Step 0 exists only for the homes' virtual release (objects forwarded
     at the end of step 0 reach distance-d nodes at step d), matching the
     library's time convention; commits start at step 1. *)
  let t = ref (-1) in
  let step_cap = 4_000_000 in
  while !remaining > 0 do
    incr t;
    if !t > step_cap then failwith "Congestion.run: step cap exceeded";
    let now = !t in
    (* 1. Receive: complete crossings. *)
    for o = 0 to w - 1 do
      if loc_kind.(o) = k_crossing && loc_a.(o) = now then begin
        loc_kind.(o) <- k_at;
        loc_a.(o) <- loc_b.(o)
      end
    done;
    (* 2. Execute: a transaction commits when every object it needs sits
       at its node with that node as the object's current target. *)
    Array.iter
      (fun v ->
        if (not done_.(v)) && now >= 1 then begin
          match Instance.txn_at inst v with
          | None -> ()
          | Some needed ->
            let ready =
              Array.for_all
                (fun o ->
                  loc_kind.(o) = k_at
                  && loc_a.(o) = v
                  && match targets.(o) with target :: _ -> target = v | [] -> false)
                needed
            in
            if ready then begin
              done_.(v) <- true;
              decr remaining;
              Schedule.set commit ~node:v ~time:now;
              Event_arena.emit_execute arena ~node:v ~time:now;
              if now > !makespan then makespan := now;
              Array.iter
                (fun o ->
                  targets.(o) <- List.tl targets.(o);
                  path_pos.(o) <- 0;
                  path_len.(o) <- 0)
                needed
            end
        end)
      (Instance.txn_nodes inst);
    (* 3. Forward: stationary objects with a remote target enqueue their
       next hop (committed objects forward in the same step). *)
    for o = 0 to w - 1 do
      if loc_kind.(o) = k_at then begin
        match targets.(o) with
        | target :: _ when loc_a.(o) <> target ->
          let v = loc_a.(o) in
          if path_pos.(o) >= path_len.(o) then replan o v target;
          let hop = path_buf.(o).(path_pos.(o)) in
          enqueue o (edge_id v hop) now
        | _ -> ()
      end
    done;
    (* 4. Admit: each undirected edge lets at most [capacity] queued
       objects start crossing this step, FIFO with a deterministic
       direction interleave (lower endpoint first). *)
    let nactive = !active_count in
    for oi = 0 to nactive - 1 do
      let edge = active.(oi) in
      if !max_queue < q_len.(edge) then max_queue := q_len.(edge);
      let key = if edge < mate.(edge) then edge else mate.(edge) in
      if admitted_stamp.(key) <> now then begin
        admitted_stamp.(key) <- now;
        admitted_count.(key) <- 0
      end;
      while q_head.(edge) >= 0 && admitted_count.(key) < capacity do
        let o = q_head.(edge) in
        q_head.(edge) <- q_next.(o);
        if q_head.(edge) < 0 then q_tail.(edge) <- -1;
        q_len.(edge) <- q_len.(edge) - 1;
        q_next.(o) <- -1;
        if loc_kind.(o) = k_queued && loc_a.(o) = edge then begin
          let weight = Array.unsafe_get wt edge in
          loc_kind.(o) <- k_crossing;
          loc_a.(o) <- now + weight;
          loc_b.(o) <- Array.unsafe_get nbr edge;
          Event_arena.emit_depart arena ~obj:o ~node:tails.(edge)
            ~dest:loc_b.(o) ~time:now;
          Event_arena.emit_arrive arena ~obj:o ~node:loc_b.(o)
            ~time:(now + weight);
          (if path_pos.(o) < path_len.(o)
              && path_buf.(o).(path_pos.(o)) = loc_b.(o)
           then path_pos.(o) <- path_pos.(o) + 1
           else assert false);
          messages := !messages + weight;
          if q_since.(o) < now then incr delayed;
          admitted_count.(key) <- admitted_count.(key) + 1
        end
        (* else: stale entry (the object re-planned); drop it. *)
      done
    done;
    (* Compact: drop drained queues, preserving rank order. *)
    let kept = ref 0 in
    for oi = 0 to nactive - 1 do
      let edge = active.(oi) in
      if q_len.(edge) > 0 then begin
        active.(!kept) <- edge;
        incr kept
      end
      else in_active.(edge) <- false
    done;
    active_count := !kept
  done;
  {
    makespan = !makespan;
    commit_times = commit;
    messages = !messages;
    max_queue = !max_queue;
    delayed_hops = !delayed;
    trace = Trace.of_arena arena;
  }
