module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule

type result = {
  makespan : int;
  commit_times : Schedule.t;
  messages : int;
  max_queue : int;
  delayed_hops : int;
}

(* Directed edges are encoded as the int key [tail * n + head] (n = node
   count of the graph): the per-step queue and admission tables hash
   immediate ints instead of boxed (int * int) tuples. *)
type loc =
  | At of int
  | Queued of { edge : int } (* encoded directed edge *)
  | Crossing of { arrive : int; dest : int }

type obj_state = {
  mutable loc : loc;
  mutable targets : int list; (* head = current target requester *)
  mutable path : int list; (* remaining nodes towards the target *)
}

let run ?(capacity = max_int) graph inst ~priority =
  if capacity < 1 then invalid_arg "Congestion.run: capacity < 1";
  let router = Router.create graph in
  let n = Instance.n inst in
  let g_n = Dtm_graph.Graph.n graph in
  let encode tail head = (tail * g_n) + head in
  let undirected key =
    let tail = key / g_n and head = key mod g_n in
    if tail < head then key else encode head tail
  in
  let w = Instance.num_objects inst in
  Array.iter
    (fun v ->
      if Schedule.time priority v = None then
        invalid_arg "Congestion.run: priority leaves a transaction unscheduled")
    (Instance.txn_nodes inst);
  let objs =
    Array.init w (fun o ->
        {
          loc = At (Instance.home inst o);
          targets =
            Schedule.object_order priority ~requesters:(Instance.requesters inst o);
          path = [];
        })
  in
  let commit = Schedule.create ~n in
  let done_ = Array.make n false in
  let remaining = ref (Instance.num_txns inst) in
  (* FIFO queue per directed edge: (object, enqueue step).  The admission
     bound is shared between the two directions of an edge. *)
  let queues : (int, (int * int) Queue.t) Hashtbl.t = Hashtbl.create 64 in
  let edge_order : int list ref = ref [] in
  let queue_of edge =
    match Hashtbl.find_opt queues edge with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace queues edge q;
      edge_order := edge :: !edge_order;
      q
  in
  let enqueue o edge now =
    objs.(o).loc <- Queued { edge };
    Queue.add (o, now) (queue_of edge)
  in
  let messages = ref 0 and max_queue = ref 0 and delayed = ref 0 in
  let makespan = ref 0 in
  (* Step 0 exists only for the homes' virtual release (objects forwarded
     at the end of step 0 reach distance-d nodes at step d), matching the
     library's time convention; commits start at step 1. *)
  let t = ref (-1) in
  let step_cap = 4_000_000 in
  while !remaining > 0 do
    incr t;
    if !t > step_cap then failwith "Congestion.run: step cap exceeded";
    let now = !t in
    (* 1. Receive: complete crossings. *)
    Array.iter
      (fun s ->
        match s.loc with
        | Crossing { arrive; dest } when arrive = now -> s.loc <- At dest
        | At _ | Queued _ | Crossing _ -> ())
      objs;
    (* 2. Execute: a transaction commits when every object it needs sits
       at its node with that node as the object's current target. *)
    Array.iter
      (fun v ->
        if (not done_.(v)) && now >= 1 then begin
          match Instance.txn_at inst v with
          | None -> ()
          | Some needed ->
            let ready =
              Array.for_all
                (fun o ->
                  match (objs.(o).loc, objs.(o).targets) with
                  | At x, target :: _ -> x = v && target = v
                  | (At _ | Queued _ | Crossing _), _ -> false)
                needed
            in
            if ready then begin
              done_.(v) <- true;
              decr remaining;
              Schedule.set commit ~node:v ~time:now;
              if now > !makespan then makespan := now;
              Array.iter
                (fun o ->
                  objs.(o).targets <- List.tl objs.(o).targets;
                  objs.(o).path <- [])
                needed
            end
        end)
      (Instance.txn_nodes inst);
    (* 3. Forward: stationary objects with a remote target enqueue their
       next hop (committed objects forward in the same step). *)
    Array.iteri
      (fun o s ->
        match (s.loc, s.targets) with
        | At v, target :: _ when v <> target -> (
          match s.path with
          | hop :: _ -> enqueue o (encode v hop) now
          | [] -> (
            match Router.route router ~src:v ~dst:target with
            | _ :: (hop :: _ as rest) ->
              s.path <- rest;
              enqueue o (encode v hop) now
            | _ -> assert false))
        | (At _ | Queued _ | Crossing _), _ -> ())
      objs;
    (* 4. Admit: each undirected edge lets at most [capacity] queued
       objects start crossing this step, FIFO with a deterministic
       direction interleave (lower endpoint first). *)
    let admitted = Hashtbl.create 16 in
    List.iter
      (fun edge ->
        let q = queue_of edge in
        if !max_queue < Queue.length q then max_queue := Queue.length q;
        let key = undirected edge in
        let used () =
          match Hashtbl.find_opt admitted key with Some c -> c | None -> 0
        in
        let continue = ref true in
        while !continue && (not (Queue.is_empty q)) && used () < capacity do
          let o, since = Queue.pop q in
          (match objs.(o).loc with
          | Queued { edge = e } when e = edge ->
            let tail = edge / g_n and head = edge mod g_n in
            let weight =
              match Dtm_graph.Graph.edge_weight graph tail head with
              | Some x -> x
              | None -> assert false
            in
            objs.(o).loc <- Crossing { arrive = now + weight; dest = head };
            (match objs.(o).path with
            | h :: rest when h = head -> objs.(o).path <- rest
            | _ -> assert false);
            messages := !messages + weight;
            if since < now then incr delayed;
            Hashtbl.replace admitted key (used () + 1)
          | At _ | Queued _ | Crossing _ ->
            (* Stale entry (the object re-planned); drop it. *)
            ());
          if used () >= capacity then continue := false
        done)
      (List.rev !edge_order)
  done;
  {
    makespan = !makespan;
    commit_times = commit;
    messages = !messages;
    max_queue = !max_queue;
    delayed_hops = !delayed;
  }
