(** Execution under bounded link capacity (paper, Section 9: "it would be
    interesting to examine the impact of network congestion, where network
    links have bounded capacity").

    The base model lets any number of objects cross an edge concurrently
    (Section 2.1).  Here each edge admits at most [capacity] objects {e
    entering} it per time step (per direction combined); excess objects
    queue FIFO at the edge's tail.  Because queueing delays cascade, a
    fixed time-stamped schedule loses meaning — instead the engine keeps
    only the schedule's {e visit orders} (which transaction gets each
    object next) and executes event-driven: a transaction commits as soon
    as all its objects are present, then forwards them hop-by-hop along
    shortest paths.

    With unbounded capacity this realizes exactly the list-scheduling
    semantics of {!Engine} (tested), so the capacity knob isolates the
    cost of congestion. *)

type result = {
  makespan : int;  (** step of the last commit *)
  commit_times : Dtm_core.Schedule.t;  (** realized execution steps *)
  messages : int;  (** total weighted distance travelled *)
  max_queue : int;  (** worst backlog observed at any edge *)
  delayed_hops : int;  (** hop entries that had to wait at least a step *)
  trace : Trace.t;
      (** full event trace: one depart/arrive pair per admitted hop, one
          execute per commit — auditable by the DTM11x trace lints,
          including the per-edge capacity bound *)
}

val run :
  ?router:Router.t ->
  ?capacity:int ->
  Dtm_graph.Graph.t ->
  Dtm_core.Instance.t ->
  priority:Dtm_core.Schedule.t ->
  result
(** [run ~capacity g inst ~priority] executes [inst] on [g], visiting each
    object's requesters in the order induced by [priority] (its scheduled
    times; ties by node id).  [capacity] >= 1 is the per-edge admission
    bound per step (default: unbounded).  Raises [Invalid_argument] if
    [priority] leaves a transaction unscheduled or [capacity < 1].

    [?router] reuses a caller-owned {!Router.t} built from the same [g]
    value (physical equality), e.g. one warmed and {!Router.freeze}d
    snapshot shared by every seed of an experiment sweep; the result is
    identical either way. *)
