(** Step-level execution of a schedule on the explicit graph.

    Expands every object's itinerary into hop-by-hop movements along
    shortest paths, checks at each transaction's step that all its
    objects have physically arrived, and reports network-level statistics
    the metric-level validator cannot see (hop counts, per-object waits,
    a full event trace). *)

type result = {
  ok : bool;
  errors : string list;  (** empty iff [ok] *)
  makespan : int;  (** last execution step *)
  messages : int;  (** total weighted distance travelled by objects *)
  hops : int;  (** total edges traversed *)
  total_wait : int;
      (** summed idle time between an object's arrival and its use *)
  trace : Trace.t;
}

val run :
  ?router:Router.t ->
  Dtm_graph.Graph.t ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t ->
  result
(** [run g inst sched] replays [sched].  [ok = false] (with explanatory
    [errors]) when an object cannot reach a transaction in time or a
    transaction is unscheduled — i.e. exactly when
    {!Dtm_core.Validator.check} fails against the graph's shortest-path
    metric.

    [?router] reuses a caller-owned {!Router.t} (it must have been
    created from the same [g] value, enforced by physical equality) so
    the per-source shortest-path cache survives across replays on the
    same graph; without it a fresh router is built per call.  The result
    is identical either way. *)
