(** Flat, reusable event accumulator for the simulation substrate.

    A struct-of-arrays buffer the replay engine appends events into
    instead of consing [Event.t] lists: grown geometrically, reset with
    {!clear}, and turned into a sorted {!Trace.t} by [Trace.of_arena].
    Keep one per domain (e.g. in a [Domain.DLS] scratch) so steady-state
    replay emission allocates nothing. *)

type t

val create : unit -> t

val clear : t -> unit
(** Reset the count; capacity is kept for reuse. *)

val length : t -> int

val emit_depart : t -> obj:int -> node:int -> dest:int -> time:int -> unit
val emit_arrive : t -> obj:int -> node:int -> time:int -> unit
val emit_execute : t -> node:int -> time:int -> unit

(**/**)

val raw : t -> int array * int array * int array * int array * int array
(** [time, phase, obj, node, dest] backing arrays; only the first
    {!length} entries are live.  Phases encode as in [Event.phase]
    (0 arrive, 1 execute, 2 depart); absent fields are 0. *)

(**/**)
