(* Shortest-path routing with an explicit lifecycle.

   A router owns one lazily filled per-source Dijkstra cache for a fixed
   graph.  Callers that replay many schedules on the same graph create
   the router once and thread it through [Replay.run]/[Congestion.run]
   via their [?router] parameters, so the shortest-path trees are paid
   for once instead of per call.

   The cache is a plain [source option array] filled in place, which is
   NOT safe to share across domains.  [freeze] snapshots the cache into
   an immutable router: lookups on a frozen router never write, so the
   snapshot can be captured by closures running on a [Dtm_util.Pool]
   (publication to the workers is ordered by the pool's queue lock).
   Sources missing from a frozen router are recomputed on every call —
   [warm]/[warm_all] before freezing to avoid that. *)

type source = { dist : int array; parent : int array }

type t = {
  graph : Dtm_graph.Graph.t;
  sources : source option array;
  frozen : bool;
}

let create graph =
  {
    graph;
    sources = Array.make (Dtm_graph.Graph.n graph) None;
    frozen = false;
  }

let graph t = t.graph
let is_frozen t = t.frozen

let source t src =
  match t.sources.(src) with
  | Some s -> s
  | None ->
    let dist, parent = Dtm_graph.Dijkstra.distances_and_parents t.graph ~src in
    let s = { dist; parent } in
    if not t.frozen then t.sources.(src) <- Some s;
    s

let warm t srcs = Array.iter (fun src -> ignore (source t src)) srcs

let warm_all t =
  for src = 0 to Array.length t.sources - 1 do
    ignore (source t src)
  done

let freeze t = { t with sources = Array.copy t.sources; frozen = true }

let route t ~src ~dst =
  let s = source t src in
  if s.dist.(dst) = max_int then invalid_arg "Router.route: unreachable";
  let rec build v acc = if v = src then src :: acc else build s.parent.(v) (v :: acc) in
  build dst []

let distance t ~src ~dst =
  let s = source t src in
  if s.dist.(dst) = max_int then invalid_arg "Router.distance: unreachable";
  s.dist.(dst)

(* The landmark oracle wraps the router's own cached [dist] arrays
   zero-copy: warming the selected sources here and freezing afterwards
   leaves router and oracle sharing one set of rows.  The arrays are
   write-once (computed, cached, never touched again), which is exactly
   the immutability [Landmark.of_rows] demands. *)
let landmark_metric ?landmarks t =
  let n = Array.length t.sources in
  let chosen, rows =
    Dtm_graph.Landmark.select ?landmarks ~n (fun src -> (source t src).dist)
  in
  Dtm_graph.Metric.of_landmark
    (Dtm_graph.Landmark.of_rows ~n ~landmarks:chosen ~rows t.graph)

(* Count edges on the parent chain directly: no intermediate path list. *)
let hops t ~src ~dst =
  let s = source t src in
  if s.dist.(dst) = max_int then invalid_arg "Router.hops: unreachable";
  let rec count v acc = if v = src then acc else count s.parent.(v) (acc + 1) in
  count dst 0
