module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule

let max_transactions = 8

(* Heap's algorithm over an int array of transaction nodes: every
   permutation visited by one swap each, no list materialization.  Each
   order runs through the engine with the incumbent makespan as cutoff,
   so hopeless orders are abandoned after a prefix; priorities are an
   O(1) rank-array lookup instead of the seed's O(n) [List.assoc]. *)
let exhaustive metric inst =
  let nodes = Array.copy (Instance.txn_nodes inst) in
  let t = Array.length nodes in
  if t > max_transactions then
    invalid_arg "Optimal.exhaustive: too many transactions";
  let rank = Array.make (max 1 (Instance.n inst)) 0 in
  let priority v = rank.(v) in
  let best = ref None and best_mk = ref max_int in
  let try_order () =
    Array.iteri (fun i v -> rank.(v) <- i) nodes;
    match
      Engine.run_bounded ~priority:(Engine.Custom priority) ~cutoff:!best_mk
        metric inst
    with
    | None -> ()
    | Some sched ->
      let mk = Schedule.makespan sched in
      if mk < !best_mk then begin
        best := Some sched;
        best_mk := mk
      end
  in
  let swap i j =
    let tmp = nodes.(i) in
    nodes.(i) <- nodes.(j);
    nodes.(j) <- tmp
  in
  let rec heap k =
    if k <= 1 then try_order ()
    else begin
      for i = 0 to k - 2 do
        heap (k - 1);
        if k land 1 = 0 then swap i (k - 1) else swap 0 (k - 1)
      done;
      heap (k - 1)
    end
  in
  heap t;
  match !best with
  | Some s -> s
  | None -> Schedule.create ~n:(Instance.n inst)

let makespan metric inst = Schedule.makespan (exhaustive metric inst)
