module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule

let max_transactions = 8

(* Heap's algorithm over an int array of transaction nodes: every
   permutation visited by one swap each, no list materialization.

   The engine fold is replayed incrementally.  Executing an order is a
   left fold of per-object state (release time, position); Heap's
   consecutive permutations differ by one swap, so the fold prefix up
   to the lower swapped index is shared.  Heap's swaps cluster at LOW
   indices, though, so the engine consumes the array in REVERSE
   (position t-1 first): the frequently-swapped front of the array
   becomes the tail of the fold, and per-position state snapshots let
   each order resume below the highest swapped index — the innermost
   0<->1 swap replays 2 fold steps instead of t.  Reversing only
   permutes the enumeration order of the same t! orders, so the optimal
   makespan is unchanged.  Orders are abandoned (and the snapshot
   trail truncated) as soon as one ready time reaches the incumbent
   makespan, exactly like [Engine.run_bounded]'s cutoff. *)
let exhaustive metric inst =
  let nodes = Array.copy (Instance.txn_nodes inst) in
  let t = Array.length nodes in
  if t > max_transactions then
    invalid_arg "Optimal.exhaustive: too many transactions";
  let n = Instance.n inst in
  if t = 0 then Schedule.create ~n
  else begin
    let w = Instance.num_objects inst in
    let objs_of = Array.make n [||] in
    let has_txn = Array.make n false in
    Array.iter
      (fun v ->
        match Instance.txn_at inst v with
        | Some objs ->
          objs_of.(v) <- objs;
          has_txn.(v) <- true
        | None -> ())
      nodes;
    (* snap p = object state after folding positions t-1 .. p; snap t is
       the initial placement.  [avail] is the lowest valid snapshot. *)
    let release = Array.make_matrix (t + 1) w 0 in
    let pos = Array.make_matrix (t + 1) w 0 in
    let mk = Array.make (t + 1) 0 in
    for o = 0 to w - 1 do
      pos.(t).(o) <- Instance.home inst o
    done;
    let avail = ref t in
    let best_mk = ref max_int in
    let best_nodes = Array.copy nodes in
    let try_order () =
      try
        for p = !avail - 1 downto 0 do
          let v = nodes.(p) in
          let src = p + 1 in
          let ready = ref 1 in
          if has_txn.(v) then
            Array.iter
              (fun o ->
                let r =
                  release.(src).(o)
                  + Dtm_graph.Metric.dist metric pos.(src).(o) v
                in
                if r > !ready then ready := r)
              objs_of.(v);
          (* The makespan is the max of the ready times, so once one
             transaction reaches the incumbent the whole order is dead;
             the snapshots written so far stay valid. *)
          if has_txn.(v) && !ready >= !best_mk then begin
            avail := src;
            raise Exit
          end;
          Array.blit release.(src) 0 release.(p) 0 w;
          Array.blit pos.(src) 0 pos.(p) 0 w;
          if has_txn.(v) then begin
            Array.iter
              (fun o ->
                release.(p).(o) <- !ready;
                pos.(p).(o) <- v)
              objs_of.(v);
            mk.(p) <- max mk.(src) !ready
          end
          else mk.(p) <- mk.(src);
          avail := p
        done;
        if mk.(0) < !best_mk then begin
          best_mk := mk.(0);
          Array.blit nodes 0 best_nodes 0 t
        end
      with Exit -> ()
    in
    let swap i j =
      let tmp = nodes.(i) in
      nodes.(i) <- nodes.(j);
      nodes.(j) <- tmp;
      (* Both swapped indices are <= j, so snapshots at or below j are
         stale; everything above survives. *)
      if !avail < j + 1 then avail := j + 1
    in
    let rec heap k =
      if k <= 1 then try_order ()
      else begin
        for i = 0 to k - 2 do
          heap (k - 1);
          if k land 1 = 0 then swap i (k - 1) else swap 0 (k - 1)
        done;
        heap (k - 1)
      end
    in
    heap t;
    (* Replay the winning order once to materialize the schedule — the
       snapshots hold only object state, not per-node times. *)
    let sched = Schedule.create ~n in
    let release = Array.make w 0 in
    let posn = Array.init w (Instance.home inst) in
    for p = t - 1 downto 0 do
      let v = best_nodes.(p) in
      if has_txn.(v) then begin
        let ready = ref 1 in
        Array.iter
          (fun o ->
            let r = release.(o) + Dtm_graph.Metric.dist metric posn.(o) v in
            if r > !ready then ready := r)
          objs_of.(v);
        Schedule.set sched ~node:v ~time:!ready;
        Array.iter
          (fun o ->
            release.(o) <- !ready;
            posn.(o) <- v)
          objs_of.(v)
      end
    done;
    sched
  end

let makespan metric inst = Schedule.makespan (exhaustive metric inst)
