module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule
module Graph = Dtm_graph.Graph
module Metric = Dtm_graph.Metric

type result = {
  ok : bool;
  errors : string list;
  messages : int;
  hops : int;
  trace : Trace.t;
}

(* Per-domain scratch arena, reused across runs like Replay's. *)
let scratch_key = Domain.DLS.new_key (fun () -> Event_arena.create ())

let run graph metric inst sched =
  if Metric.size metric <> Graph.n graph then
    invalid_arg "Walker.run: metric size <> graph size";
  let off, targets, weights = Graph.csr graph in
  let arena = Domain.DLS.get scratch_key in
  Event_arena.clear arena;
  let errors = ref [] in
  let error fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let messages = ref 0 and hops = ref 0 in
  Array.iter
    (fun v ->
      match Schedule.time sched v with
      | Some t -> Event_arena.emit_execute arena ~node:v ~time:t
      | None -> error "transaction at node %d is unscheduled" v)
    (Instance.txn_nodes inst);
  (* One leg of object [o]: hop-by-hop from [src] to [dst], departing at
     the end of step [release]; returns the arrival step.  Each hop picks
     the first CSR neighbour on a shortest path, so the leg's total
     weight is exactly [dist src dst] and progress is guaranteed (the
     remaining distance drops by >= 1 per hop). *)
  let move o src dst release =
    let t = ref release and u = ref src and stuck = ref false in
    while !u <> dst && not !stuck do
      let rem = Metric.unsafe_dist metric !u dst in
      let lo = off.(!u) and hi = off.(!u + 1) in
      let next = ref (-1) and nw = ref 0 in
      let i = ref lo in
      while !next < 0 && !i < hi do
        let v = Array.unsafe_get targets !i in
        let w = Array.unsafe_get weights !i in
        if w + Metric.unsafe_dist metric v dst = rem then begin
          next := v;
          nw := w
        end;
        incr i
      done;
      if !next < 0 then begin
        error "object %d: no shortest-path hop from %d toward %d" o !u dst;
        stuck := true
      end
      else begin
        Event_arena.emit_depart arena ~obj:o ~node:!u ~dest:!next ~time:!t;
        Event_arena.emit_arrive arena ~obj:o ~node:!next ~time:(!t + !nw);
        messages := !messages + !nw;
        incr hops;
        t := !t + !nw;
        u := !next
      end
    done;
    !t
  in
  for o = 0 to Instance.num_objects inst - 1 do
    let reqs = Instance.requesters inst o in
    let all_scheduled =
      Array.for_all (fun v -> Schedule.time sched v <> None) reqs
    in
    if Array.length reqs > 0 && all_scheduled then begin
      let order = Schedule.object_order sched ~requesters:reqs in
      let pos = ref (Instance.home inst o) and release = ref 0 in
      List.iter
        (fun v ->
          let t = Schedule.time_exn sched v in
          let arrival = if v = !pos then !release else move o !pos v !release in
          if arrival > t then
            error "object %d reaches node %d at step %d but it executes at %d"
              o v arrival t
          else if t < 1 then error "object %d used at invalid step %d" o t;
          pos := v;
          release := t)
        order
    end
  done;
  let trace = Trace.of_arena arena in
  {
    ok = !errors = [];
    errors = List.rev !errors;
    messages = !messages;
    hops = !hops;
    trace;
  }
