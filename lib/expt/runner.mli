(** Shared measurement helpers for the experiment suite. *)

type measurement = {
  makespan : int;
  lower : int;
  ratio : float;
  feasible : bool;
  clean : bool;
      (** no error-severity static-analysis finding, and — when a trace
          audit is requested — the expanded execution trace passes every
          DTM11x lint *)
}

type audit = { graph : Dtm_graph.Graph.t }
(** The explicit carrier graph, enabling the trace-audit gate: with it,
    {!measure} expands the schedule into a hop-by-hop trace with
    {!Dtm_sim.Walker} (metric-routed — no Dijkstra, so auditing a
    4096-node sweep row is cheap) and runs the DTM11x trace lints on the
    result. *)

val audit : Dtm_topology.Topology.t -> audit

val measure :
  ?jobs:int ->
  ?audit:audit ->
  Dtm_graph.Metric.t ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t ->
  measurement
(** Makespan, certified lower bound, their ratio, a validator verdict,
    and the static-analysis gate: every measurement is also run through
    {!Dtm_analysis.Analyze.quick} — plus, when [audit] is given, the
    trace-audit gate — before results are reported.  [jobs] is
    forwarded to {!Dtm_core.Lower_bound.certified}, whose per-object
    walk oracles otherwise fan out on the shared default pool ([-j N]);
    results are identical at any parallelism. *)

val sweep :
  seeds:int list ->
  ?audit:audit ->
  gen:(Dtm_util.Prng.t -> Dtm_core.Instance.t) ->
  metric:Dtm_graph.Metric.t ->
  sched:(Dtm_core.Instance.t -> Dtm_core.Schedule.t) ->
  unit ->
  measurement list
(** One generated instance and measurement per seed, in seed order.
    Seeds are measured in parallel on {!Dtm_util.Pool.default} ([-j N]
    in the binaries); [gen] and [sched] must therefore be pure up to
    their [Prng.t] argument — each seed owns a fresh generator, so
    results are independent of the parallelism degree.  [audit] turns
    on the per-measurement trace gate (see {!measure}); the shared
    graph is read-only across domains. *)

val summarize : measurement list -> float * float * bool
(** [(mean, max, all_ok)] of the ratios; [all_ok] requires every
    measurement to be feasible {e and} statically clean. *)

val mean_ratio :
  seeds:int list ->
  ?audit:audit ->
  gen:(Dtm_util.Prng.t -> Dtm_core.Instance.t) ->
  metric:Dtm_graph.Metric.t ->
  sched:(Dtm_core.Instance.t -> Dtm_core.Schedule.t) ->
  unit ->
  float * float * bool
(** [summarize] of [sweep]: one instance per seed, measured in
    parallel; [all_ok] requires every schedule to be feasible {e and}
    statically clean. *)

val fmt_ratio : float -> string
