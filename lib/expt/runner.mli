(** Shared measurement helpers for the experiment suite. *)

type measurement = {
  makespan : int;
  lower : int;
  ratio : float;
  feasible : bool;
  clean : bool;  (** no error-severity static-analysis finding *)
}

val measure :
  ?jobs:int ->
  Dtm_graph.Metric.t ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t ->
  measurement
(** Makespan, certified lower bound, their ratio, a validator verdict,
    and the static-analysis gate: every measurement is also run through
    {!Dtm_analysis.Analyze.quick} before results are reported.  [jobs]
    is forwarded to {!Dtm_core.Lower_bound.certified}, whose per-object
    walk oracles otherwise fan out on the shared default pool ([-j N]);
    results are identical at any parallelism. *)

val sweep :
  seeds:int list ->
  gen:(Dtm_util.Prng.t -> Dtm_core.Instance.t) ->
  metric:Dtm_graph.Metric.t ->
  sched:(Dtm_core.Instance.t -> Dtm_core.Schedule.t) ->
  measurement list
(** One generated instance and measurement per seed, in seed order.
    Seeds are measured in parallel on {!Dtm_util.Pool.default} ([-j N]
    in the binaries); [gen] and [sched] must therefore be pure up to
    their [Prng.t] argument — each seed owns a fresh generator, so
    results are independent of the parallelism degree. *)

val summarize : measurement list -> float * float * bool
(** [(mean, max, all_ok)] of the ratios; [all_ok] requires every
    measurement to be feasible {e and} statically clean. *)

val mean_ratio :
  seeds:int list ->
  gen:(Dtm_util.Prng.t -> Dtm_core.Instance.t) ->
  metric:Dtm_graph.Metric.t ->
  sched:(Dtm_core.Instance.t -> Dtm_core.Schedule.t) ->
  float * float * bool
(** [summarize] of [sweep]: one instance per seed, measured in
    parallel; [all_ok] requires every schedule to be feasible {e and}
    statically clean. *)

val fmt_ratio : float -> string
