type measurement = {
  makespan : int;
  lower : int;
  ratio : float;
  feasible : bool;
  clean : bool;
}

let measure metric inst sched =
  let makespan = Dtm_core.Schedule.makespan sched in
  let lower = Dtm_core.Lower_bound.certified metric inst in
  (* Static gate: beyond the dynamic validator, every measurement is
     statically analyzed (instance + schedule lints); an error-severity
     finding marks the measurement unclean and fails the experiment's
     all-feasible flag. *)
  let report = Dtm_analysis.Analyze.quick metric inst sched in
  {
    makespan;
    lower;
    ratio = Dtm_core.Lower_bound.ratio ~makespan ~lower;
    feasible = Dtm_core.Validator.is_feasible metric inst sched;
    clean = not (Dtm_analysis.Report.has_errors report);
  }

let mean_ratio ~seeds ~gen ~metric ~sched =
  let ratios, ok =
    List.fold_left
      (fun (acc, ok) seed ->
        let rng = Dtm_util.Prng.create ~seed in
        let inst = gen rng in
        let m = measure metric inst (sched inst) in
        (m.ratio :: acc, ok && m.feasible && m.clean))
      ([], true) seeds
  in
  let arr = Array.of_list ratios in
  let _, worst = Dtm_util.Stats.min_max arr in
  (Dtm_util.Stats.mean arr, worst, ok)

let fmt_ratio r = Printf.sprintf "%.2f" r
