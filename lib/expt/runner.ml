type measurement = {
  makespan : int;
  lower : int;
  ratio : float;
  feasible : bool;
  clean : bool;
}

type audit = { graph : Dtm_graph.Graph.t }

let audit topo = { graph = Dtm_topology.Topology.graph topo }

let measure ?jobs ?audit metric inst sched =
  let makespan = Dtm_core.Schedule.makespan sched in
  let lower = Dtm_core.Lower_bound.certified ?jobs metric inst in
  (* Static gate: beyond the dynamic validator, every measurement is
     statically analyzed (instance + schedule lints); an error-severity
     finding marks the measurement unclean and fails the experiment's
     all-feasible flag. *)
  let report = Dtm_analysis.Analyze.quick metric inst sched in
  (* Trace gate: with an [audit], the schedule is additionally expanded
     into the canonical hop-by-hop trace (metric-routed, so a 4096-node
     sweep row costs no Dijkstra) and run through the DTM11x trace
     lints — motion continuity, hop legality, commit precedence, Cost
     agreement, conflict-serializability. *)
  let traced =
    match audit with
    | None -> true
    | Some { graph } ->
      let w = Dtm_sim.Walker.run graph metric inst sched in
      w.Dtm_sim.Walker.ok
      && Dtm_analysis.Trace_lint.check ~graph ~metric inst ~commits:sched
           w.Dtm_sim.Walker.trace
         = []
  in
  {
    makespan;
    lower;
    ratio = Dtm_core.Lower_bound.ratio ~makespan ~lower;
    feasible = Dtm_core.Validator.is_feasible metric inst sched;
    clean = (not (Dtm_analysis.Report.has_errors report)) && traced;
  }

(* Seeds are embarrassingly parallel: each builds its own [Prng.t], so
   fanning them across domains changes nothing but wall-clock.  The
   pool merges in submission order, keeping every downstream fold
   (float means, table rows) byte-identical to a sequential run. *)
let sweep ~seeds ?audit ~gen ~metric ~sched () =
  Dtm_util.Pool.run
    (fun seed ->
      let rng = Dtm_util.Prng.create ~seed in
      let inst = gen rng in
      measure ?audit metric inst (sched inst))
    seeds

let summarize ms =
  let arr = Array.of_list (List.map (fun m -> m.ratio) ms) in
  let ok = List.for_all (fun m -> m.feasible && m.clean) ms in
  let _, worst = Dtm_util.Stats.min_max arr in
  (Dtm_util.Stats.mean arr, worst, ok)

let mean_ratio ~seeds ?audit ~gen ~metric ~sched () =
  summarize (sweep ~seeds ?audit ~gen ~metric ~sched ())

let fmt_ratio r = Printf.sprintf "%.2f" r
