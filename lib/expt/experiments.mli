(** The E1-E8 experiments: one per theorem (see DESIGN.md's experiment
    index).  Each returns a rendered table plus interpretation notes;
    EXPERIMENTS.md records their output against the paper's claims. *)

type result = { table : Dtm_util.Table.t; notes : string list }

val e1_clique : seeds:int list -> result
(** Theorem 1: clique ratio grows with k, independent of n. *)

val e2_diameter : seeds:int list -> result
(** Section 3.1: hypercube/butterfly ratio tracks k·log n. *)

val e3_line : seeds:int list -> result
(** Theorem 2: line makespan <= 4l, ratio flat in n. *)

val e4_grid : seeds:int list -> result
(** Theorem 3: grid ratio within O(k log m) for random k-subsets. *)

val e5_cluster : seeds:int list -> result
(** Theorem 4: Approach 1 degrades with beta, Approach 2 does not. *)

val e6_star : seeds:int list -> result
(** Theorem 5: star ratio within O(log beta * min(k beta, c^k ln^k m)). *)

val e7_lower_bound : seeds:int list -> result
(** Theorem 6 / Section 8: makespan-to-TSP gap grows with s on both the
    block grid and the block tree. *)

val e8_greedy : seeds:int list -> result
(** Section 2.3: coloring count <= Gamma + 1; order/strategy ablation. *)

val e9_congestion : seeds:int list -> result
(** Extension (paper Section 9): execution time as per-link capacity
    shrinks, on topologies that funnel traffic (star) and that spread it
    (clique, grid). *)

val e10_tradeoff : seeds:int list -> result
(** Extension (Section 1.2 / Busch et al. PODC 2015): the tension between
    makespan and total communication across schedulers. *)

val e11_lb_tightness : seeds:int list -> result
(** Extension: exact optimum (exhaustive, <= 8 transactions) vs the
    certified lower bound and the greedy schedule — how much measured
    ratio is scheduler slack vs lower-bound slack. *)

val e12_ring : seeds:int list -> result
(** Extension: the ring scheduler's O(1) factor, mirroring E3. *)

val e13_replication : seeds:int list -> result
(** Extension (Section 1.2 remark): read replication thins the
    dependency graph; makespan vs write fraction. *)

val e14_online : seeds:int list -> result
(** Extension (Section 9 open problem #1): online arrival streams under
    different contention-management policies. *)

val e15_scaling : seeds:int list -> result
(** Release hygiene: empirical wall-clock growth exponents of the main
    schedulers. *)

val e16_stability : seeds:int list -> result
(** Open-system extension (arXiv 2208.07359 direction): continual
    arrivals at rate rho; per-topology critical rates rho*, stability
    verdicts, and exact latency percentiles per contention manager. *)

val e17_stm : seeds:int list -> result
(** Executable-STM extension (ROADMAP item 2): the same injected
    instances through the open-system simulator and the multicore DSTM
    runtime; Spearman rank correlation of simulated makespan against
    measured wall-clock, per topology x contention manager. *)

val e18_sharding : seeds:int list -> result
(** Sharded open system: critical rate rho*, committed-per-step
    throughput, and latency percentiles as the object space is
    partitioned across S shards advancing in bulk-synchronous rounds,
    per contention-manager policy. *)
