(** The experiment registry: every theorem experiment (e1-e8) and figure
    reproduction (f1-f6) under one id-addressable interface, used by
    [bin/experiments.ml] and recorded in EXPERIMENTS.md. *)

type entry = {
  id : string;  (** "e1".."e13", "f1".."f6" *)
  title : string;
  claim : string;  (** the paper statement being reproduced *)
  run : seeds:int list -> string;  (** rendered output *)
  csv : (seeds:int list -> string) option;
      (** CSV rendering of the table (experiments only) *)
}

val all : entry list

val find : string -> entry option

val default_seeds : int list

val run_to_string : ?seeds:int list -> entry -> string
(** Header + claim + output. *)

val run_many : ?seeds:int list -> entry list -> (entry * string) list
(** Render several entries on {!Dtm_util.Pool.default}, results in
    input order — the parallel counterpart of mapping
    {!run_to_string}, with byte-identical output. *)
