type entry = {
  id : string;
  title : string;
  claim : string;
  run : seeds:int list -> string;
  csv : (seeds:int list -> string) option;
}

let default_seeds = [ 1; 2; 3; 4; 5 ]

let of_experiment f ~seeds =
  let r = f ~seeds in
  Dtm_util.Table.render r.Experiments.table
  ^ "\n"
  ^ String.concat "\n" (List.map (fun n -> "  " ^ n) r.Experiments.notes)
  ^ "\n"

let csv_of_experiment f ~seeds =
  Dtm_util.Table.to_csv (f ~seeds).Experiments.table

let of_figure f ~seeds:_ =
  let r = f () in
  r.Figures.rendering ^ "\nchecks:\n"
  ^ String.concat "\n"
      (List.map
         (fun (name, ok) ->
           Printf.sprintf "  [%s] %s" (if ok then "ok" else "FAIL") name)
         r.Figures.checks)
  ^ "\n"

let all =
  [
    {
      id = "e1";
      title = "Clique schedules (Theorem 1)";
      claim = "O(k)-approximation on complete graphs, independent of n";
      run = of_experiment Experiments.e1_clique;
      csv = Some (csv_of_experiment Experiments.e1_clique);
    };
    {
      id = "e2";
      title = "Hypercube and Butterfly schedules (Section 3.1)";
      claim = "O(k log n)-approximation on diameter-log-n graphs";
      run = of_experiment Experiments.e2_diameter;
      csv = Some (csv_of_experiment Experiments.e2_diameter);
    };
    {
      id = "e3";
      title = "Line schedules (Theorem 2)";
      claim = "makespan <= 4l: asymptotically optimal on lines";
      run = of_experiment Experiments.e3_line;
      csv = Some (csv_of_experiment Experiments.e3_line);
    };
    {
      id = "e4";
      title = "Grid schedules (Theorem 3)";
      claim = "O(k log m)-approximation whp for random k-subsets on grids";
      run = of_experiment Experiments.e4_grid;
      csv = Some (csv_of_experiment Experiments.e4_grid);
    };
    {
      id = "e5";
      title = "Cluster schedules (Theorem 4 / Algorithm 1)";
      claim = "O(min(k beta, 40^k ln^k m))-approximation on cluster graphs";
      run = of_experiment Experiments.e5_cluster;
      csv = Some (csv_of_experiment Experiments.e5_cluster);
    };
    {
      id = "e6";
      title = "Star schedules (Theorem 5)";
      claim = "O(log beta * min(k beta, c^k ln^k m))-approximation on stars";
      run = of_experiment Experiments.e6_star;
      csv = Some (csv_of_experiment Experiments.e6_star);
    };
    {
      id = "e7";
      title = "Execution-time lower bound (Theorem 6, Section 8)";
      claim = "makespan must outgrow all TSP tours on the block instances";
      run = of_experiment Experiments.e7_lower_bound;
      csv = Some (csv_of_experiment Experiments.e7_lower_bound);
    };
    {
      id = "e8";
      title = "Greedy coloring framework (Section 2.3)";
      claim = "greedy schedule uses at most Gamma + 1 = hmax*Delta + 1 colors";
      run = of_experiment Experiments.e8_greedy;
      csv = Some (csv_of_experiment Experiments.e8_greedy);
    };
    {
      id = "e9";
      title = "Congestion extension (Section 9 open problem)";
      claim = "bounded link capacity slows hub topologies most";
      run = of_experiment Experiments.e9_congestion;
      csv = Some (csv_of_experiment Experiments.e9_congestion);
    };
    {
      id = "e10";
      title = "Time vs communication trade-off (Section 1.2)";
      claim = "makespan and communication cannot both be minimized";
      run = of_experiment Experiments.e10_tradeoff;
      csv = Some (csv_of_experiment Experiments.e10_tradeoff);
    };
    {
      id = "e11";
      title = "Lower-bound tightness (exact optima)";
      claim = "certified walk/load bounds are near-tight on small instances";
      run = of_experiment Experiments.e11_lb_tightness;
      csv = Some (csv_of_experiment Experiments.e11_lb_tightness);
    };
    {
      id = "e12";
      title = "Ring extension of Theorem 2";
      claim = "makespan <= 9l on cycles: constant-factor, flat in n";
      run = of_experiment Experiments.e12_ring;
      csv = Some (csv_of_experiment Experiments.e12_ring);
    };
    {
      id = "e13";
      title = "Read-replication extension (Section 1.2 remark)";
      claim = "makespan collapses as the write fraction shrinks";
      run = of_experiment Experiments.e13_replication;
      csv = Some (csv_of_experiment Experiments.e13_replication);
    };
    {
      id = "e14";
      title = "Online scheduling extension (Section 9 open problem)";
      claim = "continuous arrivals; greedy CM needs no deadlock recovery";
      run = of_experiment Experiments.e14_online;
      csv = Some (csv_of_experiment Experiments.e14_online);
    };
    {
      id = "e15";
      title = "Scheduler scalability (wall-clock growth)";
      claim = "all schedulers are low-polynomial in n";
      run = of_experiment Experiments.e15_scaling;
      csv = Some (csv_of_experiment Experiments.e15_scaling);
    };
    {
      id = "e16";
      title = "Open-system stability (continual arrivals)";
      claim = "age-based policies sustain the highest critical rate rho*";
      run = of_experiment Experiments.e16_stability;
      csv = Some (csv_of_experiment Experiments.e16_stability);
    };
    {
      id = "e17";
      title = "Executable STM (sim-to-metal correlation)";
      claim = "simulated makespans rank-order measured wall-clock per CM";
      run = of_experiment Experiments.e17_stm;
      csv = Some (csv_of_experiment Experiments.e17_stm);
    };
    {
      id = "e18";
      title = "Sharded open system (bulk-synchronous partitioning)";
      claim = "sharding trades critical rate for wall-clock parallelism";
      run = of_experiment Experiments.e18_sharding;
      csv = Some (csv_of_experiment Experiments.e18_sharding);
    };
    {
      id = "f1";
      title = "Figure 1: line decomposition";
      claim = "n = 32 line, l = 8, alternating S1/S2 subgraphs";
      run = of_figure Figures.f1_line;
      csv = None;
    };
    {
      id = "f2";
      title = "Figure 2: grid subgrid order";
      claim = "16x16 grid, 4x4 subgrids, boustrophedon column-major order";
      run = of_figure Figures.f2_grid;
      csv = None;
    };
    {
      id = "f3";
      title = "Figure 3: cluster graph";
      claim = "5 cliques of 6 nodes joined by weight-gamma bridges";
      run = of_figure Figures.f3_cluster;
      csv = None;
    };
    {
      id = "f4";
      title = "Figure 4: star graph rings";
      claim = "8 rays of 7 nodes; segment rings V1..V3 double in size";
      run = of_figure Figures.f4_star;
      csv = None;
    };
    {
      id = "f5";
      title = "Figure 5: Section 8 block grid";
      claim = "s blocks of s x sqrt(s) nodes, weight-s inter-block edges";
      run = of_figure Figures.f5_block_grid;
      csv = None;
    };
    {
      id = "f6";
      title = "Figure 6: Section 8 block tree";
      claim = "comb-tree blocks joined through the top row, a single tree";
      run = of_figure Figures.f6_block_tree;
      csv = None;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_to_string ?(seeds = default_seeds) e =
  let line = String.make 72 '=' in
  Printf.sprintf "%s\n%s: %s\npaper claim: %s\n%s\n%s" line
    (String.uppercase_ascii e.id) e.title e.claim line (e.run ~seeds)

(* Entries fan out across the domain pool; each one may itself sweep
   its seeds in parallel (nested joins help, see Dtm_util.Pool).  The
   ordered merge keeps the concatenated report byte-identical to a
   sequential run for any -j. *)
let run_many ?(seeds = default_seeds) entries =
  Dtm_util.Pool.run (fun e -> (e, run_to_string ~seeds e)) entries
